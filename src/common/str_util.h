#ifndef RAQLET_COMMON_STR_UTIL_H_
#define RAQLET_COMMON_STR_UTIL_H_

// Small string helpers shared by the parsers and unparsers.

#include <string>
#include <vector>

namespace raqlet {

/// Joins `parts` with `sep` between consecutive elements.
std::string Join(const std::vector<std::string>& parts, const std::string& sep);

/// Splits `text` on the single character `sep`; keeps empty fields.
std::vector<std::string> Split(const std::string& text, char sep);

/// ASCII-only case conversions (query keywords are ASCII).
std::string ToLower(const std::string& text);
std::string ToUpper(const std::string& text);

/// True if `text` begins with / ends with the given affix.
bool StartsWith(const std::string& text, const std::string& prefix);
bool EndsWith(const std::string& text, const std::string& suffix);

/// Strips ASCII whitespace from both ends.
std::string Trim(const std::string& text);

/// Indents every line of `text` by `spaces` spaces.
std::string Indent(const std::string& text, int spaces);

}  // namespace raqlet

#endif  // RAQLET_COMMON_STR_UTIL_H_
