#include "common/str_util.h"

#include <cctype>
#include <sstream>

namespace raqlet {

std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::vector<std::string> Split(const std::string& text, char sep) {
  std::vector<std::string> out;
  std::string current;
  for (char c : text) {
    if (c == sep) {
      out.push_back(current);
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  out.push_back(current);
  return out;
}

std::string ToLower(const std::string& text) {
  std::string out = text;
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string ToUpper(const std::string& text) {
  std::string out = text;
  for (char& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

bool StartsWith(const std::string& text, const std::string& prefix) {
  return text.size() >= prefix.size() &&
         text.compare(0, prefix.size(), prefix) == 0;
}

bool EndsWith(const std::string& text, const std::string& suffix) {
  return text.size() >= suffix.size() &&
         text.compare(text.size() - suffix.size(), suffix.size(), suffix) == 0;
}

std::string Trim(const std::string& text) {
  size_t begin = 0;
  size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

std::string Indent(const std::string& text, int spaces) {
  std::string pad(static_cast<size_t>(spaces), ' ');
  std::string out;
  std::istringstream in(text);
  std::string line;
  bool first = true;
  while (std::getline(in, line)) {
    if (!first) out += "\n";
    first = false;
    out += pad + line;
  }
  return out;
}

}  // namespace raqlet
