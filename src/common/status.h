#ifndef RAQLET_COMMON_STATUS_H_
#define RAQLET_COMMON_STATUS_H_

// Error-handling primitives used across every Raqlet module.
//
// Raqlet follows the Arrow/RocksDB idiom of returning Status / Result<T>
// from all fallible public entry points instead of throwing exceptions.
// A Status is cheap to copy in the OK case (no allocation) and carries a
// code + human-readable message otherwise.

#include <cassert>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <variant>

namespace raqlet {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   // caller passed something malformed
  kParseError,        // frontend could not parse source text
  kNotFound,          // missing relation / variable / schema entry
  kUnsupported,       // feature outside the implemented subset, or a
                      // backend that rejects a query class (e.g. SQL +
                      // non-linear recursion)
  kInternal,          // invariant violation inside Raqlet
  kAlreadyExists,     // duplicate definition
  // Terminal guard-trip causes (runtime/query_guard.h). A query that
  // returns one of these left every durable structure — Database, cached
  // engines, pooled buffers — reusable; re-running the same query
  // succeeds with bit-identical results.
  kCancelled,          // caller raised QueryGuard::Cancel()
  kDeadlineExceeded,   // wall-clock deadline passed mid-evaluation
  kResourceExhausted,  // row or memory budget exceeded
};

/// Returns a short stable name for a status code ("ParseError", ...).
const char* StatusCodeToString(StatusCode code);

/// Result of a fallible operation that produces no value.
class Status {
 public:
  Status() : rep_(nullptr) {}
  Status(StatusCode code, std::string message)
      : rep_(code == StatusCode::kOk
                 ? nullptr
                 : std::make_shared<Rep>(Rep{code, std::move(message)})) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return rep_ == nullptr; }
  StatusCode code() const { return rep_ ? rep_->code : StatusCode::kOk; }
  const std::string& message() const {
    static const std::string kEmpty;
    return rep_ ? rep_->message : kEmpty;
  }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  struct Rep {
    StatusCode code;
    std::string message;
  };
  // shared_ptr keeps Status copyable and 8 bytes in the OK fast path.
  std::shared_ptr<const Rep> rep_;
};

/// Either a value of type T or an error Status. Modeled after
/// arrow::Result. Accessing the value of an errored Result is a
/// programming error (asserts in debug builds).
template <typename T>
class Result {
 public:
  Result(T value) : var_(std::move(value)) {}  // NOLINT: implicit by design
  Result(Status status) : var_(std::move(status)) {  // NOLINT
    assert(!std::get<Status>(var_).ok() && "Result from OK status");
  }

  bool ok() const { return std::holds_alternative<T>(var_); }

  const Status& status() const {
    static const Status kOk;
    return ok() ? kOk : std::get<Status>(var_);
  }

  T& value() & {
    assert(ok());
    return std::get<T>(var_);
  }
  const T& value() const& {
    assert(ok());
    return std::get<T>(var_);
  }
  T&& value() && {
    assert(ok());
    return std::move(std::get<T>(var_));
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  std::variant<Status, T> var_;
};

// Propagate errors to the caller, Arrow-style.
#define RAQLET_RETURN_IF_ERROR(expr)             \
  do {                                           \
    ::raqlet::Status _raqlet_status = (expr);    \
    if (!_raqlet_status.ok()) return _raqlet_status; \
  } while (false)

#define RAQLET_CONCAT_IMPL(a, b) a##b
#define RAQLET_CONCAT(a, b) RAQLET_CONCAT_IMPL(a, b)

// RAQLET_ASSIGN_OR_RETURN(auto x, ComputeX()): binds the value or returns
// the error status from the enclosing function.
#define RAQLET_ASSIGN_OR_RETURN(decl, expr)                        \
  RAQLET_ASSIGN_OR_RETURN_IMPL(                                    \
      RAQLET_CONCAT(_raqlet_result_, __LINE__), decl, expr)

#define RAQLET_ASSIGN_OR_RETURN_IMPL(tmp, decl, expr) \
  auto tmp = (expr);                                  \
  if (!tmp.ok()) return tmp.status();                 \
  decl = std::move(tmp).value()

}  // namespace raqlet

#endif  // RAQLET_COMMON_STATUS_H_
