#ifndef RAQLET_COMMON_VALUE_H_
#define RAQLET_COMMON_VALUE_H_

// Runtime value model shared by all three execution engines.
//
// Strings are interned in a SymbolTable (Soufflé-style) so a Value is a
// fixed-size tagged union and tuples hash/compare as plain words.

#include <bit>
#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"

namespace raqlet {

class SymbolTable;

/// Logical column types understood by the schema layer and the engines.
enum class ValueType {
  kNumber,  // 64-bit signed integer (Soufflé `number`)
  kFloat,   // 64-bit IEEE double (Soufflé `float`)
  kSymbol,  // interned string (Soufflé `symbol`)
  kBool,
  kNull,    // SQL NULL / absent optional property
};

const char* ValueTypeToString(ValueType type);

/// A fixed-size tagged runtime value. Total order across all values is
/// defined (by kind first, then payload) so Values can live in ordered
/// containers; equality is exact.
class Value {
 public:
  Value() : kind_(ValueType::kNull), int_(0) {}

  static Value Number(int64_t v) { return Value(ValueType::kNumber, v); }
  static Value Float(double v) {
    Value out;
    out.kind_ = ValueType::kFloat;
    out.float_ = v;
    return out;
  }
  /// `id` is an index into a SymbolTable.
  static Value Symbol(uint32_t id) {
    return Value(ValueType::kSymbol, static_cast<int64_t>(id));
  }
  static Value Bool(bool v) {
    return Value(ValueType::kBool, static_cast<int64_t>(v));
  }
  static Value Null() { return Value(); }

  /// Reassembles a value from a kind tag and the raw 64-bit payload word
  /// returned by RawBits(). Floats round-trip bit-exactly. This is the
  /// boxing boundary of the columnar Relation storage, which keeps payload
  /// words and kind tags in separate arrays.
  static Value FromRaw(ValueType kind, int64_t bits) {
    return Value(kind, bits);
  }

  /// The payload as a raw 64-bit word (floats bit-cast, not truncated).
  int64_t RawBits() const { return int_; }

  ValueType kind() const { return kind_; }
  bool is_null() const { return kind_ == ValueType::kNull; }

  int64_t AsNumber() const { return int_; }
  double AsFloat() const { return float_; }
  uint32_t AsSymbol() const { return static_cast<uint32_t>(int_); }
  bool AsBool() const { return int_ != 0; }

  /// Numeric view: numbers and floats promote to double; other kinds are 0.
  double NumericValue() const {
    if (kind_ == ValueType::kFloat) return float_;
    return static_cast<double>(int_);
  }

  bool operator==(const Value& other) const {
    if (kind_ != other.kind_) return false;
    if (kind_ == ValueType::kFloat) return float_ == other.float_;
    return int_ == other.int_;
  }
  bool operator!=(const Value& other) const { return !(*this == other); }
  bool operator<(const Value& other) const {
    if (kind_ != other.kind_) return kind_ < other.kind_;
    if (kind_ == ValueType::kFloat) return float_ < other.float_;
    return int_ < other.int_;
  }

  size_t Hash() const {
    size_t h = static_cast<size_t>(kind_) * 0x9e3779b97f4a7c15ULL;
    uint64_t bits;
    if (kind_ == ValueType::kFloat) {
      bits = std::bit_cast<uint64_t>(float_);
    } else {
      bits = static_cast<uint64_t>(int_);
    }
    h ^= bits + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    return h;
  }

  /// Renders the value; symbols are resolved through `symbols` when given,
  /// otherwise printed as `$<id>`.
  std::string ToString(const SymbolTable* symbols = nullptr) const;

 private:
  Value(ValueType kind, int64_t payload) : kind_(kind), int_(payload) {}

  ValueType kind_;
  union {
    int64_t int_;
    double float_;
  };
};

/// Interning table mapping strings to dense uint32 ids. Ids are stable for
/// the lifetime of the table. Not thread-safe; each Database owns one.
class SymbolTable {
 public:
  SymbolTable() = default;
  SymbolTable(const SymbolTable&) = default;
  SymbolTable& operator=(const SymbolTable&) = default;

  /// Returns the id for `text`, interning it on first sight.
  uint32_t Intern(const std::string& text);

  /// Returns the id if present, or -1 cast to uint32 otherwise.
  static constexpr uint32_t kNotFound = static_cast<uint32_t>(-1);
  uint32_t Lookup(const std::string& text) const;

  const std::string& Resolve(uint32_t id) const;
  size_t size() const { return strings_.size(); }

 private:
  std::vector<std::string> strings_;
  std::unordered_map<std::string, uint32_t> index_;
};

/// A row of values. Tuples are the unit of storage and of engine exchange.
using Tuple = std::vector<Value>;

struct TupleHash {
  size_t operator()(const Tuple& t) const {
    size_t h = t.size();
    for (const Value& v : t) {
      h ^= v.Hash() + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    }
    return h;
  }
};

std::string TupleToString(const Tuple& t, const SymbolTable* symbols = nullptr);

}  // namespace raqlet

#endif  // RAQLET_COMMON_VALUE_H_
