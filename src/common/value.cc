#include "common/value.h"

#include <cassert>
#include <sstream>

namespace raqlet {

const char* ValueTypeToString(ValueType type) {
  switch (type) {
    case ValueType::kNumber:
      return "number";
    case ValueType::kFloat:
      return "float";
    case ValueType::kSymbol:
      return "symbol";
    case ValueType::kBool:
      return "bool";
    case ValueType::kNull:
      return "null";
  }
  return "unknown";
}

std::string Value::ToString(const SymbolTable* symbols) const {
  switch (kind_) {
    case ValueType::kNumber:
      return std::to_string(int_);
    case ValueType::kFloat: {
      std::ostringstream os;
      os << float_;
      return os.str();
    }
    case ValueType::kSymbol:
      if (symbols != nullptr && AsSymbol() < symbols->size()) {
        return "\"" + symbols->Resolve(AsSymbol()) + "\"";
      }
      return "$" + std::to_string(AsSymbol());
    case ValueType::kBool:
      return int_ != 0 ? "true" : "false";
    case ValueType::kNull:
      return "null";
  }
  return "?";
}

uint32_t SymbolTable::Intern(const std::string& text) {
  auto it = index_.find(text);
  if (it != index_.end()) return it->second;
  uint32_t id = static_cast<uint32_t>(strings_.size());
  strings_.push_back(text);
  index_.emplace(text, id);
  return id;
}

uint32_t SymbolTable::Lookup(const std::string& text) const {
  auto it = index_.find(text);
  return it == index_.end() ? kNotFound : it->second;
}

const std::string& SymbolTable::Resolve(uint32_t id) const {
  assert(id < strings_.size());
  return strings_[id];
}

std::string TupleToString(const Tuple& t, const SymbolTable* symbols) {
  std::string out = "(";
  for (size_t i = 0; i < t.size(); ++i) {
    if (i > 0) out += ", ";
    out += t[i].ToString(symbols);
  }
  out += ")";
  return out;
}

}  // namespace raqlet
