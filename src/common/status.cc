#include "common/status.h"

namespace raqlet {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kUnsupported:
      return "Unsupported";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code());
  out += ": ";
  out += message();
  return out;
}

}  // namespace raqlet
