#ifndef RAQLET_COMMON_LEXER_H_
#define RAQLET_COMMON_LEXER_H_

// Configurable tokenizer shared by the PG-Schema and Cypher frontends.
// (DLIR has its own embedded lexer tuned to Soufflé's quirks, e.g. `.` as
// both directive prefix and rule terminator.)

#include <string>
#include <vector>

#include "common/status.h"

namespace raqlet {

struct Token {
  enum Kind { kIdent, kNumber, kFloat, kString, kPunct, kEof };
  Kind kind = kEof;
  std::string text;
  int line = 1;
  int col = 1;
};

struct LexerConfig {
  /// Multi-character punctuation, matched longest-first in the given
  /// order (e.g. "->", "<=", "..").
  std::vector<std::string> multi_char_puncts;
  /// Accepted single-character punctuation.
  std::string single_puncts;
  /// Recognize // line and /* block */ comments.
  bool cpp_comments = true;
  /// Recognize -- line comments (SQL/Cypher style). Checked before the
  /// '-' punctuation.
  bool dash_comments = false;
  /// Accept single-quoted strings in addition to double-quoted.
  bool single_quote_strings = false;
  /// Characters allowed inside identifiers besides [A-Za-z0-9_].
  std::string extra_ident_chars;
};

/// Tokenizes `source`; the final token is always kEof. Errors carry
/// 1-based line/column positions.
Result<std::vector<Token>> Tokenize(const std::string& source,
                                    const LexerConfig& config);

}  // namespace raqlet

#endif  // RAQLET_COMMON_LEXER_H_
