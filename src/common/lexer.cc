#include "common/lexer.h"

#include <cctype>

namespace raqlet {

namespace {

class LexerImpl {
 public:
  LexerImpl(const std::string& source, const LexerConfig& config)
      : src_(source), config_(config) {}

  Result<std::vector<Token>> Run() {
    std::vector<Token> out;
    while (true) {
      SkipWhitespaceAndComments();
      if (pos_ >= src_.size()) {
        out.push_back(Token{Token::kEof, "", line_, col_});
        return out;
      }
      int line = line_;
      int col = col_;
      char c = src_[pos_];
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_' ||
          config_.extra_ident_chars.find(c) != std::string::npos) {
        std::string ident;
        while (pos_ < src_.size() && IsIdentChar(src_[pos_])) {
          ident.push_back(Take());
        }
        out.push_back(Token{Token::kIdent, ident, line, col});
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c))) {
        std::string num;
        bool is_float = false;
        while (pos_ < src_.size() &&
               (std::isdigit(static_cast<unsigned char>(src_[pos_])) ||
                src_[pos_] == '.')) {
          if (src_[pos_] == '.') {
            // ".." (range punctuation) and trailing dots end the number.
            if (pos_ + 1 >= src_.size() ||
                !std::isdigit(static_cast<unsigned char>(src_[pos_ + 1]))) {
              break;
            }
            if (is_float) break;
            is_float = true;
          }
          num.push_back(Take());
        }
        out.push_back(Token{is_float ? Token::kFloat : Token::kNumber, num,
                            line, col});
        continue;
      }
      if (c == '"' || (c == '\'' && config_.single_quote_strings)) {
        char quote = Take();
        std::string text;
        while (pos_ < src_.size() && src_[pos_] != quote) {
          if (src_[pos_] == '\\' && pos_ + 1 < src_.size()) {
            Take();
            char esc = Take();
            if (esc == 'n') {
              text.push_back('\n');
            } else if (esc == 't') {
              text.push_back('\t');
            } else {
              text.push_back(esc);
            }
            continue;
          }
          text.push_back(Take());
        }
        if (pos_ >= src_.size()) {
          return Status::ParseError("unterminated string at line " +
                                    std::to_string(line));
        }
        Take();
        out.push_back(Token{Token::kString, text, line, col});
        continue;
      }
      bool matched = false;
      for (const std::string& punct : config_.multi_char_puncts) {
        if (src_.compare(pos_, punct.size(), punct) == 0) {
          for (size_t i = 0; i < punct.size(); ++i) Take();
          out.push_back(Token{Token::kPunct, punct, line, col});
          matched = true;
          break;
        }
      }
      if (matched) continue;
      if (config_.single_puncts.find(c) != std::string::npos) {
        Take();
        out.push_back(Token{Token::kPunct, std::string(1, c), line, col});
        continue;
      }
      return Status::ParseError("unexpected character '" + std::string(1, c) +
                                "' at line " + std::to_string(line) + ", col " +
                                std::to_string(col));
    }
  }

 private:
  bool IsIdentChar(char c) const {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
           config_.extra_ident_chars.find(c) != std::string::npos;
  }

  char Take() {
    char c = src_[pos_++];
    if (c == '\n') {
      ++line_;
      col_ = 1;
    } else {
      ++col_;
    }
    return c;
  }

  void SkipWhitespaceAndComments() {
    while (pos_ < src_.size()) {
      char c = src_[pos_];
      if (std::isspace(static_cast<unsigned char>(c))) {
        Take();
      } else if (config_.cpp_comments && c == '/' && pos_ + 1 < src_.size() &&
                 src_[pos_ + 1] == '/') {
        while (pos_ < src_.size() && src_[pos_] != '\n') Take();
      } else if (config_.cpp_comments && c == '/' && pos_ + 1 < src_.size() &&
                 src_[pos_ + 1] == '*') {
        Take();
        Take();
        while (pos_ + 1 < src_.size() &&
               !(src_[pos_] == '*' && src_[pos_ + 1] == '/')) {
          Take();
        }
        if (pos_ + 1 < src_.size()) {
          Take();
          Take();
        }
      } else if (config_.dash_comments && c == '-' && pos_ + 1 < src_.size() &&
                 src_[pos_ + 1] == '-') {
        while (pos_ < src_.size() && src_[pos_] != '\n') Take();
      } else {
        break;
      }
    }
  }

  const std::string& src_;
  const LexerConfig& config_;
  size_t pos_ = 0;
  int line_ = 1;
  int col_ = 1;
};

}  // namespace

Result<std::vector<Token>> Tokenize(const std::string& source,
                                    const LexerConfig& config) {
  LexerImpl impl(source, config);
  return impl.Run();
}

}  // namespace raqlet
