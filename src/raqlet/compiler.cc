#include "raqlet/compiler.h"

#include "analysis/typecheck.h"
#include "obs/trace.h"

#include "cypher/parser.h"
#include "dlir/parser.h"
#include "gql/parser.h"
#include "sqlpgq/parser.h"
#include "dlir/souffle_printer.h"
#include "opt/pass_manager.h"
#include "pgir/cypher_printer.h"
#include "pgir/pgir_to_dlir.h"
#include "sqir/dlir_to_sqir.h"
#include "sqir/sql_printer.h"

namespace raqlet {

Status Compiler::LoadPgSchema(const std::string& text) {
  RAQLET_ASSIGN_OR_RETURN(pg_schema_, schema::ParsePgSchema(text));
  dl_schema_ = schema::TranslateSchema(pg_schema_);
  schema_loaded_ = true;
  return Status::OK();
}

Status Compiler::CreateEdbs(Database* db) const {
  if (!schema_loaded_) return Status::InvalidArgument("no schema loaded");
  return schema::CreateEdbRelations(dl_schema_, db);
}

Result<CompiledQuery> Compiler::CompileGql(
    const std::string& query, const CompileOptions& options) const {
  if (!schema_loaded_) {
    return Status::InvalidArgument(
        "load a PG-Schema before compiling GQL queries");
  }
  CompiledQuery out;
  {
    obs::PhaseTimer timer(options.metrics, "parse");
    obs::TraceScope span("compile.parse");
    RAQLET_ASSIGN_OR_RETURN(out.ast, gql::ParseQuery(query));
  }
  pgir::LowerOptions lower_options;
  lower_options.parameters = options.parameters;
  {
    obs::PhaseTimer timer(options.metrics, "lower-pgir");
    obs::TraceScope span("compile.lower");
    RAQLET_ASSIGN_OR_RETURN(out.pgir,
                            pgir::LowerCypher(out.ast, lower_options));
  }
  out.warnings = out.pgir.warnings;
  {
    obs::PhaseTimer timer(options.metrics, "translate-dlir");
    obs::TraceScope span("compile.translate");
    RAQLET_ASSIGN_OR_RETURN(out.dlir,
                            pgir::TranslateToDlir(out.pgir, dl_schema_));
  }
  {
    obs::PhaseTimer timer(options.metrics, "optimize");
    obs::TraceScope span("compile.optimize");
    RAQLET_ASSIGN_OR_RETURN(out.optimized,
                            Optimize(out.dlir, options.opt_level));
  }
  return out;
}

Result<CompiledQuery> Compiler::CompileSqlPgq(
    const std::string& query, const CompileOptions& options) const {
  if (!schema_loaded_) {
    return Status::InvalidArgument(
        "load a PG-Schema before compiling SQL/PGQ queries");
  }
  CompiledQuery out;
  {
    obs::PhaseTimer timer(options.metrics, "parse");
    obs::TraceScope span("compile.parse");
    RAQLET_ASSIGN_OR_RETURN(sqlpgq::PgqQuery pgq, sqlpgq::ParseQuery(query));
    out.ast = std::move(pgq.query);
  }
  pgir::LowerOptions lower_options;
  lower_options.parameters = options.parameters;
  {
    obs::PhaseTimer timer(options.metrics, "lower-pgir");
    obs::TraceScope span("compile.lower");
    RAQLET_ASSIGN_OR_RETURN(out.pgir,
                            pgir::LowerCypher(out.ast, lower_options));
  }
  out.warnings = out.pgir.warnings;
  {
    obs::PhaseTimer timer(options.metrics, "translate-dlir");
    obs::TraceScope span("compile.translate");
    RAQLET_ASSIGN_OR_RETURN(out.dlir,
                            pgir::TranslateToDlir(out.pgir, dl_schema_));
  }
  {
    obs::PhaseTimer timer(options.metrics, "optimize");
    obs::TraceScope span("compile.optimize");
    RAQLET_ASSIGN_OR_RETURN(out.optimized,
                            Optimize(out.dlir, options.opt_level));
  }
  return out;
}

Result<CompiledQuery> Compiler::CompileCypher(
    const std::string& query, const CompileOptions& options) const {
  if (!schema_loaded_) {
    return Status::InvalidArgument(
        "load a PG-Schema before compiling Cypher queries");
  }
  CompiledQuery out;
  {
    obs::PhaseTimer timer(options.metrics, "parse");
    obs::TraceScope span("compile.parse");
    RAQLET_ASSIGN_OR_RETURN(out.ast, cypher::ParseQuery(query));
  }
  pgir::LowerOptions lower_options;
  lower_options.parameters = options.parameters;
  {
    obs::PhaseTimer timer(options.metrics, "lower-pgir");
    obs::TraceScope span("compile.lower");
    RAQLET_ASSIGN_OR_RETURN(out.pgir,
                            pgir::LowerCypher(out.ast, lower_options));
  }
  out.warnings = out.pgir.warnings;
  {
    obs::PhaseTimer timer(options.metrics, "translate-dlir");
    obs::TraceScope span("compile.translate");
    RAQLET_ASSIGN_OR_RETURN(out.dlir,
                            pgir::TranslateToDlir(out.pgir, dl_schema_));
  }
  {
    obs::PhaseTimer timer(options.metrics, "optimize");
    obs::TraceScope span("compile.optimize");
    RAQLET_ASSIGN_OR_RETURN(out.optimized,
                            Optimize(out.dlir, options.opt_level));
  }
  return out;
}

Result<dlir::Program> Compiler::CompileDatalog(const std::string& text) const {
  RAQLET_ASSIGN_OR_RETURN(dlir::Program program, dlir::ParseProgram(text));
  // Full static analysis instead of the first-violation Validate(): one
  // compile reports every structural/type/stratification error.
  RAQLET_RETURN_IF_ERROR(analysis::VerifyProgram(program));
  return program;
}

Result<dlir::Program> Compiler::ParseDatalog(const std::string& text) const {
  return dlir::ParseProgram(text);
}

Status Compiler::Check(const dlir::Program& program) const {
  return analysis::VerifyProgram(program);
}

Result<dlir::Program> Compiler::Optimize(const dlir::Program& program,
                                         int opt_level) const {
  switch (opt_level) {
    case 0:
      return program;
    case 1:
      return opt::PassManager::Standard().Run(program);
    default:
      return opt::PassManager::Aggressive().Run(program);
  }
}

analysis::AnalysisReport Compiler::Analyze(const dlir::Program& program) const {
  return analysis::Analyze(program);
}

std::string Compiler::EmitSouffle(const dlir::Program& program) const {
  return dlir::ToSouffle(program);
}

std::string Compiler::EmitCypher(const pgir::PgirQuery& query) const {
  return pgir::ToCypher(query);
}

std::string Compiler::EmitGql(const pgir::PgirQuery& query) const {
  return pgir::ToGql(query);
}

Result<sqir::SqirProgram> Compiler::ToSqir(const dlir::Program& program) const {
  return sqir::TranslateToSqir(program);
}

Result<std::string> Compiler::EmitSql(const dlir::Program& program) const {
  RAQLET_ASSIGN_OR_RETURN(sqir::SqirProgram sqir_program,
                          sqir::TranslateToSqir(program));
  return sqir::ToSql(sqir_program);
}

const engine::DatalogEngine& Compiler::DatalogEngineFor(
    const engine::EvalOptions& options) const {
  // Never bake a per-call guard into a cached engine: the cache outlives
  // the call (options equality deliberately ignores the guard), so a
  // stored pointer would dangle and silently guard later unguarded runs.
  // The effective guard is always the Run-call parameter.
  engine::EvalOptions cache_key = options;
  cache_key.guard = nullptr;
  std::lock_guard<std::mutex> lock(engine_cache_mutex_);
  for (const auto& [cached_options, engine] : engine_cache_) {
    if (cached_options == cache_key) return *engine;
  }
  engine_cache_.emplace_back(
      cache_key, std::make_unique<engine::DatalogEngine>(cache_key));
  return *engine_cache_.back().second;
}

namespace {

// True for the QueryGuard's terminal causes; folds the trip into the
// metrics sink so EXPLAIN ANALYZE / --demo can report it.
bool RecordGuardTrip(const Status& status, const runtime::QueryGuard* guard,
                     obs::QueryMetrics* metrics) {
  bool tripped = status.code() == StatusCode::kCancelled ||
                 status.code() == StatusCode::kDeadlineExceeded ||
                 status.code() == StatusCode::kResourceExhausted;
  if (!tripped || metrics == nullptr) return tripped;
  switch (status.code()) {
    case StatusCode::kCancelled:
      ++metrics->guard.cancelled;
      break;
    case StatusCode::kDeadlineExceeded:
      ++metrics->guard.deadline_exceeded;
      break;
    default:
      ++metrics->guard.resource_exhausted;
      break;
  }
  if (guard != nullptr) {
    metrics->guard.rows = guard->rows();
    metrics->guard.bytes = guard->bytes();
  }
  return tripped;
}

}  // namespace

Result<engine::ResultTable> Compiler::RunOnDatalog(
    const dlir::Program& program, Database* db, engine::EvalStats* stats,
    const engine::EvalOptions& options, obs::QueryMetrics* metrics) const {
  // Check-before-execute: in debug/sanitizer builds (or with
  // RAQLET_VERIFY_PASSES=1) every program entering an engine has passed
  // the static analyzer. Release keeps the hot path free of it.
  if (analysis::VerifyByDefault()) RAQLET_RETURN_IF_ERROR(Check(program));
  const engine::DatalogEngine& eng = DatalogEngineFor(options);
  {
    obs::PhaseTimer timer(metrics, "execute-datalog");
    Status s = eng.Run(program, db, stats,
                       metrics != nullptr ? &metrics->datalog : nullptr,
                       options.guard);
    if (!s.ok()) {
      RecordGuardTrip(s, options.guard, metrics);
      return s;
    }
  }
  if (metrics != nullptr) obs::CollectMemoryBreakdown(*db, metrics);
  std::vector<std::string> outputs = program.OutputRelations();
  if (outputs.size() != 1) {
    return Status::InvalidArgument("expected exactly one output relation");
  }
  RAQLET_ASSIGN_OR_RETURN(const Relation* rel, db->GetRelation(outputs[0]));
  engine::ResultTable result;
  for (const Column& col : rel->schema().columns) {
    result.columns.push_back(col.name);
  }
  // Fresh boxed copies: keeps the (possibly benchmarked) output relation's
  // columnar storage free of a row-compatibility cache.
  result.rows = rel->MaterializeRows();
  return result;
}

const engine::SqlEngine& Compiler::SqlEngineFor(
    const engine::SqlOptions& options) const {
  // Same no-guard-in-cache rule as DatalogEngineFor.
  engine::SqlOptions cache_key = options;
  cache_key.guard = nullptr;
  std::lock_guard<std::mutex> lock(engine_cache_mutex_);
  for (const auto& [cached_options, engine] : sql_engine_cache_) {
    if (cached_options == cache_key) return *engine;
  }
  sql_engine_cache_.emplace_back(
      cache_key, std::make_unique<engine::SqlEngine>(cache_key));
  return *sql_engine_cache_.back().second;
}

Result<engine::ResultTable> Compiler::RunOnSql(
    const dlir::Program& program, Database* db, engine::SqlMode mode,
    engine::SqlStats* stats, int num_threads, obs::QueryMetrics* metrics,
    const runtime::QueryGuard* guard) const {
  // Same check-before-execute contract as RunOnDatalog (RunOnGraph takes
  // PGIR, which never passes through DLIR verification).
  if (analysis::VerifyByDefault()) RAQLET_RETURN_IF_ERROR(Check(program));
  RAQLET_ASSIGN_OR_RETURN(sqir::SqirProgram sqir_program,
                          sqir::TranslateToSqir(program));
  engine::SqlOptions options;
  options.mode = mode;
  options.num_threads = num_threads;
  Result<engine::ResultTable> result =
      [&]() -> Result<engine::ResultTable> {
    obs::PhaseTimer timer(metrics, "execute-sql");
    return SqlEngineFor(options).Run(
        sqir_program, db, stats,
        metrics != nullptr ? &metrics->sql : nullptr, guard);
  }();
  if (!result.ok()) RecordGuardTrip(result.status(), guard, metrics);
  if (metrics != nullptr) obs::CollectMemoryBreakdown(*db, metrics);
  return result;
}

Result<engine::ResultTable> Compiler::RunOnGraph(
    const pgir::PgirQuery& query, const engine::GraphStore& store,
    Database* db, engine::GraphStats* stats,
    const engine::GraphOptions& options, obs::QueryMetrics* metrics) const {
  engine::GraphEngine eng(&store, &dl_schema_, db, options);
  Result<engine::ResultTable> result =
      [&]() -> Result<engine::ResultTable> {
    obs::PhaseTimer timer(metrics, "execute-graph");
    return eng.Run(query, stats,
                   metrics != nullptr ? &metrics->graph : nullptr);
  }();
  if (!result.ok()) RecordGuardTrip(result.status(), options.guard, metrics);
  if (metrics != nullptr) obs::CollectMemoryBreakdown(*db, metrics);
  return result;
}

Result<engine::GraphStore> Compiler::BuildGraphStore(
    const Database& db) const {
  if (!schema_loaded_) return Status::InvalidArgument("no schema loaded");
  return engine::GraphStore::Build(dl_schema_, db);
}

Result<std::unique_ptr<engine::IncrementalView>> Compiler::BeginIncremental(
    const dlir::Program& program, Database* db,
    const engine::IncrementalOptions& options, obs::QueryMetrics* metrics,
    const runtime::QueryGuard* guard) const {
  if (analysis::VerifyByDefault()) RAQLET_RETURN_IF_ERROR(Check(program));
  auto view = std::make_unique<engine::IncrementalView>(options);
  {
    obs::PhaseTimer timer(metrics, "initialize-incremental");
    Status s = view->Initialize(program, db, nullptr, guard);
    if (!s.ok()) {
      RecordGuardTrip(s, guard, metrics);
      return s;
    }
  }
  if (metrics != nullptr) obs::CollectMemoryBreakdown(*db, metrics);
  return view;
}

Result<AppliedDelta> Compiler::ApplyDelta(engine::IncrementalView* view,
                                          const DeltaBatch& delta,
                                          obs::QueryMetrics* metrics,
                                          const runtime::QueryGuard* guard)
    const {
  if (view == nullptr || !view->initialized()) {
    return Status::InvalidArgument("ApplyDelta on an uninitialized view");
  }
  Result<AppliedDelta> result = [&] {
    obs::PhaseTimer timer(metrics, "apply-delta");
    return view->ApplyDelta(
        delta, metrics != nullptr ? &metrics->incremental : nullptr, guard);
  }();
  if (!result.ok()) {
    RecordGuardTrip(result.status(), guard, metrics);
    return result;
  }
  if (metrics != nullptr) {
    obs::CollectMemoryBreakdown(*view->database(), metrics);
  }
  return result;
}

}  // namespace raqlet
