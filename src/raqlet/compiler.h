#ifndef RAQLET_RAQLET_COMPILER_H_
#define RAQLET_RAQLET_COMPILER_H_

// raqlet::Compiler — the public entry point tying the Fig. 1 pipeline
// together: parse (Cypher or Datalog) -> PGIR -> DLIR -> analyses &
// optimizations -> unparse (Soufflé Datalog / SQL) or execute on any of
// the three engines.
//
// Typical use:
//
//   raqlet::Compiler compiler;
//   RAQLET_RETURN_IF_ERROR(compiler.LoadPgSchema(schema_text));
//   RAQLET_ASSIGN_OR_RETURN(auto unit, compiler.CompileCypher(query));
//   std::string datalog = compiler.EmitSouffle(unit.optimized);
//   RAQLET_ASSIGN_OR_RETURN(std::string sql,
//                           compiler.EmitSql(unit.optimized));
//   RAQLET_ASSIGN_OR_RETURN(auto rows,
//                           compiler.RunOnDatalog(unit.optimized, &db));

#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "analysis/analyses.h"
#include "common/status.h"
#include "cypher/ast.h"
#include "dlir/program.h"
#include "engine/datalog/engine.h"
#include "engine/datalog/incremental.h"
#include "engine/graph/executor.h"
#include "engine/graph/graph_store.h"
#include "engine/sql/executor.h"
#include "obs/metrics.h"
#include "pgir/pgir.h"
#include "runtime/query_guard.h"
#include "schema/dl_schema.h"
#include "schema/pg_schema.h"
#include "sqir/sqir.h"

namespace raqlet {

/// Everything produced while compiling one Cypher query.
struct CompiledQuery {
  cypher::Query ast;
  pgir::PgirQuery pgir;
  dlir::Program dlir;       // direct translation (paper's unoptimized form)
  dlir::Program optimized;  // after the requested pass pipeline
  std::vector<std::string> warnings;
};

struct CompileOptions {
  /// Values for $parameters in the query text.
  std::map<std::string, dlir::Constant> parameters;
  /// Optimization level: 0 = none, 1 = Standard pipeline (inline,
  /// pushdown, self-join-elim, dedup-atoms, dre — the paper's "fully
  /// optimized" Table 1 configuration), 2 = Aggressive (adds magic sets
  /// and linearization).
  int opt_level = 1;
  /// Observability sink: when set, the pipeline records per-phase wall
  /// times ("parse", "lower-pgir", "translate-dlir", "optimize") into
  /// metrics->phases. Not part of engine-cache keys — a sink, not a
  /// behavioural option.
  obs::QueryMetrics* metrics = nullptr;
};

class Compiler {
 public:
  Compiler() = default;

  /// Loads the PG-Schema (Fig. 2a) and derives the DL-Schema (Fig. 2b).
  Status LoadPgSchema(const std::string& text);

  const schema::PgSchema& pg_schema() const { return pg_schema_; }
  const schema::DlSchema& dl_schema() const { return dl_schema_; }

  /// Creates all EDB relations of the loaded schema in `db`.
  Status CreateEdbs(Database* db) const;

  /// Full Cypher pipeline: parse -> PGIR -> DLIR -> optimize.
  Result<CompiledQuery> CompileCypher(const std::string& query,
                                      const CompileOptions& options = {}) const;

  /// GQL frontend (ISO 39075 core; shares the pattern grammar and the
  /// whole downstream pipeline with Cypher).
  Result<CompiledQuery> CompileGql(const std::string& query,
                                   const CompileOptions& options = {}) const;

  /// SQL/PGQ frontend (ISO 9075-16 GRAPH_TABLE core). The graph name in
  /// the statement is informational (Raqlet has one loaded schema).
  Result<CompiledQuery> CompileSqlPgq(const std::string& query,
                                      const CompileOptions& options = {}) const;

  /// Datalog frontend: parse Soufflé-dialect text into DLIR and verify it
  /// (static analyzer; all errors reported, not just the first).
  Result<dlir::Program> CompileDatalog(const std::string& text) const;

  /// Parse only, no verification — for tools that want to run the
  /// analyzer themselves and render the diagnostics (raqlet_cli --check).
  Result<dlir::Program> ParseDatalog(const std::string& text) const;

  /// The static analyzer as a Status: OK when the program has no
  /// structural/type/stratification errors, otherwise InvalidArgument
  /// carrying every diagnostic (see src/analysis/typecheck.h). Run* entry
  /// points call this before executing when analysis::VerifyByDefault()
  /// is on (debug/sanitizer builds or RAQLET_VERIFY_PASSES=1), keeping
  /// release hot paths unchanged.
  Status Check(const dlir::Program& program) const;

  /// Applies the optimization pipeline for `opt_level` to a program.
  Result<dlir::Program> Optimize(const dlir::Program& program,
                                 int opt_level = 1) const;

  /// §4 static analysis report.
  analysis::AnalysisReport Analyze(const dlir::Program& program) const;

  // ---- backends (unparsers) ----

  /// Soufflé Datalog text (Fig. 3d).
  std::string EmitSouffle(const dlir::Program& program) const;
  /// Cypher / GQL text from PGIR (Fig. 1's graph-language unparsers).
  std::string EmitCypher(const pgir::PgirQuery& query) const;
  std::string EmitGql(const pgir::PgirQuery& query) const;
  /// Recursive SQL text (Fig. 3e). Fails when recursive SQL cannot express
  /// the program (mutual/non-linear recursion, lattice relations).
  Result<std::string> EmitSql(const dlir::Program& program) const;
  /// The SQIR form (for inspection or direct execution).
  Result<sqir::SqirProgram> ToSqir(const dlir::Program& program) const;

  // ---- engines ----

  /// Bottom-up Datalog evaluation (Soufflé stand-in). Returns the rows of
  /// the single output relation. `options.num_threads > 1` evaluates on
  /// the parallel runtime (identical results, see engine/datalog).
  /// All three Run* entry points accept an optional obs::QueryMetrics
  /// sink: execution wall time lands in metrics->phases ("execute-*"),
  /// the engine's detailed counters in the matching sub-struct, and the
  /// database memory breakdown in metrics->memory.
  Result<engine::ResultTable> RunOnDatalog(
      const dlir::Program& program, Database* db,
      engine::EvalStats* stats = nullptr,
      const engine::EvalOptions& options = {},
      obs::QueryMetrics* metrics = nullptr) const;

  /// Recursive-SQL evaluation (DuckDB/HyPer stand-ins via `mode`).
  /// `num_threads > 1` partitions the vectorized mode's column batches
  /// across the runtime's thread pool (identical results at any count).
  ///
  /// All three Run* entry points honour a runtime::QueryGuard —
  /// RunOnDatalog via EvalOptions::guard, RunOnSql via the explicit
  /// `guard` parameter, RunOnGraph via GraphOptions::guard. A tripped
  /// guard surfaces as the guard's terminal Status (Cancelled /
  /// DeadlineExceeded / ResourceExhausted), recorded in
  /// metrics->guard when a metrics sink is attached, and leaves the
  /// database, cached engines and this Compiler reusable.
  Result<engine::ResultTable> RunOnSql(
      const dlir::Program& program, Database* db,
      engine::SqlMode mode = engine::SqlMode::kVectorized,
      engine::SqlStats* stats = nullptr, int num_threads = 1,
      obs::QueryMetrics* metrics = nullptr,
      const runtime::QueryGuard* guard = nullptr) const;

  /// Graph-traversal evaluation of PGIR (Neo4j stand-in) over a prebuilt
  /// store (use BuildGraphStore; building is the analogue of data load).
  /// `options.mode` selects the binding-table representation: the default
  /// column-batch executor, or the per-binding row interpreter it is
  /// differentially tested against (identical rows, identical order).
  Result<engine::ResultTable> RunOnGraph(
      const pgir::PgirQuery& query, const engine::GraphStore& store,
      Database* db, engine::GraphStats* stats = nullptr,
      const engine::GraphOptions& options = {},
      obs::QueryMetrics* metrics = nullptr) const;

  /// Builds the adjacency-list property graph from the EDBs in `db`.
  Result<engine::GraphStore> BuildGraphStore(const Database& db) const;

  // ---- incremental maintenance ----

  /// Evaluates `program` on `db` from scratch and returns a maintainable
  /// view: feed it +/− base-fact deltas via ApplyDelta and the derived
  /// relations track what a full re-evaluation would produce (see
  /// engine/datalog/incremental.h for strategy and determinism contract).
  /// Runs the same check-before-execute verification as RunOnDatalog;
  /// records an "initialize-incremental" phase when `metrics` is set.
  Result<std::unique_ptr<engine::IncrementalView>> BeginIncremental(
      const dlir::Program& program, Database* db,
      const engine::IncrementalOptions& options = {},
      obs::QueryMetrics* metrics = nullptr,
      const runtime::QueryGuard* guard = nullptr) const;

  /// Applies one DeltaBatch through `view`, recording the "apply-delta"
  /// phase, the incremental counters (metrics->incremental), guard trips
  /// and the post-delta memory breakdown into `metrics` when set.
  Result<AppliedDelta> ApplyDelta(engine::IncrementalView* view,
                                  const DeltaBatch& delta,
                                  obs::QueryMetrics* metrics = nullptr,
                                  const runtime::QueryGuard* guard = nullptr)
      const;

 private:
  // One DatalogEngine per distinct EvalOptions ever requested, so repeated
  // RunOnDatalog calls reuse the engine's thread pool instead of spawning
  // and joining workers per query. Engines live until the Compiler dies
  // (the set of distinct option values is small in practice) and are safe
  // to run concurrently; the mutex only guards cache lookup/insert.
  const engine::DatalogEngine& DatalogEngineFor(
      const engine::EvalOptions& options) const;
  // Same pattern for the SQL engine (its vectorized mode owns a thread
  // pool when num_threads > 1).
  const engine::SqlEngine& SqlEngineFor(
      const engine::SqlOptions& options) const;

  schema::PgSchema pg_schema_;
  schema::DlSchema dl_schema_;
  bool schema_loaded_ = false;
  mutable std::mutex engine_cache_mutex_;
  mutable std::vector<
      std::pair<engine::EvalOptions, std::unique_ptr<engine::DatalogEngine>>>
      engine_cache_;
  mutable std::vector<
      std::pair<engine::SqlOptions, std::unique_ptr<engine::SqlEngine>>>
      sql_engine_cache_;
};

}  // namespace raqlet

#endif  // RAQLET_RAQLET_COMPILER_H_
