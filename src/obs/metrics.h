#ifndef RAQLET_OBS_METRICS_H_
#define RAQLET_OBS_METRICS_H_

// Unified per-query execution metrics across the compilation pipeline and
// all three engines. The engines keep their small public stats structs
// (EvalStats / SqlStats / GraphStats — cheap, always-on totals); the
// structures here are the opt-in detail layer behind EXPLAIN ANALYZE and
// `raqlet_cli --demo`: per-SCC fixpoint breakdowns, per-plan-step operator
// counters, per-clause frontier sizes, pipeline phase timings, and the
// database memory breakdown.
//
// Determinism contract: every *count* recorded here is bit-identical
// across thread counts and execution modes that promise identical results
// (the same contract the engines' stats structs obey, asserted by
// tests/parallel_engine_test.cc), with two documented exceptions: the
// `*_micros` fields are wall time, and SqlStepMetrics::batches counts
// pipeline invocations, which depend on how the leading scan was chunked
// across threads. Consumers that compare metrics must ignore those two;
// ToString() prints timings separately for that reason.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace raqlet {
class Database;  // storage/database.h
}  // namespace raqlet

namespace raqlet::obs {

/// One timed stage of the compile/execute pipeline ("parse", "lower-pgir",
/// "translate-dlir", "optimize", "execute-datalog", ...).
struct PhaseTiming {
  std::string name;
  int64_t micros = 0;
};

/// Per-SCC fixpoint detail from the Datalog engine. Indexed by the SCC's
/// position in DependencyGraph::SccsInTopologicalOrder() — the same index
/// the SCC scheduler uses, so a metrics slot is written by exactly one
/// evaluation task and needs no synchronization.
struct SccMetrics {
  std::vector<std::string> preds;  // predicates of the SCC
  bool recursive = false;
  size_t rounds = 0;            // fixpoint rounds (0 for non-recursive)
  size_t rule_evaluations = 0;  // rule-variant evaluations
  size_t tuples_considered = 0;
  size_t tuples_inserted = 0;
  /// New tuples admitted per merge: for recursive SCCs the exit-rule
  /// (init) batch first, then one entry per fixpoint round — each entry
  /// is the delta the following round joins against, so
  /// round_delta_sizes.size() == rounds + 1 and the last entry is 0 (the
  /// empty delta that ended the fixpoint). Empty for non-recursive SCCs.
  std::vector<size_t> round_delta_sizes;
  int64_t micros = 0;  // wall time of this SCC (non-deterministic)
};

struct DatalogMetrics {
  std::vector<SccMetrics> sccs;

  size_t TotalInserted() const;
  bool empty() const { return sccs.empty(); }
};

/// Per-plan-step operator counters from the SQL kVectorized executor.
/// Entries are keyed by scanned/probed relation and aggregated over every
/// branch, batch and recursive iteration of the CTE, in first-seen plan
/// order (the join order can differ between branches, so position alone
/// is not a stable key).
struct SqlStepMetrics {
  std::string relation;    // relation scanned or probed at this step
  size_t batches = 0;      // pipeline invocations (chunking-dependent)
  size_t rows_in = 0;      // binding rows entering the step
  size_t probes = 0;       // index probe operations issued
  size_t rows_matched = 0; // join matches before filters
  size_t rows_out = 0;     // rows surviving the step's filters
  /// Filter selectivity: rows_out / rows_matched (1.0 when no filter).
  double Selectivity() const {
    return rows_matched == 0
               ? 1.0
               : static_cast<double>(rows_out) /
                     static_cast<double>(rows_matched);
  }
};

/// Per-CTE detail from the SQL engine.
struct SqlCteMetrics {
  std::string name;
  bool recursive = false;
  size_t iterations = 0;       // semi-naive / working-table rounds
  size_t rows = 0;             // materialized rows (after dedup)
  size_t dedup_attempts = 0;   // rows offered to the dedup table
  size_t dedup_inserted = 0;   // rows admitted (attempts - hits)
  std::vector<SqlStepMetrics> steps;
  /// Dedup hit rate: fraction of offered rows that were duplicates.
  double DedupHitRate() const {
    return dedup_attempts == 0
               ? 0.0
               : 1.0 - static_cast<double>(dedup_inserted) /
                           static_cast<double>(dedup_attempts);
  }
};

struct SqlMetrics {
  std::vector<SqlCteMetrics> ctes;

  bool empty() const { return ctes.empty(); }
};

/// Binding-table size after each evaluated clause of a graph query.
struct GraphClauseMetrics {
  std::string kind;      // "match", "where", "with", "return"
  size_t rows_after = 0; // binding-table rows after the clause
};

struct GraphMetrics {
  std::vector<GraphClauseMetrics> clauses;
  size_t closure_cache_hits = 0;    // memoized reachability reuses
  size_t closure_cache_misses = 0;  // full BFS expansions
  size_t frontier_peak = 0;         // largest BFS frontier seen

  bool empty() const {
    return clauses.empty() && closure_cache_hits == 0 &&
           closure_cache_misses == 0;
  }
};

/// Guard-trip counters (runtime::QueryGuard). Incremented by the Compiler
/// facade when a Run* entry point returns a guard's terminal status, plus
/// the guard's final row/byte tallies — so EXPLAIN ANALYZE and --demo can
/// report how far a budgeted query got before tripping.
struct GuardMetrics {
  size_t cancelled = 0;           // kCancelled trips observed
  size_t deadline_exceeded = 0;   // kDeadlineExceeded trips observed
  size_t resource_exhausted = 0;  // kResourceExhausted trips observed
  size_t rows = 0;   // rows charged to the guard before the trip
  size_t bytes = 0;  // bytes charged to the guard before the trip

  bool empty() const {
    return cancelled == 0 && deadline_exceeded == 0 && resource_exhausted == 0;
  }
};

/// Detail from one incremental maintenance pass (engine::IncrementalView
/// ::ApplyDelta): how much of the dependency graph was re-fired and what
/// each deletion strategy did. Every field is a deterministic count —
/// bit-identical across thread counts, like the engine stats.
struct IncrementalMetrics {
  size_t base_added = 0;       // net EDB tuples inserted by the delta
  size_t base_removed = 0;     // net EDB tuples erased by the delta
  size_t sccs_touched = 0;     // SCCs re-fired (reachable from changes)
  size_t sccs_skipped = 0;     // rule-bearing SCCs left untouched
  size_t rounds = 0;           // incremental fixpoint rounds, all phases
  size_t tuples_inserted = 0;  // net derived tuples inserted
  size_t tuples_deleted = 0;   // net derived tuples erased
  size_t overdeleted = 0;      // DRed: tuples tentatively deleted
  size_t rederived = 0;        // DRed: overdeletions proven still derivable
  size_t support_updates = 0;  // counting: per-tuple support adjustments
  size_t recomputed_sccs = 0;  // recompute-and-diff runs (agg/lattice/bail)
  size_t dred_bailouts = 0;    // DRed cascades handed to recompute-and-diff

  bool empty() const {
    return base_added == 0 && base_removed == 0 && sccs_touched == 0 &&
           sccs_skipped == 0 && rounds == 0 && tuples_inserted == 0 &&
           tuples_deleted == 0 && overdeleted == 0 && rederived == 0 &&
           support_updates == 0 && recomputed_sccs == 0 && dred_bailouts == 0;
  }
};

/// Heap bytes held by one stored relation.
struct RelationMemory {
  std::string name;
  size_t rows = 0;
  size_t bytes = 0;
};

/// Everything observed while compiling and executing one query.
struct QueryMetrics {
  std::vector<PhaseTiming> phases;
  DatalogMetrics datalog;
  SqlMetrics sql;
  GraphMetrics graph;
  IncrementalMetrics incremental;      // view-maintenance detail
  GuardMetrics guard;                  // cancellation/budget trips
  std::vector<RelationMemory> memory;  // per-relation database breakdown

  void AddPhase(std::string name, int64_t micros) {
    phases.push_back({std::move(name), micros});
  }
  size_t TotalMemoryBytes() const;

  /// Human-readable report (the `raqlet_cli --demo` / EXPLAIN ANALYZE
  /// footer). Deterministic counters first, wall-clock timings last.
  std::string ToString() const;
};

/// Fills `metrics->memory` with the per-relation breakdown of `db`
/// (Relation::MemoryBytes — columns, kind sidecars, dedup table), in
/// relation creation order.
void CollectMemoryBreakdown(const Database& db, QueryMetrics* metrics);

/// RAII phase timer: appends {name, elapsed} to metrics->phases on
/// destruction. Null-safe — with metrics == nullptr it does nothing.
class PhaseTimer {
 public:
  PhaseTimer(QueryMetrics* metrics, const char* name);
  ~PhaseTimer();

  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;

 private:
  QueryMetrics* metrics_;
  const char* name_;
  int64_t start_us_ = 0;
};

}  // namespace raqlet::obs

#endif  // RAQLET_OBS_METRICS_H_
