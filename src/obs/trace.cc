#include "obs/trace.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace raqlet::obs {

std::atomic<TraceSession*> TraceSession::current_{nullptr};

namespace {

// Monotone session counter: a thread's cached buffer pointer is only
// trusted when its cached generation matches the live session's, so a
// session constructed at the address of a destroyed one can never alias
// into stale thread-local state.
std::atomic<uint64_t> g_session_generation{0};

struct TlsSlot {
  uint64_t generation = 0;
  void* buffer = nullptr;
};

thread_local TlsSlot tls_slot;

void AppendJsonEscaped(const std::string& s, std::ostream& os) {
  for (char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\t':
        os << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
}

}  // namespace

TraceSession::TraceSession()
    : origin_(std::chrono::steady_clock::now()),
      generation_(g_session_generation.fetch_add(1,
                                                 std::memory_order_relaxed) +
                  1) {
  TraceSession* expected = nullptr;
  if (!current_.compare_exchange_strong(expected, this,
                                        std::memory_order_release)) {
    // Nested sessions would silently split one trace across two sinks;
    // fail loudly instead (tracing is an explicit, single-owner mode).
    std::fprintf(stderr, "TraceSession: a session is already installed\n");
    std::abort();
  }
}

TraceSession::~TraceSession() {
  current_.store(nullptr, std::memory_order_release);
}

TraceSession::ThreadBuffer* TraceSession::BufferForThisThread() {
  if (tls_slot.generation == generation_) {
    return static_cast<ThreadBuffer*>(tls_slot.buffer);
  }
  std::lock_guard<std::mutex> lock(registry_mutex_);
  auto buffer = std::make_unique<ThreadBuffer>();
  buffer->tid = static_cast<uint32_t>(buffers_.size());
  ThreadBuffer* raw = buffer.get();
  buffers_.push_back(std::move(buffer));
  tls_slot.generation = generation_;
  tls_slot.buffer = raw;
  return raw;
}

void TraceSession::Record(std::string name, int64_t ts_us, int64_t dur_us) {
  ThreadBuffer* buffer = BufferForThisThread();
  TraceEvent& event = buffer->events.emplace_back();
  event.name = std::move(name);
  event.ts_us = ts_us;
  event.dur_us = dur_us;
  event.tid = buffer->tid;
}

size_t TraceSession::event_count() const {
  std::lock_guard<std::mutex> lock(registry_mutex_);
  size_t n = 0;
  for (const auto& buffer : buffers_) n += buffer->events.size();
  return n;
}

std::vector<TraceEvent> TraceSession::Events() const {
  std::vector<TraceEvent> all;
  {
    std::lock_guard<std::mutex> lock(registry_mutex_);
    for (const auto& buffer : buffers_) {
      all.insert(all.end(), buffer->events.begin(), buffer->events.end());
    }
  }
  std::stable_sort(all.begin(), all.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     if (a.ts_us != b.ts_us) return a.ts_us < b.ts_us;
                     return a.tid < b.tid;
                   });
  return all;
}

void TraceSession::WriteChromeTrace(std::ostream& os) const {
  std::vector<TraceEvent> events = Events();
  os << "{\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& event : events) {
    if (!first) os << ",";
    first = false;
    os << "\n{\"name\":\"";
    AppendJsonEscaped(event.name, os);
    os << "\",\"cat\":\"raqlet\",\"ph\":\"X\",\"ts\":" << event.ts_us
       << ",\"dur\":" << event.dur_us << ",\"pid\":1,\"tid\":" << event.tid
       << "}";
  }
  os << "\n],\"displayTimeUnit\":\"ms\"}\n";
}

Status TraceSession::WriteChromeTrace(const std::string& path) const {
  std::ofstream out(path);
  if (!out.is_open()) {
    return Status::InvalidArgument("cannot open trace file: " + path);
  }
  WriteChromeTrace(out);
  out.flush();
  if (!out.good()) {
    return Status::InvalidArgument("failed writing trace file: " + path);
  }
  return Status::OK();
}

}  // namespace raqlet::obs
