#ifndef RAQLET_OBS_TRACE_H_
#define RAQLET_OBS_TRACE_H_

// Execution tracing: RAII spans collected into Chrome trace-event JSON
// (loadable in chrome://tracing and ui.perfetto.dev).
//
// Design goals, in order:
//
//  1. Near-zero cost when tracing is off. A TraceScope constructor is one
//     relaxed atomic load plus a branch; no string is built, no clock is
//     read, nothing allocates. Engines therefore instrument
//     unconditionally and ship the spans in release builds.
//  2. No contention when tracing is on. Each thread records into its own
//     event buffer (registered once per (session, thread) under a mutex,
//     then appended to lock-free by its owning thread), so spans from the
//     runtime's pool workers never serialize on a shared sink.
//  3. Determinism-neutral. Recording a span reads the steady clock and a
//     thread-local buffer; it never touches engine state, so traced runs
//     produce bit-identical query results to untraced runs.
//
// Usage:
//
//   {
//     raqlet::obs::TraceSession session;      // tracing on
//     ... run queries ...
//     RAQLET_RETURN_IF_ERROR(session.WriteChromeTrace("out.json"));
//   }                                         // tracing off again
//
// and at every instrumentation point, simply:
//
//   raqlet::obs::TraceScope span("datalog.scc", scc_index);
//
// Exactly one TraceSession may be alive at a time (the second constructor
// call aborts); export must happen at a quiescent point — after every
// thread that recorded spans has finished its work — which all callers
// (CLI, tests, benches) naturally satisfy by exporting after Run returns.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "common/status.h"

namespace raqlet::obs {

/// One completed span: a Chrome "X" (complete) event.
struct TraceEvent {
  std::string name;
  int64_t ts_us = 0;   // start, microseconds since session start
  int64_t dur_us = 0;  // duration, microseconds
  uint32_t tid = 0;    // per-session thread id (registration order)
};

class TraceSession {
 public:
  /// Installs this session as the process-wide current session.
  TraceSession();
  /// Uninstalls. Spans still open when the session dies are dropped.
  ~TraceSession();

  TraceSession(const TraceSession&) = delete;
  TraceSession& operator=(const TraceSession&) = delete;

  /// The installed session, or nullptr when tracing is off. One relaxed
  /// atomic load — this is the whole tracing-off hot path.
  static TraceSession* Current() {
    return current_.load(std::memory_order_relaxed);
  }

  /// Records one completed span on the calling thread's buffer.
  void Record(std::string name, int64_t ts_us, int64_t dur_us);

  /// Microseconds elapsed since the session started (steady clock).
  int64_t NowMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now() - origin_)
        .count();
  }

  /// Total spans recorded so far, across all threads. Quiescent-point
  /// accessor (see the file comment).
  size_t event_count() const;

  /// All events merged across threads, sorted by (ts, tid). Quiescent
  /// point only.
  std::vector<TraceEvent> Events() const;

  /// Serializes the Chrome trace-event envelope
  /// {"traceEvents": [...], "displayTimeUnit": "ms"}. Quiescent point
  /// only.
  void WriteChromeTrace(std::ostream& os) const;
  /// Same, to a file.
  Status WriteChromeTrace(const std::string& path) const;

 private:
  struct ThreadBuffer {
    uint32_t tid = 0;
    std::vector<TraceEvent> events;
  };

  // Finds (or registers) the calling thread's buffer for this session.
  ThreadBuffer* BufferForThisThread();

  static std::atomic<TraceSession*> current_;

  std::chrono::steady_clock::time_point origin_;
  uint64_t generation_ = 0;  // distinguishes sessions at a reused address
  mutable std::mutex registry_mutex_;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
};

/// RAII span. Construct with a static label, or a (label, index) pair for
/// per-SCC / per-round / per-chunk spans — the "label index" name is
/// formatted only when the span is recorded, so call sites stay
/// allocation-free while tracing is off.
class TraceScope {
 public:
  explicit TraceScope(const char* name) : session_(TraceSession::Current()) {
    if (session_ == nullptr) return;
    name_ = name;
    start_us_ = session_->NowMicros();
  }

  TraceScope(const char* label, int64_t index)
      : session_(TraceSession::Current()) {
    if (session_ == nullptr) return;
    name_ = label;
    index_ = index;
    start_us_ = session_->NowMicros();
  }

  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

  ~TraceScope() {
    if (session_ == nullptr) return;
    int64_t end_us = session_->NowMicros();
    std::string full = index_ >= 0
                           ? std::string(name_) + " " + std::to_string(index_)
                           : std::string(name_);
    session_->Record(std::move(full), start_us_, end_us - start_us_);
  }

  /// True when a session is installed. For call sites that want to skip
  /// building an expensive dynamic annotation.
  static bool Enabled() { return TraceSession::Current() != nullptr; }

 private:
  TraceSession* session_;
  const char* name_ = nullptr;
  int64_t index_ = -1;
  int64_t start_us_ = 0;
};

}  // namespace raqlet::obs

#endif  // RAQLET_OBS_TRACE_H_
