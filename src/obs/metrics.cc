#include "obs/metrics.h"

#include <chrono>
#include <sstream>

#include "storage/database.h"

namespace raqlet::obs {

namespace {

int64_t NowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::string JoinPreds(const std::vector<std::string>& preds) {
  std::string out;
  for (const std::string& p : preds) {
    if (!out.empty()) out += ", ";
    out += p;
  }
  return out;
}

}  // namespace

size_t DatalogMetrics::TotalInserted() const {
  size_t n = 0;
  for (const SccMetrics& scc : sccs) n += scc.tuples_inserted;
  return n;
}

size_t QueryMetrics::TotalMemoryBytes() const {
  size_t n = 0;
  for (const RelationMemory& rel : memory) n += rel.bytes;
  return n;
}

std::string QueryMetrics::ToString() const {
  std::ostringstream os;
  if (!datalog.empty()) {
    os << "datalog:\n";
    for (size_t i = 0; i < datalog.sccs.size(); ++i) {
      const SccMetrics& scc = datalog.sccs[i];
      os << "  scc " << i << " [" << JoinPreds(scc.preds) << "]"
         << (scc.recursive ? " recursive" : "") << ": rounds=" << scc.rounds
         << " inserted=" << scc.tuples_inserted
         << " considered=" << scc.tuples_considered
         << " rule_evals=" << scc.rule_evaluations;
      if (!scc.round_delta_sizes.empty()) {
        os << " deltas=[";
        for (size_t r = 0; r < scc.round_delta_sizes.size(); ++r) {
          if (r > 0) os << " ";
          os << scc.round_delta_sizes[r];
        }
        os << "]";
      }
      os << "\n";
    }
  }
  if (!sql.empty()) {
    os << "sql:\n";
    for (const SqlCteMetrics& cte : sql.ctes) {
      os << "  cte " << cte.name << (cte.recursive ? " recursive" : "")
         << ": iterations=" << cte.iterations << " rows=" << cte.rows
         << " dedup_attempts=" << cte.dedup_attempts
         << " dedup_hit_rate=" << cte.DedupHitRate() << "\n";
      for (size_t s = 0; s < cte.steps.size(); ++s) {
        const SqlStepMetrics& step = cte.steps[s];
        os << "    step " << s << " " << step.relation
           << ": batches=" << step.batches << " rows_in=" << step.rows_in
           << " probes=" << step.probes << " matched=" << step.rows_matched
           << " rows_out=" << step.rows_out
           << " selectivity=" << step.Selectivity() << "\n";
      }
    }
  }
  if (!graph.empty()) {
    os << "graph:\n";
    for (size_t i = 0; i < graph.clauses.size(); ++i) {
      os << "  clause " << i << " " << graph.clauses[i].kind
         << ": rows=" << graph.clauses[i].rows_after << "\n";
    }
    os << "  closure cache: hits=" << graph.closure_cache_hits
       << " misses=" << graph.closure_cache_misses
       << " frontier_peak=" << graph.frontier_peak << "\n";
  }
  if (!incremental.empty()) {
    os << "incremental:\n";
    os << "  base: added=" << incremental.base_added
       << " removed=" << incremental.base_removed << "\n";
    os << "  sccs: touched=" << incremental.sccs_touched
       << " skipped=" << incremental.sccs_skipped
       << " recomputed=" << incremental.recomputed_sccs
       << " dred_bailouts=" << incremental.dred_bailouts
       << " rounds=" << incremental.rounds << "\n";
    os << "  derived: inserted=" << incremental.tuples_inserted
       << " deleted=" << incremental.tuples_deleted
       << " overdeleted=" << incremental.overdeleted
       << " rederived=" << incremental.rederived
       << " support_updates=" << incremental.support_updates << "\n";
  }
  if (!guard.empty()) {
    os << "guard trips:";
    if (guard.cancelled > 0) os << " cancelled=" << guard.cancelled;
    if (guard.deadline_exceeded > 0) {
      os << " deadline_exceeded=" << guard.deadline_exceeded;
    }
    if (guard.resource_exhausted > 0) {
      os << " resource_exhausted=" << guard.resource_exhausted;
    }
    os << " (rows=" << guard.rows << " bytes=" << guard.bytes << ")\n";
  }
  if (!memory.empty()) {
    os << "memory: " << TotalMemoryBytes() << " bytes\n";
    for (const RelationMemory& rel : memory) {
      os << "  " << rel.name << ": rows=" << rel.rows
         << " bytes=" << rel.bytes;
      if (rel.rows > 0) {
        os << " (" << (rel.bytes / rel.rows) << " B/tuple)";
      }
      os << "\n";
    }
  }
  if (!phases.empty()) {
    os << "phases (wall time, non-deterministic):\n";
    for (const PhaseTiming& phase : phases) {
      os << "  " << phase.name << ": " << phase.micros << " us\n";
    }
  }
  return os.str();
}

void CollectMemoryBreakdown(const Database& db, QueryMetrics* metrics) {
  if (metrics == nullptr) return;
  metrics->memory.clear();
  for (const std::string& name : db.RelationNames()) {
    auto rel = db.GetRelation(name);
    if (!rel.ok()) continue;
    metrics->memory.push_back(
        {name, (*rel)->size(), (*rel)->MemoryBytes()});
  }
}

PhaseTimer::PhaseTimer(QueryMetrics* metrics, const char* name)
    : metrics_(metrics), name_(name) {
  if (metrics_ != nullptr) start_us_ = NowMicros();
}

PhaseTimer::~PhaseTimer() {
  if (metrics_ == nullptr) return;
  metrics_->AddPhase(name_, NowMicros() - start_us_);
}

}  // namespace raqlet::obs
