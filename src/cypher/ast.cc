#include "cypher/ast.h"

#include <sstream>

#include "common/str_util.h"

namespace raqlet::cypher {

const char* BinOpToString(BinOp op) {
  switch (op) {
    case BinOp::kAnd:
      return "AND";
    case BinOp::kOr:
      return "OR";
    case BinOp::kEq:
      return "=";
    case BinOp::kNe:
      return "<>";
    case BinOp::kLt:
      return "<";
    case BinOp::kLe:
      return "<=";
    case BinOp::kGt:
      return ">";
    case BinOp::kGe:
      return ">=";
    case BinOp::kAdd:
      return "+";
    case BinOp::kSub:
      return "-";
    case BinOp::kMul:
      return "*";
    case BinOp::kDiv:
      return "/";
    case BinOp::kMod:
      return "%";
  }
  return "?";
}

Expr Expr::Literal(dlir::Constant c) {
  Expr e;
  e.kind = ExprKind::kLiteral;
  e.literal = std::move(c);
  return e;
}

Expr Expr::Variable(std::string name) {
  Expr e;
  e.kind = ExprKind::kVariable;
  e.var = std::move(name);
  return e;
}

Expr Expr::Property(std::string var, std::string property) {
  Expr e;
  e.kind = ExprKind::kProperty;
  e.var = std::move(var);
  e.property = std::move(property);
  return e;
}

Expr Expr::Parameter(std::string name) {
  Expr e;
  e.kind = ExprKind::kParameter;
  e.parameter = std::move(name);
  return e;
}

Expr Expr::Binary(BinOp op, Expr lhs, Expr rhs) {
  Expr e;
  e.kind = ExprKind::kBinary;
  e.bin_op = op;
  e.children.push_back(std::move(lhs));
  e.children.push_back(std::move(rhs));
  return e;
}

Expr Expr::Unary(UnOp op, Expr operand) {
  Expr e;
  e.kind = ExprKind::kUnary;
  e.un_op = op;
  e.children.push_back(std::move(operand));
  return e;
}

Expr Expr::Call(std::string function, std::vector<Expr> args) {
  Expr e;
  e.kind = ExprKind::kCall;
  e.function = ToLower(function);
  e.children = std::move(args);
  return e;
}

bool Expr::IsAggregateCall() const {
  if (kind != ExprKind::kCall) return false;
  return function == "count" || function == "sum" || function == "min" ||
         function == "max" || function == "avg";
}

std::string Expr::ToString() const {
  switch (kind) {
    case ExprKind::kLiteral:
      return literal.ToString();
    case ExprKind::kVariable:
      return var;
    case ExprKind::kProperty:
      return var + "." + property;
    case ExprKind::kParameter:
      return "$" + parameter;
    case ExprKind::kBinary:
      return "(" + children[0].ToString() + " " + BinOpToString(bin_op) + " " +
             children[1].ToString() + ")";
    case ExprKind::kUnary:
      return un_op == UnOp::kNot ? "NOT " + children[0].ToString()
                                 : "-" + children[0].ToString();
    case ExprKind::kCall: {
      std::vector<std::string> args;
      if (star_arg) args.push_back("*");
      for (const Expr& c : children) args.push_back(c.ToString());
      std::string inner = Join(args, ", ");
      if (distinct_arg) inner = "DISTINCT " + inner;
      return function + "(" + inner + ")";
    }
  }
  return "?";
}

namespace {

std::string PropsToString(
    const std::vector<std::pair<std::string, Expr>>& props) {
  if (props.empty()) return "";
  std::vector<std::string> parts;
  for (const auto& [name, value] : props) {
    parts.push_back(name + ": " + value.ToString());
  }
  return " {" + Join(parts, ", ") + "}";
}

std::string NodeToString(const NodePattern& node) {
  std::string out = "(" + node.var;
  if (!node.label.empty()) out += ":" + node.label;
  out += PropsToString(node.properties);
  out += ")";
  return out;
}

std::string EdgeToString(const EdgePattern& edge) {
  std::string inner = edge.var;
  if (!edge.type.empty()) inner += ":" + edge.type;
  if (edge.variable_length) {
    inner += "*";
    if (edge.min_hops != 1 || edge.max_hops != EdgePattern::kUnboundedHops) {
      inner += std::to_string(edge.min_hops) + "..";
      if (edge.max_hops != EdgePattern::kUnboundedHops) {
        inner += std::to_string(edge.max_hops);
      }
    }
  }
  inner += PropsToString(edge.properties);
  std::string box = inner.empty() ? "" : "[" + inner + "]";
  switch (edge.direction) {
    case EdgeDirection::kOutgoing:
      return "-" + box + "->";
    case EdgeDirection::kIncoming:
      return "<-" + box + "-";
    case EdgeDirection::kUndirected:
      return "-" + box + "-";
  }
  return "-" + box + "-";
}

std::string PathToString(const PathPattern& path) {
  std::string out;
  if (!path.path_var.empty()) out += path.path_var + " = ";
  if (path.shortest) out += "shortestPath(";
  out += NodeToString(path.start);
  for (const auto& [edge, node] : path.steps) {
    out += EdgeToString(edge) + NodeToString(node);
  }
  if (path.shortest) out += ")";
  return out;
}

std::string ItemsToString(const std::vector<ReturnItem>& items) {
  std::vector<std::string> parts;
  for (const ReturnItem& item : items) {
    std::string s = item.expr.ToString();
    if (!item.alias.empty()) s += " AS " + item.alias;
    parts.push_back(std::move(s));
  }
  return Join(parts, ", ");
}

}  // namespace

std::string Query::ToString() const {
  std::ostringstream os;
  for (const Clause& clause : clauses) {
    if (const auto* match = std::get_if<MatchClause>(&clause)) {
      std::vector<std::string> paths;
      for (const PathPattern& p : match->patterns) {
        paths.push_back(PathToString(p));
      }
      os << "MATCH " << Join(paths, ", ") << "\n";
      if (match->where.has_value()) {
        os << "WHERE " << match->where->ToString() << "\n";
      }
    } else if (const auto* with = std::get_if<WithClause>(&clause)) {
      os << "WITH " << (with->distinct ? "DISTINCT " : "")
         << ItemsToString(with->items) << "\n";
      if (with->where.has_value()) {
        os << "WHERE " << with->where->ToString() << "\n";
      }
    } else if (const auto* ret = std::get_if<ReturnClause>(&clause)) {
      os << "RETURN " << (ret->distinct ? "DISTINCT " : "")
         << ItemsToString(ret->items) << "\n";
      if (!ret->order_by.empty()) {
        std::vector<std::string> parts;
        for (const OrderItem& item : ret->order_by) {
          parts.push_back(item.expr.ToString() +
                          (item.ascending ? "" : " DESC"));
        }
        os << "ORDER BY " << Join(parts, ", ") << "\n";
      }
      if (ret->skip.has_value()) os << "SKIP " << *ret->skip << "\n";
      if (ret->limit.has_value()) os << "LIMIT " << *ret->limit << "\n";
    }
  }
  return os.str();
}

}  // namespace raqlet::cypher
