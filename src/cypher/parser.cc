#include "cypher/parser.h"

#include <optional>

#include "common/lexer.h"
#include "common/str_util.h"

namespace raqlet::cypher {

namespace {

bool IsKeyword(const Token& t, const std::string& upper) {
  return t.kind == Token::kIdent && ToUpper(t.text) == upper;
}

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<Query> Parse() {
    Query query;
    bool saw_return = false;
    while (!AtEof()) {
      if (IsKeyword(Peek(), "MATCH")) {
        RAQLET_ASSIGN_OR_RETURN(MatchClause match, ParseMatch());
        query.clauses.push_back(std::move(match));
      } else if (IsKeyword(Peek(), "WITH")) {
        RAQLET_ASSIGN_OR_RETURN(WithClause with, ParseWith());
        query.clauses.push_back(std::move(with));
      } else if (IsKeyword(Peek(), "RETURN")) {
        RAQLET_ASSIGN_OR_RETURN(ReturnClause ret, ParseReturn());
        query.clauses.push_back(std::move(ret));
        saw_return = true;
      } else if (IsKeyword(Peek(), "FILTER")) {
        // GQL's standalone FILTER statement (ISO 39075): conjoin with the
        // preceding MATCH/WITH clause's predicate.
        Advance();
        RAQLET_ASSIGN_OR_RETURN(Expr predicate, ParseExpr());
        RAQLET_RETURN_IF_ERROR(AttachFilter(&query, std::move(predicate)));
      } else {
        return Errorf("expected MATCH, WITH, FILTER or RETURN");
      }
    }
    if (!saw_return) {
      return Status::ParseError("query must end with a RETURN clause");
    }
    if (!std::holds_alternative<ReturnClause>(query.clauses.back())) {
      return Status::ParseError("RETURN must be the final clause");
    }
    return query;
  }

 private:
  const Token& Peek(int ahead = 0) const {
    size_t i = pos_ + static_cast<size_t>(ahead);
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  bool AtEof() const { return Peek().kind == Token::kEof; }
  const Token& Advance() { return tokens_[pos_++]; }

  bool PeekPunct(const std::string& text, int ahead = 0) const {
    return Peek(ahead).kind == Token::kPunct && Peek(ahead).text == text;
  }
  bool MatchPunct(const std::string& text) {
    if (PeekPunct(text)) {
      Advance();
      return true;
    }
    return false;
  }
  Status ExpectPunct(const std::string& text) {
    if (MatchPunct(text)) return Status::OK();
    return Errorf("expected '" + text + "'");
  }
  bool MatchKeyword(const std::string& upper) {
    if (IsKeyword(Peek(), upper)) {
      Advance();
      return true;
    }
    return false;
  }
  Status ExpectKeyword(const std::string& upper) {
    if (MatchKeyword(upper)) return Status::OK();
    return Errorf("expected " + upper);
  }
  Result<std::string> ExpectIdent() {
    if (Peek().kind != Token::kIdent) return Errorf("expected identifier");
    return Advance().text;
  }
  Status Errorf(const std::string& what) const {
    const Token& t = Peek();
    return Status::ParseError(what + " at line " + std::to_string(t.line) +
                              ", col " + std::to_string(t.col) + " (got '" +
                              (t.kind == Token::kEof ? "<eof>" : t.text) +
                              "')");
  }

  static Status AttachFilter(Query* query, Expr predicate) {
    if (query->clauses.empty()) {
      return Status::ParseError("FILTER requires a preceding MATCH or WITH");
    }
    auto conjoin = [&](std::optional<Expr>* where) {
      if (where->has_value()) {
        *where = Expr::Binary(BinOp::kAnd, std::move(**where),
                              std::move(predicate));
      } else {
        *where = std::move(predicate);
      }
    };
    Clause& last = query->clauses.back();
    if (auto* match = std::get_if<MatchClause>(&last)) {
      conjoin(&match->where);
      return Status::OK();
    }
    if (auto* with = std::get_if<WithClause>(&last)) {
      conjoin(&with->where);
      return Status::OK();
    }
    return Status::ParseError("FILTER cannot follow RETURN");
  }

  // ---- clauses ----

  Result<MatchClause> ParseMatch() {
    RAQLET_RETURN_IF_ERROR(ExpectKeyword("MATCH"));
    MatchClause match;
    while (true) {
      RAQLET_ASSIGN_OR_RETURN(PathPattern pattern, ParsePathPattern());
      match.patterns.push_back(std::move(pattern));
      if (!MatchPunct(",")) break;
    }
    if (MatchKeyword("WHERE")) {
      RAQLET_ASSIGN_OR_RETURN(Expr where, ParseExpr());
      match.where = std::move(where);
    }
    return match;
  }

  Result<WithClause> ParseWith() {
    RAQLET_RETURN_IF_ERROR(ExpectKeyword("WITH"));
    WithClause with;
    with.distinct = MatchKeyword("DISTINCT");
    RAQLET_ASSIGN_OR_RETURN(with.items, ParseItems());
    if (MatchKeyword("WHERE")) {
      RAQLET_ASSIGN_OR_RETURN(Expr where, ParseExpr());
      with.where = std::move(where);
    }
    return with;
  }

  Result<ReturnClause> ParseReturn() {
    RAQLET_RETURN_IF_ERROR(ExpectKeyword("RETURN"));
    ReturnClause ret;
    ret.distinct = MatchKeyword("DISTINCT");
    RAQLET_ASSIGN_OR_RETURN(ret.items, ParseItems());
    if (MatchKeyword("ORDER")) {
      RAQLET_RETURN_IF_ERROR(ExpectKeyword("BY"));
      while (true) {
        OrderItem item;
        RAQLET_ASSIGN_OR_RETURN(item.expr, ParseExpr());
        if (MatchKeyword("DESC") || MatchKeyword("DESCENDING")) {
          item.ascending = false;
        } else if (MatchKeyword("ASC") || MatchKeyword("ASCENDING")) {
          item.ascending = true;
        }
        ret.order_by.push_back(std::move(item));
        if (!MatchPunct(",")) break;
      }
    }
    if (MatchKeyword("SKIP")) {
      if (Peek().kind != Token::kNumber) return Errorf("expected number");
      ret.skip = std::stoll(Advance().text);
    }
    if (MatchKeyword("LIMIT")) {
      if (Peek().kind != Token::kNumber) return Errorf("expected number");
      ret.limit = std::stoll(Advance().text);
    }
    return ret;
  }

  Result<std::vector<ReturnItem>> ParseItems() {
    std::vector<ReturnItem> items;
    while (true) {
      ReturnItem item;
      RAQLET_ASSIGN_OR_RETURN(item.expr, ParseExpr());
      if (MatchKeyword("AS")) {
        RAQLET_ASSIGN_OR_RETURN(item.alias, ExpectIdent());
      }
      items.push_back(std::move(item));
      if (!MatchPunct(",")) break;
    }
    return items;
  }

  // ---- patterns ----

  Result<PathPattern> ParsePathPattern() {
    PathPattern path;
    // Optional `p = ` prefix.
    if (Peek().kind == Token::kIdent && PeekPunct("=", 1) &&
        !IsKeyword(Peek(), "SHORTESTPATH")) {
      path.path_var = Advance().text;
      Advance();  // '='
    }
    bool wrapped = false;
    if (IsKeyword(Peek(), "SHORTESTPATH")) {
      Advance();
      RAQLET_RETURN_IF_ERROR(ExpectPunct("("));
      path.shortest = true;
      wrapped = true;
    }
    RAQLET_ASSIGN_OR_RETURN(path.start, ParseNodePattern());
    while (PeekPunct("-") || PeekPunct("<-")) {
      RAQLET_ASSIGN_OR_RETURN(EdgePattern edge, ParseEdgePattern());
      RAQLET_ASSIGN_OR_RETURN(NodePattern node, ParseNodePattern());
      path.steps.emplace_back(std::move(edge), std::move(node));
    }
    if (wrapped) RAQLET_RETURN_IF_ERROR(ExpectPunct(")"));
    return path;
  }

  Result<NodePattern> ParseNodePattern() {
    RAQLET_RETURN_IF_ERROR(ExpectPunct("("));
    NodePattern node;
    if (Peek().kind == Token::kIdent && !PeekPunct(":", 1)) {
      node.var = Advance().text;
    } else if (Peek().kind == Token::kIdent && PeekPunct(":", 1)) {
      node.var = Advance().text;
    }
    if (MatchPunct(":")) {
      RAQLET_ASSIGN_OR_RETURN(node.label, ExpectIdent());
    }
    if (PeekPunct("{")) {
      RAQLET_ASSIGN_OR_RETURN(node.properties, ParsePropertyMap());
    }
    RAQLET_RETURN_IF_ERROR(ExpectPunct(")"));
    return node;
  }

  Result<std::vector<std::pair<std::string, Expr>>> ParsePropertyMap() {
    RAQLET_RETURN_IF_ERROR(ExpectPunct("{"));
    std::vector<std::pair<std::string, Expr>> props;
    if (!PeekPunct("}")) {
      while (true) {
        RAQLET_ASSIGN_OR_RETURN(std::string name, ExpectIdent());
        RAQLET_RETURN_IF_ERROR(ExpectPunct(":"));
        RAQLET_ASSIGN_OR_RETURN(Expr value, ParseExpr());
        props.emplace_back(std::move(name), std::move(value));
        if (!MatchPunct(",")) break;
      }
    }
    RAQLET_RETURN_IF_ERROR(ExpectPunct("}"));
    return props;
  }

  Result<EdgePattern> ParseEdgePattern() {
    EdgePattern edge;
    bool from_left_arrow = false;
    if (MatchPunct("<-")) {
      from_left_arrow = true;
    } else {
      RAQLET_RETURN_IF_ERROR(ExpectPunct("-"));
    }
    if (MatchPunct("[")) {
      if (Peek().kind == Token::kIdent) {
        edge.var = Advance().text;
      }
      if (MatchPunct(":")) {
        RAQLET_ASSIGN_OR_RETURN(edge.type, ExpectIdent());
      }
      if (MatchPunct("*")) {
        edge.variable_length = true;
        edge.min_hops = 1;
        edge.max_hops = EdgePattern::kUnboundedHops;
        if (Peek().kind == Token::kNumber) {
          edge.min_hops = static_cast<int>(std::stoll(Advance().text));
          edge.max_hops = edge.min_hops;  // `*n` = exactly n
          if (MatchPunct("..")) {
            edge.max_hops = EdgePattern::kUnboundedHops;
            if (Peek().kind == Token::kNumber) {
              edge.max_hops = static_cast<int>(std::stoll(Advance().text));
            }
          }
        } else if (MatchPunct("..")) {
          if (Peek().kind == Token::kNumber) {
            edge.max_hops = static_cast<int>(std::stoll(Advance().text));
          }
        }
      }
      if (PeekPunct("{")) {
        RAQLET_ASSIGN_OR_RETURN(edge.properties, ParsePropertyMap());
      }
      RAQLET_RETURN_IF_ERROR(ExpectPunct("]"));
    }
    bool to_right_arrow = false;
    if (MatchPunct("->")) {
      to_right_arrow = true;
    } else {
      RAQLET_RETURN_IF_ERROR(ExpectPunct("-"));
    }
    if (from_left_arrow && to_right_arrow) {
      return Errorf("edge cannot point both ways");
    }
    if (from_left_arrow) {
      edge.direction = EdgeDirection::kIncoming;
    } else if (to_right_arrow) {
      edge.direction = EdgeDirection::kOutgoing;
    } else {
      edge.direction = EdgeDirection::kUndirected;
    }
    return edge;
  }

  // ---- expressions (precedence climbing) ----

  Result<Expr> ParseExpr() { return ParseOr(); }

  Result<Expr> ParseOr() {
    RAQLET_ASSIGN_OR_RETURN(Expr lhs, ParseAnd());
    while (MatchKeyword("OR")) {
      RAQLET_ASSIGN_OR_RETURN(Expr rhs, ParseAnd());
      lhs = Expr::Binary(BinOp::kOr, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<Expr> ParseAnd() {
    RAQLET_ASSIGN_OR_RETURN(Expr lhs, ParseNot());
    while (MatchKeyword("AND")) {
      RAQLET_ASSIGN_OR_RETURN(Expr rhs, ParseNot());
      lhs = Expr::Binary(BinOp::kAnd, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<Expr> ParseNot() {
    if (MatchKeyword("NOT")) {
      RAQLET_ASSIGN_OR_RETURN(Expr inner, ParseNot());
      return Expr::Unary(UnOp::kNot, std::move(inner));
    }
    return ParseComparison();
  }

  Result<Expr> ParseComparison() {
    RAQLET_ASSIGN_OR_RETURN(Expr lhs, ParseAdditive());
    std::optional<BinOp> op;
    if (MatchPunct("=")) {
      op = BinOp::kEq;
    } else if (MatchPunct("<>")) {
      op = BinOp::kNe;
    } else if (MatchPunct("<=")) {
      op = BinOp::kLe;
    } else if (MatchPunct(">=")) {
      op = BinOp::kGe;
    } else if (MatchPunct("<")) {
      op = BinOp::kLt;
    } else if (MatchPunct(">")) {
      op = BinOp::kGt;
    }
    if (!op.has_value()) return lhs;
    RAQLET_ASSIGN_OR_RETURN(Expr rhs, ParseAdditive());
    return Expr::Binary(*op, std::move(lhs), std::move(rhs));
  }

  Result<Expr> ParseAdditive() {
    RAQLET_ASSIGN_OR_RETURN(Expr lhs, ParseMultiplicative());
    while (PeekPunct("+") || PeekPunct("-")) {
      BinOp op = Peek().text == "+" ? BinOp::kAdd : BinOp::kSub;
      Advance();
      RAQLET_ASSIGN_OR_RETURN(Expr rhs, ParseMultiplicative());
      lhs = Expr::Binary(op, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<Expr> ParseMultiplicative() {
    RAQLET_ASSIGN_OR_RETURN(Expr lhs, ParseUnary());
    while (PeekPunct("*") || PeekPunct("/") || PeekPunct("%")) {
      BinOp op = Peek().text == "*"   ? BinOp::kMul
                 : Peek().text == "/" ? BinOp::kDiv
                                      : BinOp::kMod;
      Advance();
      RAQLET_ASSIGN_OR_RETURN(Expr rhs, ParseUnary());
      lhs = Expr::Binary(op, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<Expr> ParseUnary() {
    if (MatchPunct("-")) {
      RAQLET_ASSIGN_OR_RETURN(Expr inner, ParseUnary());
      return Expr::Unary(UnOp::kNeg, std::move(inner));
    }
    return ParsePrimary();
  }

  Result<Expr> ParsePrimary() {
    const Token& t = Peek();
    switch (t.kind) {
      case Token::kNumber: {
        Advance();
        return Expr::Number(std::stoll(t.text));
      }
      case Token::kFloat: {
        Advance();
        return Expr::Literal(dlir::Constant::Float(std::stod(t.text)));
      }
      case Token::kString: {
        Advance();
        return Expr::Str(t.text);
      }
      case Token::kPunct:
        if (t.text == "$") {
          Advance();
          RAQLET_ASSIGN_OR_RETURN(std::string name, ExpectIdent());
          return Expr::Parameter(std::move(name));
        }
        if (t.text == "(") {
          Advance();
          RAQLET_ASSIGN_OR_RETURN(Expr inner, ParseExpr());
          RAQLET_RETURN_IF_ERROR(ExpectPunct(")"));
          return inner;
        }
        break;
      case Token::kIdent: {
        std::string upper = ToUpper(t.text);
        if (upper == "TRUE") {
          Advance();
          return Expr::Literal(dlir::Constant::Bool(true));
        }
        if (upper == "FALSE") {
          Advance();
          return Expr::Literal(dlir::Constant::Bool(false));
        }
        if (upper == "NULL") {
          Advance();
          return Expr::Literal(dlir::Constant::Null());
        }
        std::string name = Advance().text;
        if (MatchPunct("(")) {  // function call
          Expr call = Expr::Call(name, {});
          if (MatchPunct("*")) {
            call.star_arg = true;
          } else if (!PeekPunct(")")) {
            call.distinct_arg = MatchKeyword("DISTINCT");
            while (true) {
              RAQLET_ASSIGN_OR_RETURN(Expr arg, ParseExpr());
              call.children.push_back(std::move(arg));
              if (!MatchPunct(",")) break;
            }
          }
          RAQLET_RETURN_IF_ERROR(ExpectPunct(")"));
          return call;
        }
        if (MatchPunct(".")) {
          RAQLET_ASSIGN_OR_RETURN(std::string prop, ExpectIdent());
          return Expr::Property(std::move(name), std::move(prop));
        }
        return Expr::Variable(std::move(name));
      }
      case Token::kEof:
        break;
    }
    return Errorf("expected expression");
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<Query> ParseQuery(const std::string& source) {
  LexerConfig config;
  config.multi_char_puncts = {"<-", "->", "<=", ">=", "<>", ".."};
  config.single_puncts = "()[]{},.:*=<>+-/%$";
  config.dash_comments = false;  // '-' is pattern syntax in Cypher
  RAQLET_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(source, config));
  Parser parser(std::move(tokens));
  return parser.Parse();
}

}  // namespace raqlet::cypher
