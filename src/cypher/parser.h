#ifndef RAQLET_CYPHER_PARSER_H_
#define RAQLET_CYPHER_PARSER_H_

// Recursive-descent parser for the Cypher subset described in
// cypher/ast.h. Keywords are case-insensitive; identifiers are
// case-sensitive.

#include <string>

#include "common/status.h"
#include "cypher/ast.h"

namespace raqlet::cypher {

/// Parses a single-query Cypher statement. The query must end in RETURN.
Result<Query> ParseQuery(const std::string& source);

}  // namespace raqlet::cypher

#endif  // RAQLET_CYPHER_PARSER_H_
