#ifndef RAQLET_CYPHER_AST_H_
#define RAQLET_CYPHER_AST_H_

// Cypher abstract syntax for the LDBC-read subset Raqlet supports (§3):
// MATCH (incl. variable-length relationships and shortestPath), WHERE,
// WITH, RETURN [DISTINCT], ORDER BY / SKIP / LIMIT (parsed, then dropped
// during lowering with a warning, per the paper's set-semantics
// normalization), expressions with boolean/comparison/arithmetic
// operators, property access, parameters ($param) and aggregate calls.

#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "dlir/program.h"

namespace raqlet::cypher {

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

enum class BinOp {
  kAnd,
  kOr,
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kAdd,
  kSub,
  kMul,
  kDiv,
  kMod,
};
const char* BinOpToString(BinOp op);

enum class UnOp { kNot, kNeg };

enum class ExprKind {
  kLiteral,    // 42, "x", true
  kVariable,   // n
  kProperty,   // n.firstName
  kParameter,  // $personId
  kBinary,
  kUnary,
  kCall,       // count(x), count(*), length(p), id(n)
};

/// Value-semantic expression tree.
struct Expr {
  ExprKind kind = ExprKind::kLiteral;
  dlir::Constant literal;    // kLiteral
  std::string var;           // kVariable / kProperty (the variable part)
  std::string property;      // kProperty
  std::string parameter;     // kParameter (name without '$')
  BinOp bin_op = BinOp::kAnd;
  UnOp un_op = UnOp::kNot;
  std::string function;      // kCall, lowercase
  bool star_arg = false;     // count(*)
  bool distinct_arg = false; // count(DISTINCT x)
  std::vector<Expr> children;

  static Expr Literal(dlir::Constant c);
  static Expr Number(int64_t v) { return Literal(dlir::Constant::Number(v)); }
  static Expr Str(std::string v) {
    return Literal(dlir::Constant::String(std::move(v)));
  }
  static Expr Variable(std::string name);
  static Expr Property(std::string var, std::string property);
  static Expr Parameter(std::string name);
  static Expr Binary(BinOp op, Expr lhs, Expr rhs);
  static Expr Unary(UnOp op, Expr operand);
  static Expr Call(std::string function, std::vector<Expr> args);

  /// True for aggregate function calls (count/sum/min/max/avg/collect).
  bool IsAggregateCall() const;

  std::string ToString() const;
};

// ---------------------------------------------------------------------------
// Patterns
// ---------------------------------------------------------------------------

enum class EdgeDirection { kOutgoing, kIncoming, kUndirected };

struct NodePattern {
  std::string var;                  // may be empty (anonymous)
  std::string label;                // at most one label supported
  std::vector<std::pair<std::string, Expr>> properties;  // {id: 42}
};

struct EdgePattern {
  std::string var;                  // may be empty
  std::string type;                 // relationship type, may be empty
  EdgeDirection direction = EdgeDirection::kOutgoing;
  std::vector<std::pair<std::string, Expr>> properties;
  bool variable_length = false;
  int min_hops = 1;
  int max_hops = 1;                 // kUnboundedHops when open-ended
  static constexpr int kUnboundedHops = -1;
};

struct PathPattern {
  std::string path_var;             // p = ...
  bool shortest = false;            // shortestPath(...)
  NodePattern start;
  std::vector<std::pair<EdgePattern, NodePattern>> steps;
};

// ---------------------------------------------------------------------------
// Clauses
// ---------------------------------------------------------------------------

struct ReturnItem {
  Expr expr;
  std::string alias;  // empty = derive from the expression
};

struct MatchClause {
  std::vector<PathPattern> patterns;
  std::optional<Expr> where;
};

struct WithClause {
  std::vector<ReturnItem> items;
  bool distinct = false;
  std::optional<Expr> where;
};

struct OrderItem {
  Expr expr;
  bool ascending = true;
};

struct ReturnClause {
  std::vector<ReturnItem> items;
  bool distinct = false;
  std::vector<OrderItem> order_by;  // dropped with a warning when lowering
  std::optional<int64_t> skip;
  std::optional<int64_t> limit;
};

using Clause = std::variant<MatchClause, WithClause, ReturnClause>;

/// A parsed single-query Cypher statement: a clause sequence ending in
/// RETURN.
struct Query {
  std::vector<Clause> clauses;
  std::string ToString() const;
};

}  // namespace raqlet::cypher

#endif  // RAQLET_CYPHER_AST_H_
