#include "gql/parser.h"

#include "cypher/parser.h"

namespace raqlet::gql {

Result<cypher::Query> ParseQuery(const std::string& source) {
  // The shared grammar already accepts the GQL core (including standalone
  // FILTER). Dedicated GQL-only surface (LET, FOR, session statements)
  // would hook in here.
  return cypher::ParseQuery(source);
}

}  // namespace raqlet::gql
