#ifndef RAQLET_GQL_PARSER_H_
#define RAQLET_GQL_PARSER_H_

// GQL frontend (ISO/IEC 39075:2024 core, Fig. 1's planned "GQL" parser).
//
// GQL's graph pattern language was standardized to align with Cypher's
// (both derive from GPC [16]); Raqlet therefore shares one pattern and
// expression grammar between the two frontends. The GQL-specific surface
// supported here:
//
//   * standalone `FILTER <predicate>` statements, which conjoin with the
//     preceding MATCH/WITH;
//   * the common core statements MATCH / WITH (GQL: also spelled via
//     RETURN-in-the-middle, which Raqlet models as WITH) / RETURN
//     [DISTINCT], variable-length paths and shortest paths.
//
// The result is the same cypher::Query AST, so the whole PGIR/DLIR
// pipeline downstream is shared — exactly the paper's point.

#include <string>

#include "common/status.h"
#include "cypher/ast.h"

namespace raqlet::gql {

/// Parses a GQL query into the shared pattern-query AST.
Result<cypher::Query> ParseQuery(const std::string& source);

}  // namespace raqlet::gql

#endif  // RAQLET_GQL_PARSER_H_
