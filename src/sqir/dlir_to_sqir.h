#ifndef RAQLET_SQIR_DLIR_TO_SQIR_H_
#define RAQLET_SQIR_DLIR_TO_SQIR_H_

// DLIR -> SQIR translation (§3, Fig. 3c -> Fig. 3e).
//
// Each non-recursive DLIR predicate becomes a CTE; each recursive one a
// WITH RECURSIVE CTE. Conjunctions become inner joins; SELECT DISTINCT
// keeps set semantics; multi-rule predicates become UNIONs; negated atoms
// become NOT EXISTS subqueries. The backend-support analysis rejects
// programs recursive SQL cannot express (mutual or non-linear recursion,
// lattice relations) — run the linearization pass first where applicable.

#include "common/status.h"
#include "dlir/program.h"
#include "sqir/sqir.h"

namespace raqlet::sqir {

struct SqirOptions {
  /// Name CTEs V1, V2, ... in dependency order (paper style). When false,
  /// CTEs keep their DLIR predicate names.
  bool use_v_names = true;
};

Result<SqirProgram> TranslateToSqir(const dlir::Program& program,
                                    const SqirOptions& options = {});

}  // namespace raqlet::sqir

#endif  // RAQLET_SQIR_DLIR_TO_SQIR_H_
