#ifndef RAQLET_SQIR_SQIR_H_
#define RAQLET_SQIR_SQIR_H_

// SQIR — Raqlet's SQL IR (§3, Fig. 3e): a chain of (possibly recursive)
// common table expressions followed by a final SELECT. Produced from DLIR
// by sqir/dlir_to_sqir.h, rendered as SQL text by sqir/sql_printer.h, and
// executed natively by engine/sql.

#include <string>
#include <vector>

#include "common/status.h"
#include "dlir/program.h"

namespace raqlet::sqir {

/// Scalar expression over the columns of the FROM list.
struct Expr {
  enum Kind { kColumn, kConst, kArith, kAgg };
  Kind kind = kConst;
  std::string table;   // kColumn: table alias
  std::string column;  // kColumn: column name
  dlir::Constant constant;       // kConst
  dlir::ArithOp op = dlir::ArithOp::kAdd;  // kArith
  dlir::AggFunc agg = dlir::AggFunc::kCount;  // kAgg
  std::vector<Expr> children;  // kArith: 2; kAgg: 0 (count(*)) or 1

  static Expr Column(std::string table, std::string column);
  static Expr Const(dlir::Constant c);
  static Expr Arith(dlir::ArithOp op, Expr lhs, Expr rhs);
  static Expr Agg(dlir::AggFunc func, std::vector<Expr> args);

  std::string ToString() const;
};

struct SelectItem {
  Expr expr;
  std::string alias;
};

/// `lhs op rhs` in the WHERE clause.
struct Predicate {
  dlir::CmpOp op = dlir::CmpOp::kEq;
  Expr lhs;
  Expr rhs;
  std::string ToString() const;
};

struct TableRef {
  std::string table;  // base relation or CTE name
  std::string alias;  // R1, R2, ... (paper style)
};

/// `NOT EXISTS (SELECT 1 FROM table AS t WHERE t.col = expr AND ...)` —
/// the translation of a negated DLIR atom.
struct NotExists {
  std::string table;
  std::vector<std::pair<std::string, Expr>> equalities;  // column = expr
};

/// One SELECT block (a CTE branch or the final query).
struct Select {
  bool distinct = true;  // set semantics (§3)
  std::vector<SelectItem> items;
  std::vector<TableRef> from;
  std::vector<Predicate> where;
  std::vector<NotExists> not_exists;
  std::vector<Expr> group_by;  // non-empty only with kAgg items
};

/// A CTE: `name(columns) AS (branch UNION branch ...)`. For recursive
/// CTEs, branches that reference `name` form the recursive term.
struct Cte {
  std::string name;
  std::string source_predicate;  // DLIR predicate this CTE implements
  std::vector<std::string> columns;
  /// Logical type per column, parallel to `columns` (plan metadata carried
  /// from the DLIR declaration). May be empty for hand-built programs; the
  /// SQL executor then infers types from the base branch's select items.
  std::vector<ValueType> column_types;
  bool recursive = false;
  std::vector<Select> branches;
};

struct SqirProgram {
  std::vector<Cte> ctes;
  Select final_select;
  /// Columns of the final result.
  std::vector<std::string> output_columns;
  std::string ToString() const;  // debug form; see sql_printer for SQL
};

}  // namespace raqlet::sqir

#endif  // RAQLET_SQIR_SQIR_H_
