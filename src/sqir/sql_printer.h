#ifndef RAQLET_SQIR_SQL_PRINTER_H_
#define RAQLET_SQIR_SQL_PRINTER_H_

// Renders SQIR as executable SQL text (the paper's Fig. 3e backend).
// The dialect is the portable core understood by DuckDB/Postgres/HyPer:
// WITH [RECURSIVE] ... UNION ... and single-quoted string literals.

#include <string>

#include "sqir/sqir.h"

namespace raqlet::sqir {

struct SqlPrintOptions {
  /// Emit `-- CTE <name> implements <predicate>` comments.
  bool emit_comments = false;
  /// UNION (distinct, SQL:1999 recursive semantics) vs UNION ALL.
  bool union_all = false;
};

std::string ToSql(const SqirProgram& program,
                  const SqlPrintOptions& options = {});

}  // namespace raqlet::sqir

#endif  // RAQLET_SQIR_SQL_PRINTER_H_
