#include "sqir/sql_printer.h"

#include <sstream>

#include "common/str_util.h"

namespace raqlet::sqir {

namespace {

std::string SqlConstant(const dlir::Constant& c) {
  switch (c.type) {
    case ValueType::kNumber: {
      return std::to_string(c.num);
    }
    case ValueType::kFloat: {
      std::ostringstream os;
      os << c.fval;
      return os.str();
    }
    case ValueType::kSymbol: {
      // Single quotes, doubled for escaping.
      std::string out = "'";
      for (char ch : c.str) {
        if (ch == '\'') out += "''";
        else out.push_back(ch);
      }
      out += "'";
      return out;
    }
    case ValueType::kBool:
      return c.bval ? "TRUE" : "FALSE";
    case ValueType::kNull:
      return "NULL";
  }
  return "NULL";
}

std::string SqlExpr(const Expr& e) {
  switch (e.kind) {
    case Expr::kColumn:
      return e.table + "." + e.column;
    case Expr::kConst:
      return SqlConstant(e.constant);
    case Expr::kArith:
      return "(" + SqlExpr(e.children[0]) + " " +
             dlir::ArithOpToString(e.op) + " " + SqlExpr(e.children[1]) + ")";
    case Expr::kAgg: {
      std::string func;
      switch (e.agg) {
        case dlir::AggFunc::kCount:
          func = "COUNT";
          break;
        case dlir::AggFunc::kSum:
          func = "SUM";
          break;
        case dlir::AggFunc::kMin:
          func = "MIN";
          break;
        case dlir::AggFunc::kMax:
          func = "MAX";
          break;
        case dlir::AggFunc::kAvg:
          func = "AVG";
          break;
      }
      std::string inner = e.children.empty() ? "*" : SqlExpr(e.children[0]);
      return func + "(" + inner + ")";
    }
  }
  return "NULL";
}

std::string SqlCmp(dlir::CmpOp op) {
  return op == dlir::CmpOp::kNe ? "<>" : dlir::CmpOpToString(op);
}

std::string RenderSelect(const Select& sel, int indent_spaces) {
  std::ostringstream os;
  std::string pad(static_cast<size_t>(indent_spaces), ' ');
  os << pad << "SELECT" << (sel.distinct ? " DISTINCT" : "") << " ";
  std::vector<std::string> items;
  for (const SelectItem& item : sel.items) {
    items.push_back(SqlExpr(item.expr) + " AS " + item.alias);
  }
  os << Join(items, ", ") << "\n";
  os << pad << "FROM ";
  std::vector<std::string> from;
  for (const TableRef& t : sel.from) {
    from.push_back(t.table + " AS " + t.alias);
  }
  os << Join(from, ", ") << "\n";
  std::vector<std::string> preds;
  for (const Predicate& p : sel.where) {
    preds.push_back("(" + SqlExpr(p.lhs) + " " + SqlCmp(p.op) + " " +
                    SqlExpr(p.rhs) + ")");
  }
  for (const NotExists& ne : sel.not_exists) {
    std::string sub = "NOT EXISTS (SELECT 1 FROM " + ne.table + " AS NE";
    if (!ne.equalities.empty()) {
      std::vector<std::string> eqs;
      for (const auto& [col, expr] : ne.equalities) {
        eqs.push_back("NE." + col + " = " + SqlExpr(expr));
      }
      sub += " WHERE " + Join(eqs, " AND ");
    }
    sub += ")";
    preds.push_back(std::move(sub));
  }
  if (!preds.empty()) {
    os << pad << "WHERE " << Join(preds, " AND ") << "\n";
  }
  if (!sel.group_by.empty()) {
    std::vector<std::string> groups;
    for (const Expr& g : sel.group_by) groups.push_back(SqlExpr(g));
    os << pad << "GROUP BY " << Join(groups, ", ") << "\n";
  }
  return os.str();
}

}  // namespace

std::string ToSql(const SqirProgram& program, const SqlPrintOptions& options) {
  std::ostringstream os;
  bool any_recursive = false;
  for (const Cte& cte : program.ctes) any_recursive |= cte.recursive;

  if (!program.ctes.empty()) {
    os << "WITH " << (any_recursive ? "RECURSIVE " : "");
    for (size_t i = 0; i < program.ctes.size(); ++i) {
      const Cte& cte = program.ctes[i];
      if (i > 0) os << ", ";
      if (options.emit_comments) {
        os << "\n-- " << cte.name << " implements " << cte.source_predicate
           << "\n";
      }
      os << cte.name << "(" << Join(cte.columns, ", ") << ") AS (\n";
      for (size_t b = 0; b < cte.branches.size(); ++b) {
        if (b > 0) os << (options.union_all ? "  UNION ALL\n" : "  UNION\n");
        os << RenderSelect(cte.branches[b], 2);
      }
      os << ")";
    }
    os << "\n";
  }
  os << RenderSelect(program.final_select, 0);
  return os.str();
}

}  // namespace raqlet::sqir
