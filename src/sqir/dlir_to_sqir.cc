#include "sqir/dlir_to_sqir.h"

#include <map>
#include <set>

#include "analysis/analyses.h"
#include "analysis/dependency_graph.h"

namespace raqlet::sqir {

namespace {

using dlir::Atom;
using dlir::CmpOp;
using dlir::Program;
using dlir::RelationDecl;
using dlir::Rule;
using dlir::Term;
using dlir::TermKind;

class RuleTranslator {
 public:
  RuleTranslator(const Program& program, const Rule& rule,
                 const std::map<std::string, std::string>& cte_names)
      : program_(program), rule_(rule), cte_names_(cte_names) {}

  Result<Select> Run() {
    Select select;
    select.distinct = true;

    // FROM: one table per positive atom; bind variables to columns.
    int alias_counter = 0;
    for (const Atom& atom : rule_.body) {
      if (atom.negated) continue;
      const RelationDecl* decl = program_.FindDecl(atom.predicate);
      if (decl == nullptr) {
        return Status::NotFound("undeclared predicate: " + atom.predicate);
      }
      TableRef ref;
      ref.table = TableName(atom.predicate);
      ref.alias = "R" + std::to_string(++alias_counter);
      select.from.push_back(ref);

      for (size_t i = 0; i < atom.args.size(); ++i) {
        const Term& arg = atom.args[i];
        Expr col = Expr::Column(ref.alias, decl->columns[i].name);
        switch (arg.kind) {
          case TermKind::kWildcard:
            break;
          case TermKind::kConstant:
            select.where.push_back(
                Predicate{CmpOp::kEq, col, Expr::Const(arg.constant)});
            break;
          case TermKind::kVariable: {
            auto it = var_expr_.find(arg.var);
            if (it == var_expr_.end()) {
              var_expr_.emplace(arg.var, col);
            } else {
              select.where.push_back(Predicate{CmpOp::kEq, col, it->second});
            }
            break;
          }
          case TermKind::kBinary:
            deferred_.push_back({col, &arg});
            break;
        }
      }
    }

    // Expression-valued atom arguments (e.g. the d+1 of a recursive step
    // appears in heads in practice, but handle body occurrences too).
    for (const auto& [col, term] : deferred_) {
      RAQLET_ASSIGN_OR_RETURN(Expr e, TermToExpr(*term));
      select.where.push_back(Predicate{CmpOp::kEq, col, e});
    }

    // Constraints: binding equalities define variables; the rest filter.
    bool changed = true;
    std::vector<bool> used(rule_.constraints.size(), false);
    while (changed) {
      changed = false;
      for (size_t i = 0; i < rule_.constraints.size(); ++i) {
        if (used[i]) continue;
        const dlir::Constraint& c = rule_.constraints[i];
        if (c.op == CmpOp::kEq) {
          if (c.lhs.is_var() && var_expr_.count(c.lhs.var) == 0 &&
              Resolvable(c.rhs)) {
            RAQLET_ASSIGN_OR_RETURN(Expr e, TermToExpr(c.rhs));
            var_expr_.emplace(c.lhs.var, std::move(e));
            used[i] = true;
            changed = true;
            continue;
          }
          if (c.rhs.is_var() && var_expr_.count(c.rhs.var) == 0 &&
              Resolvable(c.lhs)) {
            RAQLET_ASSIGN_OR_RETURN(Expr e, TermToExpr(c.lhs));
            var_expr_.emplace(c.rhs.var, std::move(e));
            used[i] = true;
            changed = true;
            continue;
          }
        }
        if (Resolvable(c.lhs) && Resolvable(c.rhs)) {
          RAQLET_ASSIGN_OR_RETURN(Expr lhs, TermToExpr(c.lhs));
          RAQLET_ASSIGN_OR_RETURN(Expr rhs, TermToExpr(c.rhs));
          select.where.push_back(Predicate{c.op, std::move(lhs), std::move(rhs)});
          used[i] = true;
          changed = true;
        }
      }
    }
    for (size_t i = 0; i < rule_.constraints.size(); ++i) {
      if (!used[i]) {
        return Status::Unsupported("constraint with unbound variable in SQL "
                                   "translation: " +
                                   rule_.constraints[i].ToString());
      }
    }

    // Negated atoms -> NOT EXISTS.
    for (const Atom& atom : rule_.body) {
      if (!atom.negated) continue;
      const RelationDecl* decl = program_.FindDecl(atom.predicate);
      if (decl == nullptr) {
        return Status::NotFound("undeclared predicate: " + atom.predicate);
      }
      NotExists ne;
      ne.table = TableName(atom.predicate);
      for (size_t i = 0; i < atom.args.size(); ++i) {
        const Term& arg = atom.args[i];
        if (arg.is_wildcard()) continue;
        RAQLET_ASSIGN_OR_RETURN(Expr e, TermToExpr(arg));
        ne.equalities.emplace_back(decl->columns[i].name, std::move(e));
      }
      select.not_exists.push_back(std::move(ne));
    }

    // SELECT items from the head; aggregation becomes GROUP BY.
    const RelationDecl* head_decl = program_.FindDecl(rule_.head.predicate);
    if (head_decl == nullptr) {
      return Status::NotFound("undeclared head: " + rule_.head.predicate);
    }
    for (size_t i = 0; i < rule_.head.args.size(); ++i) {
      SelectItem item;
      item.alias = head_decl->columns[i].name;
      if (rule_.agg.has_value() &&
          static_cast<int>(i) == rule_.agg_result_pos) {
        std::vector<Expr> args;
        if (rule_.agg->func != dlir::AggFunc::kCount ||
            rule_.agg->arg.kind != TermKind::kWildcard) {
          if (rule_.agg->arg.kind != TermKind::kWildcard) {
            RAQLET_ASSIGN_OR_RETURN(Expr e, TermToExpr(rule_.agg->arg));
            args.push_back(std::move(e));
          }
        }
        item.expr = Expr::Agg(rule_.agg->func, std::move(args));
      } else {
        RAQLET_ASSIGN_OR_RETURN(item.expr, TermToExpr(rule_.head.args[i]));
      }
      select.items.push_back(std::move(item));
    }
    if (rule_.agg.has_value()) {
      select.distinct = false;  // GROUP BY already collapses groups
      for (size_t i = 0; i < select.items.size(); ++i) {
        if (static_cast<int>(i) == rule_.agg_result_pos) continue;
        select.group_by.push_back(select.items[i].expr);
      }
    }
    return select;
  }

 private:
  std::string TableName(const std::string& predicate) const {
    auto it = cte_names_.find(predicate);
    return it == cte_names_.end() ? predicate : it->second;
  }

  bool Resolvable(const Term& term) const {
    switch (term.kind) {
      case TermKind::kConstant:
        return true;
      case TermKind::kVariable:
        return var_expr_.count(term.var) > 0;
      case TermKind::kWildcard:
        return false;
      case TermKind::kBinary:
        return Resolvable(term.children[0]) && Resolvable(term.children[1]);
    }
    return false;
  }

  Result<Expr> TermToExpr(const Term& term) const {
    switch (term.kind) {
      case TermKind::kConstant:
        return Expr::Const(term.constant);
      case TermKind::kVariable: {
        auto it = var_expr_.find(term.var);
        if (it == var_expr_.end()) {
          return Status::Unsupported("unbound variable '" + term.var +
                                     "' in SQL translation of rule: " +
                                     rule_.ToString());
        }
        return it->second;
      }
      case TermKind::kWildcard:
        return Status::Internal("wildcard in value position");
      case TermKind::kBinary: {
        RAQLET_ASSIGN_OR_RETURN(Expr lhs, TermToExpr(term.children[0]));
        RAQLET_ASSIGN_OR_RETURN(Expr rhs, TermToExpr(term.children[1]));
        return Expr::Arith(term.op, std::move(lhs), std::move(rhs));
      }
    }
    return Status::Internal("unhandled term kind");
  }

  const Program& program_;
  const Rule& rule_;
  const std::map<std::string, std::string>& cte_names_;
  std::map<std::string, Expr> var_expr_;
  std::vector<std::pair<Expr, const Term*>> deferred_;
};

}  // namespace

Result<SqirProgram> TranslateToSqir(const Program& program,
                                    const SqirOptions& options) {
  RAQLET_RETURN_IF_ERROR(program.Validate());
  analysis::AnalysisReport report = analysis::Analyze(program);
  RAQLET_RETURN_IF_ERROR(analysis::CheckBackendSupport(
      program, report, analysis::Backend::kSql));

  std::vector<std::string> outputs = program.OutputRelations();
  if (outputs.size() != 1) {
    return Status::Unsupported(
        "SQL translation requires exactly one output relation, got " +
        std::to_string(outputs.size()));
  }

  analysis::DependencyGraph graph = analysis::DependencyGraph::Build(program);
  std::set<std::string> idbs = program.IdbPredicates();

  // CTE order: SCC topological order restricted to IDBs.
  std::vector<std::string> cte_order;
  for (const auto& scc : graph.SccsInTopologicalOrder()) {
    for (const std::string& pred : scc) {
      if (idbs.count(pred) > 0) cte_order.push_back(pred);
    }
  }

  std::map<std::string, std::string> cte_names;
  for (size_t i = 0; i < cte_order.size(); ++i) {
    cte_names[cte_order[i]] =
        options.use_v_names ? "V" + std::to_string(i + 1) : cte_order[i];
  }

  SqirProgram out;
  for (const std::string& pred : cte_order) {
    const RelationDecl* decl = program.FindDecl(pred);
    if (decl == nullptr) {
      return Status::NotFound("undeclared IDB: " + pred);
    }
    Cte cte;
    cte.name = cte_names[pred];
    cte.source_predicate = pred;
    for (const Column& col : decl->columns) {
      cte.columns.push_back(col.name);
      cte.column_types.push_back(col.type);
    }
    cte.recursive = graph.IsRecursivePredicate(pred);

    // Base branches first (recursive CTE grammar requires it).
    for (bool recursive_branch : {false, true}) {
      for (const Rule& rule : program.rules) {
        if (rule.head.predicate != pred) continue;
        bool self_ref = rule.BodyUses(pred);
        if (self_ref != recursive_branch) continue;
        RuleTranslator translator(program, rule, cte_names);
        RAQLET_ASSIGN_OR_RETURN(Select select, translator.Run());
        cte.branches.push_back(std::move(select));
      }
    }
    if (cte.branches.empty()) {
      return Status::Unsupported("IDB '" + pred + "' has no defining rules");
    }
    out.ctes.push_back(std::move(cte));
  }

  // Final SELECT DISTINCT * FROM <output CTE>.
  const std::string& output = outputs[0];
  const RelationDecl* out_decl = program.FindDecl(output);
  Select final_select;
  final_select.distinct = true;
  TableRef ref;
  ref.table = cte_names.count(output) ? cte_names[output] : output;
  ref.alias = "R1";
  final_select.from.push_back(ref);
  for (const Column& col : out_decl->columns) {
    final_select.items.push_back(
        SelectItem{Expr::Column("R1", col.name), col.name});
    out.output_columns.push_back(col.name);
  }
  out.final_select = std::move(final_select);
  return out;
}

}  // namespace raqlet::sqir
