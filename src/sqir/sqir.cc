#include "sqir/sqir.h"

#include <sstream>

#include "common/str_util.h"

namespace raqlet::sqir {

Expr Expr::Column(std::string table, std::string column) {
  Expr e;
  e.kind = kColumn;
  e.table = std::move(table);
  e.column = std::move(column);
  return e;
}

Expr Expr::Const(dlir::Constant c) {
  Expr e;
  e.kind = kConst;
  e.constant = std::move(c);
  return e;
}

Expr Expr::Arith(dlir::ArithOp op, Expr lhs, Expr rhs) {
  Expr e;
  e.kind = kArith;
  e.op = op;
  e.children.push_back(std::move(lhs));
  e.children.push_back(std::move(rhs));
  return e;
}

Expr Expr::Agg(dlir::AggFunc func, std::vector<Expr> args) {
  Expr e;
  e.kind = kAgg;
  e.agg = func;
  e.children = std::move(args);
  return e;
}

std::string Expr::ToString() const {
  switch (kind) {
    case kColumn:
      return table + "." + column;
    case kConst:
      return constant.ToString();
    case kArith:
      return "(" + children[0].ToString() + " " +
             dlir::ArithOpToString(op) + " " + children[1].ToString() + ")";
    case kAgg: {
      std::string inner = children.empty() ? "*" : children[0].ToString();
      return std::string(dlir::AggFuncToString(agg)) + "(" + inner + ")";
    }
  }
  return "?";
}

std::string Predicate::ToString() const {
  return lhs.ToString() + " " + dlir::CmpOpToString(op) + " " +
         rhs.ToString();
}

std::string SqirProgram::ToString() const {
  std::ostringstream os;
  auto render_select = [&](const Select& sel) {
    os << "  SELECT" << (sel.distinct ? " DISTINCT" : "");
    std::vector<std::string> items;
    for (const SelectItem& item : sel.items) {
      items.push_back(item.expr.ToString() + " AS " + item.alias);
    }
    os << " " << Join(items, ", ") << "\n  FROM ";
    std::vector<std::string> from;
    for (const TableRef& t : sel.from) from.push_back(t.table + " " + t.alias);
    os << Join(from, ", ") << "\n";
    if (!sel.where.empty() || !sel.not_exists.empty()) {
      std::vector<std::string> preds;
      for (const Predicate& p : sel.where) preds.push_back(p.ToString());
      for (const NotExists& ne : sel.not_exists) {
        preds.push_back("NOT EXISTS " + ne.table);
      }
      os << "  WHERE " << Join(preds, " AND ") << "\n";
    }
    if (!sel.group_by.empty()) {
      std::vector<std::string> groups;
      for (const Expr& g : sel.group_by) groups.push_back(g.ToString());
      os << "  GROUP BY " << Join(groups, ", ") << "\n";
    }
  };
  for (const Cte& cte : ctes) {
    os << (cte.recursive ? "RECURSIVE " : "") << cte.name << "("
       << Join(cte.columns, ", ") << ")  -- " << cte.source_predicate << "\n";
    for (const Select& sel : cte.branches) render_select(sel);
  }
  os << "FINAL\n";
  render_select(final_select);
  return os.str();
}

}  // namespace raqlet::sqir
