#include "opt/passes.h"

#include <algorithm>
#include <map>
#include <set>

#include "analysis/dependency_graph.h"
#include "opt/rewrite_util.h"

namespace raqlet::opt {

using dlir::Atom;
using dlir::CmpOp;
using dlir::Constraint;
using dlir::Program;
using dlir::RelationDecl;
using dlir::Rule;
using dlir::Term;
using dlir::TermKind;

namespace {

// Removes exact duplicate positive atoms from one rule body in place.
void DedupeAtoms(Rule* rule) {
  std::vector<Atom> kept;
  for (const Atom& atom : rule->body) {
    bool duplicate = false;
    if (!atom.negated) {
      for (const Atom& prev : kept) {
        if (prev == atom) {
          duplicate = true;
          break;
        }
      }
    }
    if (!duplicate) kept.push_back(atom);
  }
  rule->body = std::move(kept);
}

// Predicates eligible as inlining sources: exactly one defining rule,
// non-recursive, aggregate-free, not an input relation.
std::set<std::string> InlinableSources(const Program& program) {
  analysis::DependencyGraph graph = analysis::DependencyGraph::Build(program);
  std::map<std::string, int> rule_count;
  std::set<std::string> has_agg;
  for (const Rule& rule : program.rules) {
    ++rule_count[rule.head.predicate];
    if (rule.agg.has_value()) has_agg.insert(rule.head.predicate);
  }
  std::set<std::string> out;
  for (const auto& [pred, count] : rule_count) {
    if (count != 1) continue;
    if (has_agg.count(pred) > 0) continue;
    if (graph.IsRecursivePredicate(pred)) continue;
    const RelationDecl* decl = program.FindDecl(pred);
    if (decl != nullptr && decl->is_input) continue;
    out.insert(pred);
  }
  return out;
}

// Inlines `source` (the single rule defining some predicate P) at body
// position `atom_index` of `rule`. Returns false if the unification is
// statically infeasible (the rule can be dropped).
bool InlineAt(Rule* rule, size_t atom_index, const Rule& source,
              dlir::VarGen* gen) {
  Atom target = rule->body[atom_index];
  Rule renamed = RenameRuleVars(source, gen);

  Subst subst;
  std::vector<Constraint> extra;
  for (size_t i = 0; i < renamed.head.args.size(); ++i) {
    const Term& head_arg = renamed.head.args[i];
    const Term& call_arg = target.args[i];
    if (head_arg.is_var()) {
      auto it = subst.find(head_arg.var);
      if (it == subst.end()) {
        if (call_arg.is_wildcard()) {
          // Keep the fresh variable; it simply stays unconstrained here.
          continue;
        }
        subst[head_arg.var] = call_arg;
      } else if (!(it->second == call_arg)) {
        // Repeated head variable: both call args must agree.
        if (call_arg.is_wildcard()) continue;
        extra.push_back(Constraint{CmpOp::kEq, it->second, call_arg});
      }
      continue;
    }
    // Constant or expression in the source head.
    if (call_arg.is_wildcard()) continue;
    if (head_arg.is_const() && call_arg.is_const()) {
      if (!(head_arg == call_arg)) return false;  // infeasible
      continue;
    }
    extra.push_back(Constraint{CmpOp::kEq, call_arg, head_arg});
  }

  // Splice the substituted source body in place of the call atom.
  std::vector<Atom> new_body;
  for (size_t i = 0; i < rule->body.size(); ++i) {
    if (i == atom_index) {
      for (const Atom& atom : renamed.body) {
        new_body.push_back(SubstituteAtom(atom, subst));
      }
    } else {
      new_body.push_back(rule->body[i]);
    }
  }
  rule->body = std::move(new_body);
  for (const Constraint& c : renamed.constraints) {
    Constraint sc;
    sc.op = c.op;
    sc.lhs = SubstituteTerm(c.lhs, subst);
    sc.rhs = SubstituteTerm(c.rhs, subst);
    rule->constraints.push_back(std::move(sc));
  }
  for (const Constraint& c : extra) {
    Constraint sc;
    sc.op = c.op;
    sc.lhs = SubstituteTerm(c.lhs, subst);
    sc.rhs = SubstituteTerm(c.rhs, subst);
    rule->constraints.push_back(std::move(sc));
  }
  DedupeAtoms(rule);
  return true;
}

}  // namespace

Result<Program> InlineRules(const Program& program) {
  Program out = program;
  bool changed = true;
  int guard = 0;
  while (changed) {
    if (++guard > 100) {
      return Status::Internal("inlining did not reach a fixpoint");
    }
    changed = false;
    std::set<std::string> sources = InlinableSources(out);
    std::map<std::string, const Rule*> source_rule;
    for (const Rule& rule : out.rules) {
      if (sources.count(rule.head.predicate) > 0) {
        source_rule[rule.head.predicate] = &rule;
      }
    }
    std::vector<Rule> next_rules;
    for (Rule rule : out.rules) {
      bool feasible = true;
      if (!rule.agg.has_value()) {  // never inline into aggregate rules
        bool local_change = true;
        while (local_change && feasible) {
          local_change = false;
          for (size_t i = 0; i < rule.body.size(); ++i) {
            const Atom& atom = rule.body[i];
            if (atom.negated) continue;
            auto it = source_rule.find(atom.predicate);
            if (it == source_rule.end()) continue;
            if (it->second == &rule) continue;  // cannot inline into itself
            dlir::VarGen gen(rule.AllVars());
            if (!InlineAt(&rule, i, *it->second, &gen)) {
              feasible = false;
            }
            changed = true;
            local_change = true;
            break;
          }
        }
      }
      if (feasible) next_rules.push_back(std::move(rule));
    }
    out.rules = std::move(next_rules);
    if (changed) {
      // source_rule pointers referenced the previous rule vector; restart
      // the scan on the rewritten program.
      continue;
    }
  }
  return out;
}

Result<Program> EliminateDeadRules(const Program& program) {
  std::vector<std::string> outputs = program.OutputRelations();
  if (outputs.empty()) return program;

  // Backwards reachability from outputs over rule bodies.
  std::set<std::string> live(outputs.begin(), outputs.end());
  bool changed = true;
  while (changed) {
    changed = false;
    for (const Rule& rule : program.rules) {
      if (live.count(rule.head.predicate) == 0) continue;
      for (const Atom& atom : rule.body) {
        if (live.insert(atom.predicate).second) changed = true;
      }
    }
  }

  Program out;
  out.decls.reserve(program.decls.size());
  for (const RelationDecl& decl : program.decls) {
    if (live.count(decl.name) > 0) out.decls.push_back(decl);
  }
  for (const Rule& rule : program.rules) {
    if (live.count(rule.head.predicate) > 0) out.rules.push_back(rule);
  }
  return out;
}

Result<Program> PushdownConstants(const Program& program) {
  Program out = program;
  std::vector<Rule> kept;
  for (Rule rule : out.rules) {
    bool feasible = true;
    bool changed = true;
    while (changed && feasible) {
      changed = false;
      // Fold constants everywhere first.
      for (Atom& atom : rule.body) {
        for (Term& arg : atom.args) arg = FoldConstants(arg);
      }
      for (Term& arg : rule.head.args) arg = FoldConstants(arg);
      for (Constraint& c : rule.constraints) {
        c.lhs = FoldConstants(c.lhs);
        c.rhs = FoldConstants(c.rhs);
      }

      // Find one rewritable constraint, apply it, and restart the sweep
      // (substitution invalidates the constraint list being scanned).
      for (size_t ci = 0; ci < rule.constraints.size(); ++ci) {
        const Constraint& c = rule.constraints[ci];
        // Decide constant comparisons.
        if (c.lhs.is_const() && c.rhs.is_const()) {
          int verdict =
              EvalConstComparison(c.op, c.lhs.constant, c.rhs.constant);
          if (verdict < 0) continue;  // incomparable kinds: leave as is
          if (verdict == 0) feasible = false;
          rule.constraints.erase(rule.constraints.begin() +
                                 static_cast<long>(ci));
          changed = true;
          break;
        }
        // Substitute v = const (both orientations).
        const Term* var_side = nullptr;
        const Term* const_side = nullptr;
        if (c.op == CmpOp::kEq) {
          if (c.lhs.is_var() && c.rhs.is_const()) {
            var_side = &c.lhs;
            const_side = &c.rhs;
          } else if (c.rhs.is_var() && c.lhs.is_const()) {
            var_side = &c.rhs;
            const_side = &c.lhs;
          }
        }
        // Never substitute away the aggregate result variable: a
        // constraint on it is a HAVING-style filter, not a binding.
        if (var_side != nullptr && rule.agg.has_value() &&
            rule.agg_result_pos >= 0) {
          const Term& agg_slot =
              rule.head.args[static_cast<size_t>(rule.agg_result_pos)];
          if (agg_slot.is_var() && agg_slot.var == var_side->var) {
            var_side = nullptr;
          }
        }
        if (var_side != nullptr) {
          Subst subst{{var_side->var, *const_side}};
          rule.constraints.erase(rule.constraints.begin() +
                                 static_cast<long>(ci));
          rule = SubstituteRule(rule, subst);
          changed = true;
          break;
        }
      }
    }
    if (feasible) kept.push_back(std::move(rule));
  }
  out.rules = std::move(kept);
  return out;
}

Result<Program> RemoveDuplicateAtoms(const Program& program) {
  Program out = program;
  for (Rule& rule : out.rules) DedupeAtoms(&rule);
  return out;
}

Result<Program> EliminateKeySelfJoins(const Program& program) {
  Program out = program;
  std::vector<Rule> kept;
  for (Rule rule : out.rules) {
    bool feasible = true;
    bool changed = true;
    while (changed && feasible) {
      changed = false;
      for (size_t i = 0; i < rule.body.size() && !changed; ++i) {
        for (size_t j = i + 1; j < rule.body.size() && !changed; ++j) {
          const Atom& a = rule.body[i];
          const Atom& b = rule.body[j];
          if (a.negated || b.negated || a.predicate != b.predicate) continue;
          const RelationDecl* decl = out.FindDecl(a.predicate);
          if (decl == nullptr || decl->primary_key.empty()) continue;

          // Keys must match syntactically on every key column.
          bool keys_match = true;
          for (int k : decl->primary_key) {
            const Term& ta = a.args[static_cast<size_t>(k)];
            const Term& tb = b.args[static_cast<size_t>(k)];
            if (ta.is_wildcard() || tb.is_wildcard() || !(ta == tb)) {
              keys_match = false;
              break;
            }
          }
          if (!keys_match) continue;

          // Merge: unify non-key columns of b into a, then drop b.
          Atom merged = a;
          Subst subst;
          bool mergeable = true;
          for (size_t k = 0; k < a.args.size() && mergeable; ++k) {
            const Term& ta = a.args[k];
            const Term& tb = b.args[k];
            if (ta == tb) continue;
            if (tb.is_wildcard()) continue;
            if (ta.is_wildcard()) {
              merged.args[k] = tb;
              continue;
            }
            if (ta.is_var() && (tb.is_var() || tb.is_const())) {
              subst[ta.var] = tb;
              merged.args[k] = tb;
              continue;
            }
            if (tb.is_var() && ta.is_const()) {
              subst[tb.var] = ta;
              continue;
            }
            if (ta.is_const() && tb.is_const()) {
              feasible = false;  // same key, conflicting values
              continue;
            }
            mergeable = false;  // expressions: leave the join alone
          }
          if (!mergeable || !feasible) continue;

          rule.body[i] = merged;
          rule.body.erase(rule.body.begin() + static_cast<long>(j));
          if (!subst.empty()) rule = SubstituteRule(rule, subst);
          changed = true;
        }
      }
    }
    if (feasible) kept.push_back(std::move(rule));
  }
  out.rules = std::move(kept);
  return out;
}

Result<Program> LinearizeRecursion(const Program& program) {
  analysis::DependencyGraph graph = analysis::DependencyGraph::Build(program);
  Program out = program;

  // Group rules by head predicate.
  std::map<std::string, std::vector<const Rule*>> by_head;
  for (const Rule& rule : out.rules) {
    by_head[rule.head.predicate].push_back(&rule);
  }

  std::vector<Rule> rewritten;
  std::set<const Rule*> replaced;
  for (const auto& [pred, rules] : by_head) {
    if (!graph.IsRecursivePredicate(pred)) continue;
    // Only single-predicate SCCs (no mutual recursion).
    int scc = graph.SccOf(pred);
    if (graph.SccsInTopologicalOrder()[static_cast<size_t>(scc)].size() > 1) {
      continue;
    }
    // Find the composition rule T(a,c) :- T(a,b), T(b,c). and check every
    // other rule is a non-recursive exit rule.
    const Rule* composition = nullptr;
    std::vector<const Rule*> exits;
    bool eligible = true;
    for (const Rule* rule : rules) {
      int recursive_atoms = 0;
      for (const Atom& atom : rule->body) {
        if (!atom.negated && atom.predicate == pred) ++recursive_atoms;
      }
      if (recursive_atoms == 0) {
        if (rule->agg.has_value()) eligible = false;
        exits.push_back(rule);
        continue;
      }
      if (composition != nullptr) {
        eligible = false;
        break;
      }
      composition = rule;
      // Shape check: exactly two positive atoms T(a,b), T(b,c); head
      // T(a,c); distinct variables; no constraints or aggregate.
      if (rule->body.size() != 2 || !rule->constraints.empty() ||
          rule->agg.has_value() || rule->head.args.size() != 2) {
        eligible = false;
        break;
      }
      const Atom& first = rule->body[0];
      const Atom& second = rule->body[1];
      if (first.negated || second.negated || first.predicate != pred ||
          second.predicate != pred || first.args.size() != 2 ||
          second.args.size() != 2) {
        eligible = false;
        break;
      }
      auto var_name = [](const Term& t) {
        return t.is_var() ? t.var : std::string();
      };
      std::string a = var_name(first.args[0]);
      std::string b = var_name(first.args[1]);
      std::string b2 = var_name(second.args[0]);
      std::string c = var_name(second.args[1]);
      std::string ha = var_name(rule->head.args[0]);
      std::string hc = var_name(rule->head.args[1]);
      if (a.empty() || b.empty() || c.empty() || b != b2 || ha != a ||
          hc != c || a == b || b == c || a == c) {
        eligible = false;
        break;
      }
    }
    if (!eligible || composition == nullptr || exits.empty()) continue;
    // Exit rule heads must be two distinct variables for clean unification.
    for (const Rule* exit : exits) {
      if (exit->head.args.size() != 2 || !exit->head.args[0].is_var() ||
          !exit->head.args[1].is_var() ||
          exit->head.args[0].var == exit->head.args[1].var) {
        eligible = false;
      }
    }
    if (!eligible) continue;

    // T(a,c) :- T(a,b), T(b,c).  ==>  for each exit rule
    // T(x,y) :- B(x,y):  T(a,c) :- T(a,b), B(b,c).
    const std::string a = composition->body[0].args[0].var;
    const std::string b = composition->body[0].args[1].var;
    const std::string c = composition->body[1].args[1].var;
    for (const Rule* exit : exits) {
      dlir::VarGen gen(composition->AllVars());
      Rule renamed_exit = RenameRuleVars(*exit, &gen);
      Subst unify{{renamed_exit.head.args[0].var, Term::Var(b)},
                  {renamed_exit.head.args[1].var, Term::Var(c)}};
      Rule linear;
      linear.head = composition->head;
      linear.body.push_back(composition->body[0]);  // T(a, b)
      for (const Atom& atom : renamed_exit.body) {
        linear.body.push_back(SubstituteAtom(atom, unify));
      }
      for (const Constraint& cst : renamed_exit.constraints) {
        Constraint sc;
        sc.op = cst.op;
        sc.lhs = SubstituteTerm(cst.lhs, unify);
        sc.rhs = SubstituteTerm(cst.rhs, unify);
        linear.constraints.push_back(std::move(sc));
      }
      rewritten.push_back(std::move(linear));
    }
    replaced.insert(composition);
    (void)a;
  }

  if (replaced.empty()) return out;
  std::vector<Rule> next;
  for (const Rule& rule : out.rules) {
    if (replaced.count(&rule) == 0) next.push_back(rule);
  }
  for (Rule& rule : rewritten) next.push_back(std::move(rule));
  out.rules = std::move(next);
  return out;
}

}  // namespace raqlet::opt
