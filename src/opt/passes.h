#ifndef RAQLET_OPT_PASSES_H_
#define RAQLET_OPT_PASSES_H_

// The §5 DLIR-level optimization passes. Every pass is a pure
// Program -> Program rewrite; semantic preservation is differential-tested
// against the unoptimized program on the Datalog engine.

#include "common/status.h"
#include "dlir/program.h"

namespace raqlet::opt {

/// Inlining (§5, Fig. 4a): replaces positive occurrences of single-rule,
/// non-recursive, aggregate-free IDB predicates by their definitions,
/// renaming variables apart. Does not inline into aggregate rules (that
/// would change witness multiplicity) or into negated atoms. Duplicate
/// body atoms created by inlining are removed.
Result<dlir::Program> InlineRules(const dlir::Program& program);

/// Dead rule elimination (§5, Fig. 4b): drops rules and declarations not
/// reachable (backwards) from any output relation. No-op on programs with
/// no declared outputs.
Result<dlir::Program> EliminateDeadRules(const dlir::Program& program);

/// Selection/constant pushdown: propagates `v = <const>` constraints into
/// atom arguments (turning scans into index probes), folds constant
/// arithmetic, decides constant comparisons, and drops rules whose
/// constraints are statically false.
Result<dlir::Program> PushdownConstants(const dlir::Program& program);

/// Removes exact duplicate positive atoms inside each rule body
/// (eliminates the trivial self-joins that inlining exposes, Fig. 4a).
Result<dlir::Program> RemoveDuplicateAtoms(const dlir::Program& program);

/// Semantic join elimination (§5): merges two positive atoms over the same
/// relation when their primary-key arguments coincide, using the key
/// knowledge carried over from PG-Schema (node EDBs are keyed on id).
Result<dlir::Program> EliminateKeySelfJoins(const dlir::Program& program);

/// Linearization [42]: rewrites the non-linear composition rule
/// `T(a, c) :- T(a, b), T(b, c).` into one linear rule per exit rule of T
/// (`T(a, c) :- T(a, b), <exit body>(b, c).`), which preserves the
/// fixpoint for transitive-closure-shaped recursion. Applies only when
/// the shape matches exactly; otherwise the program is unchanged.
Result<dlir::Program> LinearizeRecursion(const dlir::Program& program);

}  // namespace raqlet::opt

#endif  // RAQLET_OPT_PASSES_H_
