#ifndef RAQLET_OPT_REWRITE_UTIL_H_
#define RAQLET_OPT_REWRITE_UTIL_H_

// Term/rule substitution helpers shared by the optimizer passes.

#include <map>
#include <string>

#include "dlir/program.h"

namespace raqlet::opt {

/// Variable-to-term substitution map.
using Subst = std::map<std::string, dlir::Term>;

/// Applies `subst` to every variable occurrence in a term/atom/rule.
dlir::Term SubstituteTerm(const dlir::Term& term, const Subst& subst);
dlir::Atom SubstituteAtom(const dlir::Atom& atom, const Subst& subst);
dlir::Rule SubstituteRule(const dlir::Rule& rule, const Subst& subst);

/// Renames every variable of `rule` to a fresh name drawn from `gen`
/// (used before inlining a rule body into another rule).
dlir::Rule RenameRuleVars(const dlir::Rule& rule, dlir::VarGen* gen);

/// Constant-folds a term (e.g. (2 + 3) -> 5). Division by zero is left
/// unfolded (the engine reports it at runtime).
dlir::Term FoldConstants(const dlir::Term& term);

/// Evaluates `lhs op rhs` over two IR constants when both are numeric or
/// both symbolic; returns -1 unknown, 0 false, 1 true.
int EvalConstComparison(dlir::CmpOp op, const dlir::Constant& lhs,
                        const dlir::Constant& rhs);

}  // namespace raqlet::opt

#endif  // RAQLET_OPT_REWRITE_UTIL_H_
