#ifndef RAQLET_OPT_PASS_MANAGER_H_
#define RAQLET_OPT_PASS_MANAGER_H_

// Named pass registry and pipelines. Unlike monolithic industrial
// optimizers, passes can be freely added/removed per target backend
// (§5, "Extensibility and Portability").

#include <functional>
#include <string>
#include <vector>

#include "common/status.h"
#include "dlir/program.h"

namespace raqlet::opt {

using PassFn = std::function<Result<dlir::Program>(const dlir::Program&)>;

struct PassInfo {
  std::string name;
  std::string description;
  PassFn fn;
};

/// Pipeline-level options. The MLIR-style discipline: verify the program
/// after every pass so a malformed rewrite is caught at the boundary of
/// the pass that produced it, not rounds later inside an engine (PR 1's
/// magic-sets use-after-free shipped malformed output straight into the
/// engines). Verification runs the full static analyzer
/// (analysis::VerifyProgram): structure, types, stratification.
struct OptOptions {
  /// Defaults on in debug/sanitizer builds, off in release; either way is
  /// overridable with RAQLET_VERIFY_PASSES=1|0 (see
  /// analysis::VerifyByDefault). Set explicitly to force one behavior.
  bool verify_each_pass;

  OptOptions();
};

/// All registered passes, in a sensible default order.
const std::vector<PassInfo>& AllPasses();

/// Looks up one pass by name ("inline", "dre", "pushdown", "dedup-atoms",
/// "self-join-elim", "magic-sets", "linearize").
Result<PassInfo> FindPass(const std::string& name);

class PassManager {
 public:
  PassManager() = default;

  /// Appends a registered pass by name; fails on unknown names.
  Status Add(const std::string& name);
  void AddFn(std::string name, PassFn fn);

  /// Runs the pipeline left to right. With options.verify_each_pass, the
  /// output of every pass is verified (analysis::VerifyProgram); a pass
  /// producing invalid DLIR fails the pipeline with an Internal status
  /// naming the pass and carrying the full diagnostic rendering.
  Result<dlir::Program> Run(const dlir::Program& program,
                            const OptOptions& options = {}) const;

  std::vector<std::string> PassNames() const;

  /// The paper's "fully optimized" pipeline (Table 1 ✓ rows):
  /// inline -> pushdown -> self-join-elim -> dedup-atoms -> dre.
  static PassManager Standard();

  /// Standard plus recursion-aware rewrites (magic sets, linearization) —
  /// used when targeting backends that benefit from or require them.
  static PassManager Aggressive();

 private:
  std::vector<PassInfo> pipeline_;
};

}  // namespace raqlet::opt

#endif  // RAQLET_OPT_PASS_MANAGER_H_
