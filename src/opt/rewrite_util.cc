#include "opt/rewrite_util.h"

namespace raqlet::opt {

using dlir::Atom;
using dlir::CmpOp;
using dlir::Constant;
using dlir::Rule;
using dlir::Term;
using dlir::TermKind;

Term SubstituteTerm(const Term& term, const Subst& subst) {
  switch (term.kind) {
    case TermKind::kVariable: {
      auto it = subst.find(term.var);
      return it == subst.end() ? term : it->second;
    }
    case TermKind::kBinary: {
      Term out = term;
      out.children[0] = SubstituteTerm(term.children[0], subst);
      out.children[1] = SubstituteTerm(term.children[1], subst);
      return out;
    }
    default:
      return term;
  }
}

Atom SubstituteAtom(const Atom& atom, const Subst& subst) {
  Atom out = atom;
  for (Term& arg : out.args) arg = SubstituteTerm(arg, subst);
  return out;
}

Rule SubstituteRule(const Rule& rule, const Subst& subst) {
  Rule out = rule;
  out.head = SubstituteAtom(rule.head, subst);
  for (Atom& atom : out.body) atom = SubstituteAtom(atom, subst);
  for (dlir::Constraint& c : out.constraints) {
    c.lhs = SubstituteTerm(c.lhs, subst);
    c.rhs = SubstituteTerm(c.rhs, subst);
  }
  if (out.agg.has_value()) {
    out.agg->arg = SubstituteTerm(out.agg->arg, subst);
  }
  return out;
}

Rule RenameRuleVars(const Rule& rule, dlir::VarGen* gen) {
  Subst subst;
  for (const std::string& var : rule.AllVars()) {
    subst[var] = Term::Var(gen->Fresh(var));
  }
  return SubstituteRule(rule, subst);
}

Term FoldConstants(const Term& term) {
  if (term.kind != TermKind::kBinary) return term;
  Term folded = term;
  folded.children[0] = FoldConstants(term.children[0]);
  folded.children[1] = FoldConstants(term.children[1]);
  const Term& lhs = folded.children[0];
  const Term& rhs = folded.children[1];
  if (!lhs.is_const() || !rhs.is_const()) return folded;
  const Constant& a = lhs.constant;
  const Constant& b = rhs.constant;
  if (a.type == ValueType::kNumber && b.type == ValueType::kNumber) {
    int64_t x = a.num;
    int64_t y = b.num;
    switch (folded.op) {
      case dlir::ArithOp::kAdd:
        return Term::Num(x + y);
      case dlir::ArithOp::kSub:
        return Term::Num(x - y);
      case dlir::ArithOp::kMul:
        return Term::Num(x * y);
      case dlir::ArithOp::kDiv:
        if (y == 0) return folded;
        return Term::Num(x / y);
      case dlir::ArithOp::kMod:
        if (y == 0) return folded;
        return Term::Num(x % y);
    }
  }
  if (a.type == ValueType::kFloat && b.type == ValueType::kFloat) {
    double x = a.fval;
    double y = b.fval;
    switch (folded.op) {
      case dlir::ArithOp::kAdd:
        return Term::Const(Constant::Float(x + y));
      case dlir::ArithOp::kSub:
        return Term::Const(Constant::Float(x - y));
      case dlir::ArithOp::kMul:
        return Term::Const(Constant::Float(x * y));
      case dlir::ArithOp::kDiv:
        if (y == 0.0) return folded;
        return Term::Const(Constant::Float(x / y));
      case dlir::ArithOp::kMod:
        return folded;
    }
  }
  return folded;
}

int EvalConstComparison(CmpOp op, const Constant& lhs, const Constant& rhs) {
  if (op == CmpOp::kEq) return lhs == rhs ? 1 : 0;
  if (op == CmpOp::kNe) return lhs == rhs ? 0 : 1;
  // Ordering only for same-kind numeric or string constants.
  int cmp = 0;
  if (lhs.type == ValueType::kNumber && rhs.type == ValueType::kNumber) {
    cmp = lhs.num < rhs.num ? -1 : (lhs.num > rhs.num ? 1 : 0);
  } else if (lhs.type == ValueType::kFloat && rhs.type == ValueType::kFloat) {
    cmp = lhs.fval < rhs.fval ? -1 : (lhs.fval > rhs.fval ? 1 : 0);
  } else if (lhs.type == ValueType::kSymbol && rhs.type == ValueType::kSymbol) {
    cmp = lhs.str.compare(rhs.str);
    cmp = cmp < 0 ? -1 : (cmp > 0 ? 1 : 0);
  } else {
    return -1;
  }
  switch (op) {
    case CmpOp::kLt:
      return cmp < 0 ? 1 : 0;
    case CmpOp::kLe:
      return cmp <= 0 ? 1 : 0;
    case CmpOp::kGt:
      return cmp > 0 ? 1 : 0;
    case CmpOp::kGe:
      return cmp >= 0 ? 1 : 0;
    default:
      return -1;
  }
}

}  // namespace raqlet::opt
