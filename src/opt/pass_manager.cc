#include "opt/pass_manager.h"

#include "analysis/typecheck.h"
#include "opt/magic_sets.h"
#include "opt/passes.h"

namespace raqlet::opt {

OptOptions::OptOptions() : verify_each_pass(analysis::VerifyByDefault()) {}

const std::vector<PassInfo>& AllPasses() {
  static const std::vector<PassInfo>& passes = *new std::vector<PassInfo>{
      {"inline", "inline single-rule non-recursive IDBs", InlineRules},
      {"pushdown", "propagate constant equalities into atoms",
       PushdownConstants},
      {"self-join-elim", "merge key-equal self-joins (PG-Schema keys)",
       EliminateKeySelfJoins},
      {"dedup-atoms", "drop duplicate body atoms", RemoveDuplicateAtoms},
      {"dre", "dead rule elimination", EliminateDeadRules},
      {"magic-sets", "magic-set transformation for bound queries",
       ApplyMagicSets},
      {"linearize", "linearize TC-shaped non-linear recursion",
       LinearizeRecursion},
  };
  return passes;
}

Result<PassInfo> FindPass(const std::string& name) {
  for (const PassInfo& pass : AllPasses()) {
    if (pass.name == name) return pass;
  }
  return Status::NotFound("unknown optimization pass: " + name);
}

Status PassManager::Add(const std::string& name) {
  RAQLET_ASSIGN_OR_RETURN(PassInfo pass, FindPass(name));
  pipeline_.push_back(std::move(pass));
  return Status::OK();
}

void PassManager::AddFn(std::string name, PassFn fn) {
  pipeline_.push_back(PassInfo{std::move(name), "", std::move(fn)});
}

Result<dlir::Program> PassManager::Run(const dlir::Program& program,
                                       const OptOptions& options) const {
  dlir::Program current = program;
  for (const PassInfo& pass : pipeline_) {
    RAQLET_ASSIGN_OR_RETURN(current, pass.fn(current));
    if (options.verify_each_pass) {
      Status verified = analysis::VerifyProgram(
          current, "pass '" + pass.name + "' produced invalid DLIR");
      if (!verified.ok()) {
        // Internal, not InvalidArgument: the input was fine — the pass is
        // the component at fault.
        return Status::Internal(verified.message());
      }
    }
  }
  return current;
}

std::vector<std::string> PassManager::PassNames() const {
  std::vector<std::string> names;
  names.reserve(pipeline_.size());
  for (const PassInfo& pass : pipeline_) names.push_back(pass.name);
  return names;
}

PassManager PassManager::Standard() {
  PassManager pm;
  for (const char* name :
       {"inline", "pushdown", "self-join-elim", "dedup-atoms", "dre"}) {
    (void)pm.Add(name);
  }
  return pm;
}

PassManager PassManager::Aggressive() {
  PassManager pm = Standard();
  for (const char* name : {"magic-sets", "dre", "linearize"}) {
    (void)pm.Add(name);
  }
  return pm;
}

}  // namespace raqlet::opt
