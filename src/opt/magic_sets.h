#ifndef RAQLET_OPT_MAGIC_SETS_H_
#define RAQLET_OPT_MAGIC_SETS_H_

// Magic-set transformation [7] (§5, "pushing operators past recursion").
//
// Given a query that calls a recursive predicate with some arguments bound
// to constants (e.g. `out(y) :- tc(1, y).`), the transformation generates
// adorned predicates (`tc_bf`) and magic predicates (`m_tc_bf`) so that
// bottom-up evaluation only derives facts relevant to the bound constants
// — turning whole-graph transitive closure into single-source reachability.
//
// Sideways information passing: left-to-right over body atoms, with
// equality constraints contributing bindings. The transformation bails out
// (returning the program unchanged) when the query region uses negation,
// aggregation, or lattice relations, and verifies the rewritten program
// with Program::Validate() before committing.

#include <string>

#include "common/status.h"
#include "dlir/program.h"

namespace raqlet::opt {

/// Auto-detects a query atom: the first positive body atom of an output
/// rule whose predicate is a recursive IDB and that has at least one
/// constant argument (run PushdownConstants first so `v = 42` constraints
/// have become inline constants). Returns the program unchanged if no such
/// atom exists or the region is ineligible.
Result<dlir::Program> ApplyMagicSets(const dlir::Program& program);

/// Applies the transformation for an explicit query predicate and
/// adornment ('b'/'f' per argument, e.g. "bf"). The seed magic fact is
/// taken from the (unique) call site in an output rule.
Result<dlir::Program> ApplyMagicSetsTo(const dlir::Program& program,
                                       const std::string& query_predicate,
                                       const std::string& adornment);

}  // namespace raqlet::opt

#endif  // RAQLET_OPT_MAGIC_SETS_H_
