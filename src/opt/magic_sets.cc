#include "opt/magic_sets.h"

#include <deque>
#include <map>
#include <set>

#include "analysis/dependency_graph.h"
#include "opt/rewrite_util.h"

namespace raqlet::opt {

using dlir::Atom;
using dlir::Program;
using dlir::RelationDecl;
using dlir::Rule;
using dlir::Term;

namespace {

std::string AdornedName(const std::string& pred, const std::string& ad) {
  return pred + "_" + ad;
}

std::string MagicName(const std::string& pred, const std::string& ad) {
  return "m_" + pred + "_" + ad;
}

// Computes the adornment of `atom` given the currently bound variables:
// a position is bound if it is a constant or an expression over bound vars.
std::string AtomAdornment(const Atom& atom, const std::set<std::string>& bound) {
  std::string ad;
  for (const Term& arg : atom.args) {
    if (arg.is_wildcard()) {
      ad.push_back('f');
      continue;
    }
    std::set<std::string> vars;
    arg.CollectVars(&vars);
    bool all_bound = true;
    for (const std::string& v : vars) {
      if (bound.count(v) == 0) all_bound = false;
    }
    // A bare unbound variable (or expression with unbound vars) is free.
    if (arg.is_var() && bound.count(arg.var) == 0) {
      ad.push_back('f');
    } else if (all_bound) {
      ad.push_back('b');
    } else {
      ad.push_back('f');
    }
  }
  return ad;
}

// Extends `bound` with variables derivable from equality constraints whose
// other side is already bound (mirrors Program::Validate's binding rule).
void PropagateConstraintBindings(const Rule& rule,
                                 std::set<std::string>* bound) {
  bool changed = true;
  while (changed) {
    changed = false;
    for (const dlir::Constraint& c : rule.constraints) {
      if (c.op != dlir::CmpOp::kEq) continue;
      auto try_bind = [&](const Term& target, const Term& source) {
        if (!target.is_var() || bound->count(target.var) > 0) return;
        std::set<std::string> vars;
        source.CollectVars(&vars);
        for (const std::string& v : vars) {
          if (bound->count(v) == 0) return;
        }
        bound->insert(target.var);
        changed = true;
      };
      try_bind(c.lhs, c.rhs);
      try_bind(c.rhs, c.lhs);
    }
  }
}

struct AdornedPred {
  std::string pred;
  std::string adornment;
  bool operator<(const AdornedPred& other) const {
    return std::tie(pred, adornment) < std::tie(other.pred, other.adornment);
  }
};

}  // namespace

Result<Program> ApplyMagicSetsTo(const Program& program,
                                 const std::string& query_predicate,
                                 const std::string& adornment) {
  analysis::DependencyGraph graph = analysis::DependencyGraph::Build(program);
  std::set<std::string> idbs = program.IdbPredicates();

  const RelationDecl* query_decl = program.FindDecl(query_predicate);
  if (query_decl == nullptr || adornment.size() != query_decl->arity()) {
    return Status::InvalidArgument("bad adornment '" + adornment + "' for " +
                                   query_predicate);
  }
  if (adornment.find('b') == std::string::npos) return program;

  // Eligibility: the query predicate's upstream IDB region must be free of
  // negation, aggregation and lattice merges.
  {
    std::set<std::string> region{query_predicate};
    bool grew = true;
    while (grew) {
      grew = false;
      for (const Rule& rule : program.rules) {
        if (region.count(rule.head.predicate) == 0) continue;
        for (const Atom& atom : rule.body) {
          if (idbs.count(atom.predicate) > 0 &&
              region.insert(atom.predicate).second) {
            grew = true;
          }
        }
      }
    }
    for (const Rule& rule : program.rules) {
      if (region.count(rule.head.predicate) == 0) continue;
      if (rule.agg.has_value()) return program;
      for (const Atom& atom : rule.body) {
        if (atom.negated) return program;
      }
    }
    for (const std::string& pred : region) {
      const RelationDecl* decl = program.FindDecl(pred);
      if (decl != nullptr && decl->lattice != dlir::LatticeKind::kNone) {
        return program;
      }
    }
  }

  // Locate the (unique) call site in an output rule and collect the seed.
  const Rule* call_rule = nullptr;
  size_t call_atom_index = 0;
  int call_sites = 0;
  for (const Rule& rule : program.rules) {
    const RelationDecl* head_decl = program.FindDecl(rule.head.predicate);
    if (head_decl == nullptr || !head_decl->is_output) continue;
    for (size_t i = 0; i < rule.body.size(); ++i) {
      if (rule.body[i].predicate != query_predicate) continue;
      ++call_sites;
      call_rule = &rule;
      call_atom_index = i;
    }
  }
  if (call_rule == nullptr || call_sites != 1) return program;
  const Atom& call_atom = call_rule->body[call_atom_index];
  for (size_t i = 0; i < adornment.size(); ++i) {
    if (adornment[i] == 'b' && !call_atom.args[i].is_const()) {
      // Only constant seeds are supported (run PushdownConstants first).
      return program;
    }
  }

  Program out = program;

  // Declare an adorned + magic relation pair for one adorned predicate.
  auto declare = [&](const AdornedPred& ap) {
    const bool need_adorned =
        out.FindDecl(AdornedName(ap.pred, ap.adornment)) == nullptr;
    const bool need_magic =
        out.FindDecl(MagicName(ap.pred, ap.adornment)) == nullptr;
    if (!need_adorned && !need_magic) return;
    const RelationDecl* base_ptr = out.FindDecl(ap.pred);
    if (base_ptr == nullptr) return;
    // Copy the base decl by value: the push_backs below may reallocate
    // out.decls, which would leave base_ptr dangling.
    const RelationDecl base = *base_ptr;
    if (need_adorned) {
      RelationDecl adorned = base;
      adorned.name = AdornedName(ap.pred, ap.adornment);
      adorned.is_input = false;
      adorned.is_output = false;
      out.decls.push_back(std::move(adorned));
    }
    if (need_magic) {
      RelationDecl magic;
      magic.name = MagicName(ap.pred, ap.adornment);
      for (size_t i = 0; i < ap.adornment.size(); ++i) {
        if (ap.adornment[i] == 'b') magic.columns.push_back(base.columns[i]);
      }
      out.decls.push_back(std::move(magic));
    }
  };

  std::deque<AdornedPred> worklist;
  std::set<AdornedPred> seen;
  AdornedPred root{query_predicate, adornment};
  worklist.push_back(root);
  seen.insert(root);
  declare(root);

  std::vector<Rule> generated;
  while (!worklist.empty()) {
    AdornedPred current = worklist.front();
    worklist.pop_front();

    for (const Rule& rule : program.rules) {
      if (rule.head.predicate != current.pred) continue;

      Rule adorned;
      adorned.head = rule.head;
      adorned.head.predicate = AdornedName(current.pred, current.adornment);
      adorned.constraints = rule.constraints;

      // Magic guard first: filters the head's bound arguments.
      Atom magic_guard;
      magic_guard.predicate = MagicName(current.pred, current.adornment);
      std::set<std::string> bound;
      for (size_t i = 0; i < current.adornment.size(); ++i) {
        if (current.adornment[i] != 'b') continue;
        magic_guard.args.push_back(rule.head.args[i]);
        rule.head.args[i].CollectVars(&bound);
      }
      adorned.body.push_back(magic_guard);
      PropagateConstraintBindings(rule, &bound);

      // Left-to-right sideways information passing.
      for (const Atom& atom : rule.body) {
        if (idbs.count(atom.predicate) > 0) {
          std::string atom_ad = AtomAdornment(atom, bound);
          if (atom_ad.find('b') != std::string::npos) {
            AdornedPred ap{atom.predicate, atom_ad};
            declare(ap);
            if (seen.insert(ap).second) worklist.push_back(ap);

            // Magic rule: the bound arguments of this call are reachable
            // from the prefix evaluated so far.
            Rule magic_rule;
            magic_rule.head.predicate = MagicName(ap.pred, ap.adornment);
            for (size_t i = 0; i < atom_ad.size(); ++i) {
              if (atom_ad[i] == 'b') magic_rule.head.args.push_back(atom.args[i]);
            }
            magic_rule.body = adorned.body;  // guard + transformed prefix
            // Constraints usable so far (needed when bindings flow through
            // equalities such as `n = 42` kept by the frontend).
            for (const dlir::Constraint& c : rule.constraints) {
              std::set<std::string> cvars;
              c.CollectVars(&cvars);
              bool ok = true;
              for (const std::string& v : cvars) {
                if (bound.count(v) == 0) ok = false;
              }
              if (ok) magic_rule.constraints.push_back(c);
            }
            // Skip trivial self-supporting magic rules
            // (m_p(x) :- m_p(x), nothing else).
            bool trivial = magic_rule.body.size() == 1 &&
                           magic_rule.constraints.empty() &&
                           magic_rule.body[0].predicate ==
                               magic_rule.head.predicate &&
                           magic_rule.body[0].args == magic_rule.head.args;
            if (!trivial) generated.push_back(std::move(magic_rule));

            Atom transformed = atom;
            transformed.predicate = AdornedName(ap.pred, ap.adornment);
            adorned.body.push_back(transformed);
          } else {
            adorned.body.push_back(atom);  // all-free call: keep original
          }
        } else {
          adorned.body.push_back(atom);
        }
        atom.CollectVars(&bound);
        PropagateConstraintBindings(rule, &bound);
      }
      generated.push_back(std::move(adorned));
    }
  }

  // Seed fact and rewritten call site.
  Rule seed;
  seed.head.predicate = MagicName(query_predicate, adornment);
  for (size_t i = 0; i < adornment.size(); ++i) {
    if (adornment[i] == 'b') seed.head.args.push_back(call_atom.args[i]);
  }
  generated.push_back(std::move(seed));

  // Replace the call atom in the (copied) output rule.
  for (Rule& rule : out.rules) {
    const RelationDecl* head_decl = out.FindDecl(rule.head.predicate);
    if (head_decl == nullptr || !head_decl->is_output) continue;
    for (Atom& atom : rule.body) {
      if (atom.predicate == query_predicate) {
        atom.predicate = AdornedName(query_predicate, adornment);
      }
    }
  }

  for (Rule& rule : generated) out.rules.push_back(std::move(rule));

  // Safety net: if the rewrite produced an invalid program, keep the
  // original (conservative bail-out).
  if (!out.Validate().ok()) return program;
  return out;
}

Result<Program> ApplyMagicSets(const Program& program) {
  analysis::DependencyGraph graph = analysis::DependencyGraph::Build(program);
  std::set<std::string> idbs = program.IdbPredicates();

  for (const Rule& rule : program.rules) {
    const RelationDecl* head_decl = program.FindDecl(rule.head.predicate);
    if (head_decl == nullptr || !head_decl->is_output) continue;
    for (const Atom& atom : rule.body) {
      if (atom.negated) continue;
      if (idbs.count(atom.predicate) == 0) continue;
      if (!graph.IsRecursivePredicate(atom.predicate)) continue;
      std::string ad;
      bool any_bound = false;
      for (const Term& arg : atom.args) {
        if (arg.is_const()) {
          ad.push_back('b');
          any_bound = true;
        } else {
          ad.push_back('f');
        }
      }
      if (!any_bound) continue;
      return ApplyMagicSetsTo(program, atom.predicate, ad);
    }
  }
  return program;
}

}  // namespace raqlet::opt
