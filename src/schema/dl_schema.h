#ifndef RAQLET_SCHEMA_DL_SCHEMA_H_
#define RAQLET_SCHEMA_DL_SCHEMA_H_

// DL-Schema: the Datalog-side data model Raqlet derives from a PG-Schema
// (paper §3, Fig. 2). Every node type becomes an EDB whose first column is
// the node id; every edge type becomes an EDB named
// `<SrcLabel>_<UPPER_SNAKE(edgeLabel)>_<DstLabel>` with columns
// (id1, id2, <edge properties...>).

#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "dlir/program.h"
#include "schema/pg_schema.h"
#include "storage/database.h"

namespace raqlet::schema {

/// Lookup info the PGIR->DLIR translator needs for one node label.
struct NodeRelationInfo {
  std::string relation;                  // EDB name (= node label)
  std::vector<std::string> prop_names;   // column names; [0] is "id"
  std::vector<ValueType> prop_types;

  /// Column position of `property`, or -1.
  int PropertyColumn(const std::string& property) const;
  size_t arity() const { return prop_names.size(); }
};

/// Lookup info for one edge label (keyed by UPPER_SNAKE form).
struct EdgeRelationInfo {
  std::string relation;    // EDB name, e.g. Person_IS_LOCATED_IN_City
  std::string src_label;   // node label of the source
  std::string dst_label;   // node label of the target
  std::vector<std::string> prop_names;  // edge property columns (from col 2)
  std::vector<ValueType> prop_types;

  /// Column position of `property` (offset past id1/id2), or -1.
  int PropertyColumn(const std::string& property) const;
  size_t arity() const { return 2 + prop_names.size(); }
};

struct DlSchema {
  /// EDB declarations (all is_input = true), ready to prepend to a DLIR
  /// program.
  std::vector<dlir::RelationDecl> edbs;
  std::map<std::string, NodeRelationInfo> nodes_by_label;
  std::map<std::string, EdgeRelationInfo> edges_by_label;  // UPPER_SNAKE key

  const NodeRelationInfo* FindNode(const std::string& label) const;
  const EdgeRelationInfo* FindEdge(const std::string& label) const;

  std::string ToString() const;
};

/// Derives the DL-Schema from `pg` (Fig. 2a -> Fig. 2b).
DlSchema TranslateSchema(const PgSchema& pg);

/// Creates every EDB of `dl` as an empty relation in `db`.
Status CreateEdbRelations(const DlSchema& dl, Database* db);

}  // namespace raqlet::schema

#endif  // RAQLET_SCHEMA_DL_SCHEMA_H_
