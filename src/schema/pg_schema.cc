#include "schema/pg_schema.h"

#include <cctype>
#include <sstream>

#include "common/lexer.h"
#include "common/str_util.h"

namespace raqlet::schema {

namespace {

int FindProperty(const std::vector<PropertyDef>& props,
                 const std::string& name) {
  for (size_t i = 0; i < props.size(); ++i) {
    if (props[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

}  // namespace

int NodeTypeDef::PropertyIndex(const std::string& property) const {
  return FindProperty(properties, property);
}

int EdgeTypeDef::PropertyIndex(const std::string& property) const {
  return FindProperty(properties, property);
}

const NodeTypeDef* PgSchema::FindNodeByLabel(const std::string& label) const {
  for (const NodeTypeDef& n : nodes) {
    if (n.label == label) return &n;
  }
  return nullptr;
}

const NodeTypeDef* PgSchema::FindNodeByTypeName(
    const std::string& type_name) const {
  for (const NodeTypeDef& n : nodes) {
    if (n.type_name == type_name) return &n;
  }
  return nullptr;
}

const EdgeTypeDef* PgSchema::FindEdgeByLabel(const std::string& label) const {
  for (const EdgeTypeDef& e : edges) {
    if (e.label == label) return &e;
  }
  for (const EdgeTypeDef& e : edges) {
    if (ToUpperSnake(e.label) == ToUpperSnake(label)) return &e;
  }
  return nullptr;
}

std::string PgSchema::ToString() const {
  std::ostringstream os;
  os << "CREATE GRAPH {\n";
  std::vector<std::string> entries;
  auto props_text = [](const std::vector<PropertyDef>& props) {
    std::vector<std::string> parts;
    for (const PropertyDef& p : props) {
      std::string type;
      switch (p.type) {
        case ValueType::kNumber:
          type = "INT";
          break;
        case ValueType::kSymbol:
          type = "STRING";
          break;
        case ValueType::kFloat:
          type = "FLOAT";
          break;
        case ValueType::kBool:
          type = "BOOL";
          break;
        case ValueType::kNull:
          type = "NULL";
          break;
      }
      parts.push_back(p.name + " " + type);
    }
    return parts.empty() ? std::string() : " {" + Join(parts, ", ") + "}";
  };
  for (const NodeTypeDef& n : nodes) {
    entries.push_back("  (" + n.type_name + ": " + n.label +
                      props_text(n.properties) + ")");
  }
  for (const EdgeTypeDef& e : edges) {
    entries.push_back("  (:" + e.src_type + ")-[" + e.type_name + ": " +
                      e.label + props_text(e.properties) + "]->(:" +
                      e.dst_type + ")");
  }
  os << Join(entries, ",\n") << "\n}";
  return os.str();
}

std::string ToUpperSnake(const std::string& name) {
  std::string out;
  for (size_t i = 0; i < name.size(); ++i) {
    char c = name[i];
    if (std::isupper(static_cast<unsigned char>(c)) && i > 0 &&
        name[i - 1] != '_' &&
        !std::isupper(static_cast<unsigned char>(name[i - 1]))) {
      out.push_back('_');
    }
    out.push_back(static_cast<char>(std::toupper(static_cast<unsigned char>(c))));
  }
  return out;
}

namespace {

class SchemaParser {
 public:
  explicit SchemaParser(std::vector<Token> tokens)
      : tokens_(std::move(tokens)) {}

  Result<PgSchema> Parse() {
    PgSchema schema;
    RAQLET_RETURN_IF_ERROR(ExpectKeyword("CREATE"));
    RAQLET_RETURN_IF_ERROR(ExpectKeyword("GRAPH"));
    RAQLET_RETURN_IF_ERROR(ExpectPunct("{"));
    while (!PeekPunct("}")) {
      RAQLET_RETURN_IF_ERROR(ParseEntry(&schema));
      if (!MatchPunct(",")) break;
    }
    RAQLET_RETURN_IF_ERROR(ExpectPunct("}"));
    // Well-formedness: node types unique, ids present, edge endpoints
    // resolve.
    for (const NodeTypeDef& n : schema.nodes) {
      if (n.PropertyIndex("id") < 0) {
        return Status::InvalidArgument("node type '" + n.type_name +
                                       "' must declare an 'id' property");
      }
    }
    for (const EdgeTypeDef& e : schema.edges) {
      if (schema.FindNodeByTypeName(e.src_type) == nullptr) {
        return Status::InvalidArgument("edge '" + e.type_name +
                                       "' references unknown node type '" +
                                       e.src_type + "'");
      }
      if (schema.FindNodeByTypeName(e.dst_type) == nullptr) {
        return Status::InvalidArgument("edge '" + e.type_name +
                                       "' references unknown node type '" +
                                       e.dst_type + "'");
      }
    }
    return schema;
  }

 private:
  const Token& Peek(int ahead = 0) const {
    size_t i = pos_ + static_cast<size_t>(ahead);
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& Advance() { return tokens_[pos_++]; }
  bool PeekPunct(const std::string& text) const {
    return Peek().kind == Token::kPunct && Peek().text == text;
  }
  bool MatchPunct(const std::string& text) {
    if (PeekPunct(text)) {
      Advance();
      return true;
    }
    return false;
  }
  Status ExpectPunct(const std::string& text) {
    if (MatchPunct(text)) return Status::OK();
    return Errorf("expected '" + text + "'");
  }
  Status ExpectKeyword(const std::string& word) {
    if (Peek().kind == Token::kIdent && ToUpper(Peek().text) == word) {
      Advance();
      return Status::OK();
    }
    return Errorf("expected keyword " + word);
  }
  Result<std::string> ExpectIdent() {
    if (Peek().kind != Token::kIdent) return Errorf("expected identifier");
    return Advance().text;
  }
  Status Errorf(const std::string& what) const {
    const Token& t = Peek();
    return Status::ParseError(what + " at line " + std::to_string(t.line) +
                              ", col " + std::to_string(t.col) + " (got '" +
                              (t.kind == Token::kEof ? "<eof>" : t.text) +
                              "')");
  }

  Result<ValueType> ParseType() {
    RAQLET_ASSIGN_OR_RETURN(std::string name, ExpectIdent());
    std::string upper = ToUpper(name);
    if (upper == "INT" || upper == "INTEGER" || upper == "LONG" ||
        upper == "NUMBER") {
      return ValueType::kNumber;
    }
    if (upper == "STRING" || upper == "TEXT" || upper == "SYMBOL" ||
        upper == "VARCHAR") {
      return ValueType::kSymbol;
    }
    if (upper == "FLOAT" || upper == "DOUBLE") return ValueType::kFloat;
    if (upper == "BOOL" || upper == "BOOLEAN") return ValueType::kBool;
    return Errorf("unknown property type '" + name + "'");
  }

  Result<std::vector<PropertyDef>> ParsePropertyBlock() {
    std::vector<PropertyDef> props;
    if (!MatchPunct("{")) return props;
    while (!PeekPunct("}")) {
      PropertyDef prop;
      RAQLET_ASSIGN_OR_RETURN(prop.name, ExpectIdent());
      RAQLET_ASSIGN_OR_RETURN(prop.type, ParseType());
      props.push_back(std::move(prop));
      if (!MatchPunct(",")) break;
    }
    RAQLET_RETURN_IF_ERROR(ExpectPunct("}"));
    return props;
  }

  Status ParseEntry(PgSchema* schema) {
    RAQLET_RETURN_IF_ERROR(ExpectPunct("("));
    if (MatchPunct(":")) {
      // Edge entry: (:srcType)-[name: Label {props}]->(:dstType)
      EdgeTypeDef edge;
      RAQLET_ASSIGN_OR_RETURN(edge.src_type, ExpectIdent());
      RAQLET_RETURN_IF_ERROR(ExpectPunct(")"));
      RAQLET_RETURN_IF_ERROR(ExpectPunct("-"));
      RAQLET_RETURN_IF_ERROR(ExpectPunct("["));
      RAQLET_ASSIGN_OR_RETURN(edge.type_name, ExpectIdent());
      RAQLET_RETURN_IF_ERROR(ExpectPunct(":"));
      RAQLET_ASSIGN_OR_RETURN(edge.label, ExpectIdent());
      RAQLET_ASSIGN_OR_RETURN(edge.properties, ParsePropertyBlock());
      RAQLET_RETURN_IF_ERROR(ExpectPunct("]"));
      RAQLET_RETURN_IF_ERROR(ExpectPunct("->"));
      RAQLET_RETURN_IF_ERROR(ExpectPunct("("));
      RAQLET_RETURN_IF_ERROR(ExpectPunct(":"));
      RAQLET_ASSIGN_OR_RETURN(edge.dst_type, ExpectIdent());
      RAQLET_RETURN_IF_ERROR(ExpectPunct(")"));
      schema->edges.push_back(std::move(edge));
      return Status::OK();
    }
    // Node entry: (typeName: Label {props})
    NodeTypeDef node;
    RAQLET_ASSIGN_OR_RETURN(node.type_name, ExpectIdent());
    RAQLET_RETURN_IF_ERROR(ExpectPunct(":"));
    RAQLET_ASSIGN_OR_RETURN(node.label, ExpectIdent());
    RAQLET_ASSIGN_OR_RETURN(node.properties, ParsePropertyBlock());
    RAQLET_RETURN_IF_ERROR(ExpectPunct(")"));
    schema->nodes.push_back(std::move(node));
    return Status::OK();
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<PgSchema> ParsePgSchema(const std::string& source) {
  LexerConfig config;
  config.multi_char_puncts = {"->"};
  config.single_puncts = "(){}[]:,-";
  RAQLET_ASSIGN_OR_RETURN(std::vector<Token> tokens,
                          Tokenize(source, config));
  SchemaParser parser(std::move(tokens));
  return parser.Parse();
}

}  // namespace raqlet::schema
