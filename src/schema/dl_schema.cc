#include "schema/dl_schema.h"

#include <sstream>

namespace raqlet::schema {

int NodeRelationInfo::PropertyColumn(const std::string& property) const {
  for (size_t i = 0; i < prop_names.size(); ++i) {
    if (prop_names[i] == property) return static_cast<int>(i);
  }
  return -1;
}

int EdgeRelationInfo::PropertyColumn(const std::string& property) const {
  for (size_t i = 0; i < prop_names.size(); ++i) {
    if (prop_names[i] == property) return static_cast<int>(2 + i);
  }
  return -1;
}

const NodeRelationInfo* DlSchema::FindNode(const std::string& label) const {
  auto it = nodes_by_label.find(label);
  return it == nodes_by_label.end() ? nullptr : &it->second;
}

const EdgeRelationInfo* DlSchema::FindEdge(const std::string& label) const {
  auto it = edges_by_label.find(ToUpperSnake(label));
  return it == edges_by_label.end() ? nullptr : &it->second;
}

std::string DlSchema::ToString() const {
  std::ostringstream os;
  for (const dlir::RelationDecl& decl : edbs) os << decl.ToString() << "\n";
  return os.str();
}

DlSchema TranslateSchema(const PgSchema& pg) {
  DlSchema dl;
  for (const NodeTypeDef& node : pg.nodes) {
    dlir::RelationDecl decl;
    decl.name = node.label;
    decl.is_input = true;

    NodeRelationInfo info;
    info.relation = node.label;

    // The id property comes first (Fig. 2b), the rest keep declared order.
    int id_index = node.PropertyIndex("id");
    auto add_prop = [&](const PropertyDef& p) {
      decl.columns.push_back(Column{p.name, p.type});
      info.prop_names.push_back(p.name);
      info.prop_types.push_back(p.type);
    };
    if (id_index >= 0) add_prop(node.properties[static_cast<size_t>(id_index)]);
    for (size_t i = 0; i < node.properties.size(); ++i) {
      if (static_cast<int>(i) == id_index) continue;
      add_prop(node.properties[i]);
    }
    decl.primary_key = {0};

    dl.edbs.push_back(std::move(decl));
    dl.nodes_by_label.emplace(node.label, std::move(info));
  }

  for (const EdgeTypeDef& edge : pg.edges) {
    const NodeTypeDef* src = pg.FindNodeByTypeName(edge.src_type);
    const NodeTypeDef* dst = pg.FindNodeByTypeName(edge.dst_type);
    if (src == nullptr || dst == nullptr) continue;  // validated by parser

    dlir::RelationDecl decl;
    decl.name = src->label + "_" + ToUpperSnake(edge.label) + "_" + dst->label;
    decl.is_input = true;
    decl.columns.push_back(Column{"id1", ValueType::kNumber});
    decl.columns.push_back(Column{"id2", ValueType::kNumber});

    EdgeRelationInfo info;
    info.relation = decl.name;
    info.src_label = src->label;
    info.dst_label = dst->label;
    for (const PropertyDef& p : edge.properties) {
      decl.columns.push_back(Column{p.name, p.type});
      info.prop_names.push_back(p.name);
      info.prop_types.push_back(p.type);
    }

    dl.edbs.push_back(std::move(decl));
    dl.edges_by_label.emplace(ToUpperSnake(edge.label), std::move(info));
  }
  return dl;
}

Status CreateEdbRelations(const DlSchema& dl, Database* db) {
  for (const dlir::RelationDecl& decl : dl.edbs) {
    if (db->HasRelation(decl.name)) continue;
    RelationSchema schema;
    schema.name = decl.name;
    schema.columns = decl.columns;
    schema.primary_key = decl.primary_key;
    RAQLET_RETURN_IF_ERROR(db->CreateRelation(std::move(schema)).status());
  }
  return Status::OK();
}

}  // namespace raqlet::schema
