#ifndef RAQLET_SCHEMA_PG_SCHEMA_H_
#define RAQLET_SCHEMA_PG_SCHEMA_H_

// Property-graph schema model in the spirit of PG-Schema [4], with the
// paper's Fig. 2a concrete syntax:
//
//   CREATE GRAPH {
//     (personType: Person {id INT, firstName STRING, locationIP STRING}),
//     (cityType: City {id INT, name STRING}),
//     (:personType)-[locationType: isLocatedIn {id INT}]->(:cityType)
//   }
//
// Every node type must declare an `id` property; it becomes the first
// column of the generated EDB (Fig. 2b: "node id is at the first position
// of the EDB").

#include <string>
#include <vector>

#include "common/status.h"
#include "common/value.h"

namespace raqlet::schema {

struct PropertyDef {
  std::string name;
  ValueType type = ValueType::kNumber;
};

struct NodeTypeDef {
  std::string type_name;  // e.g. personType
  std::string label;      // e.g. Person
  std::vector<PropertyDef> properties;

  /// Index of a property by name, or -1.
  int PropertyIndex(const std::string& property) const;
};

struct EdgeTypeDef {
  std::string type_name;   // e.g. locationType
  std::string label;       // e.g. isLocatedIn
  std::string src_type;    // node type_name of the source
  std::string dst_type;    // node type_name of the target
  std::vector<PropertyDef> properties;

  int PropertyIndex(const std::string& property) const;
};

struct PgSchema {
  std::vector<NodeTypeDef> nodes;
  std::vector<EdgeTypeDef> edges;

  const NodeTypeDef* FindNodeByLabel(const std::string& label) const;
  const NodeTypeDef* FindNodeByTypeName(const std::string& type_name) const;
  /// Matches either the declared label (`isLocatedIn`) or its upper-snake
  /// form (`IS_LOCATED_IN`) as used in Cypher relationship patterns.
  const EdgeTypeDef* FindEdgeByLabel(const std::string& label) const;

  std::string ToString() const;
};

/// Converts a camelCase/PascalCase identifier to UPPER_SNAKE
/// (isLocatedIn -> IS_LOCATED_IN). Identity on already-upper-snake names.
std::string ToUpperSnake(const std::string& name);

/// Parses the Fig. 2a `CREATE GRAPH { ... }` syntax.
Result<PgSchema> ParsePgSchema(const std::string& source);

}  // namespace raqlet::schema

#endif  // RAQLET_SCHEMA_PG_SCHEMA_H_
