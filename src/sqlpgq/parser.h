#ifndef RAQLET_SQLPGQ_PARSER_H_
#define RAQLET_SQLPGQ_PARSER_H_

// SQL/PGQ frontend (ISO/IEC 9075-16:2023, Fig. 1's planned "SQL/PGQ"
// parser). SQL/PGQ embeds GQL-style graph pattern matching in SQL via the
// GRAPH_TABLE operator; graphs are views over a tabular schema [24].
//
// Supported form:
//
//   SELECT [DISTINCT] * | col [, col ...]
//   FROM GRAPH_TABLE ( <graph name>,
//     MATCH [ANY SHORTEST] <path pattern>
//     [WHERE <predicate>]
//     COLUMNS ( <expr> AS <alias> [, ...] )
//   ) [AS <alias>]
//
// with PGQ pattern syntax: labels via IS (`(n IS Person)`), per-element
// WHERE (`(n IS Person WHERE n.id = 42)`), edge patterns
// `-[e IS knows]->`, `<-[...]-`, `-[...]-`, and quantifiers
// `->{m,n}` / `->{m,}` for variable-length paths.
//
// The parse result is the shared pattern-query AST (cypher::Query), so
// the PGIR/DLIR pipeline downstream is identical — the paper's point:
// one semantic core for all paradigms.

#include <string>

#include "common/status.h"
#include "cypher/ast.h"

namespace raqlet::sqlpgq {

/// Everything extracted from a SQL/PGQ statement.
struct PgqQuery {
  std::string graph_name;  // the GRAPH_TABLE's first argument
  cypher::Query query;     // lowered to the shared pattern AST
};

Result<PgqQuery> ParseQuery(const std::string& source);

}  // namespace raqlet::sqlpgq

#endif  // RAQLET_SQLPGQ_PARSER_H_
