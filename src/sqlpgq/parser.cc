#include "sqlpgq/parser.h"

#include <optional>

#include "common/lexer.h"
#include "common/str_util.h"
#include "cypher/parser.h"

namespace raqlet::sqlpgq {

namespace {

using cypher::EdgeDirection;
using cypher::EdgePattern;
using cypher::Expr;
using cypher::MatchClause;
using cypher::NodePattern;
using cypher::PathPattern;
using cypher::ReturnClause;
using cypher::ReturnItem;

bool IsKeyword(const Token& t, const std::string& upper) {
  return t.kind == Token::kIdent && ToUpper(t.text) == upper;
}

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<PgqQuery> Parse() {
    PgqQuery out;
    RAQLET_RETURN_IF_ERROR(ExpectKeyword("SELECT"));
    bool distinct = MatchKeyword("DISTINCT");

    // Outer projection: '*' or a list of column names.
    std::vector<std::string> outer_columns;
    bool star = MatchPunct("*");
    if (!star) {
      while (true) {
        RAQLET_ASSIGN_OR_RETURN(std::string name, ExpectIdent());
        outer_columns.push_back(std::move(name));
        if (!MatchPunct(",")) break;
      }
    }

    RAQLET_RETURN_IF_ERROR(ExpectKeyword("FROM"));
    RAQLET_RETURN_IF_ERROR(ExpectKeyword("GRAPH_TABLE"));
    RAQLET_RETURN_IF_ERROR(ExpectPunct("("));
    RAQLET_ASSIGN_OR_RETURN(out.graph_name, ExpectIdent());
    RAQLET_RETURN_IF_ERROR(ExpectPunct(","));

    RAQLET_RETURN_IF_ERROR(ExpectKeyword("MATCH"));
    bool shortest = false;
    if (MatchKeyword("ANY")) {
      RAQLET_RETURN_IF_ERROR(ExpectKeyword("SHORTEST"));
      shortest = true;
    }
    MatchClause match;
    while (true) {
      RAQLET_ASSIGN_OR_RETURN(PathPattern path, ParsePathPattern());
      path.shortest = shortest;
      match.patterns.push_back(std::move(path));
      if (!MatchPunct(",")) break;
    }
    // Per-element WHEREs gathered during pattern parsing + the global one.
    if (MatchKeyword("WHERE")) {
      RAQLET_ASSIGN_OR_RETURN(Expr where, ParseExprText());
      element_filters_.push_back(std::move(where));
    }
    if (!element_filters_.empty()) {
      Expr combined = element_filters_[0];
      for (size_t i = 1; i < element_filters_.size(); ++i) {
        combined = Expr::Binary(cypher::BinOp::kAnd, std::move(combined),
                                element_filters_[i]);
      }
      match.where = std::move(combined);
    }

    RAQLET_RETURN_IF_ERROR(ExpectKeyword("COLUMNS"));
    RAQLET_RETURN_IF_ERROR(ExpectPunct("("));
    ReturnClause ret;
    ret.distinct = distinct;
    std::vector<ReturnItem> columns;
    while (true) {
      ReturnItem item;
      RAQLET_ASSIGN_OR_RETURN(item.expr, ParseExprText());
      RAQLET_RETURN_IF_ERROR(ExpectKeyword("AS"));
      RAQLET_ASSIGN_OR_RETURN(item.alias, ExpectIdent());
      columns.push_back(std::move(item));
      if (!MatchPunct(",")) break;
    }
    RAQLET_RETURN_IF_ERROR(ExpectPunct(")"));
    RAQLET_RETURN_IF_ERROR(ExpectPunct(")"));
    if (MatchKeyword("AS")) {
      RAQLET_RETURN_IF_ERROR(ExpectIdent().status());
    }

    // Outer projection selects from the COLUMNS aliases.
    if (star) {
      ret.items = std::move(columns);
    } else {
      for (const std::string& name : outer_columns) {
        const ReturnItem* found = nullptr;
        for (const ReturnItem& item : columns) {
          if (item.alias == name) found = &item;
        }
        if (found == nullptr) {
          return Status::InvalidArgument(
              "outer SELECT references '" + name +
              "', which is not among the GRAPH_TABLE COLUMNS");
        }
        ret.items.push_back(*found);
      }
    }

    out.query.clauses.push_back(std::move(match));
    out.query.clauses.push_back(std::move(ret));
    return out;
  }

 private:
  const Token& Peek(int ahead = 0) const {
    size_t i = pos_ + static_cast<size_t>(ahead);
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& Advance() { return tokens_[pos_++]; }
  bool PeekPunct(const std::string& text, int ahead = 0) const {
    return Peek(ahead).kind == Token::kPunct && Peek(ahead).text == text;
  }
  bool MatchPunct(const std::string& text) {
    if (PeekPunct(text)) {
      Advance();
      return true;
    }
    return false;
  }
  Status ExpectPunct(const std::string& text) {
    if (MatchPunct(text)) return Status::OK();
    return Errorf("expected '" + text + "'");
  }
  bool MatchKeyword(const std::string& upper) {
    if (IsKeyword(Peek(), upper)) {
      Advance();
      return true;
    }
    return false;
  }
  Status ExpectKeyword(const std::string& upper) {
    if (MatchKeyword(upper)) return Status::OK();
    return Errorf("expected " + upper);
  }
  Result<std::string> ExpectIdent() {
    if (Peek().kind != Token::kIdent) return Errorf("expected identifier");
    return Advance().text;
  }
  Status Errorf(const std::string& what) const {
    const Token& t = Peek();
    return Status::ParseError(what + " at line " + std::to_string(t.line) +
                              ", col " + std::to_string(t.col) + " (got '" +
                              (t.kind == Token::kEof ? "<eof>" : t.text) +
                              "')");
  }

  // Scalar expressions share Cypher's grammar. We re-lex the token span
  // through the Cypher expression parser by collecting the raw text of a
  // balanced expression; to keep this simple and robust we instead parse
  // with a tiny precedence parser over the same tokens (comparisons,
  // AND/OR, property access, literals).
  Result<Expr> ParseExprText() { return ParseOr(); }

  Result<Expr> ParseOr() {
    RAQLET_ASSIGN_OR_RETURN(Expr lhs, ParseAnd());
    while (MatchKeyword("OR")) {
      RAQLET_ASSIGN_OR_RETURN(Expr rhs, ParseAnd());
      lhs = Expr::Binary(cypher::BinOp::kOr, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<Expr> ParseAnd() {
    RAQLET_ASSIGN_OR_RETURN(Expr lhs, ParseNot());
    while (MatchKeyword("AND")) {
      RAQLET_ASSIGN_OR_RETURN(Expr rhs, ParseNot());
      lhs = Expr::Binary(cypher::BinOp::kAnd, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<Expr> ParseNot() {
    if (MatchKeyword("NOT")) {
      RAQLET_ASSIGN_OR_RETURN(Expr inner, ParseNot());
      return Expr::Unary(cypher::UnOp::kNot, std::move(inner));
    }
    return ParseComparison();
  }

  Result<Expr> ParseComparison() {
    RAQLET_ASSIGN_OR_RETURN(Expr lhs, ParseAdditive());
    std::optional<cypher::BinOp> op;
    if (MatchPunct("=")) {
      op = cypher::BinOp::kEq;
    } else if (MatchPunct("<>")) {
      op = cypher::BinOp::kNe;
    } else if (MatchPunct("<=")) {
      op = cypher::BinOp::kLe;
    } else if (MatchPunct(">=")) {
      op = cypher::BinOp::kGe;
    } else if (MatchPunct("<")) {
      op = cypher::BinOp::kLt;
    } else if (MatchPunct(">")) {
      op = cypher::BinOp::kGt;
    }
    if (!op.has_value()) return lhs;
    RAQLET_ASSIGN_OR_RETURN(Expr rhs, ParseAdditive());
    return Expr::Binary(*op, std::move(lhs), std::move(rhs));
  }

  Result<Expr> ParseAdditive() {
    RAQLET_ASSIGN_OR_RETURN(Expr lhs, ParseMultiplicative());
    while (PeekPunct("+") || PeekPunct("-")) {
      cypher::BinOp op =
          Peek().text == "+" ? cypher::BinOp::kAdd : cypher::BinOp::kSub;
      Advance();
      RAQLET_ASSIGN_OR_RETURN(Expr rhs, ParseMultiplicative());
      lhs = Expr::Binary(op, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<Expr> ParseMultiplicative() {
    RAQLET_ASSIGN_OR_RETURN(Expr lhs, ParsePrimary());
    while (PeekPunct("*") || PeekPunct("/") || PeekPunct("%")) {
      cypher::BinOp op = Peek().text == "*"   ? cypher::BinOp::kMul
                         : Peek().text == "/" ? cypher::BinOp::kDiv
                                              : cypher::BinOp::kMod;
      Advance();
      RAQLET_ASSIGN_OR_RETURN(Expr rhs, ParsePrimary());
      lhs = Expr::Binary(op, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<Expr> ParsePrimary() {
    const Token& t = Peek();
    if (t.kind == Token::kNumber) {
      Advance();
      return Expr::Number(std::stoll(t.text));
    }
    if (t.kind == Token::kFloat) {
      Advance();
      return Expr::Literal(dlir::Constant::Float(std::stod(t.text)));
    }
    if (t.kind == Token::kString) {
      Advance();
      return Expr::Str(t.text);
    }
    if (t.kind == Token::kPunct && t.text == "(") {
      Advance();
      RAQLET_ASSIGN_OR_RETURN(Expr inner, ParseExprText());
      RAQLET_RETURN_IF_ERROR(ExpectPunct(")"));
      return inner;
    }
    if (t.kind == Token::kPunct && t.text == "$") {
      Advance();
      RAQLET_ASSIGN_OR_RETURN(std::string name, ExpectIdent());
      return Expr::Parameter(std::move(name));
    }
    if (t.kind == Token::kIdent) {
      std::string name = Advance().text;
      std::string upper = ToUpper(name);
      if (upper == "TRUE") return Expr::Literal(dlir::Constant::Bool(true));
      if (upper == "FALSE") return Expr::Literal(dlir::Constant::Bool(false));
      if (MatchPunct("(")) {
        Expr call = Expr::Call(name, {});
        if (MatchPunct("*")) {
          call.star_arg = true;
        } else if (!PeekPunct(")")) {
          while (true) {
            RAQLET_ASSIGN_OR_RETURN(Expr arg, ParseExprText());
            call.children.push_back(std::move(arg));
            if (!MatchPunct(",")) break;
          }
        }
        RAQLET_RETURN_IF_ERROR(ExpectPunct(")"));
        return call;
      }
      if (MatchPunct(".")) {
        RAQLET_ASSIGN_OR_RETURN(std::string prop, ExpectIdent());
        return Expr::Property(std::move(name), std::move(prop));
      }
      return Expr::Variable(std::move(name));
    }
    return Errorf("expected expression");
  }

  // ---- PGQ patterns ----

  Result<NodePattern> ParseNodePattern() {
    RAQLET_RETURN_IF_ERROR(ExpectPunct("("));
    NodePattern node;
    if (Peek().kind == Token::kIdent && !IsKeyword(Peek(), "IS")) {
      node.var = Advance().text;
    }
    if (MatchKeyword("IS") || MatchPunct(":")) {
      RAQLET_ASSIGN_OR_RETURN(node.label, ExpectIdent());
    }
    if (MatchKeyword("WHERE")) {
      RAQLET_ASSIGN_OR_RETURN(Expr filter, ParseExprText());
      element_filters_.push_back(std::move(filter));
    }
    RAQLET_RETURN_IF_ERROR(ExpectPunct(")"));
    return node;
  }

  Result<EdgePattern> ParseEdgePattern() {
    EdgePattern edge;
    bool from_left = MatchPunct("<-");
    if (!from_left) RAQLET_RETURN_IF_ERROR(ExpectPunct("-"));
    if (MatchPunct("[")) {
      if (Peek().kind == Token::kIdent && !IsKeyword(Peek(), "IS")) {
        edge.var = Advance().text;
      }
      if (MatchKeyword("IS") || MatchPunct(":")) {
        RAQLET_ASSIGN_OR_RETURN(edge.type, ExpectIdent());
      }
      if (MatchKeyword("WHERE")) {
        RAQLET_ASSIGN_OR_RETURN(Expr filter, ParseExprText());
        element_filters_.push_back(std::move(filter));
      }
      RAQLET_RETURN_IF_ERROR(ExpectPunct("]"));
    }
    bool to_right = MatchPunct("->");
    if (!to_right) RAQLET_RETURN_IF_ERROR(ExpectPunct("-"));
    if (from_left && to_right) return Errorf("edge cannot point both ways");
    if (from_left) {
      edge.direction = EdgeDirection::kIncoming;
    } else if (to_right) {
      edge.direction = EdgeDirection::kOutgoing;
    } else {
      edge.direction = EdgeDirection::kUndirected;
    }
    // Quantifier: {m,n} / {m,} after the arrow.
    if (MatchPunct("{")) {
      edge.variable_length = true;
      if (Peek().kind != Token::kNumber) return Errorf("expected number");
      edge.min_hops = static_cast<int>(std::stoll(Advance().text));
      edge.max_hops = EdgePattern::kUnboundedHops;
      if (MatchPunct(",")) {
        if (Peek().kind == Token::kNumber) {
          edge.max_hops = static_cast<int>(std::stoll(Advance().text));
        }
      } else {
        edge.max_hops = edge.min_hops;  // {n} = exactly n
      }
      RAQLET_RETURN_IF_ERROR(ExpectPunct("}"));
    }
    return edge;
  }

  Result<PathPattern> ParsePathPattern() {
    PathPattern path;
    RAQLET_ASSIGN_OR_RETURN(path.start, ParseNodePattern());
    while (PeekPunct("-") || PeekPunct("<-")) {
      RAQLET_ASSIGN_OR_RETURN(EdgePattern edge, ParseEdgePattern());
      RAQLET_ASSIGN_OR_RETURN(NodePattern node, ParseNodePattern());
      path.steps.emplace_back(std::move(edge), std::move(node));
    }
    return path;
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  std::vector<Expr> element_filters_;
};

}  // namespace

Result<PgqQuery> ParseQuery(const std::string& source) {
  LexerConfig config;
  config.multi_char_puncts = {"<-", "->", "<=", ">=", "<>"};
  config.single_puncts = "()[]{},.:*=<>+-/%$";
  config.dash_comments = false;
  RAQLET_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(source, config));
  Parser parser(std::move(tokens));
  return parser.Parse();
}

}  // namespace raqlet::sqlpgq
