#include "storage/csv.h"

#include <fstream>
#include <sstream>

#include "common/str_util.h"

namespace raqlet {

namespace {

Result<Value> ParseField(Database* db, const std::string& field,
                         ValueType type) {
  switch (type) {
    case ValueType::kNumber: {
      errno = 0;
      char* end = nullptr;
      long long v = std::strtoll(field.c_str(), &end, 10);
      if (end == field.c_str() || *end != '\0') {
        return Status::ParseError("not a number: '" + field + "'");
      }
      return Value::Number(static_cast<int64_t>(v));
    }
    case ValueType::kFloat: {
      char* end = nullptr;
      double v = std::strtod(field.c_str(), &end);
      if (end == field.c_str() || *end != '\0') {
        return Status::ParseError("not a float: '" + field + "'");
      }
      return Value::Float(v);
    }
    case ValueType::kSymbol:
      return db->Str(field);
    case ValueType::kBool:
      return Value::Bool(field == "true" || field == "1");
    case ValueType::kNull:
      return Value::Null();
  }
  return Status::Internal("unhandled value type");
}

}  // namespace

Status LoadDelimitedText(Database* db, Relation* relation,
                         const std::string& text, char delimiter) {
  std::istringstream in(text);
  std::string line;
  size_t line_no = 0;
  // Parse everything first, then hand the whole load to InsertBatch: one
  // reservation and one index fold instead of per-row dedup rehashes.
  std::vector<Tuple> batch;
  while (std::getline(in, line)) {
    ++line_no;
    if (Trim(line).empty()) continue;
    std::vector<std::string> fields = Split(line, delimiter);
    if (fields.size() != relation->arity()) {
      return Status::ParseError(
          relation->name() + " line " + std::to_string(line_no) + ": expected " +
          std::to_string(relation->arity()) + " fields, got " +
          std::to_string(fields.size()));
    }
    Tuple row;
    row.reserve(fields.size());
    size_t char_col = 1;  // 1-based character column of the current field
    for (size_t i = 0; i < fields.size(); ++i) {
      Result<Value> v =
          ParseField(db, fields[i], relation->schema().columns[i].type);
      if (!v.ok()) {
        return Status::ParseError(
            relation->name() + " line " + std::to_string(line_no) +
            ", column " + std::to_string(char_col) + " (field " +
            std::to_string(i + 1) + "): " + v.status().message());
      }
      row.push_back(*v);
      char_col += fields[i].size() + 1;  // skip the field and its delimiter
    }
    batch.push_back(std::move(row));
  }
  RAQLET_RETURN_IF_ERROR(relation->InsertBatch(std::move(batch)).status());
  return Status::OK();
}

Status LoadDelimitedFile(Database* db, Relation* relation,
                         const std::string& path, char delimiter) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open facts file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return LoadDelimitedText(db, relation, buffer.str(), delimiter);
}

std::string DumpDelimitedText(const Database& db, const Relation& relation,
                              char delimiter) {
  std::ostringstream os;
  for (const Tuple& row : relation.rows()) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) os << delimiter;
      const Value& v = row[i];
      if (v.kind() == ValueType::kSymbol) {
        os << db.symbols().Resolve(v.AsSymbol());
      } else {
        os << v.ToString();
      }
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace raqlet
