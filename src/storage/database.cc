#include "storage/database.h"

#include <unordered_set>

namespace raqlet {

Result<Relation*> Database::CreateRelation(RelationSchema schema) {
  const std::string name = schema.name;
  if (relations_.count(name) > 0) {
    return Status::AlreadyExists("relation already exists: " + name);
  }
  auto relation = std::make_unique<Relation>(std::move(schema));
  Relation* out = relation.get();
  relations_.emplace(name, std::move(relation));
  creation_order_.push_back(name);
  return out;
}

Result<Relation*> Database::GetRelation(const std::string& name) {
  auto it = relations_.find(name);
  if (it == relations_.end()) {
    return Status::NotFound("no such relation: " + name);
  }
  return it->second.get();
}

Result<const Relation*> Database::GetRelation(const std::string& name) const {
  auto it = relations_.find(name);
  if (it == relations_.end()) {
    return Status::NotFound("no such relation: " + name);
  }
  return static_cast<const Relation*>(it->second.get());
}

std::vector<std::string> Database::RelationNames() const {
  return creation_order_;
}

size_t Database::TotalTuples() const {
  size_t total = 0;
  for (const auto& [name, rel] : relations_) total += rel->size();
  return total;
}

Result<AppliedDelta> Database::ApplyDelta(const DeltaBatch& batch) {
  AppliedDelta out;
  for (const RelationDelta& rd : batch.relations) {
    Relation* rel;
    RAQLET_ASSIGN_OR_RETURN(rel, GetRelation(rd.relation));
    const size_t arity = rel->arity();
    for (const std::vector<Tuple>* list : {&rd.adds, &rd.removes}) {
      for (const Tuple& t : *list) {
        if (t.size() != arity) {
          return Status::InvalidArgument(
              "delta tuple arity " + std::to_string(t.size()) +
              " does not match relation '" + rd.relation + "' arity " +
              std::to_string(arity));
        }
      }
    }
    AppliedRelationDelta applied;
    applied.relation = rd.relation;
    // A tuple both removed and re-added is a net no-op when present (and
    // a plain insert when absent) — never route it through EraseBatch.
    std::unordered_set<Tuple, TupleHash> add_set(rd.adds.begin(),
                                                 rd.adds.end());
    std::unordered_set<Tuple, TupleHash> seen;
    for (const Tuple& t : rd.removes) {
      if (add_set.count(t) > 0 || !rel->Contains(t)) continue;
      if (!seen.insert(t).second) continue;
      applied.removed.push_back(t);
    }
    size_t erased;
    RAQLET_ASSIGN_OR_RETURN(erased, rel->EraseBatch(applied.removed));
    (void)erased;
    for (const Tuple& t : rd.adds) {
      bool fresh;
      RAQLET_ASSIGN_OR_RETURN(fresh, rel->Insert(t));
      if (fresh) applied.added.push_back(t);
    }
    out.total_added += applied.added.size();
    out.total_removed += applied.removed.size();
    if (!applied.added.empty() || !applied.removed.empty()) {
      out.relations.push_back(std::move(applied));
    }
  }
  return out;
}

}  // namespace raqlet
