#include "storage/database.h"

namespace raqlet {

Result<Relation*> Database::CreateRelation(RelationSchema schema) {
  const std::string name = schema.name;
  if (relations_.count(name) > 0) {
    return Status::AlreadyExists("relation already exists: " + name);
  }
  auto relation = std::make_unique<Relation>(std::move(schema));
  Relation* out = relation.get();
  relations_.emplace(name, std::move(relation));
  creation_order_.push_back(name);
  return out;
}

Result<Relation*> Database::GetRelation(const std::string& name) {
  auto it = relations_.find(name);
  if (it == relations_.end()) {
    return Status::NotFound("no such relation: " + name);
  }
  return it->second.get();
}

Result<const Relation*> Database::GetRelation(const std::string& name) const {
  auto it = relations_.find(name);
  if (it == relations_.end()) {
    return Status::NotFound("no such relation: " + name);
  }
  return static_cast<const Relation*>(it->second.get());
}

std::vector<std::string> Database::RelationNames() const {
  return creation_order_;
}

size_t Database::TotalTuples() const {
  size_t total = 0;
  for (const auto& [name, rel] : relations_) total += rel->size();
  return total;
}

}  // namespace raqlet
