#ifndef RAQLET_STORAGE_DATABASE_H_
#define RAQLET_STORAGE_DATABASE_H_

// A Database owns the extensional relations (EDBs) plus the symbol table
// used to intern every string value inside them. All engines execute
// against a Database and produce Relations using its symbol table.

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/value.h"
#include "storage/relation.h"

namespace raqlet {

class Database {
 public:
  Database() = default;

  // Databases are heavyweight; move-only to avoid silent deep copies.
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;
  Database(Database&&) = default;
  Database& operator=(Database&&) = default;

  /// Creates an empty relation. Fails with AlreadyExists on name clash.
  Result<Relation*> CreateRelation(RelationSchema schema);

  /// Returns the relation or NotFound.
  Result<Relation*> GetRelation(const std::string& name);
  Result<const Relation*> GetRelation(const std::string& name) const;

  bool HasRelation(const std::string& name) const {
    return relations_.count(name) > 0;
  }

  /// Relation names in creation order.
  std::vector<std::string> RelationNames() const;

  SymbolTable& symbols() { return symbols_; }
  const SymbolTable& symbols() const { return symbols_; }

  /// Convenience: interns `text` and wraps it as a symbol Value.
  Value Str(const std::string& text) { return Value::Symbol(symbols_.Intern(text)); }

  /// Total number of stored tuples across all relations.
  size_t TotalTuples() const;

 private:
  SymbolTable symbols_;
  std::map<std::string, std::unique_ptr<Relation>> relations_;
  std::vector<std::string> creation_order_;
};

}  // namespace raqlet

#endif  // RAQLET_STORAGE_DATABASE_H_
