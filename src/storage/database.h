#ifndef RAQLET_STORAGE_DATABASE_H_
#define RAQLET_STORAGE_DATABASE_H_

// A Database owns the extensional relations (EDBs) plus the symbol table
// used to intern every string value inside them. All engines execute
// against a Database and produce Relations using its symbol table.

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/value.h"
#include "storage/relation.h"

namespace raqlet {

/// One relation's requested +/− base-fact changes within a DeltaBatch.
/// Semantics are "final = (R ∖ removes) ∪ adds": a tuple listed in both
/// removes and adds that is already present stays present and is NOT
/// counted as a change; duplicates within either list apply once.
struct RelationDelta {
  std::string relation;
  std::vector<Tuple> adds;
  std::vector<Tuple> removes;
};

/// A batch of base-fact changes across relations. Entries are applied in
/// batch order; a relation may appear more than once (later entries see
/// the effects of earlier ones).
struct DeltaBatch {
  std::vector<RelationDelta> relations;

  bool empty() const {
    for (const RelationDelta& rd : relations) {
      if (!rd.adds.empty() || !rd.removes.empty()) return false;
    }
    return true;
  }
};

/// The effective (net) change ApplyDelta made to one relation: `added`
/// tuples are now present and were absent before, `removed` tuples were
/// present and are now absent. Requested no-ops (inserting a present
/// tuple, removing an absent one) do not appear.
struct AppliedRelationDelta {
  std::string relation;
  std::vector<Tuple> added;
  std::vector<Tuple> removed;
};

struct AppliedDelta {
  /// Per-relation net changes in batch order; relations whose net change
  /// is empty are omitted.
  std::vector<AppliedRelationDelta> relations;
  size_t total_added = 0;
  size_t total_removed = 0;
};

class Database {
 public:
  Database() = default;

  // Databases are heavyweight; move-only to avoid silent deep copies.
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;
  Database(Database&&) = default;
  Database& operator=(Database&&) = default;

  /// Creates an empty relation. Fails with AlreadyExists on name clash.
  Result<Relation*> CreateRelation(RelationSchema schema);

  /// Returns the relation or NotFound.
  Result<Relation*> GetRelation(const std::string& name);
  Result<const Relation*> GetRelation(const std::string& name) const;

  bool HasRelation(const std::string& name) const {
    return relations_.count(name) > 0;
  }

  /// Relation names in creation order.
  std::vector<std::string> RelationNames() const;

  SymbolTable& symbols() { return symbols_; }
  const SymbolTable& symbols() const { return symbols_; }

  /// Convenience: interns `text` and wraps it as a symbol Value.
  Value Str(const std::string& text) { return Value::Symbol(symbols_.Intern(text)); }

  /// Total number of stored tuples across all relations.
  size_t TotalTuples() const;

  /// Applies a batch of +/− base-fact changes: per relation, removals
  /// first (tombstone-aware EraseBatch), then insertions, with the
  /// removes∩adds overlap of already-present tuples left physically
  /// untouched. Returns the net per-relation change actually made (the
  /// delta an incremental evaluator must propagate). Fails with NotFound
  /// for an unknown relation and InvalidArgument on an arity mismatch;
  /// on failure, entries earlier in the batch remain applied.
  Result<AppliedDelta> ApplyDelta(const DeltaBatch& batch);

 private:
  SymbolTable symbols_;
  std::map<std::string, std::unique_ptr<Relation>> relations_;
  std::vector<std::string> creation_order_;
};

}  // namespace raqlet

#endif  // RAQLET_STORAGE_DATABASE_H_
