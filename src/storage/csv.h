#ifndef RAQLET_STORAGE_CSV_H_
#define RAQLET_STORAGE_CSV_H_

// Minimal delimited-text load/store for EDB relations (Soufflé-style
// facts files: one tuple per line, tab-separated by default).

#include <string>

#include "common/status.h"
#include "storage/database.h"

namespace raqlet {

/// Parses `text` into tuples following `relation`'s schema types and
/// inserts them. Strings are interned into `db`'s symbol table.
Status LoadDelimitedText(Database* db, Relation* relation,
                         const std::string& text, char delimiter = '\t');

/// Reads a facts file from disk and loads it into `relation`.
Status LoadDelimitedFile(Database* db, Relation* relation,
                         const std::string& path, char delimiter = '\t');

/// Renders `relation` as delimited text, one tuple per line, in insertion
/// order. Symbols are resolved through `db`'s table.
std::string DumpDelimitedText(const Database& db, const Relation& relation,
                              char delimiter = '\t');

}  // namespace raqlet

#endif  // RAQLET_STORAGE_CSV_H_
