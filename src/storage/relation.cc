#include "storage/relation.h"

#include <algorithm>
#include <sstream>

#include "common/str_util.h"
#include "runtime/failpoint.h"

namespace raqlet {

namespace {

constexpr uint64_t kGolden = 0x9e3779b97f4a7c15ULL;

// Finalizer spreading TupleHash output across slot indices: the table
// indexes with the low bits, so fold the high bits down first.
inline uint32_t MixHash(size_t h) {
  uint64_t x = static_cast<uint64_t>(h) * kGolden;
  return static_cast<uint32_t>(x ^ (x >> 32));
}

// TupleHash for an arity-2 all-kNumber row given the raw payload words —
// bit-identical to TupleHash{}({Number(a), Number(b)}). Value::Hash for a
// kNumber is bits + kGolden (the kind term is zero).
inline size_t PairNumericHash(int64_t a, int64_t b) {
  size_t h = 2;
  h ^= (static_cast<uint64_t>(a) + kGolden) + kGolden + (h << 6) + (h >> 2);
  h ^= (static_cast<uint64_t>(b) + kGolden) + kGolden + (h << 6) + (h >> 2);
  return h;
}

inline bool AllNumbers(const std::vector<Value>& vals) {
  for (const Value& v : vals) {
    if (v.kind() != ValueType::kNumber) return false;
  }
  return true;
}

}  // namespace

int RelationSchema::ColumnIndex(const std::string& column_name) const {
  for (size_t i = 0; i < columns.size(); ++i) {
    if (columns[i].name == column_name) return static_cast<int>(i);
  }
  return -1;
}

std::string RelationSchema::ToString() const {
  std::vector<std::string> cols;
  cols.reserve(columns.size());
  for (const Column& c : columns) {
    cols.push_back(c.name + ": " + ValueTypeToString(c.type));
  }
  return name + "(" + Join(cols, ", ") + ")";
}

Status Relation::CheckRoom(size_t extra) const {
  if (row_count_ + extra <= row_limit_) return Status::OK();
  return Status::Internal(
      "relation '" + schema_.name + "' would exceed " +
      std::to_string(row_limit_) +
      " rows (32-bit row-index ceiling): " + std::to_string(row_count_) +
      " stored + batch of " + std::to_string(extra));
}

void Relation::DedupReserve(size_t want) {
  // Max load factor 1/2: at 7/8 the expected linear-probe chain for a miss
  // (every genuinely-new tuple) is ~32 slot touches; at 1/2 it is ~2.5. A
  // slot is 8 bytes, so even the doubled table stays far smaller than the
  // column storage it guards.
  size_t capacity = dedup_slots_.size();
  if (capacity >= 16 && want * 2 <= capacity) return;
  size_t new_capacity = capacity == 0 ? 16 : capacity;
  while (want * 2 > new_capacity) new_capacity *= 2;
  std::vector<DedupSlot> old = std::move(dedup_slots_);
  dedup_slots_.assign(new_capacity, DedupSlot{});
  size_t mask = new_capacity - 1;
  for (const DedupSlot& slot : old) {
    if (slot.row == kEmptySlot) continue;
    size_t pos = slot.hash & mask;
    while (dedup_slots_[pos].row != kEmptySlot) pos = (pos + 1) & mask;
    dedup_slots_[pos] = slot;
  }
}

void Relation::PrepareColumns(size_t arity, size_t want) {
  if (columns_.size() < arity) columns_.resize(arity);
  // One reservation for the whole batch; doubling (rather than
  // reserve(size + k) per batch) keeps growth geometric across rounds.
  for (ValueColumn& c : columns_) {
    if (want > c.capacity()) c.Reserve(std::max(want, c.capacity() * 2));
  }
}

void Relation::AppendRow(const Tuple& t) {
  for (size_t c = 0; c < t.size(); ++c) columns_[c].Append(t[c]);
}

bool Relation::Contains(const Tuple& t) const {
  if (dedup_slots_.empty()) return false;
  auto cand = [&t](size_t c) -> const Value& { return t[c]; };
  return DedupProbe(t.size(), cand, MixHash(TupleHash{}(t)), nullptr) !=
         kEmptySlot;
}

Result<bool> Relation::Insert(Tuple t) {
  RAQLET_RETURN_IF_ERROR(CheckRoom(1));
  PrepareColumns(t.size(), row_count_ + 1);
  DedupReserve(row_count_ + 1);
  uint32_t h32 = MixHash(TupleHash{}(t));
  size_t slot;
  auto cand = [&t](size_t c) -> const Value& { return t[c]; };
  if (DedupProbe(t.size(), cand, h32, &slot) != kEmptySlot) return false;
  AppendRow(t);
  dedup_slots_[slot] = DedupSlot{h32, static_cast<uint32_t>(row_count_)};
  ++row_count_;
  return true;
}

Result<size_t> Relation::InsertBatch(std::vector<Tuple> batch) {
  return InsertBatchInPlace(&batch);
}

Result<size_t> Relation::InsertBatchInPlace(std::vector<Tuple>* batch) {
  if (batch->empty()) return static_cast<size_t>(0);
  RAQLET_FAILPOINT("storage.insert_batch");
  RAQLET_RETURN_IF_ERROR(CheckRoom(batch->size()));
  size_t want = row_count_ + batch->size();
  PrepareColumns((*batch)[0].size(), want);
  DedupReserve(want);
  size_t inserted = 0;
  for (const Tuple& t : *batch) {
    uint32_t h32 = MixHash(TupleHash{}(t));
    size_t slot;
    auto cand = [&t](size_t c) -> const Value& { return t[c]; };
    if (DedupProbe(t.size(), cand, h32, &slot) != kEmptySlot) continue;
    AppendRow(t);
    dedup_slots_[slot] = DedupSlot{h32, static_cast<uint32_t>(row_count_)};
    ++row_count_;
    ++inserted;
  }
  batch->clear();  // capacity retained for staging-buffer reuse
  FoldAllIndexes();
  return inserted;
}

Result<size_t> Relation::InsertColumns(std::vector<std::vector<Value>>* cols) {
  const size_t batch_arity = cols->size();
  const size_t n = batch_arity == 0 ? 0 : (*cols)[0].size();
  if (n == 0) return static_cast<size_t>(0);
  RAQLET_FAILPOINT("storage.insert_columns");
  RAQLET_RETURN_IF_ERROR(CheckRoom(n));
  size_t want = row_count_ + n;
  PrepareColumns(batch_arity, want);
  DedupReserve(want);
  size_t inserted;
  if (batch_arity == 2 && columns_[0].uniform() && columns_[1].uniform() &&
      (row_count_ == 0 ||
       (columns_[0].uniform_kind() == ValueType::kNumber &&
        columns_[1].uniform_kind() == ValueType::kNumber)) &&
      AllNumbers((*cols)[0]) && AllNumbers((*cols)[1])) {
    inserted = InsertPairNumeric((*cols)[0], (*cols)[1]);
  } else {
    inserted = 0;
    for (size_t i = 0; i < n; ++i) {
      size_t h = batch_arity;
      for (size_t c = 0; c < batch_arity; ++c) {
        h ^= (*cols)[c][i].Hash() + kGolden + (h << 6) + (h >> 2);
      }
      uint32_t h32 = MixHash(h);
      size_t slot;
      auto cand = [cols, i](size_t c) -> const Value& { return (*cols)[c][i]; };
      if (DedupProbe(batch_arity, cand, h32, &slot) != kEmptySlot) continue;
      for (size_t c = 0; c < batch_arity; ++c) {
        columns_[c].Append((*cols)[c][i]);
      }
      dedup_slots_[slot] = DedupSlot{h32, static_cast<uint32_t>(row_count_)};
      ++row_count_;
      ++inserted;
    }
  }
  for (std::vector<Value>& col : *cols) col.clear();  // capacity retained
  FoldAllIndexes();
  return inserted;
}

size_t Relation::InsertPairNumeric(const std::vector<Value>& c0,
                                   const std::vector<Value>& c1) {
  const size_t n = c0.size();
  ValueColumn& col0 = columns_[0];
  ValueColumn& col1 = columns_[1];
  // PrepareColumns reserved the whole batch, so these stay valid across
  // appends.
  const int64_t* s0 = col0.word_data();
  const int64_t* s1 = col1.word_data();
  const size_t mask = dedup_slots_.size() - 1;
  size_t inserted = 0;
  for (size_t i = 0; i < n; ++i) {
    const int64_t a = c0[i].RawBits();
    const int64_t b = c1[i].RawBits();
    const uint32_t h32 = MixHash(PairNumericHash(a, b));
    size_t pos = h32 & mask;
    bool duplicate = false;
    while (true) {
      const DedupSlot& slot = dedup_slots_[pos];
      if (slot.row == kEmptySlot) break;
      if (slot.hash == h32 && s0[slot.row] == a && s1[slot.row] == b) {
        duplicate = true;
        break;
      }
      pos = (pos + 1) & mask;
    }
    if (duplicate) continue;
    col0.AppendUniform(ValueType::kNumber, a);
    col1.AppendUniform(ValueType::kNumber, b);
    dedup_slots_[pos] = DedupSlot{h32, static_cast<uint32_t>(row_count_)};
    ++row_count_;
    ++inserted;
  }
  return inserted;
}

Result<size_t> Relation::EraseBatch(const std::vector<Tuple>& batch) {
  if (batch.empty() || row_count_ == 0) return static_cast<size_t>(0);
  RAQLET_FAILPOINT("storage.erase_batch");
  // Phase 1: probe and tombstone. A tombstoned slot keeps its position in
  // the table so linear-probe chains running through it stay intact —
  // later candidates of the same batch whose chains pass the erased slot
  // still find their rows. The shared DedupProbe stops at the first empty
  // slot and compares against live rows only, so this phase runs its own
  // probe loop that skips (rather than stops at) tombstones.
  static constexpr uint32_t kTombstone = kEmptySlot - 1;
  const size_t mask = dedup_slots_.size() - 1;
  std::vector<uint32_t> dead_rows;
  for (const Tuple& t : batch) {
    if (t.size() != columns_.size()) continue;  // wrong arity: never present
    const uint32_t h32 = MixHash(TupleHash{}(t));
    auto cand = [&t](size_t c) -> const Value& { return t[c]; };
    size_t pos = h32 & mask;
    while (true) {
      DedupSlot& slot = dedup_slots_[pos];
      if (slot.row == kEmptySlot) break;  // absent (or erased earlier)
      if (slot.row != kTombstone && slot.hash == h32 &&
          RowEquals(slot.row, t.size(), cand)) {
        dead_rows.push_back(slot.row);
        slot.row = kTombstone;
        break;
      }
      pos = (pos + 1) & mask;
    }
  }
  if (dead_rows.empty()) return static_cast<size_t>(0);
  // Phase 2: compact the columns (survivors keep relative order) and
  // rebuild the dedup table from the survivors. Indexes and the boxed row
  // cache are watermark-folded structures keyed by now-shifted row
  // indices, so they are dropped wholesale (see the deletion contract in
  // the header).
  std::vector<uint8_t> dead(row_count_, 0);
  for (uint32_t r : dead_rows) dead[r] = 1;
  for (ValueColumn& c : columns_) c.EraseRows(dead);
  row_count_ -= dead_rows.size();
  index_cache_.clear();
  row_cache_.clear();
  rows_cached_ = 0;
  std::fill(dedup_slots_.begin(), dedup_slots_.end(), DedupSlot{});
  for (uint32_t i = 0; i < row_count_; ++i) {
    size_t h = columns_.size();
    for (const ValueColumn& c : columns_) {
      h ^= c.Get(i).Hash() + kGolden + (h << 6) + (h >> 2);
    }
    const uint32_t h32 = MixHash(h);
    size_t pos = h32 & mask;
    while (dedup_slots_[pos].row != kEmptySlot) pos = (pos + 1) & mask;
    dedup_slots_[pos] = DedupSlot{h32, i};
  }
  return dead_rows.size();
}

std::vector<Tuple> Relation::ReleaseRows() {
  rows();  // fold the compatibility cache to completion
  std::vector<Tuple> out = std::move(row_cache_);
  row_cache_ = std::vector<Tuple>();
  Clear();
  return out;
}

std::vector<std::vector<Value>> Relation::ReleaseColumns() {
  std::vector<std::vector<Value>> out(columns_.size());
  for (size_t c = 0; c < columns_.size(); ++c) {
    out[c].reserve(row_count_);
    for (size_t i = 0; i < row_count_; ++i) {
      out[c].push_back(columns_[c].Get(i));
    }
  }
  Clear();
  return out;
}

const std::vector<Tuple>& Relation::rows() const {
  if (rows_cached_ < row_count_) {
    row_cache_.reserve(row_count_);
    for (size_t i = rows_cached_; i < row_count_; ++i) {
      Tuple t;
      t.reserve(columns_.size());
      for (const ValueColumn& c : columns_) t.push_back(c.Get(i));
      row_cache_.push_back(std::move(t));
    }
    rows_cached_ = row_count_;
  }
  return row_cache_;
}

std::vector<Tuple> Relation::MaterializeRows(size_t begin) const {
  std::vector<Tuple> out;
  if (begin >= row_count_) return out;
  out.reserve(row_count_ - begin);
  for (size_t i = begin; i < row_count_; ++i) {
    Tuple t;
    t.reserve(columns_.size());
    for (const ValueColumn& c : columns_) t.push_back(c.Get(i));
    out.push_back(std::move(t));
  }
  return out;
}

Relation::ColumnView Relation::ColumnSlice(size_t col, size_t begin,
                                           size_t end) const {
  ColumnView v;
  if (col >= columns_.size() || begin >= end) return v;
  const ValueColumn& c = columns_[col];
  v.words_ = c.word_data() + begin;
  const uint8_t* kinds = c.kind_data();
  v.kinds_ = kinds == nullptr ? nullptr : kinds + begin;
  v.kind_ = c.uniform_kind();
  v.size_ = end - begin;
  return v;
}

Status Relation::ReplaceRows(std::vector<Tuple> rows) {
  Clear();
  // Unreachable in practice — the batch is bounded by a previous row count
  // that already fit — but reported as a Status all the same (PR 6's
  // Status-over-abort discipline).
  return InsertBatch(std::move(rows)).status();
}

void Relation::Clear() {
  for (ValueColumn& c : columns_) c.Clear();
  row_count_ = 0;
  dedup_slots_.clear();
  index_cache_.clear();
  row_cache_.clear();
  rows_cached_ = 0;
}

const Relation::KeyIndex& Relation::GetIndex(
    const std::vector<int>& key_columns) const {
  return FoldIndex(key_columns);
}

const Relation::KeyIndex* Relation::EnsureIndex(
    const std::vector<int>& key_columns) const {
  std::lock_guard<std::mutex> lock(index_mutex_);
  return &FoldIndex(key_columns);
}

const Relation::KeyIndex& Relation::FoldIndex(
    const std::vector<int>& key_columns) const {
  std::string cache_key;
  for (int c : key_columns) {
    cache_key += std::to_string(c);
    cache_key += ',';
  }
  auto it = index_cache_.find(cache_key);
  if (it == index_cache_.end()) {
    it = index_cache_.emplace(cache_key, CachedIndex{}).first;
    it->second.key_columns = key_columns;
  }
  FoldSuffix(&it->second);
  return it->second.index;
}

void Relation::FoldSuffix(CachedIndex* cached) const {
  RAQLET_FAILPOINT_DELAY("storage.index_build");
  for (uint32_t i = static_cast<uint32_t>(cached->rows_indexed);
       i < row_count_; ++i) {
    Tuple key;
    key.reserve(cached->key_columns.size());
    for (int c : cached->key_columns) {
      key.push_back(columns_[static_cast<size_t>(c)].Get(i));
    }
    cached->index[std::move(key)].push_back(i);
  }
  cached->rows_indexed = row_count_;
}

void Relation::FoldAllIndexes() {
  // One fold per cached index for the whole batch, so interleaved probe
  // sites never re-fold tuple by tuple.
  for (auto& [key, cached] : index_cache_) FoldSuffix(&cached);
}

size_t Relation::MemoryBytes() const {
  size_t bytes = 0;
  for (const ValueColumn& c : columns_) bytes += c.MemoryBytes();
  bytes += dedup_slots_.capacity() * sizeof(DedupSlot);
  // Boxed compatibility cache, if materialized (vector headers + value
  // payloads; per-tuple allocator overhead not counted).
  bytes += row_cache_.capacity() * sizeof(Tuple);
  for (const Tuple& t : row_cache_) bytes += t.capacity() * sizeof(Value);
  return bytes;
}

std::string Relation::ToString(const SymbolTable* symbols) const {
  std::ostringstream os;
  os << schema_.ToString() << " [" << row_count_ << " rows]\n";
  for (size_t i = 0; i < row_count_; ++i) {
    Tuple t;
    t.reserve(columns_.size());
    for (const ValueColumn& c : columns_) t.push_back(c.Get(i));
    os << "  " << TupleToString(t, symbols) << "\n";
  }
  return os.str();
}

}  // namespace raqlet
