#include "storage/relation.h"

#include <sstream>

#include "common/str_util.h"

namespace raqlet {

int RelationSchema::ColumnIndex(const std::string& column_name) const {
  for (size_t i = 0; i < columns.size(); ++i) {
    if (columns[i].name == column_name) return static_cast<int>(i);
  }
  return -1;
}

std::string RelationSchema::ToString() const {
  std::vector<std::string> cols;
  cols.reserve(columns.size());
  for (const Column& c : columns) {
    cols.push_back(c.name + ": " + ValueTypeToString(c.type));
  }
  return name + "(" + Join(cols, ", ") + ")";
}

bool Relation::Insert(Tuple t) {
  auto [it, inserted] = dedup_.insert(std::move(t));
  if (!inserted) return false;
  rows_.push_back(*it);
  return true;
}

void Relation::ReplaceRows(std::vector<Tuple> rows) {
  Clear();
  for (Tuple& row : rows) Insert(std::move(row));
}

void Relation::Clear() {
  rows_.clear();
  dedup_.clear();
  index_cache_.clear();
}

const Relation::KeyIndex& Relation::GetIndex(
    const std::vector<int>& key_columns) const {
  return FoldIndex(key_columns);
}

const Relation::KeyIndex* Relation::EnsureIndex(
    const std::vector<int>& key_columns) const {
  std::lock_guard<std::mutex> lock(index_mutex_);
  return &FoldIndex(key_columns);
}

const Relation::KeyIndex& Relation::FoldIndex(
    const std::vector<int>& key_columns) const {
  std::string cache_key;
  for (int c : key_columns) {
    cache_key += std::to_string(c);
    cache_key += ',';
  }
  CachedIndex& cached = index_cache_[cache_key];
  for (uint32_t i = static_cast<uint32_t>(cached.rows_indexed);
       i < rows_.size(); ++i) {
    Tuple key;
    key.reserve(key_columns.size());
    for (int c : key_columns) key.push_back(rows_[i][static_cast<size_t>(c)]);
    cached.index[std::move(key)].push_back(i);
  }
  cached.rows_indexed = rows_.size();
  return cached.index;
}

std::string Relation::ToString(const SymbolTable* symbols) const {
  std::ostringstream os;
  os << schema_.ToString() << " [" << rows_.size() << " rows]\n";
  for (const Tuple& row : rows_) {
    os << "  " << TupleToString(row, symbols) << "\n";
  }
  return os.str();
}

}  // namespace raqlet
