#include "storage/relation.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "common/str_util.h"

namespace raqlet {

namespace {

// Finalizer spreading TupleHash output across slot indices: the table
// indexes with the low bits, so fold the high bits down first.
inline uint32_t MixHash(size_t h) {
  uint64_t x = static_cast<uint64_t>(h) * 0x9e3779b97f4a7c15ULL;
  return static_cast<uint32_t>(x ^ (x >> 32));
}

}  // namespace

int RelationSchema::ColumnIndex(const std::string& column_name) const {
  for (size_t i = 0; i < columns.size(); ++i) {
    if (columns[i].name == column_name) return static_cast<int>(i);
  }
  return -1;
}

std::string RelationSchema::ToString() const {
  std::vector<std::string> cols;
  cols.reserve(columns.size());
  for (const Column& c : columns) {
    cols.push_back(c.name + ": " + ValueTypeToString(c.type));
  }
  return name + "(" + Join(cols, ", ") + ")";
}

uint32_t Relation::DedupProbe(const Tuple& t, uint32_t h32,
                              size_t* slot_out) const {
  size_t mask = dedup_slots_.size() - 1;  // size is a power of two
  size_t pos = h32 & mask;
  while (true) {
    const DedupSlot& slot = dedup_slots_[pos];
    if (slot.row == kEmptySlot) {
      if (slot_out != nullptr) *slot_out = pos;
      return kEmptySlot;
    }
    if (slot.hash == h32 && rows_[slot.row] == t) return slot.row;
    pos = (pos + 1) & mask;
  }
}

void Relation::DedupReserve(size_t want) {
  if (want >= kEmptySlot) {
    // Row indices are 32 bits; at 2^32-1 rows the next index would collide
    // with the empty-slot sentinel and dedup would silently re-admit
    // duplicates. Fail loudly instead.
    std::fprintf(stderr, "raqlet: relation '%s' exceeds 2^32-1 rows\n",
                 schema_.name.c_str());
    std::abort();
  }
  // Max load factor 1/2: at 7/8 the expected linear-probe chain for a miss
  // (every genuinely-new tuple) is ~32 slot touches; at 1/2 it is ~2.5. A
  // slot is 8 bytes, so even the doubled table stays far smaller than the
  // tuple storage it guards.
  size_t capacity = dedup_slots_.size();
  if (capacity >= 16 && want * 2 <= capacity) return;
  size_t new_capacity = capacity == 0 ? 16 : capacity;
  while (want * 2 > new_capacity) new_capacity *= 2;
  std::vector<DedupSlot> old = std::move(dedup_slots_);
  dedup_slots_.assign(new_capacity, DedupSlot{});
  size_t mask = new_capacity - 1;
  for (const DedupSlot& slot : old) {
    if (slot.row == kEmptySlot) continue;
    size_t pos = slot.hash & mask;
    while (dedup_slots_[pos].row != kEmptySlot) pos = (pos + 1) & mask;
    dedup_slots_[pos] = slot;
  }
}

bool Relation::Contains(const Tuple& t) const {
  if (dedup_slots_.empty()) return false;
  return DedupProbe(t, MixHash(TupleHash{}(t)), nullptr) != kEmptySlot;
}

bool Relation::Insert(Tuple t) {
  DedupReserve(rows_.size() + 1);
  uint32_t h32 = MixHash(TupleHash{}(t));
  size_t slot;
  if (DedupProbe(t, h32, &slot) != kEmptySlot) return false;
  uint32_t idx = static_cast<uint32_t>(rows_.size());
  rows_.push_back(std::move(t));
  dedup_slots_[slot] = DedupSlot{h32, idx};
  return true;
}

size_t Relation::InsertBatch(std::vector<Tuple> batch) {
  return InsertBatchInPlace(&batch);
}

size_t Relation::InsertBatchInPlace(std::vector<Tuple>* batch) {
  // One reservation for the whole batch; doubling (rather than
  // reserve(size + k) per batch) keeps growth geometric across rounds.
  size_t want = rows_.size() + batch->size();
  if (want > rows_.capacity()) {
    rows_.reserve(std::max(want, rows_.capacity() * 2));
  }
  DedupReserve(want);
  size_t inserted = 0;
  for (Tuple& t : *batch) {
    uint32_t h32 = MixHash(TupleHash{}(t));
    size_t slot;
    if (DedupProbe(t, h32, &slot) != kEmptySlot) continue;
    uint32_t idx = static_cast<uint32_t>(rows_.size());
    rows_.push_back(std::move(t));
    dedup_slots_[slot] = DedupSlot{h32, idx};
    ++inserted;
  }
  batch->clear();  // moved-from tuples out, capacity retained for reuse
  // One fold per cached index for the whole batch, so interleaved probe
  // sites never re-fold tuple by tuple.
  for (auto& [key, cached] : index_cache_) FoldSuffix(&cached);
  return inserted;
}

std::vector<Tuple> Relation::ReleaseRows() {
  std::vector<Tuple> out = std::move(rows_);
  Clear();
  return out;
}

void Relation::ReplaceRows(std::vector<Tuple> rows) {
  Clear();
  InsertBatch(std::move(rows));
}

void Relation::Clear() {
  rows_.clear();
  dedup_slots_.clear();
  index_cache_.clear();
}

const Relation::KeyIndex& Relation::GetIndex(
    const std::vector<int>& key_columns) const {
  return FoldIndex(key_columns);
}

const Relation::KeyIndex* Relation::EnsureIndex(
    const std::vector<int>& key_columns) const {
  std::lock_guard<std::mutex> lock(index_mutex_);
  return &FoldIndex(key_columns);
}

const Relation::KeyIndex& Relation::FoldIndex(
    const std::vector<int>& key_columns) const {
  std::string cache_key;
  for (int c : key_columns) {
    cache_key += std::to_string(c);
    cache_key += ',';
  }
  auto it = index_cache_.find(cache_key);
  if (it == index_cache_.end()) {
    it = index_cache_.emplace(cache_key, CachedIndex{}).first;
    it->second.key_columns = key_columns;
  }
  FoldSuffix(&it->second);
  return it->second.index;
}

void Relation::FoldSuffix(CachedIndex* cached) const {
  for (uint32_t i = static_cast<uint32_t>(cached->rows_indexed);
       i < rows_.size(); ++i) {
    Tuple key;
    key.reserve(cached->key_columns.size());
    for (int c : cached->key_columns) {
      key.push_back(rows_[i][static_cast<size_t>(c)]);
    }
    cached->index[std::move(key)].push_back(i);
  }
  cached->rows_indexed = rows_.size();
}

std::string Relation::ToString(const SymbolTable* symbols) const {
  std::ostringstream os;
  os << schema_.ToString() << " [" << rows_.size() << " rows]\n";
  for (const Tuple& row : rows_) {
    os << "  " << TupleToString(row, symbols) << "\n";
  }
  return os.str();
}

}  // namespace raqlet
