#ifndef RAQLET_STORAGE_RELATION_H_
#define RAQLET_STORAGE_RELATION_H_

// Set-semantics columnar tuple storage shared by the Datalog, SQL, and
// graph engines and by the EDB loaders. Insertion order is preserved (the
// semi-naive evaluator identifies deltas as suffixes of the row index
// space).

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/value.h"

namespace raqlet {

/// A named column with a logical type.
struct Column {
  std::string name;
  ValueType type = ValueType::kNumber;
};

/// Schema of a stored relation. `primary_key` lists column positions that
/// form a key (used by semantic join elimination); empty means unknown.
struct RelationSchema {
  std::string name;
  std::vector<Column> columns;
  std::vector<int> primary_key;

  size_t arity() const { return columns.size(); }
  /// Position of a column by name, or -1.
  int ColumnIndex(const std::string& column_name) const;
  std::string ToString() const;
};

/// A deduplicated, insertion-ordered bag of tuples of fixed arity, stored
/// column-wise (structure of arrays).
///
/// ## Layout
///
/// Each schema column is one ValueColumn: a dense array of raw 64-bit
/// payload words plus a kind tag. While every value in a column shares one
/// ValueType — the overwhelmingly common case; the 2-column edge/TC shape
/// that dominates the benchmarks is two uniform kNumber columns — the
/// per-row kind array is not allocated at all and a stored value costs
/// exactly 8 bytes. The first kind-mismatched append materializes a lazy
/// byte-per-row kind sidecar and the column degrades gracefully to tagged
/// storage (9 bytes/value). Compare with the previous row layout, where
/// every row was a heap-allocated std::vector<Value> costing 24 bytes of
/// vector header plus 16 bytes per value plus allocator overhead.
///
/// Duplicate elimination is a flat open-addressing table of
/// (hash32, row-index) slots with linear probing; it stores no tuples, and
/// probes compare candidate values against the column arrays directly.
/// Insertion through any path (row-at-a-time, row batches, or columnar
/// batches via InsertColumns) makes bit-identical dedup decisions in
/// batch order: the first occurrence of a duplicate wins, exactly as a
/// per-tuple Insert loop would decide.
///
/// ## Borrowing contract
///
/// Column(c) / ColumnSlice(c, begin, end) return zero-copy ColumnView
/// handles into the live column arrays. A borrowed view is valid only
/// until the next mutation of the relation (Insert / InsertBatch /
/// InsertColumns / EraseBatch / Clear / ReplaceRows / ReleaseRows),
/// exactly like the
/// KeyIndex pointer returned by EnsureIndex: mutations may reallocate the
/// underlying arrays or materialize a kind sidecar. Executors therefore
/// re-borrow at plan/batch-build time each round, never across rounds.
///
/// ## Threading contract (single writer / multiple readers)
///
/// At most one thread may mutate a Relation, and while it does, no other
/// thread may touch the relation at all. The writer need not be the same
/// thread every time: the parallel evaluator's sharded merge hands each
/// relation's staged run to one pool task per round, which is fine —
/// distinct relations may be mutated by distinct threads concurrently, as
/// long as each relation has exactly one writer and no concurrent readers
/// of that relation. Between mutations — e.g. while a fixpoint round fans
/// out across the pool — any number of threads may concurrently call the
/// const accessors (size, Contains, Column, ColumnSlice, ValueAt) plus
/// EnsureIndex, which serializes index construction internally. Two
/// exceptions are NOT safe to call concurrently even though they are
/// const, because they fold lazily-materialized caches without locking:
/// GetIndex (the historical single-threaded index entry point) and rows()
/// (the row-compatibility view, which materializes boxed tuples on
/// demand). Both must only run while the caller holds the relation
/// single-threadedly; the hot engine paths use EnsureIndex and
/// ColumnView instead.
class Relation {
 public:
  /// Zero-copy read-only view of a contiguous slice of one stored column.
  /// `at(i)` re-boxes the i-th value of the slice. Invalidated by the next
  /// mutation of the owning relation (see the borrowing contract above).
  class ColumnView {
   public:
    ColumnView() = default;

    size_t size() const { return size_; }

    Value at(size_t i) const {
      return Value::FromRaw(
          kinds_ != nullptr ? static_cast<ValueType>(kinds_[i]) : kind_,
          words_[i]);
    }

    /// Raw unboxed payload words of the slice (64-bit, floats bit-cast).
    const int64_t* words() const { return words_; }
    /// Per-row kind tags, or nullptr when the column is uniformly `kind()`.
    const uint8_t* kinds() const { return kinds_; }
    /// The shared ValueType when kinds() == nullptr.
    ValueType kind() const { return kind_; }
    /// True when every value in the slice is a kNumber with no kind
    /// sidecar — the unboxed fast-path shape.
    bool uniform_number() const {
      return kinds_ == nullptr && kind_ == ValueType::kNumber;
    }

   private:
    friend class Relation;
    const int64_t* words_ = nullptr;
    const uint8_t* kinds_ = nullptr;
    ValueType kind_ = ValueType::kNull;
    size_t size_ = 0;
  };

  Relation() = default;
  explicit Relation(RelationSchema schema) : schema_(std::move(schema)) {
    columns_.resize(schema_.arity());
  }

  /// Clears all rows and replaces the schema (and column layout). For
  /// callers that materialize derived relations into a shared Database
  /// and reuse a name across programs whose declarations differ: a bare
  /// Clear() keeps the old schema, so arity()-driven readers (column
  /// borrowing) would see a stale width once the new program inserts.
  void ResetSchema(RelationSchema schema) {
    Clear();
    schema_ = std::move(schema);
    columns_.assign(schema_.arity(), ValueColumn());
  }

  const RelationSchema& schema() const { return schema_; }
  const std::string& name() const { return schema_.name; }
  size_t arity() const { return schema_.arity(); }
  size_t size() const { return row_count_; }
  bool empty() const { return row_count_ == 0; }

  /// Inserts `t` if not already present. Returns true if the tuple is new,
  /// or an error Status (relation unmodified) at the 2^32-1 row-index
  /// ceiling — the same contract as the batch paths. Callers that ignore
  /// the result (test fixtures, tiny loaders) lose only the overflow
  /// signal, never correctness of the rows that did fit.
  Result<bool> Insert(Tuple t);

  /// Bulk insert: appends every tuple of `batch` not already present (in
  /// the relation or earlier in the batch), preserving batch order — the
  /// first occurrence of a duplicate wins, exactly as a per-tuple Insert
  /// loop would decide. Reserves the columns and the dedup table once for
  /// the whole batch and folds the new row suffix into every cached index
  /// in a single pass per index. Returns the number of tuples actually
  /// inserted, or an error (with the relation unmodified) if the batch
  /// could overflow the 32-bit row-index space: the check is conservative
  /// — it counts the whole batch before deduplication.
  Result<size_t> InsertBatch(std::vector<Tuple> batch);

  /// In-place variant: consumes the tuples but leaves `*batch` cleared
  /// with its capacity intact, so callers staging through recycled
  /// buffers (the engine's pooled EmitBuffers) keep their allocation
  /// across rounds. On error the relation AND the batch are unmodified.
  Result<size_t> InsertBatchInPlace(std::vector<Tuple>* batch);

  /// Columnar bulk insert: `(*cols)[c][i]` is row i of column c, and
  /// cols->size() must equal the relation arity (each column the same
  /// length). Dedup decisions and insertion order are bit-identical to
  /// feeding the same rows through InsertBatch. Consumes the values and
  /// leaves every staged column cleared with capacity intact. This is the
  /// native batch primitive of the columnar producers: the Datalog
  /// sharded merge, the SQL vectorized projection, and the graph
  /// column-batch DISTINCT all land here without materializing row
  /// tuples. The 2-column all-kNumber shape takes an unboxed fast path
  /// that hashes and compares raw words. On error the relation and the
  /// staged columns are unmodified.
  Result<size_t> InsertColumns(std::vector<std::vector<Value>>* cols);

  /// Deletes every tuple of `batch` that is currently present and returns
  /// the number of rows actually erased (absent tuples and wrong-arity
  /// tuples are ignored; duplicates in the batch erase once).
  ///
  /// ## Deletion contract
  ///
  /// Deletion is a full mutation: surviving rows are compacted in place
  /// and KEEP their relative insertion order, but their row indices
  /// shift, so every cached KeyIndex, the rows() compatibility cache, and
  /// all borrowed ColumnViews are invalidated — exactly as if the
  /// relation had been rebuilt by re-inserting the survivors. Callers
  /// holding a KeyIndex pointer from EnsureIndex/GetIndex or a ColumnView
  /// across an EraseBatch must re-acquire them. The dedup table is
  /// maintained tombstone-aware during the batch (an erased slot keeps
  /// its probe chain intact so later candidates in the same batch still
  /// find their rows) and rebuilt from the survivors afterwards, so a
  /// delete-then-re-insert of the same tuple behaves exactly like a
  /// first-time insert. Single-writer rules apply (threading contract
  /// above). Never fails today; returns Result for symmetry with the
  /// insert paths and for fault injection ("storage.erase_batch").
  Result<size_t> EraseBatch(const std::vector<Tuple>& batch);

  /// Materializes all rows, moves them out, and leaves the relation empty
  /// (schema kept; columns, dedup table and cached indexes dropped). For
  /// callers that use a scratch Relation purely as a batch deduplicator —
  /// insert, then take the surviving rows.
  std::vector<Tuple> ReleaseRows();

  /// Columnar analogue of ReleaseRows: moves the surviving values out as
  /// one boxed vector per column and leaves the relation empty.
  std::vector<std::vector<Value>> ReleaseColumns();

  bool Contains(const Tuple& t) const;

  /// Row-compatibility view: boxed tuples in insertion order, materialized
  /// lazily from the columns and cached (indices stable across inserts).
  /// NOT safe to call concurrently with itself or any other access (it
  /// folds the cache without locking — see the threading contract);
  /// serial-only consumers (the tuple pipeline, loaders, result assembly,
  /// tests) use it freely, hot paths borrow ColumnViews instead.
  const std::vector<Tuple>& rows() const;

  /// Fresh boxed copies of rows [begin, size()), bypassing (and not
  /// populating) the rows() cache. Safe under the multi-reader phase.
  std::vector<Tuple> MaterializeRows(size_t begin = 0) const;

  /// Zero-copy view of column `col` (all rows). Returns an empty view for
  /// out-of-range columns. See the borrowing contract above.
  ColumnView Column(size_t col) const { return ColumnSlice(col, 0, row_count_); }

  /// Zero-copy view of rows [begin, end) of column `col`.
  ColumnView ColumnSlice(size_t col, size_t begin, size_t end) const;

  /// Boxes the single value at (row, col).
  Value ValueAt(size_t row, size_t col) const {
    return columns_[col].Get(row);
  }

  void Clear();

  /// Builds (or returns a cached) hash index mapping the projection of each
  /// row onto `key_columns` to the list of row indices with that key.
  /// Indexes are maintained incrementally: rows inserted after the index was
  /// built are folded in on the next GetIndex call (or eagerly, once per
  /// batch, by the batch inserters), so interleaving inserts and probes
  /// (semi-naive evaluation) stays linear.
  /// Row-index lists within one key are in ascending (insertion) order —
  /// the semi-naive evaluator's deterministic merge relies on this.
  using KeyIndex = std::unordered_map<Tuple, std::vector<uint32_t>, TupleHash>;
  const KeyIndex& GetIndex(const std::vector<int>& key_columns) const;

  /// Thread-safe variant of GetIndex for the single-writer/multi-reader
  /// phase: brings the index for `key_columns` up to date with the current
  /// rows under an internal lock and returns a pointer to it. The pointee
  /// is stable (never moved by other cache entries being built) and safe
  /// to probe lock-free for as long as the relation is not mutated. The
  /// engine calls this once per plan step at plan-build time, so the inner
  /// join loops pay neither the lock nor the cache lookup.
  const KeyIndex* EnsureIndex(const std::vector<int>& key_columns) const;

  /// Replaces the contents of this relation with `rows` (deduplicated).
  /// Used by the engine to compact lattice relations at stratum boundaries.
  /// On error (row-index overflow — unreachable when `rows` came from this
  /// relation) the relation is left cleared.
  Status ReplaceRows(std::vector<Tuple> rows);

  /// Bytes of heap held by the column arrays, kind sidecars, dedup table,
  /// and (estimated) the row-compatibility cache if it has been
  /// materialized. Cached KeyIndexes are not counted (node-based
  /// unordered_map sizing is opaque). Drives the bytes_per_tuple bench
  /// counter.
  size_t MemoryBytes() const;

  /// Testing hook: lowers the row-count ceiling (default 2^32-2) so the
  /// overflow Status path is exercisable without inserting 4 billion rows.
  void SetRowLimitForTesting(size_t limit) { row_limit_ = limit; }

  std::string ToString(const SymbolTable* symbols = nullptr) const;

 private:
  // One stored column: unboxed payload words plus a lazy kind sidecar
  // (empty while every value shares kind_).
  class ValueColumn {
   public:
    size_t size() const { return words_.size(); }

    Value Get(size_t i) const {
      return Value::FromRaw(
          kinds_.empty() ? kind_ : static_cast<ValueType>(kinds_[i]),
          words_[i]);
    }

    void Append(const Value& v) {
      if (words_.empty()) {
        kind_ = v.kind();
      } else if (kinds_.empty() && v.kind() != kind_) {
        // First mixed-kind append: materialize the sidecar for the
        // existing uniform prefix.
        kinds_.assign(words_.size(), static_cast<uint8_t>(kind_));
      }
      if (!kinds_.empty()) kinds_.push_back(static_cast<uint8_t>(v.kind()));
      words_.push_back(v.RawBits());
    }

    // Unboxed append. Precondition: the column is empty or uniformly of
    // kind `k` (no sidecar).
    void AppendUniform(ValueType k, int64_t word) {
      if (words_.empty()) kind_ = k;
      words_.push_back(word);
    }

    void Reserve(size_t n) {
      words_.reserve(n);
      if (!kinds_.empty()) kinds_.reserve(n);
    }

    void Clear() {
      words_.clear();
      kinds_.clear();
      kind_ = ValueType::kNull;
    }

    // Compacts away every row r with dead[r] != 0, preserving survivor
    // order. The kind sidecar (if materialized) is compacted in lockstep;
    // it is not de-materialized even if the survivors happen to be
    // uniform again.
    void EraseRows(const std::vector<uint8_t>& dead) {
      size_t w = 0;
      for (size_t r = 0; r < words_.size(); ++r) {
        if (dead[r] != 0) continue;
        words_[w] = words_[r];
        if (!kinds_.empty()) kinds_[w] = kinds_[r];
        ++w;
      }
      words_.resize(w);
      if (!kinds_.empty()) kinds_.resize(w);
    }

    bool uniform() const { return kinds_.empty(); }
    ValueType uniform_kind() const { return kind_; }
    size_t capacity() const { return words_.capacity(); }
    const int64_t* word_data() const { return words_.data(); }
    const uint8_t* kind_data() const {
      return kinds_.empty() ? nullptr : kinds_.data();
    }
    size_t MemoryBytes() const {
      return words_.capacity() * sizeof(int64_t) + kinds_.capacity();
    }

   private:
    std::vector<int64_t> words_;
    std::vector<uint8_t> kinds_;  // empty while uniform
    ValueType kind_ = ValueType::kNull;
  };

  // The dedup structure stores row indices rather than tuple copies:
  // values are stored exactly once (in the columns) and inserting never
  // copies a tuple. It is a flat open-addressing table of
  // (hash, row-index) slots with linear probing — the semi-naive engine
  // probes it once per derived tuple, and a duplicate check costs one
  // cache line of slot metadata plus (only on a hash match) one
  // column-wise row comparison. Rehashing re-seats the cached hashes
  // without touching any value.
  struct DedupSlot {
    uint32_t hash = 0;
    uint32_t row = kEmptySlot;
  };
  static constexpr uint32_t kEmptySlot = 0xffffffffu;

  // Probes for a candidate row of `cand_arity` values (with precomputed
  // hash mix `h32`) whose column-c value is `cand(c)`. Returns the
  // matching row index, or kEmptySlot if absent — in which case *slot_out
  // is the insertion position (valid until the table grows).
  template <typename RowFn>
  uint32_t DedupProbe(size_t cand_arity, RowFn&& cand, uint32_t h32,
                      size_t* slot_out) const {
    size_t mask = dedup_slots_.size() - 1;  // size is a power of two
    size_t pos = h32 & mask;
    while (true) {
      const DedupSlot& slot = dedup_slots_[pos];
      if (slot.row == kEmptySlot) {
        if (slot_out != nullptr) *slot_out = pos;
        return kEmptySlot;
      }
      if (slot.hash == h32 && RowEquals(slot.row, cand_arity, cand)) {
        return slot.row;
      }
      pos = (pos + 1) & mask;
    }
  }

  template <typename RowFn>
  bool RowEquals(uint32_t row, size_t cand_arity, RowFn&& cand) const {
    if (cand_arity != columns_.size()) return false;
    for (size_t c = 0; c < columns_.size(); ++c) {
      if (!(columns_[c].Get(row) == cand(c))) return false;
    }
    return true;
  }

  // Fails (relation untouched) if `extra` more rows could pass the
  // 32-bit row-index ceiling or the injected test limit.
  Status CheckRoom(size_t extra) const;

  // Grows the slot table so `want` entries fit under the max load factor.
  void DedupReserve(size_t want);

  // Sizes columns_ for tuples of the given arity (first insert on a
  // schema-less relation) and reserves room for `want` rows total.
  void PrepareColumns(size_t arity, size_t want);

  // Appends one boxed row across the columns.
  void AppendRow(const Tuple& t);

  // Unboxed arity-2 all-kNumber batch insert; returns tuples admitted.
  size_t InsertPairNumeric(const std::vector<Value>& c0,
                           const std::vector<Value>& c1);

  struct CachedIndex {
    std::vector<int> key_columns;
    KeyIndex index;
    size_t rows_indexed = 0;  // watermark into the row index space
  };

  const KeyIndex& FoldIndex(const std::vector<int>& key_columns) const;
  // Folds rows [cached->rows_indexed, row_count_) into `cached`.
  void FoldSuffix(CachedIndex* cached) const;
  // Folds every cached index up to row_count_ (once per batch insert).
  void FoldAllIndexes();

  RelationSchema schema_;
  size_t row_count_ = 0;
  std::vector<ValueColumn> columns_;  // one per schema column
  std::vector<DedupSlot> dedup_slots_;  // size is a power of two (or 0)
  size_t row_limit_ = static_cast<size_t>(kEmptySlot) - 1;
  // Lazily-materialized boxed view backing rows(). rows_cached_ is the
  // watermark of materialized rows. Mutable: a logically-const
  // compatibility cache, folded without locking (serial contexts only).
  mutable std::vector<Tuple> row_cache_;
  mutable size_t rows_cached_ = 0;
  // Cache key: comma-joined column list. Mutable: index construction is a
  // logically-const acceleration structure. Guarded by index_mutex_ only
  // on the EnsureIndex path; see the class-level threading contract.
  mutable std::unordered_map<std::string, CachedIndex> index_cache_;
  mutable std::mutex index_mutex_;
};

}  // namespace raqlet

#endif  // RAQLET_STORAGE_RELATION_H_
