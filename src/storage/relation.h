#ifndef RAQLET_STORAGE_RELATION_H_
#define RAQLET_STORAGE_RELATION_H_

// Set-semantics tuple storage shared by the Datalog and SQL engines and by
// the EDB loaders. Insertion order is preserved (the semi-naive evaluator
// identifies deltas as suffixes of the row vector).

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/value.h"

namespace raqlet {

/// A named column with a logical type.
struct Column {
  std::string name;
  ValueType type = ValueType::kNumber;
};

/// Schema of a stored relation. `primary_key` lists column positions that
/// form a key (used by semantic join elimination); empty means unknown.
struct RelationSchema {
  std::string name;
  std::vector<Column> columns;
  std::vector<int> primary_key;

  size_t arity() const { return columns.size(); }
  /// Position of a column by name, or -1.
  int ColumnIndex(const std::string& column_name) const;
  std::string ToString() const;
};

/// A deduplicated, insertion-ordered bag of tuples of fixed arity.
///
/// Threading contract (single writer / multiple readers): at most one
/// thread may mutate a Relation (Insert / InsertBatch / Clear /
/// ReplaceRows), and while it does, no other thread may touch the relation
/// at all. The writer need not be the same thread every time: the parallel
/// evaluator's sharded merge hands each relation's staged run to one pool
/// task per round, which is fine — distinct relations may be mutated by
/// distinct threads concurrently, as long as each relation has exactly one
/// writer and no concurrent readers of that relation. Between mutations —
/// e.g. while a fixpoint round fans out across the pool — any number of
/// threads may concurrently call the const accessors plus EnsureIndex,
/// which serializes index construction internally. GetIndex is the
/// historical single-threaded entry point: it folds new rows into the
/// cache without locking and therefore must never run concurrently with
/// anything else on the same relation.
class Relation {
 public:
  Relation() = default;
  explicit Relation(RelationSchema schema) : schema_(std::move(schema)) {}

  const RelationSchema& schema() const { return schema_; }
  const std::string& name() const { return schema_.name; }
  size_t arity() const { return schema_.arity(); }
  size_t size() const { return rows_.size(); }
  bool empty() const { return rows_.empty(); }

  /// Inserts `t` if not already present. Returns true if the tuple is new.
  bool Insert(Tuple t);

  /// Bulk insert: appends every tuple of `batch` not already present (in
  /// the relation or earlier in the batch), preserving batch order — the
  /// first occurrence of a duplicate wins, exactly as a per-tuple Insert
  /// loop would decide. Reserves rows_ and the dedup table once for the
  /// whole batch and folds the new row suffix into every cached index in
  /// a single pass per index, so a batch costs one scan where per-tuple
  /// insertion paid a probe-site fold and amortized rehashes. Returns the
  /// number of tuples actually inserted. This is the dedup primitive of
  /// every batched producer: the Datalog engine's sharded merge, the SQL
  /// engine's vectorized projection, and the graph engine's column-batch
  /// DISTINCT all land here.
  size_t InsertBatch(std::vector<Tuple> batch);

  /// In-place variant: consumes the tuples but leaves `*batch` cleared
  /// with its capacity intact, so callers staging through recycled
  /// buffers (the engine's pooled EmitBuffers) keep their allocation
  /// across rounds.
  size_t InsertBatchInPlace(std::vector<Tuple>* batch);

  /// Moves the row storage out and leaves the relation empty (schema
  /// kept; dedup table and cached indexes dropped). For callers that use
  /// a scratch Relation purely as a batch deduplicator — InsertBatch,
  /// then take the surviving rows without copying them back out.
  std::vector<Tuple> ReleaseRows();

  bool Contains(const Tuple& t) const;

  /// Rows in insertion order. Stable across inserts (indices never move).
  const std::vector<Tuple>& rows() const { return rows_; }

  void Clear();

  /// Builds (or returns a cached) hash index mapping the projection of each
  /// row onto `key_columns` to the list of row indices with that key.
  /// Indexes are maintained incrementally: rows inserted after the index was
  /// built are folded in on the next GetIndex call (or eagerly, once per
  /// batch, by InsertBatch), so interleaving inserts and probes (semi-naive
  /// evaluation) stays linear.
  /// Row-index lists within one key are in ascending (insertion) order —
  /// the semi-naive evaluator's deterministic merge relies on this.
  using KeyIndex = std::unordered_map<Tuple, std::vector<uint32_t>, TupleHash>;
  const KeyIndex& GetIndex(const std::vector<int>& key_columns) const;

  /// Thread-safe variant of GetIndex for the single-writer/multi-reader
  /// phase: brings the index for `key_columns` up to date with the current
  /// rows under an internal lock and returns a pointer to it. The pointee
  /// is stable (never moved by other cache entries being built) and safe
  /// to probe lock-free for as long as the relation is not mutated. The
  /// engine calls this once per plan step at plan-build time, so the inner
  /// join loops pay neither the lock nor the cache lookup.
  const KeyIndex* EnsureIndex(const std::vector<int>& key_columns) const;

  /// Replaces the contents of this relation with `rows` (deduplicated).
  /// Used by the engine to compact lattice relations at stratum boundaries.
  void ReplaceRows(std::vector<Tuple> rows);

  std::string ToString(const SymbolTable* symbols = nullptr) const;

 private:
  // The dedup structure stores row indices into rows_ rather than tuple
  // copies: tuples are stored exactly once and inserting never copies a
  // tuple. It is a flat open-addressing table of (hash, row-index) slots
  // with linear probing — the semi-naive engine probes it once per derived
  // tuple, and a duplicate check costs one cache line of slot metadata
  // plus (only on a hash match) one row comparison, instead of a
  // node-based bucket chase. Rehashing re-seats the cached hashes without
  // touching any tuple. Probing by Tuple allocates nothing.
  struct DedupSlot {
    uint32_t hash = 0;
    uint32_t row = kEmptySlot;
  };
  static constexpr uint32_t kEmptySlot = 0xffffffffu;

  // Probes for `t` (with precomputed tuple hash mix `h32`). Returns the
  // matching row index, or kEmptySlot if absent — in which case *slot_out
  // is the insertion position (valid until the table grows).
  uint32_t DedupProbe(const Tuple& t, uint32_t h32, size_t* slot_out) const;
  // Grows the slot table so `want` entries fit under the max load factor.
  void DedupReserve(size_t want);

  struct CachedIndex {
    std::vector<int> key_columns;
    KeyIndex index;
    size_t rows_indexed = 0;  // watermark into rows_
  };

  const KeyIndex& FoldIndex(const std::vector<int>& key_columns) const;
  // Folds rows [cached->rows_indexed, rows_.size()) into `cached`.
  void FoldSuffix(CachedIndex* cached) const;
  RelationSchema schema_;
  std::vector<Tuple> rows_;
  std::vector<DedupSlot> dedup_slots_;  // size is a power of two (or 0)
  // Cache key: comma-joined column list. Mutable: index construction is a
  // logically-const acceleration structure. Guarded by index_mutex_ only
  // on the EnsureIndex path; see the class-level threading contract.
  mutable std::unordered_map<std::string, CachedIndex> index_cache_;
  mutable std::mutex index_mutex_;
};

}  // namespace raqlet

#endif  // RAQLET_STORAGE_RELATION_H_
