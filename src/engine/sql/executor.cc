#include "engine/sql/executor.h"

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>

namespace raqlet::engine {

namespace {

using sqir::Cte;
using sqir::Expr;
using sqir::NotExists;
using sqir::Predicate;
using sqir::Select;
using sqir::SelectItem;
using sqir::SqirProgram;
using sqir::TableRef;

// Resolves a table name to a relation (CTE store first, then base tables).
using TableResolver =
    std::function<Result<const Relation*>(const std::string&)>;

void CollectAliases(const Expr& e, std::set<std::string>* aliases) {
  if (e.kind == Expr::kColumn) aliases->insert(e.table);
  for (const Expr& child : e.children) CollectAliases(child, aliases);
}

// One join step of the (shared) plan: scan or probe `table_index`, then
// apply `filters`.
struct ProbeSpec {
  int column = 0;
  const Expr* key_expr = nullptr;  // evaluated against earlier tables
};

struct StepPlan {
  size_t table_index = 0;
  std::vector<ProbeSpec> probes;
  std::vector<const Predicate*> filters;
};

// Evaluates one SELECT block against resolved tables.
class SelectEvaluator {
 public:
  SelectEvaluator(const Select& select, const TableResolver& resolver,
                  Database* db, SqlMode mode, SqlStats* stats)
      : select_(select), resolver_(resolver), db_(db), mode_(mode),
        stats_(stats) {}

  // Appends result tuples to `out` (deduplicated by the relation).
  Status Evaluate(Relation* out) {
    RAQLET_RETURN_IF_ERROR(Bind());
    RAQLET_RETURN_IF_ERROR(Plan());
    if (!select_.group_by.empty() || HasAggregate()) {
      return EvaluateWithAggregation(out);
    }
    RowBinding binding(tables_.size(), nullptr);
    if (mode_ == SqlMode::kTuplePipeline) {
      return Descend(0, &binding, [&](const RowBinding& row) -> Status {
        RAQLET_ASSIGN_OR_RETURN(Tuple tuple, Project(row));
        out->Insert(std::move(tuple));
        return Status::OK();
      });
    }
    // Vectorized: breadth-first batch extension.
    std::vector<RowBinding> batch = {binding};
    for (const StepPlan& step : plan_) {
      std::vector<RowBinding> next;
      for (RowBinding& row : batch) {
        RAQLET_RETURN_IF_ERROR(ExtendOne(step, &row, [&](const RowBinding& r) {
          next.push_back(r);
          return Status::OK();
        }));
      }
      batch = std::move(next);
    }
    for (const RowBinding& row : batch) {
      RAQLET_ASSIGN_OR_RETURN(bool keep, PassesNotExists(row));
      if (!keep) continue;
      RAQLET_ASSIGN_OR_RETURN(Tuple tuple, Project(row));
      out->Insert(std::move(tuple));
    }
    return Status::OK();
  }

 private:
  struct BoundTable {
    std::string alias;
    const Relation* relation = nullptr;
  };
  using RowBinding = std::vector<const Tuple*>;

  bool HasAggregate() const {
    for (const SelectItem& item : select_.items) {
      if (item.expr.kind == Expr::kAgg) return true;
    }
    return false;
  }

  Status Bind() {
    for (const TableRef& ref : select_.from) {
      RAQLET_ASSIGN_OR_RETURN(const Relation* rel, resolver_(ref.table));
      tables_.push_back(BoundTable{ref.alias, rel});
      alias_index_[ref.alias] = tables_.size() - 1;
    }
    return Status::OK();
  }

  int ColumnIndex(size_t table_index, const std::string& column) const {
    return tables_[table_index].relation->schema().ColumnIndex(column);
  }

  // Builds the per-step probe/filter plan. Join order is chosen greedily:
  // the next table is the one with the most equality predicates usable as
  // index probes given the tables already joined (ties: smaller relation)
  // — this avoids the cross products a literal FROM-order join would
  // build for star-shaped rule bodies.
  Status Plan() {
    std::vector<bool> used(select_.where.size(), false);
    std::vector<bool> placed(tables_.size(), false);
    std::set<std::string> bound;

    auto probe_score = [&](size_t candidate) {
      const std::string& alias = tables_[candidate].alias;
      int score = 0;
      for (size_t p = 0; p < select_.where.size(); ++p) {
        if (used[p]) continue;
        const Predicate& pred = select_.where[p];
        if (pred.op != dlir::CmpOp::kEq) continue;
        auto counts = [&](const Expr& col_side, const Expr& key_side) {
          if (col_side.kind != Expr::kColumn || col_side.table != alias) {
            return false;
          }
          std::set<std::string> key_aliases;
          CollectAliases(key_side, &key_aliases);
          for (const std::string& a : key_aliases) {
            if (bound.count(a) == 0) return false;
          }
          return true;
        };
        if (counts(pred.lhs, pred.rhs) || counts(pred.rhs, pred.lhs)) ++score;
      }
      return score;
    };

    for (size_t n = 0; n < tables_.size(); ++n) {
      size_t i = 0;
      int best_score = -1;
      size_t best_size = 0;
      for (size_t candidate = 0; candidate < tables_.size(); ++candidate) {
        if (placed[candidate]) continue;
        int score = probe_score(candidate);
        size_t size = tables_[candidate].relation->size();
        if (score > best_score ||
            (score == best_score && size < best_size)) {
          i = candidate;
          best_score = score;
          best_size = size;
        }
      }
      placed[i] = true;

      StepPlan step;
      step.table_index = i;
      const std::string& alias = tables_[i].alias;
      // Probes: eq predicates with a bare column of this table on one side
      // and the other side computable from earlier tables/constants.
      for (size_t p = 0; p < select_.where.size(); ++p) {
        if (used[p]) continue;
        const Predicate& pred = select_.where[p];
        if (pred.op != dlir::CmpOp::kEq) continue;
        auto try_probe = [&](const Expr& col_side, const Expr& key_side) {
          if (col_side.kind != Expr::kColumn || col_side.table != alias) {
            return false;
          }
          std::set<std::string> key_aliases;
          CollectAliases(key_side, &key_aliases);
          for (const std::string& a : key_aliases) {
            if (bound.count(a) == 0) return false;
          }
          int col = ColumnIndex(i, col_side.column);
          if (col < 0) return false;
          step.probes.push_back(ProbeSpec{col, &key_side});
          return true;
        };
        if (try_probe(pred.lhs, pred.rhs) || try_probe(pred.rhs, pred.lhs)) {
          used[p] = true;
        }
      }
      bound.insert(alias);
      // Filters: everything now fully bound.
      for (size_t p = 0; p < select_.where.size(); ++p) {
        if (used[p]) continue;
        std::set<std::string> aliases;
        CollectAliases(select_.where[p].lhs, &aliases);
        CollectAliases(select_.where[p].rhs, &aliases);
        bool ready = true;
        for (const std::string& a : aliases) {
          if (bound.count(a) == 0) ready = false;
        }
        if (ready) {
          step.filters.push_back(&select_.where[p]);
          used[p] = true;
        }
      }
      plan_.push_back(std::move(step));
    }
    for (size_t p = 0; p < select_.where.size(); ++p) {
      if (!used[p]) {
        return Status::Internal("predicate references unknown alias: " +
                                select_.where[p].ToString());
      }
    }
    return Status::OK();
  }

  Result<Value> EvalExpr(const Expr& e, const RowBinding& row) const {
    switch (e.kind) {
      case Expr::kColumn: {
        auto it = alias_index_.find(e.table);
        if (it == alias_index_.end() || row[it->second] == nullptr) {
          return Status::Internal("unbound alias " + e.table);
        }
        int col = ColumnIndex(it->second, e.column);
        if (col < 0) {
          return Status::NotFound("no column " + e.column + " in " + e.table);
        }
        return (*row[it->second])[static_cast<size_t>(col)];
      }
      case Expr::kConst:
        return ConstantToValue(e.constant, &db_->symbols());
      case Expr::kArith: {
        RAQLET_ASSIGN_OR_RETURN(Value lhs, EvalExpr(e.children[0], row));
        RAQLET_ASSIGN_OR_RETURN(Value rhs, EvalExpr(e.children[1], row));
        return EvalArith(e.op, lhs, rhs);
      }
      case Expr::kAgg:
        return Status::Internal("aggregate outside aggregation context");
    }
    return Status::Internal("unhandled expr kind");
  }

  // Extends `row` with every matching row of one step, invoking `sink`.
  // (The binding slot is restored afterwards.)
  template <typename Sink>
  Status ExtendOne(const StepPlan& step, RowBinding* row, Sink sink) {
    const Relation* rel = tables_[step.table_index].relation;

    auto try_row = [&](const Tuple& candidate) -> Status {
      if (stats_ != nullptr) ++stats_->rows_scanned;
      (*row)[step.table_index] = &candidate;
      for (const Predicate* pred : step.filters) {
        RAQLET_ASSIGN_OR_RETURN(Value lhs, EvalExpr(pred->lhs, *row));
        RAQLET_ASSIGN_OR_RETURN(Value rhs, EvalExpr(pred->rhs, *row));
        if (!CheckCmp(pred->op, lhs, rhs, db_->symbols())) {
          (*row)[step.table_index] = nullptr;
          return Status::OK();
        }
      }
      Status s = sink(*row);
      (*row)[step.table_index] = nullptr;
      return s;
    };

    if (!step.probes.empty()) {
      std::vector<int> cols;
      Tuple key;
      for (const ProbeSpec& probe : step.probes) {
        cols.push_back(probe.column);
        RAQLET_ASSIGN_OR_RETURN(Value v, EvalExpr(*probe.key_expr, *row));
        key.push_back(v);
      }
      const Relation::KeyIndex& index = rel->GetIndex(cols);
      auto it = index.find(key);
      if (it == index.end()) return Status::OK();
      for (uint32_t row_idx : it->second) {
        RAQLET_RETURN_IF_ERROR(try_row(rel->rows()[row_idx]));
      }
      return Status::OK();
    }
    for (const Tuple& candidate : rel->rows()) {
      RAQLET_RETURN_IF_ERROR(try_row(candidate));
    }
    return Status::OK();
  }

  template <typename Sink>
  Status Descend(size_t step_index, RowBinding* row, Sink sink) {
    if (step_index == plan_.size()) {
      RAQLET_ASSIGN_OR_RETURN(bool keep, PassesNotExists(*row));
      if (!keep) return Status::OK();
      return sink(*row);
    }
    return ExtendOne(plan_[step_index], row, [&](const RowBinding& r) {
      RowBinding copy = r;
      return Descend(step_index + 1, &copy, sink);
    });
  }

  Result<bool> PassesNotExists(const RowBinding& row) const {
    for (const NotExists& ne : select_.not_exists) {
      RAQLET_ASSIGN_OR_RETURN(const Relation* rel, resolver_(ne.table));
      std::vector<int> cols;
      Tuple key;
      for (const auto& [column, expr] : ne.equalities) {
        int col = rel->schema().ColumnIndex(column);
        if (col < 0) {
          return Status::NotFound("no column " + column + " in " + ne.table);
        }
        cols.push_back(col);
        RAQLET_ASSIGN_OR_RETURN(Value v, EvalExpr(expr, row));
        key.push_back(v);
      }
      bool exists;
      if (cols.empty()) {
        exists = !rel->empty();
      } else {
        const Relation::KeyIndex& index = rel->GetIndex(cols);
        exists = index.find(key) != index.end();
      }
      if (exists) return false;
    }
    return true;
  }

  Result<Tuple> Project(const RowBinding& row) const {
    Tuple out;
    out.reserve(select_.items.size());
    for (const SelectItem& item : select_.items) {
      RAQLET_ASSIGN_OR_RETURN(Value v, EvalExpr(item.expr, row));
      out.push_back(v);
    }
    return out;
  }

  Status EvaluateWithAggregation(Relation* out) {
    struct AggState {
      int64_t count = 0;
      double sum = 0.0;
      bool any_float = false;
      std::optional<Value> min;
      std::optional<Value> max;
    };
    // Group key -> state, in first-seen order for determinism.
    std::map<Tuple, AggState> groups;

    int agg_pos = -1;
    for (size_t i = 0; i < select_.items.size(); ++i) {
      if (select_.items[i].expr.kind == Expr::kAgg) {
        agg_pos = static_cast<int>(i);
      }
    }
    if (agg_pos < 0) {
      return Status::Internal("aggregation context without aggregate item");
    }
    const Expr& agg_expr = select_.items[static_cast<size_t>(agg_pos)].expr;

    auto accumulate = [&](const RowBinding& row) -> Status {
      Tuple key;
      for (size_t i = 0; i < select_.items.size(); ++i) {
        if (static_cast<int>(i) == agg_pos) continue;
        RAQLET_ASSIGN_OR_RETURN(Value v, EvalExpr(select_.items[i].expr, row));
        key.push_back(v);
      }
      AggState& state = groups[key];
      state.count += 1;
      if (!agg_expr.children.empty()) {
        RAQLET_ASSIGN_OR_RETURN(Value v, EvalExpr(agg_expr.children[0], row));
        state.any_float |= v.kind() == ValueType::kFloat;
        state.sum += v.NumericValue();
        if (!state.min.has_value() ||
            CompareValues(v, *state.min, db_->symbols()) < 0) {
          state.min = v;
        }
        if (!state.max.has_value() ||
            CompareValues(v, *state.max, db_->symbols()) > 0) {
          state.max = v;
        }
      }
      return Status::OK();
    };

    RowBinding binding(tables_.size(), nullptr);
    RAQLET_RETURN_IF_ERROR(Descend(0, &binding, accumulate));

    for (const auto& [key, state] : groups) {
      Value result;
      switch (agg_expr.agg) {
        case dlir::AggFunc::kCount:
          result = Value::Number(state.count);
          break;
        case dlir::AggFunc::kSum:
          result = state.any_float
                       ? Value::Float(state.sum)
                       : Value::Number(static_cast<int64_t>(state.sum));
          break;
        case dlir::AggFunc::kMin:
          if (!state.min.has_value()) continue;
          result = *state.min;
          break;
        case dlir::AggFunc::kMax:
          if (!state.max.has_value()) continue;
          result = *state.max;
          break;
        case dlir::AggFunc::kAvg:
          result = Value::Float(
              state.count == 0 ? 0.0
                               : state.sum / static_cast<double>(state.count));
          break;
      }
      Tuple tuple;
      size_t ki = 0;
      for (size_t i = 0; i < select_.items.size(); ++i) {
        if (static_cast<int>(i) == agg_pos) {
          tuple.push_back(result);
        } else {
          tuple.push_back(key[ki++]);
        }
      }
      out->Insert(std::move(tuple));
    }
    return Status::OK();
  }

  const Select& select_;
  const TableResolver& resolver_;
  Database* db_;
  SqlMode mode_;
  SqlStats* stats_;

  std::vector<BoundTable> tables_;
  std::map<std::string, size_t> alias_index_;
  std::vector<StepPlan> plan_;
};

RelationSchema CteSchema(const Cte& cte) {
  RelationSchema schema;
  schema.name = cte.name;
  for (const std::string& col : cte.columns) {
    schema.columns.push_back(Column{col, ValueType::kNumber});
  }
  return schema;
}

}  // namespace

Result<ResultTable> SqlEngine::Run(const SqirProgram& program, Database* db,
                                   SqlStats* stats) const {
  std::map<std::string, std::unique_ptr<Relation>> cte_store;

  TableResolver resolver =
      [&](const std::string& name) -> Result<const Relation*> {
    auto it = cte_store.find(name);
    if (it != cte_store.end()) return it->second.get();
    RAQLET_ASSIGN_OR_RETURN(const Relation* rel, db->GetRelation(name));
    return rel;
  };

  for (const Cte& cte : program.ctes) {
    auto rel = std::make_unique<Relation>(CteSchema(cte));

    // Partition branches: a branch is recursive iff it references the CTE
    // itself in its FROM list.
    std::vector<const Select*> base;
    std::vector<const Select*> recursive;
    for (const Select& branch : cte.branches) {
      bool self_ref = false;
      for (const TableRef& ref : branch.from) {
        if (ref.table == cte.name) self_ref = true;
      }
      (self_ref ? recursive : base).push_back(&branch);
    }
    if (!recursive.empty() && !cte.recursive) {
      return Status::InvalidArgument("CTE '" + cte.name +
                                     "' is self-referencing but not marked "
                                     "recursive");
    }

    for (const Select* branch : base) {
      SelectEvaluator eval(*branch, resolver, db, options_.mode, stats);
      RAQLET_RETURN_IF_ERROR(eval.Evaluate(rel.get()));
    }

    if (!recursive.empty()) {
      // SQL:1999 working-table iteration.
      RelationSchema working_schema = CteSchema(cte);
      auto working = std::make_unique<Relation>(working_schema);
      for (const Tuple& row : rel->rows()) working->Insert(row);

      size_t iterations = 0;
      while (!working->empty()) {
        ++iterations;
        if (stats != nullptr) ++stats->recursive_iterations;
        if (options_.max_recursive_iterations != 0 &&
            iterations > options_.max_recursive_iterations) {
          return Status::Unsupported(
              "recursive CTE '" + cte.name + "' exceeded " +
              std::to_string(options_.max_recursive_iterations) +
              " iterations");
        }
        TableResolver rec_resolver =
            [&](const std::string& name) -> Result<const Relation*> {
          if (name == cte.name) return working.get();
          return resolver(name);
        };
        Relation produced(working_schema);
        for (const Select* branch : recursive) {
          SelectEvaluator eval(*branch, rec_resolver, db, options_.mode,
                               stats);
          RAQLET_RETURN_IF_ERROR(eval.Evaluate(&produced));
        }
        auto next_working = std::make_unique<Relation>(working_schema);
        for (const Tuple& row : produced.rows()) {
          if (rel->Insert(row)) next_working->Insert(row);
        }
        working = std::move(next_working);
      }
    }

    if (stats != nullptr) stats->rows_materialized += rel->size();
    cte_store.emplace(cte.name, std::move(rel));
  }

  // Final select.
  RelationSchema out_schema;
  out_schema.name = "__result__";
  for (const sqir::SelectItem& item : program.final_select.items) {
    out_schema.columns.push_back(Column{item.alias, ValueType::kNumber});
  }
  Relation out_rel(out_schema);
  SelectEvaluator eval(program.final_select, resolver, db, options_.mode,
                       stats);
  RAQLET_RETURN_IF_ERROR(eval.Evaluate(&out_rel));

  ResultTable result;
  for (const sqir::SelectItem& item : program.final_select.items) {
    result.columns.push_back(item.alias);
  }
  result.rows = out_rel.rows();
  return result;
}

}  // namespace raqlet::engine
