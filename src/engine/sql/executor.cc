#include "engine/sql/executor.h"

#include <algorithm>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <unordered_map>
#include <utility>
#include <vector>

#include "obs/trace.h"
#include "runtime/failpoint.h"
#include "runtime/thread_pool.h"

namespace raqlet::engine {

namespace {

using sqir::Cte;
using sqir::Expr;
using sqir::NotExists;
using sqir::Predicate;
using sqir::Select;
using sqir::SelectItem;
using sqir::SqirProgram;
using sqir::TableRef;

// Resolves a table name to a relation (CTE store first, then base tables).
using TableResolver =
    std::function<Result<const Relation*>(const std::string&)>;

void CollectAliases(const Expr& e, std::set<std::string>* aliases) {
  if (e.kind == Expr::kColumn) aliases->insert(e.table);
  for (const Expr& child : e.children) CollectAliases(child, aliases);
}

// One join step of the (shared) plan: scan or probe `table_index`, then
// apply `filters`.
struct ProbeSpec {
  int column = 0;
  const Expr* key_expr = nullptr;  // evaluated against earlier tables
};

struct StepPlan {
  size_t table_index = 0;
  const Relation* rel = nullptr;
  std::vector<ProbeSpec> probes;
  std::vector<int> probe_cols;  // probe columns, prebuilt for the index
  const Relation::KeyIndex* index = nullptr;  // prebuilt when probes exist
  std::vector<const Predicate*> filters;
  // Vectorized metadata: batch slots filled by earlier steps (gathered
  // through the match selection on extension) and the (relation column,
  // slot) pairs this step's table materializes.
  std::vector<size_t> prior_slots;
  std::vector<std::pair<int, size_t>> new_cols;
  // Zero-copy views of every column of `rel`, borrowed at plan time.
  // Valid for the whole evaluation: the only relation mutated during it is
  // the output, and merges happen after the pipeline's reads complete.
  std::vector<Relation::ColumnView> rel_cols;
};

// Prebuilt NOT EXISTS anti-join: resolved relation, key columns, index.
struct NePlan {
  const NotExists* ne = nullptr;
  const Relation* rel = nullptr;
  std::vector<int> cols;
  const Relation::KeyIndex* index = nullptr;  // null when cols is empty
};

// One column of intermediate join bindings: either values the pipeline
// owns (gathered through a match selection or computed) or a zero-copy
// view borrowed straight from a Relation's column storage (the leading
// full-table scan). The flag is explicit — an empty owned vector is a
// legal filled column of zero rows, not a view marker.
struct BatchColumn {
  std::vector<Value> owned;
  Relation::ColumnView view;
  bool is_view = false;
  size_t size() const { return is_view ? view.size() : owned.size(); }
  Value at(size_t i) const { return is_view ? view.at(i) : owned[i]; }
  void clear() {
    owned.clear();
    view = Relation::ColumnView();
    is_view = false;
  }
};

// Columnar batch of intermediate join bindings: one column per referenced
// table column (assigned a dense "slot"), rows are implicit. Slots of
// tables not yet joined hold unfilled (zero-size, non-view) columns.
struct Batch {
  std::vector<BatchColumn> cols;  // indexed by slot
  size_t rows = 0;
};

// An expression evaluated over a Batch: either a borrowed batch column
// (one value per batch row) or a broadcast scalar. `at` re-boxes by value
// — the underlying column may be an unboxed storage view.
struct BatchCol {
  const BatchColumn* col = nullptr;
  Value scalar;
  Value at(size_t i) const { return col != nullptr ? col->at(i) : scalar; }
};

// Minimum step-0 scan rows per parallel chunk; below this the pipeline
// runs as a single batch even when a pool is available.
constexpr size_t kChunkRows = 64;

// Evaluates one SELECT block against resolved tables.
class SelectEvaluator {
 public:
  // `lead_scan`, when given, is preferred as the leading scan on join-order
  // ties (the recursive working table: scanning it and probing the stable
  // tables' cached indexes beats rebuilding an index over it every round).
  // `delta_begin`/`delta_end` additionally restrict the leading scan to
  // that row range of `lead_scan` and force it to be the first plan step —
  // the vectorized semi-naive loop scans the previous round's suffix of
  // the total relation in place instead of materializing a working table.
  SelectEvaluator(const Select& select, const TableResolver& resolver,
                  Database* db, SqlMode mode, SqlStats* stats,
                  runtime::ThreadPool* pool,
                  const Relation* lead_scan = nullptr,
                  size_t delta_begin = 0, size_t delta_end = kNoDelta,
                  obs::SqlCteMetrics* cte_metrics = nullptr,
                  const runtime::QueryGuard* guard = nullptr)
      : select_(select), resolver_(resolver), db_(db), mode_(mode),
        stats_(stats), pool_(pool), lead_scan_(lead_scan),
        delta_begin_(delta_begin), delta_end_(delta_end),
        cte_metrics_(cte_metrics), guard_(guard) {}

  static constexpr size_t kNoDelta = static_cast<size_t>(-1);

  // Appends result tuples to `out` (deduplicated by the relation).
  Status Evaluate(Relation* out) {
    RAQLET_RETURN_IF_ERROR(Bind());
    RAQLET_RETURN_IF_ERROR(Plan());
    if (trivially_false_) return Status::OK();
    // Per-step accumulators exist only when a sink is attached, so the
    // hot loops' null checks keep the metrics-off path counter-free.
    if (cte_metrics_ != nullptr) {
      step_totals_.assign(plan_.size(), obs::SqlStepMetrics{});
      for (size_t s = 0; s < plan_.size(); ++s) {
        step_totals_[s].relation = plan_[s].rel->schema().name;
      }
    }
    Status status = EvaluateDispatch(out);
    if (status.ok()) MergeStepMetrics();
    return status;
  }

 private:
  Status EvaluateDispatch(Relation* out) {
    if (!select_.group_by.empty() || !agg_item_pos_.empty()) {
      return EvaluateWithAggregation(out);
    }
    if (mode_ == SqlMode::kVectorized && !plan_.empty()) {
      return EvaluateVectorized(out);
    }
    // Tuple pipeline (also the trivial no-FROM path of both modes).
    // The guard poll amortizes to one relaxed load per emitted row batch
    // (kChunkRows), matching the vectorized path's per-chunk cadence.
    size_t rows_since_check = 0;
    RowBinding binding(tables_.size(), nullptr);
    return Descend(0, &binding, [&](const RowBinding& row) -> Status {
      if (guard_ != nullptr && ++rows_since_check >= kChunkRows) {
        rows_since_check = 0;
        RAQLET_RETURN_IF_ERROR(guard_->Check());
      }
      RAQLET_ASSIGN_OR_RETURN(Tuple tuple, Project(row));
      RAQLET_ASSIGN_OR_RETURN(bool fresh, out->Insert(std::move(tuple)));
      RecordDedup(1, fresh ? 1 : 0);
      return Status::OK();
    });
  }

  // Folds this evaluation's per-step counters into the CTE sink, keyed by
  // relation name in first-seen order (branches of one CTE plan different
  // join orders, so position alone is not a stable key).
  void MergeStepMetrics() {
    if (cte_metrics_ == nullptr) return;
    for (const obs::SqlStepMetrics& step : step_totals_) {
      obs::SqlStepMetrics* dst = nullptr;
      for (obs::SqlStepMetrics& existing : cte_metrics_->steps) {
        if (existing.relation == step.relation) {
          dst = &existing;
          break;
        }
      }
      if (dst == nullptr) {
        cte_metrics_->steps.emplace_back();
        dst = &cte_metrics_->steps.back();
        dst->relation = step.relation;
      }
      dst->batches += step.batches;
      dst->rows_in += step.rows_in;
      dst->probes += step.probes;
      dst->rows_matched += step.rows_matched;
      dst->rows_out += step.rows_out;
    }
  }

  void RecordDedup(size_t attempts, size_t inserted) {
    if (cte_metrics_ == nullptr) return;
    cte_metrics_->dedup_attempts += attempts;
    cte_metrics_->dedup_inserted += inserted;
  }

 private:
  struct BoundTable {
    std::string alias;
    const Relation* relation = nullptr;
  };
  using RowBinding = std::vector<const Tuple*>;

  Status Bind() {
    for (const TableRef& ref : select_.from) {
      RAQLET_ASSIGN_OR_RETURN(const Relation* rel, resolver_(ref.table));
      tables_.push_back(BoundTable{ref.alias, rel});
      alias_index_[ref.alias] = tables_.size() - 1;
    }
    for (size_t i = 0; i < select_.items.size(); ++i) {
      if (select_.items[i].expr.kind == Expr::kAgg) {
        agg_item_pos_.push_back(i);
      }
    }
    return Status::OK();
  }

  int ColumnIndex(size_t table_index, const std::string& column) const {
    return tables_[table_index].relation->schema().ColumnIndex(column);
  }

  // Builds the per-step probe/filter plan. Join order is chosen greedily:
  // the next table is the one with the most equality predicates usable as
  // index probes given the tables already joined (ties: smaller relation)
  // — this avoids the cross products a literal FROM-order join would
  // build for star-shaped rule bodies.
  Status Plan() {
    std::vector<bool> used(select_.where.size(), false);
    std::vector<bool> placed(tables_.size(), false);
    std::set<std::string> bound;

    // Alias-free (constant-only) predicates can't be attached to a join
    // step — with an empty FROM list there are no steps at all — so they
    // are evaluated exactly once up front.
    RowBinding no_rows(tables_.size(), nullptr);
    for (size_t p = 0; p < select_.where.size(); ++p) {
      const Predicate& pred = select_.where[p];
      std::set<std::string> aliases;
      CollectAliases(pred.lhs, &aliases);
      CollectAliases(pred.rhs, &aliases);
      if (!aliases.empty()) continue;
      RAQLET_ASSIGN_OR_RETURN(Value lhs, EvalExpr(pred.lhs, no_rows));
      RAQLET_ASSIGN_OR_RETURN(Value rhs, EvalExpr(pred.rhs, no_rows));
      if (!CheckCmp(pred.op, lhs, rhs, db_->symbols())) {
        trivially_false_ = true;
      }
      used[p] = true;
    }

    auto probe_score = [&](size_t candidate) {
      const std::string& alias = tables_[candidate].alias;
      int score = 0;
      for (size_t p = 0; p < select_.where.size(); ++p) {
        if (used[p]) continue;
        const Predicate& pred = select_.where[p];
        if (pred.op != dlir::CmpOp::kEq) continue;
        auto counts = [&](const Expr& col_side, const Expr& key_side) {
          if (col_side.kind != Expr::kColumn || col_side.table != alias) {
            return false;
          }
          std::set<std::string> key_aliases;
          CollectAliases(key_side, &key_aliases);
          for (const std::string& a : key_aliases) {
            if (bound.count(a) == 0) return false;
          }
          return true;
        };
        if (counts(pred.lhs, pred.rhs) || counts(pred.rhs, pred.lhs)) ++score;
      }
      return score;
    };

    const bool forced_lead = delta_end_ != kNoDelta;
    for (size_t n = 0; n < tables_.size(); ++n) {
      size_t i = 0;
      bool chosen = false;
      if (n == 0 && forced_lead) {
        // Semi-naive delta scan: the recursive table leads uncondition-
        // ally so its scan range can be restricted to the last round's
        // suffix.
        for (size_t candidate = 0; candidate < tables_.size(); ++candidate) {
          if (tables_[candidate].relation == lead_scan_) {
            i = candidate;
            chosen = true;
            break;
          }
        }
      }
      if (!chosen) {
        int best_score = -1;
        size_t best_size = 0;
        bool best_lead = false;
        for (size_t candidate = 0; candidate < tables_.size(); ++candidate) {
          if (placed[candidate]) continue;
          int score = probe_score(candidate);
          size_t size = tables_[candidate].relation->size();
          bool lead = tables_[candidate].relation == lead_scan_;
          if (score > best_score ||
              (score == best_score && !best_lead &&
               (lead || size < best_size))) {
            i = candidate;
            best_score = score;
            best_size = size;
            best_lead = lead;
          }
        }
      }
      placed[i] = true;

      StepPlan step;
      step.table_index = i;
      step.rel = tables_[i].relation;
      const std::string& alias = tables_[i].alias;
      // Probes: eq predicates with a bare column of this table on one side
      // and the other side computable from earlier tables/constants. The
      // forced delta step takes none (a probe would bypass the scan-range
      // restriction); its eq predicates become step-0 filters instead.
      for (size_t p = 0;
           !(forced_lead && n == 0) && p < select_.where.size(); ++p) {
        if (used[p]) continue;
        const Predicate& pred = select_.where[p];
        if (pred.op != dlir::CmpOp::kEq) continue;
        auto try_probe = [&](const Expr& col_side, const Expr& key_side) {
          if (col_side.kind != Expr::kColumn || col_side.table != alias) {
            return false;
          }
          std::set<std::string> key_aliases;
          CollectAliases(key_side, &key_aliases);
          for (const std::string& a : key_aliases) {
            if (bound.count(a) == 0) return false;
          }
          int col = ColumnIndex(i, col_side.column);
          if (col < 0) return false;
          step.probes.push_back(ProbeSpec{col, &key_side});
          return true;
        };
        if (try_probe(pred.lhs, pred.rhs) || try_probe(pred.rhs, pred.lhs)) {
          used[p] = true;
        }
      }
      bound.insert(alias);
      // Filters: everything now fully bound.
      for (size_t p = 0; p < select_.where.size(); ++p) {
        if (used[p]) continue;
        std::set<std::string> aliases;
        CollectAliases(select_.where[p].lhs, &aliases);
        CollectAliases(select_.where[p].rhs, &aliases);
        bool ready = true;
        for (const std::string& a : aliases) {
          if (bound.count(a) == 0) ready = false;
        }
        if (ready) {
          step.filters.push_back(&select_.where[p]);
          used[p] = true;
        }
      }
      plan_.push_back(std::move(step));
    }
    for (size_t p = 0; p < select_.where.size(); ++p) {
      if (!used[p]) {
        return Status::Internal("predicate references unknown alias: " +
                                select_.where[p].ToString());
      }
    }

    // Prebuild the probe indexes (thread-safe EnsureIndex, called before
    // any worker runs) so the join loops only ever probe.
    for (StepPlan& step : plan_) {
      if (step.probes.empty()) continue;
      for (const ProbeSpec& probe : step.probes) {
        step.probe_cols.push_back(probe.column);
      }
      step.index = step.rel->EnsureIndex(step.probe_cols);
    }

    // Resolve NOT EXISTS anti-joins once, up front.
    for (const NotExists& ne : select_.not_exists) {
      NePlan plan;
      plan.ne = &ne;
      RAQLET_ASSIGN_OR_RETURN(plan.rel, resolver_(ne.table));
      for (const auto& [column, expr] : ne.equalities) {
        (void)expr;
        int col = plan.rel->schema().ColumnIndex(column);
        if (col < 0) {
          return Status::NotFound("no column " + column + " in " + ne.table);
        }
        plan.cols.push_back(col);
      }
      if (!plan.cols.empty()) {
        plan.index = plan.rel->EnsureIndex(plan.cols);
      }
      ne_plans_.push_back(std::move(plan));
    }

    PreinternConstants();

    if (mode_ == SqlMode::kVectorized && !plan_.empty()) {
      // Borrow every table's column storage once, up front (cheap view
      // handles; see the Relation borrowing contract). The pipeline reads
      // finish before results merge into the output relation, so the
      // views stay valid even when a recursive CTE scans itself.
      for (StepPlan& step : plan_) {
        step.rel_cols.reserve(step.rel->arity());
        for (size_t c = 0; c < step.rel->arity(); ++c) {
          step.rel_cols.push_back(step.rel->Column(c));
        }
      }
      return BuildBatchSlots();
    }
    return Status::OK();
  }

  // Interns every constant of the SELECT once, so expression evaluation
  // never mutates the symbol table afterwards (worker threads evaluate
  // expressions concurrently during the parallel batch pipeline).
  void PreinternConstants() {
    auto walk = [&](auto&& self, const Expr& e) -> void {
      if (e.kind == Expr::kConst) {
        const_values_.emplace(&e, ConstantToValue(e.constant, &db_->symbols()));
      }
      for (const Expr& child : e.children) self(self, child);
    };
    for (const SelectItem& item : select_.items) walk(walk, item.expr);
    for (const Predicate& pred : select_.where) {
      walk(walk, pred.lhs);
      walk(walk, pred.rhs);
    }
    for (const NotExists& ne : select_.not_exists) {
      for (const auto& [column, expr] : ne.equalities) {
        (void)column;
        walk(walk, expr);
      }
    }
    for (const Expr& e : select_.group_by) walk(walk, e);
  }

  // Assigns a dense batch slot to every (table, column) pair referenced by
  // the plan's probe keys and filters, the select items, the NOT EXISTS
  // keys and GROUP BY — the columns the batch pipeline materializes.
  Status BuildBatchSlots() {
    slot_of_.assign(tables_.size(), std::map<int, size_t>());
    for (const StepPlan& step : plan_) {
      for (const ProbeSpec& probe : step.probes) {
        RAQLET_RETURN_IF_ERROR(CollectSlots(*probe.key_expr));
      }
      for (const Predicate* pred : step.filters) {
        RAQLET_RETURN_IF_ERROR(CollectSlots(pred->lhs));
        RAQLET_RETURN_IF_ERROR(CollectSlots(pred->rhs));
      }
    }
    for (const SelectItem& item : select_.items) {
      RAQLET_RETURN_IF_ERROR(CollectSlots(item.expr));
    }
    for (const NotExists& ne : select_.not_exists) {
      for (const auto& [column, expr] : ne.equalities) {
        (void)column;
        RAQLET_RETURN_IF_ERROR(CollectSlots(expr));
      }
    }
    for (const Expr& e : select_.group_by) {
      RAQLET_RETURN_IF_ERROR(CollectSlots(e));
    }
    // Per-step materialization lists: which slots exist before the step
    // (to gather through the match selection) and which it fills.
    std::vector<size_t> live;
    for (StepPlan& step : plan_) {
      step.prior_slots = live;
      for (const auto& [col, slot] : slot_of_[step.table_index]) {
        step.new_cols.emplace_back(col, slot);
        live.push_back(slot);
      }
    }
    return Status::OK();
  }

  Status CollectSlots(const Expr& e) {
    if (e.kind == Expr::kColumn) {
      auto it = alias_index_.find(e.table);
      if (it == alias_index_.end()) {
        return Status::Internal("unbound alias " + e.table);
      }
      int col = ColumnIndex(it->second, e.column);
      if (col < 0) {
        return Status::NotFound("no column " + e.column + " in " + e.table);
      }
      std::map<int, size_t>& slots = slot_of_[it->second];
      if (slots.find(col) == slots.end()) {
        slots.emplace(col, slot_count_++);
      }
    }
    for (const Expr& child : e.children) {
      RAQLET_RETURN_IF_ERROR(CollectSlots(child));
    }
    return Status::OK();
  }

  Result<Value> EvalExpr(const Expr& e, const RowBinding& row) const {
    switch (e.kind) {
      case Expr::kColumn: {
        auto it = alias_index_.find(e.table);
        if (it == alias_index_.end() || row[it->second] == nullptr) {
          return Status::Internal("unbound alias " + e.table);
        }
        int col = ColumnIndex(it->second, e.column);
        if (col < 0) {
          return Status::NotFound("no column " + e.column + " in " + e.table);
        }
        return (*row[it->second])[static_cast<size_t>(col)];
      }
      case Expr::kConst: {
        auto it = const_values_.find(&e);
        if (it != const_values_.end()) return it->second;
        return ConstantToValue(e.constant, &db_->symbols());
      }
      case Expr::kArith: {
        RAQLET_ASSIGN_OR_RETURN(Value lhs, EvalExpr(e.children[0], row));
        RAQLET_ASSIGN_OR_RETURN(Value rhs, EvalExpr(e.children[1], row));
        return EvalArith(e.op, lhs, rhs);
      }
      case Expr::kAgg:
        return Status::Internal("aggregate outside aggregation context");
    }
    return Status::Internal("unhandled expr kind");
  }

  // ---------------------------------------------------------------------
  // Tuple pipeline (depth-first, row at a time)
  // ---------------------------------------------------------------------

  // Extends `row` with every matching row of one step, invoking `sink`.
  // (The binding slot is restored afterwards.)
  template <typename Sink>
  Status ExtendOne(const StepPlan& step, RowBinding* row, Sink sink) {
    const Relation* rel = step.rel;
    // Tuple mode works in unit batches: one binding row per invocation.
    obs::SqlStepMetrics* sm =
        step_totals_.empty() ? nullptr : &step_totals_[&step - plan_.data()];
    if (sm != nullptr) {
      ++sm->batches;
      ++sm->rows_in;
      if (!step.probes.empty()) ++sm->probes;
    }

    auto try_row = [&](const Tuple& candidate) -> Status {
      if (stats_ != nullptr) ++stats_->rows_scanned;
      if (sm != nullptr) ++sm->rows_matched;
      (*row)[step.table_index] = &candidate;
      for (const Predicate* pred : step.filters) {
        RAQLET_ASSIGN_OR_RETURN(Value lhs, EvalExpr(pred->lhs, *row));
        RAQLET_ASSIGN_OR_RETURN(Value rhs, EvalExpr(pred->rhs, *row));
        if (!CheckCmp(pred->op, lhs, rhs, db_->symbols())) {
          (*row)[step.table_index] = nullptr;
          return Status::OK();
        }
      }
      if (sm != nullptr) ++sm->rows_out;
      Status s = sink(*row);
      (*row)[step.table_index] = nullptr;
      return s;
    };

    if (!step.probes.empty()) {
      probe_key_.clear();
      for (const ProbeSpec& probe : step.probes) {
        RAQLET_ASSIGN_OR_RETURN(Value v, EvalExpr(*probe.key_expr, *row));
        probe_key_.push_back(v);
      }
      auto it = step.index->find(probe_key_);
      if (it == step.index->end()) return Status::OK();
      for (uint32_t row_idx : it->second) {
        RAQLET_RETURN_IF_ERROR(try_row(rel->rows()[row_idx]));
      }
      return Status::OK();
    }
    for (const Tuple& candidate : rel->rows()) {
      RAQLET_RETURN_IF_ERROR(try_row(candidate));
    }
    return Status::OK();
  }

  template <typename Sink>
  Status Descend(size_t step_index, RowBinding* row, Sink sink) {
    if (step_index == plan_.size()) {
      RAQLET_ASSIGN_OR_RETURN(bool keep, PassesNotExists(*row));
      if (!keep) return Status::OK();
      return sink(*row);
    }
    return ExtendOne(plan_[step_index], row, [&](const RowBinding& r) {
      RowBinding copy = r;
      return Descend(step_index + 1, &copy, sink);
    });
  }

  Result<bool> PassesNotExists(const RowBinding& row) const {
    for (const NePlan& plan : ne_plans_) {
      bool exists;
      if (plan.cols.empty()) {
        exists = !plan.rel->empty();
      } else {
        Tuple key;
        key.reserve(plan.cols.size());
        for (const auto& [column, expr] : plan.ne->equalities) {
          (void)column;
          RAQLET_ASSIGN_OR_RETURN(Value v, EvalExpr(expr, row));
          key.push_back(v);
        }
        exists = plan.index->find(key) != plan.index->end();
      }
      if (exists) return false;
    }
    return true;
  }

  Result<Tuple> Project(const RowBinding& row) const {
    Tuple out;
    out.reserve(select_.items.size());
    for (const SelectItem& item : select_.items) {
      RAQLET_ASSIGN_OR_RETURN(Value v, EvalExpr(item.expr, row));
      out.push_back(v);
    }
    return out;
  }

  // ---------------------------------------------------------------------
  // Vectorized pipeline (column batches, breadth-first)
  // ---------------------------------------------------------------------

  Result<BatchCol> EvalExprBatch(const Expr& e, const Batch& b,
                                 std::deque<BatchColumn>* scratch) const {
    switch (e.kind) {
      case Expr::kColumn: {
        auto it = alias_index_.find(e.table);
        if (it == alias_index_.end()) {
          return Status::Internal("unbound alias " + e.table);
        }
        int col = ColumnIndex(it->second, e.column);
        auto slot_it = slot_of_[it->second].find(col);
        if (col < 0 || slot_it == slot_of_[it->second].end()) {
          return Status::NotFound("no column " + e.column + " in " + e.table);
        }
        BatchCol out;
        out.col = &b.cols[slot_it->second];
        return out;
      }
      case Expr::kConst: {
        auto it = const_values_.find(&e);
        if (it == const_values_.end()) {
          // Every constant is interned by PreinternConstants before the
          // batch pipeline runs; falling back to ConstantToValue here
          // would mutate the SymbolTable from worker threads. Fail loudly
          // if a new Expr source is ever missed.
          return Status::Internal("constant not pre-interned: " +
                                  e.ToString());
        }
        BatchCol out;
        out.scalar = it->second;
        return out;
      }
      case Expr::kArith: {
        RAQLET_ASSIGN_OR_RETURN(BatchCol lhs,
                                EvalExprBatch(e.children[0], b, scratch));
        RAQLET_ASSIGN_OR_RETURN(BatchCol rhs,
                                EvalExprBatch(e.children[1], b, scratch));
        if (lhs.col == nullptr && rhs.col == nullptr) {
          RAQLET_ASSIGN_OR_RETURN(Value v,
                                  EvalArith(e.op, lhs.scalar, rhs.scalar));
          BatchCol out;
          out.scalar = v;
          return out;
        }
        scratch->emplace_back();
        BatchColumn& dst = scratch->back();
        dst.owned.resize(b.rows);
        for (size_t i = 0; i < b.rows; ++i) {
          RAQLET_ASSIGN_OR_RETURN(dst.owned[i],
                                  EvalArith(e.op, lhs.at(i), rhs.at(i)));
        }
        BatchCol out;
        out.col = &dst;
        return out;
      }
      case Expr::kAgg:
        return Status::Internal("aggregate outside aggregation context");
    }
    return Status::Internal("unhandled expr kind");
  }

  // Drops batch rows whose keep flag is 0, compacting every live column
  // (stable). Owned columns compact in place; borrowed storage views
  // materialize their survivors into owned values (first copy those rows
  // ever see).
  void CompactBatch(Batch* b, const std::vector<char>& keep) const {
    size_t kept = 0;
    for (size_t i = 0; i < b->rows; ++i) kept += keep[i] != 0;
    if (kept == b->rows) return;
    for (BatchColumn& col : b->cols) {
      if (col.size() == 0) continue;  // unfilled slot
      if (col.is_view) {
        col.owned.clear();
        col.owned.reserve(kept);
        for (size_t i = 0; i < b->rows; ++i) {
          if (keep[i]) col.owned.push_back(col.view.at(i));
        }
        col.view = Relation::ColumnView();
        col.is_view = false;
        continue;
      }
      size_t w = 0;
      for (size_t i = 0; i < b->rows; ++i) {
        if (keep[i]) col.owned[w++] = col.owned[i];
      }
      col.owned.resize(w);
    }
    b->rows = kept;
  }

  // One batch join step: evaluate the probe keys column-at-a-time, probe
  // the prebuilt hash index once per batch of keys (or scan `[begin,end)`
  // of the table when there are no probes), gather the surviving prior
  // columns through the match selection, materialize this table's
  // columns, and apply the step's filters as selection masks. A leading
  // scan does not gather at all: it borrows the table's column storage as
  // zero-copy views — values are first copied only when a filter compacts
  // or a later step gathers through its match selection.
  Status ExtendBatch(const StepPlan& step, size_t begin, size_t end,
                     Batch* batch, size_t* scanned,
                     obs::SqlStepMetrics* sm) const {
    Batch in = std::move(*batch);
    Batch out;
    out.cols.resize(slot_count_);
    std::deque<BatchColumn> scratch;
    if (sm != nullptr) {
      ++sm->batches;
      sm->rows_in += in.rows;
      if (!step.probes.empty()) sm->probes += in.rows;
    }
    if (!step.probes.empty()) {
      std::vector<uint32_t> src;    // batch row of each match
      std::vector<uint32_t> match;  // table row of each match
      std::vector<BatchCol> keys;
      keys.reserve(step.probes.size());
      for (const ProbeSpec& probe : step.probes) {
        RAQLET_ASSIGN_OR_RETURN(BatchCol key,
                                EvalExprBatch(*probe.key_expr, in, &scratch));
        keys.push_back(key);
      }
      Tuple key(step.probes.size());
      for (size_t i = 0; i < in.rows; ++i) {
        for (size_t k = 0; k < keys.size(); ++k) key[k] = keys[k].at(i);
        auto it = step.index->find(key);
        if (it == step.index->end()) continue;
        *scanned += it->second.size();
        for (uint32_t row_idx : it->second) {
          src.push_back(static_cast<uint32_t>(i));
          match.push_back(row_idx);
        }
      }
      out.rows = src.size();
      for (size_t slot : step.prior_slots) {
        const BatchColumn& sv = in.cols[slot];
        std::vector<Value>& dst = out.cols[slot].owned;
        dst.resize(src.size());
        for (size_t k = 0; k < src.size(); ++k) dst[k] = sv.at(src[k]);
      }
      for (const auto& [col, slot] : step.new_cols) {
        const Relation::ColumnView& cv =
            step.rel_cols[static_cast<size_t>(col)];
        std::vector<Value>& dst = out.cols[slot].owned;
        dst.resize(match.size());
        for (size_t k = 0; k < match.size(); ++k) dst[k] = cv.at(match[k]);
      }
    } else {
      const size_t limit = std::min(end, step.rel->size());
      const size_t count = limit > begin ? limit - begin : 0;
      *scanned += in.rows * count;
      if (in.rows == 1 && step.prior_slots.empty()) {
        // Leading scan over the unit batch: zero-copy column borrow.
        out.rows = count;
        for (const auto& [col, slot] : step.new_cols) {
          out.cols[slot].view =
              step.rel->ColumnSlice(static_cast<size_t>(col), begin, limit);
          out.cols[slot].is_view = true;
        }
      } else {
        // Cross-join step: every batch row pairs with every table row.
        out.rows = in.rows * count;
        for (size_t slot : step.prior_slots) {
          const BatchColumn& sv = in.cols[slot];
          std::vector<Value>& dst = out.cols[slot].owned;
          dst.reserve(out.rows);
          for (size_t i = 0; i < in.rows; ++i) {
            for (size_t r = 0; r < count; ++r) dst.push_back(sv.at(i));
          }
        }
        for (const auto& [col, slot] : step.new_cols) {
          const Relation::ColumnView& cv =
              step.rel_cols[static_cast<size_t>(col)];
          std::vector<Value>& dst = out.cols[slot].owned;
          dst.reserve(out.rows);
          for (size_t i = 0; i < in.rows; ++i) {
            for (size_t r = begin; r < limit; ++r) dst.push_back(cv.at(r));
          }
        }
      }
    }

    if (sm != nullptr) sm->rows_matched += out.rows;

    // Filters compact after each predicate, so later predicates (and their
    // arithmetic) never see rows an earlier predicate already excluded —
    // same short-circuit the tuple pipeline gets per row.
    for (const Predicate* pred : step.filters) {
      if (out.rows == 0) break;
      std::deque<BatchColumn> fscratch;
      RAQLET_ASSIGN_OR_RETURN(BatchCol lhs,
                              EvalExprBatch(pred->lhs, out, &fscratch));
      RAQLET_ASSIGN_OR_RETURN(BatchCol rhs,
                              EvalExprBatch(pred->rhs, out, &fscratch));
      std::vector<char> keep(out.rows);
      for (size_t i = 0; i < out.rows; ++i) {
        keep[i] = CheckCmp(pred->op, lhs.at(i), rhs.at(i), db_->symbols());
      }
      CompactBatch(&out, keep);
    }
    if (sm != nullptr) sm->rows_out += out.rows;
    *batch = std::move(out);
    return Status::OK();
  }

  // Anti-joins the batch against every NOT EXISTS table (batched key
  // evaluation, one index probe per row, selection-mask compaction).
  Status FilterNotExistsBatch(Batch* batch) const {
    for (const NePlan& plan : ne_plans_) {
      if (batch->rows == 0) return Status::OK();
      if (plan.cols.empty()) {
        if (!plan.rel->empty()) {
          for (BatchColumn& col : batch->cols) col.clear();
          batch->rows = 0;
        }
        continue;
      }
      std::deque<BatchColumn> scratch;
      std::vector<BatchCol> keys;
      keys.reserve(plan.cols.size());
      for (const auto& [column, expr] : plan.ne->equalities) {
        (void)column;
        RAQLET_ASSIGN_OR_RETURN(BatchCol key,
                                EvalExprBatch(expr, *batch, &scratch));
        keys.push_back(key);
      }
      Tuple key(plan.cols.size());
      std::vector<char> keep(batch->rows);
      for (size_t i = 0; i < batch->rows; ++i) {
        for (size_t k = 0; k < keys.size(); ++k) key[k] = keys[k].at(i);
        keep[i] = plan.index->find(key) == plan.index->end();
      }
      CompactBatch(batch, keep);
    }
    return Status::OK();
  }

  // Runs the batch pipeline over `[begin, end)` of the leading step's scan
  // (the range is ignored by a probing first step) through every join step
  // and the NOT EXISTS filters.
  Status RunPipeline(size_t begin, size_t end, Batch* batch,
                     size_t* scanned,
                     std::vector<obs::SqlStepMetrics>* steps) const {
    batch->cols.resize(slot_count_);
    batch->rows = 1;  // unit batch: no table bound yet
    for (size_t s = 0; s < plan_.size(); ++s) {
      RAQLET_RETURN_IF_ERROR(ExtendBatch(
          plan_[s], s == 0 ? begin : 0,
          s == 0 ? end : plan_[s].rel->size(), batch, scanned,
          steps != nullptr ? &(*steps)[s] : nullptr));
      if (batch->rows == 0) return Status::OK();
    }
    return FilterNotExistsBatch(batch);
  }

  // Projects the final batch column-wise: one staged output column per
  // select item, appended to `out_cols` — the columnar merge shape
  // Relation::InsertColumns consumes without ever boxing a row tuple.
  Status ProjectBatch(const Batch& batch,
                      std::vector<std::vector<Value>>* out_cols) const {
    std::deque<BatchColumn> scratch;
    std::vector<BatchCol> cols;
    cols.reserve(select_.items.size());
    for (const SelectItem& item : select_.items) {
      RAQLET_ASSIGN_OR_RETURN(BatchCol c,
                              EvalExprBatch(item.expr, batch, &scratch));
      cols.push_back(c);
    }
    out_cols->resize(cols.size());
    for (size_t j = 0; j < cols.size(); ++j) {
      std::vector<Value>& dst = (*out_cols)[j];
      dst.reserve(dst.size() + batch.rows);
      for (size_t i = 0; i < batch.rows; ++i) dst.push_back(cols[j].at(i));
    }
    return Status::OK();
  }

  Status RunChunk(size_t begin, size_t end,
                  std::vector<std::vector<Value>>* out_cols,
                  size_t* scanned,
                  std::vector<obs::SqlStepMetrics>* steps) const {
    Batch batch;
    RAQLET_RETURN_IF_ERROR(RunPipeline(begin, end, &batch, scanned, steps));
    if (batch.rows == 0) return Status::OK();
    return ProjectBatch(batch, out_cols);
  }

  // Vectorized driver: single batch when serial, otherwise the leading
  // scan is partitioned across the pool and per-chunk outputs merge in
  // chunk order — identical rows and row order to the serial run.
  // Leading-scan range: the delta suffix when semi-naive, else the whole
  // table.
  size_t LeadScanBegin() const {
    return delta_end_ != kNoDelta ? delta_begin_ : 0;
  }
  size_t LeadScanEnd() const {
    return delta_end_ != kNoDelta ? delta_end_ : plan_.front().rel->size();
  }

  Status EvaluateVectorized(Relation* out) {
    const StepPlan& first = plan_.front();
    const size_t scan_begin = LeadScanBegin();
    const size_t scan_end = LeadScanEnd();
    const size_t scan_rows = scan_end - scan_begin;
    size_t nchunks = 1;
    if (pool_ != nullptr && first.probes.empty()) {
      const size_t max_chunks = static_cast<size_t>(pool_->num_threads()) * 4;
      nchunks = std::clamp<size_t>(scan_rows / kChunkRows, 1, max_chunks);
    }
    if (nchunks <= 1) {
      if (guard_ != nullptr) RAQLET_RETURN_IF_ERROR(guard_->Check());
      std::vector<std::vector<Value>> cols;
      size_t scanned = 0;
      RAQLET_RETURN_IF_ERROR(RunChunk(
          scan_begin, scan_end, &cols, &scanned,
          step_totals_.empty() ? nullptr : &step_totals_));
      if (stats_ != nullptr) stats_->rows_scanned += scanned;
      const size_t staged = cols.empty() ? 0 : cols.front().size();
      RAQLET_ASSIGN_OR_RETURN(size_t inserted, out->InsertColumns(&cols));
      RecordDedup(staged, inserted);
      return Status::OK();
    }
    const bool want_steps = !step_totals_.empty();
    std::vector<std::vector<std::vector<Value>>> chunk_cols(nchunks);
    std::vector<size_t> chunk_scanned(nchunks, 0);
    std::vector<std::vector<obs::SqlStepMetrics>> chunk_steps(
        nchunks, std::vector<obs::SqlStepMetrics>(
                     want_steps ? plan_.size() : 0));
    std::vector<Status> chunk_status(nchunks);
    const size_t per_chunk = (scan_rows + nchunks - 1) / nchunks;
    pool_->ParallelFor(
        nchunks,
        [&](size_t c) {
          if (guard_ != nullptr) {
            Status g = guard_->Check();
            if (!g.ok()) {
              chunk_status[c] = std::move(g);
              return;
            }
          }
          const size_t begin = scan_begin + c * per_chunk;
          const size_t end = std::min(scan_end, begin + per_chunk);
          if (begin >= end) return;
          chunk_status[c] = RunChunk(begin, end, &chunk_cols[c],
                                     &chunk_scanned[c],
                                     want_steps ? &chunk_steps[c] : nullptr);
        },
        guard_);
    for (const Status& status : chunk_status) {
      RAQLET_RETURN_IF_ERROR(status);
    }
    // Chunks skipped by a tripped guard left OK statuses and empty
    // outputs; report the trip rather than merging a partial result.
    if (guard_ != nullptr && guard_->tripped()) return guard_->TripStatus();
    for (size_t c = 0; c < nchunks; ++c) {
      if (stats_ != nullptr) stats_->rows_scanned += chunk_scanned[c];
      for (size_t s = 0; want_steps && s < plan_.size(); ++s) {
        step_totals_[s].batches += chunk_steps[c][s].batches;
        step_totals_[s].rows_in += chunk_steps[c][s].rows_in;
        step_totals_[s].probes += chunk_steps[c][s].probes;
        step_totals_[s].rows_matched += chunk_steps[c][s].rows_matched;
        step_totals_[s].rows_out += chunk_steps[c][s].rows_out;
      }
      const size_t staged =
          chunk_cols[c].empty() ? 0 : chunk_cols[c].front().size();
      RAQLET_ASSIGN_OR_RETURN(size_t inserted,
                              out->InsertColumns(&chunk_cols[c]));
      RecordDedup(staged, inserted);
    }
    return Status::OK();
  }

  // ---------------------------------------------------------------------
  // Aggregation (both modes; the vectorized path accumulates column-wise)
  // ---------------------------------------------------------------------

  struct AggState {
    int64_t count = 0;
    double sum = 0.0;
    bool any_float = false;
    std::optional<Value> min;
    std::optional<Value> max;
  };

  void UpdateAggState(AggState* state, const std::optional<Value>& v) const {
    state->count += 1;
    if (!v.has_value()) return;
    state->any_float |= v->kind() == ValueType::kFloat;
    state->sum += v->NumericValue();
    if (!state->min.has_value() ||
        CompareValues(*v, *state->min, db_->symbols()) < 0) {
      state->min = *v;
    }
    if (!state->max.has_value() ||
        CompareValues(*v, *state->max, db_->symbols()) > 0) {
      state->max = *v;
    }
  }

  // Final value of one aggregate; nullopt means "skip this group" (min/max
  // of an aggregate that never saw an argument).
  std::optional<Value> FinalizeAgg(const Expr& agg_expr,
                                   const AggState& state) const {
    switch (agg_expr.agg) {
      case dlir::AggFunc::kCount:
        return Value::Number(state.count);
      case dlir::AggFunc::kSum:
        return state.any_float
                   ? Value::Float(state.sum)
                   : Value::Number(static_cast<int64_t>(state.sum));
      case dlir::AggFunc::kMin:
        return state.min;
      case dlir::AggFunc::kMax:
        return state.max;
      case dlir::AggFunc::kAvg:
        return Value::Float(state.count == 0
                                ? 0.0
                                : state.sum /
                                      static_cast<double>(state.count));
    }
    return std::nullopt;
  }

  Status EvaluateWithAggregation(Relation* out) {
    if (agg_item_pos_.empty()) {
      return Status::Internal("aggregation context without aggregate item");
    }
    // Group key (the non-aggregate items, in item order) -> one state per
    // aggregate item, in first-seen order for determinism.
    std::map<Tuple, std::vector<AggState>> groups;

    std::vector<bool> is_agg(select_.items.size(), false);
    for (size_t pos : agg_item_pos_) is_agg[pos] = true;

    if (mode_ == SqlMode::kVectorized && !plan_.empty()) {
      // Batched accumulate over the final batch. Single chunk: chunked
      // accumulation would re-associate float sums and break the
      // bit-identical-to-serial contract.
      Batch batch;
      size_t scanned = 0;
      RAQLET_RETURN_IF_ERROR(
          RunPipeline(LeadScanBegin(), LeadScanEnd(), &batch, &scanned,
                      step_totals_.empty() ? nullptr : &step_totals_));
      if (stats_ != nullptr) stats_->rows_scanned += scanned;
      if (batch.rows > 0) {
        std::deque<BatchColumn> scratch;
        std::vector<BatchCol> key_cols;
        std::vector<std::optional<BatchCol>> arg_cols;
        for (size_t i = 0; i < select_.items.size(); ++i) {
          const Expr& e = select_.items[i].expr;
          if (is_agg[i]) {
            if (e.children.empty()) {
              arg_cols.emplace_back(std::nullopt);
            } else {
              RAQLET_ASSIGN_OR_RETURN(
                  BatchCol c, EvalExprBatch(e.children[0], batch, &scratch));
              arg_cols.emplace_back(c);
            }
          } else {
            RAQLET_ASSIGN_OR_RETURN(BatchCol c,
                                    EvalExprBatch(e, batch, &scratch));
            key_cols.push_back(c);
          }
        }
        Tuple key(key_cols.size());
        for (size_t i = 0; i < batch.rows; ++i) {
          for (size_t k = 0; k < key_cols.size(); ++k) {
            key[k] = key_cols[k].at(i);
          }
          std::vector<AggState>& states = groups[key];
          states.resize(agg_item_pos_.size());
          for (size_t a = 0; a < arg_cols.size(); ++a) {
            std::optional<Value> v;
            if (arg_cols[a].has_value()) v = arg_cols[a]->at(i);
            UpdateAggState(&states[a], v);
          }
        }
      }
    } else {
      auto accumulate = [&](const RowBinding& row) -> Status {
        Tuple key;
        key.reserve(select_.items.size() - agg_item_pos_.size());
        for (size_t i = 0; i < select_.items.size(); ++i) {
          if (is_agg[i]) continue;
          RAQLET_ASSIGN_OR_RETURN(Value v,
                                  EvalExpr(select_.items[i].expr, row));
          key.push_back(v);
        }
        std::vector<AggState>& states = groups[key];
        states.resize(agg_item_pos_.size());
        for (size_t a = 0; a < agg_item_pos_.size(); ++a) {
          const Expr& e = select_.items[agg_item_pos_[a]].expr;
          std::optional<Value> v;
          if (!e.children.empty()) {
            RAQLET_ASSIGN_OR_RETURN(Value val, EvalExpr(e.children[0], row));
            v = val;
          }
          UpdateAggState(&states[a], v);
        }
        return Status::OK();
      };
      RowBinding binding(tables_.size(), nullptr);
      RAQLET_RETURN_IF_ERROR(Descend(0, &binding, accumulate));
    }

    for (const auto& [key, states] : groups) {
      Tuple tuple;
      tuple.reserve(select_.items.size());
      size_t ki = 0;
      size_t ai = 0;
      bool skip = false;
      for (size_t i = 0; i < select_.items.size(); ++i) {
        if (is_agg[i]) {
          std::optional<Value> result =
              FinalizeAgg(select_.items[i].expr, states[ai++]);
          if (!result.has_value()) {
            skip = true;
            break;
          }
          tuple.push_back(*result);
        } else {
          tuple.push_back(key[ki++]);
        }
      }
      if (!skip) {
        RAQLET_ASSIGN_OR_RETURN(bool fresh, out->Insert(std::move(tuple)));
        RecordDedup(1, fresh ? 1 : 0);
      }
    }
    return Status::OK();
  }

  const Select& select_;
  const TableResolver& resolver_;
  Database* db_;
  SqlMode mode_;
  SqlStats* stats_;
  runtime::ThreadPool* pool_;
  const Relation* lead_scan_;
  size_t delta_begin_;
  size_t delta_end_;  // kNoDelta: no scan-range restriction
  obs::SqlCteMetrics* cte_metrics_;  // per-CTE sink (may be null)
  const runtime::QueryGuard* guard_;  // cooperative guard (may be null)
  // This evaluation's per-plan-step counters, in plan order. Parallel
  // chunks accumulate privately and merge here in chunk order.
  std::vector<obs::SqlStepMetrics> step_totals_;

  std::vector<BoundTable> tables_;
  std::map<std::string, size_t> alias_index_;
  std::vector<StepPlan> plan_;
  std::vector<NePlan> ne_plans_;
  std::vector<size_t> agg_item_pos_;  // item positions that are aggregates
  bool trivially_false_ = false;
  // Pre-interned constants, keyed by Expr node (stable: the SQIR program
  // outlives the evaluator). Read-only during (possibly parallel)
  // evaluation.
  std::unordered_map<const Expr*, Value> const_values_;
  std::vector<std::map<int, size_t>> slot_of_;  // [table] column -> slot
  size_t slot_count_ = 0;
  Tuple probe_key_;  // tuple-mode probe scratch
};

// Best-effort static type of a select expression, resolving column
// references through the branch's FROM list.
ValueType InferExprType(const Expr& e, const Select& select,
                        const TableResolver& resolver) {
  switch (e.kind) {
    case Expr::kColumn: {
      for (const TableRef& ref : select.from) {
        if (ref.alias != e.table) continue;
        Result<const Relation*> rel = resolver(ref.table);
        if (!rel.ok()) break;
        int col = (*rel)->schema().ColumnIndex(e.column);
        if (col >= 0) return (*rel)->schema().columns[col].type;
        break;
      }
      return ValueType::kNumber;
    }
    case Expr::kConst:
      return e.constant.type;
    case Expr::kArith: {
      ValueType lhs = InferExprType(e.children[0], select, resolver);
      ValueType rhs = InferExprType(e.children[1], select, resolver);
      return (lhs == ValueType::kFloat || rhs == ValueType::kFloat)
                 ? ValueType::kFloat
                 : ValueType::kNumber;
    }
    case Expr::kAgg:
      switch (e.agg) {
        case dlir::AggFunc::kCount:
          return ValueType::kNumber;
        case dlir::AggFunc::kAvg:
          return ValueType::kFloat;
        default:
          return e.children.empty()
                     ? ValueType::kNumber
                     : InferExprType(e.children[0], select, resolver);
      }
  }
  return ValueType::kNumber;
}

// Column types come from the SQIR plan metadata when present (the DLIR
// declaration's types), otherwise they are inferred from the first base
// branch's select items; kNumber is the last-resort default.
RelationSchema CteSchema(const Cte& cte,
                         const std::vector<const Select*>& base,
                         const TableResolver& resolver) {
  RelationSchema schema;
  schema.name = cte.name;
  const bool typed =
      cte.column_types.size() == cte.columns.size() && !cte.columns.empty();
  const Select* infer_from =
      (!typed && !base.empty() &&
       base.front()->items.size() == cte.columns.size())
          ? base.front()
          : nullptr;
  for (size_t i = 0; i < cte.columns.size(); ++i) {
    ValueType type = ValueType::kNumber;
    if (typed) {
      type = cte.column_types[i];
    } else if (infer_from != nullptr) {
      type = InferExprType(infer_from->items[i].expr, *infer_from, resolver);
    }
    schema.columns.push_back(Column{cte.columns[i], type});
  }
  return schema;
}

}  // namespace

SqlEngine::SqlEngine(SqlOptions options) : options_(options) {
  if (options_.num_threads > 1) {
    context_ =
        std::make_unique<runtime::ExecutionContext>(options_.num_threads);
  }
}

Result<ResultTable> SqlEngine::Run(const SqirProgram& program, Database* db,
                                   SqlStats* stats, obs::SqlMetrics* metrics,
                                   const runtime::QueryGuard* guard) const {
  obs::TraceScope run_span("sql.run");
  const runtime::QueryGuard* g = guard != nullptr ? guard : options_.guard;
  std::map<std::string, std::unique_ptr<Relation>> cte_store;
  runtime::ThreadPool* pool =
      context_ != nullptr ? context_->pool() : nullptr;

  TableResolver resolver =
      [&](const std::string& name) -> Result<const Relation*> {
    auto it = cte_store.find(name);
    if (it != cte_store.end()) return it->second.get();
    RAQLET_ASSIGN_OR_RETURN(const Relation* rel, db->GetRelation(name));
    return rel;
  };

  for (size_t cte_index = 0; cte_index < program.ctes.size(); ++cte_index) {
    const Cte& cte = program.ctes[cte_index];
    obs::TraceScope cte_span("sql.cte", static_cast<int64_t>(cte_index));
    obs::SqlCteMetrics* cm = nullptr;
    if (metrics != nullptr) {
      metrics->ctes.emplace_back();
      cm = &metrics->ctes.back();
      cm->name = cte.name;
    }
    // Partition branches: a branch is recursive iff it references the CTE
    // itself in its FROM list. A self-reference through NOT EXISTS is
    // non-monotonic recursion, which SQL:1999 forbids — reject it rather
    // than silently resolving against a same-named base table.
    std::vector<const Select*> base;
    std::vector<const Select*> recursive;
    for (const Select& branch : cte.branches) {
      bool self_ref = false;
      for (const TableRef& ref : branch.from) {
        if (ref.table == cte.name) self_ref = true;
      }
      for (const NotExists& ne : branch.not_exists) {
        if (ne.table == cte.name) {
          return Status::Unsupported(
              "CTE '" + cte.name +
              "' references itself inside NOT EXISTS; non-monotonic "
              "recursion is not supported");
        }
      }
      (self_ref ? recursive : base).push_back(&branch);
    }
    if (!recursive.empty() && !cte.recursive) {
      return Status::InvalidArgument("CTE '" + cte.name +
                                     "' is self-referencing but not marked "
                                     "recursive");
    }

    RelationSchema schema = CteSchema(cte, base, resolver);
    auto rel = std::make_unique<Relation>(schema);

    RAQLET_FAILPOINT("sql.cte_merge");

    // Guard checkpoints: poll before each materialization step, and feed
    // the budget the CTE's row/byte growth at round boundaries — the same
    // deterministic counters at every thread count.
    size_t rows_seen = 0;
    size_t bytes_seen = 0;
    auto guard_checkpoint = [&]() -> Status {
      if (g == nullptr) return Status::OK();
      size_t rows_now = rel->size();
      RAQLET_RETURN_IF_ERROR(g->AddRows(rows_now - rows_seen));
      rows_seen = rows_now;
      if (g->max_bytes() > 0) {
        size_t bytes_now = rel->MemoryBytes();
        size_t delta = bytes_now > bytes_seen ? bytes_now - bytes_seen : 0;
        bytes_seen = bytes_now;
        RAQLET_RETURN_IF_ERROR(g->AddBytes(delta));
      }
      return g->Check();
    };

    for (const Select* branch : base) {
      if (g != nullptr) RAQLET_RETURN_IF_ERROR(g->Check());
      SelectEvaluator eval(*branch, resolver, db, options_.mode, stats,
                           pool, nullptr, 0, SelectEvaluator::kNoDelta, cm,
                           g);
      RAQLET_RETURN_IF_ERROR(eval.Evaluate(rel.get()));
    }
    RAQLET_RETURN_IF_ERROR(guard_checkpoint());

    if (!recursive.empty()) {
      if (cm != nullptr) cm->recursive = true;
      // Linear recursion (each recursive branch references the CTE exactly
      // once) lets the vectorized mode run true semi-naive iteration: the
      // "working table" is the suffix of `rel` appended last round,
      // scanned in place — no per-round copy, no re-deduplication.
      bool linear = true;
      for (const Select* branch : recursive) {
        size_t refs = 0;
        for (const TableRef& ref : branch->from) {
          if (ref.table == cte.name) ++refs;
        }
        if (refs != 1) linear = false;
      }

      size_t iterations = 0;
      auto check_cap = [&]() -> Status {
        ++iterations;
        if (stats != nullptr) ++stats->recursive_iterations;
        if (cm != nullptr) ++cm->iterations;
        if (options_.max_recursive_iterations != 0 &&
            iterations > options_.max_recursive_iterations) {
          return Status::Unsupported(
              "recursive CTE '" + cte.name + "' exceeded " +
              std::to_string(options_.max_recursive_iterations) +
              " iterations");
        }
        return Status::OK();
      };

      if (options_.mode == SqlMode::kVectorized && linear) {
        TableResolver rec_resolver =
            [&](const std::string& name) -> Result<const Relation*> {
          if (name == cte.name) return rel.get();
          return resolver(name);
        };
        size_t delta_begin = 0;
        size_t delta_end = rel->size();
        while (delta_begin < delta_end) {
          RAQLET_RETURN_IF_ERROR(check_cap());
          obs::TraceScope round_span("sql.round",
                                     static_cast<int64_t>(iterations));
          // All branches of a round see the same delta; rows a branch
          // appends join in the next round (SQL:1999 working-table
          // semantics). Reads of the delta finish before the round's
          // results merge into `rel`, so scanning and emitting into the
          // same relation is safe.
          for (const Select* branch : recursive) {
            SelectEvaluator eval(*branch, rec_resolver, db, options_.mode,
                                 stats, pool, rel.get(), delta_begin,
                                 delta_end, cm, g);
            RAQLET_RETURN_IF_ERROR(eval.Evaluate(rel.get()));
          }
          RAQLET_RETURN_IF_ERROR(guard_checkpoint());
          delta_begin = delta_end;
          delta_end = rel->size();
        }
      } else {
        // SQL:1999 working-table iteration (tuple mode, and non-linear
        // recursion in either mode).
        auto working = std::make_unique<Relation>(schema);
        RAQLET_RETURN_IF_ERROR(
            working->InsertBatch(rel->MaterializeRows()).status());
        while (!working->empty()) {
          RAQLET_RETURN_IF_ERROR(check_cap());
          obs::TraceScope round_span("sql.round",
                                     static_cast<int64_t>(iterations));
          TableResolver rec_resolver =
              [&](const std::string& name) -> Result<const Relation*> {
            if (name == cte.name) return working.get();
            return resolver(name);
          };
          // Recursive branches never read the CTE total (only the working
          // table), so they can emit straight into `rel`: its dedup is the
          // union-distinct, and this round's additions are exactly the
          // insertion-order suffix.
          const size_t before = rel->size();
          for (const Select* branch : recursive) {
            SelectEvaluator eval(*branch, rec_resolver, db, options_.mode,
                                 stats, pool, working.get(), 0,
                                 SelectEvaluator::kNoDelta, cm, g);
            RAQLET_RETURN_IF_ERROR(eval.Evaluate(rel.get()));
          }
          RAQLET_RETURN_IF_ERROR(guard_checkpoint());
          auto next_working = std::make_unique<Relation>(schema);
          RAQLET_RETURN_IF_ERROR(
              next_working->InsertBatch(rel->MaterializeRows(before))
                  .status());
          working = std::move(next_working);
        }
      }
    }

    if (stats != nullptr) stats->rows_materialized += rel->size();
    if (cm != nullptr) cm->rows = rel->size();
    cte_store.emplace(cte.name, std::move(rel));
  }

  // Final select.
  RelationSchema out_schema;
  out_schema.name = "__result__";
  for (const sqir::SelectItem& item : program.final_select.items) {
    out_schema.columns.push_back(
        Column{item.alias,
               InferExprType(item.expr, program.final_select, resolver)});
  }
  ResultTable result;
  for (const Column& col : out_schema.columns) {
    result.columns.push_back(col.name);
    result.column_types.push_back(col.type);
  }

  obs::SqlCteMetrics* final_cm = nullptr;
  if (metrics != nullptr) {
    metrics->ctes.emplace_back();
    final_cm = &metrics->ctes.back();
    final_cm->name = "__result__";
  }

  // Identity fast path: the shape every translated program ends with —
  // SELECT (DISTINCT) every column of one table, in order, with no
  // predicates — returns the source rows directly. They are already
  // distinct (relations are sets) and already in the order the evaluator
  // would produce, so this skips a full re-deduplication of the result.
  const Select& fs = program.final_select;
  if (fs.from.size() == 1 && fs.where.empty() && fs.not_exists.empty() &&
      fs.group_by.empty()) {
    Result<const Relation*> src = resolver(fs.from[0].table);
    if (src.ok() && fs.items.size() == (*src)->schema().columns.size()) {
      bool identity = true;
      for (size_t i = 0; i < fs.items.size(); ++i) {
        const sqir::Expr& e = fs.items[i].expr;
        if (e.kind != sqir::Expr::kColumn || e.table != fs.from[0].alias ||
            (*src)->schema().ColumnIndex(e.column) != static_cast<int>(i)) {
          identity = false;
          break;
        }
      }
      if (identity) {
        if (stats != nullptr) stats->rows_scanned += (*src)->size();
        if (final_cm != nullptr) final_cm->rows = (*src)->size();
        result.rows = (*src)->MaterializeRows();
        return result;
      }
    }
  }

  Relation out_rel(out_schema);
  SelectEvaluator eval(program.final_select, resolver, db, options_.mode,
                       stats, pool, nullptr, 0, SelectEvaluator::kNoDelta,
                       final_cm, g);
  RAQLET_RETURN_IF_ERROR(eval.Evaluate(&out_rel));
  if (g != nullptr) {
    RAQLET_RETURN_IF_ERROR(g->AddRows(out_rel.size()));
    RAQLET_RETURN_IF_ERROR(g->Check());
  }
  if (final_cm != nullptr) final_cm->rows = out_rel.size();
  result.rows = out_rel.ReleaseRows();
  return result;
}

}  // namespace raqlet::engine
