#ifndef RAQLET_ENGINE_SQL_EXECUTOR_H_
#define RAQLET_ENGINE_SQL_EXECUTOR_H_

// SQL/CTE executor for SQIR programs — Raqlet's stand-in for the
// relational engines of Table 1 (DESIGN.md §2).
//
// CTEs materialize in dependency order. WITH RECURSIVE follows SQL:1999
// semantics: the recursive term sees the *working table* (rows added in
// the previous iteration), results union (distinct) into the total until
// the working table empties.
//
// Two execution modes exercise genuinely different join code paths:
//  * kVectorized (DuckDB stand-in): breadth-first — each join step
//    extends a materialized batch of intermediate bindings.
//  * kTuplePipeline (HyPer stand-in): depth-first — a binding flows
//    through the whole join pipeline before the next one starts.
// Both probe hash indexes for equality predicates.

#include <cstddef>
#include <string>

#include "common/status.h"
#include "engine/value_ops.h"
#include "sqir/sqir.h"
#include "storage/database.h"

namespace raqlet::engine {

enum class SqlMode { kVectorized, kTuplePipeline };

struct SqlOptions {
  SqlMode mode = SqlMode::kVectorized;
  /// Safety valve for runaway recursive CTEs (0 = unlimited).
  size_t max_recursive_iterations = 0;
};

struct SqlStats {
  size_t recursive_iterations = 0;
  size_t rows_materialized = 0;  // CTE rows produced (after dedup)
  size_t rows_scanned = 0;
};

class SqlEngine {
 public:
  explicit SqlEngine(SqlOptions options = {}) : options_(options) {}

  /// Executes `program` against `db`. The database is non-const only to
  /// intern string literals appearing in the query.
  Result<ResultTable> Run(const sqir::SqirProgram& program, Database* db,
                          SqlStats* stats = nullptr) const;

 private:
  SqlOptions options_;
};

}  // namespace raqlet::engine

#endif  // RAQLET_ENGINE_SQL_EXECUTOR_H_
