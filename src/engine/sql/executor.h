#ifndef RAQLET_ENGINE_SQL_EXECUTOR_H_
#define RAQLET_ENGINE_SQL_EXECUTOR_H_

// SQL/CTE executor for SQIR programs — Raqlet's stand-in for the
// relational engines of Table 1 (DESIGN.md §2).
//
// CTEs materialize in dependency order. WITH RECURSIVE follows SQL:1999
// semantics: the recursive term sees the *working table* (rows added in
// the previous iteration), results union (distinct) into the total until
// the working table empties. A recursive reference inside NOT EXISTS is
// rejected (non-monotonic recursion).
//
// Two execution modes exercise genuinely different join code paths:
//  * kVectorized (DuckDB stand-in): column-batched execution in the
//    MonetDB/X100 lineage. Intermediate join state is a BindingBatch —
//    one Value column per referenced table column — and every plan step
//    is a batch operator: a leading full-table scan borrows the
//    relation's column storage as zero-copy views (values are first
//    copied when a filter compacts or a join gathers), probe keys are
//    evaluated column-at-a-time, the hash index is probed once per batch
//    of keys appending match row indexes, filters produce a selection
//    mask that compacts the whole batch, and projection stages output
//    columns that merge through Relation::InsertColumns without ever
//    boxing a row tuple. Aggregation accumulates column-wise over the
//    final batch. With SqlOptions::num_threads > 1 the leading scan is
//    partitioned across the runtime's ThreadPool; per-chunk outputs merge
//    in chunk order, so results are bit-identical to serial execution at
//    any thread count.
//  * kTuplePipeline (HyPer stand-in): depth-first — a binding flows
//    through the whole join pipeline one row at a time before the next
//    one starts.
// Both modes probe hash indexes for equality predicates; indexes are
// prebuilt per plan step (Relation::EnsureIndex), so the inner loops pay
// neither a lock nor an index-cache lookup.

#include <cstddef>
#include <memory>
#include <string>

#include "common/status.h"
#include "engine/value_ops.h"
#include "obs/metrics.h"
#include "runtime/execution_context.h"
#include "runtime/query_guard.h"
#include "sqir/sqir.h"
#include "storage/database.h"

namespace raqlet::engine {

enum class SqlMode { kVectorized, kTuplePipeline };

struct SqlOptions {
  SqlMode mode = SqlMode::kVectorized;
  /// Safety valve for runaway recursive CTEs (0 = unlimited).
  size_t max_recursive_iterations = 0;
  /// Worker threads for the vectorized batch pipeline (clamped to >= 1).
  /// 1 means strictly serial; results are identical for every value.
  int num_threads = 1;
  /// Cooperative guardrails polled per CTE materialization step, per
  /// recursive iteration, and per scan chunk. Like the metrics sink this
  /// is a per-Run control channel, not a behavioural option: excluded
  /// from equality so the Compiler's engine cache never keys on it.
  const runtime::QueryGuard* guard = nullptr;

  /// Equality over the behavioural fields only (cache key; see `guard`).
  friend bool operator==(const SqlOptions& a, const SqlOptions& b) {
    return a.mode == b.mode &&
           a.max_recursive_iterations == b.max_recursive_iterations &&
           a.num_threads == b.num_threads;
  }
};

struct SqlStats {
  size_t recursive_iterations = 0;
  size_t rows_materialized = 0;  // CTE rows produced (after dedup)
  size_t rows_scanned = 0;
};

class SqlEngine {
 public:
  explicit SqlEngine(SqlOptions options = {});

  /// Executes `program` against `db`. The database is non-const only to
  /// intern string literals appearing in the query.
  ///
  /// `metrics`, when given, receives per-CTE detail (iterations, dedup
  /// hit rate, per-step operator counters from the vectorized pipeline)
  /// plus a final "__result__" entry for the top-level select. Row and
  /// dedup counters are bit-identical across thread counts; only
  /// SqlStepMetrics::batches depends on scan chunking.
  ///
  /// `guard` overrides options().guard for this call (the Compiler facade
  /// uses this so cached engines — keyed on guard-free options equality —
  /// still honour the caller's per-query guard). A trip aborts execution
  /// with the guard's terminal Status and leaves `db` and this engine
  /// reusable: re-running the same program is bit-identical to a
  /// never-tripped run.
  Result<ResultTable> Run(const sqir::SqirProgram& program, Database* db,
                          SqlStats* stats = nullptr,
                          obs::SqlMetrics* metrics = nullptr,
                          const runtime::QueryGuard* guard = nullptr) const;

 private:
  SqlOptions options_;
  // Owns the thread pool when num_threads > 1; the pool is reused across
  // Run calls on the same engine. Makes SqlEngine move-only.
  std::unique_ptr<runtime::ExecutionContext> context_;
};

}  // namespace raqlet::engine

#endif  // RAQLET_ENGINE_SQL_EXECUTOR_H_
