#include "engine/graph/executor.h"

#include <algorithm>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <tuple>
#include <unordered_map>
#include <unordered_set>

#include "obs/trace.h"
#include "runtime/failpoint.h"
#include "storage/relation.h"

namespace raqlet::engine {

namespace {

using cypher::BinOp;
using cypher::EdgeDirection;
using cypher::Expr;
using cypher::ExprKind;
using pgir::EdgePat;
using pgir::Item;
using pgir::MatchOp;
using pgir::NodePat;
using pgir::PgirQuery;
using pgir::ReturnOp;
using pgir::WhereOp;
using pgir::WithOp;

struct ColumnMeta {
  enum Kind { kNode, kEdge, kValue, kPathLength };
  Kind kind = kValue;
  std::string label;       // node label / edge label
  int row_column = -1;     // kEdge: index of the hidden edge-row column
};

dlir::CmpOp ToCmpOp(BinOp op) {
  switch (op) {
    case BinOp::kEq:
      return dlir::CmpOp::kEq;
    case BinOp::kNe:
      return dlir::CmpOp::kNe;
    case BinOp::kLt:
      return dlir::CmpOp::kLt;
    case BinOp::kLe:
      return dlir::CmpOp::kLe;
    case BinOp::kGt:
      return dlir::CmpOp::kGt;
    default:
      return dlir::CmpOp::kGe;
  }
}

dlir::ArithOp ToArithOp(BinOp op) {
  switch (op) {
    case BinOp::kAdd:
      return dlir::ArithOp::kAdd;
    case BinOp::kSub:
      return dlir::ArithOp::kSub;
    case BinOp::kMul:
      return dlir::ArithOp::kMul;
    case BinOp::kDiv:
      return dlir::ArithOp::kDiv;
    default:
      return dlir::ArithOp::kMod;
  }
}

// Traversal machinery shared by both binding-table representations:
// direction-aware neighbour walks, the memoized >=1-step reachability
// closure, and the BFS variants for bounded/shortest variable-length
// patterns. Memoization lives here so a query pays for each closure once
// regardless of which executor asked for it.
class Traversals {
 public:
  Traversals(const GraphStore& store, GraphStats* stats,
             obs::GraphMetrics* metrics = nullptr,
             const runtime::QueryGuard* guard = nullptr)
      : store_(store), stats_(stats), metrics_(metrics), guard_(guard) {}

  // Polled once per BFS frontier pop. A trip abandons the walk early; the
  // partial closure is still memoized, but the memo dies with this
  // execution object (one per Run), and the clause loop re-checks the
  // guard before any partial result could reach the caller.
  bool GuardTripped() const {
    return guard_ != nullptr && !guard_->Check().ok();
  }

  // Neighbour expansion respecting direction.
  void ForEachNeighbor(const std::string& edge_label, int64_t node,
                       EdgeDirection direction, bool reverse,
                       const std::function<void(const GraphStore::Neighbor&)>&
                           visit) const {
    EdgeDirection dir = direction;
    if (reverse && dir == EdgeDirection::kOutgoing) {
      dir = EdgeDirection::kIncoming;
    } else if (reverse && dir == EdgeDirection::kIncoming) {
      dir = EdgeDirection::kOutgoing;
    }
    if (dir == EdgeDirection::kOutgoing || dir == EdgeDirection::kUndirected) {
      for (const auto& nb : store_.OutNeighbors(edge_label, node)) visit(nb);
    }
    if (dir == EdgeDirection::kIncoming || dir == EdgeDirection::kUndirected) {
      for (const auto& nb : store_.InNeighbors(edge_label, node)) visit(nb);
    }
  }

  // Memoized >=1-step reachability closure, keyed per (edge label,
  // direction, reverse) traversal and shared across every start node of
  // the query — a traversal that reaches an already-closed node unions
  // the cached set instead of re-walking (closure sets are transitively
  // closed, so their members never need expanding either).
  using NodeSet = std::unordered_set<int64_t>;
  const NodeSet& Closure(const std::string& upper, EdgeDirection direction,
                         bool reverse, int64_t start) const {
    auto& memo =
        closure_memos_[{upper, static_cast<int>(direction), reverse}];
    auto hit = memo.find(start);
    if (hit != memo.end()) {
      NoteClosureHit();
      return *hit->second;
    }
    NoteClosureMiss();
    obs::TraceScope span("graph.closure");
    auto result = std::make_unique<NodeSet>();
    NodeSet& reached = *result;
    std::deque<int64_t> queue;  // nodes whose edges still need walking
    auto visit = [&](const GraphStore::Neighbor& nb) {
      if (reached.insert(nb.node).second) queue.push_back(nb.node);
    };
    ForEachNeighbor(upper, start, direction, reverse, visit);
    while (!queue.empty()) {
      if (GuardTripped()) break;
      NoteFrontier(queue.size());
      int64_t node = queue.front();
      queue.pop_front();
      auto cached = memo.find(node);
      if (cached != memo.end()) {
        NoteClosureHit();
        for (int64_t m : *cached->second) reached.insert(m);
        continue;
      }
      ForEachNeighbor(upper, node, direction, reverse, visit);
      if (stats_ != nullptr) ++stats_->bfs_visits;
    }
    return *memo.emplace(start, std::move(result)).first->second;
  }

  // Sorted view of Closure(start), cached so repeated bindings with the
  // same start do not re-sort (the deterministic emit order of unbounded
  // reachability is ascending node id).
  const std::vector<int64_t>& SortedClosure(const std::string& upper,
                                            EdgeDirection direction,
                                            bool reverse,
                                            int64_t start) const {
    auto& memo =
        sorted_memos_[{upper, static_cast<int>(direction), reverse}];
    auto hit = memo.find(start);
    if (hit != memo.end()) return hit->second;
    const NodeSet& closed = Closure(upper, direction, reverse, start);
    std::vector<int64_t> sorted(closed.begin(), closed.end());
    std::sort(sorted.begin(), sorted.end());
    return memo.emplace(start, std::move(sorted)).first->second;
  }

  // BFS over (node, depth) states, mirroring the DLIR walk semantics.
  // Returns reachable nodes with qualifying depths in [min_hops, max_hops]
  // (max < 0 = unbounded), or min distances when `shortest`.
  std::vector<std::pair<int64_t, int64_t>> Bfs(const std::string& upper,
                                               int64_t start,
                                               EdgeDirection direction,
                                               bool reverse, int min_hops,
                                               int max_hops,
                                               bool shortest) const {
    std::vector<std::pair<int64_t, int64_t>> out;
    if (!shortest && max_hops < 0 && min_hops <= 1) {
      // Plain unbounded reachability: no caller consumes the depths (the
      // emit path only reads them for shortest-path length bindings), so
      // serve the memoized closure. Sorted for a deterministic row order.
      const std::vector<int64_t>& closed =
          SortedClosure(upper, direction, reverse, start);
      out.reserve(closed.size() + 1);
      for (int64_t node : closed) out.emplace_back(node, 1);
      if (min_hops == 0) out.emplace_back(start, 0);
      return out;
    }
    if (shortest || max_hops < 0) {
      if (!shortest && min_hops > 1) {
        // Walks of length >= m: exact-depth states up to m, then closure.
        auto exact = BoundedWalks(upper, start, direction, reverse, min_hops,
                                  min_hops);
        std::set<int64_t> frontier;
        for (const auto& [node, d] : exact) frontier.insert(node);
        std::set<int64_t> all(frontier);
        for (int64_t node : frontier) {
          for (const auto& [n2, d2] :
               Bfs(upper, node, direction, reverse, 1, -1, false)) {
            all.insert(n2);
          }
        }
        for (int64_t node : all) out.emplace_back(node, min_hops);
        return out;
      }
      // Min walk-length (>= 1) BFS, seeded from the one-step neighbours so
      // that cycles back to `start` are found (matching the DLIR
      // reachability/lattice semantics, where dist(x, x) exists on cycles).
      std::unordered_map<int64_t, int64_t> dist;
      std::deque<int64_t> queue;
      ForEachNeighbor(upper, start, direction, reverse,
                      [&](const GraphStore::Neighbor& nb) {
                        if (dist.count(nb.node) > 0) return;
                        dist[nb.node] = 1;
                        queue.push_back(nb.node);
                      });
      while (!queue.empty()) {
        if (GuardTripped()) break;
        NoteFrontier(queue.size());
        int64_t node = queue.front();
        queue.pop_front();
        int64_t d = dist[node];
        ForEachNeighbor(upper, node, direction, reverse,
                        [&](const GraphStore::Neighbor& nb) {
                          if (dist.count(nb.node) > 0) return;
                          dist[nb.node] = d + 1;
                          queue.push_back(nb.node);
                        });
        if (stats_ != nullptr) ++stats_->bfs_visits;
      }
      for (const auto& [node, d] : dist) out.emplace_back(node, d);
      if (min_hops == 0) out.emplace_back(start, 0);
      return out;
    }
    return BoundedWalks(upper, start, direction, reverse, min_hops, max_hops);
  }

  // Exact (node, depth) walk states for bounded ranges.
  std::vector<std::pair<int64_t, int64_t>> BoundedWalks(
      const std::string& upper, int64_t start, EdgeDirection direction,
      bool reverse, int min_hops, int max_hops) const {
    std::set<std::pair<int64_t, int64_t>> states;  // (node, depth)
    std::deque<std::pair<int64_t, int64_t>> queue;
    queue.emplace_back(start, 0);
    states.insert({start, 0});
    std::set<std::pair<int64_t, int64_t>> result;
    while (!queue.empty()) {
      if (GuardTripped()) break;
      NoteFrontier(queue.size());
      auto [node, d] = queue.front();
      queue.pop_front();
      if (d >= min_hops && d >= 1) result.insert({node, d});
      if (min_hops == 0 && d == 0) result.insert({node, 0});
      if (d == max_hops) continue;
      ForEachNeighbor(upper, node, direction, reverse,
                      [&](const GraphStore::Neighbor& nb) {
                        if (states.insert({nb.node, d + 1}).second) {
                          queue.emplace_back(nb.node, d + 1);
                        }
                      });
      if (stats_ != nullptr) ++stats_->bfs_visits;
    }
    return {result.begin(), result.end()};
  }

 private:
  void NoteClosureHit() const {
    if (stats_ != nullptr) ++stats_->closure_cache_hits;
    if (metrics_ != nullptr) ++metrics_->closure_cache_hits;
  }
  void NoteClosureMiss() const {
    if (stats_ != nullptr) ++stats_->closure_cache_misses;
    if (metrics_ != nullptr) ++metrics_->closure_cache_misses;
  }
  void NoteFrontier(size_t size) const {
    if (metrics_ != nullptr && size > metrics_->frontier_peak) {
      metrics_->frontier_peak = size;
    }
  }

  const GraphStore& store_;
  GraphStats* stats_;
  obs::GraphMetrics* metrics_;
  const runtime::QueryGuard* guard_;
  // Completed reachability closures per traversal signature; see Closure.
  mutable std::map<std::tuple<std::string, int, bool>,
                   std::unordered_map<int64_t, std::unique_ptr<NodeSet>>>
      closure_memos_;
  mutable std::map<std::tuple<std::string, int, bool>,
                   std::unordered_map<int64_t, std::vector<int64_t>>>
      sorted_memos_;
};

// ---------------------------------------------------------------------------
// kRowBinding: the historical per-binding interpreter. The binding table is
// a vector of row tuples; every MATCH step copies and extends whole rows one
// binding at a time. Kept verbatim as the paper's Table 1 per-binding
// stand-in and as the reference the batch mode is differentially tested
// against (cross_engine_test.cc asserts exact row-order equality).
// ---------------------------------------------------------------------------

// The clause-by-clause binding table.
struct BindingTable {
  std::vector<std::string> columns;
  std::map<std::string, size_t> index;
  std::vector<ColumnMeta> meta;
  std::vector<Tuple> rows;

  int Find(const std::string& name) const {
    auto it = index.find(name);
    return it == index.end() ? -1 : static_cast<int>(it->second);
  }
  size_t AddColumn(const std::string& name, ColumnMeta m) {
    index[name] = columns.size();
    columns.push_back(name);
    meta.push_back(m);
    return columns.size() - 1;
  }
};

class RowExecution {
 public:
  RowExecution(const GraphStore& store, const schema::DlSchema& dl,
               Database* db, GraphStats* stats,
               obs::GraphMetrics* metrics = nullptr,
               const runtime::QueryGuard* guard = nullptr)
      : store_(store), dl_(dl), db_(db), stats_(stats), metrics_(metrics),
        guard_(guard), trav_(store, stats, metrics, guard) {}

  Result<ResultTable> Run(const PgirQuery& query) {
    table_.rows.push_back({});  // one empty binding
    int64_t clause_index = 0;
    size_t rows_prev = 0;
    for (const pgir::Op& op : query.ops) {
      // Per-clause guard checkpoint: poll before expanding, and feed the
      // budget the previous clause's binding-table growth (deterministic
      // — clause boundaries are the same at every thread count).
      if (guard_ != nullptr) {
        size_t now = table_.rows.size();
        RAQLET_RETURN_IF_ERROR(
            guard_->AddRows(now > rows_prev ? now - rows_prev : 0));
        rows_prev = now;
        RAQLET_RETURN_IF_ERROR(guard_->Check());
      }
      obs::TraceScope clause_span("graph.clause", clause_index++);
      const char* kind = "";
      if (const auto* match = std::get_if<MatchOp>(&op)) {
        kind = "match";
        RAQLET_RETURN_IF_ERROR(ExecMatch(*match));
      } else if (const auto* where = std::get_if<WhereOp>(&op)) {
        kind = "where";
        RAQLET_RETURN_IF_ERROR(ExecWhere(*where));
      } else if (const auto* with = std::get_if<WithOp>(&op)) {
        kind = "with";
        RAQLET_RETURN_IF_ERROR(ExecProjection(with->items, with->distinct,
                                              /*is_return=*/false));
      } else if (const auto* ret = std::get_if<ReturnOp>(&op)) {
        kind = "return";
        RAQLET_RETURN_IF_ERROR(
            ExecProjection(ret->items, ret->distinct, /*is_return=*/true));
      }
      if (metrics_ != nullptr) {
        metrics_->clauses.push_back({kind, table_.rows.size()});
      }
    }
    // A trip inside the last clause (e.g. a BFS abandoned mid-frontier)
    // must surface as the terminal status, never as a partial result.
    if (guard_ != nullptr) RAQLET_RETURN_IF_ERROR(guard_->Check());
    ResultTable result;
    result.columns = table_.columns;
    result.rows = std::move(table_.rows);
    return result;
  }

 private:
  // ---- MATCH ----

  Status CheckNode(const NodePat& node, bool* known) {
    int col = table_.Find(node.id);
    *known = col >= 0;
    if (!*known && node.label.empty()) {
      return Status::Unsupported("unlabeled node pattern introduces '" +
                                 node.id + "'");
    }
    if (!node.label.empty() && dl_.FindNode(node.label) == nullptr) {
      return Status::NotFound("no node type with label '" + node.label + "'");
    }
    return Status::OK();
  }

  Status ExecMatch(const MatchOp& match) {
    for (const EdgePat& edge : match.edges) {
      if (edge.variable_length || edge.shortest) {
        RAQLET_RETURN_IF_ERROR(ExpandRecursive(edge));
      } else {
        RAQLET_RETURN_IF_ERROR(ExpandSimple(edge));
      }
    }
    for (const NodePat& node : match.nodes) {
      RAQLET_RETURN_IF_ERROR(ExpandLoneNode(node));
    }
    return Status::OK();
  }

  Status ExpandLoneNode(const NodePat& node) {
    bool known = false;
    RAQLET_RETURN_IF_ERROR(CheckNode(node, &known));
    if (known) {
      // Label filter on the existing binding.
      if (node.label.empty()) return Status::OK();
      size_t col = static_cast<size_t>(table_.Find(node.id));
      std::vector<Tuple> kept;
      for (Tuple& row : table_.rows) {
        if (store_.HasLabel(node.label, row[col].AsNumber())) {
          kept.push_back(std::move(row));
        }
      }
      table_.rows = std::move(kept);
      return Status::OK();
    }
    size_t col = table_.AddColumn(node.id, {ColumnMeta::kNode, node.label, -1});
    (void)col;
    std::vector<Tuple> next;
    for (const Tuple& row : table_.rows) {
      for (int64_t id : store_.NodesWithLabel(node.label)) {
        Tuple extended = row;
        extended.push_back(Value::Number(id));
        next.push_back(std::move(extended));
        if (stats_ != nullptr) ++stats_->rows_expanded;
      }
    }
    table_.rows = std::move(next);
    return Status::OK();
  }

  // Resolves endpoint label checks after traversal.
  bool EndpointOk(const NodePat& node, int64_t id) const {
    return node.label.empty() || store_.HasLabel(node.label, id);
  }

  Status ExpandSimple(const EdgePat& edge) {
    const schema::EdgeRelationInfo* info = dl_.FindEdge(edge.label);
    if (info == nullptr) {
      return Status::NotFound("no edge type with label '" + edge.label + "'");
    }
    bool src_known = false;
    bool dst_known = false;
    RAQLET_RETURN_IF_ERROR(CheckNode(edge.src, &src_known));
    RAQLET_RETURN_IF_ERROR(CheckNode(edge.dst, &dst_known));

    int src_col = table_.Find(edge.src.id);
    int dst_col = table_.Find(edge.dst.id);

    // New columns for unbound endpoints and the edge binding.
    if (!src_known) {
      table_.AddColumn(edge.src.id, {ColumnMeta::kNode, edge.src.label, -1});
    }
    if (!dst_known && edge.dst.id != edge.src.id) {
      table_.AddColumn(edge.dst.id, {ColumnMeta::kNode, edge.dst.label, -1});
    }
    bool bind_edge = info->PropertyColumn("id") >= 0 &&
                     edge.direction != EdgeDirection::kUndirected &&
                     table_.Find(edge.id) < 0;
    int edge_row_col = -1;
    if (bind_edge) {
      edge_row_col = static_cast<int>(table_.columns.size()) + 1;
      table_.AddColumn(edge.id,
                       {ColumnMeta::kEdge, edge.label, edge_row_col});
      table_.AddColumn("__row_" + edge.id, {ColumnMeta::kValue, "", -1});
    }

    const std::string upper = schema::ToUpperSnake(edge.label);
    int id_prop_col = info->PropertyColumn("id");
    // Borrow the edge-id column once for the whole expansion.
    Relation::ColumnView edge_id_col;
    if (bind_edge) {
      Result<Relation::ColumnView> c = store_.EdgeColumn(upper, id_prop_col);
      RAQLET_RETURN_IF_ERROR(c.status());
      edge_id_col = *c;
    }
    std::vector<Tuple> next;
    auto emit = [&](const Tuple& base, int64_t src_id, int64_t dst_id,
                    uint32_t edge_row) {
      if (!EndpointOk(edge.src, src_id) || !EndpointOk(edge.dst, dst_id)) {
        return;
      }
      Tuple row = base;
      if (!src_known) row.push_back(Value::Number(src_id));
      if (!dst_known && edge.dst.id != edge.src.id) {
        row.push_back(Value::Number(dst_id));
      } else if (!dst_known && edge.dst.id == edge.src.id &&
                 src_id != dst_id) {
        return;  // (a)-[:X]->(a): self loop required
      }
      if (bind_edge) {
        row.push_back(edge_id_col.at(edge_row));
        row.push_back(Value::Number(edge_row));
      }
      next.push_back(std::move(row));
      if (stats_ != nullptr) ++stats_->rows_expanded;
    };

    for (const Tuple& row : table_.rows) {
      std::optional<int64_t> src_val;
      std::optional<int64_t> dst_val;
      if (src_known) src_val = row[static_cast<size_t>(src_col)].AsNumber();
      if (dst_known) dst_val = row[static_cast<size_t>(dst_col)].AsNumber();

      // Deduplicate undirected self-loop double visits.
      std::set<std::pair<int64_t, uint32_t>> seen;
      auto visit = [&](int64_t from, const GraphStore::Neighbor& nb) {
        if (!seen.insert({nb.node, nb.edge_row}).second) return;
        if (dst_val.has_value() && nb.node != *dst_val) return;
        if (edge.dst.id == edge.src.id && !dst_known && nb.node != from) {
          return;  // repeated identifier within the pattern
        }
        emit(row, from, nb.node, nb.edge_row);
      };

      if (src_val.has_value()) {
        trav_.ForEachNeighbor(upper, *src_val, edge.direction,
                              /*reverse=*/false,
                              [&](const GraphStore::Neighbor& nb) {
                                visit(*src_val, nb);
                              });
      } else if (dst_val.has_value()) {
        // Traverse backwards, binding the source.
        trav_.ForEachNeighbor(upper, *dst_val, edge.direction,
                              /*reverse=*/true,
                              [&](const GraphStore::Neighbor& nb) {
                                seen.clear();
                                if (dst_val.has_value()) {
                                  // nb.node is the source here.
                                  emit(row, nb.node, *dst_val, nb.edge_row);
                                }
                              });
      } else {
        // Neither endpoint bound: scan source label (or all labeled nodes
        // of the schema endpoint).
        std::string scan_label = !edge.src.label.empty()
                                     ? edge.src.label
                                     : info->src_label;
        for (int64_t id : store_.NodesWithLabel(scan_label)) {
          seen.clear();
          trav_.ForEachNeighbor(upper, id, edge.direction, /*reverse=*/false,
                                [&](const GraphStore::Neighbor& nb) {
                                  visit(id, nb);
                                });
        }
      }
    }
    table_.rows = std::move(next);
    return Status::OK();
  }

  Status ExpandRecursive(const EdgePat& edge) {
    const schema::EdgeRelationInfo* info = dl_.FindEdge(edge.label);
    if (info == nullptr) {
      return Status::NotFound("no edge type with label '" + edge.label + "'");
    }
    const std::string upper = schema::ToUpperSnake(edge.label);
    bool src_known = false;
    bool dst_known = false;
    RAQLET_RETURN_IF_ERROR(CheckNode(edge.src, &src_known));
    RAQLET_RETURN_IF_ERROR(CheckNode(edge.dst, &dst_known));
    int src_col = table_.Find(edge.src.id);
    int dst_col = table_.Find(edge.dst.id);

    if (!src_known) {
      table_.AddColumn(edge.src.id, {ColumnMeta::kNode, edge.src.label, -1});
    }
    if (!dst_known) {
      table_.AddColumn(edge.dst.id, {ColumnMeta::kNode, edge.dst.label, -1});
    }
    bool bind_len = edge.shortest && !edge.path_id.empty();
    if (bind_len) {
      table_.AddColumn(edge.path_id + "_len",
                       {ColumnMeta::kPathLength, "", -1});
    }

    std::vector<Tuple> next;
    auto emit = [&](const Tuple& base, int64_t src_id, int64_t dst_id,
                    int64_t len) {
      if (!EndpointOk(edge.src, src_id) || !EndpointOk(edge.dst, dst_id)) {
        return;
      }
      Tuple row = base;
      if (!src_known) row.push_back(Value::Number(src_id));
      if (!dst_known) row.push_back(Value::Number(dst_id));
      if (bind_len) row.push_back(Value::Number(len));
      next.push_back(std::move(row));
      if (stats_ != nullptr) ++stats_->rows_expanded;
    };

    for (const Tuple& row : table_.rows) {
      std::optional<int64_t> src_val;
      std::optional<int64_t> dst_val;
      if (src_known) src_val = row[static_cast<size_t>(src_col)].AsNumber();
      if (dst_known) dst_val = row[static_cast<size_t>(dst_col)].AsNumber();

      auto run_from = [&](int64_t start) {
        auto reached = trav_.Bfs(upper, start, edge.direction,
                                 /*reverse=*/false, edge.min_hops,
                                 edge.max_hops, edge.shortest);
        std::set<std::pair<int64_t, int64_t>> dedup;
        for (const auto& [node, d] : reached) {
          if (dst_val.has_value() && node != *dst_val) continue;
          if (edge.shortest) {
            emit(row, start, node, d);
          } else if (dedup.insert({node, 0}).second) {
            emit(row, start, node, d);  // pair once, any qualifying depth
          }
        }
      };

      if (src_val.has_value()) {
        run_from(*src_val);
      } else if (dst_val.has_value()) {
        // Reverse BFS from the destination.
        auto reached = trav_.Bfs(upper, *dst_val, edge.direction,
                                 /*reverse=*/true, edge.min_hops,
                                 edge.max_hops, edge.shortest);
        std::set<int64_t> dedup;
        for (const auto& [node, d] : reached) {
          if (edge.shortest) {
            emit(row, node, *dst_val, d);
          } else if (dedup.insert(node).second) {
            emit(row, node, *dst_val, d);
          }
        }
      } else {
        std::string scan_label = !edge.src.label.empty()
                                     ? edge.src.label
                                     : info->src_label;
        for (int64_t start : store_.NodesWithLabel(scan_label)) {
          run_from(start);
        }
      }
    }
    table_.rows = std::move(next);
    return Status::OK();
  }

  // ---- expressions ----

  Result<Value> Eval(const Expr& expr, const Tuple& row) const {
    switch (expr.kind) {
      case ExprKind::kLiteral:
        return ConstantToValue(expr.literal, &db_->symbols());
      case ExprKind::kVariable: {
        int col = table_.Find(expr.var);
        if (col < 0) {
          return Status::NotFound("unknown identifier '" + expr.var + "'");
        }
        return row[static_cast<size_t>(col)];
      }
      case ExprKind::kProperty: {
        int col = table_.Find(expr.var);
        if (col < 0) {
          return Status::NotFound("unknown identifier '" + expr.var + "'");
        }
        const ColumnMeta& meta = table_.meta[static_cast<size_t>(col)];
        if (meta.kind == ColumnMeta::kNode) {
          if (expr.property == "id") return row[static_cast<size_t>(col)];
          return store_.NodeProperty(meta.label,
                                     row[static_cast<size_t>(col)].AsNumber(),
                                     expr.property);
        }
        if (meta.kind == ColumnMeta::kEdge) {
          if (expr.property == "id") return row[static_cast<size_t>(col)];
          uint32_t edge_row = static_cast<uint32_t>(
              row[static_cast<size_t>(meta.row_column)].AsNumber());
          return store_.EdgeProperty(meta.label, edge_row, expr.property);
        }
        return Status::Unsupported("property access on value identifier '" +
                                   expr.var + "'");
      }
      case ExprKind::kParameter:
        return Status::Internal("unresolved parameter");
      case ExprKind::kBinary: {
        switch (expr.bin_op) {
          case BinOp::kAnd:
          case BinOp::kOr: {
            RAQLET_ASSIGN_OR_RETURN(Value lhs, Eval(expr.children[0], row));
            RAQLET_ASSIGN_OR_RETURN(Value rhs, Eval(expr.children[1], row));
            bool l = lhs.AsBool();
            bool r = rhs.AsBool();
            return Value::Bool(expr.bin_op == BinOp::kAnd ? (l && r)
                                                          : (l || r));
          }
          case BinOp::kEq:
          case BinOp::kNe:
          case BinOp::kLt:
          case BinOp::kLe:
          case BinOp::kGt:
          case BinOp::kGe: {
            RAQLET_ASSIGN_OR_RETURN(Value lhs, Eval(expr.children[0], row));
            RAQLET_ASSIGN_OR_RETURN(Value rhs, Eval(expr.children[1], row));
            return Value::Bool(
                CheckCmp(ToCmpOp(expr.bin_op), lhs, rhs, db_->symbols()));
          }
          default: {
            RAQLET_ASSIGN_OR_RETURN(Value lhs, Eval(expr.children[0], row));
            RAQLET_ASSIGN_OR_RETURN(Value rhs, Eval(expr.children[1], row));
            return EvalArith(ToArithOp(expr.bin_op), lhs, rhs);
          }
        }
      }
      case ExprKind::kUnary: {
        RAQLET_ASSIGN_OR_RETURN(Value inner, Eval(expr.children[0], row));
        if (expr.un_op == cypher::UnOp::kNot) {
          return Value::Bool(!inner.AsBool());
        }
        return EvalArith(dlir::ArithOp::kSub, Value::Number(0), inner);
      }
      case ExprKind::kCall: {
        if (expr.function == "id" && expr.children.size() == 1) {
          return Eval(expr.children[0], row);
        }
        if (expr.function == "length" && expr.children.size() == 1 &&
            expr.children[0].kind == ExprKind::kVariable) {
          int col = table_.Find(expr.children[0].var + "_len");
          if (col >= 0) return row[static_cast<size_t>(col)];
          return Status::Unsupported("length() of a non-shortest-path "
                                     "variable");
        }
        return Status::Unsupported("function '" + expr.function + "'");
      }
    }
    return Status::Internal("unhandled expression kind");
  }

  Status ExecWhere(const WhereOp& where) {
    std::vector<Tuple> kept;
    for (Tuple& row : table_.rows) {
      RAQLET_ASSIGN_OR_RETURN(Value v, Eval(where.predicate, row));
      if (v.AsBool()) kept.push_back(std::move(row));
    }
    table_.rows = std::move(kept);
    return Status::OK();
  }

  // ---- WITH / RETURN ----

  Status ExecProjection(const std::vector<Item>& items, bool distinct,
                        bool is_return) {
    RAQLET_FAILPOINT("graph.project");
    int agg_pos = -1;
    for (size_t i = 0; i < items.size(); ++i) {
      if (items[i].expr.IsAggregateCall()) {
        if (agg_pos >= 0) {
          return Status::Unsupported("at most one aggregate per projection");
        }
        agg_pos = static_cast<int>(i);
      }
    }

    BindingTable next;
    for (const Item& item : items) {
      ColumnMeta meta{ColumnMeta::kValue, "", -1};
      if (item.expr.kind == ExprKind::kVariable) {
        int col = table_.Find(item.expr.var);
        if (col >= 0) meta = table_.meta[static_cast<size_t>(col)];
      }
      next.AddColumn(item.alias, meta);
    }
    // Preserve hidden edge-row columns for identifiers that survive.
    std::map<size_t, size_t> row_col_remap;
    for (size_t i = 0; i < items.size(); ++i) {
      const ColumnMeta& meta = next.meta[i];
      if (meta.kind == ColumnMeta::kEdge && meta.row_column >= 0) {
        size_t hidden =
            next.AddColumn("__row_" + items[i].alias,
                           {ColumnMeta::kValue, "", -1});
        row_col_remap[i] = hidden;
        next.meta[i].row_column = static_cast<int>(hidden);
      }
    }

    if (agg_pos < 0) {
      std::unordered_set<Tuple, TupleHash> dedup;
      for (const Tuple& row : table_.rows) {
        Tuple out;
        for (size_t i = 0; i < items.size(); ++i) {
          RAQLET_ASSIGN_OR_RETURN(Value v, Eval(items[i].expr, row));
          out.push_back(v);
        }
        for (const auto& [item_idx, hidden_idx] : row_col_remap) {
          int old_col = table_.Find(items[item_idx].expr.var);
          const ColumnMeta& old_meta =
              table_.meta[static_cast<size_t>(old_col)];
          out.push_back(row[static_cast<size_t>(old_meta.row_column)]);
        }
        if (distinct && !dedup.insert(out).second) continue;
        next.rows.push_back(std::move(out));
      }
      // Hidden columns are internal: drop them for RETURN.
      if (is_return) DropHiddenColumns(&next);
      table_ = std::move(next);
      return Status::OK();
    }

    // Aggregation (bag semantics over the binding table, Cypher-style).
    const Expr& agg_call = items[static_cast<size_t>(agg_pos)].expr;
    struct AggState {
      int64_t count = 0;
      double sum = 0.0;
      bool any_float = false;
      std::optional<Value> min;
      std::optional<Value> max;
      std::unordered_set<Tuple, TupleHash> distinct_args;
    };
    std::map<Tuple, AggState> groups;
    for (const Tuple& row : table_.rows) {
      Tuple key;
      for (size_t i = 0; i < items.size(); ++i) {
        if (static_cast<int>(i) == agg_pos) continue;
        RAQLET_ASSIGN_OR_RETURN(Value v, Eval(items[i].expr, row));
        key.push_back(v);
      }
      AggState& state = groups[key];
      Value arg = Value::Number(0);
      if (!agg_call.children.empty()) {
        RAQLET_ASSIGN_OR_RETURN(arg, Eval(agg_call.children[0], row));
      }
      if (agg_call.distinct_arg &&
          !state.distinct_args.insert(Tuple{arg}).second) {
        continue;
      }
      state.count += 1;
      state.any_float |= arg.kind() == ValueType::kFloat;
      state.sum += arg.NumericValue();
      if (!state.min.has_value() ||
          CompareValues(arg, *state.min, db_->symbols()) < 0) {
        state.min = arg;
      }
      if (!state.max.has_value() ||
          CompareValues(arg, *state.max, db_->symbols()) > 0) {
        state.max = arg;
      }
    }
    for (const auto& [key, state] : groups) {
      Value result;
      if (agg_call.function == "count") {
        result = Value::Number(state.count);
      } else if (agg_call.function == "sum") {
        result = state.any_float
                     ? Value::Float(state.sum)
                     : Value::Number(static_cast<int64_t>(state.sum));
      } else if (agg_call.function == "min") {
        result = state.min.value_or(Value::Null());
      } else if (agg_call.function == "max") {
        result = state.max.value_or(Value::Null());
      } else {  // avg
        result = Value::Float(state.count == 0
                                  ? 0.0
                                  : state.sum /
                                        static_cast<double>(state.count));
      }
      Tuple out;
      size_t ki = 0;
      for (size_t i = 0; i < items.size(); ++i) {
        if (static_cast<int>(i) == agg_pos) {
          out.push_back(result);
        } else {
          out.push_back(key[ki++]);
        }
      }
      next.rows.push_back(std::move(out));
    }
    if (is_return) DropHiddenColumns(&next);
    table_ = std::move(next);
    return Status::OK();
  }

  void DropHiddenColumns(BindingTable* table) const {
    std::vector<size_t> keep;
    for (size_t i = 0; i < table->columns.size(); ++i) {
      if (table->columns[i].rfind("__row_", 0) != 0) keep.push_back(i);
    }
    if (keep.size() == table->columns.size()) return;
    BindingTable trimmed;
    for (size_t i : keep) {
      trimmed.AddColumn(table->columns[i], table->meta[i]);
    }
    for (const Tuple& row : table->rows) {
      Tuple out;
      for (size_t i : keep) out.push_back(row[i]);
      trimmed.rows.push_back(std::move(out));
    }
    *table = std::move(trimmed);
  }

  const GraphStore& store_;
  const schema::DlSchema& dl_;
  Database* db_;
  GraphStats* stats_;
  obs::GraphMetrics* metrics_;
  const runtime::QueryGuard* guard_;
  BindingTable table_;
  Traversals trav_;
};

// ---------------------------------------------------------------------------
// kColumnBatch: the columnar binding table. One Value column per bound
// variable; MATCH expansion records, per emitted binding, only the index of
// its source row plus the newly-bound values, then gathers every prior
// column through that selection in one pass per column — no per-match row
// copy, no per-row allocation. WHERE compacts via a selection mask,
// projection evaluates items column-at-a-time, and DISTINCT dedups once per
// batch through Relation::InsertColumns. Row order is bit-identical to the
// row-binding interpreter (asserted by cross_engine_test.cc).
// ---------------------------------------------------------------------------

struct BindingBatch {
  std::vector<std::string> columns;
  std::map<std::string, size_t> index;
  std::vector<ColumnMeta> meta;
  std::vector<std::vector<Value>> cols;  // one vector per column
  size_t rows = 0;

  int Find(const std::string& name) const {
    auto it = index.find(name);
    return it == index.end() ? -1 : static_cast<int>(it->second);
  }
  size_t AddColumn(const std::string& name, ColumnMeta m) {
    index[name] = columns.size();
    columns.push_back(name);
    meta.push_back(m);
    cols.emplace_back();
    return columns.size() - 1;
  }
};

class BatchExecution {
 public:
  BatchExecution(const GraphStore& store, const schema::DlSchema& dl,
                 Database* db, GraphStats* stats,
                 obs::GraphMetrics* metrics = nullptr,
                 const runtime::QueryGuard* guard = nullptr)
      : store_(store), dl_(dl), db_(db), stats_(stats), metrics_(metrics),
        guard_(guard), trav_(store, stats, metrics, guard) {}

  Result<ResultTable> Run(const PgirQuery& query) {
    table_.rows = 1;  // one empty binding
    int64_t clause_index = 0;
    size_t rows_prev = 0;
    for (const pgir::Op& op : query.ops) {
      // Per-clause guard checkpoint; see RowExecution::Run. The two modes
      // count identical row deltas, so a fixed budget trips both at the
      // same clause.
      if (guard_ != nullptr) {
        size_t now = have_result_rows_ ? result_rows_.size() : table_.rows;
        RAQLET_RETURN_IF_ERROR(
            guard_->AddRows(now > rows_prev ? now - rows_prev : 0));
        rows_prev = now;
        RAQLET_RETURN_IF_ERROR(guard_->Check());
      }
      obs::TraceScope clause_span("graph.clause", clause_index++);
      EnsureColumnar();
      const char* kind = "";
      if (const auto* match = std::get_if<MatchOp>(&op)) {
        kind = "match";
        RAQLET_RETURN_IF_ERROR(ExecMatch(*match));
      } else if (const auto* where = std::get_if<WhereOp>(&op)) {
        kind = "where";
        RAQLET_RETURN_IF_ERROR(ExecWhere(*where));
      } else if (const auto* with = std::get_if<WithOp>(&op)) {
        kind = "with";
        RAQLET_RETURN_IF_ERROR(ExecProjection(with->items, with->distinct,
                                              /*is_return=*/false));
      } else if (const auto* ret = std::get_if<ReturnOp>(&op)) {
        kind = "return";
        RAQLET_RETURN_IF_ERROR(
            ExecProjection(ret->items, ret->distinct, /*is_return=*/true));
      }
      if (metrics_ != nullptr) {
        metrics_->clauses.push_back(
            {kind, have_result_rows_ ? result_rows_.size() : table_.rows});
      }
    }
    // See RowExecution::Run: a trip inside the last clause must surface
    // as the terminal status, never as a partial result.
    if (guard_ != nullptr) RAQLET_RETURN_IF_ERROR(guard_->Check());
    ResultTable result;
    result.columns = table_.columns;
    if (have_result_rows_) {
      result.rows = std::move(result_rows_);
    } else {
      result.rows = Materialize();
    }
    return result;
  }

 private:
  // A column expression over the batch: either a borrowed column (one
  // value per batch row) or a broadcast scalar. Computed intermediates
  // live in an EvalScratch deque so borrowed pointers stay stable.
  struct BCol {
    const std::vector<Value>* col = nullptr;
    Value scalar;
    const Value& at(size_t i) const {
      return col != nullptr ? (*col)[i] : scalar;
    }
  };
  using EvalScratch = std::deque<std::vector<Value>>;

  // ---- batch plumbing ----

  // Projection/aggregation paths that dedup through a Relation hand the
  // result back as row tuples; re-transpose lazily if another clause
  // follows (RETURN is last in every real query, so this is free).
  void EnsureColumnar() {
    if (!have_result_rows_) return;
    table_.cols.assign(table_.columns.size(), {});
    for (size_t c = 0; c < table_.columns.size(); ++c) {
      std::vector<Value>& col = table_.cols[c];
      col.resize(result_rows_.size());
      for (size_t i = 0; i < result_rows_.size(); ++i) {
        col[i] = c < result_rows_[i].size() ? result_rows_[i][c] : Value();
      }
    }
    table_.rows = result_rows_.size();
    result_rows_.clear();
    have_result_rows_ = false;
  }

  std::vector<Tuple> Materialize() const {
    std::vector<Tuple> rows(table_.rows);
    for (size_t i = 0; i < table_.rows; ++i) {
      Tuple& t = rows[i];
      t.reserve(table_.cols.size());
      for (const std::vector<Value>& col : table_.cols) {
        t.push_back(i < col.size() ? col[i] : Value());
      }
    }
    return rows;
  }

  // Gathers the pre-expansion columns through the match selection `src`
  // (one pass per column) and installs the columns this clause appended.
  // `appended` must hold exactly the vectors for columns registered after
  // `prior_ncols`, in registration order.
  void InstallExpansion(size_t prior_ncols, const std::vector<uint32_t>& src,
                        std::vector<std::vector<Value>> appended) {
    for (size_t c = 0; c < prior_ncols; ++c) {
      const std::vector<Value>& old = table_.cols[c];
      std::vector<Value> gathered(src.size());
      for (size_t k = 0; k < src.size(); ++k) gathered[k] = old[src[k]];
      table_.cols[c] = std::move(gathered);
    }
    for (size_t k = 0; k < appended.size(); ++k) {
      table_.cols[prior_ncols + k] = std::move(appended[k]);
    }
    table_.rows = src.size();
  }

  // Drops batch rows whose keep flag is 0, compacting every column in
  // place (stable).
  void CompactBatch(const std::vector<char>& keep) {
    size_t kept = 0;
    for (size_t i = 0; i < table_.rows; ++i) kept += keep[i] != 0;
    if (kept == table_.rows) return;
    for (std::vector<Value>& col : table_.cols) {
      if (col.size() != table_.rows) continue;
      size_t w = 0;
      for (size_t i = 0; i < col.size(); ++i) {
        if (keep[i]) col[w++] = col[i];
      }
      col.resize(w);
    }
    table_.rows = kept;
  }

  // ---- MATCH ----

  Status CheckNode(const NodePat& node, bool* known) {
    int col = table_.Find(node.id);
    *known = col >= 0;
    if (!*known && node.label.empty()) {
      return Status::Unsupported("unlabeled node pattern introduces '" +
                                 node.id + "'");
    }
    if (!node.label.empty() && dl_.FindNode(node.label) == nullptr) {
      return Status::NotFound("no node type with label '" + node.label + "'");
    }
    return Status::OK();
  }

  bool EndpointOk(const NodePat& node, int64_t id) const {
    return node.label.empty() || store_.HasLabel(node.label, id);
  }

  Status ExecMatch(const MatchOp& match) {
    for (const EdgePat& edge : match.edges) {
      if (edge.variable_length || edge.shortest) {
        RAQLET_RETURN_IF_ERROR(ExpandRecursive(edge));
      } else {
        RAQLET_RETURN_IF_ERROR(ExpandSimple(edge));
      }
    }
    for (const NodePat& node : match.nodes) {
      RAQLET_RETURN_IF_ERROR(ExpandLoneNode(node));
    }
    return Status::OK();
  }

  Status ExpandLoneNode(const NodePat& node) {
    bool known = false;
    RAQLET_RETURN_IF_ERROR(CheckNode(node, &known));
    if (known) {
      // Label filter on the existing binding: selection-mask compaction.
      if (node.label.empty()) return Status::OK();
      const std::vector<Value>& col =
          table_.cols[static_cast<size_t>(table_.Find(node.id))];
      std::vector<char> keep(table_.rows);
      for (size_t i = 0; i < table_.rows; ++i) {
        keep[i] = store_.HasLabel(node.label, col[i].AsNumber());
      }
      CompactBatch(keep);
      return Status::OK();
    }
    const size_t prior_ncols = table_.cols.size();
    table_.AddColumn(node.id, {ColumnMeta::kNode, node.label, -1});
    const std::vector<int64_t>& nodes = store_.NodesWithLabel(node.label);
    std::vector<uint32_t> src;
    std::vector<Value> vals;
    src.reserve(table_.rows * nodes.size());
    vals.reserve(table_.rows * nodes.size());
    for (size_t i = 0; i < table_.rows; ++i) {
      for (int64_t id : nodes) {
        src.push_back(static_cast<uint32_t>(i));
        vals.push_back(Value::Number(id));
        if (stats_ != nullptr) ++stats_->rows_expanded;
      }
    }
    std::vector<std::vector<Value>> appended;
    appended.push_back(std::move(vals));
    InstallExpansion(prior_ncols, src, std::move(appended));
    return Status::OK();
  }

  Status ExpandSimple(const EdgePat& edge) {
    const schema::EdgeRelationInfo* info = dl_.FindEdge(edge.label);
    if (info == nullptr) {
      return Status::NotFound("no edge type with label '" + edge.label + "'");
    }
    bool src_known = false;
    bool dst_known = false;
    RAQLET_RETURN_IF_ERROR(CheckNode(edge.src, &src_known));
    RAQLET_RETURN_IF_ERROR(CheckNode(edge.dst, &dst_known));

    int src_col = table_.Find(edge.src.id);
    int dst_col = table_.Find(edge.dst.id);

    const size_t prior_ncols = table_.cols.size();
    if (!src_known) {
      table_.AddColumn(edge.src.id, {ColumnMeta::kNode, edge.src.label, -1});
    }
    if (!dst_known && edge.dst.id != edge.src.id) {
      table_.AddColumn(edge.dst.id, {ColumnMeta::kNode, edge.dst.label, -1});
    }
    bool bind_edge = info->PropertyColumn("id") >= 0 &&
                     edge.direction != EdgeDirection::kUndirected &&
                     table_.Find(edge.id) < 0;
    if (bind_edge) {
      int edge_row_col = static_cast<int>(table_.columns.size()) + 1;
      table_.AddColumn(edge.id,
                       {ColumnMeta::kEdge, edge.label, edge_row_col});
      table_.AddColumn("__row_" + edge.id, {ColumnMeta::kValue, "", -1});
    }

    const std::string upper = schema::ToUpperSnake(edge.label);
    int id_prop_col = info->PropertyColumn("id");
    // Borrow the edge-id column once for the whole expansion.
    Relation::ColumnView edge_id_col;
    if (bind_edge) {
      Result<Relation::ColumnView> c = store_.EdgeColumn(upper, id_prop_col);
      RAQLET_RETURN_IF_ERROR(c.status());
      edge_id_col = *c;
    }

    // Per-match output: the source-row selection plus one vector per
    // newly-bound column. Prior columns are gathered once at the end.
    std::vector<uint32_t> match_src;
    std::vector<Value> col_src;
    std::vector<Value> col_dst;
    std::vector<Value> col_edge;
    std::vector<Value> col_erow;
    auto emit = [&](size_t row_i, int64_t src_id, int64_t dst_id,
                    uint32_t edge_row) {
      if (!EndpointOk(edge.src, src_id) || !EndpointOk(edge.dst, dst_id)) {
        return;
      }
      if (!dst_known && edge.dst.id == edge.src.id && src_id != dst_id) {
        return;  // (a)-[:X]->(a): self loop required
      }
      match_src.push_back(static_cast<uint32_t>(row_i));
      if (!src_known) col_src.push_back(Value::Number(src_id));
      if (!dst_known && edge.dst.id != edge.src.id) {
        col_dst.push_back(Value::Number(dst_id));
      }
      if (bind_edge) {
        col_edge.push_back(edge_id_col.at(edge_row));
        col_erow.push_back(Value::Number(edge_row));
      }
      if (stats_ != nullptr) ++stats_->rows_expanded;
    };

    std::set<std::pair<int64_t, uint32_t>> seen;
    for (size_t i = 0; i < table_.rows; ++i) {
      std::optional<int64_t> src_val;
      std::optional<int64_t> dst_val;
      if (src_known) {
        src_val = table_.cols[static_cast<size_t>(src_col)][i].AsNumber();
      }
      if (dst_known) {
        dst_val = table_.cols[static_cast<size_t>(dst_col)][i].AsNumber();
      }

      // Deduplicate undirected self-loop double visits.
      seen.clear();
      auto visit = [&](int64_t from, const GraphStore::Neighbor& nb) {
        if (!seen.insert({nb.node, nb.edge_row}).second) return;
        if (dst_val.has_value() && nb.node != *dst_val) return;
        if (edge.dst.id == edge.src.id && !dst_known && nb.node != from) {
          return;  // repeated identifier within the pattern
        }
        emit(i, from, nb.node, nb.edge_row);
      };

      if (src_val.has_value()) {
        trav_.ForEachNeighbor(upper, *src_val, edge.direction,
                              /*reverse=*/false,
                              [&](const GraphStore::Neighbor& nb) {
                                visit(*src_val, nb);
                              });
      } else if (dst_val.has_value()) {
        // Traverse backwards, binding the source.
        trav_.ForEachNeighbor(upper, *dst_val, edge.direction,
                              /*reverse=*/true,
                              [&](const GraphStore::Neighbor& nb) {
                                // nb.node is the source here.
                                emit(i, nb.node, *dst_val, nb.edge_row);
                              });
      } else {
        // Neither endpoint bound: scan source label (or all labeled nodes
        // of the schema endpoint).
        std::string scan_label = !edge.src.label.empty()
                                     ? edge.src.label
                                     : info->src_label;
        for (int64_t id : store_.NodesWithLabel(scan_label)) {
          seen.clear();
          trav_.ForEachNeighbor(upper, id, edge.direction, /*reverse=*/false,
                                [&](const GraphStore::Neighbor& nb) {
                                  visit(id, nb);
                                });
        }
      }
    }

    std::vector<std::vector<Value>> appended;
    if (!src_known) appended.push_back(std::move(col_src));
    if (!dst_known && edge.dst.id != edge.src.id) {
      appended.push_back(std::move(col_dst));
    }
    if (bind_edge) {
      appended.push_back(std::move(col_edge));
      appended.push_back(std::move(col_erow));
    }
    InstallExpansion(prior_ncols, match_src, std::move(appended));
    return Status::OK();
  }

  Status ExpandRecursive(const EdgePat& edge) {
    const schema::EdgeRelationInfo* info = dl_.FindEdge(edge.label);
    if (info == nullptr) {
      return Status::NotFound("no edge type with label '" + edge.label + "'");
    }
    const std::string upper = schema::ToUpperSnake(edge.label);
    bool src_known = false;
    bool dst_known = false;
    RAQLET_RETURN_IF_ERROR(CheckNode(edge.src, &src_known));
    RAQLET_RETURN_IF_ERROR(CheckNode(edge.dst, &dst_known));
    int src_col = table_.Find(edge.src.id);
    int dst_col = table_.Find(edge.dst.id);

    const size_t prior_ncols = table_.cols.size();
    if (!src_known) {
      table_.AddColumn(edge.src.id, {ColumnMeta::kNode, edge.src.label, -1});
    }
    if (!dst_known) {
      table_.AddColumn(edge.dst.id, {ColumnMeta::kNode, edge.dst.label, -1});
    }
    bool bind_len = edge.shortest && !edge.path_id.empty();
    if (bind_len) {
      table_.AddColumn(edge.path_id + "_len",
                       {ColumnMeta::kPathLength, "", -1});
    }

    std::vector<uint32_t> match_src;
    std::vector<Value> col_src;
    std::vector<Value> col_dst;
    std::vector<Value> col_len;
    auto emit = [&](size_t row_i, int64_t src_id, int64_t dst_id,
                    int64_t len) {
      if (!EndpointOk(edge.src, src_id) || !EndpointOk(edge.dst, dst_id)) {
        return;
      }
      match_src.push_back(static_cast<uint32_t>(row_i));
      if (!src_known) col_src.push_back(Value::Number(src_id));
      if (!dst_known) col_dst.push_back(Value::Number(dst_id));
      if (bind_len) col_len.push_back(Value::Number(len));
      if (stats_ != nullptr) ++stats_->rows_expanded;
    };

    // Unbounded non-shortest reachability skips the per-row (node, depth)
    // materialization and set-based dedup entirely: the memoized closure
    // is already a set, so its sorted members union straight into the
    // destination column. Equivalent to (and ordered like) the generic
    // path below.
    const bool closure_fast =
        !edge.shortest && edge.max_hops < 0 && edge.min_hops <= 1;

    for (size_t i = 0; i < table_.rows; ++i) {
      std::optional<int64_t> src_val;
      std::optional<int64_t> dst_val;
      if (src_known) {
        src_val = table_.cols[static_cast<size_t>(src_col)][i].AsNumber();
      }
      if (dst_known) {
        dst_val = table_.cols[static_cast<size_t>(dst_col)][i].AsNumber();
      }

      auto closure_from = [&](int64_t start) {
        for (int64_t node :
             trav_.SortedClosure(upper, edge.direction, false, start)) {
          if (dst_val.has_value() && node != *dst_val) continue;
          emit(i, start, node, 1);
        }
        if (edge.min_hops == 0 &&
            (!dst_val.has_value() || *dst_val == start) &&
            trav_.Closure(upper, edge.direction, false, start)
                    .count(start) == 0) {
          emit(i, start, start, 0);
        }
      };

      auto run_from = [&](int64_t start) {
        if (closure_fast) {
          closure_from(start);
          return;
        }
        auto reached = trav_.Bfs(upper, start, edge.direction,
                                 /*reverse=*/false, edge.min_hops,
                                 edge.max_hops, edge.shortest);
        std::set<std::pair<int64_t, int64_t>> dedup;
        for (const auto& [node, d] : reached) {
          if (dst_val.has_value() && node != *dst_val) continue;
          if (edge.shortest) {
            emit(i, start, node, d);
          } else if (dedup.insert({node, 0}).second) {
            emit(i, start, node, d);  // pair once, any qualifying depth
          }
        }
      };

      if (src_val.has_value()) {
        run_from(*src_val);
      } else if (dst_val.has_value()) {
        // Reverse traversal from the destination, binding sources.
        if (closure_fast) {
          for (int64_t node :
               trav_.SortedClosure(upper, edge.direction, true, *dst_val)) {
            emit(i, node, *dst_val, 1);
          }
          if (edge.min_hops == 0 &&
              trav_.Closure(upper, edge.direction, true, *dst_val)
                      .count(*dst_val) == 0) {
            emit(i, *dst_val, *dst_val, 0);
          }
          continue;
        }
        auto reached = trav_.Bfs(upper, *dst_val, edge.direction,
                                 /*reverse=*/true, edge.min_hops,
                                 edge.max_hops, edge.shortest);
        std::set<int64_t> dedup;
        for (const auto& [node, d] : reached) {
          if (edge.shortest) {
            emit(i, node, *dst_val, d);
          } else if (dedup.insert(node).second) {
            emit(i, node, *dst_val, d);
          }
        }
      } else {
        std::string scan_label = !edge.src.label.empty()
                                     ? edge.src.label
                                     : info->src_label;
        for (int64_t start : store_.NodesWithLabel(scan_label)) {
          run_from(start);
        }
      }
    }

    std::vector<std::vector<Value>> appended;
    if (!src_known) appended.push_back(std::move(col_src));
    if (!dst_known) appended.push_back(std::move(col_dst));
    if (bind_len) appended.push_back(std::move(col_len));
    InstallExpansion(prior_ncols, match_src, std::move(appended));
    return Status::OK();
  }

  // ---- expressions (column-at-a-time) ----

  Result<BCol> EvalBatch(const Expr& expr, EvalScratch* scratch) const {
    const size_t n = table_.rows;
    auto make_scalar = [](Value v) {
      BCol out;
      out.scalar = v;
      return out;
    };
    auto make_owned = [&](std::vector<Value> vals) {
      scratch->push_back(std::move(vals));
      BCol out;
      out.col = &scratch->back();
      return out;
    };
    switch (expr.kind) {
      case ExprKind::kLiteral:
        return make_scalar(ConstantToValue(expr.literal, &db_->symbols()));
      case ExprKind::kVariable: {
        int col = table_.Find(expr.var);
        if (col < 0) {
          return Status::NotFound("unknown identifier '" + expr.var + "'");
        }
        BCol out;
        out.col = &table_.cols[static_cast<size_t>(col)];
        return out;
      }
      case ExprKind::kProperty: {
        int col = table_.Find(expr.var);
        if (col < 0) {
          return Status::NotFound("unknown identifier '" + expr.var + "'");
        }
        const ColumnMeta& meta = table_.meta[static_cast<size_t>(col)];
        if (meta.kind == ColumnMeta::kNode) {
          const std::vector<Value>& ids =
              table_.cols[static_cast<size_t>(col)];
          if (expr.property == "id") {
            BCol out;
            out.col = &ids;
            return out;
          }
          std::vector<Value> vals(n);
          for (size_t i = 0; i < n; ++i) {
            RAQLET_ASSIGN_OR_RETURN(
                vals[i], store_.NodeProperty(meta.label, ids[i].AsNumber(),
                                             expr.property));
          }
          return make_owned(std::move(vals));
        }
        if (meta.kind == ColumnMeta::kEdge) {
          if (expr.property == "id") {
            BCol out;
            out.col = &table_.cols[static_cast<size_t>(col)];
            return out;
          }
          const std::vector<Value>& edge_rows =
              table_.cols[static_cast<size_t>(meta.row_column)];
          std::vector<Value> vals(n);
          for (size_t i = 0; i < n; ++i) {
            RAQLET_ASSIGN_OR_RETURN(
                vals[i],
                store_.EdgeProperty(
                    meta.label,
                    static_cast<uint32_t>(edge_rows[i].AsNumber()),
                    expr.property));
          }
          return make_owned(std::move(vals));
        }
        return Status::Unsupported("property access on value identifier '" +
                                   expr.var + "'");
      }
      case ExprKind::kParameter:
        return Status::Internal("unresolved parameter");
      case ExprKind::kBinary: {
        RAQLET_ASSIGN_OR_RETURN(BCol lhs,
                                EvalBatch(expr.children[0], scratch));
        RAQLET_ASSIGN_OR_RETURN(BCol rhs,
                                EvalBatch(expr.children[1], scratch));
        const bool scalar = lhs.col == nullptr && rhs.col == nullptr;
        switch (expr.bin_op) {
          case BinOp::kAnd:
          case BinOp::kOr: {
            auto apply = [&](const Value& l, const Value& r) {
              bool lb = l.AsBool();
              bool rb = r.AsBool();
              return Value::Bool(expr.bin_op == BinOp::kAnd ? (lb && rb)
                                                            : (lb || rb));
            };
            if (scalar) return make_scalar(apply(lhs.scalar, rhs.scalar));
            std::vector<Value> vals(n);
            for (size_t i = 0; i < n; ++i) {
              vals[i] = apply(lhs.at(i), rhs.at(i));
            }
            return make_owned(std::move(vals));
          }
          case BinOp::kEq:
          case BinOp::kNe:
          case BinOp::kLt:
          case BinOp::kLe:
          case BinOp::kGt:
          case BinOp::kGe: {
            dlir::CmpOp op = ToCmpOp(expr.bin_op);
            if (scalar) {
              return make_scalar(Value::Bool(
                  CheckCmp(op, lhs.scalar, rhs.scalar, db_->symbols())));
            }
            std::vector<Value> vals(n);
            for (size_t i = 0; i < n; ++i) {
              vals[i] = Value::Bool(
                  CheckCmp(op, lhs.at(i), rhs.at(i), db_->symbols()));
            }
            return make_owned(std::move(vals));
          }
          default: {
            dlir::ArithOp op = ToArithOp(expr.bin_op);
            if (scalar) {
              RAQLET_ASSIGN_OR_RETURN(Value v,
                                      EvalArith(op, lhs.scalar, rhs.scalar));
              return make_scalar(v);
            }
            std::vector<Value> vals(n);
            for (size_t i = 0; i < n; ++i) {
              RAQLET_ASSIGN_OR_RETURN(vals[i],
                                      EvalArith(op, lhs.at(i), rhs.at(i)));
            }
            return make_owned(std::move(vals));
          }
        }
      }
      case ExprKind::kUnary: {
        RAQLET_ASSIGN_OR_RETURN(BCol inner,
                                EvalBatch(expr.children[0], scratch));
        if (expr.un_op == cypher::UnOp::kNot) {
          if (inner.col == nullptr) {
            return make_scalar(Value::Bool(!inner.scalar.AsBool()));
          }
          std::vector<Value> vals(n);
          for (size_t i = 0; i < n; ++i) {
            vals[i] = Value::Bool(!inner.at(i).AsBool());
          }
          return make_owned(std::move(vals));
        }
        if (inner.col == nullptr) {
          RAQLET_ASSIGN_OR_RETURN(
              Value v, EvalArith(dlir::ArithOp::kSub, Value::Number(0),
                                 inner.scalar));
          return make_scalar(v);
        }
        std::vector<Value> vals(n);
        for (size_t i = 0; i < n; ++i) {
          RAQLET_ASSIGN_OR_RETURN(
              vals[i],
              EvalArith(dlir::ArithOp::kSub, Value::Number(0), inner.at(i)));
        }
        return make_owned(std::move(vals));
      }
      case ExprKind::kCall: {
        if (expr.function == "id" && expr.children.size() == 1) {
          return EvalBatch(expr.children[0], scratch);
        }
        if (expr.function == "length" && expr.children.size() == 1 &&
            expr.children[0].kind == ExprKind::kVariable) {
          int col = table_.Find(expr.children[0].var + "_len");
          if (col >= 0) {
            BCol out;
            out.col = &table_.cols[static_cast<size_t>(col)];
            return out;
          }
          return Status::Unsupported("length() of a non-shortest-path "
                                     "variable");
        }
        return Status::Unsupported("function '" + expr.function + "'");
      }
    }
    return Status::Internal("unhandled expression kind");
  }

  Status ExecWhere(const WhereOp& where) {
    if (table_.rows == 0) return Status::OK();
    EvalScratch scratch;
    RAQLET_ASSIGN_OR_RETURN(BCol pred, EvalBatch(where.predicate, &scratch));
    std::vector<char> keep(table_.rows);
    for (size_t i = 0; i < table_.rows; ++i) {
      keep[i] = pred.at(i).AsBool();
    }
    CompactBatch(keep);
    return Status::OK();
  }

  // ---- WITH / RETURN ----

  static RelationSchema ScratchSchema(size_t ncols) {
    RelationSchema schema;
    schema.name = "__graph_distinct__";
    schema.columns.resize(ncols);
    return schema;
  }

  // Drops "__row_" columns from a projection result. `rows`, when given,
  // holds the row-major form of the table (hidden columns are always
  // registered last by ExecProjection, so dropping is a truncation).
  static void DropHidden(BindingBatch* table, std::vector<Tuple>* rows) {
    std::vector<size_t> keep;
    for (size_t i = 0; i < table->columns.size(); ++i) {
      if (table->columns[i].rfind("__row_", 0) != 0) keep.push_back(i);
    }
    if (keep.size() == table->columns.size()) return;
    bool prefix = true;
    for (size_t k = 0; k < keep.size(); ++k) prefix &= keep[k] == k;
    BindingBatch trimmed;
    for (size_t i : keep) {
      trimmed.AddColumn(table->columns[i], table->meta[i]);
      trimmed.cols.back() = std::move(table->cols[i]);
    }
    trimmed.rows = table->rows;
    *table = std::move(trimmed);
    if (rows == nullptr) return;
    for (Tuple& row : *rows) {
      if (prefix) {
        if (row.size() > keep.size()) row.resize(keep.size());
        continue;
      }
      Tuple out;
      out.reserve(keep.size());
      for (size_t i : keep) {
        if (i < row.size()) out.push_back(row[i]);
      }
      row = std::move(out);
    }
  }

  Status ExecProjection(const std::vector<Item>& items, bool distinct,
                        bool is_return) {
    RAQLET_FAILPOINT("graph.project");
    int agg_pos = -1;
    for (size_t i = 0; i < items.size(); ++i) {
      if (items[i].expr.IsAggregateCall()) {
        if (agg_pos >= 0) {
          return Status::Unsupported("at most one aggregate per projection");
        }
        agg_pos = static_cast<int>(i);
      }
    }

    BindingBatch next;
    for (const Item& item : items) {
      ColumnMeta meta{ColumnMeta::kValue, "", -1};
      if (item.expr.kind == ExprKind::kVariable) {
        int col = table_.Find(item.expr.var);
        if (col >= 0) meta = table_.meta[static_cast<size_t>(col)];
      }
      next.AddColumn(item.alias, meta);
    }
    // Preserve hidden edge-row columns for identifiers that survive.
    std::map<size_t, size_t> row_col_remap;
    for (size_t i = 0; i < items.size(); ++i) {
      const ColumnMeta& meta = next.meta[i];
      if (meta.kind == ColumnMeta::kEdge && meta.row_column >= 0) {
        size_t hidden =
            next.AddColumn("__row_" + items[i].alias,
                           {ColumnMeta::kValue, "", -1});
        row_col_remap[i] = hidden;
        next.meta[i].row_column = static_cast<int>(hidden);
      }
    }

    if (agg_pos < 0) {
      return ProjectPlain(items, distinct, is_return, row_col_remap, &next);
    }
    return ProjectAggregate(items, static_cast<size_t>(agg_pos), is_return,
                            &next);
  }

  Status ProjectPlain(const std::vector<Item>& items, bool distinct,
                      bool is_return,
                      const std::map<size_t, size_t>& row_col_remap,
                      BindingBatch* next) {
    const size_t n = table_.rows;
    const size_t out_cols = next->columns.size();
    if (n == 0) {
      if (is_return) DropHidden(next, nullptr);
      table_ = std::move(*next);
      table_.rows = 0;
      have_result_rows_ = false;
      return Status::OK();
    }

    // Evaluate every item column-at-a-time; hidden edge-row columns
    // borrow their source column directly.
    EvalScratch scratch;
    std::vector<BCol> out(out_cols);
    for (size_t i = 0; i < items.size(); ++i) {
      RAQLET_ASSIGN_OR_RETURN(out[i], EvalBatch(items[i].expr, &scratch));
    }
    for (const auto& [item_idx, hidden_idx] : row_col_remap) {
      int old_col = table_.Find(items[item_idx].expr.var);
      const ColumnMeta& old_meta = table_.meta[static_cast<size_t>(old_col)];
      out[hidden_idx].col =
          &table_.cols[static_cast<size_t>(old_meta.row_column)];
    }

    if (distinct) {
      // Stage the evaluated columns and dedup once per batch through
      // Relation::InsertColumns (first occurrence wins, batch order kept —
      // the same policy the per-tuple hash set implemented). Columnar in,
      // columnar out; rows are only boxed for the final RETURN.
      std::vector<std::vector<Value>> staged(out_cols);
      for (size_t c = 0; c < out_cols; ++c) {
        staged[c].reserve(n);
        for (size_t i = 0; i < n; ++i) staged[c].push_back(out[c].at(i));
      }
      Relation dedup_rel(ScratchSchema(out_cols));
      RAQLET_RETURN_IF_ERROR(dedup_rel.InsertColumns(&staged).status());
      if (is_return) {
        std::vector<Tuple> rows = dedup_rel.ReleaseRows();
        DropHidden(next, &rows);
        table_ = std::move(*next);
        table_.rows = rows.size();
        result_rows_ = std::move(rows);
        have_result_rows_ = true;
        return Status::OK();
      }
      // Intermediate WITH DISTINCT: stay columnar.
      const size_t kept = dedup_rel.size();
      next->cols = dedup_rel.ReleaseColumns();
      next->rows = kept;
      table_ = std::move(*next);
      have_result_rows_ = false;
      return Status::OK();
    }

    // No dedup: install the evaluated columns directly. Both borrow
    // sources — the old binding table and the scratch deque — are
    // discarded right after, so a column borrowed by exactly one output
    // is moved, not copied (a second borrow of the same source copies).
    std::map<const std::vector<Value>*, size_t> borrows;
    for (size_t c = 0; c < out_cols; ++c) {
      if (out[c].col != nullptr) ++borrows[out[c].col];
    }
    auto find_mutable =
        [&](const std::vector<Value>* src) -> std::vector<Value>* {
      for (std::vector<Value>& col : table_.cols) {
        if (&col == src) return &col;
      }
      for (std::vector<Value>& col : scratch) {
        if (&col == src) return &col;
      }
      return nullptr;
    };
    for (size_t c = 0; c < out_cols; ++c) {
      if (out[c].col == nullptr) {
        next->cols[c].assign(n, out[c].scalar);
        continue;
      }
      std::vector<Value>* source =
          borrows[out[c].col] == 1 ? find_mutable(out[c].col) : nullptr;
      if (source != nullptr) {
        next->cols[c] = std::move(*source);
      } else {
        next->cols[c] = *out[c].col;
      }
    }
    next->rows = n;
    if (is_return) DropHidden(next, nullptr);
    table_ = std::move(*next);
    have_result_rows_ = false;
    return Status::OK();
  }

  Status ProjectAggregate(const std::vector<Item>& items, size_t agg_pos,
                          bool is_return, BindingBatch* next) {
    // Aggregation (bag semantics over the binding table, Cypher-style):
    // group keys and the aggregate argument are evaluated column-wise,
    // then accumulated in one pass over the batch.
    const Expr& agg_call = items[agg_pos].expr;
    struct AggState {
      int64_t count = 0;
      double sum = 0.0;
      bool any_float = false;
      std::optional<Value> min;
      std::optional<Value> max;
      std::unordered_set<Tuple, TupleHash> distinct_args;
    };
    std::map<Tuple, AggState> groups;
    const size_t n = table_.rows;
    if (n > 0) {
      EvalScratch scratch;
      std::vector<BCol> key_cols;
      key_cols.reserve(items.size() - 1);
      for (size_t i = 0; i < items.size(); ++i) {
        if (i == agg_pos) continue;
        RAQLET_ASSIGN_OR_RETURN(BCol c, EvalBatch(items[i].expr, &scratch));
        key_cols.push_back(c);
      }
      std::optional<BCol> arg_col;
      if (!agg_call.children.empty()) {
        RAQLET_ASSIGN_OR_RETURN(BCol c,
                                EvalBatch(agg_call.children[0], &scratch));
        arg_col = c;
      }
      Tuple key(key_cols.size());
      for (size_t i = 0; i < n; ++i) {
        for (size_t k = 0; k < key_cols.size(); ++k) {
          key[k] = key_cols[k].at(i);
        }
        AggState& state = groups[key];
        Value arg =
            arg_col.has_value() ? arg_col->at(i) : Value::Number(0);
        if (agg_call.distinct_arg &&
            !state.distinct_args.insert(Tuple{arg}).second) {
          continue;
        }
        state.count += 1;
        state.any_float |= arg.kind() == ValueType::kFloat;
        state.sum += arg.NumericValue();
        if (!state.min.has_value() ||
            CompareValues(arg, *state.min, db_->symbols()) < 0) {
          state.min = arg;
        }
        if (!state.max.has_value() ||
            CompareValues(arg, *state.max, db_->symbols()) > 0) {
          state.max = arg;
        }
      }
    }

    std::vector<Tuple> out_rows;
    out_rows.reserve(groups.size());
    for (const auto& [key, state] : groups) {
      Value result;
      if (agg_call.function == "count") {
        result = Value::Number(state.count);
      } else if (agg_call.function == "sum") {
        result = state.any_float
                     ? Value::Float(state.sum)
                     : Value::Number(static_cast<int64_t>(state.sum));
      } else if (agg_call.function == "min") {
        result = state.min.value_or(Value::Null());
      } else if (agg_call.function == "max") {
        result = state.max.value_or(Value::Null());
      } else {  // avg
        result = Value::Float(state.count == 0
                                  ? 0.0
                                  : state.sum /
                                        static_cast<double>(state.count));
      }
      Tuple out;
      size_t ki = 0;
      for (size_t i = 0; i < items.size(); ++i) {
        if (i == agg_pos) {
          out.push_back(result);
        } else {
          out.push_back(key[ki++]);
        }
      }
      out_rows.push_back(std::move(out));
    }
    if (is_return) DropHidden(next, &out_rows);
    table_ = std::move(*next);
    table_.rows = out_rows.size();
    result_rows_ = std::move(out_rows);
    have_result_rows_ = true;
    return Status::OK();
  }

  const GraphStore& store_;
  const schema::DlSchema& dl_;
  Database* db_;
  GraphStats* stats_;
  obs::GraphMetrics* metrics_;
  const runtime::QueryGuard* guard_;
  BindingBatch table_;
  Traversals trav_;
  // Row-major form of the latest projection when it went through a dedup
  // relation or aggregation; see EnsureColumnar.
  std::vector<Tuple> result_rows_;
  bool have_result_rows_ = false;
};

}  // namespace

Result<ResultTable> GraphEngine::Run(const pgir::PgirQuery& query,
                                     GraphStats* stats,
                                     obs::GraphMetrics* metrics) const {
  obs::TraceScope run_span("graph.run");
  if (options_.mode == GraphMode::kRowBinding) {
    RowExecution exec(*store_, *dl_, db_, stats, metrics, options_.guard);
    return exec.Run(query);
  }
  BatchExecution exec(*store_, *dl_, db_, stats, metrics, options_.guard);
  return exec.Run(query);
}

}  // namespace raqlet::engine
