#include "engine/graph/executor.h"

#include <algorithm>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <tuple>
#include <unordered_map>
#include <unordered_set>

namespace raqlet::engine {

namespace {

using cypher::BinOp;
using cypher::EdgeDirection;
using cypher::Expr;
using cypher::ExprKind;
using pgir::EdgePat;
using pgir::Item;
using pgir::MatchOp;
using pgir::NodePat;
using pgir::PgirQuery;
using pgir::ReturnOp;
using pgir::WhereOp;
using pgir::WithOp;

struct ColumnMeta {
  enum Kind { kNode, kEdge, kValue, kPathLength };
  Kind kind = kValue;
  std::string label;       // node label / edge label
  int row_column = -1;     // kEdge: index of the hidden edge-row column
};

// The clause-by-clause binding table.
struct BindingTable {
  std::vector<std::string> columns;
  std::map<std::string, size_t> index;
  std::vector<ColumnMeta> meta;
  std::vector<Tuple> rows;

  int Find(const std::string& name) const {
    auto it = index.find(name);
    return it == index.end() ? -1 : static_cast<int>(it->second);
  }
  size_t AddColumn(const std::string& name, ColumnMeta m) {
    index[name] = columns.size();
    columns.push_back(name);
    meta.push_back(m);
    return columns.size() - 1;
  }
};

class Execution {
 public:
  Execution(const GraphStore& store, const schema::DlSchema& dl, Database* db,
            GraphStats* stats)
      : store_(store), dl_(dl), db_(db), stats_(stats) {}

  Result<ResultTable> Run(const PgirQuery& query) {
    table_.rows.push_back({});  // one empty binding
    for (const pgir::Op& op : query.ops) {
      if (const auto* match = std::get_if<MatchOp>(&op)) {
        RAQLET_RETURN_IF_ERROR(ExecMatch(*match));
      } else if (const auto* where = std::get_if<WhereOp>(&op)) {
        RAQLET_RETURN_IF_ERROR(ExecWhere(*where));
      } else if (const auto* with = std::get_if<WithOp>(&op)) {
        RAQLET_RETURN_IF_ERROR(ExecProjection(with->items, with->distinct,
                                              /*is_return=*/false));
      } else if (const auto* ret = std::get_if<ReturnOp>(&op)) {
        RAQLET_RETURN_IF_ERROR(
            ExecProjection(ret->items, ret->distinct, /*is_return=*/true));
      }
    }
    ResultTable result;
    result.columns = table_.columns;
    result.rows = std::move(table_.rows);
    return result;
  }

 private:
  // ---- MATCH ----

  Status CheckNode(const NodePat& node, bool* known) {
    int col = table_.Find(node.id);
    *known = col >= 0;
    if (!*known && node.label.empty()) {
      return Status::Unsupported("unlabeled node pattern introduces '" +
                                 node.id + "'");
    }
    if (!node.label.empty() && dl_.FindNode(node.label) == nullptr) {
      return Status::NotFound("no node type with label '" + node.label + "'");
    }
    return Status::OK();
  }

  // Neighbour expansion respecting direction.
  void ForEachNeighbor(const std::string& edge_label, int64_t node,
                       EdgeDirection direction, bool reverse,
                       const std::function<void(const GraphStore::Neighbor&)>&
                           visit) const {
    EdgeDirection dir = direction;
    if (reverse && dir == EdgeDirection::kOutgoing) {
      dir = EdgeDirection::kIncoming;
    } else if (reverse && dir == EdgeDirection::kIncoming) {
      dir = EdgeDirection::kOutgoing;
    }
    if (dir == EdgeDirection::kOutgoing || dir == EdgeDirection::kUndirected) {
      for (const auto& nb : store_.OutNeighbors(edge_label, node)) visit(nb);
    }
    if (dir == EdgeDirection::kIncoming || dir == EdgeDirection::kUndirected) {
      for (const auto& nb : store_.InNeighbors(edge_label, node)) visit(nb);
    }
  }

  Status ExecMatch(const MatchOp& match) {
    for (const EdgePat& edge : match.edges) {
      if (edge.variable_length || edge.shortest) {
        RAQLET_RETURN_IF_ERROR(ExpandRecursive(edge));
      } else {
        RAQLET_RETURN_IF_ERROR(ExpandSimple(edge));
      }
    }
    for (const NodePat& node : match.nodes) {
      RAQLET_RETURN_IF_ERROR(ExpandLoneNode(node));
    }
    return Status::OK();
  }

  Status ExpandLoneNode(const NodePat& node) {
    bool known = false;
    RAQLET_RETURN_IF_ERROR(CheckNode(node, &known));
    if (known) {
      // Label filter on the existing binding.
      if (node.label.empty()) return Status::OK();
      size_t col = static_cast<size_t>(table_.Find(node.id));
      std::vector<Tuple> kept;
      for (Tuple& row : table_.rows) {
        if (store_.HasLabel(node.label, row[col].AsNumber())) {
          kept.push_back(std::move(row));
        }
      }
      table_.rows = std::move(kept);
      return Status::OK();
    }
    size_t col = table_.AddColumn(node.id, {ColumnMeta::kNode, node.label, -1});
    (void)col;
    std::vector<Tuple> next;
    for (const Tuple& row : table_.rows) {
      for (int64_t id : store_.NodesWithLabel(node.label)) {
        Tuple extended = row;
        extended.push_back(Value::Number(id));
        next.push_back(std::move(extended));
        if (stats_ != nullptr) ++stats_->rows_expanded;
      }
    }
    table_.rows = std::move(next);
    return Status::OK();
  }

  // Resolves endpoint label checks after traversal.
  bool EndpointOk(const NodePat& node, int64_t id) const {
    return node.label.empty() || store_.HasLabel(node.label, id);
  }

  Status ExpandSimple(const EdgePat& edge) {
    const schema::EdgeRelationInfo* info = dl_.FindEdge(edge.label);
    if (info == nullptr) {
      return Status::NotFound("no edge type with label '" + edge.label + "'");
    }
    bool src_known = false;
    bool dst_known = false;
    RAQLET_RETURN_IF_ERROR(CheckNode(edge.src, &src_known));
    RAQLET_RETURN_IF_ERROR(CheckNode(edge.dst, &dst_known));

    int src_col = table_.Find(edge.src.id);
    int dst_col = table_.Find(edge.dst.id);

    // New columns for unbound endpoints and the edge binding.
    std::vector<std::string> new_cols;
    if (!src_known) {
      table_.AddColumn(edge.src.id, {ColumnMeta::kNode, edge.src.label, -1});
    }
    if (!dst_known && edge.dst.id != edge.src.id) {
      table_.AddColumn(edge.dst.id, {ColumnMeta::kNode, edge.dst.label, -1});
    }
    bool bind_edge = info->PropertyColumn("id") >= 0 &&
                     edge.direction != EdgeDirection::kUndirected &&
                     table_.Find(edge.id) < 0;
    int edge_row_col = -1;
    if (bind_edge) {
      edge_row_col = static_cast<int>(table_.columns.size()) + 1;
      table_.AddColumn(edge.id,
                       {ColumnMeta::kEdge, edge.label, edge_row_col});
      table_.AddColumn("__row_" + edge.id, {ColumnMeta::kValue, "", -1});
    }

    const std::string upper = schema::ToUpperSnake(edge.label);
    int id_prop_col = info->PropertyColumn("id");
    std::vector<Tuple> next;
    auto emit = [&](const Tuple& base, int64_t src_id, int64_t dst_id,
                    uint32_t edge_row) {
      if (!EndpointOk(edge.src, src_id) || !EndpointOk(edge.dst, dst_id)) {
        return;
      }
      Tuple row = base;
      if (!src_known) row.push_back(Value::Number(src_id));
      if (!dst_known && edge.dst.id != edge.src.id) {
        row.push_back(Value::Number(dst_id));
      } else if (!dst_known && edge.dst.id == edge.src.id &&
                 src_id != dst_id) {
        return;  // (a)-[:X]->(a): self loop required
      }
      if (dst_known || edge.dst.id == edge.src.id) {
        // endpoint equality enforced by caller checks below
      }
      if (bind_edge) {
        const Tuple& edge_tuple = *store_.EdgeRow(upper, edge_row).value();
        row.push_back(edge_tuple[static_cast<size_t>(id_prop_col)]);
        row.push_back(Value::Number(edge_row));
      }
      next.push_back(std::move(row));
      if (stats_ != nullptr) ++stats_->rows_expanded;
    };

    for (const Tuple& row : table_.rows) {
      std::optional<int64_t> src_val;
      std::optional<int64_t> dst_val;
      if (src_known) src_val = row[static_cast<size_t>(src_col)].AsNumber();
      if (dst_known) dst_val = row[static_cast<size_t>(dst_col)].AsNumber();

      // Deduplicate undirected self-loop double visits.
      std::set<std::pair<int64_t, uint32_t>> seen;
      auto visit = [&](int64_t from, const GraphStore::Neighbor& nb) {
        if (!seen.insert({nb.node, nb.edge_row}).second) return;
        if (dst_val.has_value() && nb.node != *dst_val) return;
        if (edge.dst.id == edge.src.id && !dst_known && nb.node != from) {
          return;  // repeated identifier within the pattern
        }
        emit(row, from, nb.node, nb.edge_row);
      };

      if (src_val.has_value()) {
        ForEachNeighbor(upper, *src_val, edge.direction, /*reverse=*/false,
                        [&](const GraphStore::Neighbor& nb) {
                          visit(*src_val, nb);
                        });
      } else if (dst_val.has_value()) {
        // Traverse backwards, binding the source.
        ForEachNeighbor(upper, *dst_val, edge.direction, /*reverse=*/true,
                        [&](const GraphStore::Neighbor& nb) {
                          seen.clear();
                          if (dst_val.has_value()) {
                            // nb.node is the source here.
                            emit(row, nb.node, *dst_val, nb.edge_row);
                          }
                        });
      } else {
        // Neither endpoint bound: scan source label (or all labeled nodes
        // of the schema endpoint).
        std::string scan_label = !edge.src.label.empty()
                                     ? edge.src.label
                                     : info->src_label;
        for (int64_t id : store_.NodesWithLabel(scan_label)) {
          seen.clear();
          ForEachNeighbor(upper, id, edge.direction, /*reverse=*/false,
                          [&](const GraphStore::Neighbor& nb) {
                            visit(id, nb);
                          });
        }
      }
    }
    table_.rows = std::move(next);
    return Status::OK();
  }

  // Memoized >=1-step reachability closure, keyed per (edge label,
  // direction, reverse) traversal and shared across every start node of
  // the query — the ROADMAP "shared visited-set frontier" quick win that
  // replaces the per-binding BFS restart. Once closure(m) is complete,
  // any later traversal that reaches m unions the cached set instead of
  // re-walking m's out-edges (closure sets are transitively closed, so
  // their members never need expanding either).
  using NodeSet = std::unordered_set<int64_t>;
  const NodeSet& Closure(const std::string& upper, EdgeDirection direction,
                         bool reverse, int64_t start) const {
    auto& memo =
        closure_memos_[{upper, static_cast<int>(direction), reverse}];
    auto hit = memo.find(start);
    if (hit != memo.end()) return *hit->second;
    auto result = std::make_unique<NodeSet>();
    NodeSet& reached = *result;
    std::deque<int64_t> queue;  // nodes whose edges still need walking
    auto visit = [&](const GraphStore::Neighbor& nb) {
      if (reached.insert(nb.node).second) queue.push_back(nb.node);
    };
    ForEachNeighbor(upper, start, direction, reverse, visit);
    while (!queue.empty()) {
      int64_t node = queue.front();
      queue.pop_front();
      auto cached = memo.find(node);
      if (cached != memo.end()) {
        for (int64_t m : *cached->second) reached.insert(m);
        continue;
      }
      ForEachNeighbor(upper, node, direction, reverse, visit);
      if (stats_ != nullptr) ++stats_->bfs_visits;
    }
    return *memo.emplace(start, std::move(result)).first->second;
  }

  // BFS over (node, depth) states, mirroring the DLIR walk semantics.
  // Returns reachable nodes with qualifying depths in [min_hops, max_hops]
  // (max < 0 = unbounded), or min distances when `shortest`.
  std::vector<std::pair<int64_t, int64_t>> Bfs(const std::string& upper,
                                               int64_t start,
                                               EdgeDirection direction,
                                               bool reverse, int min_hops,
                                               int max_hops,
                                               bool shortest) const {
    std::vector<std::pair<int64_t, int64_t>> out;
    if (!shortest && max_hops < 0 && min_hops <= 1) {
      // Plain unbounded reachability: no caller consumes the depths (the
      // emit path only reads them for shortest-path length bindings), so
      // serve the memoized closure. Sorted for a deterministic row order.
      const NodeSet& closed = Closure(upper, direction, reverse, start);
      out.reserve(closed.size() + 1);
      for (int64_t node : closed) out.emplace_back(node, 1);
      std::sort(out.begin(), out.end());
      if (min_hops == 0) out.emplace_back(start, 0);
      return out;
    }
    if (shortest || max_hops < 0) {
      if (!shortest && min_hops > 1) {
        // Walks of length >= m: exact-depth states up to m, then closure.
        auto exact = BoundedWalks(upper, start, direction, reverse, min_hops,
                                  min_hops);
        std::set<int64_t> frontier;
        for (const auto& [node, d] : exact) frontier.insert(node);
        std::set<int64_t> all(frontier);
        for (int64_t node : frontier) {
          for (const auto& [n2, d2] :
               Bfs(upper, node, direction, reverse, 1, -1, false)) {
            all.insert(n2);
          }
        }
        for (int64_t node : all) out.emplace_back(node, min_hops);
        return out;
      }
      // Min walk-length (>= 1) BFS, seeded from the one-step neighbours so
      // that cycles back to `start` are found (matching the DLIR
      // reachability/lattice semantics, where dist(x, x) exists on cycles).
      std::unordered_map<int64_t, int64_t> dist;
      std::deque<int64_t> queue;
      ForEachNeighbor(upper, start, direction, reverse,
                      [&](const GraphStore::Neighbor& nb) {
                        if (dist.count(nb.node) > 0) return;
                        dist[nb.node] = 1;
                        queue.push_back(nb.node);
                      });
      while (!queue.empty()) {
        int64_t node = queue.front();
        queue.pop_front();
        int64_t d = dist[node];
        ForEachNeighbor(upper, node, direction, reverse,
                        [&](const GraphStore::Neighbor& nb) {
                          if (dist.count(nb.node) > 0) return;
                          dist[nb.node] = d + 1;
                          queue.push_back(nb.node);
                        });
        if (stats_ != nullptr) ++stats_->bfs_visits;
      }
      for (const auto& [node, d] : dist) out.emplace_back(node, d);
      if (min_hops == 0) out.emplace_back(start, 0);
      return out;
    }
    return BoundedWalks(upper, start, direction, reverse, min_hops, max_hops);
  }

  // Exact (node, depth) walk states for bounded ranges.
  std::vector<std::pair<int64_t, int64_t>> BoundedWalks(
      const std::string& upper, int64_t start, EdgeDirection direction,
      bool reverse, int min_hops, int max_hops) const {
    std::set<std::pair<int64_t, int64_t>> states;  // (node, depth)
    std::deque<std::pair<int64_t, int64_t>> queue;
    queue.emplace_back(start, 0);
    states.insert({start, 0});
    std::set<std::pair<int64_t, int64_t>> result;
    while (!queue.empty()) {
      auto [node, d] = queue.front();
      queue.pop_front();
      if (d >= min_hops && d >= 1) result.insert({node, d});
      if (min_hops == 0 && d == 0) result.insert({node, 0});
      if (d == max_hops) continue;
      ForEachNeighbor(upper, node, direction, reverse,
                      [&](const GraphStore::Neighbor& nb) {
                        if (states.insert({nb.node, d + 1}).second) {
                          queue.emplace_back(nb.node, d + 1);
                        }
                      });
      if (stats_ != nullptr) ++stats_->bfs_visits;
    }
    return {result.begin(), result.end()};
  }

  Status ExpandRecursive(const EdgePat& edge) {
    const schema::EdgeRelationInfo* info = dl_.FindEdge(edge.label);
    if (info == nullptr) {
      return Status::NotFound("no edge type with label '" + edge.label + "'");
    }
    const std::string upper = schema::ToUpperSnake(edge.label);
    bool src_known = false;
    bool dst_known = false;
    RAQLET_RETURN_IF_ERROR(CheckNode(edge.src, &src_known));
    RAQLET_RETURN_IF_ERROR(CheckNode(edge.dst, &dst_known));
    int src_col = table_.Find(edge.src.id);
    int dst_col = table_.Find(edge.dst.id);

    if (!src_known) {
      table_.AddColumn(edge.src.id, {ColumnMeta::kNode, edge.src.label, -1});
    }
    if (!dst_known) {
      table_.AddColumn(edge.dst.id, {ColumnMeta::kNode, edge.dst.label, -1});
    }
    bool bind_len = edge.shortest && !edge.path_id.empty();
    if (bind_len) {
      table_.AddColumn(edge.path_id + "_len",
                       {ColumnMeta::kPathLength, "", -1});
    }

    std::vector<Tuple> next;
    auto emit = [&](const Tuple& base, int64_t src_id, int64_t dst_id,
                    int64_t len) {
      if (!EndpointOk(edge.src, src_id) || !EndpointOk(edge.dst, dst_id)) {
        return;
      }
      Tuple row = base;
      if (!src_known) row.push_back(Value::Number(src_id));
      if (!dst_known) row.push_back(Value::Number(dst_id));
      if (bind_len) row.push_back(Value::Number(len));
      next.push_back(std::move(row));
      if (stats_ != nullptr) ++stats_->rows_expanded;
    };

    for (const Tuple& row : table_.rows) {
      std::optional<int64_t> src_val;
      std::optional<int64_t> dst_val;
      if (src_known) src_val = row[static_cast<size_t>(src_col)].AsNumber();
      if (dst_known) dst_val = row[static_cast<size_t>(dst_col)].AsNumber();

      auto run_from = [&](int64_t start) {
        auto reached = Bfs(upper, start, edge.direction, /*reverse=*/false,
                           edge.min_hops, edge.max_hops, edge.shortest);
        std::set<std::pair<int64_t, int64_t>> dedup;
        for (const auto& [node, d] : reached) {
          if (dst_val.has_value() && node != *dst_val) continue;
          if (edge.shortest) {
            emit(row, start, node, d);
          } else if (dedup.insert({node, 0}).second) {
            emit(row, start, node, d);  // pair once, any qualifying depth
          }
        }
      };

      if (src_val.has_value()) {
        run_from(*src_val);
      } else if (dst_val.has_value()) {
        // Reverse BFS from the destination.
        auto reached = Bfs(upper, *dst_val, edge.direction, /*reverse=*/true,
                           edge.min_hops, edge.max_hops, edge.shortest);
        std::set<int64_t> dedup;
        for (const auto& [node, d] : reached) {
          if (edge.shortest) {
            emit(row, node, *dst_val, d);
          } else if (dedup.insert(node).second) {
            emit(row, node, *dst_val, d);
          }
        }
      } else {
        std::string scan_label = !edge.src.label.empty()
                                     ? edge.src.label
                                     : info->src_label;
        for (int64_t start : store_.NodesWithLabel(scan_label)) {
          run_from(start);
        }
      }
    }
    table_.rows = std::move(next);
    return Status::OK();
  }

  // ---- expressions ----

  Result<Value> Eval(const Expr& expr, const Tuple& row) const {
    switch (expr.kind) {
      case ExprKind::kLiteral:
        return ConstantToValue(expr.literal, &db_->symbols());
      case ExprKind::kVariable: {
        int col = table_.Find(expr.var);
        if (col < 0) {
          return Status::NotFound("unknown identifier '" + expr.var + "'");
        }
        return row[static_cast<size_t>(col)];
      }
      case ExprKind::kProperty: {
        int col = table_.Find(expr.var);
        if (col < 0) {
          return Status::NotFound("unknown identifier '" + expr.var + "'");
        }
        const ColumnMeta& meta = table_.meta[static_cast<size_t>(col)];
        if (meta.kind == ColumnMeta::kNode) {
          if (expr.property == "id") return row[static_cast<size_t>(col)];
          return store_.NodeProperty(meta.label,
                                     row[static_cast<size_t>(col)].AsNumber(),
                                     expr.property);
        }
        if (meta.kind == ColumnMeta::kEdge) {
          if (expr.property == "id") return row[static_cast<size_t>(col)];
          uint32_t edge_row = static_cast<uint32_t>(
              row[static_cast<size_t>(meta.row_column)].AsNumber());
          return store_.EdgeProperty(meta.label, edge_row, expr.property);
        }
        return Status::Unsupported("property access on value identifier '" +
                                   expr.var + "'");
      }
      case ExprKind::kParameter:
        return Status::Internal("unresolved parameter");
      case ExprKind::kBinary: {
        switch (expr.bin_op) {
          case BinOp::kAnd:
          case BinOp::kOr: {
            RAQLET_ASSIGN_OR_RETURN(Value lhs, Eval(expr.children[0], row));
            RAQLET_ASSIGN_OR_RETURN(Value rhs, Eval(expr.children[1], row));
            bool l = lhs.AsBool();
            bool r = rhs.AsBool();
            return Value::Bool(expr.bin_op == BinOp::kAnd ? (l && r)
                                                          : (l || r));
          }
          case BinOp::kEq:
          case BinOp::kNe:
          case BinOp::kLt:
          case BinOp::kLe:
          case BinOp::kGt:
          case BinOp::kGe: {
            RAQLET_ASSIGN_OR_RETURN(Value lhs, Eval(expr.children[0], row));
            RAQLET_ASSIGN_OR_RETURN(Value rhs, Eval(expr.children[1], row));
            dlir::CmpOp op;
            switch (expr.bin_op) {
              case BinOp::kEq:
                op = dlir::CmpOp::kEq;
                break;
              case BinOp::kNe:
                op = dlir::CmpOp::kNe;
                break;
              case BinOp::kLt:
                op = dlir::CmpOp::kLt;
                break;
              case BinOp::kLe:
                op = dlir::CmpOp::kLe;
                break;
              case BinOp::kGt:
                op = dlir::CmpOp::kGt;
                break;
              default:
                op = dlir::CmpOp::kGe;
                break;
            }
            return Value::Bool(CheckCmp(op, lhs, rhs, db_->symbols()));
          }
          default: {
            RAQLET_ASSIGN_OR_RETURN(Value lhs, Eval(expr.children[0], row));
            RAQLET_ASSIGN_OR_RETURN(Value rhs, Eval(expr.children[1], row));
            dlir::ArithOp op;
            switch (expr.bin_op) {
              case BinOp::kAdd:
                op = dlir::ArithOp::kAdd;
                break;
              case BinOp::kSub:
                op = dlir::ArithOp::kSub;
                break;
              case BinOp::kMul:
                op = dlir::ArithOp::kMul;
                break;
              case BinOp::kDiv:
                op = dlir::ArithOp::kDiv;
                break;
              default:
                op = dlir::ArithOp::kMod;
                break;
            }
            return EvalArith(op, lhs, rhs);
          }
        }
      }
      case ExprKind::kUnary: {
        RAQLET_ASSIGN_OR_RETURN(Value inner, Eval(expr.children[0], row));
        if (expr.un_op == cypher::UnOp::kNot) {
          return Value::Bool(!inner.AsBool());
        }
        return EvalArith(dlir::ArithOp::kSub, Value::Number(0), inner);
      }
      case ExprKind::kCall: {
        if (expr.function == "id" && expr.children.size() == 1) {
          return Eval(expr.children[0], row);
        }
        if (expr.function == "length" && expr.children.size() == 1 &&
            expr.children[0].kind == ExprKind::kVariable) {
          int col = table_.Find(expr.children[0].var + "_len");
          if (col >= 0) return row[static_cast<size_t>(col)];
          return Status::Unsupported("length() of a non-shortest-path "
                                     "variable");
        }
        return Status::Unsupported("function '" + expr.function + "'");
      }
    }
    return Status::Internal("unhandled expression kind");
  }

  Status ExecWhere(const WhereOp& where) {
    std::vector<Tuple> kept;
    for (Tuple& row : table_.rows) {
      RAQLET_ASSIGN_OR_RETURN(Value v, Eval(where.predicate, row));
      if (v.AsBool()) kept.push_back(std::move(row));
    }
    table_.rows = std::move(kept);
    return Status::OK();
  }

  // ---- WITH / RETURN ----

  Status ExecProjection(const std::vector<Item>& items, bool distinct,
                        bool is_return) {
    int agg_pos = -1;
    for (size_t i = 0; i < items.size(); ++i) {
      if (items[i].expr.IsAggregateCall()) {
        if (agg_pos >= 0) {
          return Status::Unsupported("at most one aggregate per projection");
        }
        agg_pos = static_cast<int>(i);
      }
    }

    BindingTable next;
    for (const Item& item : items) {
      ColumnMeta meta{ColumnMeta::kValue, "", -1};
      if (item.expr.kind == ExprKind::kVariable) {
        int col = table_.Find(item.expr.var);
        if (col >= 0) meta = table_.meta[static_cast<size_t>(col)];
      }
      next.AddColumn(item.alias, meta);
    }
    // Preserve hidden edge-row columns for identifiers that survive.
    std::map<size_t, size_t> row_col_remap;
    for (size_t i = 0; i < items.size(); ++i) {
      const ColumnMeta& meta = next.meta[i];
      if (meta.kind == ColumnMeta::kEdge && meta.row_column >= 0) {
        size_t hidden =
            next.AddColumn("__row_" + items[i].alias,
                           {ColumnMeta::kValue, "", -1});
        row_col_remap[i] = hidden;
        next.meta[i].row_column = static_cast<int>(hidden);
      }
    }

    if (agg_pos < 0) {
      std::unordered_set<Tuple, TupleHash> dedup;
      for (const Tuple& row : table_.rows) {
        Tuple out;
        for (size_t i = 0; i < items.size(); ++i) {
          RAQLET_ASSIGN_OR_RETURN(Value v, Eval(items[i].expr, row));
          out.push_back(v);
        }
        for (const auto& [item_idx, hidden_idx] : row_col_remap) {
          int old_col = table_.Find(items[item_idx].expr.var);
          const ColumnMeta& old_meta =
              table_.meta[static_cast<size_t>(old_col)];
          out.push_back(row[static_cast<size_t>(old_meta.row_column)]);
        }
        if (distinct && !dedup.insert(out).second) continue;
        next.rows.push_back(std::move(out));
      }
      // Hidden columns are internal: drop them for RETURN.
      if (is_return) DropHiddenColumns(&next);
      table_ = std::move(next);
      return Status::OK();
    }

    // Aggregation (bag semantics over the binding table, Cypher-style).
    const Expr& agg_call = items[static_cast<size_t>(agg_pos)].expr;
    struct AggState {
      int64_t count = 0;
      double sum = 0.0;
      bool any_float = false;
      std::optional<Value> min;
      std::optional<Value> max;
      std::unordered_set<Tuple, TupleHash> distinct_args;
    };
    std::map<Tuple, AggState> groups;
    for (const Tuple& row : table_.rows) {
      Tuple key;
      for (size_t i = 0; i < items.size(); ++i) {
        if (static_cast<int>(i) == agg_pos) continue;
        RAQLET_ASSIGN_OR_RETURN(Value v, Eval(items[i].expr, row));
        key.push_back(v);
      }
      AggState& state = groups[key];
      Value arg = Value::Number(0);
      if (!agg_call.children.empty()) {
        RAQLET_ASSIGN_OR_RETURN(arg, Eval(agg_call.children[0], row));
      }
      if (agg_call.distinct_arg &&
          !state.distinct_args.insert(Tuple{arg}).second) {
        continue;
      }
      state.count += 1;
      state.any_float |= arg.kind() == ValueType::kFloat;
      state.sum += arg.NumericValue();
      if (!state.min.has_value() ||
          CompareValues(arg, *state.min, db_->symbols()) < 0) {
        state.min = arg;
      }
      if (!state.max.has_value() ||
          CompareValues(arg, *state.max, db_->symbols()) > 0) {
        state.max = arg;
      }
    }
    for (const auto& [key, state] : groups) {
      Value result;
      if (agg_call.function == "count") {
        result = Value::Number(state.count);
      } else if (agg_call.function == "sum") {
        result = state.any_float
                     ? Value::Float(state.sum)
                     : Value::Number(static_cast<int64_t>(state.sum));
      } else if (agg_call.function == "min") {
        result = state.min.value_or(Value::Null());
      } else if (agg_call.function == "max") {
        result = state.max.value_or(Value::Null());
      } else {  // avg
        result = Value::Float(state.count == 0
                                  ? 0.0
                                  : state.sum /
                                        static_cast<double>(state.count));
      }
      Tuple out;
      size_t ki = 0;
      for (size_t i = 0; i < items.size(); ++i) {
        if (static_cast<int>(i) == agg_pos) {
          out.push_back(result);
        } else {
          out.push_back(key[ki++]);
        }
      }
      next.rows.push_back(std::move(out));
    }
    if (is_return) DropHiddenColumns(&next);
    table_ = std::move(next);
    return Status::OK();
  }

  void DropHiddenColumns(BindingTable* table) const {
    std::vector<size_t> keep;
    for (size_t i = 0; i < table->columns.size(); ++i) {
      if (table->columns[i].rfind("__row_", 0) != 0) keep.push_back(i);
    }
    if (keep.size() == table->columns.size()) return;
    BindingTable trimmed;
    for (size_t i : keep) {
      trimmed.AddColumn(table->columns[i], table->meta[i]);
    }
    for (const Tuple& row : table->rows) {
      Tuple out;
      for (size_t i : keep) out.push_back(row[i]);
      trimmed.rows.push_back(std::move(out));
    }
    *table = std::move(trimmed);
  }

  const GraphStore& store_;
  const schema::DlSchema& dl_;
  Database* db_;
  GraphStats* stats_;
  BindingTable table_;
  // Completed reachability closures per traversal signature; see Closure.
  mutable std::map<std::tuple<std::string, int, bool>,
                   std::unordered_map<int64_t, std::unique_ptr<NodeSet>>>
      closure_memos_;
};

}  // namespace

Result<ResultTable> GraphEngine::Run(const pgir::PgirQuery& query,
                                     GraphStats* stats) const {
  Execution exec(*store_, *dl_, db_, stats);
  return exec.Run(query);
}

}  // namespace raqlet::engine
