#include "engine/graph/graph_store.h"

namespace raqlet::engine {

namespace {
const std::vector<GraphStore::Neighbor>& EmptyNeighbors() {
  static const std::vector<GraphStore::Neighbor>& empty =
      *new std::vector<GraphStore::Neighbor>();
  return empty;
}
const std::vector<int64_t>& EmptyNodes() {
  static const std::vector<int64_t>& empty = *new std::vector<int64_t>();
  return empty;
}
}  // namespace

Result<GraphStore> GraphStore::Build(const schema::DlSchema& dl,
                                     const Database& db) {
  GraphStore store;
  for (const auto& [label, info] : dl.nodes_by_label) {
    RAQLET_ASSIGN_OR_RETURN(const Relation* rel, db.GetRelation(info.relation));
    LabelData data;
    data.info = &info;
    data.relation = rel;
    data.node_ids.reserve(rel->size());
    Relation::ColumnView ids = rel->Column(0);
    for (uint32_t i = 0; i < rel->size(); ++i) {
      int64_t id = ids.at(i).AsNumber();
      data.node_ids.push_back(id);
      data.row_of.emplace(id, i);
    }
    store.total_nodes_ += rel->size();
    store.labels_.emplace(label, std::move(data));
  }
  for (const auto& [edge_label, info] : dl.edges_by_label) {
    RAQLET_ASSIGN_OR_RETURN(const Relation* rel, db.GetRelation(info.relation));
    EdgeData data;
    data.info = &info;
    data.relation = rel;
    Relation::ColumnView srcs = rel->Column(0);
    Relation::ColumnView dsts = rel->Column(1);
    for (uint32_t i = 0; i < rel->size(); ++i) {
      int64_t src = srcs.at(i).AsNumber();
      int64_t dst = dsts.at(i).AsNumber();
      data.forward[src].push_back(Neighbor{dst, i});
      data.backward[dst].push_back(Neighbor{src, i});
    }
    store.total_edges_ += rel->size();
    store.edges_.emplace(edge_label, std::move(data));
  }
  return store;
}

const std::vector<GraphStore::Neighbor>& GraphStore::OutNeighbors(
    const std::string& edge_label, int64_t node) const {
  auto it = edges_.find(edge_label);
  if (it == edges_.end()) return EmptyNeighbors();
  auto n = it->second.forward.find(node);
  return n == it->second.forward.end() ? EmptyNeighbors() : n->second;
}

const std::vector<GraphStore::Neighbor>& GraphStore::InNeighbors(
    const std::string& edge_label, int64_t node) const {
  auto it = edges_.find(edge_label);
  if (it == edges_.end()) return EmptyNeighbors();
  auto n = it->second.backward.find(node);
  return n == it->second.backward.end() ? EmptyNeighbors() : n->second;
}

const std::vector<int64_t>& GraphStore::NodesWithLabel(
    const std::string& label) const {
  auto it = labels_.find(label);
  return it == labels_.end() ? EmptyNodes() : it->second.node_ids;
}

bool GraphStore::HasLabel(const std::string& label, int64_t node) const {
  auto it = labels_.find(label);
  return it != labels_.end() && it->second.row_of.count(node) > 0;
}

Result<Value> GraphStore::NodeProperty(const std::string& label, int64_t node,
                                       const std::string& property) const {
  auto it = labels_.find(label);
  if (it == labels_.end()) {
    return Status::NotFound("no node label '" + label + "'");
  }
  const LabelData& data = it->second;
  auto row = data.row_of.find(node);
  if (row == data.row_of.end()) {
    return Status::NotFound("no node " + std::to_string(node) + " with label " +
                            label);
  }
  int col = data.info->PropertyColumn(property);
  if (col < 0) {
    return Status::NotFound("label '" + label + "' has no property '" +
                            property + "'");
  }
  return data.relation->ValueAt(row->second, static_cast<size_t>(col));
}

Result<Value> GraphStore::EdgeProperty(const std::string& edge_label,
                                       uint32_t edge_row,
                                       const std::string& property) const {
  auto it = edges_.find(schema::ToUpperSnake(edge_label));
  if (it == edges_.end()) {
    return Status::NotFound("no edge label '" + edge_label + "'");
  }
  int col = it->second.info->PropertyColumn(property);
  if (col < 0) {
    return Status::NotFound("edge '" + edge_label + "' has no property '" +
                            property + "'");
  }
  return it->second.relation->ValueAt(edge_row, static_cast<size_t>(col));
}

Result<Relation::ColumnView> GraphStore::EdgeColumn(
    const std::string& edge_label, int col) const {
  auto it = edges_.find(schema::ToUpperSnake(edge_label));
  if (it == edges_.end()) {
    return Status::NotFound("no edge label '" + edge_label + "'");
  }
  return it->second.relation->Column(static_cast<size_t>(col));
}

}  // namespace raqlet::engine
