#ifndef RAQLET_ENGINE_GRAPH_EXECUTOR_H_
#define RAQLET_ENGINE_GRAPH_EXECUTOR_H_

// Graph engine: interprets PGIR directly over the adjacency-list
// GraphStore, Neo4j-style — a binding table grows clause by clause, edge
// patterns expand via pointer traversal, variable-length and shortest
// paths run BFS. This is the Table 1 "Neo4j" stand-in (DESIGN.md §2).
//
// Two execution modes share the traversal machinery (adjacency walks and
// the memoized reachability closure) but differ in how the binding table
// is represented — the axis the paper's per-binding-interpreter critique
// is about:
//
//  * kColumnBatch (default): the binding table is columnar — one Value
//    column per bound variable. MATCH expansion appends match columns
//    and gathers prior columns through the match selection (no per-match
//    row copy), WHERE filters compact via selection masks, the memoized
//    reachability closure unions straight into a column, and RETURN/WITH
//    projection evaluates items column-at-a-time with DISTINCT deduped
//    once per batch through Relation::InsertColumns' flat open-addressing
//    table (columnar in, columnar out; edge-id binding borrows the edge
//    relation's column storage zero-copy). Aggregates (count/sum/min/max/
//    avg) accumulate column-wise.
//  * kRowBinding: the historical per-binding interpreter — every MATCH
//    step copies and extends whole rows, one binding at a time, and
//    DISTINCT rehashes tuple by tuple. Kept as the faithful per-binding
//    stand-in for benchmarks and as the reference implementation the
//    batch mode is differentially tested against.
//
// Both modes produce bit-identical results — the same rows in the same
// order — which tests/cross_engine_test.cc asserts query by query.
//
// Semantics note: intermediate clauses follow Cypher's bag semantics;
// RETURN DISTINCT deduplicates. The translated queries use DISTINCT (§3),
// making results comparable across engines.

#include "common/status.h"
#include "engine/graph/graph_store.h"
#include "engine/value_ops.h"
#include "obs/metrics.h"
#include "pgir/pgir.h"
#include "runtime/query_guard.h"

namespace raqlet::engine {

/// Binding-table representation; see the file comment.
enum class GraphMode { kColumnBatch, kRowBinding };

/// Evaluation options, mirroring the Datalog engine's EvalOptions and the
/// SQL engine's SqlOptions so the Compiler facade can cache/choose engines
/// uniformly. Results are identical for every option value.
struct GraphOptions {
  GraphMode mode = GraphMode::kColumnBatch;
  /// Cooperative guardrails polled per clause expansion and per BFS
  /// frontier. A per-Run control channel like the metrics sink, not a
  /// behavioural option: excluded from equality so facade-level engine
  /// caching never keys on it. A trip aborts Run with the guard's
  /// terminal Status and leaves the store/database reusable; re-running
  /// the query is bit-identical to a never-tripped run.
  const runtime::QueryGuard* guard = nullptr;

  /// Equality over the behavioural fields only (see `guard`).
  friend bool operator==(const GraphOptions& a, const GraphOptions& b) {
    return a.mode == b.mode;
  }
};

struct GraphStats {
  size_t rows_expanded = 0;  // binding-table rows produced by MATCH steps
  size_t bfs_visits = 0;     // (node, depth) states visited by BFS
  // Memoized reachability closure (Traversals::Closure): a hit reuses a
  // completed per-start closure set (at lookup or mid-walk), a miss pays
  // a full expansion. Both engines' modes populate these.
  size_t closure_cache_hits = 0;
  size_t closure_cache_misses = 0;
};

class GraphEngine {
 public:
  /// `store`, `dl` and `db` must outlive the engine. The database is
  /// non-const only to intern string literals from the query.
  GraphEngine(const GraphStore* store, const schema::DlSchema* dl,
              Database* db, GraphOptions options = {})
      : store_(store), dl_(dl), db_(db), options_(options) {}

  /// `metrics`, when given, additionally receives per-clause binding-table
  /// sizes, closure-cache hit/miss counts and the peak BFS frontier.
  Result<ResultTable> Run(const pgir::PgirQuery& query,
                          GraphStats* stats = nullptr,
                          obs::GraphMetrics* metrics = nullptr) const;

 private:
  const GraphStore* store_;
  const schema::DlSchema* dl_;
  Database* db_;
  GraphOptions options_;
};

}  // namespace raqlet::engine

#endif  // RAQLET_ENGINE_GRAPH_EXECUTOR_H_
