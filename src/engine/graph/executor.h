#ifndef RAQLET_ENGINE_GRAPH_EXECUTOR_H_
#define RAQLET_ENGINE_GRAPH_EXECUTOR_H_

// Graph engine: interprets PGIR directly over the adjacency-list
// GraphStore, Neo4j-style — a binding table grows clause by clause, edge
// patterns expand per-binding via pointer traversal, variable-length and
// shortest paths run BFS. This is the Table 1 "Neo4j" stand-in
// (DESIGN.md §2): per-binding interpreted expansion, no set-oriented join
// planning.
//
// Semantics note: intermediate clauses follow Cypher's bag semantics;
// RETURN DISTINCT deduplicates. The translated queries use DISTINCT (§3),
// making results comparable across engines.

#include "common/status.h"
#include "engine/graph/graph_store.h"
#include "engine/value_ops.h"
#include "pgir/pgir.h"

namespace raqlet::engine {

struct GraphStats {
  size_t rows_expanded = 0;  // binding-table rows produced by MATCH steps
  size_t bfs_visits = 0;     // (node, depth) states visited by BFS
};

class GraphEngine {
 public:
  /// `store`, `dl` and `db` must outlive the engine. The database is
  /// non-const only to intern string literals from the query.
  GraphEngine(const GraphStore* store, const schema::DlSchema* dl,
              Database* db)
      : store_(store), dl_(dl), db_(db) {}

  Result<ResultTable> Run(const pgir::PgirQuery& query,
                          GraphStats* stats = nullptr) const;

 private:
  const GraphStore* store_;
  const schema::DlSchema* dl_;
  Database* db_;
};

}  // namespace raqlet::engine

#endif  // RAQLET_ENGINE_GRAPH_EXECUTOR_H_
