#ifndef RAQLET_ENGINE_GRAPH_GRAPH_STORE_H_
#define RAQLET_ENGINE_GRAPH_GRAPH_STORE_H_

// In-memory property-graph store: label-partitioned nodes with property
// lookup by id, and forward/backward adjacency lists per edge type. Built
// from the same Database the other engines query, so all three paradigms
// see identical data (DESIGN.md §2: Neo4j stand-in substrate).
//
// The store is immutable after Build and holds no locks: the graph
// executor (either binding-table mode, see engine/graph/executor.h) only
// ever reads it. Property values are read straight out of the source
// Database's columnar relation storage, not copied — an edge is
// identified across the engine by its row index in the edge relation
// (Neighbor::edge_row), which is also how edge property access and
// edge-id binding resolve (zero-copy column borrows via EdgeColumn).

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "schema/dl_schema.h"
#include "storage/database.h"

namespace raqlet::engine {

class GraphStore {
 public:
  /// Builds the store from the EDB relations described by `dl`. The
  /// database must outlive the store (property tuples are referenced, not
  /// copied).
  static Result<GraphStore> Build(const schema::DlSchema& dl,
                                  const Database& db);

  struct Neighbor {
    int64_t node = 0;        // neighbour node id
    uint32_t edge_row = 0;   // row index in the edge relation
  };

  /// Outgoing / incoming neighbours of `node` over `edge_label`
  /// (UPPER_SNAKE). Empty when the node has none. Neighbour lists are in
  /// edge-relation insertion order — the executors' deterministic emit
  /// order (bit-identical across binding-table modes) depends on it.
  const std::vector<Neighbor>& OutNeighbors(const std::string& edge_label,
                                            int64_t node) const;
  const std::vector<Neighbor>& InNeighbors(const std::string& edge_label,
                                           int64_t node) const;

  /// All node ids carrying `label`, in insertion order (the scan order of
  /// unbound node patterns, load-bearing for determinism like the above).
  const std::vector<int64_t>& NodesWithLabel(const std::string& label) const;

  bool HasLabel(const std::string& label, int64_t node) const;

  /// Property of a node, or error if the node/property is unknown.
  Result<Value> NodeProperty(const std::string& label, int64_t node,
                             const std::string& property) const;

  /// Property of an edge identified by its row in the edge relation.
  Result<Value> EdgeProperty(const std::string& edge_label, uint32_t edge_row,
                             const std::string& property) const;

  /// Zero-copy view of one column of the edge relation (used to bind edge
  /// ids for a whole expansion without materializing row tuples). Valid
  /// until the underlying relation is next mutated — i.e. for the full
  /// lifetime of a query against an immutable store.
  Result<Relation::ColumnView> EdgeColumn(const std::string& edge_label,
                                          int col) const;

  size_t NodeCount() const { return total_nodes_; }
  size_t EdgeCount() const { return total_edges_; }

 private:
  struct LabelData {
    const schema::NodeRelationInfo* info = nullptr;
    const Relation* relation = nullptr;
    std::vector<int64_t> node_ids;
    std::unordered_map<int64_t, uint32_t> row_of;  // node id -> row index
  };
  struct EdgeData {
    const schema::EdgeRelationInfo* info = nullptr;
    const Relation* relation = nullptr;
    std::unordered_map<int64_t, std::vector<Neighbor>> forward;
    std::unordered_map<int64_t, std::vector<Neighbor>> backward;
  };

  std::map<std::string, LabelData> labels_;
  std::map<std::string, EdgeData> edges_;  // keyed by UPPER_SNAKE label
  size_t total_nodes_ = 0;
  size_t total_edges_ = 0;
};

}  // namespace raqlet::engine

#endif  // RAQLET_ENGINE_GRAPH_GRAPH_STORE_H_
