#include "engine/value_ops.h"

#include <sstream>

#include "common/str_util.h"

namespace raqlet::engine {

int CompareValues(const Value& a, const Value& b, const SymbolTable& symbols) {
  auto numericish = [](ValueType t) {
    return t == ValueType::kNumber || t == ValueType::kFloat ||
           t == ValueType::kBool;
  };
  if (a.kind() == ValueType::kSymbol && b.kind() == ValueType::kSymbol) {
    int c = symbols.Resolve(a.AsSymbol()).compare(symbols.Resolve(b.AsSymbol()));
    return c < 0 ? -1 : (c > 0 ? 1 : 0);
  }
  if (numericish(a.kind()) && numericish(b.kind())) {
    if (a.kind() == ValueType::kNumber && b.kind() == ValueType::kNumber) {
      int64_t x = a.AsNumber();
      int64_t y = b.AsNumber();
      return x < y ? -1 : (x > y ? 1 : 0);
    }
    double x = a.NumericValue();
    double y = b.NumericValue();
    return x < y ? -1 : (x > y ? 1 : 0);
  }
  if (a.kind() != b.kind()) {
    return static_cast<int>(a.kind()) < static_cast<int>(b.kind()) ? -1 : 1;
  }
  if (a == b) return 0;
  return a < b ? -1 : 1;
}

bool CheckCmp(dlir::CmpOp op, const Value& lhs, const Value& rhs,
              const SymbolTable& symbols) {
  if (op == dlir::CmpOp::kEq) return lhs == rhs;
  if (op == dlir::CmpOp::kNe) return lhs != rhs;
  int c = CompareValues(lhs, rhs, symbols);
  switch (op) {
    case dlir::CmpOp::kLt:
      return c < 0;
    case dlir::CmpOp::kLe:
      return c <= 0;
    case dlir::CmpOp::kGt:
      return c > 0;
    case dlir::CmpOp::kGe:
      return c >= 0;
    default:
      return false;
  }
}

Result<Value> EvalArith(dlir::ArithOp op, const Value& lhs, const Value& rhs) {
  bool as_float =
      lhs.kind() == ValueType::kFloat || rhs.kind() == ValueType::kFloat;
  if (as_float) {
    double x = lhs.NumericValue();
    double y = rhs.NumericValue();
    switch (op) {
      case dlir::ArithOp::kAdd:
        return Value::Float(x + y);
      case dlir::ArithOp::kSub:
        return Value::Float(x - y);
      case dlir::ArithOp::kMul:
        return Value::Float(x * y);
      case dlir::ArithOp::kDiv:
        if (y == 0.0) return Status::InvalidArgument("division by zero");
        return Value::Float(x / y);
      case dlir::ArithOp::kMod:
        return Status::InvalidArgument("float modulo unsupported");
    }
  }
  int64_t x = lhs.AsNumber();
  int64_t y = rhs.AsNumber();
  switch (op) {
    case dlir::ArithOp::kAdd:
      return Value::Number(x + y);
    case dlir::ArithOp::kSub:
      return Value::Number(x - y);
    case dlir::ArithOp::kMul:
      return Value::Number(x * y);
    case dlir::ArithOp::kDiv:
      if (y == 0) return Status::InvalidArgument("division by zero");
      return Value::Number(x / y);
    case dlir::ArithOp::kMod:
      if (y == 0) return Status::InvalidArgument("modulo by zero");
      return Value::Number(x % y);
  }
  return Status::Internal("unhandled arithmetic op");
}

Value ConstantToValue(const dlir::Constant& c, SymbolTable* symbols) {
  switch (c.type) {
    case ValueType::kNumber:
      return Value::Number(c.num);
    case ValueType::kFloat:
      return Value::Float(c.fval);
    case ValueType::kSymbol:
      return Value::Symbol(symbols->Intern(c.str));
    case ValueType::kBool:
      return Value::Bool(c.bval);
    case ValueType::kNull:
      return Value::Null();
  }
  return Value::Null();
}

std::set<std::string> ResultTable::ToStringSet(
    const SymbolTable& symbols) const {
  std::set<std::string> out;
  for (const Tuple& row : rows) out.insert(TupleToString(row, &symbols));
  return out;
}

std::string ResultTable::ToString(const SymbolTable& symbols) const {
  std::ostringstream os;
  os << Join(columns, ", ") << "\n";
  for (const Tuple& row : rows) {
    os << TupleToString(row, &symbols) << "\n";
  }
  return os.str();
}

}  // namespace raqlet::engine
