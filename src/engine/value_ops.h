#ifndef RAQLET_ENGINE_VALUE_OPS_H_
#define RAQLET_ENGINE_VALUE_OPS_H_

// Runtime value operations shared by the Datalog, SQL and graph engines,
// so that all three paradigms agree on comparison and arithmetic
// semantics (a prerequisite for differential testing, DESIGN.md §5).

#include <set>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/value.h"
#include "dlir/program.h"

namespace raqlet::engine {

/// Three-way comparison: symbols compare lexicographically through
/// `symbols`, numeric kinds compare numerically (ints exactly), other
/// kinds by kind order.
int CompareValues(const Value& a, const Value& b, const SymbolTable& symbols);

/// Evaluates `lhs op rhs`. Equality is exact value identity; ordering uses
/// CompareValues.
bool CheckCmp(dlir::CmpOp op, const Value& lhs, const Value& rhs,
              const SymbolTable& symbols);

/// Integer/float arithmetic with float promotion; errors on division by
/// zero and float modulo.
Result<Value> EvalArith(dlir::ArithOp op, const Value& lhs, const Value& rhs);

/// Converts an IR constant to a runtime value, interning strings.
Value ConstantToValue(const dlir::Constant& c, SymbolTable* symbols);

/// A materialized query result with named columns, as returned by the SQL
/// and graph engines and extracted from output relations of the Datalog
/// engine.
struct ResultTable {
  std::vector<std::string> columns;
  /// Logical type per column when the producing engine knows it (the SQL
  /// engine fills this from its inferred output schema); may be empty.
  std::vector<ValueType> column_types;
  std::vector<Tuple> rows;

  /// Canonical (sorted, rendered) form for cross-engine comparison.
  std::set<std::string> ToStringSet(const SymbolTable& symbols) const;
  std::string ToString(const SymbolTable& symbols) const;
};

}  // namespace raqlet::engine

#endif  // RAQLET_ENGINE_VALUE_OPS_H_
