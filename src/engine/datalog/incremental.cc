#include "engine/datalog/incremental.h"

#include <algorithm>
#include <limits>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "analysis/dependency_graph.h"
#include "engine/value_ops.h"
#include "runtime/execution_context.h"
#include "runtime/thread_pool.h"

namespace raqlet::engine {

namespace {

using dlir::ArithOp;
using dlir::CmpOp;
using dlir::Constant;
using dlir::LatticeKind;
using dlir::Rule;
using dlir::Term;
using dlir::TermKind;

// ---------------------------------------------------------------------------
// Compiled rule representation. Mirrors the main engine's (variables become
// dense slots, constants become interned Values) but is owned here: the
// incremental evaluator needs per-atom state selection (NEW vs pre-delta
// OLD) and delta-list join sources, which the engine's plans do not model.
// ---------------------------------------------------------------------------

struct CTerm {
  enum Kind { kConst, kVar, kWildcard, kBinary };
  Kind kind = kWildcard;
  Value constant;
  int var = -1;
  ArithOp op = ArithOp::kAdd;
  std::vector<CTerm> children;

  bool IsBoundUnder(const std::vector<bool>& bound) const {
    switch (kind) {
      case kConst:
        return true;
      case kVar:
        return bound[static_cast<size_t>(var)];
      case kWildcard:
        return false;
      case kBinary:
        return children[0].IsBoundUnder(bound) &&
               children[1].IsBoundUnder(bound);
    }
    return false;
  }

  bool HasBinary() const { return kind == kBinary; }
};

struct CAtom {
  std::string predicate;
  Relation* relation = nullptr;  // live relation (size used as heuristic)
  bool negated = false;
  bool in_scc = false;  // predicate belongs to the rule's own SCC
  std::vector<CTerm> args;

  bool HasBinaryArg() const {
    for (const CTerm& a : args) {
      if (a.HasBinary()) return true;
    }
    return false;
  }
};

struct CConstraint {
  CmpOp op = CmpOp::kEq;
  CTerm lhs;
  CTerm rhs;
};

struct CRule {
  const Rule* source = nullptr;
  std::string head_predicate;
  Relation* head_relation = nullptr;
  std::vector<CTerm> head_args;
  size_t num_vars = 0;
  std::vector<CAtom> atoms;  // positive first, then negated
  std::vector<CConstraint> constraints;
};

Result<Value> ConstantToValue(const Constant& c, SymbolTable* symbols) {
  switch (c.type) {
    case ValueType::kNumber:
      return Value::Number(c.num);
    case ValueType::kFloat:
      return Value::Float(c.fval);
    case ValueType::kSymbol:
      return Value::Symbol(symbols->Intern(c.str));
    case ValueType::kBool:
      return Value::Bool(c.bval);
    case ValueType::kNull:
      return Value::Null();
  }
  return Status::Internal("unhandled constant type");
}

Result<CTerm> CompileTerm(const Term& term, std::map<std::string, int>* slots,
                          SymbolTable* symbols) {
  CTerm out;
  switch (term.kind) {
    case TermKind::kConstant: {
      out.kind = CTerm::kConst;
      RAQLET_ASSIGN_OR_RETURN(out.constant,
                              ConstantToValue(term.constant, symbols));
      return out;
    }
    case TermKind::kVariable: {
      out.kind = CTerm::kVar;
      auto it = slots->find(term.var);
      if (it == slots->end()) {
        int id = static_cast<int>(slots->size());
        slots->emplace(term.var, id);
        out.var = id;
      } else {
        out.var = it->second;
      }
      return out;
    }
    case TermKind::kWildcard:
      out.kind = CTerm::kWildcard;
      return out;
    case TermKind::kBinary: {
      out.kind = CTerm::kBinary;
      out.op = term.op;
      RAQLET_ASSIGN_OR_RETURN(CTerm lhs,
                              CompileTerm(term.children[0], slots, symbols));
      RAQLET_ASSIGN_OR_RETURN(CTerm rhs,
                              CompileTerm(term.children[1], slots, symbols));
      out.children.push_back(std::move(lhs));
      out.children.push_back(std::move(rhs));
      return out;
    }
  }
  return Status::Internal("unhandled term kind");
}

Result<CRule> CompileRule(const Rule& rule,
                          const std::set<std::string>& scc_preds,
                          const std::unordered_map<std::string, Relation*>& rels,
                          SymbolTable* symbols) {
  CRule out;
  out.source = &rule;
  out.head_predicate = rule.head.predicate;
  auto head_it = rels.find(rule.head.predicate);
  if (head_it == rels.end()) {
    return Status::NotFound("undeclared head predicate: " +
                            rule.head.predicate);
  }
  out.head_relation = head_it->second;
  std::map<std::string, int> slots;
  for (bool negated_pass : {false, true}) {
    for (const dlir::Atom& atom : rule.body) {
      if (atom.negated != negated_pass) continue;
      CAtom ca;
      ca.predicate = atom.predicate;
      auto it = rels.find(atom.predicate);
      if (it == rels.end()) {
        return Status::NotFound("undeclared predicate: " + atom.predicate);
      }
      ca.relation = it->second;
      ca.negated = atom.negated;
      ca.in_scc = scc_preds.count(atom.predicate) > 0;
      for (const Term& arg : atom.args) {
        RAQLET_ASSIGN_OR_RETURN(CTerm t, CompileTerm(arg, &slots, symbols));
        ca.args.push_back(std::move(t));
      }
      out.atoms.push_back(std::move(ca));
    }
  }
  for (const dlir::Constraint& c : rule.constraints) {
    CConstraint cc;
    cc.op = c.op;
    RAQLET_ASSIGN_OR_RETURN(cc.lhs, CompileTerm(c.lhs, &slots, symbols));
    RAQLET_ASSIGN_OR_RETURN(cc.rhs, CompileTerm(c.rhs, &slots, symbols));
    out.constraints.push_back(std::move(cc));
  }
  for (const Term& arg : rule.head.args) {
    RAQLET_ASSIGN_OR_RETURN(CTerm t, CompileTerm(arg, &slots, symbols));
    out.head_args.push_back(std::move(t));
  }
  out.num_vars = slots.size();
  return out;
}

// ---------------------------------------------------------------------------
// Per-predicate delta state: the net change one ApplyDelta made. The OLD
// (pre-delta) contents of a changed relation R are reconstructed as
// (live(R) ∖ added) ∪ minus — live rows are filtered through added_set and
// the erased rows live on in the indexable `minus` relation. Rederivation
// appends tuples in arbitrary row positions, so a row-watermark cannot
// stand in for this.
// ---------------------------------------------------------------------------

struct PredState {
  std::vector<Tuple> added;    // net-new tuples, in insertion order
  std::vector<Tuple> removed;  // net-erased tuples, in erase order
  std::unordered_set<Tuple, TupleHash> added_set;
  std::unique_ptr<Relation> minus;  // holds `removed`, for OLD-side probes

  bool changed() const { return !added.empty() || !removed.empty(); }
};

using PredStates = std::unordered_map<std::string, PredState>;

const PredState* StateOf(const PredStates& states, const std::string& pred) {
  auto it = states.find(pred);
  return it == states.end() ? nullptr : &it->second;
}

Status SealState(const Relation& live, PredState* st) {
  st->added_set.clear();
  for (const Tuple& t : st->added) st->added_set.insert(t);
  st->minus = std::make_unique<Relation>(live.schema());
  return st->minus->InsertBatch(st->removed).status();
}

Tuple MatRow(const Relation& rel, size_t row) {
  Tuple t;
  t.reserve(rel.arity());
  for (size_t c = 0; c < rel.arity(); ++c) t.push_back(rel.ValueAt(row, c));
  return t;
}

// Does the (NEW or OLD) state of `rel` contain any tuple matching `key` on
// `cols`? Empty `cols` asks whether the state is non-empty at all.
bool StateExists(const Relation& rel, const PredState* st, bool old_state,
                 const std::vector<int>& cols, const Tuple& key) {
  if (!old_state || st == nullptr) {
    if (cols.empty()) return rel.size() > 0;
    auto it = rel.EnsureIndex(cols)->find(key);
    return it != rel.EnsureIndex(cols)->end() && !it->second.empty();
  }
  // OLD: a live row not in added_set, or an erased row in minus.
  if (cols.empty()) {
    if (rel.size() > st->added_set.size()) return true;
    for (size_t r = 0; r < rel.size(); ++r) {
      if (st->added_set.count(MatRow(rel, r)) == 0) return true;
    }
  } else {
    auto it = rel.EnsureIndex(cols)->find(key);
    if (it != rel.EnsureIndex(cols)->end()) {
      for (uint32_t row : it->second) {
        if (st->added_set.count(MatRow(rel, row)) == 0) return true;
      }
    }
  }
  if (st->minus == nullptr || st->minus->empty()) return false;
  if (cols.empty()) return true;
  auto mit = st->minus->EnsureIndex(cols)->find(key);
  return mit != st->minus->EnsureIndex(cols)->end() && !mit->second.empty();
}

// ---------------------------------------------------------------------------
// Variant plans. A variant is (rule, delta_atom): the delta atom's rows
// come from a delta list instead of its relation. When the delta atom's
// args are plain vars/consts/wildcards the list is enumerated directly as
// the outermost join ("delta-first"); an atom with computed (binary) args
// cannot unify from a bare tuple, so it stays in greedy join position and
// its state enumeration is intersected with the delta set instead.
// ---------------------------------------------------------------------------

struct Step {
  enum Kind { kJoin, kNeg, kFilter, kBind };
  Kind kind = kJoin;
  int atom = -1;
  int constraint = -1;
  int bind_var = -1;
  bool bind_from_lhs = false;
  std::vector<int> probe_cols;
};

struct Plan {
  std::vector<Step> steps;
  int delta_atom = -1;
  bool delta_first = false;  // delta list enumerated as the join source
  bool delta_keys = false;   // delta tuples are negated-atom projection keys
};

// True when the delta list can be enumerated directly as a join source.
bool CanSourceDirectly(const CAtom& atom) { return !atom.HasBinaryArg(); }

Result<Plan> PlanRule(const CRule& rule, int delta_atom, bool delta_keys,
                      bool reorder, const std::vector<bool>* initial_bound) {
  Plan plan;
  plan.delta_atom = delta_atom;
  plan.delta_keys = delta_keys;
  std::vector<bool> bound(rule.num_vars, false);
  if (initial_bound != nullptr) bound = *initial_bound;
  std::vector<bool> atom_done(rule.atoms.size(), false);
  std::vector<bool> constraint_done(rule.constraints.size(), false);

  const bool delta_first =
      delta_atom >= 0 &&
      (delta_keys ||
       CanSourceDirectly(rule.atoms[static_cast<size_t>(delta_atom)]));
  plan.delta_first = delta_first;
  if (delta_atom >= 0 && rule.atoms[static_cast<size_t>(delta_atom)].negated &&
      !delta_keys) {
    return Status::Internal("negated delta atom requires key mode");
  }

  auto mark_atom_vars = [&](const CAtom& atom, bool skip_wildcard_positions) {
    (void)skip_wildcard_positions;
    for (const CTerm& arg : atom.args) {
      if (arg.kind == CTerm::kVar) bound[static_cast<size_t>(arg.var)] = true;
    }
  };

  auto probe_cols_for = [&](const CAtom& atom) {
    std::vector<int> cols;
    for (size_t i = 0; i < atom.args.size(); ++i) {
      const CTerm& arg = atom.args[i];
      if (arg.kind == CTerm::kWildcard) continue;
      if (arg.IsBoundUnder(bound)) cols.push_back(static_cast<int>(i));
    }
    return cols;
  };

  auto schedule_constraints = [&]() {
    bool changed = true;
    while (changed) {
      changed = false;
      for (size_t i = 0; i < rule.constraints.size(); ++i) {
        if (constraint_done[i]) continue;
        const CConstraint& c = rule.constraints[i];
        bool lhs_bound = c.lhs.IsBoundUnder(bound);
        bool rhs_bound = c.rhs.IsBoundUnder(bound);
        if (lhs_bound && rhs_bound) {
          Step step;
          step.kind = Step::kFilter;
          step.constraint = static_cast<int>(i);
          plan.steps.push_back(step);
          constraint_done[i] = true;
          changed = true;
        } else if (c.op == CmpOp::kEq && rhs_bound &&
                   c.lhs.kind == CTerm::kVar) {
          Step step;
          step.kind = Step::kBind;
          step.constraint = static_cast<int>(i);
          step.bind_var = c.lhs.var;
          step.bind_from_lhs = true;
          plan.steps.push_back(step);
          bound[static_cast<size_t>(c.lhs.var)] = true;
          constraint_done[i] = true;
          changed = true;
        } else if (c.op == CmpOp::kEq && lhs_bound &&
                   c.rhs.kind == CTerm::kVar) {
          Step step;
          step.kind = Step::kBind;
          step.constraint = static_cast<int>(i);
          step.bind_var = c.rhs.var;
          step.bind_from_lhs = false;
          plan.steps.push_back(step);
          bound[static_cast<size_t>(c.rhs.var)] = true;
          constraint_done[i] = true;
          changed = true;
        }
      }
      for (size_t i = 0; i < rule.atoms.size(); ++i) {
        if (atom_done[i] || !rule.atoms[i].negated) continue;
        bool all_bound = true;
        for (const CTerm& arg : rule.atoms[i].args) {
          if (arg.kind == CTerm::kWildcard) continue;
          if (!arg.IsBoundUnder(bound)) {
            all_bound = false;
            break;
          }
        }
        if (all_bound) {
          Step step;
          step.kind = Step::kNeg;
          step.atom = static_cast<int>(i);
          step.probe_cols = probe_cols_for(rule.atoms[i]);
          plan.steps.push_back(std::move(step));
          atom_done[i] = true;
          changed = true;
        }
      }
    }
  };

  // A negated delta atom is consumed as the key source: its ¬∃ condition
  // is already encoded in the key's sign, so no NegCheck is planned.
  if (delta_atom >= 0 && delta_keys) {
    atom_done[static_cast<size_t>(delta_atom)] = true;
  }

  schedule_constraints();

  if (delta_first) {
    Step step;
    step.kind = Step::kJoin;
    step.atom = delta_atom;
    plan.steps.push_back(std::move(step));
    const CAtom& atom = rule.atoms[static_cast<size_t>(delta_atom)];
    if (delta_keys) {
      // Keys carry the non-wildcard positions only.
      for (const CTerm& arg : atom.args) {
        if (arg.kind == CTerm::kVar) {
          bound[static_cast<size_t>(arg.var)] = true;
        }
      }
    } else {
      mark_atom_vars(atom, false);
    }
    atom_done[static_cast<size_t>(delta_atom)] = true;
    schedule_constraints();
  }

  size_t positive_remaining = 0;
  for (size_t i = 0; i < rule.atoms.size(); ++i) {
    if (!atom_done[i] && !rule.atoms[i].negated) ++positive_remaining;
  }

  while (positive_remaining > 0) {
    int best = -1;
    int best_score = -1;
    size_t best_size = 0;
    for (size_t i = 0; i < rule.atoms.size(); ++i) {
      if (atom_done[i] || rule.atoms[i].negated) continue;
      if (!reorder) {
        best = static_cast<int>(i);
        break;
      }
      int score = 0;
      for (const CTerm& arg : rule.atoms[i].args) {
        if (arg.kind != CTerm::kWildcard && arg.IsBoundUnder(bound)) ++score;
      }
      size_t size = rule.atoms[i].relation->size();
      if (score > best_score ||
          (score == best_score && (best < 0 || size < best_size))) {
        best = static_cast<int>(i);
        best_score = score;
        best_size = size;
      }
    }
    if (best < 0) {
      return Status::Internal(
          "incremental planner found no placeable atom for rule head '" +
          rule.head_predicate + "'");
    }
    Step step;
    step.kind = Step::kJoin;
    step.atom = best;
    step.probe_cols = probe_cols_for(rule.atoms[static_cast<size_t>(best)]);
    plan.steps.push_back(std::move(step));
    atom_done[static_cast<size_t>(best)] = true;
    mark_atom_vars(rule.atoms[static_cast<size_t>(best)], false);
    --positive_remaining;
    schedule_constraints();
  }

  for (size_t i = 0; i < rule.constraints.size(); ++i) {
    if (!constraint_done[i]) {
      return Status::Internal(
          "constraint never became evaluable in incremental rule: " +
          rule.source->ToString());
    }
  }
  for (size_t i = 0; i < rule.atoms.size(); ++i) {
    if (!atom_done[i]) {
      return Status::Internal(
          "negated atom never fully bound in incremental rule: " +
          rule.source->ToString());
    }
  }
  return plan;
}

// ---------------------------------------------------------------------------
// Variant execution.
// ---------------------------------------------------------------------------

struct Env {
  std::vector<Value> values;
  std::vector<bool> bound;
  explicit Env(size_t n) : values(n), bound(n, false) {}
};

Result<Value> EvalCTerm(const CTerm& term, const Env& env) {
  switch (term.kind) {
    case CTerm::kConst:
      return term.constant;
    case CTerm::kVar:
      if (!env.bound[static_cast<size_t>(term.var)]) {
        return Status::Internal("evaluating unbound variable slot");
      }
      return env.values[static_cast<size_t>(term.var)];
    case CTerm::kWildcard:
      return Status::Internal("evaluating wildcard term");
    case CTerm::kBinary: {
      RAQLET_ASSIGN_OR_RETURN(Value lhs, EvalCTerm(term.children[0], env));
      RAQLET_ASSIGN_OR_RETURN(Value rhs, EvalCTerm(term.children[1], env));
      return EvalArith(term.op, lhs, rhs);
    }
  }
  return Status::Internal("unhandled term kind");
}

// One variant evaluation over a fixed state assignment. `use_old[i]`
// selects the pre-delta state for atom i; `delta` supplies the delta
// atom's tuples (or keys); out-mode appends every derived head to `out`,
// check-mode instead searches for one derivation emitting exactly
// `target` (with the env pre-bound from the target's head positions).
class VariantEval {
 public:
  VariantEval(const CRule& rule, const Plan& plan, const PredStates& states,
              const std::vector<uint8_t>& use_old,
              const std::vector<Tuple>* delta,
              const std::unordered_set<Tuple, TupleHash>* delta_filter,
              const SymbolTable& symbols)
      : rule_(rule),
        plan_(plan),
        states_(states),
        use_old_(use_old),
        delta_(delta),
        delta_filter_(delta_filter),
        symbols_(symbols) {}

  // Out-mode: evaluate delta rows [begin, end) (the full range when the
  // plan is not delta-first), appending derived heads to `out`.
  Status Run(size_t begin, size_t end, std::vector<Tuple>* out) {
    out_ = out;
    target_ = nullptr;
    found_ = false;
    range_begin_ = begin;
    range_end_ = end;
    Env env(rule_.num_vars);
    return Exec(0, &env);
  }

  // Check-mode: is `target` derivable? Pre-binds head variables.
  Result<bool> Check(const Tuple& target) {
    out_ = nullptr;
    target_ = &target;
    found_ = false;
    range_begin_ = 0;
    range_end_ = std::numeric_limits<size_t>::max();
    Env env(rule_.num_vars);
    // Pre-bind env slots from the target's head positions; a constant
    // mismatch (or inconsistent repeated variable) proves non-derivability
    // outright. Binary head terms are left to the emission-time compare.
    for (size_t i = 0; i < rule_.head_args.size(); ++i) {
      const CTerm& arg = rule_.head_args[i];
      if (arg.kind == CTerm::kConst) {
        if (!(arg.constant == target[i])) return false;
      } else if (arg.kind == CTerm::kVar) {
        size_t slot = static_cast<size_t>(arg.var);
        if (env.bound[slot]) {
          if (!(env.values[slot] == target[i])) return false;
        } else {
          env.values[slot] = target[i];
          env.bound[slot] = true;
        }
      }
    }
    RAQLET_RETURN_IF_ERROR(Exec(0, &env));
    return found_;
  }

 private:
  Status Exec(size_t step_index, Env* env);
  Status EmitHead(Env* env);
  Result<bool> Unify(const CAtom& atom, const Tuple& t, Env* env,
                     std::vector<size_t>* newly_bound);
  Result<bool> UnifyKeys(const CAtom& atom, const Tuple& key, Env* env,
                         std::vector<size_t>* newly_bound);

  bool Done() const { return target_ != nullptr && found_; }

  const CRule& rule_;
  const Plan& plan_;
  const PredStates& states_;
  const std::vector<uint8_t>& use_old_;
  const std::vector<Tuple>* delta_;
  const std::unordered_set<Tuple, TupleHash>* delta_filter_;
  const SymbolTable& symbols_;
  std::vector<Tuple>* out_ = nullptr;
  const Tuple* target_ = nullptr;
  bool found_ = false;
  size_t range_begin_ = 0;
  size_t range_end_ = std::numeric_limits<size_t>::max();
};

Status VariantEval::EmitHead(Env* env) {
  Tuple head;
  head.reserve(rule_.head_args.size());
  for (const CTerm& arg : rule_.head_args) {
    RAQLET_ASSIGN_OR_RETURN(Value v, EvalCTerm(arg, *env));
    head.push_back(v);
  }
  if (target_ != nullptr) {
    if (head == *target_) found_ = true;
    return Status::OK();
  }
  out_->push_back(std::move(head));
  return Status::OK();
}

Result<bool> VariantEval::Unify(const CAtom& atom, const Tuple& t, Env* env,
                                std::vector<size_t>* newly_bound) {
  newly_bound->clear();
  for (size_t i = 0; i < atom.args.size(); ++i) {
    const CTerm& arg = atom.args[i];
    switch (arg.kind) {
      case CTerm::kWildcard:
        break;
      case CTerm::kConst:
        if (!(arg.constant == t[i])) return false;
        break;
      case CTerm::kVar: {
        size_t slot = static_cast<size_t>(arg.var);
        if (env->bound[slot]) {
          if (!(env->values[slot] == t[i])) return false;
        } else {
          env->values[slot] = t[i];
          env->bound[slot] = true;
          newly_bound->push_back(slot);
        }
        break;
      }
      case CTerm::kBinary: {
        RAQLET_ASSIGN_OR_RETURN(Value v, EvalCTerm(arg, *env));
        if (!(v == t[i])) return false;
        break;
      }
    }
  }
  return true;
}

Result<bool> VariantEval::UnifyKeys(const CAtom& atom, const Tuple& key,
                                    Env* env,
                                    std::vector<size_t>* newly_bound) {
  newly_bound->clear();
  size_t k = 0;
  for (const CTerm& arg : atom.args) {
    if (arg.kind == CTerm::kWildcard) continue;
    const Value& v = key[k++];
    switch (arg.kind) {
      case CTerm::kConst:
        if (!(arg.constant == v)) return false;
        break;
      case CTerm::kVar: {
        size_t slot = static_cast<size_t>(arg.var);
        if (env->bound[slot]) {
          if (!(env->values[slot] == v)) return false;
        } else {
          env->values[slot] = v;
          env->bound[slot] = true;
          newly_bound->push_back(slot);
        }
        break;
      }
      default:
        return Status::Internal("key unification over computed term");
    }
  }
  return true;
}

Status VariantEval::Exec(size_t step_index, Env* env) {
  if (Done()) return Status::OK();
  if (step_index == plan_.steps.size()) return EmitHead(env);
  const Step& step = plan_.steps[step_index];
  switch (step.kind) {
    case Step::kFilter: {
      const CConstraint& c =
          rule_.constraints[static_cast<size_t>(step.constraint)];
      RAQLET_ASSIGN_OR_RETURN(Value lhs, EvalCTerm(c.lhs, *env));
      RAQLET_ASSIGN_OR_RETURN(Value rhs, EvalCTerm(c.rhs, *env));
      if (!CheckCmp(c.op, lhs, rhs, symbols_)) return Status::OK();
      return Exec(step_index + 1, env);
    }
    case Step::kBind: {
      const CConstraint& c =
          rule_.constraints[static_cast<size_t>(step.constraint)];
      const CTerm& source = step.bind_from_lhs ? c.rhs : c.lhs;
      RAQLET_ASSIGN_OR_RETURN(Value v, EvalCTerm(source, *env));
      size_t slot = static_cast<size_t>(step.bind_var);
      // Check-mode may have pre-bound this slot from the head: then the
      // bind degrades to an equality filter.
      if (env->bound[slot]) {
        if (!(env->values[slot] == v)) return Status::OK();
        return Exec(step_index + 1, env);
      }
      env->values[slot] = v;
      env->bound[slot] = true;
      Status s = Exec(step_index + 1, env);
      env->bound[slot] = false;
      return s;
    }
    case Step::kNeg: {
      const CAtom& atom = rule_.atoms[static_cast<size_t>(step.atom)];
      Tuple key;
      key.reserve(step.probe_cols.size());
      for (int col : step.probe_cols) {
        RAQLET_ASSIGN_OR_RETURN(
            Value v, EvalCTerm(atom.args[static_cast<size_t>(col)], *env));
        key.push_back(v);
      }
      if (StateExists(*atom.relation, StateOf(states_, atom.predicate),
                      use_old_[static_cast<size_t>(step.atom)] != 0,
                      step.probe_cols, key)) {
        return Status::OK();  // negation fails: prune
      }
      return Exec(step_index + 1, env);
    }
    case Step::kJoin: {
      const CAtom& atom = rule_.atoms[static_cast<size_t>(step.atom)];
      std::vector<size_t> newly_bound;
      const bool is_delta_atom = plan_.delta_atom == step.atom;
      if (is_delta_atom && plan_.delta_first) {
        size_t n = delta_->size();
        size_t begin = std::min(range_begin_, n);
        size_t end = std::min(range_end_, n);
        for (size_t i = begin; i < end; ++i) {
          if (Done()) return Status::OK();
          const Tuple& t = (*delta_)[i];
          bool matched;
          if (plan_.delta_keys) {
            RAQLET_ASSIGN_OR_RETURN(matched,
                                    UnifyKeys(atom, t, env, &newly_bound));
          } else {
            RAQLET_ASSIGN_OR_RETURN(matched, Unify(atom, t, env, &newly_bound));
          }
          Status s = Status::OK();
          if (matched) s = Exec(step_index + 1, env);
          for (size_t slot : newly_bound) env->bound[slot] = false;
          RAQLET_RETURN_IF_ERROR(s);
        }
        return Status::OK();
      }

      const bool old_state = use_old_[static_cast<size_t>(step.atom)] != 0;
      const PredState* st = StateOf(states_, atom.predicate);
      const Relation& live = *atom.relation;

      Tuple key;
      key.reserve(step.probe_cols.size());
      for (int col : step.probe_cols) {
        RAQLET_ASSIGN_OR_RETURN(
            Value v, EvalCTerm(atom.args[static_cast<size_t>(col)], *env));
        key.push_back(v);
      }

      auto try_tuple = [&](const Tuple& t) -> Status {
        if (is_delta_atom && delta_filter_ != nullptr &&
            delta_filter_->count(t) == 0) {
          return Status::OK();
        }
        bool matched;
        RAQLET_ASSIGN_OR_RETURN(matched, Unify(atom, t, env, &newly_bound));
        Status s = Status::OK();
        if (matched) s = Exec(step_index + 1, env);
        for (size_t slot : newly_bound) env->bound[slot] = false;
        return s;
      };

      auto scan_relation = [&](const Relation& rel,
                               bool filter_added) -> Status {
        if (step.probe_cols.empty()) {
          for (size_t r = 0; r < rel.size(); ++r) {
            if (Done()) return Status::OK();
            Tuple t = MatRow(rel, r);
            if (filter_added && st != nullptr && st->added_set.count(t) > 0) {
              continue;
            }
            RAQLET_RETURN_IF_ERROR(try_tuple(t));
          }
          return Status::OK();
        }
        const Relation::KeyIndex* idx = rel.EnsureIndex(step.probe_cols);
        auto it = idx->find(key);
        if (it == idx->end()) return Status::OK();
        for (uint32_t row : it->second) {
          if (Done()) return Status::OK();
          Tuple t = MatRow(rel, row);
          if (filter_added && st != nullptr && st->added_set.count(t) > 0) {
            continue;
          }
          RAQLET_RETURN_IF_ERROR(try_tuple(t));
        }
        return Status::OK();
      };

      RAQLET_RETURN_IF_ERROR(scan_relation(live, old_state));
      if (old_state && st != nullptr && st->minus != nullptr &&
          !st->minus->empty()) {
        RAQLET_RETURN_IF_ERROR(scan_relation(*st->minus, false));
      }
      return Status::OK();
    }
  }
  return Status::Internal("unhandled incremental plan step");
}

// Minimum delta rows per parallel chunk (mirrors the engine's constant).
constexpr size_t kMinRowsPerChunk = 64;

}  // namespace

// ---------------------------------------------------------------------------
// IncrementalView implementation.
// ---------------------------------------------------------------------------

struct IncrementalView::Impl {
  enum class Policy { kCounting, kDred, kRecompute };

  struct SccPlan {
    std::vector<std::string> preds;
    std::set<std::string> pred_set;
    bool recursive = false;
    Policy policy = Policy::kCounting;
    std::vector<CRule> rules;
    std::vector<const Rule*> dlir_rules;  // into program.rules, same order
    std::set<std::string> body_preds;
  };

  IncrementalOptions options;
  Database* db = nullptr;
  dlir::Program program;
  bool initialized = false;
  bool poisoned = false;
  IncrementalStats stats;
  std::vector<SccPlan> sccs;
  std::unordered_map<std::string, Relation*> relations;
  std::set<std::string> input_preds;
  // Per-predicate support counts (number of distinct derivations) for
  // counting-policy SCCs.
  std::unordered_map<std::string, std::unordered_map<Tuple, int64_t, TupleHash>>
      support;
  std::unique_ptr<DatalogEngine> full_engine;  // Initialize-time evaluation
  std::unique_ptr<DatalogEngine> sub_engine;   // serial recompute fallback
  std::unique_ptr<runtime::ExecutionContext> context;  // when num_threads > 1

  runtime::ThreadPool* pool() const {
    return context != nullptr ? context->pool() : nullptr;
  }

  Status Initialize(const dlir::Program& prog, Database* database,
                    EvalStats* eval_stats, const runtime::QueryGuard* guard);
  Result<AppliedDelta> Apply(const DeltaBatch& batch,
                             obs::IncrementalMetrics* metrics,
                             const runtime::QueryGuard* guard);

 private:
  Status Guard(const runtime::QueryGuard* guard, size_t rows) const {
    if (guard == nullptr) return Status::OK();
    RAQLET_RETURN_IF_ERROR(guard->AddRows(rows));
    return guard->Check();
  }

  // Evaluates one variant, appending derived heads to `out` in
  // deterministic order. Fans the delta range out across the pool when
  // `parallel` and the plan is delta-first; chunk results are concatenated
  // in chunk order, so the emitted sequence is bit-identical to serial.
  Status EvalVariant(const CRule& rule, int delta_atom, bool delta_keys,
                     const std::vector<Tuple>& delta,
                     const PredStates& states,
                     const std::vector<uint8_t>& use_old, bool parallel,
                     std::vector<Tuple>* out);

  // For a changed negated atom: the distinct projection keys (onto the
  // atom's non-wildcard positions) whose ¬∃ truth value flipped, split by
  // direction. `plus` keys flipped false→true (¬ now holds), `minus` keys
  // true→false.
  void NegKeyDeltas(const CAtom& atom, const PredState& st,
                    const PredStates& states, std::vector<Tuple>* plus,
                    std::vector<Tuple>* minus) const;

  Status ApplyCounting(SccPlan* scc, PredStates* states,
                       IncrementalStats* local,
                       const runtime::QueryGuard* guard);
  Status ApplyDred(SccPlan* scc, PredStates* states, IncrementalStats* local,
                   const runtime::QueryGuard* guard, bool* bailed);
  Status ApplyRecompute(SccPlan* scc, PredStates* states,
                        IncrementalStats* local,
                        const runtime::QueryGuard* guard);
};

Status IncrementalView::Impl::Initialize(const dlir::Program& prog,
                                         Database* database,
                                         EvalStats* eval_stats,
                                         const runtime::QueryGuard* guard) {
  initialized = false;
  poisoned = false;
  stats = IncrementalStats{};
  sccs.clear();
  relations.clear();
  input_preds.clear();
  support.clear();
  db = database;
  program = prog;
  RAQLET_RETURN_IF_ERROR(program.Validate());

  if (full_engine == nullptr) {
    EvalOptions eval_options;
    eval_options.max_iterations = options.max_iterations;
    eval_options.reorder_atoms = options.reorder_atoms;
    eval_options.overwrite_idb = true;
    eval_options.num_threads = options.num_threads;
    full_engine = std::make_unique<DatalogEngine>(eval_options);
  }
  if (sub_engine == nullptr) {
    EvalOptions sub_options;
    sub_options.max_iterations = options.max_iterations;
    sub_options.reorder_atoms = options.reorder_atoms;
    sub_options.overwrite_idb = true;
    sub_options.num_threads = 1;
    sub_engine = std::make_unique<DatalogEngine>(sub_options);
  }
  if (options.num_threads > 1 && context == nullptr) {
    context = std::make_unique<runtime::ExecutionContext>(options.num_threads);
  }

  // From-scratch evaluation (also validates stratification).
  RAQLET_RETURN_IF_ERROR(
      full_engine->Run(program, db, eval_stats, nullptr, guard));

  for (const dlir::RelationDecl& decl : program.decls) {
    RAQLET_ASSIGN_OR_RETURN(Relation * rel, db->GetRelation(decl.name));
    relations[decl.name] = rel;
    if (decl.is_input) input_preds.insert(decl.name);
  }

  analysis::DependencyGraph graph = analysis::DependencyGraph::Build(program);
  const auto& topo = graph.SccsInTopologicalOrder();
  sccs.reserve(topo.size());
  for (size_t i = 0; i < topo.size(); ++i) {
    SccPlan scc;
    scc.preds = topo[i];
    scc.pred_set.insert(topo[i].begin(), topo[i].end());
    scc.recursive = graph.IsRecursiveScc(static_cast<int>(i));
    bool needs_recompute = false;
    for (const std::string& pred : scc.preds) {
      const dlir::RelationDecl* decl = program.FindDecl(pred);
      if (decl != nullptr && decl->lattice != LatticeKind::kNone) {
        needs_recompute = true;
      }
    }
    for (const Rule& rule : program.rules) {
      if (scc.pred_set.count(rule.head.predicate) == 0) continue;
      if (rule.agg.has_value()) needs_recompute = true;
      for (const dlir::Atom& atom : rule.body) {
        scc.body_preds.insert(atom.predicate);
        if (atom.negated) {
          // A negated atom with computed args cannot source projection-key
          // deltas; fall back to recomputing the SCC.
          for (const Term& arg : atom.args) {
            if (arg.kind == TermKind::kBinary) needs_recompute = true;
          }
        }
      }
      RAQLET_ASSIGN_OR_RETURN(
          CRule compiled,
          CompileRule(rule, scc.pred_set, relations, &db->symbols()));
      scc.rules.push_back(std::move(compiled));
      scc.dlir_rules.push_back(&rule);
    }
    scc.policy = needs_recompute
                     ? Policy::kRecompute
                     : (scc.recursive ? Policy::kDred : Policy::kCounting);
    sccs.push_back(std::move(scc));
  }

  // Support counts: one full-join enumeration per counting rule, counting
  // every distinct derivation of each head tuple.
  PredStates no_states;
  for (SccPlan& scc : sccs) {
    if (scc.policy != Policy::kCounting || scc.rules.empty()) continue;
    auto& counts = support[scc.preds[0]];
    for (const CRule& rule : scc.rules) {
      std::vector<uint8_t> all_new(rule.atoms.size(), 0);
      std::vector<Tuple> heads;
      RAQLET_RETURN_IF_ERROR(EvalVariant(rule, -1, false, {}, no_states,
                                         all_new, false, &heads));
      for (Tuple& h : heads) counts[std::move(h)] += 1;
    }
    if (guard != nullptr) RAQLET_RETURN_IF_ERROR(guard->Check());
  }

  initialized = true;
  return Status::OK();
}

Status IncrementalView::Impl::EvalVariant(
    const CRule& rule, int delta_atom, bool delta_keys,
    const std::vector<Tuple>& delta, const PredStates& states,
    const std::vector<uint8_t>& use_old, bool parallel,
    std::vector<Tuple>* out) {
  const bool direct =
      delta_atom < 0 || delta_keys ||
      CanSourceDirectly(rule.atoms[static_cast<size_t>(delta_atom)]);
  std::unordered_set<Tuple, TupleHash> filter;
  const std::unordered_set<Tuple, TupleHash>* filter_ptr = nullptr;
  if (delta_atom >= 0 && !direct) {
    filter.insert(delta.begin(), delta.end());
    filter_ptr = &filter;
  }
  RAQLET_ASSIGN_OR_RETURN(
      Plan plan,
      PlanRule(rule, delta_atom, delta_keys, options.reorder_atoms, nullptr));

  runtime::ThreadPool* p = pool();
  if (parallel && p != nullptr && plan.delta_first &&
      delta.size() >= 2 * kMinRowsPerChunk) {
    // Pre-resolve every index the plan probes while single-threaded is
    // unnecessary (EnsureIndex is thread-safe), but pre-touching them here
    // avoids building the same index concurrently on first probe.
    for (const Step& step : plan.steps) {
      if (step.atom < 0 || step.probe_cols.empty()) continue;
      const CAtom& atom = rule.atoms[static_cast<size_t>(step.atom)];
      atom.relation->EnsureIndex(step.probe_cols);
      const PredState* st = StateOf(states, atom.predicate);
      if (st != nullptr && st->minus != nullptr && !st->minus->empty()) {
        st->minus->EnsureIndex(step.probe_cols);
      }
    }
    const size_t n = delta.size();
    const size_t max_chunks =
        static_cast<size_t>(std::max(1, options.num_threads)) * 4;
    const size_t chunk =
        std::max(kMinRowsPerChunk, (n + max_chunks - 1) / max_chunks);
    const size_t num_chunks = (n + chunk - 1) / chunk;
    std::vector<std::vector<Tuple>> chunk_out(num_chunks);
    std::vector<Status> chunk_status(num_chunks, Status::OK());
    p->ParallelFor(num_chunks, [&](size_t c) {
      VariantEval eval(rule, plan, states, use_old, &delta, nullptr,
                       db->symbols());
      chunk_status[c] =
          eval.Run(c * chunk, std::min(n, (c + 1) * chunk), &chunk_out[c]);
    });
    for (size_t c = 0; c < num_chunks; ++c) {
      RAQLET_RETURN_IF_ERROR(chunk_status[c]);
      out->insert(out->end(), std::make_move_iterator(chunk_out[c].begin()),
                  std::make_move_iterator(chunk_out[c].end()));
    }
    return Status::OK();
  }

  VariantEval eval(rule, plan, states, use_old, &delta, filter_ptr,
                   db->symbols());
  return eval.Run(0, std::numeric_limits<size_t>::max(), out);
}

void IncrementalView::Impl::NegKeyDeltas(const CAtom& atom,
                                         const PredState& st,
                                         const PredStates& states,
                                         std::vector<Tuple>* plus,
                                         std::vector<Tuple>* minus) const {
  std::vector<int> proj;
  for (size_t i = 0; i < atom.args.size(); ++i) {
    if (atom.args[i].kind != CTerm::kWildcard) {
      proj.push_back(static_cast<int>(i));
    }
  }
  std::unordered_set<Tuple, TupleHash> seen;
  auto consider = [&](const Tuple& t) {
    Tuple key;
    key.reserve(proj.size());
    for (int p : proj) key.push_back(t[static_cast<size_t>(p)]);
    if (!seen.insert(key).second) return;
    const PredState* state = StateOf(states, atom.predicate);
    bool new_ex = StateExists(*atom.relation, state, false, proj, key);
    bool old_ex = StateExists(*atom.relation, state, true, proj, key);
    int sign = (new_ex ? 0 : 1) - (old_ex ? 0 : 1);
    if (sign > 0) {
      plus->push_back(std::move(key));
    } else if (sign < 0) {
      minus->push_back(std::move(key));
    }
  };
  for (const Tuple& t : st.added) consider(t);
  for (const Tuple& t : st.removed) consider(t);
}

Status IncrementalView::Impl::ApplyCounting(SccPlan* scc, PredStates* states,
                                            IncrementalStats* local,
                                            const runtime::QueryGuard* guard) {
  const std::string& pred = scc->preds[0];
  Relation* rel = relations.at(pred);
  auto& counts = support[pred];

  // Signed support deltas, accumulated in first-touch order so the
  // resulting insert/erase batches are deterministic.
  std::unordered_map<Tuple, int64_t, TupleHash> dcount;
  std::vector<Tuple> touched;
  auto sink = [&](std::vector<Tuple>& heads, int64_t sign) {
    for (Tuple& h : heads) {
      auto [it, fresh] = dcount.emplace(h, 0);
      if (fresh) touched.push_back(it->first);
      it->second += sign;
    }
    heads.clear();
  };

  for (const CRule& rule : scc->rules) {
    for (size_t i = 0; i < rule.atoms.size(); ++i) {
      const CAtom& atom = rule.atoms[i];
      const PredState* st = StateOf(*states, atom.predicate);
      if (st == nullptr || !st->changed()) continue;
      // Telescoping state assignment: atoms before the delta position see
      // the NEW state, atoms after it the OLD state.
      std::vector<uint8_t> use_old(rule.atoms.size(), 0);
      for (size_t j = i + 1; j < rule.atoms.size(); ++j) use_old[j] = 1;
      std::vector<Tuple> heads;
      if (!atom.negated) {
        if (!st->removed.empty()) {
          use_old[i] = 1;  // removed tuples live in the OLD state
          RAQLET_RETURN_IF_ERROR(EvalVariant(rule, static_cast<int>(i), false,
                                             st->removed, *states, use_old,
                                             false, &heads));
          sink(heads, -1);
        }
        if (!st->added.empty()) {
          use_old[i] = 0;
          RAQLET_RETURN_IF_ERROR(EvalVariant(rule, static_cast<int>(i), false,
                                             st->added, *states, use_old,
                                             false, &heads));
          sink(heads, +1);
        }
      } else {
        std::vector<Tuple> plus_keys, minus_keys;
        NegKeyDeltas(atom, *st, *states, &plus_keys, &minus_keys);
        if (!plus_keys.empty()) {
          RAQLET_RETURN_IF_ERROR(EvalVariant(rule, static_cast<int>(i), true,
                                             plus_keys, *states, use_old,
                                             false, &heads));
          sink(heads, +1);
        }
        if (!minus_keys.empty()) {
          RAQLET_RETURN_IF_ERROR(EvalVariant(rule, static_cast<int>(i), true,
                                             minus_keys, *states, use_old,
                                             false, &heads));
          sink(heads, -1);
        }
      }
    }
  }

  std::vector<Tuple> to_add;
  std::vector<Tuple> to_remove;
  for (const Tuple& h : touched) {
    int64_t delta = dcount[h];
    if (delta == 0) continue;
    auto it = counts.find(h);
    int64_t old_support = it == counts.end() ? 0 : it->second;
    int64_t new_support = old_support + delta;
    if (new_support < 0) {
      return Status::Internal(
          "support count underflow for '" + pred +
          "' — counting maintenance invariant violated");
    }
    ++local->support_updates;
    if (new_support == 0) {
      counts.erase(h);
    } else {
      counts[h] = new_support;
    }
    if (old_support == 0 && new_support > 0) to_add.push_back(h);
    if (old_support > 0 && new_support == 0) to_remove.push_back(h);
  }
  local->rounds += 1;
  RAQLET_RETURN_IF_ERROR(Guard(guard, to_add.size() + to_remove.size()));

  PredState out_state;
  if (!to_remove.empty()) {
    size_t erased;
    RAQLET_ASSIGN_OR_RETURN(erased, rel->EraseBatch(to_remove));
    if (erased != to_remove.size()) {
      return Status::Internal("counting erase removed " +
                              std::to_string(erased) + " of " +
                              std::to_string(to_remove.size()) +
                              " support-dead tuples in '" + pred + "'");
    }
    out_state.removed = std::move(to_remove);
  }
  for (Tuple& t : to_add) {
    bool fresh;
    RAQLET_ASSIGN_OR_RETURN(fresh, rel->Insert(t));
    if (fresh) out_state.added.push_back(std::move(t));
  }
  local->tuples_inserted += out_state.added.size();
  local->tuples_deleted += out_state.removed.size();
  if (out_state.changed()) {
    RAQLET_RETURN_IF_ERROR(SealState(*rel, &out_state));
    (*states)[pred] = std::move(out_state);
  }
  return Status::OK();
}

Status IncrementalView::Impl::ApplyDred(SccPlan* scc, PredStates* states,
                                        IncrementalStats* local,
                                        const runtime::QueryGuard* guard,
                                        bool* bailed) {
  *bailed = false;
  // Per-pred overdeletion state, in discovery order.
  std::unordered_map<std::string, std::vector<Tuple>> over;
  std::unordered_map<std::string, std::unordered_set<Tuple, TupleHash>>
      over_set;
  for (const std::string& p : scc->preds) {
    over[p];
    over_set[p];
  }

  // Bail-out budget: when a deletion cascades through more than this many
  // of the SCC's pre-delta rows, DRed degenerates — it would erase and
  // tuple-at-a-time rederive most of the view, which is strictly slower
  // than handing the SCC to the batch engine. Phase A mutates nothing, so
  // aborting here and falling back to recompute-and-diff is clean. The
  // threshold is a pure function of deterministic sizes, so the chosen
  // path is identical across thread counts.
  size_t scc_rows = 0;
  for (const std::string& p : scc->preds) scc_rows += relations.at(p)->size();
  const double threshold = options.dred_recompute_threshold;
  const size_t bail_at =
      threshold > 0.0
          ? std::max(static_cast<size_t>(threshold *
                                         static_cast<double>(scc_rows)),
                     options.dred_recompute_min_over)
          : std::numeric_limits<size_t>::max();
  size_t total_over = 0;

  // Admit emitted deletion candidates: present in the (still pre-delta)
  // SCC relation and not already overdeleted.
  auto admit = [&](const std::string& head, std::vector<Tuple>& heads,
                   std::unordered_map<std::string, std::vector<Tuple>>* round) {
    Relation* rel = relations.at(head);
    auto& os = over_set[head];
    auto& ov = over[head];
    for (Tuple& h : heads) {
      if (!rel->Contains(h)) continue;
      if (!os.insert(h).second) continue;
      ++total_over;
      ov.push_back(h);
      (*round)[head].push_back(std::move(h));
    }
    heads.clear();
  };

  // Pre-compute the negated-atom key flips once per (rule, atom): both the
  // deletion seeds (minus keys) and the insertion seeds (plus keys) need
  // them, and they must be evaluated before any SCC mutation.
  struct NegFlips {
    std::vector<Tuple> plus;
    std::vector<Tuple> minus;
  };
  std::map<std::pair<size_t, size_t>, NegFlips> neg_flips;
  for (size_t r = 0; r < scc->rules.size(); ++r) {
    const CRule& rule = scc->rules[r];
    for (size_t i = 0; i < rule.atoms.size(); ++i) {
      const CAtom& atom = rule.atoms[i];
      if (!atom.negated || atom.in_scc) continue;
      const PredState* st = StateOf(*states, atom.predicate);
      if (st == nullptr || !st->changed()) continue;
      NegFlips flips;
      NegKeyDeltas(atom, *st, *states, &flips.plus, &flips.minus);
      if (!flips.plus.empty() || !flips.minus.empty()) {
        neg_flips[{r, i}] = std::move(flips);
      }
    }
  }

  // ---- Phase A: overdeletion fixpoint (all body atoms in OLD state). ----
  std::unordered_map<std::string, std::vector<Tuple>> cur;
  for (size_t r = 0; r < scc->rules.size(); ++r) {
    const CRule& rule = scc->rules[r];
    std::vector<uint8_t> all_old(rule.atoms.size(), 1);
    for (size_t i = 0; i < rule.atoms.size(); ++i) {
      const CAtom& atom = rule.atoms[i];
      if (atom.in_scc) continue;  // in-SCC deltas come from propagation
      const PredState* st = StateOf(*states, atom.predicate);
      if (st == nullptr || !st->changed()) continue;
      std::vector<Tuple> heads;
      if (!atom.negated) {
        if (st->removed.empty()) continue;
        RAQLET_RETURN_IF_ERROR(EvalVariant(rule, static_cast<int>(i), false,
                                           st->removed, *states, all_old,
                                           false, &heads));
      } else {
        auto it = neg_flips.find({r, i});
        if (it == neg_flips.end() || it->second.minus.empty()) continue;
        RAQLET_RETURN_IF_ERROR(EvalVariant(rule, static_cast<int>(i), true,
                                           it->second.minus, *states, all_old,
                                           false, &heads));
      }
      admit(rule.head_predicate, heads, &cur);
    }
  }
  size_t deletion_rounds = 0;
  while (true) {
    if (total_over > bail_at) {
      *bailed = true;
      local->dred_bailouts += 1;
      return Status::OK();
    }
    size_t frontier = 0;
    for (const std::string& p : scc->preds) frontier += cur[p].size();
    if (frontier == 0) break;
    local->rounds += 1;
    RAQLET_RETURN_IF_ERROR(Guard(guard, frontier));
    if (options.max_iterations > 0 &&
        ++deletion_rounds > options.max_iterations) {
      return Status::ResourceExhausted(
          "incremental overdeletion exceeded max_iterations");
    }
    std::unordered_map<std::string, std::vector<Tuple>> next;
    for (const CRule& rule : scc->rules) {
      std::vector<uint8_t> all_old(rule.atoms.size(), 1);
      for (size_t i = 0; i < rule.atoms.size(); ++i) {
        const CAtom& atom = rule.atoms[i];
        if (!atom.in_scc || atom.negated) continue;
        auto dit = cur.find(atom.predicate);
        if (dit == cur.end() || dit->second.empty()) continue;
        std::vector<Tuple> heads;
        RAQLET_RETURN_IF_ERROR(EvalVariant(rule, static_cast<int>(i), false,
                                           dit->second, *states, all_old,
                                           false, &heads));
        admit(rule.head_predicate, heads, &next);
        // A single round can blow far past the budget (the cascade can
        // multiply per rule), so check between rules, not just between
        // rounds.
        if (total_over > bail_at) {
          *bailed = true;
          local->dred_bailouts += 1;
          return Status::OK();
        }
      }
    }
    cur = std::move(next);
  }

  // ---- Phase B: erase the overdeleted tuples. ----
  for (const std::string& p : scc->preds) {
    if (over[p].empty()) continue;
    size_t erased;
    RAQLET_ASSIGN_OR_RETURN(erased, relations.at(p)->EraseBatch(over[p]));
    if (erased != over[p].size()) {
      return Status::Internal("DRed erase removed " + std::to_string(erased) +
                              " of " + std::to_string(over[p].size()) +
                              " overdeleted tuples in '" + p + "'");
    }
    local->overdeleted += over[p].size();
  }

  // ---- Phase C: rederive what is still derivable from the remainder.
  // One pass suffices: rederived tuples re-enter as insertion deltas, so
  // transitive rederivations happen in the continuation below. ----
  // Check-mode plans are hoisted out of the per-tuple loop and planned
  // with the head variables marked bound (Check pre-binds those env slots
  // from the target), so probes run against the target's keys instead of
  // rescanning the first atom per tuple.
  struct CheckRule {
    const CRule* rule;
    Plan plan;
    std::vector<uint8_t> all_new;
  };
  std::unordered_map<std::string, std::vector<CheckRule>> check_rules;
  for (const CRule& rule : scc->rules) {
    std::vector<bool> head_bound(rule.num_vars, false);
    for (const CTerm& arg : rule.head_args) {
      if (arg.kind == CTerm::kVar) {
        head_bound[static_cast<size_t>(arg.var)] = true;
      }
    }
    RAQLET_ASSIGN_OR_RETURN(
        Plan plan,
        PlanRule(rule, -1, false, options.reorder_atoms, &head_bound));
    check_rules[rule.head_predicate].push_back(
        {&rule, std::move(plan),
         std::vector<uint8_t>(rule.atoms.size(), 0)});
  }
  // Every check runs against the pure post-erase state before any
  // rederived tuple is inserted back: interleaving inserts would both
  // blur the semantics and invalidate the relations' cached indexes
  // between probes (an O(n²) rebuild churn). Tuples that are only
  // derivable *through* another rederivation re-enter via the insertion
  // continuation below instead.
  std::unordered_map<std::string, std::vector<Tuple>> inserted;
  std::unordered_map<std::string, std::vector<Tuple>> rederive;
  for (const std::string& p : scc->preds) {
    for (const Tuple& t : over[p]) {
      bool derivable = false;
      for (const CheckRule& cr : check_rules[p]) {
        VariantEval eval(*cr.rule, cr.plan, *states, cr.all_new, nullptr,
                         nullptr, db->symbols());
        RAQLET_ASSIGN_OR_RETURN(derivable, eval.Check(t));
        if (derivable) break;
      }
      if (derivable) rederive[p].push_back(t);
    }
  }
  for (const std::string& p : scc->preds) {
    Relation* rel = relations.at(p);
    for (Tuple& t : rederive[p]) {
      bool fresh;
      RAQLET_ASSIGN_OR_RETURN(fresh, rel->Insert(t));
      if (fresh) cur[p].push_back(std::move(t));
    }
  }

  // ---- Phase D: semi-naive insertion continuation. Seeds: incoming adds
  // and ¬-became-true key flips from lower strata, plus the phase-C
  // rederivations already sitting in `cur`. This is the entire algorithm
  // for insert-only deltas. ----
  auto insert_heads = [&](const std::string& head, std::vector<Tuple>& heads,
                          std::unordered_map<std::string, std::vector<Tuple>>*
                              round) -> Status {
    Relation* rel = relations.at(head);
    for (Tuple& h : heads) {
      bool fresh;
      RAQLET_ASSIGN_OR_RETURN(fresh, rel->Insert(h));
      if (!fresh) continue;
      inserted[head].push_back(h);
      (*round)[head].push_back(std::move(h));
    }
    heads.clear();
    return Status::OK();
  };

  for (size_t r = 0; r < scc->rules.size(); ++r) {
    const CRule& rule = scc->rules[r];
    std::vector<uint8_t> all_new(rule.atoms.size(), 0);
    for (size_t i = 0; i < rule.atoms.size(); ++i) {
      const CAtom& atom = rule.atoms[i];
      if (atom.in_scc) continue;
      const PredState* st = StateOf(*states, atom.predicate);
      if (st == nullptr || !st->changed()) continue;
      std::vector<Tuple> heads;
      if (!atom.negated) {
        if (st->added.empty()) continue;
        RAQLET_RETURN_IF_ERROR(EvalVariant(rule, static_cast<int>(i), false,
                                           st->added, *states, all_new, true,
                                           &heads));
      } else {
        auto it = neg_flips.find({r, i});
        if (it == neg_flips.end() || it->second.plus.empty()) continue;
        RAQLET_RETURN_IF_ERROR(EvalVariant(rule, static_cast<int>(i), true,
                                           it->second.plus, *states, all_new,
                                           true, &heads));
      }
      RAQLET_RETURN_IF_ERROR(insert_heads(rule.head_predicate, heads, &cur));
    }
  }
  size_t insertion_rounds = 0;
  while (true) {
    size_t frontier = 0;
    for (const std::string& p : scc->preds) frontier += cur[p].size();
    if (frontier == 0) break;
    local->rounds += 1;
    RAQLET_RETURN_IF_ERROR(Guard(guard, frontier));
    if (options.max_iterations > 0 &&
        ++insertion_rounds > options.max_iterations) {
      return Status::ResourceExhausted(
          "incremental insertion exceeded max_iterations");
    }
    std::unordered_map<std::string, std::vector<Tuple>> next;
    for (const CRule& rule : scc->rules) {
      std::vector<uint8_t> all_new(rule.atoms.size(), 0);
      for (size_t i = 0; i < rule.atoms.size(); ++i) {
        const CAtom& atom = rule.atoms[i];
        if (!atom.in_scc || atom.negated) continue;
        auto dit = cur.find(atom.predicate);
        if (dit == cur.end() || dit->second.empty()) continue;
        std::vector<Tuple> heads;
        RAQLET_RETURN_IF_ERROR(EvalVariant(rule, static_cast<int>(i), false,
                                           dit->second, *states, all_new,
                                           true, &heads));
        RAQLET_RETURN_IF_ERROR(
            insert_heads(rule.head_predicate, heads, &next));
      }
    }
    cur = std::move(next);
  }

  // ---- Finalize the per-pred net deltas. A tuple that was overdeleted
  // and later re-inserted (rederived directly or via the continuation) is
  // a net no-op; a fresh insertion that was never overdeleted is net-new.
  for (const std::string& p : scc->preds) {
    Relation* rel = relations.at(p);
    PredState out_state;
    const auto& os = over_set[p];
    for (const Tuple& t : over[p]) {
      if (!rel->Contains(t)) out_state.removed.push_back(t);
    }
    local->rederived += over[p].size() - out_state.removed.size();
    for (const Tuple& t : inserted[p]) {
      if (os.count(t) == 0) out_state.added.push_back(t);
    }
    local->tuples_inserted += out_state.added.size();
    local->tuples_deleted += out_state.removed.size();
    if (out_state.changed()) {
      RAQLET_RETURN_IF_ERROR(SealState(*rel, &out_state));
      (*states)[p] = std::move(out_state);
    }
  }
  return Status::OK();
}

Status IncrementalView::Impl::ApplyRecompute(SccPlan* scc, PredStates* states,
                                             IncrementalStats* local,
                                             const runtime::QueryGuard* guard) {
  // Snapshot the previous rows of every head predicate.
  std::unordered_map<std::string, std::vector<Tuple>> old_rows;
  for (const std::string& p : scc->preds) {
    old_rows[p] = relations.at(p)->MaterializeRows();
  }

  // Build the sub-program: this SCC's rules, with every lower-stratum
  // dependency redeclared as an input so the engine reads it as-is.
  dlir::Program sub;
  for (const dlir::RelationDecl& decl : program.decls) {
    const bool is_head = scc->pred_set.count(decl.name) > 0;
    if (!is_head && scc->body_preds.count(decl.name) == 0) continue;
    dlir::RelationDecl copy = decl;
    if (!is_head) copy.is_input = true;
    sub.decls.push_back(std::move(copy));
  }
  for (const Rule* rule : scc->dlir_rules) sub.rules.push_back(*rule);

  RAQLET_RETURN_IF_ERROR(sub_engine->Run(sub, db, nullptr, nullptr, guard));
  local->rounds += 1;
  local->recomputed_sccs += 1;

  for (const std::string& p : scc->preds) {
    Relation* rel = relations.at(p);
    std::vector<Tuple> new_rows = rel->MaterializeRows();
    // Diff against a columnar snapshot of the old rows: the relation's own
    // dedup answers "still present?" for the removed side, and a throwaway
    // Relation answers "already present?" for the added side — both flat
    // open-addressing probes, an order of magnitude cheaper at closure
    // scale than building node-based hash sets of materialized tuples.
    Relation old_snapshot(rel->schema());
    RAQLET_RETURN_IF_ERROR(old_snapshot.InsertBatch(old_rows[p]).status());
    PredState out_state;
    for (Tuple& t : new_rows) {
      if (!old_snapshot.Contains(t)) out_state.added.push_back(std::move(t));
    }
    for (Tuple& t : old_rows[p]) {
      if (!rel->Contains(t)) out_state.removed.push_back(std::move(t));
    }
    local->tuples_inserted += out_state.added.size();
    local->tuples_deleted += out_state.removed.size();
    RAQLET_RETURN_IF_ERROR(Guard(guard, out_state.added.size() +
                                            out_state.removed.size()));
    if (out_state.changed()) {
      RAQLET_RETURN_IF_ERROR(SealState(*rel, &out_state));
      (*states)[p] = std::move(out_state);
    }
  }
  return Status::OK();
}

Result<AppliedDelta> IncrementalView::Impl::Apply(
    const DeltaBatch& batch, obs::IncrementalMetrics* metrics,
    const runtime::QueryGuard* guard) {
  // Apply the base delta and collapse it into one net PredState per
  // changed relation (a relation may appear in several batch entries).
  AppliedDelta base;
  RAQLET_ASSIGN_OR_RETURN(base, db->ApplyDelta(batch));

  PredStates states;
  std::vector<std::string> base_order;
  for (AppliedRelationDelta& ard : base.relations) {
    auto [it, fresh] = states.try_emplace(ard.relation);
    if (fresh) base_order.push_back(ard.relation);
    PredState& st = it->second;
    std::unordered_set<Tuple, TupleHash> removed_set(st.removed.begin(),
                                                     st.removed.end());
    for (Tuple& t : ard.added) {
      if (removed_set.count(t) > 0) {
        // Removed earlier in the batch, re-added now: net no-op.
        removed_set.erase(t);
        st.removed.erase(std::find(st.removed.begin(), st.removed.end(), t));
      } else {
        st.added.push_back(std::move(t));
      }
    }
    std::unordered_set<Tuple, TupleHash> added_set(st.added.begin(),
                                                   st.added.end());
    for (Tuple& t : ard.removed) {
      if (added_set.count(t) > 0) {
        st.added.erase(std::find(st.added.begin(), st.added.end(), t));
      } else {
        st.removed.push_back(std::move(t));
      }
    }
  }
  IncrementalStats local;
  for (const std::string& pred : base_order) {
    PredState& st = states[pred];
    local.base_added += st.added.size();
    local.base_removed += st.removed.size();
    RAQLET_RETURN_IF_ERROR(SealState(*relations.at(pred), &st));
  }
  RAQLET_RETURN_IF_ERROR(
      Guard(guard, local.base_added + local.base_removed));

  // Re-fire only the SCCs whose body predicates changed, in topological
  // order, so each SCC sees final lower-stratum states.
  for (SccPlan& scc : sccs) {
    if (scc.rules.empty()) continue;
    bool affected = false;
    for (const std::string& dep : scc.body_preds) {
      const PredState* st = StateOf(states, dep);
      if (st != nullptr && st->changed()) {
        affected = true;
        break;
      }
    }
    if (!affected) {
      ++local.sccs_skipped;
      continue;
    }
    ++local.sccs_touched;
    switch (scc.policy) {
      case Policy::kCounting:
        RAQLET_RETURN_IF_ERROR(ApplyCounting(&scc, &states, &local, guard));
        break;
      case Policy::kDred: {
        bool bailed = false;
        RAQLET_RETURN_IF_ERROR(ApplyDred(&scc, &states, &local, guard,
                                         &bailed));
        if (bailed) {
          RAQLET_RETURN_IF_ERROR(ApplyRecompute(&scc, &states, &local, guard));
        }
        break;
      }
      case Policy::kRecompute:
        RAQLET_RETURN_IF_ERROR(ApplyRecompute(&scc, &states, &local, guard));
        break;
    }
  }

  // Assemble the net result: base relations in first-appearance batch
  // order, then derived relations in topological order.
  AppliedDelta out;
  auto append = [&out](const std::string& pred, PredState& st) {
    if (!st.changed()) return;
    AppliedRelationDelta ard;
    ard.relation = pred;
    ard.added = std::move(st.added);
    ard.removed = std::move(st.removed);
    out.total_added += ard.added.size();
    out.total_removed += ard.removed.size();
    out.relations.push_back(std::move(ard));
  };
  for (const std::string& pred : base_order) append(pred, states[pred]);
  for (const SccPlan& scc : sccs) {
    for (const std::string& pred : scc.preds) {
      if (input_preds.count(pred) > 0) continue;
      auto it = states.find(pred);
      if (it != states.end()) append(pred, it->second);
    }
  }

  stats.deltas_applied += 1;
  stats.base_added += local.base_added;
  stats.base_removed += local.base_removed;
  stats.sccs_touched += local.sccs_touched;
  stats.sccs_skipped += local.sccs_skipped;
  stats.rounds += local.rounds;
  stats.tuples_inserted += local.tuples_inserted;
  stats.tuples_deleted += local.tuples_deleted;
  stats.overdeleted += local.overdeleted;
  stats.rederived += local.rederived;
  stats.support_updates += local.support_updates;
  stats.recomputed_sccs += local.recomputed_sccs;
  stats.dred_bailouts += local.dred_bailouts;
  if (metrics != nullptr) {
    metrics->base_added += local.base_added;
    metrics->base_removed += local.base_removed;
    metrics->sccs_touched += local.sccs_touched;
    metrics->sccs_skipped += local.sccs_skipped;
    metrics->rounds += local.rounds;
    metrics->tuples_inserted += local.tuples_inserted;
    metrics->tuples_deleted += local.tuples_deleted;
    metrics->overdeleted += local.overdeleted;
    metrics->rederived += local.rederived;
    metrics->support_updates += local.support_updates;
    metrics->recomputed_sccs += local.recomputed_sccs;
    metrics->dred_bailouts += local.dred_bailouts;
  }
  return out;
}

// ---------------------------------------------------------------------------
// Public surface.
// ---------------------------------------------------------------------------

IncrementalView::IncrementalView(IncrementalOptions options)
    : impl_(std::make_unique<Impl>()) {
  impl_->options = options;
}

IncrementalView::~IncrementalView() = default;

Status IncrementalView::Initialize(const dlir::Program& program, Database* db,
                                   EvalStats* stats,
                                   const runtime::QueryGuard* guard) {
  return impl_->Initialize(program, db, stats, guard);
}

bool IncrementalView::initialized() const { return impl_->initialized; }

const IncrementalStats& IncrementalView::stats() const { return impl_->stats; }

Database* IncrementalView::database() const { return impl_->db; }

Result<AppliedDelta> IncrementalView::ApplyDelta(
    const DeltaBatch& delta, obs::IncrementalMetrics* metrics,
    const runtime::QueryGuard* guard) {
  if (!impl_->initialized) {
    return Status::InvalidArgument(
        "IncrementalView::ApplyDelta before Initialize");
  }
  if (impl_->poisoned) {
    return Status::InvalidArgument(
        "incremental view poisoned by a previous failed ApplyDelta; call "
        "Initialize again");
  }
  for (const RelationDelta& rd : delta.relations) {
    if (impl_->input_preds.count(rd.relation) == 0) {
      return Status::InvalidArgument(
          "delta targets non-input relation '" + rd.relation +
          "' — only declared input relations accept base-fact deltas");
    }
  }
  Result<AppliedDelta> result = impl_->Apply(delta, metrics, guard);
  // Any failure past validation may have left base or derived relations
  // half-repaired; poison the view until re-initialized.
  if (!result.ok()) impl_->poisoned = true;
  return result;
}

std::string IncrementalStats::ToString() const {
  std::ostringstream os;
  os << "deltas=" << deltas_applied << " base_added=" << base_added
     << " base_removed=" << base_removed << " sccs_touched=" << sccs_touched
     << " sccs_skipped=" << sccs_skipped << " rounds=" << rounds
     << " inserted=" << tuples_inserted << " deleted=" << tuples_deleted
     << " overdeleted=" << overdeleted << " rederived=" << rederived
     << " support_updates=" << support_updates
     << " recomputed_sccs=" << recomputed_sccs
     << " dred_bailouts=" << dred_bailouts;
  return os.str();
}

}  // namespace raqlet::engine
