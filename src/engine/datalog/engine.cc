#include "engine/datalog/engine.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <limits>
#include <map>
#include <mutex>
#include <optional>
#include <sstream>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "analysis/dependency_graph.h"
#include "engine/value_ops.h"
#include "obs/trace.h"
#include "runtime/failpoint.h"
#include "runtime/scc_scheduler.h"
#include "runtime/thread_pool.h"

namespace raqlet::engine {

namespace {

using dlir::AggFunc;
using dlir::ArithOp;
using dlir::Atom;
using dlir::CmpOp;
using dlir::Constant;
using dlir::LatticeKind;
using dlir::Program;
using dlir::RelationDecl;
using dlir::Rule;
using dlir::Term;
using dlir::TermKind;

// ---------------------------------------------------------------------------
// Compiled rule representation: variables become dense integer slots and
// IR constants become interned runtime Values, so the inner join loops
// touch no strings.
// ---------------------------------------------------------------------------

struct CompiledTerm {
  enum Kind { kConst, kVar, kWildcard, kBinary };
  Kind kind = kWildcard;
  Value constant;
  int var = -1;
  ArithOp op = ArithOp::kAdd;
  std::vector<CompiledTerm> children;

  bool IsBoundUnder(const std::vector<bool>& bound) const {
    switch (kind) {
      case kConst:
        return true;
      case kVar:
        return bound[static_cast<size_t>(var)];
      case kWildcard:
        return false;
      case kBinary:
        return children[0].IsBoundUnder(bound) &&
               children[1].IsBoundUnder(bound);
    }
    return false;
  }
};

struct CompiledAtom {
  std::string predicate;
  const Relation* relation = nullptr;
  bool negated = false;
  bool recursive = false;  // predicate in the same SCC as the rule head
  std::vector<CompiledTerm> args;
};

struct CompiledConstraint {
  CmpOp op = CmpOp::kEq;
  CompiledTerm lhs;
  CompiledTerm rhs;
  bool applied = false;  // scratch flag during planning
};

struct CompiledRule {
  const Rule* source = nullptr;
  std::string head_predicate;
  Relation* head_relation = nullptr;
  LatticeKind head_lattice = LatticeKind::kNone;
  std::vector<CompiledTerm> head_args;
  size_t num_vars = 0;
  std::vector<CompiledAtom> atoms;  // positive first, then negated
  std::vector<CompiledConstraint> constraints;
  // Indices into `atoms` of positive atoms whose predicate is recursive.
  std::vector<int> recursive_atoms;

  bool has_agg = false;
  AggFunc agg_func = AggFunc::kCount;
  CompiledTerm agg_arg;
  int agg_pos = -1;
};

// Runtime variable environment, plus per-plan-step scratch buffers. The
// scratch is indexed by step: ExecuteStep never re-enters the same step
// within one task (recursion strictly descends the plan), so reusing one
// buffer per step replaces a heap allocation per candidate row with one
// per task.
struct Env {
  std::vector<Value> values;
  std::vector<bool> bound;
  std::vector<Tuple> probe_scratch;                 // per-step probe keys
  std::vector<std::vector<size_t>> bound_scratch;   // per-step unbound slots
  Env(size_t n, size_t steps)
      : values(n), bound(n, false), probe_scratch(steps), bound_scratch(steps) {}
};

Result<Value> EvalCompiledTerm(const CompiledTerm& term, const Env& env) {
  switch (term.kind) {
    case CompiledTerm::kConst:
      return term.constant;
    case CompiledTerm::kVar:
      if (!env.bound[static_cast<size_t>(term.var)]) {
        return Status::Internal("evaluating unbound variable slot");
      }
      return env.values[static_cast<size_t>(term.var)];
    case CompiledTerm::kWildcard:
      return Status::Internal("evaluating wildcard term");
    case CompiledTerm::kBinary: {
      RAQLET_ASSIGN_OR_RETURN(Value lhs, EvalCompiledTerm(term.children[0], env));
      RAQLET_ASSIGN_OR_RETURN(Value rhs, EvalCompiledTerm(term.children[1], env));
      return EvalArith(term.op, lhs, rhs);
    }
  }
  return Status::Internal("unhandled term kind");
}

// ---------------------------------------------------------------------------
// Per-variant evaluation plan. A plan is a sequence of steps: join an atom
// (probing bound columns through a relation index), apply a filtering
// constraint, or bind a variable from an equality constraint.
// ---------------------------------------------------------------------------

struct PlanStep {
  enum Kind { kJoinAtom, kNegCheck, kFilter, kBind };
  Kind kind = kJoinAtom;
  int atom_index = -1;        // kJoinAtom / kNegCheck
  int constraint_index = -1;  // kFilter / kBind
  int bind_var = -1;          // kBind: variable slot to bind
  bool bind_from_lhs = false; // kBind: true if lhs is the defined variable
  // Argument positions probed through an index (kJoinAtom / kNegCheck).
  // Statically known: the set of bound slots at each step is determined by
  // the plan prefix, not by runtime values.
  std::vector<int> probe_cols;
  // Prebuilt index over probe_cols, resolved via Relation::EnsureIndex
  // before execution fans out (null iff probe_cols is empty). Probing it
  // is lock- and lookup-free.
  const Relation::KeyIndex* index = nullptr;
  // Borrowed storage columns of the joined relation (kJoinAtom only),
  // resolved alongside `index` before the fan-out. Valid for the round:
  // plans are rebuilt (and columns re-borrowed) every round, and no
  // relation mutates while tasks run.
  std::vector<Relation::ColumnView> cols;
};

struct VariantPlan {
  std::vector<PlanStep> steps;
  int delta_atom = -1;  // index into rule.atoms, or -1 (no delta restriction)
  // Atom whose row range may be partitioned across worker threads: the
  // delta atom if any, else the plan's outermost positive join. -1 when
  // the plan has no join at all.
  int range_atom = -1;
};

// Builds the join order for one variant. Greedy: repeatedly pick the
// positive atom with the most statically-bound argument positions
// (constants + already-bound variables), preferring smaller relations on
// ties. Constraints are woven in as soon as their variables allow.
Result<VariantPlan> PlanVariant(const CompiledRule& rule, int delta_atom,
                                bool reorder) {
  VariantPlan plan;
  plan.delta_atom = delta_atom;
  std::vector<bool> bound(rule.num_vars, false);
  std::vector<bool> atom_done(rule.atoms.size(), false);
  std::vector<bool> constraint_done(rule.constraints.size(), false);

  auto mark_atom_vars = [&](const CompiledAtom& atom) {
    for (const CompiledTerm& arg : atom.args) {
      if (arg.kind == CompiledTerm::kVar) {
        bound[static_cast<size_t>(arg.var)] = true;
      }
    }
  };

  // Argument positions of `atom` evaluable under the current bound set —
  // exactly the positions execution will probe through an index.
  auto probe_cols_for = [&](const CompiledAtom& atom) {
    std::vector<int> cols;
    for (size_t i = 0; i < atom.args.size(); ++i) {
      const CompiledTerm& arg = atom.args[i];
      if (arg.kind == CompiledTerm::kWildcard) continue;
      if (arg.IsBoundUnder(bound)) cols.push_back(static_cast<int>(i));
    }
    return cols;
  };

  // Weave in constraints that became decidable: filters when fully bound,
  // bindings when an equality has exactly one unbound bare-variable side.
  auto schedule_constraints = [&]() {
    bool changed = true;
    while (changed) {
      changed = false;
      for (size_t i = 0; i < rule.constraints.size(); ++i) {
        if (constraint_done[i]) continue;
        const CompiledConstraint& c = rule.constraints[i];
        bool lhs_bound = c.lhs.IsBoundUnder(bound);
        bool rhs_bound = c.rhs.IsBoundUnder(bound);
        if (lhs_bound && rhs_bound) {
          PlanStep step;
          step.kind = PlanStep::kFilter;
          step.constraint_index = static_cast<int>(i);
          plan.steps.push_back(step);
          constraint_done[i] = true;
          changed = true;
        } else if (c.op == CmpOp::kEq && rhs_bound &&
                   c.lhs.kind == CompiledTerm::kVar) {
          PlanStep step;
          step.kind = PlanStep::kBind;
          step.constraint_index = static_cast<int>(i);
          step.bind_var = c.lhs.var;
          step.bind_from_lhs = true;
          plan.steps.push_back(step);
          bound[static_cast<size_t>(c.lhs.var)] = true;
          constraint_done[i] = true;
          changed = true;
        } else if (c.op == CmpOp::kEq && lhs_bound &&
                   c.rhs.kind == CompiledTerm::kVar) {
          PlanStep step;
          step.kind = PlanStep::kBind;
          step.constraint_index = static_cast<int>(i);
          step.bind_var = c.rhs.var;
          step.bind_from_lhs = false;
          plan.steps.push_back(step);
          bound[static_cast<size_t>(c.rhs.var)] = true;
          constraint_done[i] = true;
          changed = true;
        }
      }
      // Negated atoms fire as soon as all their variables are bound.
      for (size_t i = 0; i < rule.atoms.size(); ++i) {
        if (atom_done[i] || !rule.atoms[i].negated) continue;
        bool all_bound = true;
        for (const CompiledTerm& arg : rule.atoms[i].args) {
          if (arg.kind == CompiledTerm::kWildcard) continue;
          if (!arg.IsBoundUnder(bound)) {
            all_bound = false;
            break;
          }
        }
        if (all_bound) {
          PlanStep step;
          step.kind = PlanStep::kNegCheck;
          step.atom_index = static_cast<int>(i);
          step.probe_cols = probe_cols_for(rule.atoms[i]);
          plan.steps.push_back(std::move(step));
          atom_done[i] = true;
          changed = true;
        }
      }
    }
  };

  schedule_constraints();

  // Delta atom always joins first: semi-naive correctness does not require
  // it, but it makes the delta the outer loop, which is the whole point.
  if (delta_atom >= 0) {
    PlanStep step;
    step.kind = PlanStep::kJoinAtom;
    step.atom_index = delta_atom;
    step.probe_cols = probe_cols_for(rule.atoms[static_cast<size_t>(delta_atom)]);
    plan.steps.push_back(std::move(step));
    plan.range_atom = delta_atom;
    atom_done[static_cast<size_t>(delta_atom)] = true;
    mark_atom_vars(rule.atoms[static_cast<size_t>(delta_atom)]);
    schedule_constraints();
  }

  size_t positive_remaining = 0;
  for (size_t i = 0; i < rule.atoms.size(); ++i) {
    if (!atom_done[i] && !rule.atoms[i].negated) ++positive_remaining;
  }

  while (positive_remaining > 0) {
    int best = -1;
    int best_score = -1;
    size_t best_size = 0;
    for (size_t i = 0; i < rule.atoms.size(); ++i) {
      if (atom_done[i] || rule.atoms[i].negated) continue;
      if (!reorder) {  // keep written order: first not-done atom wins
        best = static_cast<int>(i);
        break;
      }
      int score = 0;
      for (const CompiledTerm& arg : rule.atoms[i].args) {
        if (arg.kind != CompiledTerm::kWildcard && arg.IsBoundUnder(bound)) {
          ++score;
        }
      }
      size_t size = rule.atoms[i].relation->size();
      if (score > best_score ||
          (score == best_score && (best < 0 || size < best_size))) {
        best = static_cast<int>(i);
        best_score = score;
        best_size = size;
      }
    }
    if (best < 0) {
      return Status::Internal(
          "join planner found no placeable atom for rule head '" +
          rule.head_predicate + "' — unsatisfied positive atom");
    }
    PlanStep step;
    step.kind = PlanStep::kJoinAtom;
    step.atom_index = best;
    step.probe_cols = probe_cols_for(rule.atoms[static_cast<size_t>(best)]);
    plan.steps.push_back(std::move(step));
    if (plan.range_atom < 0) plan.range_atom = best;
    atom_done[static_cast<size_t>(best)] = true;
    mark_atom_vars(rule.atoms[static_cast<size_t>(best)]);
    --positive_remaining;
    schedule_constraints();
  }

  // Anything left is a stratification/safety violation that Validate()
  // should have caught.
  for (size_t i = 0; i < rule.constraints.size(); ++i) {
    if (!constraint_done[i]) {
      return Status::Internal("constraint never became evaluable in rule: " +
                              rule.source->ToString());
    }
  }
  for (size_t i = 0; i < rule.atoms.size(); ++i) {
    if (!atom_done[i]) {
      return Status::Internal("negated atom never fully bound in rule: " +
                              rule.source->ToString());
    }
  }
  return plan;
}

// ---------------------------------------------------------------------------
// Aggregation accumulator: per group, aggregates over the set of distinct
// body-variable bindings (witnesses), which realizes set-semantics
// aggregation (§3: RETURN DISTINCT-style translation).
// ---------------------------------------------------------------------------

struct AggState {
  std::unordered_set<Tuple, TupleHash> witnesses;
  int64_t count = 0;
  double sum = 0.0;
  bool any_float = false;
  std::optional<Value> min;
  std::optional<Value> max;
};

// ---------------------------------------------------------------------------
// Engine implementation proper.
// ---------------------------------------------------------------------------

// Everything one evaluation task (a rule variant, or one chunk of its
// outer join range) writes: derived tuples, stat counters, and — for
// aggregate rules — the group accumulator. A task emits only to its
// rule's head relation, so the buffer carries a single `target` and the
// staged values form a plain run for that relation, held column-wise
// (one vector per head column, `staged_rows` rows) so emitting a derived
// tuple appends values without allocating a row vector, and the merge
// feeds Relation::InsertColumns directly. After a fan-out completes, runs
// are applied per relation in deterministic task order (see
// Evaluation::ApplyStaged); workers never touch a Relation's mutable
// state. Buffers are recycled through an ObjectPool so their capacity
// survives across fixpoint rounds.
struct EmitBuffer {
  Relation* target = nullptr;
  std::vector<std::vector<Value>> staged;  // staged[col][row]
  size_t staged_rows = 0;
  EvalStats stats;
  std::map<Tuple, AggState>* agg = nullptr;

  // Sizes the staging columns for an arity (keeping surviving columns'
  // capacity when the pooled buffer is reused across rules).
  void PrepareStaging(size_t arity) {
    if (staged.size() != arity) staged.resize(arity);
  }

  // Back to logically-empty, keeping the columns' capacity for reuse.
  void Reset() {
    target = nullptr;
    for (std::vector<Value>& col : staged) col.clear();
    staged_rows = 0;
    stats = EvalStats{};
    agg = nullptr;
  }
};

// One schedulable unit of a fan-out: a planned rule variant restricted to
// [range_begin, range_end) of its plan's range_atom rows.
struct VariantTask {
  const CompiledRule* rule = nullptr;
  const VariantPlan* plan = nullptr;
  size_t range_begin = 0;
  size_t range_end = std::numeric_limits<size_t>::max();
};

// All the rules of one SCC, compiled upfront (single-threaded) so that
// concurrent SCC evaluation never interns symbols or resolves relations.
struct SccWork {
  int index = 0;  // position in SccsInTopologicalOrder()
  std::vector<std::string> preds;
  bool recursive = false;
  std::vector<CompiledRule> rules;
  // Predicates whose sizes this SCC snapshots: its heads plus every body
  // atom. Restricting the snapshot to these keeps concurrent SCCs from
  // racing on size() of relations another SCC is currently filling.
  std::set<std::string> snapshot_preds;
};

class Evaluation {
 public:
  Evaluation(const Program& program, Database* db, const EvalOptions& options,
             EvalStats* stats, obs::DatalogMetrics* metrics,
             runtime::ExecutionContext* context,
             const runtime::QueryGuard* guard)
      : program_(program),
        db_(db),
        options_(options),
        stats_(stats),
        metrics_(metrics),
        guard_(guard),
        pool_(context != nullptr ? context->pool() : nullptr),
        buffer_pool_(context != nullptr ? context->PoolFor<EmitBuffer>()
                                        : &local_buffer_pool_) {}

  Status Run();

 private:
  Status PrepareRelations();
  Status CheckStratification(const analysis::DependencyGraph& graph) const;
  Result<CompiledRule> CompileRule(const Rule& rule,
                                   const std::set<std::string>& scc_preds);
  Status EvaluateScc(SccWork* work);

  // Plans the given (rule, delta_atom) variants, prebuilds every index the
  // plans probe, evaluates all variants — fanned out over pool_ when
  // available — and appends the per-task emit buffers to `out` in the same
  // task order a serial evaluation would have produced the tuples.
  Status EvaluateVariants(
      const std::vector<std::pair<const CompiledRule*, int>>& variants,
      const std::unordered_map<std::string, size_t>& snapshot,
      const std::unordered_map<std::string, size_t>& delta_begin,
      std::vector<EmitBuffer>* out, EvalStats* scc_stats);

  // Applies the staged runs to their target relations — the single-writer
  // phase of a round — and recycles the buffers. Runs are grouped per
  // relation and each group is fed through Relation::InsertColumns in task
  // order; lattice relations get a batched best-map pass first. When a
  // thread pool is available the merge is sharded one task per relation
  // (each relation keeps exactly one writer, so shards never contend),
  // which parallelizes the merge while keeping contents and insertion
  // order bit-identical at any thread count. Returns #tuples inserted.
  Result<size_t> ApplyStaged(std::vector<EmitBuffer>* buffers);

  // Evaluates one task into `out`. `delta_begin` names relations whose
  // rows are restricted to [delta_begin, snapshot) at the delta atom.
  Status EvaluateVariant(const VariantTask& task,
                         const std::unordered_map<std::string, size_t>& snapshot,
                         const std::unordered_map<std::string, size_t>& delta_begin,
                         EmitBuffer* out);

  Status ExecuteStep(const VariantTask& task, size_t step_index, Env* env,
                     const std::unordered_map<std::string, size_t>& snapshot,
                     const std::unordered_map<std::string, size_t>& delta_begin,
                     EmitBuffer* out);

  Status EmitHead(const CompiledRule& rule, Env* env, EmitBuffer* out);
  Status FinalizeAggregates(const CompiledRule& rule,
                            const std::map<Tuple, AggState>& agg,
                            EmitBuffer* out);

  Result<Value> ConstantToValue(const Constant& c) const;
  Result<CompiledTerm> CompileTerm(const Term& term,
                                   std::map<std::string, int>* slots,
                                   std::vector<std::string>* names) const;

  const Program& program_;
  Database* db_;
  EvalOptions options_;
  EvalStats* stats_;
  // Per-SCC detail sink, or nullptr. Pre-sized to the SCC count in Run();
  // each SCC evaluation task writes only its own slot, so concurrent SCCs
  // need no lock and the recorded counters are deterministic.
  obs::DatalogMetrics* metrics_;
  // Cooperative guardrails, or nullptr (the common case: zero checks).
  // Polled per fixpoint round, per ParallelFor chunk, and per scheduled
  // SCC; budgets are fed the deterministic per-round insert counts.
  const runtime::QueryGuard* guard_;
  runtime::ThreadPool* pool_;  // null => strictly serial evaluation
  // Recycles EmitBuffers across rounds; the context's pool when a context
  // exists (so capacity survives across queries on one engine), else a
  // pool local to this evaluation.
  runtime::ObjectPool<EmitBuffer>* buffer_pool_;
  runtime::ObjectPool<EmitBuffer> local_buffer_pool_;

  // Read-only after PrepareRelations; safe to share across SCC tasks.
  std::unordered_map<std::string, Relation*> relations_;
  std::unordered_map<std::string, LatticeKind> lattice_kind_;
  // Lattice best-value maps, keyed by relation name; key = tuple prefix.
  // Entries are pre-created in PrepareRelations and each is only ever
  // touched by the SCC owning that relation.
  std::unordered_map<std::string, std::unordered_map<Tuple, Value, TupleHash>>
      lattice_best_;
  std::mutex stats_mutex_;  // guards *stats_ merges from SCC tasks
};

Result<Value> Evaluation::ConstantToValue(const Constant& c) const {
  switch (c.type) {
    case ValueType::kNumber:
      return Value::Number(c.num);
    case ValueType::kFloat:
      return Value::Float(c.fval);
    case ValueType::kSymbol:
      return Value::Symbol(db_->symbols().Intern(c.str));
    case ValueType::kBool:
      return Value::Bool(c.bval);
    case ValueType::kNull:
      return Value::Null();
  }
  return Status::Internal("unhandled constant type");
}

Result<CompiledTerm> Evaluation::CompileTerm(
    const Term& term, std::map<std::string, int>* slots,
    std::vector<std::string>* names) const {
  CompiledTerm out;
  switch (term.kind) {
    case TermKind::kConstant: {
      out.kind = CompiledTerm::kConst;
      RAQLET_ASSIGN_OR_RETURN(out.constant, ConstantToValue(term.constant));
      return out;
    }
    case TermKind::kVariable: {
      out.kind = CompiledTerm::kVar;
      auto it = slots->find(term.var);
      if (it == slots->end()) {
        int id = static_cast<int>(slots->size());
        slots->emplace(term.var, id);
        names->push_back(term.var);
        out.var = id;
      } else {
        out.var = it->second;
      }
      return out;
    }
    case TermKind::kWildcard:
      out.kind = CompiledTerm::kWildcard;
      return out;
    case TermKind::kBinary: {
      out.kind = CompiledTerm::kBinary;
      out.op = term.op;
      RAQLET_ASSIGN_OR_RETURN(CompiledTerm lhs,
                              CompileTerm(term.children[0], slots, names));
      RAQLET_ASSIGN_OR_RETURN(CompiledTerm rhs,
                              CompileTerm(term.children[1], slots, names));
      out.children.push_back(std::move(lhs));
      out.children.push_back(std::move(rhs));
      return out;
    }
  }
  return Status::Internal("unhandled term kind");
}

Status Evaluation::PrepareRelations() {
  for (const RelationDecl& decl : program_.decls) {
    if (decl.is_input) {
      RAQLET_ASSIGN_OR_RETURN(Relation * rel, db_->GetRelation(decl.name));
      if (rel->arity() != decl.arity()) {
        return Status::InvalidArgument(
            "input relation '" + decl.name + "' has arity " +
            std::to_string(rel->arity()) + ", declared " +
            std::to_string(decl.arity()));
      }
      relations_[decl.name] = rel;
      continue;
    }
    if (db_->HasRelation(decl.name)) {
      if (!options_.overwrite_idb) {
        return Status::AlreadyExists("IDB relation exists: " + decl.name);
      }
      RAQLET_ASSIGN_OR_RETURN(Relation * rel, db_->GetRelation(decl.name));
      rel->Clear();
      if (rel->arity() != decl.arity()) {
        // A previous program left this IDB name behind with a different
        // shape; adopt this program's declaration so column borrowing
        // (which trusts arity()) sees the width the rules will insert.
        RelationSchema schema;
        schema.name = decl.name;
        schema.columns = decl.columns;
        schema.primary_key = decl.primary_key;
        rel->ResetSchema(std::move(schema));
      }
      relations_[decl.name] = rel;
    } else {
      RelationSchema schema;
      schema.name = decl.name;
      schema.columns = decl.columns;
      schema.primary_key = decl.primary_key;
      RAQLET_ASSIGN_OR_RETURN(Relation * rel,
                              db_->CreateRelation(std::move(schema)));
      relations_[decl.name] = rel;
    }
    if (decl.lattice != LatticeKind::kNone) {
      lattice_kind_[decl.name] = decl.lattice;
      lattice_best_[decl.name] = {};
    }
  }
  // Rules must not define input relations.
  for (const Rule& rule : program_.rules) {
    const RelationDecl* decl = program_.FindDecl(rule.head.predicate);
    if (decl != nullptr && decl->is_input) {
      return Status::InvalidArgument("rule defines input relation '" +
                                     rule.head.predicate + "'");
    }
  }
  return Status::OK();
}

Status Evaluation::CheckStratification(
    const analysis::DependencyGraph& graph) const {
  for (const Rule& rule : program_.rules) {
    int head_scc = graph.SccOf(rule.head.predicate);
    for (const Atom& atom : rule.body) {
      if (atom.negated && graph.SccOf(atom.predicate) == head_scc) {
        return Status::Unsupported(
            "program is not stratifiable: negation of '" + atom.predicate +
            "' inside its own recursive component (rule: " + rule.ToString() +
            ")");
      }
      if (rule.agg.has_value() && graph.SccOf(atom.predicate) == head_scc &&
          graph.IsRecursiveScc(head_scc)) {
        return Status::Unsupported(
            "program is not stratifiable: aggregation over '" +
            atom.predicate + "' inside its own recursive component (rule: " +
            rule.ToString() + "); use a lattice relation for monotone "
            "min/max recursion");
      }
    }
  }
  return Status::OK();
}

Result<CompiledRule> Evaluation::CompileRule(
    const Rule& rule, const std::set<std::string>& scc_preds) {
  CompiledRule out;
  out.source = &rule;
  out.head_predicate = rule.head.predicate;
  auto rel_it = relations_.find(rule.head.predicate);
  if (rel_it == relations_.end()) {
    return Status::NotFound("undeclared head predicate: " + rule.head.predicate);
  }
  out.head_relation = rel_it->second;
  const RelationDecl* head_decl = program_.FindDecl(rule.head.predicate);
  out.head_lattice =
      head_decl == nullptr ? LatticeKind::kNone : head_decl->lattice;

  std::map<std::string, int> slots;
  std::vector<std::string> names;

  // Positive atoms first (join candidates), then negated atoms.
  for (const Atom& atom : rule.body) {
    if (atom.negated) continue;
    CompiledAtom ca;
    ca.predicate = atom.predicate;
    auto it = relations_.find(atom.predicate);
    if (it == relations_.end()) {
      return Status::NotFound("undeclared predicate: " + atom.predicate);
    }
    ca.relation = it->second;
    ca.recursive = scc_preds.count(atom.predicate) > 0;
    for (const Term& arg : atom.args) {
      RAQLET_ASSIGN_OR_RETURN(CompiledTerm t, CompileTerm(arg, &slots, &names));
      ca.args.push_back(std::move(t));
    }
    if (ca.recursive) {
      out.recursive_atoms.push_back(static_cast<int>(out.atoms.size()));
    }
    out.atoms.push_back(std::move(ca));
  }
  for (const Atom& atom : rule.body) {
    if (!atom.negated) continue;
    CompiledAtom ca;
    ca.predicate = atom.predicate;
    auto it = relations_.find(atom.predicate);
    if (it == relations_.end()) {
      return Status::NotFound("undeclared predicate: " + atom.predicate);
    }
    ca.relation = it->second;
    ca.negated = true;
    for (const Term& arg : atom.args) {
      RAQLET_ASSIGN_OR_RETURN(CompiledTerm t, CompileTerm(arg, &slots, &names));
      ca.args.push_back(std::move(t));
    }
    out.atoms.push_back(std::move(ca));
  }
  for (const dlir::Constraint& c : rule.constraints) {
    CompiledConstraint cc;
    cc.op = c.op;
    RAQLET_ASSIGN_OR_RETURN(cc.lhs, CompileTerm(c.lhs, &slots, &names));
    RAQLET_ASSIGN_OR_RETURN(cc.rhs, CompileTerm(c.rhs, &slots, &names));
    out.constraints.push_back(std::move(cc));
  }
  for (const Term& arg : rule.head.args) {
    RAQLET_ASSIGN_OR_RETURN(CompiledTerm t, CompileTerm(arg, &slots, &names));
    out.head_args.push_back(std::move(t));
  }
  out.num_vars = slots.size();

  if (rule.agg.has_value()) {
    out.has_agg = true;
    out.agg_func = rule.agg->func;
    out.agg_pos = rule.agg_result_pos;
    if (rule.agg->func != AggFunc::kCount) {
      RAQLET_ASSIGN_OR_RETURN(out.agg_arg,
                              CompileTerm(rule.agg->arg, &slots, &names));
      out.num_vars = slots.size();
    }
  }
  return out;
}

Status Evaluation::EmitHead(const CompiledRule& rule, Env* env,
                            EmitBuffer* out) {
  if (rule.has_agg) {
    // Group key: head args except the aggregate slot.
    Tuple group;
    group.reserve(rule.head_args.size());
    for (size_t i = 0; i < rule.head_args.size(); ++i) {
      if (static_cast<int>(i) == rule.agg_pos) continue;
      RAQLET_ASSIGN_OR_RETURN(Value v, EvalCompiledTerm(rule.head_args[i], *env));
      group.push_back(v);
    }
    // Witness: full variable binding (distinct body matches).
    Tuple witness;
    witness.reserve(env->values.size());
    for (size_t i = 0; i < env->values.size(); ++i) {
      witness.push_back(env->bound[i] ? env->values[i] : Value::Null());
    }
    AggState& state = (*out->agg)[group];
    if (!state.witnesses.insert(std::move(witness)).second) {
      return Status::OK();  // duplicate body match under set semantics
    }
    Value arg_value = Value::Number(0);
    if (rule.agg_func != AggFunc::kCount) {
      RAQLET_ASSIGN_OR_RETURN(arg_value, EvalCompiledTerm(rule.agg_arg, *env));
    }
    state.count += 1;
    if (rule.agg_func == AggFunc::kSum || rule.agg_func == AggFunc::kAvg) {
      state.any_float |= arg_value.kind() == ValueType::kFloat;
      state.sum += arg_value.NumericValue();
    }
    if (rule.agg_func == AggFunc::kMin) {
      if (!state.min.has_value() ||
          CompareValues(arg_value, *state.min, db_->symbols()) < 0) {
        state.min = arg_value;
      }
    }
    if (rule.agg_func == AggFunc::kMax) {
      if (!state.max.has_value() ||
          CompareValues(arg_value, *state.max, db_->symbols()) > 0) {
        state.max = arg_value;
      }
    }
    return Status::OK();
  }

  // Stage column-wise: no per-derived-tuple row allocation. A failed term
  // evaluation can leave the columns ragged, but errors abandon the whole
  // fan-out (buffers are Reset before reuse), so ragged staging never
  // reaches the merge.
  out->PrepareStaging(rule.head_args.size());
  for (size_t i = 0; i < rule.head_args.size(); ++i) {
    RAQLET_ASSIGN_OR_RETURN(Value v, EvalCompiledTerm(rule.head_args[i], *env));
    out->staged[i].push_back(v);
  }
  ++out->staged_rows;
  return Status::OK();
}

Status Evaluation::FinalizeAggregates(const CompiledRule& rule,
                                      const std::map<Tuple, AggState>& agg,
                                      EmitBuffer* out) {
  for (const auto& [group, state] : agg) {
    Value result;
    switch (rule.agg_func) {
      case AggFunc::kCount:
        result = Value::Number(state.count);
        break;
      case AggFunc::kSum:
        result = state.any_float ? Value::Float(state.sum)
                                 : Value::Number(static_cast<int64_t>(state.sum));
        break;
      case AggFunc::kMin:
        result = *state.min;
        break;
      case AggFunc::kMax:
        result = *state.max;
        break;
      case AggFunc::kAvg:
        result = Value::Float(state.count == 0
                                  ? 0.0
                                  : state.sum / static_cast<double>(state.count));
        break;
    }
    out->PrepareStaging(rule.head_args.size());
    size_t gi = 0;
    for (size_t i = 0; i < rule.head_args.size(); ++i) {
      if (static_cast<int>(i) == rule.agg_pos) {
        out->staged[i].push_back(result);
      } else {
        out->staged[i].push_back(group[gi++]);
      }
    }
    ++out->staged_rows;
  }
  return Status::OK();
}

Status Evaluation::ExecuteStep(
    const VariantTask& task, size_t step_index, Env* env,
    const std::unordered_map<std::string, size_t>& snapshot,
    const std::unordered_map<std::string, size_t>& delta_begin,
    EmitBuffer* out) {
  const CompiledRule& rule = *task.rule;
  const VariantPlan& plan = *task.plan;
  if (step_index == plan.steps.size()) return EmitHead(rule, env, out);

  const PlanStep& step = plan.steps[step_index];
  switch (step.kind) {
    case PlanStep::kFilter: {
      const CompiledConstraint& c =
          rule.constraints[static_cast<size_t>(step.constraint_index)];
      RAQLET_ASSIGN_OR_RETURN(Value lhs, EvalCompiledTerm(c.lhs, *env));
      RAQLET_ASSIGN_OR_RETURN(Value rhs, EvalCompiledTerm(c.rhs, *env));
      if (!CheckCmp(c.op, lhs, rhs, db_->symbols())) return Status::OK();
      return ExecuteStep(task, step_index + 1, env, snapshot, delta_begin, out);
    }
    case PlanStep::kBind: {
      const CompiledConstraint& c =
          rule.constraints[static_cast<size_t>(step.constraint_index)];
      const CompiledTerm& source = step.bind_from_lhs ? c.rhs : c.lhs;
      RAQLET_ASSIGN_OR_RETURN(Value v, EvalCompiledTerm(source, *env));
      size_t slot = static_cast<size_t>(step.bind_var);
      env->values[slot] = v;
      env->bound[slot] = true;
      Status s =
          ExecuteStep(task, step_index + 1, env, snapshot, delta_begin, out);
      env->bound[slot] = false;
      return s;
    }
    case PlanStep::kNegCheck: {
      const CompiledAtom& atom = rule.atoms[static_cast<size_t>(step.atom_index)];
      Tuple& probe_key = env->probe_scratch[step_index];
      probe_key.clear();
      for (int col : step.probe_cols) {
        RAQLET_ASSIGN_OR_RETURN(
            Value v, EvalCompiledTerm(atom.args[static_cast<size_t>(col)], *env));
        probe_key.push_back(v);
      }
      size_t limit = snapshot.count(atom.predicate)
                         ? snapshot.at(atom.predicate)
                         : atom.relation->size();
      bool exists = false;
      if (step.probe_cols.empty()) {
        exists = limit > 0;
      } else {
        auto it = step.index->find(probe_key);
        if (it != step.index->end()) {
          for (uint32_t row : it->second) {
            if (row < limit) {
              exists = true;
              break;
            }
          }
        }
      }
      if (exists) return Status::OK();  // negation fails: prune this env
      return ExecuteStep(task, step_index + 1, env, snapshot, delta_begin, out);
    }
    case PlanStep::kJoinAtom: {
      const CompiledAtom& atom = rule.atoms[static_cast<size_t>(step.atom_index)];
      size_t begin = 0;
      size_t end = snapshot.count(atom.predicate) ? snapshot.at(atom.predicate)
                                                  : atom.relation->size();
      if (plan.delta_atom == step.atom_index) {
        auto it = delta_begin.find(atom.predicate);
        if (it != delta_begin.end()) begin = it->second;
      }
      if (plan.range_atom == step.atom_index) {
        // Outer-range partitioning: this task only owns a chunk of the
        // rows. Only the outermost join carries a range, so the clamp
        // happens once per variant evaluation.
        if (task.range_begin > begin) begin = task.range_begin;
        if (task.range_end < end) end = task.range_end;
      }

      // Evaluate the statically-determined probe columns.
      Tuple& probe_key = env->probe_scratch[step_index];
      probe_key.clear();
      for (int col : step.probe_cols) {
        RAQLET_ASSIGN_OR_RETURN(
            Value v, EvalCompiledTerm(atom.args[static_cast<size_t>(col)], *env));
        probe_key.push_back(v);
      }

      std::vector<size_t>& newly_bound = env->bound_scratch[step_index];
      auto try_row = [&](size_t row_idx) -> Status {
        ++out->stats.tuples_considered;
        // Unify unbound argument variables against the stored row, read
        // per-column through the borrowed views; repeated variables within
        // the atom compare on second occurrence.
        newly_bound.clear();
        bool matches = true;
        for (size_t i = 0; i < atom.args.size() && matches; ++i) {
          const CompiledTerm& arg = atom.args[i];
          switch (arg.kind) {
            case CompiledTerm::kWildcard:
              break;
            case CompiledTerm::kConst:
              matches = arg.constant == step.cols[i].at(row_idx);
              break;
            case CompiledTerm::kVar: {
              size_t slot = static_cast<size_t>(arg.var);
              Value v = step.cols[i].at(row_idx);
              if (env->bound[slot]) {
                matches = env->values[slot] == v;
              } else {
                env->values[slot] = v;
                env->bound[slot] = true;
                newly_bound.push_back(slot);
              }
              break;
            }
            case CompiledTerm::kBinary: {
              RAQLET_ASSIGN_OR_RETURN(Value v, EvalCompiledTerm(arg, *env));
              matches = v == step.cols[i].at(row_idx);
              break;
            }
          }
        }
        Status s = Status::OK();
        if (matches) {
          s = ExecuteStep(task, step_index + 1, env, snapshot, delta_begin,
                          out);
        }
        for (size_t slot : newly_bound) env->bound[slot] = false;
        return s;
      };

      if (!step.probe_cols.empty()) {
        auto it = step.index->find(probe_key);
        if (it == step.index->end()) return Status::OK();
        // Row-index lists are ascending (see Relation::KeyIndex), so the
        // emit order within a chunk matches the serial scan order.
        for (uint32_t row_idx : it->second) {
          if (row_idx < begin || row_idx >= end) continue;
          RAQLET_RETURN_IF_ERROR(try_row(row_idx));
        }
        return Status::OK();
      }
      for (size_t row_idx = begin; row_idx < end; ++row_idx) {
        RAQLET_RETURN_IF_ERROR(try_row(row_idx));
      }
      return Status::OK();
    }
  }
  return Status::Internal("unhandled plan step");
}

Status Evaluation::EvaluateVariant(
    const VariantTask& task,
    const std::unordered_map<std::string, size_t>& snapshot,
    const std::unordered_map<std::string, size_t>& delta_begin,
    EmitBuffer* out) {
  Env env(task.rule->num_vars, task.plan->steps.size());
  return ExecuteStep(task, 0, &env, snapshot, delta_begin, out);
}

// Minimum chunk of outer-atom rows worth shipping to another thread; below
// this the fan-out overhead (buffers, task dispatch) beats the join work.
constexpr size_t kMinRowsPerChunk = 64;

Status Evaluation::EvaluateVariants(
    const std::vector<std::pair<const CompiledRule*, int>>& variants,
    const std::unordered_map<std::string, size_t>& snapshot,
    const std::unordered_map<std::string, size_t>& delta_begin,
    std::vector<EmitBuffer>* out, EvalStats* scc_stats) {
  // Plan every variant and prebuild every index the plans will probe —
  // single-threaded, so Relation caches mutate before any fan-out.
  std::vector<VariantPlan> plans;
  plans.reserve(variants.size());
  for (const auto& [rule, delta_atom] : variants) {
    ++scc_stats->rule_evaluations;
    RAQLET_ASSIGN_OR_RETURN(
        VariantPlan plan, PlanVariant(*rule, delta_atom, options_.reorder_atoms));
    for (PlanStep& step : plan.steps) {
      if (step.atom_index < 0) continue;
      const Relation* rel =
          rule->atoms[static_cast<size_t>(step.atom_index)].relation;
      if (step.kind == PlanStep::kJoinAtom) {
        // Borrow the joined relation's storage columns now, while still
        // single-threaded: workers then scan without materializing rows
        // (and without racing on the lazily-folded rows() cache).
        step.cols.reserve(rel->arity());
        for (size_t c = 0; c < rel->arity(); ++c) {
          step.cols.push_back(rel->Column(c));
        }
      }
      if (step.probe_cols.empty()) continue;
      step.index = rel->EnsureIndex(step.probe_cols);
    }
    plans.push_back(std::move(plan));
  }

  // Split each variant's outer join range into chunks. Aggregate rules
  // stay single-task (the group accumulator spans the whole range).
  std::vector<VariantTask> tasks;
  for (size_t v = 0; v < variants.size(); ++v) {
    const CompiledRule* rule = variants[v].first;
    const VariantPlan& plan = plans[v];
    VariantTask whole;
    whole.rule = rule;
    whole.plan = &plan;
    if (pool_ == nullptr || rule->has_agg || plan.range_atom < 0) {
      tasks.push_back(whole);
      continue;
    }
    const CompiledAtom& outer =
        rule->atoms[static_cast<size_t>(plan.range_atom)];
    size_t begin = 0;
    size_t end = snapshot.count(outer.predicate) ? snapshot.at(outer.predicate)
                                                 : outer.relation->size();
    if (plan.range_atom == plan.delta_atom) {
      auto it = delta_begin.find(outer.predicate);
      if (it != delta_begin.end()) begin = it->second;
    }
    size_t range = end > begin ? end - begin : 0;
    size_t max_chunks = static_cast<size_t>(pool_->num_threads()) * 4;
    size_t chunks = range / kMinRowsPerChunk;
    if (chunks > max_chunks) chunks = max_chunks;
    if (chunks <= 1) {
      tasks.push_back(whole);
      continue;
    }
    size_t chunk_size = (range + chunks - 1) / chunks;
    for (size_t c = 0; c < chunks; ++c) {
      VariantTask task = whole;
      task.range_begin = begin + c * chunk_size;
      task.range_end = std::min(end, task.range_begin + chunk_size);
      if (task.range_begin >= task.range_end) break;
      tasks.push_back(task);
    }
  }

  // Evaluate. Each task owns a pooled EmitBuffer; workers share nothing.
  std::vector<EmitBuffer> buffers;
  buffers.reserve(tasks.size());
  for (const VariantTask& task : tasks) {
    EmitBuffer buffer = buffer_pool_->Acquire();
    buffer.target = task.rule->head_relation;
    buffers.push_back(std::move(buffer));
  }
  std::vector<Status> statuses(tasks.size(), Status::OK());
  auto run_task = [&](size_t i) {
    // Per-chunk guard poll: a trip observed here (or by the guard-aware
    // ParallelFor skipping unstarted chunks) surfaces as this chunk's
    // status; the sticky cause keeps the reported error deterministic.
    if (guard_ != nullptr) {
      Status g = guard_->Check();
      if (!g.ok()) {
        statuses[i] = std::move(g);
        return;
      }
    }
    obs::TraceScope span("datalog.variant", static_cast<int64_t>(i));
    EmitBuffer& buffer = buffers[i];
    std::map<Tuple, AggState> agg;
    if (tasks[i].rule->has_agg) buffer.agg = &agg;
    Status s = EvaluateVariant(tasks[i], snapshot, delta_begin, &buffer);
    if (s.ok() && tasks[i].rule->has_agg) {
      s = FinalizeAggregates(*tasks[i].rule, agg, &buffer);
    }
    statuses[i] = std::move(s);
  };
  if (pool_ != nullptr && tasks.size() > 1) {
    pool_->ParallelFor(tasks.size(), run_task, guard_);
  } else {
    for (size_t i = 0; i < tasks.size(); ++i) {
      if (guard_ != nullptr && guard_->tripped()) break;
      run_task(i);
    }
  }

  // Chunks skipped by a tripped guard left their status OK and produced
  // nothing; report the trip instead of treating the round as complete.
  if (guard_ != nullptr && guard_->tripped()) {
    for (EmitBuffer& buffer : buffers) {
      buffer.Reset();
      buffer_pool_->Release(std::move(buffer));
    }
    return guard_->TripStatus();
  }

  // Task order equals the order a serial evaluation visits the same rows,
  // so handing the buffers over in task order keeps every relation's
  // staged run — and therefore its insertion order — identical for any
  // thread count. Stats merge stops at the first error, matching what a
  // serial evaluation would have accumulated before failing.
  for (size_t i = 0; i < tasks.size(); ++i) {
    if (!statuses[i].ok()) {
      for (EmitBuffer& buffer : buffers) {
        buffer.Reset();
        buffer_pool_->Release(std::move(buffer));
      }
      return statuses[i];
    }
    scc_stats->tuples_considered += buffers[i].stats.tuples_considered;
  }
  for (EmitBuffer& buffer : buffers) out->push_back(std::move(buffer));
  return Status::OK();
}

Result<size_t> Evaluation::ApplyStaged(std::vector<EmitBuffer>* buffers) {
  obs::TraceScope span("datalog.merge");
  // Group staged runs by target relation, preserving first-appearance
  // (task) order both across groups and within each group.
  std::vector<std::pair<Relation*, std::vector<size_t>>> groups;
  std::unordered_map<Relation*, size_t> group_of;
  for (size_t i = 0; i < buffers->size(); ++i) {
    if ((*buffers)[i].staged_rows == 0) continue;
    auto [it, fresh] = group_of.emplace((*buffers)[i].target, groups.size());
    if (fresh) groups.emplace_back((*buffers)[i].target, std::vector<size_t>{});
    groups[it->second].second.push_back(i);
  }

  std::vector<size_t> inserted(groups.size(), 0);
  std::vector<Status> statuses(groups.size(), Status::OK());
  auto apply_group = [&](size_t g) -> void {
    Relation* rel = groups[g].first;
    const std::vector<size_t>& runs = groups[g].second;
#if defined(RAQLET_FAILPOINTS)
    {
      // Injection point for the kill-point sweep: fail one relation's
      // merge while sibling shards may be mid-insert on other relations.
      Status fp = runtime::FailpointHit("datalog.apply_staged");
      if (!fp.ok()) {
        statuses[g] = std::move(fp);
        return;
      }
    }
#endif
    auto lk = lattice_kind_.find(rel->name());
    if (lk == lattice_kind_.end()) {
      // Concatenate later runs onto the first, column by column, in task
      // order (a no-op in the common one-task case), then hand the run to
      // the columnar dedup primitive — no row tuples are built. The first
      // buffer keeps its column capacity for the next round.
      std::vector<std::vector<Value>>& base = (*buffers)[runs[0]].staged;
      size_t total = 0;
      for (size_t i : runs) total += (*buffers)[i].staged_rows;
      for (std::vector<Value>& col : base) col.reserve(total);
      for (size_t k = 1; k < runs.size(); ++k) {
        std::vector<std::vector<Value>>& more = (*buffers)[runs[k]].staged;
        for (size_t c = 0; c < base.size(); ++c) {
          base[c].insert(base[c].end(), more[c].begin(), more[c].end());
        }
      }
      Result<size_t> r = rel->InsertColumns(&base);
      if (r.ok()) {
        inserted[g] = *r;
      } else {
        statuses[g] = r.status();
      }
      return;
    }
    // Batched lattice pass: a staged row survives only if it improves the
    // best value for its key prefix, with the best map advancing through
    // the run so intra-batch supersedes work exactly like the old
    // tuple-at-a-time merge. Survivors are staged column-wise.
    const size_t arity = (*buffers)[runs[0]].staged.size();
    std::vector<std::vector<Value>> batch(arity);
    auto& best = lattice_best_.find(rel->name())->second;
    for (size_t i : runs) {
      const std::vector<std::vector<Value>>& cols = (*buffers)[i].staged;
      for (size_t row = 0; row < (*buffers)[i].staged_rows; ++row) {
        Tuple prefix;
        prefix.reserve(arity - 1);
        for (size_t c = 0; c + 1 < arity; ++c) prefix.push_back(cols[c][row]);
        Value candidate = cols[arity - 1][row];
        auto it = best.find(prefix);
        bool improves =
            it == best.end() ||
            (lk->second == LatticeKind::kMin
                 ? CompareValues(candidate, it->second, db_->symbols()) < 0
                 : CompareValues(candidate, it->second, db_->symbols()) > 0);
        if (!improves) continue;
        if (it == best.end()) {
          best.emplace(std::move(prefix), candidate);
        } else {
          it->second = candidate;
        }
        for (size_t c = 0; c < arity; ++c) batch[c].push_back(cols[c][row]);
      }
    }
    Result<size_t> r = rel->InsertColumns(&batch);
    if (r.ok()) {
      inserted[g] = *r;
    } else {
      statuses[g] = r.status();
    }
  };

  // Sharded deterministic merge: one task per relation. Each relation has
  // exactly one writer (this task), and no concurrently-running SCC reads
  // a relation this SCC writes (the scheduler only starts an SCC after
  // all its dependencies finished), so the single-writer contract holds.
  if (pool_ != nullptr && groups.size() > 1) {
    pool_->ParallelFor(groups.size(), apply_group);
  } else {
    for (size_t g = 0; g < groups.size(); ++g) apply_group(g);
  }

  size_t total_inserted = 0;
  for (size_t n : inserted) total_inserted += n;
  for (EmitBuffer& buffer : *buffers) {
    buffer.Reset();
    buffer_pool_->Release(std::move(buffer));
  }
  buffers->clear();
  for (Status& s : statuses) {
    if (!s.ok()) return s;
  }
  return total_inserted;
}

Status Evaluation::EvaluateScc(SccWork* work) {
  obs::TraceScope scc_span("datalog.scc", work->index);
  const std::vector<std::string>& scc_preds = work->preds;
  const std::vector<CompiledRule>& rules = work->rules;
  EvalStats scc_stats;
  std::vector<EmitBuffer> staged;
  // This task owns its metrics slot exclusively (slots are pre-sized in
  // Run, indexed by topological SCC position), so no lock is needed.
  obs::SccMetrics* slot =
      metrics_ == nullptr ? nullptr
                          : &metrics_->sccs[static_cast<size_t>(work->index)];
  const auto scc_start = std::chrono::steady_clock::now();

  // The single-writer phase of each round: per-relation batched (and,
  // with a pool, sharded) merge of the staged runs. `last_inserted`
  // exposes each merge's admitted-tuple count — the next round's delta
  // size — to the metrics recording below.
  size_t last_inserted = 0;
  // Byte-budget watermark over the relations this SCC writes (only this
  // task mutates them, so reading their MemoryBytes races with nobody).
  size_t bytes_seen = 0;
  auto apply_staged = [&]() -> Status {
    RAQLET_ASSIGN_OR_RETURN(size_t inserted, ApplyStaged(&staged));
    scc_stats.tuples_inserted += inserted;
    last_inserted = inserted;
    return Status::OK();
  };

  // One guard checkpoint per round (and per merge): deadline/cancel via
  // Check(), row budget via the round's deterministic insert count, byte
  // budget via the growth of this SCC's relations since the last round.
  auto guard_checkpoint = [&]() -> Status {
    if (guard_ == nullptr) return Status::OK();
    RAQLET_RETURN_IF_ERROR(guard_->AddRows(last_inserted));
    if (guard_->max_bytes() > 0) {
      size_t bytes_now = 0;
      for (const std::string& pred : scc_preds) {
        bytes_now += relations_.at(pred)->MemoryBytes();
      }
      size_t delta = bytes_now > bytes_seen ? bytes_now - bytes_seen : 0;
      bytes_seen = bytes_now;
      RAQLET_RETURN_IF_ERROR(guard_->AddBytes(delta));
    }
    return guard_->Check();
  };

  // Only the predicates this SCC's rules mention: sizes of unrelated
  // relations may be changing concurrently in other SCCs.
  auto snapshot_sizes = [&]() {
    std::unordered_map<std::string, size_t> snapshot;
    for (const std::string& name : work->snapshot_preds) {
      snapshot[name] = relations_.at(name)->size();
    }
    return snapshot;
  };

  auto merge_stats = [&]() {
    if (slot != nullptr) {
      slot->rounds = scc_stats.fixpoint_rounds;
      slot->rule_evaluations = scc_stats.rule_evaluations;
      slot->tuples_considered = scc_stats.tuples_considered;
      slot->tuples_inserted = scc_stats.tuples_inserted;
      slot->micros = std::chrono::duration_cast<std::chrono::microseconds>(
                         std::chrono::steady_clock::now() - scc_start)
                         .count();
    }
    if (stats_ == nullptr) return;
    std::lock_guard<std::mutex> lock(stats_mutex_);
    stats_->fixpoint_rounds += scc_stats.fixpoint_rounds;
    stats_->tuples_inserted += scc_stats.tuples_inserted;
    stats_->rule_evaluations += scc_stats.rule_evaluations;
    stats_->tuples_considered += scc_stats.tuples_considered;
  };

  if (rules.empty()) return Status::OK();

  if (!work->recursive) {
    auto snapshot = snapshot_sizes();
    std::vector<std::pair<const CompiledRule*, int>> variants;
    for (const CompiledRule& rule : rules) variants.emplace_back(&rule, -1);
    Status s = EvaluateVariants(variants, snapshot, {}, &staged, &scc_stats);
    if (s.ok()) s = apply_staged();
    if (s.ok()) s = guard_checkpoint();
    merge_stats();
    return s;
  }

  // Recursive SCC. Aggregates are rejected by stratification earlier.
  // Phase 1: exit rules (no recursive body atom).
  std::unordered_map<std::string, size_t> delta_begin;
  for (const std::string& pred : scc_preds) {
    delta_begin[pred] = relations_.at(pred)->size();
  }
  {
    auto snapshot = snapshot_sizes();
    std::vector<std::pair<const CompiledRule*, int>> variants;
    for (const CompiledRule& rule : rules) {
      if (rule.recursive_atoms.empty()) variants.emplace_back(&rule, -1);
    }
    Status s = EvaluateVariants(variants, snapshot, {}, &staged, &scc_stats);
    if (s.ok()) s = apply_staged();
    if (s.ok()) s = guard_checkpoint();
    if (!s.ok()) {
      merge_stats();
      return s;
    }
    // The exit-rule batch is round 0's delta.
    if (slot != nullptr) slot->round_delta_sizes.push_back(last_inserted);
  }

  // Phase 2: fixpoint. Each round evaluates one variant per recursive
  // body atom with that atom restricted to the previous round's delta.
  size_t round = 0;
  while (true) {
    bool any_delta = false;
    for (const std::string& pred : scc_preds) {
      if (relations_.at(pred)->size() > delta_begin[pred]) {
        any_delta = true;
        break;
      }
    }
    if (!any_delta) break;
    ++round;
    ++scc_stats.fixpoint_rounds;
    obs::TraceScope round_span("datalog.round",
                               static_cast<int64_t>(round));
    if (options_.max_iterations != 0 && round > options_.max_iterations) {
      merge_stats();
      return Status::Unsupported(
          "fixpoint did not converge within " +
          std::to_string(options_.max_iterations) +
          " rounds; the termination analysis may flag this query");
    }

    auto snapshot = snapshot_sizes();
    std::vector<std::pair<const CompiledRule*, int>> variants;
    for (const CompiledRule& rule : rules) {
      if (rule.recursive_atoms.empty()) continue;
      if (options_.seminaive) {
        for (int delta_atom : rule.recursive_atoms) {
          variants.emplace_back(&rule, delta_atom);
        }
      } else {
        variants.emplace_back(&rule, -1);
      }
    }
    // Non-seminaive variants carry delta_atom == -1 and never consult
    // delta_begin, so passing it unconditionally is safe.
    Status s = EvaluateVariants(variants, snapshot, delta_begin, &staged,
                                &scc_stats);
    if (!s.ok()) {
      merge_stats();
      return s;
    }
    for (const std::string& pred : scc_preds) {
      delta_begin[pred] = snapshot[pred];
    }
    s = apply_staged();
    if (s.ok()) s = guard_checkpoint();
    if (!s.ok()) {
      merge_stats();
      return s;
    }
    if (slot != nullptr) slot->round_delta_sizes.push_back(last_inserted);
  }

  // Compact lattice relations: drop rows superseded by better values.
  for (const std::string& pred : scc_preds) {
    auto lk = lattice_kind_.find(pred);
    if (lk == lattice_kind_.end()) continue;
    Relation* rel = relations_.at(pred);
    const auto& best = lattice_best_.at(pred);
    std::vector<Tuple> compacted;
    compacted.reserve(best.size());
    for (const auto& [prefix, value] : best) {
      Tuple row = prefix;
      row.push_back(value);
      compacted.push_back(std::move(row));
    }
    Status replaced = rel->ReplaceRows(std::move(compacted));
    if (!replaced.ok()) {
      merge_stats();
      return replaced;
    }
  }
  merge_stats();
  return Status::OK();
}

Status Evaluation::Run() {
  obs::TraceScope run_span("datalog.run");
  RAQLET_RETURN_IF_ERROR(program_.Validate());
  RAQLET_RETURN_IF_ERROR(PrepareRelations());

  analysis::DependencyGraph graph = analysis::DependencyGraph::Build(program_);
  RAQLET_RETURN_IF_ERROR(CheckStratification(graph));

  // Compile every SCC's rules upfront, single-threaded: rule compilation
  // interns constants into the shared symbol table and resolves relation
  // pointers, neither of which may race with concurrent SCC evaluation.
  const auto& sccs = graph.SccsInTopologicalOrder();
  std::vector<SccWork> work(sccs.size());
  if (metrics_ != nullptr) {
    metrics_->sccs.assign(sccs.size(), obs::SccMetrics{});
  }
  for (size_t i = 0; i < sccs.size(); ++i) {
    work[i].index = static_cast<int>(i);
    work[i].preds = sccs[i];
    work[i].recursive = graph.IsRecursiveScc(static_cast<int>(i));
    if (metrics_ != nullptr) {
      metrics_->sccs[i].preds = sccs[i];
      metrics_->sccs[i].recursive = work[i].recursive;
    }
    std::set<std::string> scc_set(sccs[i].begin(), sccs[i].end());
    for (const Rule& rule : program_.rules) {
      if (scc_set.count(rule.head.predicate) == 0) continue;
      RAQLET_ASSIGN_OR_RETURN(CompiledRule cr, CompileRule(rule, scc_set));
      work[i].snapshot_preds.insert(rule.head.predicate);
      for (const CompiledAtom& atom : cr.atoms) {
        work[i].snapshot_preds.insert(atom.predicate);
      }
      work[i].rules.push_back(std::move(cr));
    }
  }

  if (pool_ == nullptr) {
    for (SccWork& w : work) {
      if (guard_ != nullptr) RAQLET_RETURN_IF_ERROR(guard_->Check());
      RAQLET_RETURN_IF_ERROR(EvaluateScc(&w));
    }
    return Status::OK();
  }

  // Independent SCCs run concurrently; an SCC starts only after every SCC
  // it depends on finished, so all relations it reads (beyond its own) are
  // frozen for its whole lifetime.
  runtime::SccDag dag = runtime::BuildSccDag(graph);
  return runtime::RunSccDag(
      dag, pool_,
      [&](int i) { return EvaluateScc(&work[static_cast<size_t>(i)]); },
      guard_);
}

}  // namespace

std::string EvalStats::ToString() const {
  std::ostringstream os;
  os << "rounds=" << fixpoint_rounds << " inserted=" << tuples_inserted
     << " rule_evals=" << rule_evaluations
     << " tuples_considered=" << tuples_considered;
  return os.str();
}

Status DatalogEngine::Run(const dlir::Program& program, Database* db,
                          EvalStats* stats, obs::DatalogMetrics* metrics,
                          const runtime::QueryGuard* guard) const {
  const runtime::QueryGuard* g = guard != nullptr ? guard : options_.guard;
  Evaluation eval(program, db, options_, stats, metrics, context_.get(), g);
  return eval.Run();
}

}  // namespace raqlet::engine
