#ifndef RAQLET_ENGINE_DATALOG_INCREMENTAL_H_
#define RAQLET_ENGINE_DATALOG_INCREMENTAL_H_

// Incremental maintenance of a Datalog program's derived relations under
// streaming +/− base-fact deltas (the ROADMAP's "maintainable view
// engine" item).
//
// An IncrementalView pairs one stratified DLIR program with one Database:
// Initialize() evaluates the program from scratch (the ordinary
// DatalogEngine) and builds the maintenance state; each ApplyDelta()
// applies a DeltaBatch to the base relations and repairs every derived
// relation to exactly what a from-scratch re-evaluation would produce —
// same rows, same insertion order up to the differential contract below —
// while re-firing only the SCCs of the dependency graph reachable from
// changed predicates.
//
// ## Deletion strategy, per SCC
//
//  * Counting — non-recursive SCCs without aggregation or lattice merge.
//    Initialize() records a support count (number of distinct derivations)
//    per derived tuple; a delta adjusts supports with the exact signed
//    telescoping sum Δ(R₁⋈…⋈Rₙ) = Σᵢ R₁ⁿᵉʷ…Rᵢ₋₁ⁿᵉʷ ⋈ ΔRᵢ ⋈ Rᵢ₊₁ᵒˡᵈ…Rₙᵒˡᵈ
//    (negated atoms contribute ¬∃-flips over their projection keys).
//    Tuples whose support reaches 0 are erased; tuples whose support
//    leaves 0 are inserted.
//  * DRed (delete-and-rederive) — recursive SCCs without aggregation or
//    lattice merge. Overdelete everything transitively derivable from the
//    removed facts against the pre-delta state, erase, rederive the
//    overdeleted tuples still derivable from the remaining facts, then
//    continue semi-naive insertion from the incoming additions plus the
//    rederivations. Pure insert-only deltas skip straight to the
//    continuation — the cheap path streaming appends take.
//  * Recompute-and-diff — SCCs with aggregation or lattice relations
//    (support counts do not model merge/group semantics). The SCC's rules
//    are re-run from scratch on the current lower strata and the result
//    is diffed against the previous rows.
//
// ## Determinism contract
//
// Maintained relations are NOT re-sorted: surviving rows keep their
// relative order (Relation::EraseBatch compacts in place) and repaired
// rows append in deterministic derivation order, so an incrementally
// maintained relation holds exactly the same row SET as a from-scratch
// evaluation, in a deterministic (but possibly different) row ORDER.
// Every ApplyDelta is bit-identical across thread counts: rows, row
// order, stats and metrics all match between num_threads = 1 and N.
//
// ## Guard interaction
//
// ApplyDelta polls the optional QueryGuard at every fixpoint round and
// phase boundary and charges the deterministic per-round insert/delete
// counts via AddRows. A trip aborts mid-repair, which leaves the view
// (and the database's derived relations) in an undefined intermediate
// state: the view poisons itself and every later ApplyDelta fails with
// InvalidArgument until Initialize() is called again.

#include <memory>

#include "common/status.h"
#include "dlir/program.h"
#include "engine/datalog/engine.h"
#include "obs/metrics.h"
#include "runtime/query_guard.h"
#include "storage/database.h"

namespace raqlet::engine {

struct IncrementalOptions {
  /// Safety valve on incremental fixpoint rounds per SCC (0 = unlimited).
  size_t max_iterations = 0;
  /// Greedy join ordering inside each rule (mirrors EvalOptions).
  bool reorder_atoms = true;
  /// Degree of parallelism for the insertion-continuation phase. Counting
  /// and overdeletion passes always run serially; results are identical
  /// for every N.
  int num_threads = 1;
  /// DRed escape hatch: when the overdeletion cascade exceeds this
  /// fraction of the SCC's pre-delta rows, abandon DRed mid-fixpoint
  /// (nothing has been mutated yet) and recompute-and-diff the SCC with
  /// the batch engine instead. The decision depends only on deterministic
  /// sizes, so the chosen path is identical across thread counts.
  /// Values <= 0 disable the bail-out (pure DRed). Counted in
  /// IncrementalStats::dred_bailouts. The default reflects that the
  /// tuple-at-a-time DRed interpreter costs roughly an order of magnitude
  /// more per row than the batch engine: once a cascade passes ~1/5 of
  /// the SCC, erase-and-rederive is already losing to recompute.
  double dred_recompute_threshold = 0.2;
  /// Absolute floor on the bail-out: cascades smaller than this many
  /// tuples stay on DRed regardless of the fraction — below a few
  /// thousand rows the interpreter beats standing up the batch
  /// sub-engine, and small SCCs would otherwise bail on every delete.
  size_t dred_recompute_min_over = 4096;
};

/// Cumulative counters across every ApplyDelta on one view. All fields
/// are deterministic (identical across thread counts).
struct IncrementalStats {
  size_t deltas_applied = 0;
  size_t base_added = 0;
  size_t base_removed = 0;
  size_t sccs_touched = 0;
  size_t sccs_skipped = 0;
  size_t rounds = 0;
  size_t tuples_inserted = 0;
  size_t tuples_deleted = 0;
  size_t overdeleted = 0;
  size_t rederived = 0;
  size_t support_updates = 0;
  size_t recomputed_sccs = 0;
  size_t dred_bailouts = 0;

  std::string ToString() const;
};

class IncrementalView {
 public:
  explicit IncrementalView(IncrementalOptions options = {});
  ~IncrementalView();

  IncrementalView(const IncrementalView&) = delete;
  IncrementalView& operator=(const IncrementalView&) = delete;

  /// Evaluates `program` against `db` from scratch (clearing any existing
  /// IDB relations) and builds the maintenance state: dependency SCCs,
  /// per-SCC strategy, compiled rules, and support counts for counting
  /// strata. `program` must pass analysis verification for the ordinary
  /// engine; additionally every relation a delta may target must be a
  /// declared input. Re-initializing an existing (or poisoned) view is
  /// allowed and resets it completely.
  Status Initialize(const dlir::Program& program, Database* db,
                    EvalStats* stats = nullptr,
                    const runtime::QueryGuard* guard = nullptr);

  bool initialized() const;

  /// Applies `delta` to the base relations (Database::ApplyDelta
  /// semantics) and incrementally repairs every derived relation. The
  /// returned AppliedDelta lists the net change per relation — base
  /// relations first in batch order, then derived relations in dependency
  /// (topological) order. Deltas may only target declared input
  /// relations. On error the view is poisoned (see header comment).
  Result<AppliedDelta> ApplyDelta(const DeltaBatch& delta,
                                  obs::IncrementalMetrics* metrics = nullptr,
                                  const runtime::QueryGuard* guard = nullptr);

  /// Cumulative stats across every ApplyDelta since Initialize.
  const IncrementalStats& stats() const;

  /// The database this view maintains (nullptr before Initialize).
  Database* database() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace raqlet::engine

#endif  // RAQLET_ENGINE_DATALOG_INCREMENTAL_H_
