#ifndef RAQLET_ENGINE_DATALOG_ENGINE_H_
#define RAQLET_ENGINE_DATALOG_ENGINE_H_

// Bottom-up Datalog engine executing DLIR programs against a Database.
//
// This is Raqlet's stand-in for Soufflé (see DESIGN.md §2): stratified
// semi-naive evaluation over indexed relations.
//
//  * Strata are the SCCs of the predicate dependency graph in topological
//    order; negation and aggregation may not cross into their own SCC
//    (classic stratification, checked before execution).
//  * Within a recursive SCC, rules are evaluated semi-naively: one rule
//    variant per recursive body atom, with that atom restricted to the
//    previous iteration's delta.
//  * Join order inside a rule is chosen greedily (most-bound-arguments
//    first); probes use incrementally-maintained hash indexes.
//  * Lattice relations (RelationDecl::lattice = min/max on the last
//    column) merge instead of union: an insert only "counts" if it
//    improves the best value for the key prefix. This gives terminating
//    shortest-path recursion on cyclic graphs (Datalog^o-style monotone
//    aggregation).
//  * With num_threads > 1, execution runs on the raqlet_runtime layer:
//    independent SCCs are scheduled concurrently, and within one fixpoint
//    round each rule variant's outer join range is partitioned across the
//    pool. Workers emit into per-task buffers (recycled through the
//    context's object pool across rounds); the merge is sharded per
//    target relation — each relation's staged runs apply in task order
//    through Relation::InsertColumns on one pool task — so derived
//    relations are bit-identical to a 1-thread run at any thread count.

#include <cstddef>
#include <memory>
#include <string>

#include "common/status.h"
#include "dlir/program.h"
#include "obs/metrics.h"
#include "runtime/execution_context.h"
#include "runtime/query_guard.h"
#include "storage/database.h"

namespace raqlet::engine {

struct EvalOptions {
  /// Safety valve on fixpoint rounds per SCC (0 = unlimited).
  size_t max_iterations = 0;
  /// Semi-naive (deltas) vs naive (full re-evaluation each round).
  /// Naive mode exists for the optimizer ablation benchmarks.
  bool seminaive = true;
  /// Greedy join ordering inside each rule (most bound arguments first);
  /// when false, body atoms join in written order.
  bool reorder_atoms = true;
  /// If an IDB relation already exists in the database, clear and
  /// recompute it instead of failing.
  bool overwrite_idb = true;
  /// Degree of parallelism. 1 (default) evaluates strictly serially;
  /// N > 1 evaluates independent SCCs and partitioned delta joins on a
  /// thread pool of N threads. Results are identical for every N.
  int num_threads = 1;
  /// Cooperative guardrails (cancellation, deadline, row/byte budgets)
  /// polled per fixpoint round and per ParallelFor chunk. A per-Run
  /// control channel like the metrics sink, NOT a behavioural option:
  /// excluded from equality so the Compiler's engine cache never keys on
  /// it (the facade forwards the guard to Run explicitly).
  const runtime::QueryGuard* guard = nullptr;

  /// Equality over the behavioural fields only (cache key; see `guard`).
  friend bool operator==(const EvalOptions& a, const EvalOptions& b) {
    return a.max_iterations == b.max_iterations &&
           a.seminaive == b.seminaive && a.reorder_atoms == b.reorder_atoms &&
           a.overwrite_idb == b.overwrite_idb &&
           a.num_threads == b.num_threads;
  }
};

struct EvalStats {
  size_t fixpoint_rounds = 0;    // total semi-naive rounds across SCCs
  size_t tuples_inserted = 0;    // new tuples across all IDB relations
  size_t rule_evaluations = 0;   // rule-variant evaluations
  size_t tuples_considered = 0;  // candidate rows scanned/probed

  std::string ToString() const;
};

class DatalogEngine {
 public:
  explicit DatalogEngine(EvalOptions options = {})
      : options_(options),
        context_(std::make_unique<runtime::ExecutionContext>(
            options.num_threads)) {}

  /// Evaluates `program` against `db`. Input relations must pre-exist in
  /// `db` with matching arity; IDB relations are created (or cleared) and
  /// filled. On success, output relations hold the query results.
  ///
  /// `metrics`, when given, receives the per-SCC fixpoint breakdown
  /// (rounds, per-round delta sizes, tuples considered/inserted) indexed
  /// by topological SCC order. Every counter in it is bit-identical
  /// across thread counts; only SccMetrics::micros is wall time.
  ///
  /// `guard` overrides options().guard for this call (the Compiler facade
  /// uses this so cached engines — keyed on guard-free options equality —
  /// still honour the caller's per-query guard). A trip aborts evaluation
  /// with the guard's terminal Status and leaves `db`, this engine, and
  /// its pools reusable: re-running the same program recomputes the IDB
  /// relations from scratch, bit-identically to a never-tripped run.
  Status Run(const dlir::Program& program, Database* db,
             EvalStats* stats = nullptr,
             obs::DatalogMetrics* metrics = nullptr,
             const runtime::QueryGuard* guard = nullptr) const;

 private:
  EvalOptions options_;
  // Created eagerly with the engine (num_threads is fixed per engine), so
  // Run stays const and safe to call from multiple threads, and repeated
  // executions (fixpoint benchmarks, servers) reuse the same workers.
  std::unique_ptr<runtime::ExecutionContext> context_;
};

}  // namespace raqlet::engine

#endif  // RAQLET_ENGINE_DATALOG_ENGINE_H_
