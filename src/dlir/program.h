#ifndef RAQLET_DLIR_PROGRAM_H_
#define RAQLET_DLIR_PROGRAM_H_

// DLIR — Raqlet's Datalog-inspired core intermediate representation (§3).
//
// A DLIR program is a list of relation declarations plus a list of rules
// `Head(args) :- atom, ..., constraint, ... .` with optional stratified
// negation and head-position aggregation. All static analyses (§4) and
// optimizations (§5) operate on this IR; the Cypher/PGIR frontend lowers
// into it and the Datalog/SQL backends lower out of it.
//
// Extensions beyond textbook Datalog, mirroring the paper:
//   * arithmetic terms and comparison constraints,
//   * aggregation in rule heads (count/sum/min/max/avg) with group-by
//     given by the remaining head arguments,
//   * lattice ("monotone aggregate") relations, where the last column is
//     merged with min/max instead of set union — this is the Datalog^o
//     -style mechanism [43] used for shortest paths.

#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/value.h"
#include "storage/relation.h"

namespace raqlet::dlir {

/// An IR-level literal constant. Unlike runtime Values, string constants
/// are stored verbatim (interning happens at execution time).
struct Constant {
  ValueType type = ValueType::kNumber;
  int64_t num = 0;
  double fval = 0.0;
  bool bval = false;
  std::string str;

  static Constant Number(int64_t v);
  static Constant Float(double v);
  static Constant String(std::string v);
  static Constant Bool(bool v);
  static Constant Null();

  bool operator==(const Constant& other) const;
  bool operator!=(const Constant& other) const { return !(*this == other); }
  /// Renders the constant in Datalog syntax (strings quoted).
  std::string ToString() const;
};

enum class TermKind { kVariable, kConstant, kWildcard, kBinary };

enum class ArithOp { kAdd, kSub, kMul, kDiv, kMod };
const char* ArithOpToString(ArithOp op);

/// A term: variable, constant, wildcard `_`, or arithmetic expression.
struct Term {
  TermKind kind = TermKind::kWildcard;
  std::string var;        // kVariable
  Constant constant;      // kConstant
  ArithOp op = ArithOp::kAdd;  // kBinary
  std::vector<Term> children;  // kBinary: exactly two

  static Term Var(std::string name);
  static Term Const(Constant c);
  static Term Num(int64_t v);
  static Term Str(std::string v);
  static Term Wildcard();
  static Term Binary(ArithOp op, Term lhs, Term rhs);

  bool is_var() const { return kind == TermKind::kVariable; }
  bool is_const() const { return kind == TermKind::kConstant; }
  bool is_wildcard() const { return kind == TermKind::kWildcard; }

  /// Adds every variable occurring in this term to `vars`.
  void CollectVars(std::set<std::string>* vars) const;

  bool operator==(const Term& other) const;
  bool operator!=(const Term& other) const { return !(*this == other); }
  std::string ToString() const;
};

/// A (possibly negated) relational atom `R(t1, ..., tn)` in a rule body,
/// or (never negated) a rule head.
struct Atom {
  std::string predicate;
  std::vector<Term> args;
  bool negated = false;

  void CollectVars(std::set<std::string>* vars) const;
  std::string ToString() const;
  bool operator==(const Atom& other) const;
};

enum class CmpOp { kEq, kNe, kLt, kLe, kGt, kGe };
const char* CmpOpToString(CmpOp op);
/// Flips the operator as if swapping its operands (< becomes >).
CmpOp SwapCmpOp(CmpOp op);

/// A comparison constraint between two terms, e.g. `n = 42` or `d < x+1`.
struct Constraint {
  CmpOp op = CmpOp::kEq;
  Term lhs;
  Term rhs;

  void CollectVars(std::set<std::string>* vars) const;
  std::string ToString() const;
  bool operator==(const Constraint& other) const;
};

enum class AggFunc { kCount, kSum, kMin, kMax, kAvg };
const char* AggFuncToString(AggFunc func);

/// Head aggregation: the head argument at `Rule::agg_result_pos` receives
/// `func` over `arg` evaluated per body match, grouped by the remaining
/// head arguments.
struct Aggregate {
  AggFunc func = AggFunc::kCount;
  Term arg;  // ignored for count
  std::string ToString() const;
};

/// One DLIR rule. Body atom order is preserved (it is the join order hint
/// used by the engine's planner) and constraints apply as soon as their
/// variables are bound.
struct Rule {
  Atom head;
  std::vector<Atom> body;
  std::vector<Constraint> constraints;
  std::optional<Aggregate> agg;
  int agg_result_pos = -1;  // head arg index receiving the aggregate

  /// Variables appearing in positive body atoms (the range-restricted set).
  std::set<std::string> PositiveBodyVars() const;
  /// All variables anywhere in the rule.
  std::set<std::string> AllVars() const;
  /// True if `predicate` occurs in the (positive or negated) body.
  bool BodyUses(const std::string& predicate) const;

  std::string ToString() const;
};

/// Lattice annotation on a relation's last column (kNone = plain set).
enum class LatticeKind { kNone, kMin, kMax };

/// Declared relation: schema plus IO role. `is_input` relations are EDBs
/// expected to pre-exist in the Database; `is_output` relations are the
/// query results.
struct RelationDecl {
  std::string name;
  std::vector<Column> columns;
  bool is_input = false;
  bool is_output = false;
  LatticeKind lattice = LatticeKind::kNone;
  std::vector<int> primary_key;

  size_t arity() const { return columns.size(); }
  std::string ToString() const;
};

/// A complete DLIR program. Value-semantic: optimizer passes copy and
/// rewrite freely.
struct Program {
  std::vector<RelationDecl> decls;
  std::vector<Rule> rules;

  /// Looks up a declaration by name; returns nullptr if absent.
  /// WARNING: the returned pointer aims into `decls` and is invalidated by
  /// any mutation of that vector (push_back may reallocate). Copy the decl
  /// or re-lookup after mutating; do not hold it across a push_back.
  const RelationDecl* FindDecl(const std::string& name) const;
  RelationDecl* FindDecl(const std::string& name);

  /// Names of relations flagged is_output, in declaration order.
  std::vector<std::string> OutputRelations() const;
  /// Names of relations flagged is_input, in declaration order.
  std::vector<std::string> InputRelations() const;
  /// Predicates that appear in some rule head (the IDBs).
  std::set<std::string> IdbPredicates() const;

  /// Structural well-formedness: every used predicate is declared with
  /// matching arity, rules are range-restricted (safe), aggregate specs
  /// are consistent, and negation/aggregation do not target undeclared
  /// relations. Returns the first violation found. The engines call this
  /// per run; for all findings at once (plus type and stratification
  /// checks, with stable diagnostic codes) use analysis::CheckProgram /
  /// analysis::VerifyProgram in analysis/typecheck.h.
  Status Validate() const;

  /// Whole program in Datalog-like text (see also SoufflePrinter for the
  /// exact Soufflé dialect).
  std::string ToString() const;
};

/// Generates fresh variable names (`prefix`, `prefix_1`, ...) avoiding a
/// set of reserved names. Used by optimizer rewrites and the frontends.
class VarGen {
 public:
  VarGen() = default;
  explicit VarGen(std::set<std::string> reserved)
      : reserved_(std::move(reserved)) {}

  void Reserve(const std::string& name) { reserved_.insert(name); }
  std::string Fresh(const std::string& prefix);

 private:
  std::set<std::string> reserved_;
  int counter_ = 0;
};

}  // namespace raqlet::dlir

#endif  // RAQLET_DLIR_PROGRAM_H_
