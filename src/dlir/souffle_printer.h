#ifndef RAQLET_DLIR_SOUFFLE_PRINTER_H_
#define RAQLET_DLIR_SOUFFLE_PRINTER_H_

// Unparser emitting DLIR as a Soufflé Datalog program (the paper's Fig. 3d
// backend). Aggregates are rendered in Soufflé's `res = func : { body }`
// form; Raqlet's lattice annotation is rendered as a comment plus a
// subsumption-free min/max post-rule, since stock Soufflé expresses the
// same thing with `.decl` + subsumptive clauses.

#include <string>

#include "dlir/program.h"

namespace raqlet::dlir {

struct SouffleOptions {
  /// Emit `.input R(IO=file)` style directives for input relations.
  bool emit_io_directives = true;
  /// Emit the per-rule provenance comments (`// from <stage>`).
  bool emit_comments = true;
};

/// Renders `program` in Soufflé's concrete syntax.
std::string ToSouffle(const Program& program, const SouffleOptions& options = {});

}  // namespace raqlet::dlir

#endif  // RAQLET_DLIR_SOUFFLE_PRINTER_H_
