#include "dlir/program.h"

#include <sstream>
#include <unordered_map>

#include "common/str_util.h"

namespace raqlet::dlir {

Constant Constant::Number(int64_t v) {
  Constant c;
  c.type = ValueType::kNumber;
  c.num = v;
  return c;
}

Constant Constant::Float(double v) {
  Constant c;
  c.type = ValueType::kFloat;
  c.fval = v;
  return c;
}

Constant Constant::String(std::string v) {
  Constant c;
  c.type = ValueType::kSymbol;
  c.str = std::move(v);
  return c;
}

Constant Constant::Bool(bool v) {
  Constant c;
  c.type = ValueType::kBool;
  c.bval = v;
  return c;
}

Constant Constant::Null() {
  Constant c;
  c.type = ValueType::kNull;
  return c;
}

bool Constant::operator==(const Constant& other) const {
  if (type != other.type) return false;
  switch (type) {
    case ValueType::kNumber:
      return num == other.num;
    case ValueType::kFloat:
      return fval == other.fval;
    case ValueType::kSymbol:
      return str == other.str;
    case ValueType::kBool:
      return bval == other.bval;
    case ValueType::kNull:
      return true;
  }
  return false;
}

std::string Constant::ToString() const {
  switch (type) {
    case ValueType::kNumber:
      return std::to_string(num);
    case ValueType::kFloat: {
      std::ostringstream os;
      os << fval;
      return os.str();
    }
    case ValueType::kSymbol:
      return "\"" + str + "\"";
    case ValueType::kBool:
      return bval ? "true" : "false";
    case ValueType::kNull:
      return "nil";
  }
  return "?";
}

const char* ArithOpToString(ArithOp op) {
  switch (op) {
    case ArithOp::kAdd:
      return "+";
    case ArithOp::kSub:
      return "-";
    case ArithOp::kMul:
      return "*";
    case ArithOp::kDiv:
      return "/";
    case ArithOp::kMod:
      return "%";
  }
  return "?";
}

Term Term::Var(std::string name) {
  Term t;
  t.kind = TermKind::kVariable;
  t.var = std::move(name);
  return t;
}

Term Term::Const(Constant c) {
  Term t;
  t.kind = TermKind::kConstant;
  t.constant = std::move(c);
  return t;
}

Term Term::Num(int64_t v) { return Const(Constant::Number(v)); }

Term Term::Str(std::string v) { return Const(Constant::String(std::move(v))); }

Term Term::Wildcard() { return Term(); }

Term Term::Binary(ArithOp op, Term lhs, Term rhs) {
  Term t;
  t.kind = TermKind::kBinary;
  t.op = op;
  t.children.push_back(std::move(lhs));
  t.children.push_back(std::move(rhs));
  return t;
}

void Term::CollectVars(std::set<std::string>* vars) const {
  if (kind == TermKind::kVariable) {
    vars->insert(var);
  } else if (kind == TermKind::kBinary) {
    for (const Term& child : children) child.CollectVars(vars);
  }
}

bool Term::operator==(const Term& other) const {
  if (kind != other.kind) return false;
  switch (kind) {
    case TermKind::kVariable:
      return var == other.var;
    case TermKind::kConstant:
      return constant == other.constant;
    case TermKind::kWildcard:
      return true;
    case TermKind::kBinary:
      return op == other.op && children == other.children;
  }
  return false;
}

std::string Term::ToString() const {
  switch (kind) {
    case TermKind::kVariable:
      return var;
    case TermKind::kConstant:
      return constant.ToString();
    case TermKind::kWildcard:
      return "_";
    case TermKind::kBinary:
      return "(" + children[0].ToString() + " " + ArithOpToString(op) + " " +
             children[1].ToString() + ")";
  }
  return "?";
}

void Atom::CollectVars(std::set<std::string>* vars) const {
  for (const Term& arg : args) arg.CollectVars(vars);
}

std::string Atom::ToString() const {
  std::vector<std::string> parts;
  parts.reserve(args.size());
  for (const Term& arg : args) parts.push_back(arg.ToString());
  std::string out = predicate + "(" + Join(parts, ", ") + ")";
  return negated ? "!" + out : out;
}

bool Atom::operator==(const Atom& other) const {
  return predicate == other.predicate && negated == other.negated &&
         args == other.args;
}

const char* CmpOpToString(CmpOp op) {
  switch (op) {
    case CmpOp::kEq:
      return "=";
    case CmpOp::kNe:
      return "!=";
    case CmpOp::kLt:
      return "<";
    case CmpOp::kLe:
      return "<=";
    case CmpOp::kGt:
      return ">";
    case CmpOp::kGe:
      return ">=";
  }
  return "?";
}

CmpOp SwapCmpOp(CmpOp op) {
  switch (op) {
    case CmpOp::kLt:
      return CmpOp::kGt;
    case CmpOp::kLe:
      return CmpOp::kGe;
    case CmpOp::kGt:
      return CmpOp::kLt;
    case CmpOp::kGe:
      return CmpOp::kLe;
    default:
      return op;
  }
}

void Constraint::CollectVars(std::set<std::string>* vars) const {
  lhs.CollectVars(vars);
  rhs.CollectVars(vars);
}

std::string Constraint::ToString() const {
  return lhs.ToString() + " " + CmpOpToString(op) + " " + rhs.ToString();
}

bool Constraint::operator==(const Constraint& other) const {
  return op == other.op && lhs == other.lhs && rhs == other.rhs;
}

const char* AggFuncToString(AggFunc func) {
  switch (func) {
    case AggFunc::kCount:
      return "count";
    case AggFunc::kSum:
      return "sum";
    case AggFunc::kMin:
      return "min";
    case AggFunc::kMax:
      return "max";
    case AggFunc::kAvg:
      return "avg";
  }
  return "?";
}

std::string Aggregate::ToString() const {
  if (func == AggFunc::kCount) return "count()";
  return std::string(AggFuncToString(func)) + "(" + arg.ToString() + ")";
}

std::set<std::string> Rule::PositiveBodyVars() const {
  std::set<std::string> vars;
  for (const Atom& atom : body) {
    if (!atom.negated) atom.CollectVars(&vars);
  }
  return vars;
}

std::set<std::string> Rule::AllVars() const {
  std::set<std::string> vars;
  head.CollectVars(&vars);
  for (const Atom& atom : body) atom.CollectVars(&vars);
  for (const Constraint& c : constraints) c.CollectVars(&vars);
  return vars;
}

bool Rule::BodyUses(const std::string& predicate) const {
  for (const Atom& atom : body) {
    if (atom.predicate == predicate) return true;
  }
  return false;
}

std::string Rule::ToString() const {
  // Render the head, substituting the aggregate expression at the
  // aggregation position if present.
  std::vector<std::string> head_args;
  for (size_t i = 0; i < head.args.size(); ++i) {
    if (agg.has_value() && static_cast<int>(i) == agg_result_pos) {
      head_args.push_back(agg->ToString());
    } else {
      head_args.push_back(head.args[i].ToString());
    }
  }
  std::string out = head.predicate + "(" + Join(head_args, ", ") + ")";
  if (body.empty() && constraints.empty()) return out + ".";
  out += " :- ";
  std::vector<std::string> parts;
  for (const Atom& atom : body) parts.push_back(atom.ToString());
  for (const Constraint& c : constraints) parts.push_back(c.ToString());
  out += Join(parts, ", ");
  out += ".";
  return out;
}

std::string RelationDecl::ToString() const {
  std::vector<std::string> cols;
  for (size_t i = 0; i < columns.size(); ++i) {
    std::string col = columns[i].name + ": " + ValueTypeToString(columns[i].type);
    if (lattice != LatticeKind::kNone && i + 1 == columns.size()) {
      col += lattice == LatticeKind::kMin ? " @min" : " @max";
    }
    cols.push_back(col);
  }
  return ".decl " + name + "(" + Join(cols, ", ") + ")";
}

const RelationDecl* Program::FindDecl(const std::string& name) const {
  for (const RelationDecl& d : decls) {
    if (d.name == name) return &d;
  }
  return nullptr;
}

RelationDecl* Program::FindDecl(const std::string& name) {
  for (RelationDecl& d : decls) {
    if (d.name == name) return &d;
  }
  return nullptr;
}

std::vector<std::string> Program::OutputRelations() const {
  std::vector<std::string> out;
  for (const RelationDecl& d : decls) {
    if (d.is_output) out.push_back(d.name);
  }
  return out;
}

std::vector<std::string> Program::InputRelations() const {
  std::vector<std::string> out;
  for (const RelationDecl& d : decls) {
    if (d.is_input) out.push_back(d.name);
  }
  return out;
}

std::set<std::string> Program::IdbPredicates() const {
  std::set<std::string> out;
  for (const Rule& rule : rules) out.insert(rule.head.predicate);
  return out;
}

Status Program::Validate() const {
  std::unordered_map<std::string, const RelationDecl*> by_name;
  for (const RelationDecl& d : decls) {
    if (!by_name.emplace(d.name, &d).second) {
      return Status::InvalidArgument("duplicate declaration: " + d.name);
    }
  }
  for (const Rule& rule : rules) {
    auto check_atom = [&](const Atom& atom) -> Status {
      auto it = by_name.find(atom.predicate);
      if (it == by_name.end()) {
        return Status::NotFound("undeclared predicate '" + atom.predicate +
                                "' in rule: " + rule.ToString());
      }
      if (it->second->arity() != atom.args.size()) {
        return Status::InvalidArgument(
            "arity mismatch for '" + atom.predicate + "': declared " +
            std::to_string(it->second->arity()) + ", used with " +
            std::to_string(atom.args.size()) + " in rule: " + rule.ToString());
      }
      return Status::OK();
    };
    RAQLET_RETURN_IF_ERROR(check_atom(rule.head));
    for (const Atom& atom : rule.body) RAQLET_RETURN_IF_ERROR(check_atom(atom));

    if (rule.agg.has_value()) {
      if (rule.agg_result_pos < 0 ||
          rule.agg_result_pos >= static_cast<int>(rule.head.args.size())) {
        return Status::InvalidArgument(
            "aggregate result position out of range in rule: " +
            rule.ToString());
      }
    }

    // Safety / range restriction: every variable in the head, in negated
    // atoms, and in constraints must be bound by a positive body atom —
    // except variables definable by an equality constraint whose other
    // side is bound (the frontend emits `p = cityId` bindings, Fig. 3c)
    // and the aggregate result variable.
    std::set<std::string> bound = rule.PositiveBodyVars();
    // Fixpoint over binding equalities v = <expr over bound vars>.
    bool changed = true;
    while (changed) {
      changed = false;
      for (const Constraint& c : rule.constraints) {
        if (c.op != CmpOp::kEq) continue;
        auto try_bind = [&](const Term& target, const Term& source) {
          if (!target.is_var() || bound.count(target.var) > 0) return;
          std::set<std::string> src_vars;
          source.CollectVars(&src_vars);
          for (const std::string& v : src_vars) {
            if (bound.count(v) == 0) return;
          }
          bound.insert(target.var);
          changed = true;
        };
        try_bind(c.lhs, c.rhs);
        try_bind(c.rhs, c.lhs);
      }
    }
    if (rule.agg.has_value() &&
        rule.head.args[static_cast<size_t>(rule.agg_result_pos)].is_var()) {
      bound.insert(rule.head.args[static_cast<size_t>(rule.agg_result_pos)].var);
    }
    std::set<std::string> required;
    rule.head.CollectVars(&required);
    for (const Atom& atom : rule.body) {
      if (atom.negated) atom.CollectVars(&required);
    }
    for (const Constraint& c : rule.constraints) c.CollectVars(&required);
    for (const std::string& v : required) {
      if (bound.count(v) == 0) {
        return Status::InvalidArgument("unsafe rule, unbound variable '" + v +
                                       "': " + rule.ToString());
      }
    }
  }
  return Status::OK();
}

std::string Program::ToString() const {
  std::ostringstream os;
  for (const RelationDecl& d : decls) {
    os << d.ToString() << "\n";
    if (d.is_input) os << ".input " << d.name << "\n";
  }
  os << "\n";
  for (const Rule& rule : rules) os << rule.ToString() << "\n";
  for (const RelationDecl& d : decls) {
    if (d.is_output) os << ".output " << d.name << "\n";
  }
  return os.str();
}

std::string VarGen::Fresh(const std::string& prefix) {
  while (true) {
    std::string candidate =
        counter_ == 0 ? prefix : prefix + "_" + std::to_string(counter_);
    ++counter_;
    if (reserved_.insert(candidate).second) return candidate;
  }
}

}  // namespace raqlet::dlir
