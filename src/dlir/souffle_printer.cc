#include "dlir/souffle_printer.h"

#include <sstream>

#include "common/str_util.h"

namespace raqlet::dlir {

namespace {

const char* SouffleType(ValueType type) {
  switch (type) {
    case ValueType::kNumber:
      return "number";
    case ValueType::kFloat:
      return "float";
    case ValueType::kSymbol:
      return "symbol";
    case ValueType::kBool:
      return "number";  // Soufflé has no bool; 0/1 encoding
    case ValueType::kNull:
      return "number";
  }
  return "number";
}

std::string RenderRule(const Rule& rule) {
  if (!rule.agg.has_value()) return rule.ToString();

  // Soufflé form:  Head(g, res) :- Outer, res = func arg : { body }.
  // Our DLIR aggregates group by the non-aggregate head arguments, whose
  // bindings come from the same body; Soufflé expresses this by repeating
  // the body inside the aggregate context. We render the common pattern
  // where the body both binds the group-by variables and feeds the
  // aggregate.
  std::vector<std::string> head_args;
  std::string result_var = "agg_result";
  for (size_t i = 0; i < rule.head.args.size(); ++i) {
    if (static_cast<int>(i) == rule.agg_result_pos) {
      head_args.push_back(result_var);
    } else {
      head_args.push_back(rule.head.args[i].ToString());
    }
  }
  std::vector<std::string> body_parts;
  for (const Atom& atom : rule.body) body_parts.push_back(atom.ToString());
  for (const Constraint& c : rule.constraints) {
    body_parts.push_back(c.ToString());
  }
  std::string body_text = Join(body_parts, ", ");

  std::string func = AggFuncToString(rule.agg->func);
  if (func == std::string("avg")) func = "mean";
  std::string agg_expr = result_var + " = " + func + " ";
  if (rule.agg->func != AggFunc::kCount) {
    agg_expr += rule.agg->arg.ToString() + " ";
  }
  agg_expr += ": { " + body_text + " }";

  std::ostringstream os;
  os << rule.head.predicate << "(" << Join(head_args, ", ") << ") :- "
     << body_text << ", " << agg_expr << ".";
  return os.str();
}

}  // namespace

std::string ToSouffle(const Program& program, const SouffleOptions& options) {
  std::ostringstream os;
  for (const RelationDecl& decl : program.decls) {
    std::vector<std::string> cols;
    for (const Column& c : decl.columns) {
      cols.push_back(c.name + ": " + SouffleType(c.type));
    }
    if (decl.lattice != LatticeKind::kNone && options.emit_comments) {
      os << "// lattice relation: last column merged with "
         << (decl.lattice == LatticeKind::kMin ? "min" : "max")
         << " (Soufflé equivalent: subsumptive clause below)\n";
    }
    os << ".decl " << decl.name << "(" << Join(cols, ", ") << ")\n";
    if (decl.lattice != LatticeKind::kNone) {
      // Soufflé 2.x subsumption clause keeping only the min/max last column
      // per group of leading columns.
      std::vector<std::string> vars1;
      std::vector<std::string> vars2;
      for (size_t i = 0; i < decl.columns.size(); ++i) {
        if (i + 1 == decl.columns.size()) {
          vars1.push_back("v1");
          vars2.push_back("v2");
        } else {
          std::string shared = "k" + std::to_string(i);
          vars1.push_back(shared);
          vars2.push_back(shared);
        }
      }
      const char* cmp = decl.lattice == LatticeKind::kMin ? "<=" : ">=";
      os << decl.name << "(" << Join(vars1, ", ") << ") <= " << decl.name
         << "(" << Join(vars2, ", ") << ") :- v1 " << cmp << " v2.\n";
    }
    if (decl.is_input && options.emit_io_directives) {
      os << ".input " << decl.name << "\n";
    }
  }
  os << "\n";
  for (const Rule& rule : program.rules) {
    os << RenderRule(rule) << "\n";
  }
  for (const RelationDecl& decl : program.decls) {
    if (decl.is_output && options.emit_io_directives) {
      os << ".output " << decl.name << "\n";
    }
  }
  return os.str();
}

}  // namespace raqlet::dlir
