#ifndef RAQLET_DLIR_EXPLAIN_H_
#define RAQLET_DLIR_EXPLAIN_H_

// Procedural lowering of DLIR (§5 "Code Generation"): renders the
// bottom-up evaluation of a program as an explicit loop-nest IR in the
// spirit of Soufflé's RAM and the functional-collection IRs the paper
// cites [35, 37] — strata, per-rule join loop nests with index probes,
// and semi-naive delta loops. This is both an EXPLAIN facility and the
// textual form a JIT backend would consume.
//
//   STRATUM 1 (recursive: tc)
//     INIT
//       FOR (x, y) IN edge
//         INSERT (x, y) INTO tc
//     LOOP UNTIL FIXPOINT
//       FOR (x, z) IN DELTA tc
//         FOR (z, y) IN edge INDEX ON (col0 = z)
//           INSERT (x, y) INTO tc

#include <string>

#include "common/status.h"
#include "dlir/program.h"
#include "obs/metrics.h"

namespace raqlet::dlir {

struct ExplainOptions {
  /// Show the semi-naive delta variants (one per recursive body atom);
  /// when false, recursive rules are shown once with the full relation.
  bool seminaive = true;
};

/// Renders the procedural evaluation plan for `program`. Fails if the
/// program does not validate or is unstratifiable.
Result<std::string> ExplainProgram(const Program& program,
                                   const ExplainOptions& options = {});

/// EXPLAIN ANALYZE: the same plan annotated with the runtime counters a
/// prior execution recorded into `metrics` — per-stratum fixpoint rounds,
/// rule evaluations, tuples considered/inserted and per-round delta sizes
/// (matched to strata by topological SCC index), followed by the full
/// QueryMetrics report (phases, SQL/graph operator counters, memory).
/// Strata without a recorded slot render unannotated, so the plan of one
/// engine can be shown alongside another engine's metrics.
Result<std::string> ExplainAnalyzeProgram(const Program& program,
                                          const obs::QueryMetrics& metrics,
                                          const ExplainOptions& options = {});

}  // namespace raqlet::dlir

#endif  // RAQLET_DLIR_EXPLAIN_H_
