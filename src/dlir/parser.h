#ifndef RAQLET_DLIR_PARSER_H_
#define RAQLET_DLIR_PARSER_H_

// Parser for the Soufflé-inspired concrete syntax of DLIR. This doubles as
// Raqlet's Datalog frontend (Fig. 1: "Soufflé Datalog" parser).
//
// Supported grammar (a pragmatic Soufflé subset plus Raqlet extensions):
//
//   program    := (directive | rule)*
//   directive  := ".decl" NAME "(" col ("," col)* ")" lattice?
//               | ".input" NAME | ".output" NAME
//   col        := NAME ":" ("number" | "symbol" | "float" | "bool")
//   lattice    := "@min" | "@max"            // Raqlet lattice extension
//   rule       := atom ( ":-" literal ("," literal)* )? "."
//   literal    := "!"? atom | term cmp term
//   atom       := NAME "(" headterm ("," headterm)* ")"
//   headterm   := term | aggfunc "(" term? ")"   // aggregates, head only
//   term       := additive arithmetic over vars, numbers, strings, "_"
//   cmp        := "=" | "!=" | "<" | "<=" | ">" | ">="

#include <string>

#include "common/status.h"
#include "dlir/program.h"

namespace raqlet::dlir {

/// Parses `source` into a Program. Error messages carry 1-based line and
/// column positions.
Result<Program> ParseProgram(const std::string& source);

}  // namespace raqlet::dlir

#endif  // RAQLET_DLIR_PARSER_H_
