#include "dlir/parser.h"

#include <cctype>
#include <optional>
#include <vector>

#include "common/str_util.h"

namespace raqlet::dlir {

namespace {

enum class TokKind {
  kIdent,
  kNumber,
  kFloat,
  kString,
  kPunct,  // one of ( ) , . : ! = < > + - * / % @ { } _ and ":-" "!=" "<=" ">="
  kEof,
};

struct Token {
  TokKind kind = TokKind::kEof;
  std::string text;
  int line = 1;
  int col = 1;
};

class Lexer {
 public:
  explicit Lexer(const std::string& source) : src_(source) {}

  Result<std::vector<Token>> Tokenize() {
    std::vector<Token> out;
    while (true) {
      SkipWhitespaceAndComments();
      if (pos_ >= src_.size()) {
        out.push_back(Token{TokKind::kEof, "", line_, col_});
        return out;
      }
      int line = line_;
      int col = col_;
      char c = src_[pos_];
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        std::string ident;
        while (pos_ < src_.size() &&
               (std::isalnum(static_cast<unsigned char>(src_[pos_])) ||
                src_[pos_] == '_')) {
          ident.push_back(Take());
        }
        if (ident == "_") {
          out.push_back(Token{TokKind::kPunct, "_", line, col});
        } else {
          out.push_back(Token{TokKind::kIdent, ident, line, col});
        }
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c))) {
        std::string num;
        bool is_float = false;
        while (pos_ < src_.size() &&
               (std::isdigit(static_cast<unsigned char>(src_[pos_])) ||
                src_[pos_] == '.')) {
          // A '.' only continues the number if a digit follows (else it is
          // the rule terminator).
          if (src_[pos_] == '.') {
            if (pos_ + 1 >= src_.size() ||
                !std::isdigit(static_cast<unsigned char>(src_[pos_ + 1]))) {
              break;
            }
            is_float = true;
          }
          num.push_back(Take());
        }
        out.push_back(
            Token{is_float ? TokKind::kFloat : TokKind::kNumber, num, line, col});
        continue;
      }
      if (c == '"') {
        Take();
        std::string text;
        while (pos_ < src_.size() && src_[pos_] != '"') {
          if (src_[pos_] == '\\' && pos_ + 1 < src_.size()) {
            Take();
            char esc = Take();
            if (esc == 'n') {
              text.push_back('\n');
            } else if (esc == 't') {
              text.push_back('\t');
            } else {
              text.push_back(esc);
            }
            continue;
          }
          text.push_back(Take());
        }
        if (pos_ >= src_.size()) {
          return Status::ParseError("unterminated string at line " +
                                    std::to_string(line));
        }
        Take();  // closing quote
        out.push_back(Token{TokKind::kString, text, line, col});
        continue;
      }
      // Multi-char punctuation first.
      static const char* kTwoChar[] = {":-", "!=", "<=", ">="};
      bool matched = false;
      for (const char* two : kTwoChar) {
        if (src_.compare(pos_, 2, two) == 0) {
          Take();
          Take();
          out.push_back(Token{TokKind::kPunct, two, line, col});
          matched = true;
          break;
        }
      }
      if (matched) continue;
      static const std::string kSingles = "().,:!=<>+-*/%@{}";
      if (kSingles.find(c) != std::string::npos) {
        Take();
        out.push_back(Token{TokKind::kPunct, std::string(1, c), line, col});
        continue;
      }
      return Status::ParseError("unexpected character '" + std::string(1, c) +
                                "' at line " + std::to_string(line) +
                                ", col " + std::to_string(col));
    }
  }

 private:
  char Take() {
    char c = src_[pos_++];
    if (c == '\n') {
      ++line_;
      col_ = 1;
    } else {
      ++col_;
    }
    return c;
  }

  void SkipWhitespaceAndComments() {
    while (pos_ < src_.size()) {
      char c = src_[pos_];
      if (std::isspace(static_cast<unsigned char>(c))) {
        Take();
      } else if (c == '/' && pos_ + 1 < src_.size() && src_[pos_ + 1] == '/') {
        while (pos_ < src_.size() && src_[pos_] != '\n') Take();
      } else if (c == '/' && pos_ + 1 < src_.size() && src_[pos_ + 1] == '*') {
        Take();
        Take();
        while (pos_ + 1 < src_.size() &&
               !(src_[pos_] == '*' && src_[pos_ + 1] == '/')) {
          Take();
        }
        if (pos_ + 1 < src_.size()) {
          Take();
          Take();
        }
      } else {
        break;
      }
    }
  }

  const std::string& src_;
  size_t pos_ = 0;
  int line_ = 1;
  int col_ = 1;
};

std::optional<AggFunc> AggFuncFromName(const std::string& name) {
  if (name == "count") return AggFunc::kCount;
  if (name == "sum") return AggFunc::kSum;
  if (name == "min") return AggFunc::kMin;
  if (name == "max") return AggFunc::kMax;
  if (name == "avg" || name == "mean") return AggFunc::kAvg;
  return std::nullopt;
}

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<Program> Parse() {
    Program program;
    while (!AtEof()) {
      if (PeekPunct(".")) {
        RAQLET_RETURN_IF_ERROR(ParseDirective(&program));
      } else {
        RAQLET_ASSIGN_OR_RETURN(Rule rule, ParseRule());
        program.rules.push_back(std::move(rule));
      }
    }
    return program;
  }

 private:
  const Token& Peek(int ahead = 0) const {
    size_t i = pos_ + static_cast<size_t>(ahead);
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  bool AtEof() const { return Peek().kind == TokKind::kEof; }
  const Token& Advance() { return tokens_[pos_++]; }

  bool PeekPunct(const std::string& text, int ahead = 0) const {
    return Peek(ahead).kind == TokKind::kPunct && Peek(ahead).text == text;
  }

  bool MatchPunct(const std::string& text) {
    if (PeekPunct(text)) {
      Advance();
      return true;
    }
    return false;
  }

  Status ExpectPunct(const std::string& text) {
    if (MatchPunct(text)) return Status::OK();
    return Errorf("expected '" + text + "'");
  }

  Result<std::string> ExpectIdent() {
    if (Peek().kind != TokKind::kIdent) return Errorf("expected identifier");
    return Advance().text;
  }

  Status Errorf(const std::string& what) const {
    const Token& t = Peek();
    return Status::ParseError(what + " at line " + std::to_string(t.line) +
                              ", col " + std::to_string(t.col) + " (got '" +
                              (t.kind == TokKind::kEof ? "<eof>" : t.text) +
                              "')");
  }

  Status ParseDirective(Program* program) {
    RAQLET_RETURN_IF_ERROR(ExpectPunct("."));
    RAQLET_ASSIGN_OR_RETURN(std::string word, ExpectIdent());
    if (word == "decl") {
      RelationDecl decl;
      RAQLET_ASSIGN_OR_RETURN(decl.name, ExpectIdent());
      RAQLET_RETURN_IF_ERROR(ExpectPunct("("));
      while (true) {
        Column col;
        RAQLET_ASSIGN_OR_RETURN(col.name, ExpectIdent());
        RAQLET_RETURN_IF_ERROR(ExpectPunct(":"));
        RAQLET_ASSIGN_OR_RETURN(std::string type_name, ExpectIdent());
        if (type_name == "number" || type_name == "unsigned") {
          col.type = ValueType::kNumber;
        } else if (type_name == "symbol") {
          col.type = ValueType::kSymbol;
        } else if (type_name == "float") {
          col.type = ValueType::kFloat;
        } else if (type_name == "bool") {
          col.type = ValueType::kBool;
        } else {
          return Errorf("unknown column type '" + type_name + "'");
        }
        decl.columns.push_back(std::move(col));
        if (!MatchPunct(",")) break;
      }
      RAQLET_RETURN_IF_ERROR(ExpectPunct(")"));
      if (MatchPunct("@")) {
        RAQLET_ASSIGN_OR_RETURN(std::string lattice, ExpectIdent());
        if (lattice == "min") {
          decl.lattice = LatticeKind::kMin;
        } else if (lattice == "max") {
          decl.lattice = LatticeKind::kMax;
        } else {
          return Errorf("unknown lattice '" + lattice + "'");
        }
      }
      program->decls.push_back(std::move(decl));
      return Status::OK();
    }
    if (word == "input" || word == "output") {
      RAQLET_ASSIGN_OR_RETURN(std::string name, ExpectIdent());
      RelationDecl* decl = program->FindDecl(name);
      if (decl == nullptr) {
        return Errorf("." + word + " of undeclared relation '" + name + "'");
      }
      if (word == "input") {
        decl->is_input = true;
      } else {
        decl->is_output = true;
      }
      return Status::OK();
    }
    return Errorf("unknown directive '." + word + "'");
  }

  Result<Rule> ParseRule() {
    Rule rule;
    RAQLET_RETURN_IF_ERROR(ParseHeadAtom(&rule));
    if (MatchPunct(".")) return rule;  // fact
    RAQLET_RETURN_IF_ERROR(ExpectPunct(":-"));
    while (true) {
      RAQLET_RETURN_IF_ERROR(ParseLiteral(&rule));
      if (!MatchPunct(",")) break;
    }
    RAQLET_RETURN_IF_ERROR(ExpectPunct("."));
    return rule;
  }

  // Head atoms may contain aggregate expressions: Head(x, count()).
  Status ParseHeadAtom(Rule* rule) {
    RAQLET_ASSIGN_OR_RETURN(rule->head.predicate, ExpectIdent());
    RAQLET_RETURN_IF_ERROR(ExpectPunct("("));
    while (true) {
      // Aggregate? `func ( term? )` where func is an agg name.
      if (Peek().kind == TokKind::kIdent && PeekPunct("(", 1)) {
        std::optional<AggFunc> func = AggFuncFromName(Peek().text);
        if (func.has_value()) {
          if (rule->agg.has_value()) {
            return Errorf("multiple aggregates in one head");
          }
          Advance();  // func name
          RAQLET_RETURN_IF_ERROR(ExpectPunct("("));
          Aggregate agg;
          agg.func = *func;
          if (!PeekPunct(")")) {
            RAQLET_ASSIGN_OR_RETURN(agg.arg, ParseTerm());
          } else if (*func != AggFunc::kCount) {
            return Errorf("aggregate " +
                          std::string(AggFuncToString(*func)) +
                          " requires an argument");
          }
          RAQLET_RETURN_IF_ERROR(ExpectPunct(")"));
          rule->agg = agg;
          rule->agg_result_pos = static_cast<int>(rule->head.args.size());
          // The result slot is a fresh variable named after the function.
          rule->head.args.push_back(
              Term::Var("$" + std::string(AggFuncToString(*func))));
          if (!MatchPunct(",")) break;
          continue;
        }
      }
      RAQLET_ASSIGN_OR_RETURN(Term term, ParseTerm());
      rule->head.args.push_back(std::move(term));
      if (!MatchPunct(",")) break;
    }
    return ExpectPunct(")");
  }

  Status ParseLiteral(Rule* rule) {
    if (MatchPunct("!")) {
      RAQLET_ASSIGN_OR_RETURN(Atom atom, ParseAtom());
      atom.negated = true;
      rule->body.push_back(std::move(atom));
      return Status::OK();
    }
    // An atom starts with IDENT '(' — but so does an arithmetic call; only
    // atoms are supported at literal position, so IDENT '(' is
    // unambiguous. Everything else is a constraint.
    if (Peek().kind == TokKind::kIdent && PeekPunct("(", 1)) {
      RAQLET_ASSIGN_OR_RETURN(Atom atom, ParseAtom());
      rule->body.push_back(std::move(atom));
      return Status::OK();
    }
    Constraint c;
    RAQLET_ASSIGN_OR_RETURN(c.lhs, ParseTerm());
    if (MatchPunct("=")) {
      c.op = CmpOp::kEq;
    } else if (MatchPunct("!=")) {
      c.op = CmpOp::kNe;
    } else if (MatchPunct("<=")) {
      c.op = CmpOp::kLe;
    } else if (MatchPunct(">=")) {
      c.op = CmpOp::kGe;
    } else if (MatchPunct("<")) {
      c.op = CmpOp::kLt;
    } else if (MatchPunct(">")) {
      c.op = CmpOp::kGt;
    } else {
      return Errorf("expected comparison operator");
    }
    RAQLET_ASSIGN_OR_RETURN(c.rhs, ParseTerm());
    rule->constraints.push_back(std::move(c));
    return Status::OK();
  }

  Result<Atom> ParseAtom() {
    Atom atom;
    RAQLET_ASSIGN_OR_RETURN(atom.predicate, ExpectIdent());
    RAQLET_RETURN_IF_ERROR(ExpectPunct("("));
    if (!PeekPunct(")")) {
      while (true) {
        RAQLET_ASSIGN_OR_RETURN(Term term, ParseTerm());
        atom.args.push_back(std::move(term));
        if (!MatchPunct(",")) break;
      }
    }
    RAQLET_RETURN_IF_ERROR(ExpectPunct(")"));
    return atom;
  }

  Result<Term> ParseTerm() { return ParseAdditive(); }

  Result<Term> ParseAdditive() {
    RAQLET_ASSIGN_OR_RETURN(Term lhs, ParseMultiplicative());
    while (PeekPunct("+") || PeekPunct("-")) {
      ArithOp op = Peek().text == "+" ? ArithOp::kAdd : ArithOp::kSub;
      Advance();
      RAQLET_ASSIGN_OR_RETURN(Term rhs, ParseMultiplicative());
      lhs = Term::Binary(op, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<Term> ParseMultiplicative() {
    RAQLET_ASSIGN_OR_RETURN(Term lhs, ParsePrimary());
    while (PeekPunct("*") || PeekPunct("/") || PeekPunct("%")) {
      ArithOp op = Peek().text == "*"   ? ArithOp::kMul
                   : Peek().text == "/" ? ArithOp::kDiv
                                        : ArithOp::kMod;
      Advance();
      RAQLET_ASSIGN_OR_RETURN(Term rhs, ParsePrimary());
      lhs = Term::Binary(op, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<Term> ParsePrimary() {
    const Token& t = Peek();
    switch (t.kind) {
      case TokKind::kNumber: {
        Advance();
        return Term::Num(std::stoll(t.text));
      }
      case TokKind::kFloat: {
        Advance();
        return Term::Const(Constant::Float(std::stod(t.text)));
      }
      case TokKind::kString: {
        Advance();
        return Term::Str(t.text);
      }
      case TokKind::kIdent: {
        std::string name = Advance().text;
        if (name == "true") return Term::Const(Constant::Bool(true));
        if (name == "false") return Term::Const(Constant::Bool(false));
        if (name == "nil") return Term::Const(Constant::Null());
        return Term::Var(std::move(name));
      }
      case TokKind::kPunct:
        if (t.text == "_") {
          Advance();
          return Term::Wildcard();
        }
        if (t.text == "(") {
          Advance();
          RAQLET_ASSIGN_OR_RETURN(Term inner, ParseTerm());
          RAQLET_RETURN_IF_ERROR(ExpectPunct(")"));
          return inner;
        }
        if (t.text == "-") {
          Advance();
          RAQLET_ASSIGN_OR_RETURN(Term inner, ParsePrimary());
          return Term::Binary(ArithOp::kSub, Term::Num(0), std::move(inner));
        }
        break;
      case TokKind::kEof:
        break;
    }
    return Errorf("expected term");
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<Program> ParseProgram(const std::string& source) {
  Lexer lexer(source);
  RAQLET_ASSIGN_OR_RETURN(std::vector<Token> tokens, lexer.Tokenize());
  Parser parser(std::move(tokens));
  return parser.Parse();
}

}  // namespace raqlet::dlir
