#include "dlir/explain.h"

#include <set>
#include <sstream>

#include "analysis/analyses.h"
#include "analysis/dependency_graph.h"
#include "common/str_util.h"

namespace raqlet::dlir {

namespace {

std::string TermText(const Term& term) { return term.ToString(); }

// Renders one rule as a loop nest. `delta_atom` (index into positive
// atoms) replaces that atom's relation with DELTA <name>; -1 = none.
// Join order: greedy most-bound-first, mirroring the engine's planner.
void RenderRule(const Rule& rule, int delta_atom, int indent,
                std::ostringstream* os) {
  std::string pad(static_cast<size_t>(indent), ' ');

  std::vector<const Atom*> positive;
  std::vector<const Atom*> negated;
  for (const Atom& atom : rule.body) {
    (atom.negated ? negated : positive).push_back(&atom);
  }

  std::set<std::string> bound;
  std::vector<bool> done(positive.size(), false);
  std::vector<bool> constraint_done(rule.constraints.size(), false);
  int depth = 0;

  auto emit_ready_constraints = [&]() {
    bool changed = true;
    while (changed) {
      changed = false;
      for (size_t i = 0; i < rule.constraints.size(); ++i) {
        if (constraint_done[i]) continue;
        const Constraint& c = rule.constraints[i];
        std::set<std::string> vars;
        c.CollectVars(&vars);
        bool lhs_def = c.op == CmpOp::kEq && c.lhs.is_var() &&
                       bound.count(c.lhs.var) == 0;
        bool rhs_def = c.op == CmpOp::kEq && c.rhs.is_var() &&
                       bound.count(c.rhs.var) == 0;
        size_t unbound = 0;
        for (const std::string& v : vars) {
          if (bound.count(v) == 0) ++unbound;
        }
        if (unbound == 0) {
          *os << pad << std::string(static_cast<size_t>(depth) * 2, ' ')
              << "IF " << c.ToString() << "\n";
          constraint_done[i] = true;
          changed = true;
        } else if (unbound == 1 && (lhs_def || rhs_def)) {
          const Term& def = lhs_def ? c.lhs : c.rhs;
          const Term& src = lhs_def ? c.rhs : c.lhs;
          std::set<std::string> src_vars;
          src.CollectVars(&src_vars);
          bool src_bound = true;
          for (const std::string& v : src_vars) {
            if (bound.count(v) == 0) src_bound = false;
          }
          if (!src_bound) continue;
          *os << pad << std::string(static_cast<size_t>(depth) * 2, ' ')
              << "LET " << def.var << " = " << src.ToString() << "\n";
          bound.insert(def.var);
          constraint_done[i] = true;
          changed = true;
        }
      }
    }
  };

  emit_ready_constraints();
  for (size_t n = 0; n < positive.size(); ++n) {
    // Pick the next atom: delta atom first, then most bound arguments.
    int best = -1;
    int best_score = -1;
    for (size_t i = 0; i < positive.size(); ++i) {
      if (done[i]) continue;
      if (delta_atom >= 0 && static_cast<size_t>(delta_atom) < positive.size() &&
          !done[static_cast<size_t>(delta_atom)]) {
        best = delta_atom;
        break;
      }
      int score = 0;
      for (const Term& arg : positive[i]->args) {
        if (arg.is_const()) {
          ++score;
        } else if (arg.is_var() && bound.count(arg.var) > 0) {
          ++score;
        }
      }
      if (score > best_score) {
        best = static_cast<int>(i);
        best_score = score;
      }
    }
    const Atom& atom = *positive[static_cast<size_t>(best)];
    done[static_cast<size_t>(best)] = true;

    // Probe columns: already-bound positions.
    std::vector<std::string> probes;
    std::vector<std::string> binds;
    for (size_t i = 0; i < atom.args.size(); ++i) {
      const Term& arg = atom.args[i];
      if (arg.is_wildcard()) continue;
      bool is_bound = arg.is_const() ||
                      (arg.is_var() && bound.count(arg.var) > 0) ||
                      arg.kind == TermKind::kBinary;
      if (is_bound) {
        probes.push_back("col" + std::to_string(i) + " = " + TermText(arg));
      }
    }
    std::vector<std::string> shape;
    for (const Term& arg : atom.args) shape.push_back(TermText(arg));

    *os << pad << std::string(static_cast<size_t>(depth) * 2, ' ') << "FOR ("
        << Join(shape, ", ") << ") IN "
        << (delta_atom == best ? "DELTA " : "") << atom.predicate;
    if (!probes.empty()) *os << " INDEX ON (" << Join(probes, ", ") << ")";
    *os << "\n";
    ++depth;
    atom.CollectVars(&bound);
    emit_ready_constraints();
    (void)binds;
  }

  for (const Atom* atom : negated) {
    *os << pad << std::string(static_cast<size_t>(depth) * 2, ' ')
        << "IF NOT EXISTS " << atom->ToString().substr(1) << "\n";
  }

  std::string pad2 = pad + std::string(static_cast<size_t>(depth) * 2, ' ');
  if (rule.agg.has_value()) {
    std::vector<std::string> groups;
    for (size_t i = 0; i < rule.head.args.size(); ++i) {
      if (static_cast<int>(i) == rule.agg_result_pos) continue;
      groups.push_back(rule.head.args[i].ToString());
    }
    *os << pad2 << "AGGREGATE " << rule.agg->ToString() << " GROUP BY ("
        << Join(groups, ", ") << ") INTO " << rule.head.predicate << "\n";
  } else {
    std::vector<std::string> head_args;
    for (const Term& arg : rule.head.args) head_args.push_back(TermText(arg));
    *os << pad2 << "INSERT (" << Join(head_args, ", ") << ") INTO "
        << rule.head.predicate << "\n";
  }
}

// Shared body of ExplainProgram / ExplainAnalyzeProgram; `metrics`, when
// non-null, annotates each stratum with the SccMetrics slot of the same
// topological SCC index.
Result<std::string> Explain(const Program& program,
                            const ExplainOptions& options,
                            const obs::QueryMetrics* metrics) {
  RAQLET_RETURN_IF_ERROR(program.Validate());
  analysis::DependencyGraph graph = analysis::DependencyGraph::Build(program);
  analysis::StratificationResult strat =
      analysis::AnalyzeStratification(program, graph);
  if (!strat.stratified) {
    return Status::Unsupported("cannot explain an unstratifiable program: " +
                               strat.violation);
  }

  std::ostringstream os;
  const auto& sccs = graph.SccsInTopologicalOrder();
  std::set<std::string> idbs = program.IdbPredicates();
  int stratum_no = 0;
  for (size_t s = 0; s < sccs.size(); ++s) {
    // Only emit strata that actually compute something.
    bool has_rules = false;
    for (const std::string& pred : sccs[s]) {
      if (idbs.count(pred) > 0) has_rules = true;
    }
    if (!has_rules) continue;
    bool recursive = graph.IsRecursiveScc(static_cast<int>(s));

    // Runtime annotation: the SccMetrics slot of the same topological SCC
    // index (strata skipped above have slots too — indexes stay aligned).
    const obs::SccMetrics* m =
        metrics != nullptr && s < metrics->datalog.sccs.size()
            ? &metrics->datalog.sccs[s]
            : nullptr;

    os << "STRATUM " << stratum_no++ << " ("
       << (recursive ? "recursive: " : "non-recursive: ")
       << Join(sccs[s], ", ") << ")";
    if (m != nullptr) {
      os << "  [actual rounds=" << m->rounds
         << " rule_evals=" << m->rule_evaluations
         << " considered=" << m->tuples_considered
         << " inserted=" << m->tuples_inserted << "]";
    }
    os << "\n";
    if (m != nullptr && !m->round_delta_sizes.empty()) {
      os << "  ACTUAL DELTAS";
      for (size_t r = 0; r < m->round_delta_sizes.size(); ++r) {
        os << (r == 0 ? " init=" : " r" + std::to_string(r) + "=")
           << m->round_delta_sizes[r];
      }
      os << "\n";
    }

    std::set<std::string> scc_set(sccs[s].begin(), sccs[s].end());
    if (!recursive) {
      for (const Rule& rule : program.rules) {
        if (scc_set.count(rule.head.predicate) == 0) continue;
        RenderRule(rule, -1, 2, &os);
      }
      continue;
    }
    os << "  INIT\n";
    for (const Rule& rule : program.rules) {
      if (scc_set.count(rule.head.predicate) == 0) continue;
      bool has_recursive_atom = false;
      for (const Atom& atom : rule.body) {
        if (!atom.negated && scc_set.count(atom.predicate) > 0) {
          has_recursive_atom = true;
        }
      }
      if (!has_recursive_atom) RenderRule(rule, -1, 4, &os);
    }
    os << "  LOOP UNTIL FIXPOINT\n";
    for (const Rule& rule : program.rules) {
      if (scc_set.count(rule.head.predicate) == 0) continue;
      std::vector<int> recursive_atoms;
      int positive_index = 0;
      for (const Atom& atom : rule.body) {
        if (atom.negated) continue;
        if (scc_set.count(atom.predicate) > 0) {
          recursive_atoms.push_back(positive_index);
        }
        ++positive_index;
      }
      if (recursive_atoms.empty()) continue;
      if (options.seminaive) {
        for (int delta : recursive_atoms) RenderRule(rule, delta, 4, &os);
      } else {
        RenderRule(rule, -1, 4, &os);
      }
    }
  }
  return os.str();
}

}  // namespace

Result<std::string> ExplainProgram(const Program& program,
                                   const ExplainOptions& options) {
  return Explain(program, options, nullptr);
}

Result<std::string> ExplainAnalyzeProgram(const Program& program,
                                          const obs::QueryMetrics& metrics,
                                          const ExplainOptions& options) {
  RAQLET_ASSIGN_OR_RETURN(std::string plan,
                          Explain(program, options, &metrics));
  std::ostringstream os;
  os << plan;
  std::string report = metrics.ToString();
  if (!report.empty()) os << "\n" << report;
  return os.str();
}

}  // namespace raqlet::dlir
