#include "ldbc/ldbc.h"

#include <algorithm>
#include <cmath>
#include <random>

namespace raqlet::ldbc {

const char* SnbSchema() {
  return R"(
CREATE GRAPH {
  (personType: Person {id INT, firstName STRING, lastName STRING,
                       gender STRING, birthday INT, creationDate INT,
                       locationIP STRING, browserUsed STRING,
                       speaks STRING, email STRING}),
  (cityType: City {id INT, name STRING, url STRING}),
  (countryType: Country {id INT, name STRING, url STRING}),
  (tagType: Tag {id INT, name STRING, url STRING}),
  (forumType: Forum {id INT, title STRING, creationDate INT}),
  (messageType: Message {id INT, content STRING, creationDate INT,
                         browserUsed STRING, locationIP STRING,
                         length INT}),
  (:personType)-[locationType: isLocatedIn {id INT}]->(:cityType),
  (:cityType)-[partType: isPartOf {id INT}]->(:countryType),
  (:personType)-[knowsType: knows {id INT, creationDate INT}]->(:personType),
  (:messageType)-[creatorType: hasCreator {id INT}]->(:personType),
  (:personType)-[likesType: likes {id INT, creationDate INT}]->(:messageType),
  (:forumType)-[memberType: hasMember {id INT, joinDate INT}]->(:personType),
  (:forumType)-[containerType: containerOf {id INT}]->(:messageType),
  (:messageType)-[tagType2: hasTag {id INT}]->(:tagType),
  (:personType)-[interestType: hasInterest {id INT}]->(:tagType)
}
)";
}

int GeneratorOptions::persons() const {
  return std::max(50, static_cast<int>(scale_factor * 1000.0));
}

namespace {

constexpr int64_t kDateBase = 20200101000000;  // pseudo-timestamp base
constexpr int64_t kDateRange = 10000000000;    // spread of creation dates

const char* kFirstNames[] = {"Ada",  "Bob",  "Cyd",  "Dan", "Eve", "Fay",
                             "Gus",  "Hana", "Ivan", "Jia", "Kim", "Leo",
                             "Mona", "Nils", "Omar", "Pia"};
const char* kLastNames[] = {"Lovelace", "Turing", "Hopper",   "Codd",
                            "Tarski",   "Datalog", "Church",  "Curry",
                            "Noether",  "Gödel",   "Dijkstra", "Knuth"};
const char* kBrowsers[] = {"Firefox", "Chrome", "Safari", "Opera"};
const char* kGenders[] = {"female", "male", "nonbinary"};

}  // namespace

Status GenerateSnbData(const schema::DlSchema& dl, Database* db,
                       const GeneratorOptions& options) {
  std::mt19937 rng(options.seed);
  const int persons = options.persons();
  const int cities = std::max(5, persons / 20);
  const int countries = std::max(3, cities / 5);
  const int tags = std::max(10, persons / 10);
  const int forums = std::max(5, persons / 10);
  const int messages = persons * 8;

  std::uniform_int_distribution<int64_t> date(0, kDateRange);
  auto pick = [&](auto& array) {
    std::uniform_int_distribution<size_t> d(0, std::size(array) - 1);
    return std::string(array[d(rng)]);
  };

  int64_t edge_id = 0;

  // Every relation is filled through one InsertBatch call: the generator
  // emits unique rows, so bulk loading skips per-row dedup rehashes.
  std::vector<Tuple> batch;

  RAQLET_ASSIGN_OR_RETURN(Relation * person, db->GetRelation("Person"));
  batch.reserve(static_cast<size_t>(persons));
  for (int i = 1; i <= persons; ++i) {
    batch.push_back({Value::Number(i), db->Str(pick(kFirstNames)),
                     db->Str(pick(kLastNames)), db->Str(pick(kGenders)),
                     Value::Number(19600101 + (rng() % 40) * 10000),
                     Value::Number(kDateBase + date(rng)),
                     db->Str("10.0." + std::to_string(i % 256) + "." +
                             std::to_string(i % 100)),
                     db->Str(pick(kBrowsers)), db->Str("en"),
                     db->Str("p" + std::to_string(i) + "@snb.test")});
  }
  RAQLET_RETURN_IF_ERROR(person->InsertBatch(std::move(batch)).status());
  batch = {};

  RAQLET_ASSIGN_OR_RETURN(Relation * city, db->GetRelation("City"));
  batch.reserve(static_cast<size_t>(cities));
  for (int i = 1; i <= cities; ++i) {
    batch.push_back({Value::Number(i), db->Str("City" + std::to_string(i)),
                     db->Str("url/city/" + std::to_string(i))});
  }
  RAQLET_RETURN_IF_ERROR(city->InsertBatch(std::move(batch)).status());
  batch = {};
  RAQLET_ASSIGN_OR_RETURN(Relation * country, db->GetRelation("Country"));
  batch.reserve(static_cast<size_t>(countries));
  for (int i = 1; i <= countries; ++i) {
    batch.push_back({Value::Number(i), db->Str("Country" + std::to_string(i)),
                     db->Str("url/country/" + std::to_string(i))});
  }
  RAQLET_RETURN_IF_ERROR(country->InsertBatch(std::move(batch)).status());
  batch = {};
  RAQLET_ASSIGN_OR_RETURN(Relation * tag, db->GetRelation("Tag"));
  batch.reserve(static_cast<size_t>(tags));
  for (int i = 1; i <= tags; ++i) {
    batch.push_back({Value::Number(i), db->Str("Tag" + std::to_string(i)),
                     db->Str("url/tag/" + std::to_string(i))});
  }
  RAQLET_RETURN_IF_ERROR(tag->InsertBatch(std::move(batch)).status());
  batch = {};
  RAQLET_ASSIGN_OR_RETURN(Relation * forum, db->GetRelation("Forum"));
  batch.reserve(static_cast<size_t>(forums));
  for (int i = 1; i <= forums; ++i) {
    batch.push_back({Value::Number(i), db->Str("Forum" + std::to_string(i)),
                     Value::Number(kDateBase + date(rng))});
  }
  RAQLET_RETURN_IF_ERROR(forum->InsertBatch(std::move(batch)).status());
  batch = {};
  RAQLET_ASSIGN_OR_RETURN(Relation * message, db->GetRelation("Message"));
  batch.reserve(static_cast<size_t>(messages));
  for (int i = 1; i <= messages; ++i) {
    batch.push_back({Value::Number(i),
                     db->Str("content-" + std::to_string(i % 997)),
                     Value::Number(kDateBase + date(rng)),
                     db->Str(pick(kBrowsers)),
                     db->Str("10.1." + std::to_string(i % 256) + ".1"),
                     Value::Number(10 + static_cast<int64_t>(rng() % 1990))});
  }
  RAQLET_RETURN_IF_ERROR(message->InsertBatch(std::move(batch)).status());
  batch = {};

  // Place hierarchy.
  RAQLET_ASSIGN_OR_RETURN(Relation * located,
                          db->GetRelation("Person_IS_LOCATED_IN_City"));
  std::uniform_int_distribution<int> city_of(1, cities);
  batch.reserve(static_cast<size_t>(persons));
  for (int i = 1; i <= persons; ++i) {
    batch.push_back(
        {Value::Number(i), Value::Number(city_of(rng)), Value::Number(++edge_id)});
  }
  RAQLET_RETURN_IF_ERROR(located->InsertBatch(std::move(batch)).status());
  batch = {};
  RAQLET_ASSIGN_OR_RETURN(Relation * part,
                          db->GetRelation("City_IS_PART_OF_Country"));
  std::uniform_int_distribution<int> country_of(1, countries);
  batch.reserve(static_cast<size_t>(cities));
  for (int i = 1; i <= cities; ++i) {
    batch.push_back({Value::Number(i), Value::Number(country_of(rng)),
                     Value::Number(++edge_id)});
  }
  RAQLET_RETURN_IF_ERROR(part->InsertBatch(std::move(batch)).status());
  batch = {};

  // KNOWS with a heavy-tailed degree distribution (Pareto-ish).
  RAQLET_ASSIGN_OR_RETURN(Relation * knows,
                          db->GetRelation("Person_KNOWS_Person"));
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  std::uniform_int_distribution<int> any_person(1, persons);
  for (int i = 1; i <= persons; ++i) {
    // Pareto(alpha = 1.6) truncated: most persons ~3-6 friends, a few
    // hubs with dozens.
    double u = unit(rng);
    int degree = std::min(
        persons / 2,
        2 + static_cast<int>(3.0 / std::pow(1.0 - u * 0.98, 1.0 / 1.6)) - 3);
    degree = std::max(1, degree);
    for (int k = 0; k < degree; ++k) {
      int other = any_person(rng);
      if (other == i) continue;
      batch.push_back({Value::Number(i), Value::Number(other),
                       Value::Number(++edge_id),
                       Value::Number(kDateBase + date(rng))});
    }
  }
  RAQLET_RETURN_IF_ERROR(knows->InsertBatch(std::move(batch)).status());
  batch = {};

  // Message authorship: each message has exactly one creator.
  RAQLET_ASSIGN_OR_RETURN(Relation * creator,
                          db->GetRelation("Message_HAS_CREATOR_Person"));
  batch.reserve(static_cast<size_t>(messages));
  for (int i = 1; i <= messages; ++i) {
    batch.push_back({Value::Number(i), Value::Number(any_person(rng)),
                     Value::Number(++edge_id)});
  }
  RAQLET_RETURN_IF_ERROR(creator->InsertBatch(std::move(batch)).status());
  batch = {};

  // Likes, membership, containment, tags, interests.
  RAQLET_ASSIGN_OR_RETURN(Relation * likes,
                          db->GetRelation("Person_LIKES_Message"));
  std::uniform_int_distribution<int> any_message(1, messages);
  batch.reserve(static_cast<size_t>(persons) * 4);
  for (int i = 0; i < persons * 4; ++i) {
    batch.push_back({Value::Number(any_person(rng)),
                     Value::Number(any_message(rng)), Value::Number(++edge_id),
                     Value::Number(kDateBase + date(rng))});
  }
  RAQLET_RETURN_IF_ERROR(likes->InsertBatch(std::move(batch)).status());
  batch = {};
  RAQLET_ASSIGN_OR_RETURN(Relation * member,
                          db->GetRelation("Forum_HAS_MEMBER_Person"));
  std::uniform_int_distribution<int> any_forum(1, forums);
  batch.reserve(static_cast<size_t>(persons) * 2);
  for (int i = 0; i < persons * 2; ++i) {
    batch.push_back({Value::Number(any_forum(rng)),
                     Value::Number(any_person(rng)), Value::Number(++edge_id),
                     Value::Number(kDateBase + date(rng))});
  }
  RAQLET_RETURN_IF_ERROR(member->InsertBatch(std::move(batch)).status());
  batch = {};
  RAQLET_ASSIGN_OR_RETURN(Relation * container,
                          db->GetRelation("Forum_CONTAINER_OF_Message"));
  batch.reserve(static_cast<size_t>(messages));
  for (int i = 1; i <= messages; ++i) {
    batch.push_back({Value::Number(any_forum(rng)), Value::Number(i),
                     Value::Number(++edge_id)});
  }
  RAQLET_RETURN_IF_ERROR(container->InsertBatch(std::move(batch)).status());
  batch = {};
  RAQLET_ASSIGN_OR_RETURN(Relation * has_tag,
                          db->GetRelation("Message_HAS_TAG_Tag"));
  std::uniform_int_distribution<int> any_tag(1, tags);
  batch.reserve(static_cast<size_t>(messages));
  for (int i = 1; i <= messages; ++i) {
    batch.push_back({Value::Number(i), Value::Number(any_tag(rng)),
                     Value::Number(++edge_id)});
  }
  RAQLET_RETURN_IF_ERROR(has_tag->InsertBatch(std::move(batch)).status());
  batch = {};
  RAQLET_ASSIGN_OR_RETURN(Relation * interest,
                          db->GetRelation("Person_HAS_INTEREST_Tag"));
  batch.reserve(static_cast<size_t>(persons));
  for (int i = 1; i <= persons; ++i) {
    batch.push_back({Value::Number(i), Value::Number(any_tag(rng)),
                     Value::Number(++edge_id)});
  }
  RAQLET_RETURN_IF_ERROR(interest->InsertBatch(std::move(batch)).status());
  return Status::OK();
}

int64_t SamplePersonId(const GeneratorOptions& options) {
  return 1 + options.persons() / 3;
}

int64_t MidCreationDate() { return kDateBase + kDateRange / 2; }

const char* ShortQuery1() {
  return R"(
MATCH (n:Person {id: $personId})-[:IS_LOCATED_IN]->(p:City)
RETURN DISTINCT
  n.firstName AS firstName,
  n.lastName AS lastName,
  n.birthday AS birthday,
  n.locationIP AS locationIP,
  n.browserUsed AS browserUsed,
  p.id AS cityId,
  n.gender AS gender,
  n.creationDate AS creationDate
)";
}

const char* ComplexQuery2() {
  return R"(
MATCH (p:Person {id: $personId})-[:KNOWS]-(friend:Person)<-[:HAS_CREATOR]-(m:Message)
WHERE m.creationDate <= $maxDate
RETURN DISTINCT
  friend.id AS personId,
  friend.firstName AS personFirstName,
  friend.lastName AS personLastName,
  m.id AS messageId,
  m.content AS messageContent,
  m.creationDate AS messageCreationDate
)";
}

const char* ReachabilityQuery() {
  return R"(
MATCH (p:Person {id: $personId})-[:KNOWS*]->(q:Person)
RETURN DISTINCT q.id AS personId
)";
}

const char* ShortestPathQuery() {
  return R"(
MATCH path = shortestPath((p:Person {id: $personId})-[:KNOWS*]->(q:Person))
RETURN DISTINCT q.id AS personId, length(path) AS distance
)";
}

const char* FriendMessageCounts() {
  return R"(
MATCH (p:Person {id: $personId})-[:KNOWS]-(friend:Person)<-[:HAS_CREATOR]-(m:Message)
WITH friend, count(m) AS messageCount
RETURN DISTINCT friend.id AS personId, messageCount
)";
}

const char* FriendsWithinThreeHops() {
  return R"(
MATCH (p:Person {id: $personId})-[:KNOWS*1..3]->(q:Person)
RETURN DISTINCT q.id AS personId
)";
}

}  // namespace raqlet::ldbc
