#ifndef RAQLET_LDBC_LDBC_H_
#define RAQLET_LDBC_LDBC_H_

// LDBC SNB-like workload substrate (DESIGN.md §2): the schema the paper's
// running example embeds (§3), a deterministic scale-factor data
// generator standing in for the LDBC SNB datasets, and the benchmark
// queries of Table 1 (short query 1, complex query 2) plus the classic
// recursive queries used by the §2 crossover benchmarks.
//
// Simplifications vs. full LDBC SNB (documented per the substitution
// rule): posts and comments merge into a single Message node type, and
// queries follow the paper's normalization (RETURN DISTINCT, no ORDER
// BY/LIMIT).

#include <string>

#include "common/status.h"
#include "dlir/program.h"
#include "schema/dl_schema.h"
#include "storage/database.h"

namespace raqlet::ldbc {

/// PG-Schema text for the SNB-like social network.
const char* SnbSchema();

struct GeneratorOptions {
  /// Rough analogue of the LDBC scale factor: persons = 1000 * sf
  /// (clamped to >= 50). SF10 in the paper maps to sf = 10.
  double scale_factor = 0.1;
  unsigned seed = 42;

  int persons() const;
};

/// Fills `db` (whose EDB relations must already exist, see
/// Compiler::CreateEdbs) with a deterministic social network:
/// power-law-ish KNOWS degrees, ~8 messages per person, likes, forums,
/// tags, and place hierarchy.
Status GenerateSnbData(const schema::DlSchema& dl, Database* db,
                       const GeneratorOptions& options = {});

/// Returns a person id guaranteed to exist for the given options (used as
/// the $personId benchmark parameter).
int64_t SamplePersonId(const GeneratorOptions& options);

/// A creationDate cutoff that selects roughly half of all messages.
int64_t MidCreationDate();

// ---- Table 1 queries (Cypher, parameterized with $personId/$maxDate) ----

/// LDBC short query 1 (simplified per §3): profile of a person plus their
/// city.
const char* ShortQuery1();

/// LDBC complex query 2 (simplified per §3): recent messages of friends.
const char* ComplexQuery2();

// ---- classic recursive queries (§2 crossover benchmarks) ----

/// All persons transitively reachable over KNOWS from $personId.
const char* ReachabilityQuery();

/// Shortest KNOWS path lengths from $personId to every reachable person.
const char* ShortestPathQuery();

/// Friends-of-friends within 1..3 hops.
const char* FriendsWithinThreeHops();

/// Per-friend message counts (WITH-aggregation pipeline, IC-style).
const char* FriendMessageCounts();

}  // namespace raqlet::ldbc

#endif  // RAQLET_LDBC_LDBC_H_
