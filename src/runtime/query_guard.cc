#include "runtime/query_guard.h"

#include <string>

namespace raqlet::runtime {

namespace {

Status StatusForTrip(StatusCode code, size_t rows, size_t max_rows,
                     size_t bytes, size_t max_bytes) {
  switch (code) {
    case StatusCode::kCancelled:
      return Status::Cancelled("query cancelled by caller");
    case StatusCode::kDeadlineExceeded:
      return Status::DeadlineExceeded("query deadline exceeded");
    case StatusCode::kResourceExhausted: {
      std::string msg = "query budget exceeded:";
      if (max_rows > 0 && rows > max_rows) {
        msg += " " + std::to_string(rows) + " rows derived (budget " +
               std::to_string(max_rows) + ")";
      }
      if (max_bytes > 0 && bytes > max_bytes) {
        msg += " " + std::to_string(bytes) + " bytes tracked (budget " +
               std::to_string(max_bytes) + ")";
      }
      return Status::ResourceExhausted(std::move(msg));
    }
    default:
      // Unreachable: Trip() only records the three causes above.
      return Status::Internal("query guard tripped with unexpected code");
  }
}

}  // namespace

Status QueryGuard::TripStatus() const {
  int code = tripped_.load(std::memory_order_relaxed);
  if (code == 0) return Status::OK();
  return StatusForTrip(static_cast<StatusCode>(code), rows(), max_rows_,
                       bytes(), max_bytes_);
}

Status QueryGuard::CheckSlow() const {
  int code = tripped_.load(std::memory_order_relaxed);
  if (code != 0) {
    return StatusForTrip(static_cast<StatusCode>(code), rows(), max_rows_,
                         bytes(), max_bytes_);
  }
  if (has_deadline_ && std::chrono::steady_clock::now() >= deadline_) {
    Trip(StatusCode::kDeadlineExceeded);
    return TripStatus();
  }
  return Status::OK();
}

}  // namespace raqlet::runtime
