#ifndef RAQLET_RUNTIME_SCC_SCHEDULER_H_
#define RAQLET_RUNTIME_SCC_SCHEDULER_H_

// Dependency-aware scheduler for the evaluation units of the Datalog
// engine: the SCCs of the predicate dependency graph. Two SCCs with no
// path between them read disjoint-or-frozen relations, so they can be
// evaluated concurrently; an SCC may only start once every SCC it depends
// on has finished (its input relations are then frozen).

#include <functional>
#include <vector>

#include "analysis/dependency_graph.h"
#include "common/status.h"
#include "runtime/query_guard.h"
#include "runtime/thread_pool.h"

namespace raqlet::runtime {

/// The SCC-level condensation of a predicate dependency graph. Node i is
/// the i-th SCC of DependencyGraph::SccsInTopologicalOrder(); an edge
/// i -> j means SCC j depends on SCC i (and therefore j > i).
struct SccDag {
  std::vector<std::vector<int>> successors;

  size_t size() const { return successors.size(); }
};

/// Builds the condensation of `graph`. Successor lists are sorted and
/// deduplicated.
SccDag BuildSccDag(const analysis::DependencyGraph& graph);

/// Runs body(i) exactly once per DAG node, never starting a node before
/// all of its predecessors finished. Independent nodes run concurrently on
/// `pool`; with pool == nullptr nodes run serially in index (topological)
/// order. On failure no new nodes are started, in-flight nodes drain, and
/// the error of the lowest-index failed node is returned (which makes the
/// reported error independent of scheduling).
///
/// `guard`, when set, is polled before each node starts: once it trips, a
/// node that has not begun evaluating returns the guard's sticky terminal
/// Status instead of running its body. Because the trip cause is recorded
/// once (QueryGuard CAS) and this scheduler reports the lowest-index
/// error, a trip observed by any number of nodes still surfaces as one
/// deterministic Status.
Status RunSccDag(const SccDag& dag, ThreadPool* pool,
                 const std::function<Status(int)>& body,
                 const QueryGuard* guard = nullptr);

}  // namespace raqlet::runtime

#endif  // RAQLET_RUNTIME_SCC_SCHEDULER_H_
