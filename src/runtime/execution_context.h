#ifndef RAQLET_RUNTIME_EXECUTION_CONTEXT_H_
#define RAQLET_RUNTIME_EXECUTION_CONTEXT_H_

// ExecutionContext bundles everything an engine needs to parallelize one
// plan execution: the requested degree of parallelism and the thread pool
// realizing it. num_threads == 1 (the default everywhere) means strictly
// serial execution — no pool is created and the engines take their
// single-threaded code paths, so serial behavior is bit-identical to the
// pre-runtime engine.

#include <memory>

#include "runtime/thread_pool.h"

namespace raqlet::runtime {

class ExecutionContext {
 public:
  /// Creates a context with `num_threads` total executing threads
  /// (clamped to >= 1). The pool is spawned eagerly so repeated plan
  /// executions reuse the same workers.
  explicit ExecutionContext(int num_threads = 1);

  int num_threads() const { return num_threads_; }

  /// The pool backing this context, or nullptr when serial.
  ThreadPool* pool() const { return pool_.get(); }

 private:
  int num_threads_;
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace raqlet::runtime

#endif  // RAQLET_RUNTIME_EXECUTION_CONTEXT_H_
