#ifndef RAQLET_RUNTIME_EXECUTION_CONTEXT_H_
#define RAQLET_RUNTIME_EXECUTION_CONTEXT_H_

// ExecutionContext bundles everything an engine needs to parallelize one
// plan execution: the requested degree of parallelism, the thread pool
// realizing it, and context-lifetime object pools for recycling staging
// buffers. num_threads == 1 (the default everywhere) means strictly
// serial execution — no thread pool is created and the engines take their
// single-threaded code paths, so serial behavior is bit-identical to the
// pre-runtime engine (the object pools are still available: buffer reuse
// is a serial win too).

#include <memory>
#include <mutex>
#include <typeindex>
#include <unordered_map>

#include "runtime/object_pool.h"
#include "runtime/thread_pool.h"

namespace raqlet::runtime {

class ExecutionContext {
 public:
  /// Creates a context with `num_threads` total executing threads
  /// (clamped to >= 1). The pool is spawned eagerly so repeated plan
  /// executions reuse the same workers.
  explicit ExecutionContext(int num_threads = 1);

  int num_threads() const { return num_threads_; }

  /// The pool backing this context, or nullptr when serial.
  ThreadPool* pool() const { return pool_.get(); }

  /// Context-lifetime recycling pool for objects of type T, created on
  /// first use. Thread-safe; the returned pointer is stable for the
  /// context's lifetime. Engines use this to reuse per-task emit buffers
  /// across fixpoint rounds and across queries on the same engine.
  template <typename T>
  ObjectPool<T>* PoolFor() {
    std::lock_guard<std::mutex> lock(object_pools_mutex_);
    std::shared_ptr<void>& slot = object_pools_[std::type_index(typeid(T))];
    if (slot == nullptr) slot = std::make_shared<ObjectPool<T>>();
    return static_cast<ObjectPool<T>*>(slot.get());
  }

 private:
  int num_threads_;
  std::unique_ptr<ThreadPool> pool_;
  std::mutex object_pools_mutex_;
  // shared_ptr<void> keeps the typed deleter, so pools destruct properly.
  std::unordered_map<std::type_index, std::shared_ptr<void>> object_pools_;
};

}  // namespace raqlet::runtime

#endif  // RAQLET_RUNTIME_EXECUTION_CONTEXT_H_
