#ifndef RAQLET_RUNTIME_THREAD_POOL_H_
#define RAQLET_RUNTIME_THREAD_POOL_H_

// Fixed-size thread pool shared by the execution engines. Two primitives:
//
//  * Submit — fire-and-forget task, used by the SCC scheduler.
//  * ParallelFor — blocking data-parallel loop over [0, count). The calling
//    thread participates in the loop, so ParallelFor is safe to call from
//    inside a pool task (a worker never blocks waiting for another worker
//    to pick something up; at worst the caller runs every iteration
//    itself).
//
// Tasks must not throw; engine code communicates failure through Status
// values collected by the caller.

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "runtime/query_guard.h"

namespace raqlet::runtime {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (clamped to >= 1).
  explicit ThreadPool(int num_threads);
  /// Drains the queue and joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Enqueues `task` for execution on some worker.
  void Submit(std::function<void()> task);

  /// Runs fn(i) exactly once for every i in [0, count) and blocks until all
  /// iterations finished. Iterations are claimed dynamically, so uneven
  /// per-iteration cost balances across threads.
  void ParallelFor(size_t count, const std::function<void(size_t)>& fn);

  /// Guard-aware variant: once `guard` trips (cancel, deadline, budget —
  /// one relaxed load per claimed iteration), iterations not yet started
  /// are skipped so in-flight work drains promptly. The caller must poll
  /// the guard after the loop returns; skipped iterations are otherwise
  /// indistinguishable from completed ones. guard == nullptr behaves
  /// exactly like the plain overload.
  void ParallelFor(size_t count, const std::function<void(size_t)>& fn,
                   const QueryGuard* guard);

 private:
  void WorkerLoop();

  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool shutdown_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace raqlet::runtime

#endif  // RAQLET_RUNTIME_THREAD_POOL_H_
