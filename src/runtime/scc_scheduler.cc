#include "runtime/scc_scheduler.h"

#include <algorithm>
#include <condition_variable>
#include <map>
#include <mutex>

#include "obs/trace.h"

namespace raqlet::runtime {

SccDag BuildSccDag(const analysis::DependencyGraph& graph) {
  SccDag dag;
  dag.successors.resize(graph.SccsInTopologicalOrder().size());
  for (const analysis::DependencyEdge& edge : graph.edges()) {
    int from = graph.SccOf(edge.from);  // body predicate: dependency
    int to = graph.SccOf(edge.to);      // head predicate: dependent
    if (from == to || from < 0 || to < 0) continue;
    dag.successors[static_cast<size_t>(from)].push_back(to);
  }
  for (std::vector<int>& succ : dag.successors) {
    std::sort(succ.begin(), succ.end());
    succ.erase(std::unique(succ.begin(), succ.end()), succ.end());
  }
  return dag;
}

namespace {

struct DagState {
  const SccDag* dag = nullptr;
  const std::function<Status(int)>* body = nullptr;
  ThreadPool* pool = nullptr;
  const QueryGuard* guard = nullptr;

  std::mutex mutex;
  std::condition_variable cv;
  std::vector<int> pending_deps;     // unfinished predecessors per node
  std::map<int, Status> errors;      // failed node -> its error
  bool failed = false;
  size_t launched = 0;
  size_t finished = 0;

  void Launch(int node);  // requires mutex held
};

void RunNode(DagState* state, int node) {
  Status status;
  if (state->guard != nullptr && state->guard->tripped()) {
    // Drain without starting the body; the sticky cause keeps the
    // reported error deterministic no matter which nodes observe it.
    status = state->guard->TripStatus();
  } else {
    obs::TraceScope span("dag.node", node);
    status = (*state->body)(node);
  }
  std::lock_guard<std::mutex> lock(state->mutex);
  if (!status.ok()) {
    state->failed = true;
    state->errors.emplace(node, std::move(status));
  } else if (!state->failed) {
    for (int succ : state->dag->successors[static_cast<size_t>(node)]) {
      if (--state->pending_deps[static_cast<size_t>(succ)] == 0) {
        state->Launch(succ);
      }
    }
  }
  ++state->finished;
  if (state->finished == state->launched &&
      (state->failed || state->finished == state->dag->size())) {
    state->cv.notify_all();
  }
}

void DagState::Launch(int node) {
  ++launched;
  pool->Submit([this, node] { RunNode(this, node); });
}

}  // namespace

Status RunSccDag(const SccDag& dag, ThreadPool* pool,
                 const std::function<Status(int)>& body,
                 const QueryGuard* guard) {
  size_t n = dag.size();
  if (n == 0) return Status::OK();

  if (pool == nullptr || pool->num_threads() <= 1) {
    // Node indices are already a topological order.
    for (size_t i = 0; i < n; ++i) {
      if (guard != nullptr && guard->tripped()) return guard->TripStatus();
      obs::TraceScope span("dag.node", static_cast<int64_t>(i));
      RAQLET_RETURN_IF_ERROR(body(static_cast<int>(i)));
    }
    return Status::OK();
  }

  DagState state;
  state.dag = &dag;
  state.body = &body;
  state.pool = pool;
  state.guard = guard;
  state.pending_deps.assign(n, 0);
  for (const std::vector<int>& succ : dag.successors) {
    for (int to : succ) ++state.pending_deps[static_cast<size_t>(to)];
  }
  {
    std::unique_lock<std::mutex> lock(state.mutex);
    for (size_t i = 0; i < n; ++i) {
      if (state.pending_deps[i] == 0) state.Launch(static_cast<int>(i));
    }
    state.cv.wait(lock, [&] {
      return state.finished == state.launched &&
             (state.failed || state.finished == n);
    });
    if (state.failed) return state.errors.begin()->second;
  }
  return Status::OK();
}

}  // namespace raqlet::runtime
