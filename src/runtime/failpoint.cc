#include "runtime/failpoint.h"

#include <atomic>
#include <chrono>
#include <map>
#include <mutex>
#include <thread>

namespace raqlet::runtime {

namespace {

// One registry per process. The fast path is the armed-count gate below;
// the mutex only guards the map on (dis)arm and on hits while armed —
// i.e. only inside tests that opted in.
struct FailpointState {
  Status status;          // OK when only a delay is armed
  int delay_ms = 0;
  int after_hits = 1;
  int hits = 0;
};

std::mutex g_mutex;
std::map<std::string, FailpointState>& Registry() {
  static std::map<std::string, FailpointState> registry;
  return registry;
}
std::atomic<int> g_armed_count{0};

}  // namespace

bool FailpointsCompiledIn() {
#if defined(RAQLET_FAILPOINTS)
  return true;
#else
  return false;
#endif
}

std::vector<std::string> FailpointStatusSites() {
  return {"storage.insert_batch", "storage.insert_columns",
          "datalog.apply_staged", "sql.cte_merge", "graph.project"};
}

std::vector<std::string> FailpointDelaySites() {
  return {"storage.index_build", "runtime.pool_dispatch"};
}

void ArmFailpoint(const std::string& site, Status status, int after_hits) {
  std::lock_guard<std::mutex> lock(g_mutex);
  auto [it, inserted] = Registry().insert_or_assign(
      site, FailpointState{std::move(status), 0, after_hits, 0});
  (void)it;
  if (inserted) g_armed_count.fetch_add(1, std::memory_order_relaxed);
}

void ArmFailpointDelay(const std::string& site, int delay_ms,
                       int after_hits) {
  std::lock_guard<std::mutex> lock(g_mutex);
  auto [it, inserted] = Registry().insert_or_assign(
      site, FailpointState{Status::OK(), delay_ms, after_hits, 0});
  (void)it;
  if (inserted) g_armed_count.fetch_add(1, std::memory_order_relaxed);
}

void DisarmFailpoint(const std::string& site) {
  std::lock_guard<std::mutex> lock(g_mutex);
  if (Registry().erase(site) > 0) {
    g_armed_count.fetch_sub(1, std::memory_order_relaxed);
  }
}

void DisarmAllFailpoints() {
  std::lock_guard<std::mutex> lock(g_mutex);
  g_armed_count.fetch_sub(static_cast<int>(Registry().size()),
                          std::memory_order_relaxed);
  Registry().clear();
}

int FailpointHits(const std::string& site) {
  std::lock_guard<std::mutex> lock(g_mutex);
  auto it = Registry().find(site);
  return it == Registry().end() ? 0 : it->second.hits;
}

Status FailpointHit(const char* site) {
  if (g_armed_count.load(std::memory_order_relaxed) == 0) {
    return Status::OK();
  }
  int delay_ms = 0;
  Status fire;
  {
    std::lock_guard<std::mutex> lock(g_mutex);
    auto it = Registry().find(site);
    if (it == Registry().end()) return Status::OK();
    FailpointState& state = it->second;
    ++state.hits;
    if (state.hits < state.after_hits) return Status::OK();
    delay_ms = state.delay_ms;
    fire = state.status;
  }
  if (delay_ms > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
  }
  return fire;
}

void FailpointDelayHit(const char* site) {
  if (g_armed_count.load(std::memory_order_relaxed) == 0) return;
  int delay_ms = 0;
  {
    std::lock_guard<std::mutex> lock(g_mutex);
    auto it = Registry().find(site);
    if (it == Registry().end()) return;
    FailpointState& state = it->second;
    ++state.hits;
    if (state.hits < state.after_hits) return;
    delay_ms = state.delay_ms;
  }
  if (delay_ms > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
  }
}

}  // namespace raqlet::runtime
