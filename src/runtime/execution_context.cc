#include "runtime/execution_context.h"

namespace raqlet::runtime {

ExecutionContext::ExecutionContext(int num_threads)
    : num_threads_(num_threads < 1 ? 1 : num_threads) {
  if (num_threads_ > 1) {
    pool_ = std::make_unique<ThreadPool>(num_threads_);
  }
}

}  // namespace raqlet::runtime
