#include "runtime/thread_pool.h"

#include <atomic>
#include <memory>

#include "obs/trace.h"
#include "runtime/failpoint.h"

namespace raqlet::runtime {

namespace {

// Shared state of one ParallelFor call. Kept alive by shared_ptr because
// helper tasks may be dequeued after the loop already completed.
struct ForState {
  const std::function<void(size_t)>* fn = nullptr;
  size_t count = 0;
  const QueryGuard* guard = nullptr;  // optional cooperative cancellation
  std::atomic<size_t> next{0};
  std::atomic<size_t> done{0};
  std::mutex mutex;
  std::condition_variable cv;
};

void DrainFor(const std::shared_ptr<ForState>& state) {
  while (true) {
    size_t i = state->next.fetch_add(1, std::memory_order_relaxed);
    if (i >= state->count) return;
    // A tripped guard drains the loop: claimed-but-unstarted iterations
    // are skipped (still counted as done, so the waiter wakes). The
    // caller re-polls the guard after the loop and reports the sticky
    // terminal cause; skipped work is therefore never mistaken for
    // success.
    if (state->guard == nullptr || !state->guard->tripped()) {
      obs::TraceScope span("pool.for", static_cast<int64_t>(i));
      (*state->fn)(i);
    }
    if (state->done.fetch_add(1, std::memory_order_acq_rel) + 1 ==
        state->count) {
      // Lock pairs with the waiter's predicate check: without it the
      // notification could fire between the check and the wait.
      std::lock_guard<std::mutex> lock(state->mutex);
      state->cv.notify_all();
    }
  }
}

}  // namespace

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads < 1) num_threads = 1;
  workers_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown with a drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    RAQLET_FAILPOINT_DELAY("runtime.pool_dispatch");
    obs::TraceScope span("pool.task");
    task();
  }
}

void ThreadPool::ParallelFor(size_t count,
                             const std::function<void(size_t)>& fn) {
  ParallelFor(count, fn, nullptr);
}

void ThreadPool::ParallelFor(size_t count,
                             const std::function<void(size_t)>& fn,
                             const QueryGuard* guard) {
  if (count == 0) return;
  if (count == 1 || workers_.empty()) {
    for (size_t i = 0; i < count; ++i) {
      if (guard != nullptr && guard->tripped()) return;
      obs::TraceScope span("pool.for", static_cast<int64_t>(i));
      fn(i);
    }
    return;
  }
  auto state = std::make_shared<ForState>();
  state->fn = &fn;
  state->count = count;
  state->guard = guard;
  // The caller participates, so at most count - 1 helpers are useful.
  size_t helpers = workers_.size() < count - 1 ? workers_.size() : count - 1;
  for (size_t i = 0; i < helpers; ++i) {
    Submit([state] { DrainFor(state); });
  }
  DrainFor(state);
  std::unique_lock<std::mutex> lock(state->mutex);
  state->cv.wait(lock, [&] {
    return state->done.load(std::memory_order_acquire) == state->count;
  });
}

}  // namespace raqlet::runtime
