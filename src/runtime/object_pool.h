#ifndef RAQLET_RUNTIME_OBJECT_POOL_H_
#define RAQLET_RUNTIME_OBJECT_POOL_H_

// Thread-safe free list of reusable objects. The point is capacity reuse:
// engines check staging buffers out per fan-out and return them after the
// merge, so the buffers' internal allocations survive across fixpoint
// rounds (and, via ExecutionContext, across queries) instead of being
// reallocated every round.
//
// The pool never clears what it hands back — callers reset an object to a
// logically-empty state (keeping capacity) before Release.

#include <mutex>
#include <utility>
#include <vector>

namespace raqlet::runtime {

template <typename T>
class ObjectPool {
 public:
  ObjectPool() = default;
  ObjectPool(const ObjectPool&) = delete;
  ObjectPool& operator=(const ObjectPool&) = delete;

  /// Pops a recycled instance, or default-constructs one if none is idle.
  T Acquire() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!free_.empty()) {
        T out = std::move(free_.back());
        free_.pop_back();
        return out;
      }
    }
    return T{};
  }

  /// Returns `object` to the free list for a later Acquire.
  void Release(T object) {
    std::lock_guard<std::mutex> lock(mutex_);
    free_.push_back(std::move(object));
  }

  /// Number of idle objects currently pooled (for tests/metrics).
  size_t idle() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return free_.size();
  }

 private:
  mutable std::mutex mutex_;
  std::vector<T> free_;
};

}  // namespace raqlet::runtime

#endif  // RAQLET_RUNTIME_OBJECT_POOL_H_
