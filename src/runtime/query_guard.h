#ifndef RAQLET_RUNTIME_QUERY_GUARD_H_
#define RAQLET_RUNTIME_QUERY_GUARD_H_

// Cooperative execution guardrails: cancellation, wall-clock deadline and
// row/memory budgets for one query evaluation.
//
// A QueryGuard is owned by the caller (CLI, test, future raqletd session)
// and handed to the engines through their options structs. Engines poll it
// at natural quiescence points — per fixpoint round, per CTE iteration,
// per batch/chunk, per clause, per BFS frontier — never mid-tuple, so a
// trip can only be observed where the engine's existing error paths
// already guarantee clean unwinding (pooled buffers reset, staged columns
// dropped, partial IDB state cleared on the next run).
//
// Cost discipline mirrors the obs layer's zero-cost-off rule:
//  * guard == nullptr (the default everywhere): no check at all.
//  * guard set but unarmed (no limit, never cancelled): Check() is one
//    relaxed atomic load.
//  * armed: Check() is one relaxed load on the sticky trip word plus, at
//    the amortized checkpoint granularity above, one steady_clock read
//    when a deadline is set.
//
// Determinism contract:
//  * The first terminal cause wins: the trip word is set once by CAS;
//    every subsequent Check()/AddRows()/AddBytes() on any thread returns
//    the same Status, so a ParallelFor seeing trips in several chunks and
//    RunSccDag's lowest-index-error discipline both report one cause.
//  * Row budgets trip deterministically: AddRows() is fed the engines'
//    deterministic tuple counters at round/iteration boundaries, so the
//    same budget trips in the same round at any thread count.
//  * Deadlines and Cancel() are wall-clock events; *when* they trip is
//    inherently timing-dependent, but the terminal code and the clean
//    post-trip state are not.

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>

#include "common/status.h"

namespace raqlet::runtime {

class QueryGuard {
 public:
  QueryGuard() = default;

  // Guards are polled concurrently by pool workers; keep one per query
  // and do not copy it mid-run.
  QueryGuard(const QueryGuard&) = delete;
  QueryGuard& operator=(const QueryGuard&) = delete;

  // ---- configuration (set before handing the guard to a Run call) ----

  /// Trip with kDeadlineExceeded once `ms` milliseconds have elapsed from
  /// this call. ms <= 0 clears the deadline.
  void set_timeout_ms(int64_t ms) {
    if (ms <= 0) {
      has_deadline_ = false;
    } else {
      deadline_ = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(ms);
      has_deadline_ = true;
    }
    RecomputeArmed();
  }
  /// Trip with kResourceExhausted once the engines have derived more than
  /// `n` tuples (0 = unlimited). Counted via AddRows at deterministic
  /// checkpoints.
  void set_max_rows(size_t n) {
    max_rows_ = n;
    RecomputeArmed();
  }
  /// Trip with kResourceExhausted once tracked evaluation memory exceeds
  /// `n` bytes (0 = unlimited). Accounted via AddBytes with the
  /// Relation::MemoryBytes / staged-buffer byte counts the obs layer
  /// already maintains.
  void set_max_bytes(size_t n) {
    max_bytes_ = n;
    RecomputeArmed();
  }

  /// Request cancellation (kCancelled). Thread-safe, idempotent, callable
  /// while a query is running — that is the point.
  void Cancel() {
    armed_.store(true, std::memory_order_relaxed);
    Trip(StatusCode::kCancelled);
  }

  /// Re-arms the guard for another run: clears the trip, the cancellation
  /// and the row/byte progress. Limits (deadline excepted — re-set it)
  /// are kept.
  void Reset() {
    tripped_.store(0, std::memory_order_relaxed);
    rows_.store(0, std::memory_order_relaxed);
    bytes_.store(0, std::memory_order_relaxed);
    has_deadline_ = false;
    RecomputeArmed();
  }

  // ---- polling (engine side) ----

  /// Cheap checkpoint: cancellation + deadline. OK unless tripped.
  Status Check() const {
    if (!armed_.load(std::memory_order_relaxed)) return Status::OK();
    return CheckSlow();
  }

  /// Deterministic budget checkpoint: account `delta` freshly derived
  /// tuples and trip once the total exceeds the row budget.
  Status AddRows(size_t delta) const {
    if (!armed_.load(std::memory_order_relaxed)) return Status::OK();
    if (max_rows_ > 0) {
      size_t total = rows_.fetch_add(delta, std::memory_order_relaxed) + delta;
      if (total > max_rows_) Trip(StatusCode::kResourceExhausted);
    }
    return CheckSlow();
  }

  /// Accounts `delta` additional bytes of evaluation memory (relation
  /// growth + staged buffers) and trips past the byte budget.
  Status AddBytes(size_t delta) const {
    if (!armed_.load(std::memory_order_relaxed)) return Status::OK();
    if (max_bytes_ > 0) {
      size_t total =
          bytes_.fetch_add(delta, std::memory_order_relaxed) + delta;
      if (total > max_bytes_) Trip(StatusCode::kResourceExhausted);
    }
    return CheckSlow();
  }

  // ---- inspection ----

  bool tripped() const {
    return tripped_.load(std::memory_order_relaxed) != 0;
  }
  /// The sticky terminal cause (OK when not tripped).
  Status TripStatus() const;
  size_t rows() const { return rows_.load(std::memory_order_relaxed); }
  size_t bytes() const { return bytes_.load(std::memory_order_relaxed); }
  size_t max_rows() const { return max_rows_; }
  size_t max_bytes() const { return max_bytes_; }

 private:
  Status CheckSlow() const;
  /// Records the first terminal cause; later causes lose the CAS and the
  /// original sticks.
  void Trip(StatusCode code) const {
    int expected = 0;
    tripped_.compare_exchange_strong(expected, static_cast<int>(code),
                                     std::memory_order_relaxed,
                                     std::memory_order_relaxed);
  }
  void RecomputeArmed() {
    armed_.store(has_deadline_ || max_rows_ > 0 || max_bytes_ > 0 ||
                     tripped_.load(std::memory_order_relaxed) != 0,
                 std::memory_order_relaxed);
  }

  // Sticky trip word: 0 = running, else the StatusCode of the first cause.
  mutable std::atomic<int> tripped_{0};
  // Off-path gate: false means no limit is set and Cancel() never fired,
  // so every checkpoint is a single relaxed load.
  std::atomic<bool> armed_{false};
  mutable std::atomic<size_t> rows_{0};
  mutable std::atomic<size_t> bytes_{0};
  std::chrono::steady_clock::time_point deadline_{};
  bool has_deadline_ = false;
  size_t max_rows_ = 0;
  size_t max_bytes_ = 0;
};

}  // namespace raqlet::runtime

#endif  // RAQLET_RUNTIME_QUERY_GUARD_H_
