#ifndef RAQLET_RUNTIME_FAILPOINT_H_
#define RAQLET_RUNTIME_FAILPOINT_H_

// Fault-injection harness: named sites on the engines' durable-state
// mutation paths that tests arm to fire a Status failure or a delay at
// the Nth hit, proving the cancellation/cleanup contract ("a tripped or
// failed query never corrupts state") by construction rather than hope.
//
// Sites are compiled out by default — the macros expand to nothing, so
// release hot loops pay zero cost. Configure with -DRAQLET_FAILPOINTS=ON
// (CMake option; the `asan-failpoint` preset and CI leg do this) to
// compile them in; even then an unarmed process costs one relaxed atomic
// load per hit.
//
// Two macro flavours, matching what a site can express:
//  * RAQLET_FAILPOINT(site) — in a function returning Status (or used
//    with RAQLET_RETURN_IF_ERROR-style propagation): if the site is armed
//    with a failure, returns that Status from the enclosing function; an
//    armed delay sleeps in place.
//  * RAQLET_FAILPOINT_DELAY(site) — in void/pointer-returning code (index
//    build, pool task dispatch): honours only the delay arming, widening
//    race windows for cancellation tests without changing control flow.
//
// Site catalogue (docs/robustness.md keeps the authoritative list):
//   storage.insert_batch    Relation::InsertBatchInPlace, before staging
//   storage.insert_columns  Relation::InsertColumns, before staging
//   storage.index_build     Relation::FoldSuffix (delay only)
//   datalog.apply_staged    datalog EmitBuffer merge, per relation group
//   sql.cte_merge           SQL executor, before a CTE materialize step
//   graph.project           graph executor, before RETURN/WITH projection
//   runtime.pool_dispatch   ThreadPool::WorkerLoop, before running a task
//                           (delay only)

#include <string>
#include <vector>

#include "common/status.h"

namespace raqlet::runtime {

/// True when the harness is compiled in (RAQLET_FAILPOINTS=ON); tests
/// skip the injection suites otherwise.
bool FailpointsCompiledIn();

/// The names of every site reachable in this build, for sweep tests.
/// Status-firing sites only; delay-only sites are listed separately.
std::vector<std::string> FailpointStatusSites();
std::vector<std::string> FailpointDelaySites();

/// Arms `site` to fire `status` on its `after_hits`-th hit (1 = first)
/// and every hit after. Re-arming overwrites. No-op when compiled out.
void ArmFailpoint(const std::string& site, Status status, int after_hits = 1);

/// Arms `site` to sleep `delay_ms` on every hit from `after_hits` on.
void ArmFailpointDelay(const std::string& site, int delay_ms,
                       int after_hits = 1);

/// Disarms one site / all sites and resets their hit counters.
void DisarmFailpoint(const std::string& site);
void DisarmAllFailpoints();

/// Hit count of `site` since it was last (dis)armed, for test assertions.
int FailpointHits(const std::string& site);

// Internal: macro backends. FailpointHit returns the armed Status (OK when
// unarmed / before the Nth hit) and applies any armed delay in place;
// FailpointDelayHit applies delays only.
Status FailpointHit(const char* site);
void FailpointDelayHit(const char* site);

}  // namespace raqlet::runtime

#if defined(RAQLET_FAILPOINTS)
#define RAQLET_FAILPOINT(site)                                        \
  do {                                                                \
    ::raqlet::Status _raqlet_fp = ::raqlet::runtime::FailpointHit(site); \
    if (!_raqlet_fp.ok()) return _raqlet_fp;                          \
  } while (false)
#define RAQLET_FAILPOINT_DELAY(site) \
  ::raqlet::runtime::FailpointDelayHit(site)
#else
#define RAQLET_FAILPOINT(site) \
  do {                         \
  } while (false)
#define RAQLET_FAILPOINT_DELAY(site) \
  do {                               \
  } while (false)
#endif

#endif  // RAQLET_RUNTIME_FAILPOINT_H_
