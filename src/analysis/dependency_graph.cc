#include "analysis/dependency_graph.h"

#include <algorithm>
#include <sstream>

namespace raqlet::analysis {

DependencyGraph DependencyGraph::Build(const dlir::Program& program) {
  DependencyGraph g;
  for (const dlir::RelationDecl& decl : program.decls) {
    g.predicates_.insert(decl.name);
  }
  for (const dlir::Rule& rule : program.rules) {
    g.predicates_.insert(rule.head.predicate);
    for (const dlir::Atom& atom : rule.body) {
      g.predicates_.insert(atom.predicate);
      DependencyEdge edge;
      edge.from = atom.predicate;
      edge.to = rule.head.predicate;
      edge.negated = atom.negated;
      edge.aggregated = rule.agg.has_value();
      g.edges_.push_back(edge);
      g.successors_[atom.predicate].insert(rule.head.predicate);
    }
  }
  g.ComputeSccs();
  return g;
}

std::set<std::string> DependencyGraph::DependenciesOf(
    const std::string& to) const {
  std::set<std::string> out;
  for (const DependencyEdge& e : edges_) {
    if (e.to == to) out.insert(e.from);
  }
  return out;
}

bool DependencyGraph::HasEdge(const std::string& from,
                              const std::string& to) const {
  auto it = successors_.find(from);
  return it != successors_.end() && it->second.count(to) > 0;
}

namespace {

// Iterative Tarjan SCC. Emits SCCs in reverse topological order of the
// condensation (every SCC before its predecessors along `successors`),
// which the caller reverses.
struct TarjanState {
  const std::map<std::string, std::set<std::string>>& successors;
  std::map<std::string, int> index;
  std::map<std::string, int> lowlink;
  std::set<std::string> on_stack;
  std::vector<std::string> stack;
  int next_index = 0;
  std::vector<std::vector<std::string>> sccs;

  void Run(const std::string& root) {
    // Explicit DFS stack of (node, iterator position over successors).
    struct Frame {
      std::string node;
      std::vector<std::string> succ;
      size_t next_succ = 0;
    };
    std::vector<Frame> frames;

    auto push_node = [&](const std::string& node) {
      index[node] = next_index;
      lowlink[node] = next_index;
      ++next_index;
      stack.push_back(node);
      on_stack.insert(node);
      Frame f;
      f.node = node;
      auto it = successors.find(node);
      if (it != successors.end()) {
        f.succ.assign(it->second.begin(), it->second.end());
      }
      frames.push_back(std::move(f));
    };

    push_node(root);
    while (!frames.empty()) {
      Frame& frame = frames.back();
      if (frame.next_succ < frame.succ.size()) {
        const std::string& next = frame.succ[frame.next_succ++];
        if (index.find(next) == index.end()) {
          push_node(next);
        } else if (on_stack.count(next) > 0) {
          lowlink[frame.node] = std::min(lowlink[frame.node], index[next]);
        }
        continue;
      }
      // All successors done; close the frame.
      std::string node = frame.node;
      frames.pop_back();
      if (!frames.empty()) {
        lowlink[frames.back().node] =
            std::min(lowlink[frames.back().node], lowlink[node]);
      }
      if (lowlink[node] == index[node]) {
        std::vector<std::string> scc;
        while (true) {
          std::string top = stack.back();
          stack.pop_back();
          on_stack.erase(top);
          scc.push_back(top);
          if (top == node) break;
        }
        std::sort(scc.begin(), scc.end());
        sccs.push_back(std::move(scc));
      }
    }
  }
};

}  // namespace

void DependencyGraph::ComputeSccs() {
  TarjanState tarjan{successors_, {}, {}, {}, {}, 0, {}};
  for (const std::string& pred : predicates_) {
    if (tarjan.index.find(pred) == tarjan.index.end()) tarjan.Run(pred);
  }
  // Tarjan emits sinks first along `successors` (which point from body to
  // head); evaluation must compute bodies first, so keep this order? No:
  // an SCC is emitted only after all SCCs reachable FROM it are emitted.
  // Edges go body -> head, so "reachable from" means "computed later".
  // Hence the emission order lists downstream SCCs first; reverse it so
  // dependencies (bodies) come first.
  sccs_ = std::move(tarjan.sccs);
  std::reverse(sccs_.begin(), sccs_.end());

  scc_of_.clear();
  recursive_sccs_.clear();
  for (size_t i = 0; i < sccs_.size(); ++i) {
    for (const std::string& pred : sccs_[i]) {
      scc_of_[pred] = static_cast<int>(i);
    }
    if (sccs_[i].size() > 1) {
      recursive_sccs_.insert(static_cast<int>(i));
    } else if (HasEdge(sccs_[i][0], sccs_[i][0])) {
      recursive_sccs_.insert(static_cast<int>(i));
    }
  }
}

int DependencyGraph::SccOf(const std::string& predicate) const {
  auto it = scc_of_.find(predicate);
  return it == scc_of_.end() ? -1 : it->second;
}

bool DependencyGraph::IsRecursiveScc(int scc_index) const {
  return recursive_sccs_.count(scc_index) > 0;
}

bool DependencyGraph::IsRecursivePredicate(const std::string& predicate) const {
  int scc = SccOf(predicate);
  return scc >= 0 && IsRecursiveScc(scc);
}

std::string DependencyGraph::ToString() const {
  std::ostringstream os;
  os << "predicates:";
  for (const std::string& p : predicates_) os << " " << p;
  os << "\nsccs (topological):\n";
  for (size_t i = 0; i < sccs_.size(); ++i) {
    os << "  [" << i << (IsRecursiveScc(static_cast<int>(i)) ? ", recursive" : "")
       << "]";
    for (const std::string& p : sccs_[i]) os << " " << p;
    os << "\n";
  }
  return os.str();
}

}  // namespace raqlet::analysis
