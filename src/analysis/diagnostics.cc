#include "analysis/diagnostics.h"

#include <sstream>

namespace raqlet::analysis {

const char* SeverityToString(Severity severity) {
  switch (severity) {
    case Severity::kNote:
      return "note";
    case Severity::kWarning:
      return "warning";
    case Severity::kError:
      return "error";
  }
  return "?";
}

std::string Diagnostic::ToString() const {
  std::ostringstream os;
  os << SeverityToString(severity) << "[" << code << "]: " << message;
  if (rule_index >= 0) {
    os << "\n  --> rule " << rule_index << ": " << rule;
  } else if (!rule.empty()) {
    os << "\n  --> rule: " << rule;
  }
  for (const std::string& note : notes) {
    os << "\n  note: " << note;
  }
  return os.str();
}

Diagnostic& DiagnosticEngine::Report(Severity severity, std::string code,
                                     std::string message) {
  if (severity == Severity::kError) {
    ++error_count_;
  } else if (severity == Severity::kWarning) {
    ++warning_count_;
  }
  Diagnostic d;
  d.severity = severity;
  d.code = std::move(code);
  d.message = std::move(message);
  diagnostics_.push_back(std::move(d));
  return diagnostics_.back();
}

bool DiagnosticEngine::HasCode(const std::string& code) const {
  for (const Diagnostic& d : diagnostics_) {
    if (d.code == code) return true;
  }
  return false;
}

std::string DiagnosticEngine::Render() const {
  std::ostringstream os;
  for (const Diagnostic& d : diagnostics_) {
    os << d.ToString() << "\n";
  }
  if (!diagnostics_.empty()) {
    os << error_count_ << " error(s), " << warning_count_ << " warning(s)\n";
  }
  return os.str();
}

Status DiagnosticEngine::ToStatus(const std::string& context) const {
  if (!has_errors()) return Status::OK();
  std::string message = Render();
  if (!context.empty()) message = context + ":\n" + message;
  return Status::InvalidArgument(message);
}

}  // namespace raqlet::analysis
