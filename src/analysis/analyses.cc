#include "analysis/analyses.h"

#include <algorithm>
#include <sstream>

namespace raqlet::analysis {

LinearityResult AnalyzeLinearity(const dlir::Program& program,
                                 const DependencyGraph& graph) {
  LinearityResult result;
  for (const dlir::Rule& rule : program.rules) {
    int head_scc = graph.SccOf(rule.head.predicate);
    if (!graph.IsRecursiveScc(head_scc)) continue;
    int recursive_atoms = 0;
    for (const dlir::Atom& atom : rule.body) {
      if (!atom.negated && graph.SccOf(atom.predicate) == head_scc) {
        ++recursive_atoms;
      }
    }
    if (recursive_atoms > 1) {
      result.all_linear = false;
      result.nonlinear_rules.push_back(rule.ToString());
    }
  }
  return result;
}

MutualRecursionResult AnalyzeMutualRecursion(const DependencyGraph& graph) {
  MutualRecursionResult result;
  for (const auto& scc : graph.SccsInTopologicalOrder()) {
    if (scc.size() > 1) {
      result.has_mutual_recursion = true;
      result.mutual_groups.push_back(scc);
    }
  }
  return result;
}

StratificationResult AnalyzeStratification(const dlir::Program& program,
                                           const DependencyGraph& graph) {
  StratificationResult result;
  for (const dlir::Rule& rule : program.rules) {
    int head_scc = graph.SccOf(rule.head.predicate);
    bool head_recursive = graph.IsRecursiveScc(head_scc);
    for (const dlir::Atom& atom : rule.body) {
      if (atom.negated && graph.SccOf(atom.predicate) == head_scc) {
        result.stratified = false;
        result.violation = "negation of '" + atom.predicate +
                           "' inside its own recursive component: " +
                           rule.ToString();
      }
      if (rule.agg.has_value() && head_recursive &&
          graph.SccOf(atom.predicate) == head_scc) {
        result.stratified = false;
        result.violation = "aggregation over '" + atom.predicate +
                           "' inside its own recursive component: " +
                           rule.ToString();
      }
    }
  }

  // Strata: per SCC in topological order, 1 + max stratum below a
  // negation/aggregation boundary, else max stratum of dependencies.
  if (result.stratified) {
    const auto& sccs = graph.SccsInTopologicalOrder();
    std::vector<int> scc_stratum(sccs.size(), 0);
    for (size_t i = 0; i < sccs.size(); ++i) {
      int stratum = 0;
      for (const DependencyEdge& e : graph.edges()) {
        if (graph.SccOf(e.to) != static_cast<int>(i)) continue;
        int from_scc = graph.SccOf(e.from);
        if (from_scc == static_cast<int>(i)) continue;
        int through = scc_stratum[static_cast<size_t>(from_scc)] +
                      ((e.negated || e.aggregated) ? 1 : 0);
        stratum = std::max(stratum, through);
      }
      scc_stratum[i] = stratum;
      for (const std::string& pred : sccs[i]) {
        result.strata[pred] = stratum;
      }
    }
  }
  return result;
}

MonotonicityResult AnalyzeMonotonicity(const dlir::Program& program) {
  MonotonicityResult result;
  for (const dlir::Rule& rule : program.rules) {
    for (const dlir::Atom& atom : rule.body) {
      if (atom.negated) {
        result.monotone = false;
        result.reasons.push_back("negation of '" + atom.predicate +
                                 "' in: " + rule.ToString());
      }
    }
    if (rule.agg.has_value()) {
      result.monotone = false;
      result.reasons.push_back(
          std::string("aggregation (") +
          dlir::AggFuncToString(rule.agg->func) + ") in: " + rule.ToString());
    }
  }
  for (const dlir::RelationDecl& decl : program.decls) {
    if (decl.lattice != dlir::LatticeKind::kNone) result.uses_lattice = true;
  }
  return result;
}

TerminationResult AnalyzeTermination(const dlir::Program& program,
                                     const DependencyGraph& graph) {
  TerminationResult result;
  for (const dlir::Rule& rule : program.rules) {
    int head_scc = graph.SccOf(rule.head.predicate);
    if (!graph.IsRecursiveScc(head_scc)) continue;

    // Value invention: an arithmetic term in the head of a recursive rule
    // ranges over an unbounded domain [21]. A lattice declaration or an
    // upper/lower bound constraint on the invented value tames it.
    bool invents = false;
    for (const dlir::Term& arg : rule.head.args) {
      if (arg.kind == dlir::TermKind::kBinary) invents = true;
    }
    // ... or a head variable defined by an arithmetic binding constraint.
    for (const dlir::Constraint& c : rule.constraints) {
      if (c.op != dlir::CmpOp::kEq) continue;
      auto is_head_var = [&](const dlir::Term& t) {
        if (!t.is_var()) return false;
        for (const dlir::Term& arg : rule.head.args) {
          if (arg.is_var() && arg.var == t.var) return true;
        }
        return false;
      };
      if ((is_head_var(c.lhs) && c.rhs.kind == dlir::TermKind::kBinary) ||
          (is_head_var(c.rhs) && c.lhs.kind == dlir::TermKind::kBinary)) {
        invents = true;
      }
    }
    if (!invents) continue;

    const dlir::RelationDecl* decl = program.FindDecl(rule.head.predicate);
    bool lattice = decl != nullptr && decl->lattice != dlir::LatticeKind::kNone;
    bool bounded = false;
    for (const dlir::Constraint& c : rule.constraints) {
      if (c.op == dlir::CmpOp::kLt || c.op == dlir::CmpOp::kLe ||
          c.op == dlir::CmpOp::kGt || c.op == dlir::CmpOp::kGe) {
        bounded = true;  // heuristic: any range constraint counts as a bound
      }
    }
    if (!lattice && !bounded) {
      result.may_diverge = true;
      result.warnings.push_back(
          "value invention in recursive rule may not terminate over cyclic "
          "data (add a bound or declare the relation as a lattice): " +
          rule.ToString());
    }
  }
  return result;
}

AnalysisReport Analyze(const dlir::Program& program) {
  DependencyGraph graph = DependencyGraph::Build(program);
  AnalysisReport report;
  report.linearity = AnalyzeLinearity(program, graph);
  report.mutual = AnalyzeMutualRecursion(graph);
  report.stratification = AnalyzeStratification(program, graph);
  report.monotonicity = AnalyzeMonotonicity(program);
  report.termination = AnalyzeTermination(program, graph);
  return report;
}

std::string AnalysisReport::ToString() const {
  std::ostringstream os;
  os << "linearity: " << (linearity.all_linear ? "linear" : "non-linear")
     << "\n";
  for (const std::string& r : linearity.nonlinear_rules) {
    os << "  non-linear rule: " << r << "\n";
  }
  os << "mutual recursion: " << (mutual.has_mutual_recursion ? "yes" : "no")
     << "\n";
  for (const auto& group : mutual.mutual_groups) {
    os << "  group:";
    for (const std::string& p : group) os << " " << p;
    os << "\n";
  }
  os << "stratified: " << (stratification.stratified ? "yes" : "no") << "\n";
  if (!stratification.violation.empty()) {
    os << "  violation: " << stratification.violation << "\n";
  }
  os << "monotone: " << (monotonicity.monotone ? "yes" : "no")
     << (monotonicity.uses_lattice ? " (uses lattice recursion)" : "") << "\n";
  for (const std::string& r : monotonicity.reasons) {
    os << "  breaks monotonicity: " << r << "\n";
  }
  os << "termination: "
     << (termination.may_diverge ? "may diverge" : "no warnings") << "\n";
  for (const std::string& w : termination.warnings) {
    os << "  warning: " << w << "\n";
  }
  return os.str();
}

Status CheckBackendSupport(const dlir::Program& program,
                           const AnalysisReport& report, Backend backend) {
  switch (backend) {
    case Backend::kDatalog:
      if (!report.stratification.stratified) {
        return Status::Unsupported("Datalog backend requires stratification: " +
                                   report.stratification.violation);
      }
      return Status::OK();
    case Backend::kSql: {
      if (!report.stratification.stratified) {
        return Status::Unsupported("SQL backend requires stratification: " +
                                   report.stratification.violation);
      }
      if (report.mutual.has_mutual_recursion) {
        std::string group;
        for (const std::string& p : report.mutual.mutual_groups[0]) {
          group += (group.empty() ? "" : ", ") + p;
        }
        return Status::Unsupported(
            "recursive SQL (WITH RECURSIVE) cannot express mutual recursion "
            "[23]; offending group: " + group);
      }
      if (!report.linearity.all_linear) {
        return Status::Unsupported(
            "recursive SQL supports only linear recursion [23]; apply the "
            "linearization rewrite first. Offending rule: " +
            report.linearity.nonlinear_rules[0]);
      }
      for (const dlir::RelationDecl& decl : program.decls) {
        if (decl.lattice != dlir::LatticeKind::kNone) {
          return Status::Unsupported(
              "standard recursive SQL has no monotone-aggregate recursion; "
              "lattice relation '" + decl.name + "' is not expressible");
        }
      }
      return Status::OK();
    }
    case Backend::kGraph:
      // The graph engine executes PGIR, which the DLIR-level analyses do
      // not constrain; arbitrary DLIR is not executable there.
      return Status::OK();
  }
  return Status::Internal("unknown backend");
}

}  // namespace raqlet::analysis
