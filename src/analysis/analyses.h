#ifndef RAQLET_ANALYSIS_ANALYSES_H_
#define RAQLET_ANALYSIS_ANALYSES_H_

// The §4 static analyses, all implemented once at the DLIR level:
// linearity, mutual recursion, stratification, monotonicity, and
// termination. `CheckBackendSupport` turns the report into backend-aware
// accept/reject decisions (goal (1) of §4), e.g. recursive SQL rejects
// mutual and non-linear recursion.

#include <map>
#include <string>
#include <vector>

#include "analysis/dependency_graph.h"
#include "common/status.h"
#include "dlir/program.h"

namespace raqlet::analysis {

/// Linearity (§4): a rule is linear if at most one body atom belongs to
/// the head's recursive component.
struct LinearityResult {
  bool all_linear = true;
  /// Text of each non-linear rule, for diagnostics.
  std::vector<std::string> nonlinear_rules;
};

/// Mutual recursion (§4): SCCs containing two or more predicates.
struct MutualRecursionResult {
  bool has_mutual_recursion = false;
  std::vector<std::vector<std::string>> mutual_groups;
};

/// Stratification (§4): negation/aggregation must not occur inside its own
/// recursive component. `strata` maps each predicate to its stratum (0 for
/// EDBs and predicates with no negation/aggregation below them).
struct StratificationResult {
  bool stratified = true;
  std::string violation;  // human-readable, empty when stratified
  std::map<std::string, int> strata;
};

/// Monotonicity (§4): the program is monotone under set inclusion iff it
/// uses no negation and no (non-lattice) aggregation. Lattice recursion is
/// reported separately: it is monotone in the lattice order.
struct MonotonicityResult {
  bool monotone = true;
  bool uses_lattice = false;
  std::vector<std::string> reasons;  // which constructs break monotonicity
};

/// Termination (§4): heuristic warnings for value invention inside
/// recursion (interpreted functions over unbounded domains [21]).
struct TerminationResult {
  bool may_diverge = false;
  std::vector<std::string> warnings;
};

struct AnalysisReport {
  LinearityResult linearity;
  MutualRecursionResult mutual;
  StratificationResult stratification;
  MonotonicityResult monotonicity;
  TerminationResult termination;

  std::string ToString() const;
};

LinearityResult AnalyzeLinearity(const dlir::Program& program,
                                 const DependencyGraph& graph);
MutualRecursionResult AnalyzeMutualRecursion(const DependencyGraph& graph);
StratificationResult AnalyzeStratification(const dlir::Program& program,
                                           const DependencyGraph& graph);
MonotonicityResult AnalyzeMonotonicity(const dlir::Program& program);
TerminationResult AnalyzeTermination(const dlir::Program& program,
                                     const DependencyGraph& graph);

/// Runs every analysis.
AnalysisReport Analyze(const dlir::Program& program);

/// Target query-execution paradigms (DESIGN.md §2 maps them to engines).
enum class Backend {
  kDatalog,  // deductive: full stratified Datalog incl. lattice recursion
  kSql,      // recursive SQL: linear, non-mutual, non-lattice recursion only
  kGraph,    // property-graph traversal: executes PGIR, not DLIR (always ok
             // for programs produced by the Cypher frontend)
};

/// Rejects programs a backend cannot execute, with an explanatory message
/// (§4 goal (1): "identifying unsupported queries by a backend").
Status CheckBackendSupport(const dlir::Program& program,
                           const AnalysisReport& report, Backend backend);

}  // namespace raqlet::analysis

#endif  // RAQLET_ANALYSIS_ANALYSES_H_
