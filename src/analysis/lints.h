#ifndef RAQLET_ANALYSIS_LINTS_H_
#define RAQLET_ANALYSIS_LINTS_H_

// Semantic lints over DLIR: findings that do not make a program invalid
// (CheckProgram in typecheck.h owns those) but indicate dead weight, perf
// footguns, or likely non-termination. All lints are warnings; callers
// that want warnings-as-errors escalate via DiagnosticEngine counts
// (raqlet_cli --lint --werror).
//
// Lint codes (catalogue: docs/diagnostics.md):
//   RQ101 relation declared but never used
//   RQ102 rule unreachable from any output
//   RQ103 relation is always empty
//   RQ104 cartesian-product join (no shared variables between body atoms)
//   RQ105 possibly non-terminating recursion (value invention without a
//         lattice or bound)
//   RQ106 duplicate rule
//   RQ107 constant-foldable constraint (always true / always false)

#include "analysis/diagnostics.h"
#include "dlir/program.h"

namespace raqlet::analysis {

/// Runs every lint over `program`, accumulating warnings into `diags`.
/// Robust against structurally invalid programs (undeclared predicates
/// etc. are simply skipped here — CheckProgram reports them as errors);
/// run CheckProgram alongside for the full picture.
void LintProgram(const dlir::Program& program, DiagnosticEngine* diags);

}  // namespace raqlet::analysis

#endif  // RAQLET_ANALYSIS_LINTS_H_
