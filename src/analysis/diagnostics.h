#ifndef RAQLET_ANALYSIS_DIAGNOSTICS_H_
#define RAQLET_ANALYSIS_DIAGNOSTICS_H_

// Multi-diagnostic accumulation for the DLIR static analyzer (typecheck.h,
// lints.h). Unlike Program::Validate(), which stops at the first structural
// violation, a DiagnosticEngine collects every finding of a checking pass —
// the way a production compiler reports all errors in a translation unit —
// with a stable code per finding class so tests, scripts, and CI can match
// on `RQ0xx` instead of message text.
//
// Code ranges (the full catalogue lives in docs/diagnostics.md):
//   RQ001-RQ009  structural errors (declarations, arity, safety)
//   RQ010-RQ019  type errors (kind-mismatch joins, bad arithmetic, ...)
//   RQ020-RQ029  semantic errors (stratification violations)
//   RQ101-RQ199  lints (warnings: dead rules, cartesian joins, ...)

#include <string>
#include <vector>

#include "common/status.h"
#include "dlir/program.h"

namespace raqlet::analysis {

enum class Severity { kNote, kWarning, kError };

const char* SeverityToString(Severity severity);

/// One finding. Provenance is textual on purpose: diagnostics outlive the
/// Program they were produced from (optimizer passes rewrite freely), so a
/// diagnostic snapshots the offending rule instead of pointing into it.
struct Diagnostic {
  Severity severity = Severity::kError;
  std::string code;     // stable "RQ0xx" identifier
  std::string message;  // one-line description of the finding
  std::string predicate;  // offending relation, when the finding has one
  int rule_index = -1;    // index into Program::rules, -1 if not rule-scoped
  std::string rule;       // text of the offending rule at diagnosis time
  std::vector<std::string> notes;  // secondary lines (e.g. a negation cycle)

  Diagnostic& AtPredicate(std::string name) {
    predicate = std::move(name);
    return *this;
  }
  Diagnostic& AtRule(int index, const dlir::Rule& r) {
    rule_index = index;
    rule = r.ToString();
    return *this;
  }
  Diagnostic& Note(std::string note) {
    notes.push_back(std::move(note));
    return *this;
  }

  /// Multi-line rendering: "error[RQ003]: ..." plus provenance and notes.
  std::string ToString() const;
};

/// Accumulates diagnostics in report order. Checking passes keep going
/// after an error so one run surfaces every problem; callers fold the
/// result into a Status only at API boundaries (ToStatus).
class DiagnosticEngine {
 public:
  /// Appends a diagnostic and returns it for fluent provenance chaining:
  ///   diags->Error("RQ003", "arity mismatch ...").AtRule(i, rule);
  Diagnostic& Report(Severity severity, std::string code, std::string message);
  Diagnostic& Error(std::string code, std::string message) {
    return Report(Severity::kError, std::move(code), std::move(message));
  }
  Diagnostic& Warning(std::string code, std::string message) {
    return Report(Severity::kWarning, std::move(code), std::move(message));
  }

  const std::vector<Diagnostic>& diagnostics() const { return diagnostics_; }
  size_t error_count() const { return error_count_; }
  size_t warning_count() const { return warning_count_; }
  bool has_errors() const { return error_count_ > 0; }
  bool empty() const { return diagnostics_.empty(); }

  /// True if any accumulated diagnostic carries `code` (test matcher).
  bool HasCode(const std::string& code) const;

  /// All diagnostics rendered in report order, followed by a
  /// "N error(s), M warning(s)" summary line when anything was reported.
  std::string Render() const;

  /// OK when no errors were reported (warnings do not fail); otherwise an
  /// InvalidArgument whose message is the full rendering, prefixed with
  /// `context` when non-empty.
  Status ToStatus(const std::string& context = "") const;

 private:
  std::vector<Diagnostic> diagnostics_;
  size_t error_count_ = 0;
  size_t warning_count_ = 0;
};

}  // namespace raqlet::analysis

#endif  // RAQLET_ANALYSIS_DIAGNOSTICS_H_
