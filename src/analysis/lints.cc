#include "analysis/lints.h"

#include <functional>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "analysis/analyses.h"
#include "analysis/dependency_graph.h"
#include "analysis/typecheck.h"

namespace raqlet::analysis {
namespace {

using dlir::Atom;
using dlir::CmpOp;
using dlir::Constant;
using dlir::Constraint;
using dlir::Program;
using dlir::RelationDecl;
using dlir::Rule;
using dlir::Term;
using dlir::TermKind;

// ---------------------------------------------------------------------------
// Constant folding (RQ107)
// ---------------------------------------------------------------------------

/// Folds a ground term to a constant. Arithmetic follows the engines'
/// semantics (value_ops.h): integer ops while both sides are integers,
/// float promotion otherwise; division by zero and float modulo do not
/// fold (the engine errors there at runtime).
std::optional<Constant> FoldTerm(const Term& term) {
  switch (term.kind) {
    case TermKind::kConstant:
      return term.constant;
    case TermKind::kBinary: {
      auto lhs = FoldTerm(term.children[0]);
      auto rhs = FoldTerm(term.children[1]);
      if (!lhs || !rhs) return std::nullopt;
      bool lhs_num = lhs->type == ValueType::kNumber;
      bool rhs_num = rhs->type == ValueType::kNumber;
      bool lhs_float = lhs->type == ValueType::kFloat;
      bool rhs_float = rhs->type == ValueType::kFloat;
      if ((!lhs_num && !lhs_float) || (!rhs_num && !rhs_float)) {
        return std::nullopt;  // non-numeric arithmetic: RQ013 territory
      }
      if (lhs_num && rhs_num) {
        int64_t a = lhs->num;
        int64_t b = rhs->num;
        switch (term.op) {
          case dlir::ArithOp::kAdd:
            return Constant::Number(a + b);
          case dlir::ArithOp::kSub:
            return Constant::Number(a - b);
          case dlir::ArithOp::kMul:
            return Constant::Number(a * b);
          case dlir::ArithOp::kDiv:
            if (b == 0) return std::nullopt;
            return Constant::Number(a / b);
          case dlir::ArithOp::kMod:
            if (b == 0) return std::nullopt;
            return Constant::Number(a % b);
        }
        return std::nullopt;
      }
      double a = lhs_float ? lhs->fval : static_cast<double>(lhs->num);
      double b = rhs_float ? rhs->fval : static_cast<double>(rhs->num);
      switch (term.op) {
        case dlir::ArithOp::kAdd:
          return Constant::Float(a + b);
        case dlir::ArithOp::kSub:
          return Constant::Float(a - b);
        case dlir::ArithOp::kMul:
          return Constant::Float(a * b);
        case dlir::ArithOp::kDiv:
          if (b == 0.0) return std::nullopt;
          return Constant::Float(a / b);
        case dlir::ArithOp::kMod:
          return std::nullopt;  // float modulo is a runtime error
      }
      return std::nullopt;
    }
    default:
      return std::nullopt;
  }
}

/// Evaluates a comparison between folded constants when the engines define
/// it: numeric vs numeric, symbol vs symbol, bool equality. Mixed classes
/// return nullopt (the type checker reports RQ012 for those).
std::optional<bool> FoldCmp(CmpOp op, const Constant& lhs,
                            const Constant& rhs) {
  auto cls = [](const Constant& c) { return TypeClassOf(c.type); };
  if (cls(lhs) != cls(rhs)) return std::nullopt;
  int cmp = 0;
  switch (cls(lhs)) {
    case TypeClass::kNumeric: {
      if (lhs.type == ValueType::kNumber && rhs.type == ValueType::kNumber) {
        cmp = lhs.num < rhs.num ? -1 : (lhs.num > rhs.num ? 1 : 0);
      } else {
        double a = lhs.type == ValueType::kFloat ? lhs.fval
                                                 : static_cast<double>(lhs.num);
        double b = rhs.type == ValueType::kFloat ? rhs.fval
                                                 : static_cast<double>(rhs.num);
        cmp = a < b ? -1 : (a > b ? 1 : 0);
      }
      break;
    }
    case TypeClass::kSymbol:
      cmp = lhs.str.compare(rhs.str);
      cmp = cmp < 0 ? -1 : (cmp > 0 ? 1 : 0);
      break;
    case TypeClass::kBool:
      if (op != CmpOp::kEq && op != CmpOp::kNe) return std::nullopt;
      cmp = lhs.bval == rhs.bval ? 0 : 1;
      break;
    default:
      return std::nullopt;
  }
  switch (op) {
    case CmpOp::kEq:
      return cmp == 0;
    case CmpOp::kNe:
      return cmp != 0;
    case CmpOp::kLt:
      return cmp < 0;
    case CmpOp::kLe:
      return cmp <= 0;
    case CmpOp::kGt:
      return cmp > 0;
    case CmpOp::kGe:
      return cmp >= 0;
  }
  return std::nullopt;
}

// ---------------------------------------------------------------------------
// Join connectivity (RQ104)
// ---------------------------------------------------------------------------

/// Union-find over body-atom indices, connected through shared variables.
struct UnionFind {
  std::vector<int> parent;
  explicit UnionFind(size_t n) : parent(n) {
    for (size_t i = 0; i < n; ++i) parent[i] = static_cast<int>(i);
  }
  int Find(int x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  }
  void Union(int a, int b) { parent[Find(a)] = Find(b); }
};

void LintCartesianJoin(int rule_index, const Rule& rule,
                       DiagnosticEngine* diags) {
  // Variables connected by a constraint count as one connector: the
  // planner applies `x = y` as soon as both sides bind, so atoms joined
  // only through a constraint are not a cartesian product.
  std::map<std::string, std::string> var_parent;
  std::function<std::string(const std::string&)> canon =
      [&](const std::string& v) -> std::string {
    auto it = var_parent.find(v);
    if (it == var_parent.end() || it->second == v) return v;
    std::string root = canon(it->second);
    it->second = root;
    return root;
  };
  for (const Constraint& c : rule.constraints) {
    std::set<std::string> cvars;
    c.CollectVars(&cvars);
    if (cvars.size() < 2) continue;
    std::string rep = canon(*cvars.begin());
    for (const std::string& v : cvars) {
      var_parent[canon(v)] = rep;
    }
  }

  std::vector<const Atom*> joined;  // positive atoms that bind variables
  for (const Atom& atom : rule.body) {
    if (atom.negated) continue;
    std::set<std::string> avars;
    atom.CollectVars(&avars);
    if (!avars.empty()) joined.push_back(&atom);
  }
  if (joined.size() < 2) return;

  UnionFind uf(joined.size());
  std::map<std::string, int> first_atom_of_var;
  for (size_t i = 0; i < joined.size(); ++i) {
    std::set<std::string> avars;
    joined[i]->CollectVars(&avars);
    for (const std::string& v : avars) {
      std::string key = canon(v);
      auto [it, inserted] =
          first_atom_of_var.emplace(key, static_cast<int>(i));
      if (!inserted) uf.Union(static_cast<int>(i), it->second);
    }
  }
  std::set<int> components;
  for (size_t i = 0; i < joined.size(); ++i) {
    components.insert(uf.Find(static_cast<int>(i)));
  }
  if (components.size() < 2) return;

  // Name one atom per component so the message shows what fails to join.
  std::string parts;
  std::set<int> named;
  for (size_t i = 0; i < joined.size(); ++i) {
    if (!named.insert(uf.Find(static_cast<int>(i))).second) continue;
    if (!parts.empty()) parts += " x ";
    parts += joined[i]->ToString();
  }
  diags
      ->Warning("RQ104",
                "cartesian product: body atoms share no variables (" + parts +
                    "); the join enumerates every combination")
      .AtRule(rule_index, rule);
}

}  // namespace

void LintProgram(const Program& program, DiagnosticEngine* diags) {
  // --- Predicate usage / reachability ------------------------------------
  std::set<std::string> used;  // occurs in any rule (head or body)
  std::set<std::string> used_in_body;
  std::map<std::string, std::vector<const Rule*>> rules_of;
  for (const Rule& rule : program.rules) {
    used.insert(rule.head.predicate);
    rules_of[rule.head.predicate].push_back(&rule);
    for (const Atom& atom : rule.body) {
      used.insert(atom.predicate);
      used_in_body.insert(atom.predicate);
    }
  }

  // RQ101: declared, not an output, and appearing in no rule at all.
  for (const RelationDecl& decl : program.decls) {
    if (decl.is_output || used.count(decl.name) > 0) continue;
    std::string role = decl.is_input ? "input relation" : "relation";
    diags
        ->Warning("RQ101", std::string(role) + " '" + decl.name +
                               "' is declared but never used")
        .AtPredicate(decl.name);
  }

  // RQ102: rules whose derivations no output can observe. Only meaningful
  // when the program names outputs (library fragments may not).
  std::vector<std::string> outputs = program.OutputRelations();
  if (!outputs.empty()) {
    std::set<std::string> live(outputs.begin(), outputs.end());
    bool changed = true;
    while (changed) {
      changed = false;
      for (const Rule& rule : program.rules) {
        if (live.count(rule.head.predicate) == 0) continue;
        for (const Atom& atom : rule.body) {
          if (live.insert(atom.predicate).second) changed = true;
        }
      }
    }
    for (size_t i = 0; i < program.rules.size(); ++i) {
      const Rule& rule = program.rules[i];
      if (live.count(rule.head.predicate) > 0) continue;
      diags
          ->Warning("RQ102", "rule derives '" + rule.head.predicate +
                                 "', which no output depends on")
          .AtRule(static_cast<int>(i), rule)
          .AtPredicate(rule.head.predicate);
    }
  }

  // RQ103: relations that can never hold a tuple — no facts can reach
  // them. Fixpoint: inputs are possibly-nonempty; a rule head becomes
  // possibly-nonempty once every positive body atom is. Only warn for
  // relations something depends on (unused ones already got RQ101).
  {
    std::set<std::string> nonempty;
    for (const RelationDecl& decl : program.decls) {
      if (decl.is_input) nonempty.insert(decl.name);
    }
    bool changed = true;
    while (changed) {
      changed = false;
      for (const Rule& rule : program.rules) {
        if (nonempty.count(rule.head.predicate) > 0) continue;
        bool all_nonempty = true;
        for (const Atom& atom : rule.body) {
          if (!atom.negated && nonempty.count(atom.predicate) == 0) {
            all_nonempty = false;
            break;
          }
        }
        if (all_nonempty) {
          nonempty.insert(rule.head.predicate);
          changed = true;
        }
      }
    }
    for (const RelationDecl& decl : program.decls) {
      if (decl.is_input || nonempty.count(decl.name) > 0) continue;
      if (!decl.is_output && used.count(decl.name) == 0) continue;  // RQ101
      std::string why =
          rules_of.count(decl.name) > 0
              ? "every rule deriving it depends on an always-empty relation"
              : "it has no rules and is not an input";
      diags
          ->Warning("RQ103", "relation '" + decl.name + "' is always empty: " +
                                 why)
          .AtPredicate(decl.name);
    }
  }

  // --- Rule-level lints ---------------------------------------------------
  std::map<std::string, int> rule_texts;  // rendered rule -> first index
  for (size_t i = 0; i < program.rules.size(); ++i) {
    const Rule& rule = program.rules[i];

    // RQ106: exact duplicates (identical after rendering).
    std::string text = rule.ToString();
    auto [it, inserted] = rule_texts.emplace(text, static_cast<int>(i));
    if (!inserted) {
      diags
          ->Warning("RQ106", "duplicate of rule " + std::to_string(it->second) +
                                 "; the second occurrence derives nothing new")
          .AtRule(static_cast<int>(i), rule)
          .AtPredicate(rule.head.predicate);
    }

    // RQ104: disconnected join graph.
    LintCartesianJoin(static_cast<int>(i), rule, diags);

    // RQ107: ground constraints fold at compile time.
    for (const Constraint& c : rule.constraints) {
      std::set<std::string> cvars;
      c.CollectVars(&cvars);
      if (!cvars.empty()) continue;
      auto lhs = FoldTerm(c.lhs);
      auto rhs = FoldTerm(c.rhs);
      if (!lhs || !rhs) continue;
      auto verdict = FoldCmp(c.op, *lhs, *rhs);
      if (!verdict) continue;
      Diagnostic& d = diags->Warning(
          "RQ107", "constraint " + c.ToString() + " is always " +
                       (*verdict ? "true (redundant)" : "false"));
      d.AtRule(static_cast<int>(i), rule);
      if (!*verdict) d.Note("this rule can never fire");
    }
  }

  // RQ105: unbounded arithmetic recursion (no lattice, no bound) — the
  // termination analysis already knows how to find these.
  DependencyGraph graph = DependencyGraph::Build(program);
  TerminationResult termination = AnalyzeTermination(program, graph);
  for (const std::string& warning : termination.warnings) {
    diags->Warning("RQ105", warning);
  }
}

}  // namespace raqlet::analysis
