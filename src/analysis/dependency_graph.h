#ifndef RAQLET_ANALYSIS_DEPENDENCY_GRAPH_H_
#define RAQLET_ANALYSIS_DEPENDENCY_GRAPH_H_

// Predicate dependency graph over a DLIR program: there is an edge
// B -> H for every rule H(...) :- ... B(...) ... . The edge is marked
// negated if B occurs under negation and aggregated if the rule computes a
// head aggregate. SCCs of this graph are the evaluation units of the
// engine and the subjects of the §4 analyses (linearity, mutual recursion,
// stratification).

#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/status.h"
#include "dlir/program.h"

namespace raqlet::analysis {

struct DependencyEdge {
  std::string from;  // body predicate
  std::string to;    // head predicate
  bool negated = false;
  bool aggregated = false;
};

class DependencyGraph {
 public:
  /// Builds the graph for `program` (declarations without rules become
  /// isolated nodes).
  static DependencyGraph Build(const dlir::Program& program);

  const std::set<std::string>& predicates() const { return predicates_; }
  const std::vector<DependencyEdge>& edges() const { return edges_; }

  /// Predicates `to` directly depends on (its body predicates).
  std::set<std::string> DependenciesOf(const std::string& to) const;

  /// True if there is an edge from -> to.
  bool HasEdge(const std::string& from, const std::string& to) const;

  /// Strongly connected components in topological order: every SCC appears
  /// after all SCCs it depends on, so this is a valid evaluation order.
  const std::vector<std::vector<std::string>>& SccsInTopologicalOrder() const {
    return sccs_;
  }

  /// Index of the SCC containing `predicate` in SccsInTopologicalOrder().
  int SccOf(const std::string& predicate) const;

  /// True if the SCC at `scc_index` is recursive: it has more than one
  /// predicate, or a single predicate with a self-edge.
  bool IsRecursiveScc(int scc_index) const;

  /// True if `predicate` participates in any recursion.
  bool IsRecursivePredicate(const std::string& predicate) const;

  std::string ToString() const;

 private:
  void ComputeSccs();

  std::set<std::string> predicates_;
  std::vector<DependencyEdge> edges_;
  std::map<std::string, std::set<std::string>> successors_;  // from -> tos
  std::vector<std::vector<std::string>> sccs_;
  std::map<std::string, int> scc_of_;
  std::set<int> recursive_sccs_;
};

}  // namespace raqlet::analysis

#endif  // RAQLET_ANALYSIS_DEPENDENCY_GRAPH_H_
