#ifndef RAQLET_ANALYSIS_TYPECHECK_H_
#define RAQLET_ANALYSIS_TYPECHECK_H_

// DLIR static checking: the MLIR-style verifier every optimizer pass
// boundary and every frontend lowering is held to.
//
// CheckProgram accumulates *errors* — structural violations (the checks
// Program::Validate() performs, re-reported with stable codes and without
// first-error-wins), type errors (a type checker that infers each
// variable's type class from the columns, literals, constraints and
// arithmetic it flows through), and stratification violations reported
// with the full negation cycle. Programs that pass CheckProgram execute on
// the engines without tripping the runtime Status paths that used to be
// the only line of defence (or worse, producing NaN-boxed garbage from a
// symbol fed into arithmetic).
//
// Error codes reported here (catalogue: docs/diagnostics.md):
//   RQ001 duplicate relation declaration
//   RQ002 undeclared predicate
//   RQ003 arity mismatch
//   RQ004 unsafe rule (unbound variable, incl. aggregate inputs)
//   RQ005 invalid aggregate result position
//   RQ006 lattice declaration with non-numeric @min/@max column
//   RQ010 variable used at conflicting column types (kind-mismatch join)
//   RQ011 constant/column type mismatch
//   RQ012 comparison between incompatible types
//   RQ013 arithmetic over a non-numeric operand or column
//   RQ014 non-numeric aggregate input
//   RQ015 non-numeric aggregate result column
//   RQ020 stratification violation (with the negation/aggregation cycle)

#include <string>

#include "analysis/diagnostics.h"
#include "common/status.h"
#include "dlir/program.h"

namespace raqlet::analysis {

/// Type classes the checker reasons in. Numbers and floats share one class
/// (the engines promote between them in arithmetic and comparisons);
/// symbols and booleans are each their own class; kNull columns and
/// never-constrained variables stay unknown and unify with anything.
enum class TypeClass { kUnknown, kNumeric, kSymbol, kBool };

const char* TypeClassName(TypeClass c);
TypeClass TypeClassOf(ValueType type);

/// Runs every structural, type, and stratification check over `program`,
/// accumulating all findings (never stopping at the first) into `diags`.
void CheckProgram(const dlir::Program& program, DiagnosticEngine* diags);

/// CheckProgram folded to a Status: OK when error-free, otherwise an
/// InvalidArgument carrying the full rendered diagnostic list (prefixed
/// with `context` when non-empty). This is the pass-boundary verifier.
Status VerifyProgram(const dlir::Program& program,
                     const std::string& context = "");

/// Whether implicit verification (after every optimizer pass, and before
/// engine execution through the Compiler facade) is on by default: true in
/// debug/sanitizer builds (NDEBUG unset), false in release, overridable
/// either way with the environment variable RAQLET_VERIFY_PASSES=1|0.
/// Explicit verification (raqlet_cli --check, opt::OptOptions) ignores
/// this default.
bool VerifyByDefault();

}  // namespace raqlet::analysis

#endif  // RAQLET_ANALYSIS_TYPECHECK_H_
