#include "analysis/typecheck.h"

#include <cstdlib>
#include <map>
#include <queue>
#include <set>
#include <unordered_map>
#include <vector>

#include "analysis/dependency_graph.h"

namespace raqlet::analysis {

const char* TypeClassName(TypeClass c) {
  switch (c) {
    case TypeClass::kUnknown:
      return "unknown";
    case TypeClass::kNumeric:
      return "numeric";
    case TypeClass::kSymbol:
      return "symbol";
    case TypeClass::kBool:
      return "bool";
  }
  return "?";
}

TypeClass TypeClassOf(ValueType type) {
  switch (type) {
    case ValueType::kNumber:
    case ValueType::kFloat:
      return TypeClass::kNumeric;
    case ValueType::kSymbol:
      return TypeClass::kSymbol;
    case ValueType::kBool:
      return TypeClass::kBool;
    case ValueType::kNull:
      return TypeClass::kUnknown;
  }
  return TypeClass::kUnknown;
}

namespace {

using dlir::Atom;
using dlir::Constraint;
using dlir::Program;
using dlir::RelationDecl;
using dlir::Rule;
using dlir::Term;
using dlir::TermKind;

/// Inferred class of one rule variable plus where the class came from, so
/// a conflict can name both binding sites.
struct VarInfo {
  TypeClass cls = TypeClass::kUnknown;
  std::string origin;
};

/// Checks one rule: structural atom checks, variable class inference and
/// unification, constraint/arithmetic classes, safety, aggregates.
class RuleChecker {
 public:
  RuleChecker(const Program& program,
              const std::unordered_map<std::string, const RelationDecl*>& decls,
              int rule_index, const Rule& rule, DiagnosticEngine* diags)
      : program_(program),
        decls_(decls),
        rule_index_(rule_index),
        rule_(rule),
        diags_(diags) {}

  void Check() {
    // Body atoms first (they define variable classes), positives before
    // negations, the head last — mirrors how bindings flow at runtime.
    for (const Atom& atom : rule_.body) {
      if (!atom.negated) CheckAtom(atom);
    }
    for (const Atom& atom : rule_.body) {
      if (atom.negated) CheckAtom(atom);
    }
    BindConstraintClasses();
    for (const Constraint& c : rule_.constraints) CheckConstraint(c);
    CheckAtom(rule_.head);
    CheckAggregate();
    CheckSafety();
  }

 private:
  Diagnostic& Error(std::string code, std::string message) {
    return diags_->Error(std::move(code), std::move(message))
        .AtRule(rule_index_, rule_);
  }

  std::string ColumnOrigin(const RelationDecl& decl, size_t i) const {
    return "column '" + decl.columns[i].name + "' of '" + decl.name + "' (" +
           ValueTypeToString(decl.columns[i].type) + ")";
  }

  /// Structural checks for one atom; returns its decl when arity-correct.
  const RelationDecl* ResolveAtom(const Atom& atom) {
    auto it = decls_.find(atom.predicate);
    if (it == decls_.end()) {
      Error("RQ002", "undeclared predicate '" + atom.predicate + "'")
          .AtPredicate(atom.predicate);
      return nullptr;
    }
    if (it->second->arity() != atom.args.size()) {
      Error("RQ003", "arity mismatch for '" + atom.predicate + "': declared " +
                         std::to_string(it->second->arity()) +
                         ", used with " + std::to_string(atom.args.size()))
          .AtPredicate(atom.predicate);
      return nullptr;
    }
    return it->second;
  }

  void CheckAtom(const Atom& atom) {
    const RelationDecl* decl = ResolveAtom(atom);
    if (decl == nullptr) return;
    for (size_t i = 0; i < atom.args.size(); ++i) {
      const Term& term = atom.args[i];
      TypeClass want = TypeClassOf(decl->columns[i].type);
      switch (term.kind) {
        case TermKind::kWildcard:
          break;
        case TermKind::kConstant: {
          TypeClass got = TypeClassOf(term.constant.type);
          if (got != TypeClass::kUnknown && want != TypeClass::kUnknown &&
              got != want) {
            Error("RQ011", "constant " + term.constant.ToString() + " (" +
                               TypeClassName(got) + ") used at " +
                               ColumnOrigin(*decl, i))
                .AtPredicate(atom.predicate);
          }
          break;
        }
        case TermKind::kVariable:
          UnifyVar(term.var, want, ColumnOrigin(*decl, i));
          break;
        case TermKind::kBinary: {
          TypeClass got = TermClass(term);
          if (want == TypeClass::kSymbol || want == TypeClass::kBool) {
            Error("RQ013", "arithmetic expression " + term.ToString() +
                               " used at non-numeric " + ColumnOrigin(*decl, i))
                .AtPredicate(atom.predicate);
          }
          (void)got;
          break;
        }
      }
    }
  }

  void UnifyVar(const std::string& var, TypeClass cls, std::string origin) {
    VarInfo& info = vars_[var];
    if (cls == TypeClass::kUnknown) return;
    if (info.cls == TypeClass::kUnknown) {
      info.cls = cls;
      info.origin = std::move(origin);
      return;
    }
    if (info.cls != cls) {
      std::string key = var + "#" + TypeClassName(cls);
      if (!reported_conflicts_.insert(key).second) return;
      Error("RQ010", "variable '" + var + "' is used as both " +
                         TypeClassName(info.cls) + " (" + info.origin +
                         ") and " + TypeClassName(cls) + " (" + origin + ")");
    }
  }

  /// Class of a term in constraint position; reports RQ013 for symbol or
  /// bool operands inside arithmetic.
  TypeClass TermClass(const Term& term) {
    switch (term.kind) {
      case TermKind::kWildcard:
        return TypeClass::kUnknown;
      case TermKind::kConstant:
        return TypeClassOf(term.constant.type);
      case TermKind::kVariable: {
        auto it = vars_.find(term.var);
        return it == vars_.end() ? TypeClass::kUnknown : it->second.cls;
      }
      case TermKind::kBinary: {
        for (const Term& child : term.children) {
          TypeClass c = TermClass(child);
          if (c == TypeClass::kSymbol || c == TypeClass::kBool) {
            std::string key = child.ToString() + "#arith";
            if (reported_conflicts_.insert(key).second) {
              Error("RQ013", "arithmetic over non-numeric operand " +
                                 child.ToString() + " (" + TypeClassName(c) +
                                 ") in " + term.ToString());
            }
          }
        }
        return TypeClass::kNumeric;
      }
    }
    return TypeClass::kUnknown;
  }

  /// Propagates classes through `v = <expr>` constraints so variables
  /// defined only by binding equalities still participate in checks.
  void BindConstraintClasses() {
    bool changed = true;
    while (changed) {
      changed = false;
      for (const Constraint& c : rule_.constraints) {
        if (c.op != dlir::CmpOp::kEq) continue;
        auto try_assign = [&](const Term& target, const Term& source) {
          if (!target.is_var()) return;
          auto it = vars_.find(target.var);
          if (it != vars_.end() && it->second.cls != TypeClass::kUnknown) {
            return;
          }
          // Peek the source class without emitting RQ013 yet (CheckConstraint
          // will): constants and already-classed vars only.
          TypeClass src = TypeClass::kUnknown;
          if (source.is_const()) {
            src = TypeClassOf(source.constant.type);
          } else if (source.is_var()) {
            auto sit = vars_.find(source.var);
            if (sit != vars_.end()) src = sit->second.cls;
          } else if (source.kind == TermKind::kBinary) {
            src = TypeClass::kNumeric;
          }
          if (src == TypeClass::kUnknown) return;
          VarInfo& info = vars_[target.var];
          if (info.cls == TypeClass::kUnknown) {
            info.cls = src;
            info.origin = "constraint " + c.ToString();
            changed = true;
          }
        };
        try_assign(c.lhs, c.rhs);
        try_assign(c.rhs, c.lhs);
      }
    }
  }

  void CheckConstraint(const Constraint& c) {
    TypeClass lhs = TermClass(c.lhs);
    TypeClass rhs = TermClass(c.rhs);
    if (lhs != TypeClass::kUnknown && rhs != TypeClass::kUnknown &&
        lhs != rhs) {
      Error("RQ012", "comparison " + c.ToString() + " between " +
                         TypeClassName(lhs) + " and " + TypeClassName(rhs) +
                         " can never hold");
    }
  }

  void CheckAggregate() {
    if (!rule_.agg.has_value()) return;
    if (rule_.agg_result_pos < 0 ||
        rule_.agg_result_pos >= static_cast<int>(rule_.head.args.size())) {
      Error("RQ005", "aggregate result position " +
                         std::to_string(rule_.agg_result_pos) +
                         " out of range for head of arity " +
                         std::to_string(rule_.head.args.size()));
      return;
    }
    if (rule_.agg->func != dlir::AggFunc::kCount) {
      TypeClass arg = TermClass(rule_.agg->arg);
      if (arg == TypeClass::kSymbol || arg == TypeClass::kBool) {
        Error("RQ014",
              std::string(dlir::AggFuncToString(rule_.agg->func)) + "(" +
                  rule_.agg->arg.ToString() + ") aggregates a " +
                  TypeClassName(arg) +
                  " value; aggregation is defined over numbers");
      }
    }
    auto it = decls_.find(rule_.head.predicate);
    if (it != decls_.end() &&
        it->second->arity() == rule_.head.args.size()) {
      size_t pos = static_cast<size_t>(rule_.agg_result_pos);
      TypeClass result = TypeClassOf(it->second->columns[pos].type);
      if (result == TypeClass::kSymbol || result == TypeClass::kBool) {
        Error("RQ015",
              std::string(dlir::AggFuncToString(rule_.agg->func)) +
                  " result flows into non-numeric " +
                  ColumnOrigin(*it->second, pos))
            .AtPredicate(rule_.head.predicate);
      }
    }
  }

  /// Range restriction, faithful to Program::Validate() but reporting every
  /// unbound variable — and additionally covering aggregate input terms,
  /// which Validate() never looked at (the engines surface those as a
  /// runtime Status today).
  void CheckSafety() {
    std::set<std::string> bound = rule_.PositiveBodyVars();
    bool changed = true;
    while (changed) {
      changed = false;
      for (const Constraint& c : rule_.constraints) {
        if (c.op != dlir::CmpOp::kEq) continue;
        auto try_bind = [&](const Term& target, const Term& source) {
          if (!target.is_var() || bound.count(target.var) > 0) return;
          std::set<std::string> src_vars;
          source.CollectVars(&src_vars);
          for (const std::string& v : src_vars) {
            if (bound.count(v) == 0) return;
          }
          bound.insert(target.var);
          changed = true;
        };
        try_bind(c.lhs, c.rhs);
        try_bind(c.rhs, c.lhs);
      }
    }
    if (rule_.agg.has_value() && rule_.agg_result_pos >= 0 &&
        rule_.agg_result_pos < static_cast<int>(rule_.head.args.size()) &&
        rule_.head.args[static_cast<size_t>(rule_.agg_result_pos)].is_var()) {
      bound.insert(
          rule_.head.args[static_cast<size_t>(rule_.agg_result_pos)].var);
    }
    std::set<std::string> required;
    rule_.head.CollectVars(&required);
    for (const Atom& atom : rule_.body) {
      if (atom.negated) atom.CollectVars(&required);
    }
    for (const Constraint& c : rule_.constraints) c.CollectVars(&required);
    if (rule_.agg.has_value()) rule_.agg->arg.CollectVars(&required);
    for (const std::string& v : required) {
      if (bound.count(v) == 0) {
        Error("RQ004", "unsafe rule: variable '" + v +
                           "' is not bound by any positive body atom");
      }
    }
  }

  const Program& program_;
  const std::unordered_map<std::string, const RelationDecl*>& decls_;
  int rule_index_;
  const Rule& rule_;
  DiagnosticEngine* diags_;
  std::map<std::string, VarInfo> vars_;
  std::set<std::string> reported_conflicts_;
};

/// Renders the dependency chain head ->* tail (derivation direction) inside
/// one SCC, for stratification-violation notes. Both predicates share an
/// SCC, so a path always exists (possibly the trivial one).
std::vector<std::string> SccPath(const DependencyGraph& graph,
                                 const std::string& from,
                                 const std::string& to, int scc) {
  std::map<std::string, std::string> parent;
  std::queue<std::string> frontier;
  frontier.push(from);
  parent[from] = "";
  while (!frontier.empty()) {
    std::string current = frontier.front();
    frontier.pop();
    if (current == to && current != from) break;
    for (const DependencyEdge& e : graph.edges()) {
      // Derivation direction: `e.from` feeds `e.to`.
      if (e.from != current) continue;
      if (graph.SccOf(e.to) != scc) continue;
      if (parent.count(e.to) > 0) continue;
      parent[e.to] = current;
      frontier.push(e.to);
    }
  }
  std::vector<std::string> path;
  if (from == to) return {from};
  auto it = parent.find(to);
  if (it == parent.end()) return {from, to};  // defensive; should not happen
  for (std::string node = to; !node.empty(); node = parent[node]) {
    path.insert(path.begin(), node);
    if (node == from) break;
  }
  return path;
}

void CheckStratification(const Program& program, DiagnosticEngine* diags) {
  DependencyGraph graph = DependencyGraph::Build(program);
  for (size_t i = 0; i < program.rules.size(); ++i) {
    const Rule& rule = program.rules[i];
    int head_scc = graph.SccOf(rule.head.predicate);
    bool head_recursive = graph.IsRecursiveScc(head_scc);
    for (const Atom& atom : rule.body) {
      if (graph.SccOf(atom.predicate) != head_scc) continue;
      const bool negation = atom.negated;
      const bool aggregation = !negation && rule.agg.has_value() &&
                               head_recursive;
      if (!negation && !aggregation) continue;
      Diagnostic& d =
          diags
              ->Error("RQ020",
                      std::string(negation ? "negation of '" : "aggregation over '") +
                          atom.predicate +
                          "' inside its own recursive component (the program "
                          "is not stratifiable)")
              .AtRule(static_cast<int>(i), rule)
              .AtPredicate(atom.predicate);
      // The full cycle: head derives ... derives the offending predicate,
      // which feeds back into head through the negation/aggregation.
      std::vector<std::string> path =
          SccPath(graph, rule.head.predicate, atom.predicate, head_scc);
      std::string cycle;
      for (const std::string& node : path) {
        if (!cycle.empty()) cycle += " -> ";
        cycle += node;
      }
      cycle += negation ? " --(negated)--> " : " --(aggregated)--> ";
      cycle += rule.head.predicate;
      d.Note((negation ? "negation cycle: " : "aggregation cycle: ") + cycle);
    }
  }
}

}  // namespace

void CheckProgram(const Program& program, DiagnosticEngine* diags) {
  std::unordered_map<std::string, const RelationDecl*> by_name;
  for (const RelationDecl& decl : program.decls) {
    if (!by_name.emplace(decl.name, &decl).second) {
      diags->Error("RQ001", "duplicate declaration of relation '" + decl.name +
                                "'")
          .AtPredicate(decl.name);
    }
  }
  for (const RelationDecl& decl : program.decls) {
    if (decl.lattice == dlir::LatticeKind::kNone) continue;
    const char* kind = decl.lattice == dlir::LatticeKind::kMin ? "@min" : "@max";
    if (decl.columns.empty()) {
      diags->Error("RQ006", std::string("lattice relation '") + decl.name +
                                "' has no columns to merge " + kind + " over")
          .AtPredicate(decl.name);
      continue;
    }
    TypeClass last = TypeClassOf(decl.columns.back().type);
    if (last != TypeClass::kNumeric && last != TypeClass::kUnknown) {
      diags->Error("RQ006",
                   std::string("lattice relation '") + decl.name + "' merges " +
                       kind + " over its last column '" +
                       decl.columns.back().name + "', which is " +
                       TypeClassName(last) + " (must be numeric)")
          .AtPredicate(decl.name);
    }
  }
  for (size_t i = 0; i < program.rules.size(); ++i) {
    RuleChecker(program, by_name, static_cast<int>(i), program.rules[i], diags)
        .Check();
  }
  CheckStratification(program, diags);
}

Status VerifyProgram(const Program& program, const std::string& context) {
  DiagnosticEngine diags;
  CheckProgram(program, &diags);
  return diags.ToStatus(context);
}

bool VerifyByDefault() {
  static const bool value = [] {
    if (const char* env = std::getenv("RAQLET_VERIFY_PASSES");
        env != nullptr && env[0] != '\0') {
      return env[0] != '0';
    }
#ifdef NDEBUG
    return false;
#else
    return true;
#endif
  }();
  return value;
}

}  // namespace raqlet::analysis
