#include "pgir/pgir.h"

#include <sstream>

#include "common/str_util.h"

namespace raqlet::pgir {

namespace {

using cypher::BinOp;
using cypher::EdgeDirection;
using cypher::Expr;
using cypher::ExprKind;

}  // namespace

std::string NodePat::ToString() const {
  return "(" + id + (label.empty() ? "" : ":" + label) + ")";
}

std::string EdgePat::ToString() const {
  std::string inner = id;
  if (!label.empty()) inner += ":" + label;
  if (variable_length) {
    inner += "*" + std::to_string(min_hops) + "..";
    if (max_hops != cypher::EdgePattern::kUnboundedHops) {
      inner += std::to_string(max_hops);
    }
  }
  if (shortest) inner += " shortest";
  std::string arrow;
  switch (direction) {
    case EdgeDirection::kOutgoing:
      arrow = "-[" + inner + "]->";
      break;
    case EdgeDirection::kIncoming:
      arrow = "<-[" + inner + "]-";
      break;
    case EdgeDirection::kUndirected:
      arrow = "-[" + inner + "]-";
      break;
  }
  return src.ToString() + arrow + dst.ToString();
}

std::string PgirQuery::ToString() const {
  std::ostringstream os;
  for (const Op& op : ops) {
    if (const auto* match = std::get_if<MatchOp>(&op)) {
      os << "MATCH";
      for (const EdgePat& e : match->edges) os << "\n  " << e.ToString();
      for (const NodePat& n : match->nodes) os << "\n  " << n.ToString();
      os << "\n";
    } else if (const auto* where = std::get_if<WhereOp>(&op)) {
      os << "WHERE\n  " << where->predicate.ToString() << "\n";
    } else if (const auto* with = std::get_if<WithOp>(&op)) {
      os << "WITH" << (with->distinct ? " DISTINCT" : "");
      for (const Item& item : with->items) {
        os << "\n  " << item.expr.ToString() << " AS " << item.alias;
      }
      os << "\n";
    } else if (const auto* ret = std::get_if<ReturnOp>(&op)) {
      os << "RETURN" << (ret->distinct ? " DISTINCT" : "");
      for (const Item& item : ret->items) {
        os << "\n  " << item.expr.ToString() << " AS " << item.alias;
      }
      os << "\n";
    }
  }
  for (const std::string& w : warnings) os << "// warning: " << w << "\n";
  return os.str();
}

namespace {

class Lowerer {
 public:
  explicit Lowerer(const LowerOptions& options) : options_(options) {}

  Result<PgirQuery> Run(const cypher::Query& query) {
    for (const cypher::Clause& clause : query.clauses) {
      if (const auto* match = std::get_if<cypher::MatchClause>(&clause)) {
        RAQLET_RETURN_IF_ERROR(LowerMatch(*match));
      } else if (const auto* with = std::get_if<cypher::WithClause>(&clause)) {
        RAQLET_RETURN_IF_ERROR(LowerWith(*with));
      } else if (const auto* ret = std::get_if<cypher::ReturnClause>(&clause)) {
        RAQLET_RETURN_IF_ERROR(LowerReturn(*ret));
      }
    }
    return std::move(out_);
  }

 private:
  std::string FreshNodeId() { return "n_" + std::to_string(++node_counter_); }
  std::string FreshEdgeId() { return "x" + std::to_string(++edge_counter_); }

  // Substitutes $parameters by their literal values.
  Result<Expr> Resolve(const Expr& expr) const {
    if (expr.kind == ExprKind::kParameter) {
      auto it = options_.parameters.find(expr.parameter);
      if (it == options_.parameters.end()) {
        return Status::InvalidArgument("missing value for parameter $" +
                                       expr.parameter);
      }
      return Expr::Literal(it->second);
    }
    Expr resolved = expr;
    for (Expr& child : resolved.children) {
      RAQLET_ASSIGN_OR_RETURN(child, Resolve(child));
    }
    return resolved;
  }

  // Turns a pattern's property map into `id.prop = value` conjuncts.
  Status AddPropertyConjuncts(
      const std::string& id,
      const std::vector<std::pair<std::string, Expr>>& properties) {
    for (const auto& [prop, value] : properties) {
      RAQLET_ASSIGN_OR_RETURN(Expr resolved, Resolve(value));
      pending_where_.push_back(Expr::Binary(
          BinOp::kEq, Expr::Property(id, prop), std::move(resolved)));
    }
    return Status::OK();
  }

  Result<NodePat> LowerNode(const cypher::NodePattern& node) {
    NodePat out;
    out.id = node.var.empty() ? FreshNodeId() : node.var;
    out.label = node.label;
    RAQLET_RETURN_IF_ERROR(AddPropertyConjuncts(out.id, node.properties));
    return out;
  }

  Status LowerMatch(const cypher::MatchClause& match) {
    MatchOp op;
    for (const cypher::PathPattern& path : match.patterns) {
      RAQLET_ASSIGN_OR_RETURN(NodePat current, LowerNode(path.start));
      if (path.steps.empty()) {
        op.nodes.push_back(current);
        if (path.shortest || !path.path_var.empty()) {
          out_.warnings.push_back("path variable on a single node ignored");
        }
        continue;
      }
      if (path.shortest && path.steps.size() != 1) {
        return Status::Unsupported(
            "shortestPath over multi-step patterns is not supported");
      }
      for (const auto& [edge, node] : path.steps) {
        RAQLET_ASSIGN_OR_RETURN(NodePat next, LowerNode(node));
        EdgePat e;
        e.id = edge.var.empty() ? FreshEdgeId() : edge.var;
        e.label = edge.type;
        e.direction = edge.direction;
        e.variable_length = edge.variable_length;
        e.min_hops = edge.min_hops;
        e.max_hops = edge.max_hops;
        e.shortest = path.shortest;
        if (path.shortest && !edge.variable_length) {
          // shortestPath((a)-[:K]->(b)) degenerates to a 1..1 path.
          e.variable_length = true;
          e.min_hops = 1;
          e.max_hops = 1;
        }
        e.path_id = path.path_var;
        e.src = current;
        e.dst = next;
        RAQLET_RETURN_IF_ERROR(AddPropertyConjuncts(e.id, edge.properties));
        if (e.variable_length && !edge.var.empty()) {
          out_.warnings.push_back(
              "variable-length relationship variable '" + edge.var +
              "' does not bind a single edge; it is ignored");
        }
        op.edges.push_back(std::move(e));
        current = op.edges.back().dst;
      }
    }
    out_.ops.push_back(std::move(op));

    // Property-map conjuncts plus the explicit WHERE form one WhereOp.
    std::vector<Expr> conjuncts = std::move(pending_where_);
    pending_where_.clear();
    if (match.where.has_value()) {
      RAQLET_ASSIGN_OR_RETURN(Expr where, Resolve(*match.where));
      conjuncts.push_back(std::move(where));
    }
    if (!conjuncts.empty()) {
      Expr combined = conjuncts[0];
      for (size_t i = 1; i < conjuncts.size(); ++i) {
        combined = Expr::Binary(BinOp::kAnd, std::move(combined),
                                std::move(conjuncts[i]));
      }
      out_.ops.push_back(WhereOp{std::move(combined)});
    }
    return Status::OK();
  }

  Result<std::vector<Item>> LowerItems(
      const std::vector<cypher::ReturnItem>& items) {
    std::vector<Item> out;
    std::set<std::string> used;
    for (const cypher::ReturnItem& item : items) {
      Item lowered;
      RAQLET_ASSIGN_OR_RETURN(lowered.expr, Resolve(item.expr));
      lowered.alias = item.alias;
      if (lowered.alias.empty()) {
        switch (lowered.expr.kind) {
          case ExprKind::kVariable:
            lowered.alias = lowered.expr.var;
            break;
          case ExprKind::kProperty:
            lowered.alias = lowered.expr.property;
            break;
          case ExprKind::kCall:
            lowered.alias = lowered.expr.function;
            break;
          default:
            lowered.alias = "expr";
            break;
        }
      }
      // Aliases must be unique column names.
      std::string base = lowered.alias;
      int suffix = 1;
      while (!used.insert(lowered.alias).second) {
        lowered.alias = base + "_" + std::to_string(++suffix);
      }
      out.push_back(std::move(lowered));
    }
    return out;
  }

  Status LowerWith(const cypher::WithClause& with) {
    WithOp op;
    op.distinct = with.distinct;
    RAQLET_ASSIGN_OR_RETURN(op.items, LowerItems(with.items));
    out_.ops.push_back(std::move(op));
    if (with.where.has_value()) {
      RAQLET_ASSIGN_OR_RETURN(Expr where, Resolve(*with.where));
      out_.ops.push_back(WhereOp{std::move(where)});
    }
    return Status::OK();
  }

  Status LowerReturn(const cypher::ReturnClause& ret) {
    ReturnOp op;
    op.distinct = ret.distinct;
    RAQLET_ASSIGN_OR_RETURN(op.items, LowerItems(ret.items));
    if (!ret.distinct) {
      out_.warnings.push_back(
          "bag semantics approximated by set semantics (deductive backends "
          "deduplicate); use RETURN DISTINCT for exact equivalence");
    }
    if (!ret.order_by.empty()) {
      out_.warnings.push_back(
          "ORDER BY dropped: deductive backends lack result ordering (§3)");
    }
    if (ret.skip.has_value() || ret.limit.has_value()) {
      out_.warnings.push_back("SKIP/LIMIT dropped (§3)");
    }
    out_.ops.push_back(std::move(op));
    return Status::OK();
  }

  const LowerOptions& options_;
  PgirQuery out_;
  std::vector<Expr> pending_where_;
  int node_counter_ = 0;
  int edge_counter_ = 0;
};

}  // namespace

Result<PgirQuery> LowerCypher(const cypher::Query& query,
                              const LowerOptions& options) {
  Lowerer lowerer(options);
  return lowerer.Run(query);
}

}  // namespace raqlet::pgir
