#ifndef RAQLET_PGIR_CYPHER_PRINTER_H_
#define RAQLET_PGIR_CYPHER_PRINTER_H_

// PGIR -> Cypher / GQL unparsers (the right-hand "Unparsers" column of
// Fig. 1). Since PGIR is normalized Cypher, unparsing is a direct
// pretty-print; the GQL dialect differs only in emitting standalone
// FILTER statements instead of attached WHERE clauses.
//
// Round-trip property (tested): parse(ToCypher(q)) lowers to a PGIR that
// translates to the same DLIR program as q.

#include <string>

#include "pgir/pgir.h"

namespace raqlet::pgir {

/// Renders the query as executable Cypher.
std::string ToCypher(const PgirQuery& query);

/// Renders the query in GQL's dialect (FILTER statements).
std::string ToGql(const PgirQuery& query);

}  // namespace raqlet::pgir

#endif  // RAQLET_PGIR_CYPHER_PRINTER_H_
