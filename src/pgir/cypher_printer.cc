#include "pgir/cypher_printer.h"

#include <sstream>

#include "common/str_util.h"

namespace raqlet::pgir {

namespace {

using cypher::EdgeDirection;

std::string NodeText(const NodePat& node) {
  std::string out = "(" + node.id;
  if (!node.label.empty()) out += ":" + node.label;
  return out + ")";
}

std::string EdgeText(const EdgePat& edge) {
  std::string inner;
  // Compiler-generated edge ids (x1, x2, ...) are kept: re-parsing simply
  // binds them again.
  inner += edge.id;
  if (!edge.label.empty()) inner += ":" + edge.label;
  if (edge.variable_length) {
    inner += "*";
    bool unbounded = edge.max_hops == cypher::EdgePattern::kUnboundedHops;
    if (!(edge.min_hops == 1 && unbounded)) {
      inner += std::to_string(edge.min_hops) + "..";
      if (!unbounded) inner += std::to_string(edge.max_hops);
    }
  }
  std::string box = "[" + inner + "]";
  switch (edge.direction) {
    case EdgeDirection::kOutgoing:
      return "-" + box + "->";
    case EdgeDirection::kIncoming:
      return "<-" + box + "-";
    case EdgeDirection::kUndirected:
      return "-" + box + "-";
  }
  return "-" + box + "-";
}

std::string PatternText(const EdgePat& edge) {
  std::string out;
  if (edge.shortest) {
    std::string path = edge.path_id.empty() ? "" : edge.path_id + " = ";
    return path + "shortestPath(" + NodeText(edge.src) + EdgeText(edge) +
           NodeText(edge.dst) + ")";
  }
  return NodeText(edge.src) + EdgeText(edge) + NodeText(edge.dst);
}

std::string ItemsText(const std::vector<Item>& items) {
  std::vector<std::string> parts;
  for (const Item& item : items) {
    parts.push_back(item.expr.ToString() + " AS " + item.alias);
  }
  return Join(parts, ", ");
}

std::string Render(const PgirQuery& query, bool gql_dialect) {
  std::ostringstream os;
  for (const Op& op : query.ops) {
    if (const auto* match = std::get_if<MatchOp>(&op)) {
      std::vector<std::string> patterns;
      for (const EdgePat& e : match->edges) patterns.push_back(PatternText(e));
      for (const NodePat& n : match->nodes) patterns.push_back(NodeText(n));
      os << "MATCH " << Join(patterns, ", ") << "\n";
    } else if (const auto* where = std::get_if<WhereOp>(&op)) {
      os << (gql_dialect ? "FILTER " : "WHERE ")
         << where->predicate.ToString() << "\n";
    } else if (const auto* with = std::get_if<WithOp>(&op)) {
      os << "WITH " << (with->distinct ? "DISTINCT " : "")
         << ItemsText(with->items) << "\n";
    } else if (const auto* ret = std::get_if<ReturnOp>(&op)) {
      os << "RETURN " << (ret->distinct ? "DISTINCT " : "")
         << ItemsText(ret->items) << "\n";
    }
  }
  return os.str();
}

}  // namespace

std::string ToCypher(const PgirQuery& query) {
  return Render(query, /*gql_dialect=*/false);
}

std::string ToGql(const PgirQuery& query) {
  return Render(query, /*gql_dialect=*/true);
}

}  // namespace raqlet::pgir
