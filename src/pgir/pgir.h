#ifndef RAQLET_PGIR_PGIR_H_
#define RAQLET_PGIR_PGIR_H_

// PGIR — Raqlet's Property Graph IR (§3, Fig. 3b), inspired by GPC [16]
// but extended with the Cypher features the LDBC SNB read workload needs
// (aggregation, variable-length paths, shortest paths).
//
// A PGIR query is a sequence of clause constructs (MATCH, WHERE, WITH,
// RETURN). Lowering from Cypher normalizes the query: anonymous nodes and
// edges receive compiler-generated identifiers (x1, x2, ... for edges, per
// the paper), and inline property conditions ({id: 42}) are extracted into
// WHERE constructs.

#include <map>
#include <string>
#include <variant>
#include <vector>

#include "common/status.h"
#include "cypher/ast.h"

namespace raqlet::pgir {

/// A node pattern: identifier plus optional label.
struct NodePat {
  std::string id;
  std::string label;  // empty = unlabeled
  std::string ToString() const;
};

/// An edge pattern between two node patterns. Simple edges have
/// min_hops == max_hops == 1 and shortest == false.
struct EdgePat {
  std::string id;     // unique, compiler-generated when anonymous
  std::string label;  // relationship type
  cypher::EdgeDirection direction = cypher::EdgeDirection::kOutgoing;
  bool variable_length = false;
  int min_hops = 1;
  int max_hops = 1;  // EdgePattern::kUnboundedHops when open-ended
  bool shortest = false;
  std::string path_id;  // bound path variable (for length(p)), may be empty
  NodePat src;
  NodePat dst;
  std::string ToString() const;
};

/// MATCH construct: edge patterns plus isolated node patterns.
struct MatchOp {
  std::vector<EdgePat> edges;
  std::vector<NodePat> nodes;
};

/// WHERE construct: a boolean predicate over the bound identifiers.
struct WhereOp {
  cypher::Expr predicate;
};

struct Item {
  cypher::Expr expr;
  std::string alias;  // always non-empty after lowering
};

/// WITH construct: projection (+ optional aggregation), resets the
/// visible identifiers to the item aliases.
struct WithOp {
  std::vector<Item> items;
  bool distinct = false;
};

/// RETURN construct: the final projection.
struct ReturnOp {
  std::vector<Item> items;
  bool distinct = false;
};

using Op = std::variant<MatchOp, WhereOp, WithOp, ReturnOp>;

struct PgirQuery {
  std::vector<Op> ops;
  /// Normalization notes: dropped ORDER BY/SKIP/LIMIT, bag->set semantics.
  std::vector<std::string> warnings;
  std::string ToString() const;
};

struct LowerOptions {
  /// Values for $parameters appearing in the query.
  std::map<std::string, dlir::Constant> parameters;
};

/// Lowers a parsed Cypher query into PGIR (Fig. 3a -> Fig. 3b):
/// identifier assignment, property-map extraction into WHERE, ORDER
/// BY/LIMIT removal (warned), parameter substitution.
Result<PgirQuery> LowerCypher(const cypher::Query& query,
                              const LowerOptions& options = {});

}  // namespace raqlet::pgir

#endif  // RAQLET_PGIR_PGIR_H_
