#ifndef RAQLET_PGIR_PGIR_TO_DLIR_H_
#define RAQLET_PGIR_PGIR_TO_DLIR_H_

// PGIR -> DLIR translation (§3, Fig. 3b -> Fig. 3c).
//
// Each PGIR clause construct becomes one DLIR rule (Match1, Where1, ...,
// Return), threading the set of visible identifiers through the rule
// heads. Node/edge patterns map to the EDBs of the DL-Schema; node
// identifiers stand for node ids (first EDB column). Variable-length
// patterns expand into recursive auxiliary predicates; shortestPath
// expands into a @min lattice distance predicate (DESIGN.md).

#include <string>

#include "common/status.h"
#include "dlir/program.h"
#include "pgir/pgir.h"
#include "schema/dl_schema.h"

namespace raqlet::pgir {

struct TranslateOptions {
  /// Name of the output relation (paper: "Return").
  std::string output_relation = "Return";
};

/// Translates a PGIR query into a DLIR program over `dl`'s EDBs. The
/// resulting program validates and carries one is_output relation.
Result<dlir::Program> TranslateToDlir(const PgirQuery& query,
                                      const schema::DlSchema& dl,
                                      const TranslateOptions& options = {});

}  // namespace raqlet::pgir

#endif  // RAQLET_PGIR_PGIR_TO_DLIR_H_
