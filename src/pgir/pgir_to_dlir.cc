#include "pgir/pgir_to_dlir.h"

#include <map>
#include <optional>
#include <set>

#include "common/str_util.h"

namespace raqlet::pgir {

namespace {

using cypher::BinOp;
using cypher::EdgeDirection;
using cypher::Expr;
using cypher::ExprKind;
using dlir::Atom;
using dlir::CmpOp;
using dlir::Constraint;
using dlir::Program;
using dlir::RelationDecl;
using dlir::Rule;
using dlir::Term;

// What a PGIR identifier denotes during translation.
struct Binding {
  enum Kind { kNode, kEdge, kValue, kPathLength };
  Kind kind = kValue;
  std::string label;  // node label (kNode) or edge label (kEdge)
  ValueType type = ValueType::kNumber;
};

class Translator {
 public:
  Translator(const PgirQuery& query, const schema::DlSchema& dl,
             const TranslateOptions& options)
      : query_(query), dl_(dl), options_(options) {}

  Result<Program> Run() {
    program_.decls = dl_.edbs;
    bool saw_return = false;
    for (const Op& op : query_.ops) {
      if (saw_return) {
        return Status::InvalidArgument("RETURN must be the final construct");
      }
      if (const auto* match = std::get_if<MatchOp>(&op)) {
        RAQLET_RETURN_IF_ERROR(TranslateMatch(*match));
      } else if (const auto* where = std::get_if<WhereOp>(&op)) {
        RAQLET_RETURN_IF_ERROR(TranslateWhere(*where));
      } else if (const auto* with = std::get_if<WithOp>(&op)) {
        RAQLET_RETURN_IF_ERROR(
            TranslateProjection(with->items, "With" +
                                std::to_string(++with_counter_), false));
      } else if (const auto* ret = std::get_if<ReturnOp>(&op)) {
        RAQLET_RETURN_IF_ERROR(TranslateProjection(
            ret->items, options_.output_relation, true));
        saw_return = true;
      }
    }
    if (!saw_return) {
      return Status::InvalidArgument("PGIR query lacks a RETURN construct");
    }
    RAQLET_RETURN_IF_ERROR(program_.Validate());
    return std::move(program_);
  }

 private:
  // ---- frontier helpers ----

  // The frontier is the ordered list of identifiers visible after the
  // previous clause; each is a DLIR variable in the previous rule's head.
  Atom FrontierAtom() const {
    Atom atom;
    atom.predicate = prev_rule_;
    for (const std::string& id : frontier_) atom.args.push_back(Term::Var(id));
    return atom;
  }

  Status DeclareRule(const std::string& name, bool is_output) {
    RelationDecl decl;
    decl.name = name;
    for (const std::string& id : frontier_) {
      auto it = env_.find(id);
      if (it == env_.end()) {
        return Status::Internal("frontier identifier '" + id +
                                "' has no binding while declaring '" + name +
                                "'");
      }
      decl.columns.push_back(Column{id, it->second.type});
    }
    decl.is_output = is_output;
    program_.decls.push_back(std::move(decl));
    return Status::OK();
  }

  std::string FreshAux(const std::string& prefix) {
    return prefix + std::to_string(++aux_counter_);
  }

  // ---- pattern pieces ----

  // Adds the node-label EDB atom for `node` (Fig. 3c includes Person(n, _,
  // ...) atoms for every labeled pattern node) and registers the binding.
  Status AddNodePattern(const NodePat& node, Rule* rule,
                        std::vector<std::string>* new_ids) {
    auto it = env_.find(node.id);
    if (it != env_.end()) {
      if (!node.label.empty() && it->second.label != node.label) {
        return Status::InvalidArgument("identifier '" + node.id +
                                       "' used with conflicting labels");
      }
    } else {
      if (node.label.empty()) {
        return Status::Unsupported(
            "unlabeled node pattern introduces '" + node.id +
            "': Raqlet requires a label to resolve the EDB");
      }
      env_[node.id] = Binding{Binding::kNode, node.label, ValueType::kNumber};
      new_ids->push_back(node.id);
    }
    if (!node.label.empty()) {
      const schema::NodeRelationInfo* info = dl_.FindNode(node.label);
      if (info == nullptr) {
        return Status::NotFound("no node type with label '" + node.label +
                                "' in the schema");
      }
      Atom atom;
      atom.predicate = info->relation;
      atom.args.push_back(Term::Var(node.id));
      for (size_t i = 1; i < info->arity(); ++i) {
        atom.args.push_back(Term::Wildcard());
      }
      rule->body.push_back(std::move(atom));
    }
    return Status::OK();
  }

  // Returns the (possibly auxiliary) relation implementing a single hop of
  // `edge`, as a (predicate, has_id_column) pair oriented src -> dst.
  // Directed edges use the EDB directly (swapping endpoints when the
  // pattern travels against the schema direction); undirected edges get an
  // auxiliary 2-rule IDB.
  struct HopRelation {
    std::string predicate;
    bool swapped = false;    // atom args are (dst, src)
    bool undirected = false; // auxiliary relation, args (a, b) symmetric
    const schema::EdgeRelationInfo* info = nullptr;
  };

  Result<HopRelation> ResolveHop(const EdgePat& edge) {
    if (edge.label.empty()) {
      return Status::Unsupported(
          "edge pattern '" + edge.id +
          "' has no relationship type: Raqlet requires one to resolve the "
          "EDB");
    }
    const schema::EdgeRelationInfo* info = dl_.FindEdge(edge.label);
    if (info == nullptr) {
      return Status::NotFound("no edge type with label '" + edge.label +
                              "' in the schema");
    }
    HopRelation hop;
    hop.info = info;
    if (edge.direction == EdgeDirection::kUndirected) {
      // Aux predicate Undir_<EDB>(a, b) with both orientations. Cached per
      // edge relation.
      auto it = undirected_cache_.find(info->relation);
      if (it != undirected_cache_.end()) {
        hop.predicate = it->second;
        hop.undirected = true;
        return hop;
      }
      std::string name = "Undir_" + info->relation;
      RelationDecl decl;
      decl.name = name;
      decl.columns = {Column{"a", ValueType::kNumber},
                      Column{"b", ValueType::kNumber}};
      program_.decls.push_back(decl);
      for (bool swap : {false, true}) {
        Rule rule;
        rule.head.predicate = name;
        rule.head.args = {Term::Var("a"), Term::Var("b")};
        Atom atom;
        atom.predicate = info->relation;
        atom.args.push_back(Term::Var(swap ? "b" : "a"));
        atom.args.push_back(Term::Var(swap ? "a" : "b"));
        for (size_t i = 0; i < info->prop_names.size(); ++i) {
          atom.args.push_back(Term::Wildcard());
        }
        rule.body.push_back(std::move(atom));
        program_.rules.push_back(std::move(rule));
      }
      undirected_cache_[info->relation] = name;
      hop.predicate = name;
      hop.undirected = true;
      return hop;
    }
    hop.predicate = info->relation;
    hop.swapped = edge.direction == EdgeDirection::kIncoming;
    return hop;
  }

  // Emits the atom(s) for a simple (single-hop) edge into `rule` and binds
  // the edge identifier to the edge's `id` property column when available.
  Status AddSimpleEdge(const EdgePat& edge, const HopRelation& hop,
                       Rule* rule, std::vector<std::string>* new_ids) {
    Atom atom;
    atom.predicate = hop.predicate;
    const std::string& a = hop.swapped ? edge.dst.id : edge.src.id;
    const std::string& b = hop.swapped ? edge.src.id : edge.dst.id;
    atom.args.push_back(Term::Var(a));
    atom.args.push_back(Term::Var(b));
    bool bound_edge_id = false;
    if (!hop.undirected) {
      for (const std::string& prop : hop.info->prop_names) {
        if (prop == "id") {
          atom.args.push_back(Term::Var(edge.id));
          bound_edge_id = true;
        } else {
          atom.args.push_back(Term::Wildcard());
        }
      }
    }
    rule->body.push_back(std::move(atom));
    if (bound_edge_id && env_.find(edge.id) == env_.end()) {
      env_[edge.id] = Binding{Binding::kEdge, edge.label, ValueType::kNumber};
      new_ids->push_back(edge.id);
    }
    return Status::OK();
  }

  // Generates the recursive auxiliary predicates for a variable-length or
  // shortest-path edge and emits the call atom into `rule`.
  Status AddRecursiveEdge(const EdgePat& edge, const HopRelation& hop,
                          Rule* rule, std::vector<std::string>* new_ids) {
    // Hop relation without property columns: reuse undirected aux or wrap
    // the EDB in a 2-column view so recursion is uniform.
    std::string hop_pred;
    if (hop.undirected) {
      hop_pred = hop.predicate;
    } else {
      auto key = hop.predicate + (hop.swapped ? "#rev" : "#fwd");
      auto it = hop_cache_.find(key);
      if (it != hop_cache_.end()) {
        hop_pred = it->second;
      } else {
        hop_pred = FreshAux("Hop");
        RelationDecl decl;
        decl.name = hop_pred;
        decl.columns = {Column{"a", ValueType::kNumber},
                        Column{"b", ValueType::kNumber}};
        program_.decls.push_back(decl);
        Rule hop_rule;
        hop_rule.head.predicate = hop_pred;
        hop_rule.head.args = {Term::Var("a"), Term::Var("b")};
        Atom atom;
        atom.predicate = hop.predicate;
        atom.args.push_back(Term::Var(hop.swapped ? "b" : "a"));
        atom.args.push_back(Term::Var(hop.swapped ? "a" : "b"));
        for (size_t i = 0; i < hop.info->prop_names.size(); ++i) {
          atom.args.push_back(Term::Wildcard());
        }
        hop_rule.body.push_back(std::move(atom));
        program_.rules.push_back(std::move(hop_rule));
        hop_cache_[key] = hop_pred;
      }
    }

    if (edge.shortest) {
      // @min lattice distance: terminates on cyclic graphs.
      std::string sp = FreshAux("Shortest");
      RelationDecl decl;
      decl.name = sp;
      decl.columns = {Column{"a", ValueType::kNumber},
                      Column{"b", ValueType::kNumber},
                      Column{"d", ValueType::kNumber}};
      decl.lattice = dlir::LatticeKind::kMin;
      program_.decls.push_back(decl);
      {
        Rule base;
        base.head.predicate = sp;
        base.head.args = {Term::Var("a"), Term::Var("b"), Term::Num(1)};
        base.body.push_back(Atom{hop_pred, {Term::Var("a"), Term::Var("b")}});
        program_.rules.push_back(std::move(base));
        Rule step;
        step.head.predicate = sp;
        step.head.args = {Term::Var("a"), Term::Var("b"),
                          Term::Binary(dlir::ArithOp::kAdd, Term::Var("d"),
                                       Term::Num(1))};
        step.body.push_back(
            Atom{sp, {Term::Var("a"), Term::Var("z"), Term::Var("d")}});
        step.body.push_back(Atom{hop_pred, {Term::Var("z"), Term::Var("b")}});
        program_.rules.push_back(std::move(step));
      }
      // Call atom: bind the path length when a path variable exists.
      std::string len_id;
      if (!edge.path_id.empty()) {
        len_id = edge.path_id + "_len";
        env_[len_id] = Binding{Binding::kPathLength, "", ValueType::kNumber};
        new_ids->push_back(len_id);
        path_length_var_[edge.path_id] = len_id;
      }
      Atom call;
      call.predicate = sp;
      call.args.push_back(Term::Var(edge.src.id));
      call.args.push_back(Term::Var(edge.dst.id));
      call.args.push_back(len_id.empty() ? Term::Wildcard()
                                         : Term::Var(len_id));
      rule->body.push_back(std::move(call));
      return Status::OK();
    }

    // Plain variable-length [m..n].
    const int min_hops = edge.min_hops;
    const int max_hops = edge.max_hops;
    const bool unbounded = max_hops == cypher::EdgePattern::kUnboundedHops;

    // Unbounded reachability predicate (1..inf), shared per hop relation.
    auto reach_of = [&](const std::string& hops) -> std::string {
      auto it = reach_cache_.find(hops);
      if (it != reach_cache_.end()) return it->second;
      std::string reach = FreshAux("Reach");
      RelationDecl decl;
      decl.name = reach;
      decl.columns = {Column{"a", ValueType::kNumber},
                      Column{"b", ValueType::kNumber}};
      program_.decls.push_back(decl);
      Rule base;
      base.head.predicate = reach;
      base.head.args = {Term::Var("a"), Term::Var("b")};
      base.body.push_back(Atom{hops, {Term::Var("a"), Term::Var("b")}});
      program_.rules.push_back(std::move(base));
      Rule step;
      step.head.predicate = reach;
      step.head.args = {Term::Var("a"), Term::Var("b")};
      step.body.push_back(Atom{reach, {Term::Var("a"), Term::Var("z")}});
      step.body.push_back(Atom{hops, {Term::Var("z"), Term::Var("b")}});
      program_.rules.push_back(std::move(step));
      reach_cache_[hops] = reach;
      return reach;
    };

    if (unbounded && min_hops <= 1) {
      std::string reach = reach_of(hop_pred);
      if (min_hops == 0) {
        // Zero-length: src = dst also qualifies.
        std::string vl = FreshAux("VarLen");
        RelationDecl decl;
        decl.name = vl;
        decl.columns = {Column{"a", ValueType::kNumber},
                        Column{"b", ValueType::kNumber}};
        program_.decls.push_back(decl);
        Rule nonzero;
        nonzero.head.predicate = vl;
        nonzero.head.args = {Term::Var("a"), Term::Var("b")};
        nonzero.body.push_back(Atom{reach, {Term::Var("a"), Term::Var("b")}});
        program_.rules.push_back(std::move(nonzero));
        RAQLET_RETURN_IF_ERROR(AddZeroLengthRule(edge, vl));
        rule->body.push_back(
            Atom{vl, {Term::Var(edge.src.id), Term::Var(edge.dst.id)}});
      } else {
        rule->body.push_back(
            Atom{reach, {Term::Var(edge.src.id), Term::Var(edge.dst.id)}});
      }
      return Status::OK();
    }

    // Depth-annotated bounded paths up to `depth_cap`.
    const int depth_cap = unbounded ? min_hops : max_hops;
    std::string paths = FreshAux("Path");
    RelationDecl decl;
    decl.name = paths;
    decl.columns = {Column{"a", ValueType::kNumber},
                    Column{"b", ValueType::kNumber},
                    Column{"d", ValueType::kNumber}};
    program_.decls.push_back(decl);
    Rule base;
    base.head.predicate = paths;
    base.head.args = {Term::Var("a"), Term::Var("b"), Term::Num(1)};
    base.body.push_back(Atom{hop_pred, {Term::Var("a"), Term::Var("b")}});
    program_.rules.push_back(std::move(base));
    Rule step;
    step.head.predicate = paths;
    step.head.args = {Term::Var("a"), Term::Var("b"),
                      Term::Binary(dlir::ArithOp::kAdd, Term::Var("d"),
                                   Term::Num(1))};
    step.body.push_back(
        Atom{paths, {Term::Var("a"), Term::Var("z"), Term::Var("d")}});
    step.body.push_back(Atom{hop_pred, {Term::Var("z"), Term::Var("b")}});
    step.constraints.push_back(
        Constraint{CmpOp::kLt, Term::Var("d"), Term::Num(depth_cap)});
    program_.rules.push_back(std::move(step));

    std::string vl = FreshAux("VarLen");
    RelationDecl vl_decl;
    vl_decl.name = vl;
    vl_decl.columns = {Column{"a", ValueType::kNumber},
                       Column{"b", ValueType::kNumber}};
    program_.decls.push_back(vl_decl);
    if (unbounded) {
      // [m..inf), m >= 2: an exactly-m prefix followed by reachability.
      std::string reach = reach_of(hop_pred);
      Rule exact;
      exact.head.predicate = vl;
      exact.head.args = {Term::Var("a"), Term::Var("b")};
      exact.body.push_back(
          Atom{paths, {Term::Var("a"), Term::Var("b"), Term::Num(min_hops)}});
      program_.rules.push_back(std::move(exact));
      Rule extended;
      extended.head.predicate = vl;
      extended.head.args = {Term::Var("a"), Term::Var("b")};
      extended.body.push_back(
          Atom{paths, {Term::Var("a"), Term::Var("z"), Term::Num(min_hops)}});
      extended.body.push_back(Atom{reach, {Term::Var("z"), Term::Var("b")}});
      program_.rules.push_back(std::move(extended));
    } else {
      Rule in_range;
      in_range.head.predicate = vl;
      in_range.head.args = {Term::Var("a"), Term::Var("b")};
      in_range.body.push_back(
          Atom{paths, {Term::Var("a"), Term::Var("b"), Term::Var("d")}});
      if (min_hops > 1) {
        in_range.constraints.push_back(
            Constraint{CmpOp::kGe, Term::Var("d"), Term::Num(min_hops)});
      }
      program_.rules.push_back(std::move(in_range));
      if (min_hops == 0) RAQLET_RETURN_IF_ERROR(AddZeroLengthRule(edge, vl));
    }
    rule->body.push_back(
        Atom{vl, {Term::Var(edge.src.id), Term::Var(edge.dst.id)}});
    return Status::OK();
  }

  // VarLen(x, x) :- <SrcLabel>(x, _, ...). for *0.. patterns.
  Status AddZeroLengthRule(const EdgePat& edge, const std::string& vl) {
    std::string label =
        !edge.src.label.empty() ? edge.src.label : edge.dst.label;
    if (label.empty()) {
      return Status::Unsupported(
          "zero-length variable path needs a labeled endpoint");
    }
    const schema::NodeRelationInfo* info = dl_.FindNode(label);
    if (info == nullptr) {
      return Status::NotFound("no node type with label '" + label + "'");
    }
    Rule zero;
    zero.head.predicate = vl;
    zero.head.args = {Term::Var("x"), Term::Var("x")};
    Atom atom;
    atom.predicate = info->relation;
    atom.args.push_back(Term::Var("x"));
    for (size_t i = 1; i < info->arity(); ++i) {
      atom.args.push_back(Term::Wildcard());
    }
    zero.body.push_back(std::move(atom));
    program_.rules.push_back(std::move(zero));
    return Status::OK();
  }

  Status TranslateMatch(const MatchOp& match) {
    Rule rule;
    std::vector<std::string> new_ids;
    if (!prev_rule_.empty()) rule.body.push_back(FrontierAtom());

    for (const EdgePat& edge : match.edges) {
      RAQLET_ASSIGN_OR_RETURN(HopRelation hop, ResolveHop(edge));
      RAQLET_RETURN_IF_ERROR(AddNodePattern(edge.src, &rule, &new_ids));
      RAQLET_RETURN_IF_ERROR(AddNodePattern(edge.dst, &rule, &new_ids));
      if (edge.variable_length || edge.shortest) {
        RAQLET_RETURN_IF_ERROR(AddRecursiveEdge(edge, hop, &rule, &new_ids));
      } else {
        RAQLET_RETURN_IF_ERROR(AddSimpleEdge(edge, hop, &rule, &new_ids));
      }
    }
    for (const NodePat& node : match.nodes) {
      RAQLET_RETURN_IF_ERROR(AddNodePattern(node, &rule, &new_ids));
    }

    for (const std::string& id : new_ids) frontier_.push_back(id);
    std::string name = "Match" + std::to_string(++match_counter_);
    rule.head.predicate = name;
    for (const std::string& id : frontier_) {
      rule.head.args.push_back(Term::Var(id));
    }
    RAQLET_RETURN_IF_ERROR(DeclareRule(name, false));
    program_.rules.push_back(std::move(rule));
    prev_rule_ = name;
    return Status::OK();
  }

  // ---- expressions ----

  // Converts a PGIR expression to a DLIR term, emitting property-access
  // atoms into `rule` as needed. `prop_vars` caches (id, property) -> var.
  Result<Term> ExprToTerm(const Expr& expr, Rule* rule,
                          std::map<std::string, std::string>* prop_vars) {
    switch (expr.kind) {
      case ExprKind::kLiteral:
        return Term::Const(expr.literal);
      case ExprKind::kVariable: {
        auto it = env_.find(expr.var);
        if (it == env_.end()) {
          return Status::NotFound("unknown identifier '" + expr.var + "'");
        }
        return Term::Var(expr.var);
      }
      case ExprKind::kProperty:
        return PropertyTerm(expr.var, expr.property, rule, prop_vars);
      case ExprKind::kParameter:
        return Status::Internal("parameters must be resolved during lowering");
      case ExprKind::kBinary: {
        dlir::ArithOp op;
        switch (expr.bin_op) {
          case BinOp::kAdd:
            op = dlir::ArithOp::kAdd;
            break;
          case BinOp::kSub:
            op = dlir::ArithOp::kSub;
            break;
          case BinOp::kMul:
            op = dlir::ArithOp::kMul;
            break;
          case BinOp::kDiv:
            op = dlir::ArithOp::kDiv;
            break;
          case BinOp::kMod:
            op = dlir::ArithOp::kMod;
            break;
          default:
            return Status::Unsupported(
                "boolean expression in value position: " + expr.ToString());
        }
        RAQLET_ASSIGN_OR_RETURN(Term lhs,
                                ExprToTerm(expr.children[0], rule, prop_vars));
        RAQLET_ASSIGN_OR_RETURN(Term rhs,
                                ExprToTerm(expr.children[1], rule, prop_vars));
        return Term::Binary(op, std::move(lhs), std::move(rhs));
      }
      case ExprKind::kUnary:
        if (expr.un_op == cypher::UnOp::kNeg) {
          RAQLET_ASSIGN_OR_RETURN(
              Term inner, ExprToTerm(expr.children[0], rule, prop_vars));
          return Term::Binary(dlir::ArithOp::kSub, Term::Num(0),
                              std::move(inner));
        }
        return Status::Unsupported("NOT in value position");
      case ExprKind::kCall: {
        if (expr.function == "id" && expr.children.size() == 1 &&
            expr.children[0].kind == ExprKind::kVariable) {
          return Term::Var(expr.children[0].var);  // node var IS the id
        }
        if (expr.function == "length" && expr.children.size() == 1 &&
            expr.children[0].kind == ExprKind::kVariable) {
          auto it = path_length_var_.find(expr.children[0].var);
          if (it != path_length_var_.end()) return Term::Var(it->second);
          return Status::Unsupported("length() of a non-shortest-path "
                                     "variable");
        }
        return Status::Unsupported("function '" + expr.function +
                                   "' in value position");
      }
    }
    return Status::Internal("unhandled expression kind");
  }

  // Property access id.prop: joins the owning EDB with a variable at the
  // property column (cached per rule).
  Result<Term> PropertyTerm(const std::string& id, const std::string& prop,
                            Rule* rule,
                            std::map<std::string, std::string>* prop_vars) {
    auto env_it = env_.find(id);
    if (env_it == env_.end()) {
      return Status::NotFound("unknown identifier '" + id + "'");
    }
    const Binding& binding = env_it->second;
    std::string cache_key = id + "." + prop;
    auto cached = prop_vars->find(cache_key);
    if (cached != prop_vars->end()) return Term::Var(cached->second);

    if (binding.kind == Binding::kNode) {
      const schema::NodeRelationInfo* info = dl_.FindNode(binding.label);
      if (info == nullptr) {
        return Status::NotFound("no node type '" + binding.label + "'");
      }
      if (prop == "id") return Term::Var(id);  // node var is its id
      int col = info->PropertyColumn(prop);
      if (col < 0) {
        return Status::NotFound("node label '" + binding.label +
                                "' has no property '" + prop + "'");
      }
      std::string var = id + "_" + prop;
      Atom atom;
      atom.predicate = info->relation;
      atom.args.push_back(Term::Var(id));
      for (size_t i = 1; i < info->arity(); ++i) {
        atom.args.push_back(static_cast<int>(i) == col ? Term::Var(var)
                                                       : Term::Wildcard());
      }
      rule->body.push_back(std::move(atom));
      (*prop_vars)[cache_key] = var;
      return Term::Var(var);
    }
    if (binding.kind == Binding::kEdge) {
      const schema::EdgeRelationInfo* info = dl_.FindEdge(binding.label);
      if (info == nullptr) {
        return Status::NotFound("no edge type '" + binding.label + "'");
      }
      if (prop == "id") return Term::Var(id);  // bound to the id column
      int col = info->PropertyColumn(prop);
      if (col < 0) {
        return Status::NotFound("edge label '" + binding.label +
                                "' has no property '" + prop + "'");
      }
      int id_col = info->PropertyColumn("id");
      if (id_col < 0) {
        return Status::Unsupported(
            "property access on edge '" + id +
            "' requires the edge type to have an 'id' property");
      }
      std::string var = id + "_" + prop;
      Atom atom;
      atom.predicate = info->relation;
      for (size_t i = 0; i < info->arity(); ++i) {
        if (static_cast<int>(i) == col) {
          atom.args.push_back(Term::Var(var));
        } else if (static_cast<int>(i) == id_col) {
          atom.args.push_back(Term::Var(id));
        } else {
          atom.args.push_back(Term::Wildcard());
        }
      }
      rule->body.push_back(std::move(atom));
      (*prop_vars)[cache_key] = var;
      return Term::Var(var);
    }
    return Status::Unsupported("property access on non-graph identifier '" +
                               id + "'");
  }

  /// The type a projected expression produces (for the head declaration).
  ValueType ExprType(const Expr& expr) const {
    switch (expr.kind) {
      case ExprKind::kLiteral:
        return expr.literal.type;
      case ExprKind::kVariable: {
        auto it = env_.find(expr.var);
        return it == env_.end() ? ValueType::kNumber : it->second.type;
      }
      case ExprKind::kProperty: {
        auto it = env_.find(expr.var);
        if (it == env_.end()) return ValueType::kNumber;
        if (it->second.kind == Binding::kNode) {
          const schema::NodeRelationInfo* info = dl_.FindNode(it->second.label);
          if (info != nullptr) {
            int col = info->PropertyColumn(expr.property);
            if (col >= 0) return info->prop_types[static_cast<size_t>(col)];
          }
        } else if (it->second.kind == Binding::kEdge) {
          const schema::EdgeRelationInfo* info = dl_.FindEdge(it->second.label);
          if (info != nullptr) {
            int col = info->PropertyColumn(expr.property);
            if (col >= 2) return info->prop_types[static_cast<size_t>(col - 2)];
          }
        }
        return ValueType::kNumber;
      }
      case ExprKind::kCall:
        if (expr.function == "avg") return ValueType::kFloat;
        return ValueType::kNumber;
      case ExprKind::kBinary:
      case ExprKind::kUnary:
      case ExprKind::kParameter:
        return ValueType::kNumber;
    }
    return ValueType::kNumber;
  }

  // ---- WHERE ----

  // Converts a boolean expression into disjunctive normal form over
  // atomic comparisons (NOT is pushed down through De Morgan; NOT of a
  // non-comparison is unsupported).
  Status ToDnf(const Expr& expr, bool negated,
               std::vector<std::vector<Expr>>* dnf) {
    if (expr.kind == ExprKind::kUnary && expr.un_op == cypher::UnOp::kNot) {
      return ToDnf(expr.children[0], !negated, dnf);
    }
    if (expr.kind == ExprKind::kBinary &&
        (expr.bin_op == BinOp::kAnd || expr.bin_op == BinOp::kOr)) {
      bool is_and = (expr.bin_op == BinOp::kAnd) != negated;  // De Morgan
      std::vector<std::vector<Expr>> lhs;
      std::vector<std::vector<Expr>> rhs;
      RAQLET_RETURN_IF_ERROR(ToDnf(expr.children[0], negated, &lhs));
      RAQLET_RETURN_IF_ERROR(ToDnf(expr.children[1], negated, &rhs));
      if (is_and) {
        for (const auto& l : lhs) {
          for (const auto& r : rhs) {
            std::vector<Expr> combined = l;
            combined.insert(combined.end(), r.begin(), r.end());
            dnf->push_back(std::move(combined));
          }
        }
      } else {
        for (auto& l : lhs) dnf->push_back(std::move(l));
        for (auto& r : rhs) dnf->push_back(std::move(r));
      }
      return Status::OK();
    }
    // Atomic comparison (possibly negated).
    Expr atom = expr;
    if (negated) {
      if (expr.kind != ExprKind::kBinary) {
        return Status::Unsupported("NOT of a non-comparison expression");
      }
      switch (expr.bin_op) {
        case BinOp::kEq:
          atom.bin_op = BinOp::kNe;
          break;
        case BinOp::kNe:
          atom.bin_op = BinOp::kEq;
          break;
        case BinOp::kLt:
          atom.bin_op = BinOp::kGe;
          break;
        case BinOp::kLe:
          atom.bin_op = BinOp::kGt;
          break;
        case BinOp::kGt:
          atom.bin_op = BinOp::kLe;
          break;
        case BinOp::kGe:
          atom.bin_op = BinOp::kLt;
          break;
        default:
          return Status::Unsupported("NOT of a non-comparison expression");
      }
    }
    dnf->push_back({std::move(atom)});
    return Status::OK();
  }

  Status TranslateWhere(const WhereOp& where) {
    std::vector<std::vector<Expr>> dnf;
    RAQLET_RETURN_IF_ERROR(ToDnf(where.predicate, false, &dnf));
    std::string name = "Where" + std::to_string(++where_counter_);
    // One rule per disjunct, same head (union semantics).
    for (const std::vector<Expr>& conjuncts : dnf) {
      Rule rule;
      rule.head.predicate = name;
      for (const std::string& id : frontier_) {
        rule.head.args.push_back(Term::Var(id));
      }
      if (prev_rule_.empty()) {
        return Status::InvalidArgument("WHERE before any MATCH");
      }
      rule.body.push_back(FrontierAtom());
      std::map<std::string, std::string> prop_vars;
      for (const Expr& cmp : conjuncts) {
        if (cmp.kind != ExprKind::kBinary) {
          return Status::Unsupported("unsupported WHERE atom: " +
                                     cmp.ToString());
        }
        CmpOp op;
        switch (cmp.bin_op) {
          case BinOp::kEq:
            op = CmpOp::kEq;
            break;
          case BinOp::kNe:
            op = CmpOp::kNe;
            break;
          case BinOp::kLt:
            op = CmpOp::kLt;
            break;
          case BinOp::kLe:
            op = CmpOp::kLe;
            break;
          case BinOp::kGt:
            op = CmpOp::kGt;
            break;
          case BinOp::kGe:
            op = CmpOp::kGe;
            break;
          default:
            return Status::Unsupported("unsupported WHERE operator: " +
                                       cmp.ToString());
        }
        RAQLET_ASSIGN_OR_RETURN(Term lhs,
                                ExprToTerm(cmp.children[0], &rule, &prop_vars));
        RAQLET_ASSIGN_OR_RETURN(Term rhs,
                                ExprToTerm(cmp.children[1], &rule, &prop_vars));
        rule.constraints.push_back(
            Constraint{op, std::move(lhs), std::move(rhs)});
      }
      program_.rules.push_back(std::move(rule));
    }
    RAQLET_RETURN_IF_ERROR(DeclareRule(name, false));
    prev_rule_ = name;
    return Status::OK();
  }

  // ---- WITH / RETURN ----

  Status TranslateProjection(const std::vector<Item>& items,
                             const std::string& name, bool is_output) {
    Rule rule;
    rule.head.predicate = name;
    if (!prev_rule_.empty()) rule.body.push_back(FrontierAtom());
    std::map<std::string, std::string> prop_vars;

    std::vector<std::string> new_frontier;
    std::map<std::string, Binding> new_env;
    RelationDecl decl;
    decl.name = name;
    decl.is_output = is_output;

    int agg_items = 0;
    for (const Item& item : items) {
      if (item.expr.IsAggregateCall()) ++agg_items;
    }
    if (agg_items > 1) {
      return Status::Unsupported(
          "at most one aggregate per WITH/RETURN is supported");
    }

    for (const Item& item : items) {
      const Expr& expr = item.expr;
      Binding binding;
      binding.kind = Binding::kValue;
      binding.type = ExprType(expr);

      if (expr.IsAggregateCall()) {
        dlir::Aggregate agg;
        if (expr.function == "count") {
          agg.func = dlir::AggFunc::kCount;
        } else if (expr.function == "sum") {
          agg.func = dlir::AggFunc::kSum;
        } else if (expr.function == "min") {
          agg.func = dlir::AggFunc::kMin;
        } else if (expr.function == "max") {
          agg.func = dlir::AggFunc::kMax;
        } else {
          agg.func = dlir::AggFunc::kAvg;
        }
        if (!expr.star_arg) {
          if (expr.children.size() != 1) {
            return Status::Unsupported("aggregate needs exactly one argument");
          }
          RAQLET_ASSIGN_OR_RETURN(agg.arg,
                                  ExprToTerm(expr.children[0], &rule,
                                             &prop_vars));
        } else if (agg.func != dlir::AggFunc::kCount) {
          return Status::Unsupported("only count(*) takes a star argument");
        }
        rule.agg = agg;
        rule.agg_result_pos = static_cast<int>(rule.head.args.size());
        rule.head.args.push_back(Term::Var(item.alias));
      } else if (expr.kind == ExprKind::kVariable && expr.var == item.alias) {
        // Pass-through keeps the identifier (and its graph binding).
        auto it = env_.find(expr.var);
        if (it == env_.end()) {
          return Status::NotFound("unknown identifier '" + expr.var + "'");
        }
        binding = it->second;
        rule.head.args.push_back(Term::Var(expr.var));
      } else {
        // Paper style (Fig. 3c): bind the alias through an equality
        // constraint, e.g. `p = cityId` for `p.id AS cityId`.
        RAQLET_ASSIGN_OR_RETURN(Term value, ExprToTerm(expr, &rule, &prop_vars));
        if (value.is_var() && value.var == item.alias) {
          rule.head.args.push_back(std::move(value));
        } else {
          rule.constraints.push_back(
              Constraint{CmpOp::kEq, std::move(value), Term::Var(item.alias)});
          rule.head.args.push_back(Term::Var(item.alias));
        }
        if (expr.kind == ExprKind::kVariable) {
          auto env_it = env_.find(expr.var);
          if (env_it == env_.end()) {
            return Status::InvalidArgument("unknown identifier '" + expr.var +
                                           "' in projection");
          }
          binding = env_it->second;  // aliased graph identifier
        }
      }
      decl.columns.push_back(Column{item.alias, binding.type});
      new_frontier.push_back(item.alias);
      new_env[item.alias] = binding;
    }

    program_.decls.push_back(std::move(decl));
    program_.rules.push_back(std::move(rule));
    frontier_ = std::move(new_frontier);
    env_ = std::move(new_env);
    prev_rule_ = name;
    return Status::OK();
  }

  const PgirQuery& query_;
  const schema::DlSchema& dl_;
  const TranslateOptions& options_;

  Program program_;
  std::vector<std::string> frontier_;
  std::map<std::string, Binding> env_;
  std::map<std::string, std::string> path_length_var_;
  std::map<std::string, std::string> undirected_cache_;
  std::map<std::string, std::string> hop_cache_;
  std::map<std::string, std::string> reach_cache_;
  std::string prev_rule_;
  int match_counter_ = 0;
  int where_counter_ = 0;
  int with_counter_ = 0;
  int aux_counter_ = 0;
};

}  // namespace

Result<dlir::Program> TranslateToDlir(const PgirQuery& query,
                                      const schema::DlSchema& dl,
                                      const TranslateOptions& options) {
  Translator translator(query, dl, options);
  return translator.Run();
}

}  // namespace raqlet::pgir
