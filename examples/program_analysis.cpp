// Program analysis with Raqlet's Datalog frontend (§1 motivates deductive
// databases as the standard substrate for static analyzers [39]).
//
// Implements a field-insensitive Andersen-style points-to analysis as a
// DLIR program with mutual recursion, runs it on the Datalog engine,
// shows the §4 analyses, and demonstrates backend-aware rejection: the
// mutually-recursive analysis cannot be ported to recursive SQL [23].
//
// Usage: ./build/examples/program_analysis

#include <iostream>
#include <random>

#include "raqlet/compiler.h"

namespace {

// Datalog encoding of Andersen points-to with call-graph discovery:
//   new:    v = new Obj        -> alloc(v, obj)
//   move:   v = w              -> move(v, w)
//   load:   v = w.f            -> load(v, w)
//   store:  v.f = w            -> store(v, w)
//   call:   invocations resolve through points-to (mutual recursion
//           between pts and call_edge).
constexpr char kPointsTo[] = R"(
.decl alloc(v: number, obj: number)
.input alloc
.decl move(dst: number, src: number)
.input move
.decl load(dst: number, base: number)
.input load
.decl store(base: number, src: number)
.input store
.decl invokes(site: number, base: number, callee_param: number, arg: number)
.input invokes

.decl pts(v: number, obj: number)
.decl heap(obj1: number, obj2: number)
.decl call_edge(param: number, arg: number)
.output pts

pts(v, obj) :- alloc(v, obj).
pts(v, obj) :- move(v, w), pts(w, obj).
pts(v, obj) :- call_edge(v, w), pts(w, obj).
heap(o1, o2) :- store(base, src), pts(base, o1), pts(src, o2).
pts(v, obj) :- load(v, base), pts(base, o1), heap(o1, obj).
call_edge(param, arg) :- invokes(_, base, param, arg), pts(base, _).
)";

void Banner(const char* title) { std::cout << "\n=== " << title << " ===\n"; }

// A synthetic "program" with chains of moves, loads/stores and calls.
void GenerateFacts(raqlet::Database* db, int vars, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> var(1, vars);
  auto insert = [&](const char* rel, std::vector<int64_t> values) {
    raqlet::Relation* r = *db->GetRelation(rel);
    raqlet::Tuple row;
    for (int64_t v : values) row.push_back(raqlet::Value::Number(v));
    r->Insert(std::move(row));
  };
  for (int i = 1; i <= vars / 4; ++i) insert("alloc", {var(rng), i});
  for (int i = 0; i < vars; ++i) insert("move", {var(rng), var(rng)});
  for (int i = 0; i < vars / 2; ++i) insert("load", {var(rng), var(rng)});
  for (int i = 0; i < vars / 2; ++i) insert("store", {var(rng), var(rng)});
  for (int i = 0; i < vars / 3; ++i) {
    insert("invokes", {i, var(rng), var(rng), var(rng)});
  }
}

}  // namespace

int main() {
  raqlet::Compiler compiler;

  Banner("Andersen points-to analysis in DLIR");
  auto program = compiler.CompileDatalog(kPointsTo);
  if (!program.ok()) {
    std::cerr << program.status().ToString() << "\n";
    return 1;
  }
  std::cout << program->ToString();

  Banner("Static analysis (Section 4)");
  raqlet::analysis::AnalysisReport report = compiler.Analyze(*program);
  std::cout << report.ToString();

  Banner("Backend support (Section 4, goal 1)");
  raqlet::Status datalog_ok = raqlet::analysis::CheckBackendSupport(
      *program, report, raqlet::analysis::Backend::kDatalog);
  std::cout << "deductive backend: " << datalog_ok.ToString() << "\n";
  raqlet::Status sql_ok = raqlet::analysis::CheckBackendSupport(
      *program, report, raqlet::analysis::Backend::kSql);
  std::cout << "recursive SQL    : " << sql_ok.ToString() << "\n";

  Banner("Evaluation on the Datalog engine");
  raqlet::Database db;
  for (const auto& decl : program->decls) {
    if (!decl.is_input) continue;
    raqlet::RelationSchema schema;
    schema.name = decl.name;
    schema.columns = decl.columns;
    (void)db.CreateRelation(std::move(schema));
  }
  GenerateFacts(&db, 400, /*seed=*/3);

  raqlet::engine::EvalStats stats;
  auto result = compiler.RunOnDatalog(*program, &db, &stats);
  if (!result.ok()) {
    std::cerr << result.status().ToString() << "\n";
    return 1;
  }
  std::cout << "pts facts derived: " << result->rows.size() << "\n";
  std::cout << "engine stats: " << stats.ToString() << "\n";

  Banner("Portable Soufflé emission");
  std::cout << compiler.EmitSouffle(*program);
  return 0;
}
