// Quickstart: walks the paper's running example (Figures 2-4) through
// every stage of Raqlet's pipeline — schema translation, Cypher -> PGIR ->
// DLIR, static analysis, optimization, Datalog/SQL emission, and execution
// on all three engines.
//
// Build & run:  cmake --build build && ./build/examples/quickstart

#include <cstdio>
#include <iostream>

#include "dlir/explain.h"
#include "ldbc/ldbc.h"
#include "raqlet/compiler.h"

namespace {

constexpr char kSq1[] = R"(
MATCH (n:Person {id: 42})-[:IS_LOCATED_IN]->(p:City)
RETURN DISTINCT n.firstName AS firstName, p.id AS cityId
)";

void Banner(const char* title) {
  std::cout << "\n=== " << title << " ===\n";
}

int Fail(const raqlet::Status& status) {
  std::cerr << "error: " << status.ToString() << "\n";
  return 1;
}

}  // namespace

int main() {
  raqlet::Compiler compiler;

  // --- Fig. 2a: PG-Schema in, Fig. 2b: DL-Schema out ---
  if (raqlet::Status st = compiler.LoadPgSchema(raqlet::ldbc::SnbSchema());
      !st.ok()) {
    return Fail(st);
  }
  Banner("PG-Schema (Fig. 2a)");
  std::cout << compiler.pg_schema().ToString() << "\n";
  Banner("DL-Schema (Fig. 2b)");
  std::cout << compiler.dl_schema().ToString();

  // --- Fig. 3: the pipeline ---
  Banner("Input Cypher (Fig. 3a)");
  std::cout << kSq1;
  auto unit = compiler.CompileCypher(kSq1);
  if (!unit.ok()) return Fail(unit.status());

  Banner("PGIR (Fig. 3b)");
  std::cout << unit->pgir.ToString();

  Banner("DLIR as Datalog rules (Fig. 3c)");
  std::cout << unit->dlir.ToString();

  Banner("Static analysis report (Section 4)");
  std::cout << compiler.Analyze(unit->dlir).ToString();

  Banner("Optimized DLIR: inlining + dead rule elimination (Fig. 4)");
  std::cout << unit->optimized.ToString();

  Banner("Generated Soufflé Datalog (Fig. 3d)");
  std::cout << compiler.EmitSouffle(unit->optimized);

  Banner("Procedural lowering / evaluation plan (Section 5, code generation)");
  auto plan = raqlet::dlir::ExplainProgram(unit->optimized);
  if (!plan.ok()) return Fail(plan.status());
  std::cout << *plan;

  Banner("Generated SQL (Fig. 3e)");
  auto sql = compiler.EmitSql(compiler.Optimize(unit->dlir, 0).value());
  if (!sql.ok()) return Fail(sql.status());
  std::cout << *sql;

  // --- execute on all three engines ---
  Banner("Execution on all three engines");
  raqlet::Database db;
  if (raqlet::Status st = compiler.CreateEdbs(&db); !st.ok()) return Fail(st);
  raqlet::ldbc::GeneratorOptions gen;
  gen.scale_factor = 0.1;
  if (raqlet::Status st =
          GenerateSnbData(compiler.dl_schema(), &db, gen);
      !st.ok()) {
    return Fail(st);
  }

  auto store = compiler.BuildGraphStore(db);
  if (!store.ok()) return Fail(store.status());
  auto on_graph = compiler.RunOnGraph(unit->pgir, *store, &db);
  if (!on_graph.ok()) return Fail(on_graph.status());
  std::cout << "graph engine   (Neo4j-style traversal): "
            << on_graph->rows.size() << " row(s)\n";

  auto on_datalog = compiler.RunOnDatalog(unit->optimized, &db);
  if (!on_datalog.ok()) return Fail(on_datalog.status());
  std::cout << "datalog engine (semi-naive bottom-up) : "
            << on_datalog->rows.size() << " row(s)\n";

  auto on_sql = compiler.RunOnSql(unit->optimized, &db);
  if (!on_sql.ok()) return Fail(on_sql.status());
  std::cout << "sql engine     (recursive CTEs)       : "
            << on_sql->rows.size() << " row(s)\n";

  Banner("Result (identical on every engine)");
  std::cout << on_datalog->ToString(db.symbols());

  bool agree =
      on_graph->ToStringSet(db.symbols()) ==
          on_datalog->ToStringSet(db.symbols()) &&
      on_datalog->ToStringSet(db.symbols()) ==
          on_sql->ToStringSet(db.symbols());
  std::cout << "\ncross-engine agreement: " << (agree ? "YES" : "NO") << "\n";
  return agree ? 0 : 1;
}
