// raqlet_cli — the compiler as a command-line tool, the way a downstream
// user would script it.
//
//   raqlet_cli --schema schema.pgs --query q.cypher --emit datalog
//   raqlet_cli --schema schema.pgs --query q.cypher --emit sql
//   raqlet_cli --schema schema.pgs --query q.cypher --emit pgir|dlir|report
//   raqlet_cli --schema schema.pgs --query q.cypher --run datalog \
//              --facts data_dir            # <relation>.facts files (TSV)
//   raqlet_cli --demo                      # built-in schema + query
//
// Options: --frontend cypher|gql|datalog, --opt 0|1|2,
//          --threads N (parallel Datalog / vectorized-SQL evaluation,
//          default 1),
//          --param name=value (repeatable),
//          --timeout-ms N / --max-rows N / --max-bytes N (execution
//          guardrails; a tripped query exits with a distinct code).
//
// Exit codes: 0 success, 2 usage, and one distinct code per failure kind
// (see ExitCodeFor) so scripts can tell a parse error from a budget trip.

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/diagnostics.h"
#include "analysis/lints.h"
#include "analysis/typecheck.h"
#include "dlir/explain.h"
#include "ldbc/ldbc.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "raqlet/compiler.h"
#include "runtime/query_guard.h"
#include "storage/csv.h"

namespace {

struct CliOptions {
  std::string schema_path;
  std::string query_path;
  std::string frontend = "cypher";
  std::string emit;  // pgir | dlir | optimized | datalog | sql | report
  std::string run;   // datalog | sql | sql-tuple | graph
  std::string facts_dir;
  std::string trace_path;  // --trace=FILE: Chrome trace-event JSON
  int opt_level = 1;
  int threads = 1;
  long long timeout_ms = 0;   // 0 = no deadline
  long long max_rows = 0;     // 0 = no row budget
  long long max_bytes = 0;    // 0 = no byte budget
  bool demo = false;
  bool explain_analyze = false;
  bool check = false;   // static analyzer, errors only
  bool lint = false;    // analyzer + semantic lints (warnings)
  bool werror = false;  // with --check/--lint: warnings fail the run
  std::map<std::string, raqlet::dlir::Constant> parameters;
};

int Usage() {
  std::cerr <<
      "usage: raqlet_cli --schema FILE --query FILE\n"
      "                  [--frontend cypher|gql|sqlpgq|datalog] [--opt 0|1|2]\n"
      "                  [--emit pgir|dlir|optimized|datalog|sql|report|plan]\n"
      "                  [--run datalog|sql|sql-tuple|graph|graph-rows]\n"
      "                  [--check|--lint] [--werror]\n"
      "                  [--facts DIR]\n"
      "                  [--threads N] [--param name=value]...\n"
      "                  [--timeout-ms N] [--max-rows N] [--max-bytes N]\n"
      "                  [--explain-analyze] [--trace=FILE]\n"
      "       raqlet_cli --demo [--trace=FILE]\n"
      "\n"
      "  --check            run the static analyzer (types, safety,\n"
      "                     stratification) and print every diagnostic with\n"
      "                     its stable RQ0xx code; exit 3 on errors\n"
      "  --lint             --check plus semantic lints (unused relations,\n"
      "                     cartesian joins, constant constraints, ...)\n"
      "  --werror           with --check/--lint: warnings also exit 3\n"
      "  --explain-analyze  run the query (default engine: datalog) and\n"
      "                     print the plan annotated with runtime counters\n"
      "  --timeout-ms N     abort execution after N ms wall clock\n"
      "  --max-rows N       abort after deriving more than N rows\n"
      "  --max-bytes N      abort when derived relations exceed N bytes\n"
      "  --trace=FILE       write a Chrome trace-event JSON of the whole\n"
      "                     compile+execute (load in Perfetto or\n"
      "                     chrome://tracing)\n";
  return 2;
}

raqlet::Result<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return raqlet::Status::NotFound("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

raqlet::dlir::Constant ParseConstant(const std::string& text) {
  char* end = nullptr;
  long long num = std::strtoll(text.c_str(), &end, 10);
  if (end != text.c_str() && *end == '\0') {
    return raqlet::dlir::Constant::Number(num);
  }
  return raqlet::dlir::Constant::String(text);
}

// One distinct exit code per failure kind, so scripts (and the CI smoke
// checks) can tell a parse error from a tripped budget without scraping
// stderr. 1 stays the catch-all for codes without a mapping.
int ExitCodeFor(raqlet::StatusCode code) {
  switch (code) {
    case raqlet::StatusCode::kInvalidArgument:
      return 3;
    case raqlet::StatusCode::kParseError:
      return 4;
    case raqlet::StatusCode::kNotFound:
      return 5;
    case raqlet::StatusCode::kUnsupported:
      return 6;
    case raqlet::StatusCode::kInternal:
      return 7;
    case raqlet::StatusCode::kAlreadyExists:
      return 8;
    case raqlet::StatusCode::kCancelled:
      return 9;
    case raqlet::StatusCode::kDeadlineExceeded:
      return 10;
    case raqlet::StatusCode::kResourceExhausted:
      return 11;
    default:
      return 1;
  }
}

int Fail(const raqlet::Status& status) {
  std::cerr << "error: " << status.ToString() << "\n";
  return ExitCodeFor(status.code());
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions options;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--schema") {
      const char* v = next();
      if (v == nullptr) return Usage();
      options.schema_path = v;
    } else if (arg == "--query") {
      const char* v = next();
      if (v == nullptr) return Usage();
      options.query_path = v;
    } else if (arg == "--frontend") {
      const char* v = next();
      if (v == nullptr) return Usage();
      options.frontend = v;
    } else if (arg == "--emit") {
      const char* v = next();
      if (v == nullptr) return Usage();
      options.emit = v;
    } else if (arg == "--run") {
      const char* v = next();
      if (v == nullptr) return Usage();
      options.run = v;
    } else if (arg == "--facts") {
      const char* v = next();
      if (v == nullptr) return Usage();
      options.facts_dir = v;
    } else if (arg == "--opt") {
      const char* v = next();
      if (v == nullptr) return Usage();
      options.opt_level = std::atoi(v);
    } else if (arg == "--threads") {
      const char* v = next();
      if (v == nullptr) return Usage();
      options.threads = std::atoi(v);
      if (options.threads < 1) return Usage();
    } else if (arg == "--timeout-ms") {
      const char* v = next();
      if (v == nullptr) return Usage();
      options.timeout_ms = std::atoll(v);
      if (options.timeout_ms <= 0) return Usage();
    } else if (arg == "--max-rows") {
      const char* v = next();
      if (v == nullptr) return Usage();
      options.max_rows = std::atoll(v);
      if (options.max_rows <= 0) return Usage();
    } else if (arg == "--max-bytes") {
      const char* v = next();
      if (v == nullptr) return Usage();
      options.max_bytes = std::atoll(v);
      if (options.max_bytes <= 0) return Usage();
    } else if (arg == "--param") {
      const char* v = next();
      if (v == nullptr) return Usage();
      std::string pair = v;
      size_t eq = pair.find('=');
      if (eq == std::string::npos) return Usage();
      options.parameters[pair.substr(0, eq)] =
          ParseConstant(pair.substr(eq + 1));
    } else if (arg == "--demo") {
      options.demo = true;
    } else if (arg == "--check") {
      options.check = true;
    } else if (arg == "--lint") {
      options.lint = true;
    } else if (arg == "--werror") {
      options.werror = true;
    } else if (arg == "--explain-analyze") {
      options.explain_analyze = true;
    } else if (arg.rfind("--trace=", 0) == 0) {
      options.trace_path = arg.substr(8);
      if (options.trace_path.empty()) return Usage();
    } else if (arg == "--trace") {
      const char* v = next();
      if (v == nullptr) return Usage();
      options.trace_path = v;
    } else {
      return Usage();
    }
  }

  raqlet::Compiler compiler;

  // Tracing covers everything from compile to the trace write; the
  // session must outlive every engine run but be drained (quiescent)
  // before export, which holds because all Run* calls are synchronous.
  std::unique_ptr<raqlet::obs::TraceSession> trace;
  if (!options.trace_path.empty()) {
    trace = std::make_unique<raqlet::obs::TraceSession>();
  }

  // Metrics are collected for --explain-analyze and as part of the --demo
  // tour (phase timings + engine counters appended to the output).
  raqlet::obs::QueryMetrics metrics;
  raqlet::obs::QueryMetrics* qm =
      options.explain_analyze || options.demo ? &metrics : nullptr;
  if (options.explain_analyze && options.run.empty()) options.run = "datalog";

  std::string query_text;
  if (options.demo) {
    if (auto st = compiler.LoadPgSchema(raqlet::ldbc::SnbSchema()); !st.ok()) {
      return Fail(st);
    }
    query_text = raqlet::ldbc::ShortQuery1();
    options.parameters["personId"] = raqlet::dlir::Constant::Number(42);
    if (options.emit.empty() && options.run.empty()) {
      options.emit = "sql";
      options.run = "datalog";
    }
  } else {
    // The datalog frontend needs no PG-Schema; every other frontend does.
    if (options.query_path.empty()) return Usage();
    if (options.schema_path.empty() && options.frontend != "datalog") {
      return Usage();
    }
    if (!options.schema_path.empty()) {
      auto schema_text = ReadFile(options.schema_path);
      if (!schema_text.ok()) return Fail(schema_text.status());
      if (auto st = compiler.LoadPgSchema(*schema_text); !st.ok()) {
        return Fail(st);
      }
    }
    auto q = ReadFile(options.query_path);
    if (!q.ok()) return Fail(q.status());
    query_text = *q;
  }

  // Compile through the requested frontend.
  raqlet::CompileOptions copts;
  copts.opt_level = options.opt_level;
  copts.parameters = options.parameters;
  copts.metrics = qm;

  const bool analyze_only = options.check || options.lint;
  raqlet::dlir::Program program;
  raqlet::CompiledQuery unit;
  bool have_pgir = false;
  if (options.frontend == "datalog") {
    // In --check/--lint mode, parse without the built-in verification so
    // the analyzer below reports *every* diagnostic (CompileDatalog would
    // turn them into one InvalidArgument).
    auto parsed = analyze_only ? compiler.ParseDatalog(query_text)
                               : compiler.CompileDatalog(query_text);
    if (!parsed.ok()) return Fail(parsed.status());
    if (analyze_only) {
      program = std::move(parsed).value();
    } else {
      auto optimized = compiler.Optimize(*parsed, options.opt_level);
      if (!optimized.ok()) return Fail(optimized.status());
      program = std::move(optimized).value();
    }
  } else {
    auto compiled = options.frontend == "gql"    ? compiler.CompileGql(query_text, copts)
                    : options.frontend == "sqlpgq"
                        ? compiler.CompileSqlPgq(query_text, copts)
                        : compiler.CompileCypher(query_text, copts);
    if (!compiled.ok()) return Fail(compiled.status());
    unit = std::move(compiled).value();
    // Analyze the direct translation (closest to the user's query);
    // everything else uses the optimized form.
    program = analyze_only ? unit.dlir : unit.optimized;
    have_pgir = true;
    for (const std::string& warning : unit.warnings) {
      std::cerr << "warning: " << warning << "\n";
    }
  }

  if (analyze_only) {
    raqlet::analysis::DiagnosticEngine diags;
    raqlet::analysis::CheckProgram(program, &diags);
    if (options.lint) raqlet::analysis::LintProgram(program, &diags);
    if (diags.empty()) {
      std::cout << "no issues found\n";
      return 0;
    }
    std::cout << diags.Render();
    if (diags.has_errors()) return 3;
    if (options.werror && diags.warning_count() > 0) return 3;
    return 0;
  }

  if (!options.emit.empty()) {
    if (options.emit == "pgir" && have_pgir) {
      std::cout << unit.pgir.ToString();
    } else if (options.emit == "dlir" && have_pgir) {
      std::cout << unit.dlir.ToString();
    } else if (options.emit == "optimized" || options.emit == "dlir") {
      std::cout << program.ToString();
    } else if (options.emit == "datalog") {
      std::cout << compiler.EmitSouffle(program);
    } else if (options.emit == "sql") {
      auto sql = compiler.EmitSql(program);
      if (!sql.ok()) return Fail(sql.status());
      std::cout << *sql;
    } else if (options.emit == "report") {
      std::cout << compiler.Analyze(program).ToString();
    } else if (options.emit == "plan") {
      auto plan = raqlet::dlir::ExplainProgram(program);
      if (!plan.ok()) return Fail(plan.status());
      std::cout << *plan;
    } else {
      return Usage();
    }
  }

  if (!options.run.empty()) {
    raqlet::Database db;
    if (auto st = compiler.CreateEdbs(&db); !st.ok()) return Fail(st);
    if (options.demo) {
      raqlet::ldbc::GeneratorOptions gen;
      gen.scale_factor = 0.1;
      if (auto st = GenerateSnbData(compiler.dl_schema(), &db, gen); !st.ok()) {
        return Fail(st);
      }
    } else if (!options.facts_dir.empty()) {
      for (const auto& decl : compiler.dl_schema().edbs) {
        auto rel = db.GetRelation(decl.name);
        if (!rel.ok()) continue;
        std::string path = options.facts_dir + "/" + decl.name + ".facts";
        std::ifstream probe(path);
        if (!probe) continue;  // facts files are optional per relation
        if (auto st = raqlet::LoadDelimitedFile(&db, *rel, path); !st.ok()) {
          return Fail(st);
        }
      }
    }

    // Execution guardrails: one guard for the whole run, armed from the
    // CLI budget flags. Unset flags leave the guard unarmed (zero cost).
    raqlet::runtime::QueryGuard guard;
    if (options.timeout_ms > 0) guard.set_timeout_ms(options.timeout_ms);
    if (options.max_rows > 0) {
      guard.set_max_rows(static_cast<size_t>(options.max_rows));
    }
    if (options.max_bytes > 0) {
      guard.set_max_bytes(static_cast<size_t>(options.max_bytes));
    }

    raqlet::Result<raqlet::engine::ResultTable> result =
        raqlet::Status::Internal("unset");
    if (options.run == "datalog") {
      raqlet::engine::EvalOptions eval_options;
      eval_options.num_threads = options.threads;
      eval_options.guard = &guard;
      result = compiler.RunOnDatalog(program, &db, nullptr, eval_options, qm);
    } else if (options.run == "sql") {
      result = compiler.RunOnSql(program, &db,
                                 raqlet::engine::SqlMode::kVectorized,
                                 nullptr, options.threads, qm, &guard);
    } else if (options.run == "sql-tuple") {
      result = compiler.RunOnSql(program, &db,
                                 raqlet::engine::SqlMode::kTuplePipeline,
                                 nullptr, 1, qm, &guard);
    } else if ((options.run == "graph" || options.run == "graph-rows") &&
               have_pgir) {
      auto store = compiler.BuildGraphStore(db);
      if (!store.ok()) return Fail(store.status());
      raqlet::engine::GraphOptions graph_options;
      if (options.run == "graph-rows") {
        // The historical per-binding interpreter, kept for benchmarking
        // against the default column-batch executor (same results).
        graph_options.mode = raqlet::engine::GraphMode::kRowBinding;
      }
      graph_options.guard = &guard;
      result = compiler.RunOnGraph(unit.pgir, *store, &db, nullptr,
                                   graph_options, qm);
    } else {
      return Usage();
    }
    if (!result.ok()) return Fail(result.status());
    std::cout << result->ToString(db.symbols());

    if (options.explain_analyze) {
      auto analyzed = raqlet::dlir::ExplainAnalyzeProgram(program, metrics);
      if (!analyzed.ok()) return Fail(analyzed.status());
      std::cout << "\n" << *analyzed;
    } else if (qm != nullptr) {
      std::cout << "\n" << metrics.ToString();
    }

    if (options.demo) {
      // Guardrail tour: a row-hungry recursive query (the full KNOWS
      // reachability closure) under a deliberately small row budget trips
      // with a terminal status, the report shows how far it got, and —
      // the cancellation contract — re-running the very same query on the
      // same database without the budget succeeds normally.
      std::cout << "\n-- execution guardrails --\n";
      auto closure = compiler.CompileCypher(
          "MATCH (a:Person)-[:KNOWS*]->(b:Person) "
          "RETURN DISTINCT a.id AS src, b.id AS dst");
      if (!closure.ok()) return Fail(closure.status());
      raqlet::runtime::QueryGuard demo_guard;
      demo_guard.set_max_rows(500);
      raqlet::obs::QueryMetrics trip_metrics;
      raqlet::engine::EvalOptions tripped_options;
      tripped_options.num_threads = options.threads;
      tripped_options.guard = &demo_guard;
      auto tripped = compiler.RunOnDatalog(closure->optimized, &db, nullptr,
                                           tripped_options, &trip_metrics);
      std::cout << "KNOWS closure with --max-rows 500: "
                << (tripped.ok() ? "unexpected: did not trip"
                                 : tripped.status().ToString())
                << "\n";
      if (!tripped.ok()) {
        std::cout << trip_metrics.ToString();
        raqlet::engine::EvalOptions retry_options;
        retry_options.num_threads = options.threads;
        auto retry = compiler.RunOnDatalog(closure->optimized, &db, nullptr,
                                           retry_options, nullptr);
        std::cout << "re-run without budget: "
                  << (retry.ok() ? "ok, " + std::to_string(retry->rows.size())
                                       + " rows"
                                 : retry.status().ToString())
                  << "\n";
      }
    }
  }

  if (trace != nullptr) {
    if (auto st = trace->WriteChromeTrace(options.trace_path); !st.ok()) {
      return Fail(st);
    }
    std::cerr << "trace: " << trace->event_count() << " events -> "
              << options.trace_path << "\n";
  }
  return 0;
}
