// raqlet_cli — the compiler as a command-line tool, the way a downstream
// user would script it.
//
//   raqlet_cli --schema schema.pgs --query q.cypher --emit datalog
//   raqlet_cli --schema schema.pgs --query q.cypher --emit sql
//   raqlet_cli --schema schema.pgs --query q.cypher --emit pgir|dlir|report
//   raqlet_cli --schema schema.pgs --query q.cypher --run datalog \
//              --facts data_dir            # <relation>.facts files (TSV)
//   raqlet_cli --query q.dl --frontend datalog --run datalog \
//              --apply-delta deltas.txt    # incremental view maintenance
//   raqlet_cli --demo                      # built-in schema + query
//
// Options: --frontend cypher|gql|datalog, --opt 0|1|2,
//          --threads N (parallel Datalog / vectorized-SQL evaluation,
//          default 1),
//          --param name=value (repeatable),
//          --timeout-ms N / --max-rows N / --max-bytes N (execution
//          guardrails; a tripped query exits with a distinct code).
//
// Exit codes: 0 success, 2 usage, and one distinct code per failure kind
// (see ExitCodeFor) so scripts can tell a parse error from a budget trip.

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/diagnostics.h"
#include "analysis/lints.h"
#include "analysis/typecheck.h"
#include "dlir/explain.h"
#include "ldbc/ldbc.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "raqlet/compiler.h"
#include "runtime/query_guard.h"
#include "storage/csv.h"

namespace {

struct CliOptions {
  std::string schema_path;
  std::string query_path;
  std::string frontend = "cypher";
  std::string emit;  // pgir | dlir | optimized | datalog | sql | report
  std::string run;   // datalog | sql | sql-tuple | graph
  std::string facts_dir;
  std::string delta_path;  // --apply-delta FILE: +/− base facts
  std::string trace_path;  // --trace=FILE: Chrome trace-event JSON
  int opt_level = 1;
  int threads = 1;
  long long timeout_ms = 0;   // 0 = no deadline
  long long max_rows = 0;     // 0 = no row budget
  long long max_bytes = 0;    // 0 = no byte budget
  bool demo = false;
  bool explain_analyze = false;
  bool check = false;   // static analyzer, errors only
  bool lint = false;    // analyzer + semantic lints (warnings)
  bool werror = false;  // with --check/--lint: warnings fail the run
  std::map<std::string, raqlet::dlir::Constant> parameters;
};

int Usage() {
  std::cerr <<
      "usage: raqlet_cli --schema FILE --query FILE\n"
      "                  [--frontend cypher|gql|sqlpgq|datalog] [--opt 0|1|2]\n"
      "                  [--emit pgir|dlir|optimized|datalog|sql|report|plan]\n"
      "                  [--run datalog|sql|sql-tuple|graph|graph-rows]\n"
      "                  [--check|--lint] [--werror]\n"
      "                  [--facts DIR] [--apply-delta FILE]\n"
      "                  [--threads N] [--param name=value]...\n"
      "                  [--timeout-ms N] [--max-rows N] [--max-bytes N]\n"
      "                  [--explain-analyze] [--trace=FILE]\n"
      "       raqlet_cli --demo [--trace=FILE]\n"
      "\n"
      "  --check            run the static analyzer (types, safety,\n"
      "                     stratification) and print every diagnostic with\n"
      "                     its stable RQ0xx code; exit 3 on errors\n"
      "  --lint             --check plus semantic lints (unused relations,\n"
      "                     cartesian joins, constant constraints, ...)\n"
      "  --werror           with --check/--lint: warnings also exit 3\n"
      "  --apply-delta FILE with --run datalog: evaluate once, then stream\n"
      "                     the +/− base-fact lines of FILE through the\n"
      "                     incremental maintainer instead of re-running.\n"
      "                     Lines: +edge(1, 2) adds, -edge(1, 2) removes,\n"
      "                     # comments; a line of --- starts a new batch\n"
      "  --explain-analyze  run the query (default engine: datalog) and\n"
      "                     print the plan annotated with runtime counters\n"
      "  --timeout-ms N     abort execution after N ms wall clock\n"
      "  --max-rows N       abort after deriving more than N rows\n"
      "  --max-bytes N      abort when derived relations exceed N bytes\n"
      "  --trace=FILE       write a Chrome trace-event JSON of the whole\n"
      "                     compile+execute (load in Perfetto or\n"
      "                     chrome://tracing)\n";
  return 2;
}

raqlet::Result<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return raqlet::Status::NotFound("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

raqlet::dlir::Constant ParseConstant(const std::string& text) {
  char* end = nullptr;
  long long num = std::strtoll(text.c_str(), &end, 10);
  if (end != text.c_str() && *end == '\0') {
    return raqlet::dlir::Constant::Number(num);
  }
  return raqlet::dlir::Constant::String(text);
}

// One distinct exit code per failure kind, so scripts (and the CI smoke
// checks) can tell a parse error from a tripped budget without scraping
// stderr. 1 stays the catch-all for codes without a mapping.
int ExitCodeFor(raqlet::StatusCode code) {
  switch (code) {
    case raqlet::StatusCode::kInvalidArgument:
      return 3;
    case raqlet::StatusCode::kParseError:
      return 4;
    case raqlet::StatusCode::kNotFound:
      return 5;
    case raqlet::StatusCode::kUnsupported:
      return 6;
    case raqlet::StatusCode::kInternal:
      return 7;
    case raqlet::StatusCode::kAlreadyExists:
      return 8;
    case raqlet::StatusCode::kCancelled:
      return 9;
    case raqlet::StatusCode::kDeadlineExceeded:
      return 10;
    case raqlet::StatusCode::kResourceExhausted:
      return 11;
    default:
      return 1;
  }
}

int Fail(const raqlet::Status& status) {
  std::cerr << "error: " << status.ToString() << "\n";
  return ExitCodeFor(status.code());
}

// Parses the --apply-delta text format: one fact per line, "+pred(1, 2)"
// adds and "-pred(1, 2)" removes; '#' starts a comment; a line of "---"
// closes the current batch and starts the next. Values are integers,
// floats, "quoted" symbols, or true/false.
raqlet::Result<std::vector<raqlet::DeltaBatch>> ParseDeltaFile(
    const std::string& text, raqlet::Database* db) {
  using raqlet::Status;
  using raqlet::Value;
  std::vector<raqlet::DeltaBatch> batches(1);
  std::istringstream in(text);
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    size_t begin = line.find_first_not_of(" \t\r");
    if (begin == std::string::npos) continue;
    size_t finish = line.find_last_not_of(" \t\r");
    line = line.substr(begin, finish - begin + 1);
    if (line == "---") {
      if (!batches.back().relations.empty()) batches.emplace_back();
      continue;
    }
    auto fail = [&](const std::string& what) {
      return Status::ParseError("delta line " + std::to_string(line_no) +
                                ": " + what);
    };
    if (line[0] != '+' && line[0] != '-') {
      return fail("expected '+' or '-', got '" + line + "'");
    }
    const bool is_add = line[0] == '+';
    size_t paren = line.find('(');
    if (paren == std::string::npos || line.back() != ')') {
      return fail("expected pred(value, ...)");
    }
    std::string pred = line.substr(1, paren - 1);
    size_t pend = pred.find_last_not_of(" \t");
    if (pend == std::string::npos) return fail("missing predicate name");
    pred.erase(pend + 1);

    raqlet::Tuple tuple;
    std::string args = line.substr(paren + 1, line.size() - paren - 2);
    size_t pos = 0;
    while (true) {
      while (pos < args.size() && (args[pos] == ' ' || args[pos] == '\t')) {
        ++pos;
      }
      if (pos >= args.size()) break;
      if (args[pos] == '"') {
        size_t close = args.find('"', pos + 1);
        if (close == std::string::npos) return fail("unterminated string");
        tuple.push_back(Value::Symbol(
            db->symbols().Intern(args.substr(pos + 1, close - pos - 1))));
        pos = close + 1;
      } else {
        size_t comma = args.find(',', pos);
        std::string token = args.substr(
            pos, (comma == std::string::npos ? args.size() : comma) - pos);
        size_t tend = token.find_last_not_of(" \t");
        if (tend == std::string::npos) return fail("empty value");
        token.erase(tend + 1);
        pos += token.size();
        if (token == "true" || token == "false") {
          tuple.push_back(Value::Bool(token == "true"));
        } else if (token.find('.') != std::string::npos) {
          char* end = nullptr;
          double d = std::strtod(token.c_str(), &end);
          if (end != token.c_str() + token.size()) {
            return fail("bad float '" + token + "'");
          }
          tuple.push_back(Value::Float(d));
        } else {
          char* end = nullptr;
          long long n = std::strtoll(token.c_str(), &end, 10);
          if (end != token.c_str() + token.size()) {
            return fail("bad value '" + token + "'");
          }
          tuple.push_back(Value::Number(n));
        }
      }
      while (pos < args.size() && (args[pos] == ' ' || args[pos] == '\t')) {
        ++pos;
      }
      if (pos < args.size()) {
        if (args[pos] != ',') return fail("expected ','");
        ++pos;
      }
    }

    raqlet::RelationDelta* rd = nullptr;
    for (raqlet::RelationDelta& existing : batches.back().relations) {
      if (existing.relation == pred) {
        rd = &existing;
        break;
      }
    }
    if (rd == nullptr) {
      batches.back().relations.push_back({pred, {}, {}});
      rd = &batches.back().relations.back();
    }
    (is_add ? rd->adds : rd->removes).push_back(std::move(tuple));
  }
  if (batches.back().relations.empty() && batches.size() > 1) {
    batches.pop_back();
  }
  return batches;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions options;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--schema") {
      const char* v = next();
      if (v == nullptr) return Usage();
      options.schema_path = v;
    } else if (arg == "--query") {
      const char* v = next();
      if (v == nullptr) return Usage();
      options.query_path = v;
    } else if (arg == "--frontend") {
      const char* v = next();
      if (v == nullptr) return Usage();
      options.frontend = v;
    } else if (arg == "--emit") {
      const char* v = next();
      if (v == nullptr) return Usage();
      options.emit = v;
    } else if (arg == "--run") {
      const char* v = next();
      if (v == nullptr) return Usage();
      options.run = v;
    } else if (arg == "--facts") {
      const char* v = next();
      if (v == nullptr) return Usage();
      options.facts_dir = v;
    } else if (arg == "--apply-delta") {
      const char* v = next();
      if (v == nullptr) return Usage();
      options.delta_path = v;
    } else if (arg == "--opt") {
      const char* v = next();
      if (v == nullptr) return Usage();
      options.opt_level = std::atoi(v);
    } else if (arg == "--threads") {
      const char* v = next();
      if (v == nullptr) return Usage();
      options.threads = std::atoi(v);
      if (options.threads < 1) return Usage();
    } else if (arg == "--timeout-ms") {
      const char* v = next();
      if (v == nullptr) return Usage();
      options.timeout_ms = std::atoll(v);
      if (options.timeout_ms <= 0) return Usage();
    } else if (arg == "--max-rows") {
      const char* v = next();
      if (v == nullptr) return Usage();
      options.max_rows = std::atoll(v);
      if (options.max_rows <= 0) return Usage();
    } else if (arg == "--max-bytes") {
      const char* v = next();
      if (v == nullptr) return Usage();
      options.max_bytes = std::atoll(v);
      if (options.max_bytes <= 0) return Usage();
    } else if (arg == "--param") {
      const char* v = next();
      if (v == nullptr) return Usage();
      std::string pair = v;
      size_t eq = pair.find('=');
      if (eq == std::string::npos) return Usage();
      options.parameters[pair.substr(0, eq)] =
          ParseConstant(pair.substr(eq + 1));
    } else if (arg == "--demo") {
      options.demo = true;
    } else if (arg == "--check") {
      options.check = true;
    } else if (arg == "--lint") {
      options.lint = true;
    } else if (arg == "--werror") {
      options.werror = true;
    } else if (arg == "--explain-analyze") {
      options.explain_analyze = true;
    } else if (arg.rfind("--trace=", 0) == 0) {
      options.trace_path = arg.substr(8);
      if (options.trace_path.empty()) return Usage();
    } else if (arg == "--trace") {
      const char* v = next();
      if (v == nullptr) return Usage();
      options.trace_path = v;
    } else {
      return Usage();
    }
  }

  raqlet::Compiler compiler;

  // Tracing covers everything from compile to the trace write; the
  // session must outlive every engine run but be drained (quiescent)
  // before export, which holds because all Run* calls are synchronous.
  std::unique_ptr<raqlet::obs::TraceSession> trace;
  if (!options.trace_path.empty()) {
    trace = std::make_unique<raqlet::obs::TraceSession>();
  }

  // Metrics are collected for --explain-analyze and as part of the --demo
  // tour (phase timings + engine counters appended to the output).
  raqlet::obs::QueryMetrics metrics;
  raqlet::obs::QueryMetrics* qm =
      options.explain_analyze || options.demo ? &metrics : nullptr;
  if (options.explain_analyze && options.run.empty()) options.run = "datalog";

  std::string query_text;
  if (options.demo) {
    if (auto st = compiler.LoadPgSchema(raqlet::ldbc::SnbSchema()); !st.ok()) {
      return Fail(st);
    }
    query_text = raqlet::ldbc::ShortQuery1();
    options.parameters["personId"] = raqlet::dlir::Constant::Number(42);
    if (options.emit.empty() && options.run.empty()) {
      options.emit = "sql";
      options.run = "datalog";
    }
  } else {
    // The datalog frontend needs no PG-Schema; every other frontend does.
    if (options.query_path.empty()) return Usage();
    if (options.schema_path.empty() && options.frontend != "datalog") {
      return Usage();
    }
    if (!options.schema_path.empty()) {
      auto schema_text = ReadFile(options.schema_path);
      if (!schema_text.ok()) return Fail(schema_text.status());
      if (auto st = compiler.LoadPgSchema(*schema_text); !st.ok()) {
        return Fail(st);
      }
    }
    auto q = ReadFile(options.query_path);
    if (!q.ok()) return Fail(q.status());
    query_text = *q;
  }

  // Compile through the requested frontend.
  raqlet::CompileOptions copts;
  copts.opt_level = options.opt_level;
  copts.parameters = options.parameters;
  copts.metrics = qm;

  const bool analyze_only = options.check || options.lint;
  raqlet::dlir::Program program;
  raqlet::CompiledQuery unit;
  bool have_pgir = false;
  if (options.frontend == "datalog") {
    // In --check/--lint mode, parse without the built-in verification so
    // the analyzer below reports *every* diagnostic (CompileDatalog would
    // turn them into one InvalidArgument).
    auto parsed = analyze_only ? compiler.ParseDatalog(query_text)
                               : compiler.CompileDatalog(query_text);
    if (!parsed.ok()) return Fail(parsed.status());
    if (analyze_only) {
      program = std::move(parsed).value();
    } else {
      auto optimized = compiler.Optimize(*parsed, options.opt_level);
      if (!optimized.ok()) return Fail(optimized.status());
      program = std::move(optimized).value();
    }
  } else {
    auto compiled = options.frontend == "gql"    ? compiler.CompileGql(query_text, copts)
                    : options.frontend == "sqlpgq"
                        ? compiler.CompileSqlPgq(query_text, copts)
                        : compiler.CompileCypher(query_text, copts);
    if (!compiled.ok()) return Fail(compiled.status());
    unit = std::move(compiled).value();
    // Analyze the direct translation (closest to the user's query);
    // everything else uses the optimized form.
    program = analyze_only ? unit.dlir : unit.optimized;
    have_pgir = true;
    for (const std::string& warning : unit.warnings) {
      std::cerr << "warning: " << warning << "\n";
    }
  }

  if (analyze_only) {
    raqlet::analysis::DiagnosticEngine diags;
    raqlet::analysis::CheckProgram(program, &diags);
    if (options.lint) raqlet::analysis::LintProgram(program, &diags);
    if (diags.empty()) {
      std::cout << "no issues found\n";
      return 0;
    }
    std::cout << diags.Render();
    if (diags.has_errors()) return 3;
    if (options.werror && diags.warning_count() > 0) return 3;
    return 0;
  }

  if (!options.emit.empty()) {
    if (options.emit == "pgir" && have_pgir) {
      std::cout << unit.pgir.ToString();
    } else if (options.emit == "dlir" && have_pgir) {
      std::cout << unit.dlir.ToString();
    } else if (options.emit == "optimized" || options.emit == "dlir") {
      std::cout << program.ToString();
    } else if (options.emit == "datalog") {
      std::cout << compiler.EmitSouffle(program);
    } else if (options.emit == "sql") {
      auto sql = compiler.EmitSql(program);
      if (!sql.ok()) return Fail(sql.status());
      std::cout << *sql;
    } else if (options.emit == "report") {
      std::cout << compiler.Analyze(program).ToString();
    } else if (options.emit == "plan") {
      auto plan = raqlet::dlir::ExplainProgram(program);
      if (!plan.ok()) return Fail(plan.status());
      std::cout << *plan;
    } else {
      return Usage();
    }
  }

  if (!options.run.empty()) {
    raqlet::Database db;
    std::vector<std::string> edb_names;
    if (options.frontend == "datalog") {
      // Pure-Datalog runs carry no property-graph schema; the program's
      // own .input declarations define the base relations.
      for (const auto& decl : program.decls) {
        if (!decl.is_input) continue;
        raqlet::RelationSchema schema;
        schema.name = decl.name;
        schema.columns = decl.columns;
        schema.primary_key = decl.primary_key;
        if (auto rel = db.CreateRelation(std::move(schema)); !rel.ok()) {
          return Fail(rel.status());
        }
        edb_names.push_back(decl.name);
      }
    } else {
      if (auto st = compiler.CreateEdbs(&db); !st.ok()) return Fail(st);
      for (const auto& decl : compiler.dl_schema().edbs) {
        edb_names.push_back(decl.name);
      }
    }
    if (options.demo) {
      raqlet::ldbc::GeneratorOptions gen;
      gen.scale_factor = 0.1;
      if (auto st = GenerateSnbData(compiler.dl_schema(), &db, gen); !st.ok()) {
        return Fail(st);
      }
    } else if (!options.facts_dir.empty()) {
      for (const std::string& name : edb_names) {
        auto rel = db.GetRelation(name);
        if (!rel.ok()) continue;
        std::string path = options.facts_dir + "/" + name + ".facts";
        std::ifstream probe(path);
        if (!probe) continue;  // facts files are optional per relation
        if (auto st = raqlet::LoadDelimitedFile(&db, *rel, path); !st.ok()) {
          return Fail(st);
        }
      }
    }

    // Execution guardrails: one guard for the whole run, armed from the
    // CLI budget flags. Unset flags leave the guard unarmed (zero cost).
    raqlet::runtime::QueryGuard guard;
    if (options.timeout_ms > 0) guard.set_timeout_ms(options.timeout_ms);
    if (options.max_rows > 0) {
      guard.set_max_rows(static_cast<size_t>(options.max_rows));
    }
    if (options.max_bytes > 0) {
      guard.set_max_bytes(static_cast<size_t>(options.max_bytes));
    }

    raqlet::Result<raqlet::engine::ResultTable> result =
        raqlet::Status::Internal("unset");
    if (options.run == "datalog" && !options.delta_path.empty()) {
      // Incremental view maintenance: full evaluation once, then each
      // batch from the delta file flows through counting/DRed instead of
      // a from-scratch re-run.
      auto text = ReadFile(options.delta_path);
      if (!text.ok()) return Fail(text.status());
      auto batches = ParseDeltaFile(*text, &db);
      if (!batches.ok()) return Fail(batches.status());
      raqlet::engine::IncrementalOptions inc_options;
      inc_options.num_threads = options.threads;
      auto view =
          compiler.BeginIncremental(program, &db, inc_options, qm, &guard);
      if (!view.ok()) return Fail(view.status());
      for (size_t i = 0; i < batches->size(); ++i) {
        auto applied =
            compiler.ApplyDelta(view->get(), (*batches)[i], qm, &guard);
        if (!applied.ok()) return Fail(applied.status());
        std::cout << "-- delta batch " << (i + 1) << " --\n";
        for (const auto& rel : applied->relations) {
          std::cout << rel.relation << ": +" << rel.added.size() << " -"
                    << rel.removed.size() << "\n";
        }
      }
      std::vector<std::string> outputs = program.OutputRelations();
      if (outputs.size() != 1) {
        return Fail(raqlet::Status::InvalidArgument(
            "expected exactly one output relation"));
      }
      auto rel = db.GetRelation(outputs[0]);
      if (!rel.ok()) return Fail(rel.status());
      raqlet::engine::ResultTable table;
      for (const raqlet::Column& col : (*rel)->schema().columns) {
        table.columns.push_back(col.name);
      }
      table.rows = (*rel)->MaterializeRows();
      result = std::move(table);
    } else if (options.run == "datalog") {
      raqlet::engine::EvalOptions eval_options;
      eval_options.num_threads = options.threads;
      eval_options.guard = &guard;
      result = compiler.RunOnDatalog(program, &db, nullptr, eval_options, qm);
    } else if (options.run == "sql") {
      result = compiler.RunOnSql(program, &db,
                                 raqlet::engine::SqlMode::kVectorized,
                                 nullptr, options.threads, qm, &guard);
    } else if (options.run == "sql-tuple") {
      result = compiler.RunOnSql(program, &db,
                                 raqlet::engine::SqlMode::kTuplePipeline,
                                 nullptr, 1, qm, &guard);
    } else if ((options.run == "graph" || options.run == "graph-rows") &&
               have_pgir) {
      auto store = compiler.BuildGraphStore(db);
      if (!store.ok()) return Fail(store.status());
      raqlet::engine::GraphOptions graph_options;
      if (options.run == "graph-rows") {
        // The historical per-binding interpreter, kept for benchmarking
        // against the default column-batch executor (same results).
        graph_options.mode = raqlet::engine::GraphMode::kRowBinding;
      }
      graph_options.guard = &guard;
      result = compiler.RunOnGraph(unit.pgir, *store, &db, nullptr,
                                   graph_options, qm);
    } else {
      return Usage();
    }
    if (!result.ok()) return Fail(result.status());
    std::cout << result->ToString(db.symbols());

    if (options.explain_analyze) {
      auto analyzed = raqlet::dlir::ExplainAnalyzeProgram(program, metrics);
      if (!analyzed.ok()) return Fail(analyzed.status());
      std::cout << "\n" << *analyzed;
    } else if (qm != nullptr) {
      std::cout << "\n" << metrics.ToString();
    }

    if (options.demo) {
      // Guardrail tour: a row-hungry recursive query (the full KNOWS
      // reachability closure) under a deliberately small row budget trips
      // with a terminal status, the report shows how far it got, and —
      // the cancellation contract — re-running the very same query on the
      // same database without the budget succeeds normally.
      std::cout << "\n-- execution guardrails --\n";
      auto closure = compiler.CompileCypher(
          "MATCH (a:Person)-[:KNOWS*]->(b:Person) "
          "RETURN DISTINCT a.id AS src, b.id AS dst");
      if (!closure.ok()) return Fail(closure.status());
      raqlet::runtime::QueryGuard demo_guard;
      demo_guard.set_max_rows(500);
      raqlet::obs::QueryMetrics trip_metrics;
      raqlet::engine::EvalOptions tripped_options;
      tripped_options.num_threads = options.threads;
      tripped_options.guard = &demo_guard;
      auto tripped = compiler.RunOnDatalog(closure->optimized, &db, nullptr,
                                           tripped_options, &trip_metrics);
      std::cout << "KNOWS closure with --max-rows 500: "
                << (tripped.ok() ? "unexpected: did not trip"
                                 : tripped.status().ToString())
                << "\n";
      if (!tripped.ok()) {
        std::cout << trip_metrics.ToString();
        raqlet::engine::EvalOptions retry_options;
        retry_options.num_threads = options.threads;
        auto retry = compiler.RunOnDatalog(closure->optimized, &db, nullptr,
                                           retry_options, nullptr);
        std::cout << "re-run without budget: "
                  << (retry.ok() ? "ok, " + std::to_string(retry->rows.size())
                                       + " rows"
                                 : retry.status().ToString())
                  << "\n";
      }
    }
  }

  if (trace != nullptr) {
    if (auto st = trace->WriteChromeTrace(options.trace_path); !st.ok()) {
      return Fail(st);
    }
    std::cerr << "trace: " << trace->event_count() << " events -> "
              << options.trace_path << "\n";
  }
  return 0;
}
