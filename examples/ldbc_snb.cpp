// LDBC SNB workload demo: generates a scale-factor social network, runs
// the paper's Table 1 queries (SQ1, CQ2) on all engines, unoptimized and
// optimized, and prints a Table 1-shaped timing summary.
//
// Usage: ./build/examples/ldbc_snb [scale_factor]   (default 0.5)

#include <chrono>
#include <cstdio>
#include <iostream>
#include <string>

#include "ldbc/ldbc.h"
#include "raqlet/compiler.h"

namespace {

using Clock = std::chrono::steady_clock;

double MeasureMs(const std::function<raqlet::Status()>& fn, bool* ok) {
  auto begin = Clock::now();
  raqlet::Status st = fn();
  auto end = Clock::now();
  *ok = st.ok();
  if (!st.ok()) std::cerr << "  error: " << st.ToString() << "\n";
  return std::chrono::duration<double, std::milli>(end - begin).count();
}

}  // namespace

int main(int argc, char** argv) {
  double sf = argc > 1 ? std::stod(argv[1]) : 0.5;

  raqlet::Compiler compiler;
  if (!compiler.LoadPgSchema(raqlet::ldbc::SnbSchema()).ok()) return 1;
  raqlet::Database db;
  if (!compiler.CreateEdbs(&db).ok()) return 1;

  raqlet::ldbc::GeneratorOptions gen;
  gen.scale_factor = sf;
  std::cout << "generating SNB-like data, scale factor " << sf << " ("
            << gen.persons() << " persons)...\n";
  if (!GenerateSnbData(compiler.dl_schema(), &db, gen).ok()) return 1;
  std::cout << "total tuples: " << db.TotalTuples() << "\n";

  auto store = compiler.BuildGraphStore(db);
  if (!store.ok()) return 1;

  raqlet::CompileOptions params;
  params.parameters["personId"] =
      raqlet::dlir::Constant::Number(raqlet::ldbc::SamplePersonId(gen));
  params.parameters["maxDate"] =
      raqlet::dlir::Constant::Number(raqlet::ldbc::MidCreationDate());

  struct QuerySpec {
    const char* name;
    const char* text;
  };
  const QuerySpec queries[] = {
      {"SQ1", raqlet::ldbc::ShortQuery1()},
      {"CQ2", raqlet::ldbc::ComplexQuery2()},
  };

  std::printf("\n%-5s %-4s %12s %12s %12s %12s\n", "Query", "Opt",
              "Graph(ms)", "Datalog(ms)", "SQL-vec(ms)", "SQL-tup(ms)");
  for (const QuerySpec& query : queries) {
    for (bool optimized : {false, true}) {
      params.opt_level = optimized ? 1 : 0;
      auto unit = compiler.CompileCypher(query.text, params);
      if (!unit.ok()) {
        std::cerr << unit.status().ToString() << "\n";
        return 1;
      }
      const raqlet::dlir::Program& program = unit->optimized;

      bool ok = true;
      // Graph engine runs the PGIR directly (the "original Cypher" row of
      // Table 1 exists only unoptimized, as in the paper).
      double graph_ms = -1;
      if (!optimized) {
        graph_ms = MeasureMs(
            [&] {
              return compiler.RunOnGraph(unit->pgir, *store, &db).status();
            },
            &ok);
      }
      double datalog_ms = MeasureMs(
          [&] { return compiler.RunOnDatalog(program, &db).status(); }, &ok);
      double sql_vec_ms = MeasureMs(
          [&] {
            return compiler
                .RunOnSql(program, &db, raqlet::engine::SqlMode::kVectorized)
                .status();
          },
          &ok);
      double sql_tup_ms = MeasureMs(
          [&] {
            return compiler
                .RunOnSql(program, &db,
                          raqlet::engine::SqlMode::kTuplePipeline)
                .status();
          },
          &ok);
      if (!ok) return 1;

      char graph_buf[32];
      if (graph_ms < 0) {
        std::snprintf(graph_buf, sizeof(graph_buf), "%12s", "-");
      } else {
        std::snprintf(graph_buf, sizeof(graph_buf), "%12.2f", graph_ms);
      }
      std::printf("%-5s %-4s %s %12.2f %12.2f %12.2f\n", query.name,
                  optimized ? "yes" : "no", graph_buf, datalog_ms, sql_vec_ms,
                  sql_tup_ms);
    }
  }

  std::cout << "\n(absolute numbers are substrate-specific; compare shapes "
               "with Table 1 of the paper — see EXPERIMENTS.md)\n";
  return 0;
}
