// Recursive path queries across paradigms: reachability, bounded
// friends-of-friends and shortest paths over the KNOWS graph, executed on
// the traversal engine and the Datalog engine — plus a demonstration of
// the magic-set transformation turning whole-graph transitive closure into
// goal-directed reachability (§5).
//
// Usage: ./build/examples/social_paths [scale_factor]   (default 0.3)

#include <chrono>
#include <iostream>
#include <string>

#include "ldbc/ldbc.h"
#include "opt/magic_sets.h"
#include "opt/passes.h"
#include "raqlet/compiler.h"

namespace {

using Clock = std::chrono::steady_clock;

void Banner(const char* title) { std::cout << "\n=== " << title << " ===\n"; }

double Ms(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

}  // namespace

int main(int argc, char** argv) {
  double sf = argc > 1 ? std::stod(argv[1]) : 0.3;

  raqlet::Compiler compiler;
  if (!compiler.LoadPgSchema(raqlet::ldbc::SnbSchema()).ok()) return 1;
  raqlet::Database db;
  if (!compiler.CreateEdbs(&db).ok()) return 1;
  raqlet::ldbc::GeneratorOptions gen;
  gen.scale_factor = sf;
  if (!GenerateSnbData(compiler.dl_schema(), &db, gen).ok()) return 1;
  auto store = compiler.BuildGraphStore(db);
  if (!store.ok()) return 1;

  raqlet::CompileOptions params;
  params.parameters["personId"] =
      raqlet::dlir::Constant::Number(raqlet::ldbc::SamplePersonId(gen));
  params.opt_level = 0;

  struct Spec {
    const char* name;
    const char* query;
  };
  for (const Spec& spec :
       {Spec{"reachability (KNOWS*)", raqlet::ldbc::ReachabilityQuery()},
        Spec{"friends within 3 hops", raqlet::ldbc::FriendsWithinThreeHops()},
        Spec{"shortest path lengths", raqlet::ldbc::ShortestPathQuery()}}) {
    Banner(spec.name);
    auto unit = compiler.CompileCypher(spec.query, params);
    if (!unit.ok()) {
      std::cerr << unit.status().ToString() << "\n";
      return 1;
    }
    auto t0 = Clock::now();
    auto graph = compiler.RunOnGraph(unit->pgir, *store, &db);
    auto t1 = Clock::now();
    auto datalog = compiler.RunOnDatalog(unit->dlir, &db);
    auto t2 = Clock::now();
    if (!graph.ok() || !datalog.ok()) {
      std::cerr << graph.status().ToString() << " / "
                << datalog.status().ToString() << "\n";
      return 1;
    }
    bool agree = graph->ToStringSet(db.symbols()) ==
                 datalog->ToStringSet(db.symbols());
    std::cout << "graph engine  : " << graph->rows.size() << " rows, "
              << Ms(t0, t1) << " ms\n";
    std::cout << "datalog engine: " << datalog->rows.size() << " rows, "
              << Ms(t1, t2) << " ms\n";
    std::cout << "agree: " << (agree ? "yes" : "NO") << "\n";
  }

  // --- magic sets: goal-directed evaluation of bound recursion ---
  Banner("magic-set transformation (Section 5)");
  auto unit = compiler.CompileCypher(raqlet::ldbc::ReachabilityQuery(), params);
  if (!unit.ok()) return 1;
  // The Standard pipeline (inlining + pushdown) exposes the bound person
  // id to the recursive atom; the Aggressive pipeline then applies the
  // magic-set transformation.
  auto standard = compiler.Optimize(unit->dlir, 1);
  auto cleaned = compiler.Optimize(unit->dlir, 2);
  if (!standard.ok() || !cleaned.ok()) return 1;
  std::cout << "transformed program:\n" << cleaned->ToString() << "\n";

  raqlet::engine::EvalStats plain_stats;
  raqlet::engine::EvalStats magic_stats;
  auto r1 = compiler.RunOnDatalog(*standard, &db, &plain_stats);
  auto r2 = compiler.RunOnDatalog(*cleaned, &db, &magic_stats);
  if (!r1.ok() || !r2.ok()) {
    std::cerr << r1.status().ToString() << " / " << r2.status().ToString()
              << "\n";
    return 1;
  }
  std::cout << "same results: "
            << (r1->ToStringSet(db.symbols()) == r2->ToStringSet(db.symbols())
                    ? "yes"
                    : "NO")
            << "\n";
  std::cout << "tuples derived without magic sets: "
            << plain_stats.tuples_inserted << "\n";
  std::cout << "tuples derived with magic sets   : "
            << magic_stats.tuples_inserted << "\n";
  return 0;
}
