// Tests for the predicate dependency graph and its SCC decomposition.

#include <gtest/gtest.h>

#include "analysis/dependency_graph.h"
#include "dlir/parser.h"

namespace raqlet::analysis {
namespace {

dlir::Program Parse(const std::string& text) {
  auto program = dlir::ParseProgram(text);
  EXPECT_TRUE(program.ok()) << program.status().ToString();
  return std::move(program).value();
}

TEST(DependencyGraphTest, LinearRecursionSelfLoop) {
  auto program = Parse(R"(
.decl edge(x: number, y: number)
.decl tc(x: number, y: number)
tc(x, y) :- edge(x, y).
tc(x, y) :- tc(x, z), edge(z, y).
)");
  DependencyGraph g = DependencyGraph::Build(program);
  EXPECT_TRUE(g.HasEdge("edge", "tc"));
  EXPECT_TRUE(g.HasEdge("tc", "tc"));
  EXPECT_FALSE(g.HasEdge("tc", "edge"));
  EXPECT_TRUE(g.IsRecursivePredicate("tc"));
  EXPECT_FALSE(g.IsRecursivePredicate("edge"));
}

TEST(DependencyGraphTest, TopologicalOrderRespectsDependencies) {
  auto program = Parse(R"(
.decl a(x: number)
.decl b(x: number)
.decl c(x: number)
b(x) :- a(x).
c(x) :- b(x).
)");
  DependencyGraph g = DependencyGraph::Build(program);
  const auto& sccs = g.SccsInTopologicalOrder();
  EXPECT_LT(g.SccOf("a"), g.SccOf("b"));
  EXPECT_LT(g.SccOf("b"), g.SccOf("c"));
  EXPECT_EQ(sccs.size(), 3u);
}

TEST(DependencyGraphTest, MutualRecursionOneScc) {
  auto program = Parse(R"(
.decl s(x: number, y: number)
.decl even(x: number)
.decl odd(x: number)
even(0).
odd(y) :- even(x), s(x, y).
even(y) :- odd(x), s(x, y).
)");
  DependencyGraph g = DependencyGraph::Build(program);
  EXPECT_EQ(g.SccOf("even"), g.SccOf("odd"));
  EXPECT_TRUE(g.IsRecursiveScc(g.SccOf("even")));
  EXPECT_NE(g.SccOf("s"), g.SccOf("even"));
}

TEST(DependencyGraphTest, EdgeFlagsForNegationAndAggregation) {
  auto program = Parse(R"(
.decl a(x: number)
.decl b(x: number)
.decl c(x: number, n: number)
b(x) :- a(x), !c(x, _).
c(x, count(y)) :- a(x), a(y).
)");
  DependencyGraph g = DependencyGraph::Build(program);
  bool found_negated = false;
  bool found_aggregated = false;
  for (const DependencyEdge& e : g.edges()) {
    if (e.from == "c" && e.to == "b" && e.negated) found_negated = true;
    if (e.from == "a" && e.to == "c" && e.aggregated) found_aggregated = true;
  }
  EXPECT_TRUE(found_negated);
  EXPECT_TRUE(found_aggregated);
}

TEST(DependencyGraphTest, IsolatedDeclsAreNodes) {
  auto program = Parse(".decl lonely(x: number)");
  DependencyGraph g = DependencyGraph::Build(program);
  EXPECT_EQ(g.predicates().count("lonely"), 1u);
  EXPECT_GE(g.SccOf("lonely"), 0);
  EXPECT_FALSE(g.IsRecursivePredicate("lonely"));
}

TEST(DependencyGraphTest, DependenciesOfCollectsBodyPreds) {
  auto program = Parse(R"(
.decl a(x: number)
.decl b(x: number)
.decl c(x: number)
c(x) :- a(x), b(x).
)");
  DependencyGraph g = DependencyGraph::Build(program);
  EXPECT_EQ(g.DependenciesOf("c"), (std::set<std::string>{"a", "b"}));
}

TEST(DependencyGraphTest, LargeCycleIsOneScc) {
  // a -> b -> c -> d -> a.
  auto program = Parse(R"(
.decl a(x: number)
.decl b(x: number)
.decl c(x: number)
.decl d(x: number)
b(x) :- a(x).
c(x) :- b(x).
d(x) :- c(x).
a(x) :- d(x).
)");
  DependencyGraph g = DependencyGraph::Build(program);
  EXPECT_EQ(g.SccOf("a"), g.SccOf("d"));
  int scc = g.SccOf("a");
  EXPECT_TRUE(g.IsRecursiveScc(scc));
  EXPECT_EQ(g.SccsInTopologicalOrder()[static_cast<size_t>(scc)].size(), 4u);
}

}  // namespace
}  // namespace raqlet::analysis
