// Kill-point sweep over the fault-injection harness (runtime/failpoint.h):
// every status-firing site, armed in turn under every engine configuration,
// must surface exactly the injected Status when the site is on that
// configuration's path — and after disarming, a re-run on the same
// database must be bit-identical to a run that never saw the fault. This
// proves the robustness contract ("a failed query never corrupts state")
// by construction, not by hoping the error paths are exercised.
//
// The sweep suites GTEST_SKIP unless the sites are compiled in
// (-DRAQLET_FAILPOINTS=ON; the `asan-failpoint` preset / CI leg). The
// default build still runs CompiledOutSitesAreInert, pinning the
// zero-cost-off contract.

#include <gtest/gtest.h>

#include <chrono>
#include <functional>
#include <map>
#include <optional>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "raqlet/compiler.h"
#include "runtime/failpoint.h"
#include "runtime/query_guard.h"

namespace raqlet {
namespace {

constexpr char kSchema[] = R"(
CREATE GRAPH {
  (personType: Person {id INT, firstName STRING, age INT}),
  (:personType)-[knowsType: knows {id INT}]->(:personType)
}
)";

constexpr char kClosureQuery[] =
    "MATCH (a:Person)-[:KNOWS*]->(b:Person) "
    "RETURN DISTINCT a.id AS src, b.id AS dst";

void FillDb(Database* db, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> person(1, 30);
  std::uniform_int_distribution<int> age(18, 80);
  Relation* person_rel = *db->GetRelation("Person");
  for (int i = 1; i <= 30; ++i) {
    person_rel->Insert({Value::Number(i),
                        db->Str("p" + std::to_string(i % 7)),
                        Value::Number(age(rng))});
  }
  Relation* knows = *db->GetRelation("Person_KNOWS_Person");
  int edge_id = 0;
  for (int i = 0; i < 60; ++i) {
    int a = person(rng);
    int b = person(rng);
    if (a == b) continue;
    knows->Insert({Value::Number(a), Value::Number(b),
                   Value::Number(++edge_id)});
  }
}

class FailpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    runtime::DisarmAllFailpoints();
    ASSERT_TRUE(compiler_.LoadPgSchema(kSchema).ok());
    ASSERT_TRUE(compiler_.CreateEdbs(&db_).ok());
    FillDb(&db_, 99);
    auto unit = compiler_.CompileCypher(kClosureQuery);
    ASSERT_TRUE(unit.ok()) << unit.status().ToString();
    unit_ = std::move(*unit);
    auto store = compiler_.BuildGraphStore(db_);
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    store_ = std::move(*store);
  }

  void TearDown() override { runtime::DisarmAllFailpoints(); }

  using RunFn = std::function<Result<engine::ResultTable>()>;

  // Every engine configuration the sweep drives: the three engines at the
  // thread counts / executor modes that take distinct code paths.
  std::vector<std::pair<std::string, RunFn>> Configs(
      const runtime::QueryGuard* guard = nullptr) {
    auto datalog = [this, guard](int threads) {
      engine::EvalOptions options;
      options.num_threads = threads;
      options.guard = guard;
      return compiler_.RunOnDatalog(unit_.dlir, &db_, nullptr, options);
    };
    auto sql = [this, guard](engine::SqlMode mode, int threads) {
      return compiler_.RunOnSql(unit_.dlir, &db_, mode, nullptr, threads,
                                nullptr, guard);
    };
    auto graph = [this, guard](engine::GraphMode mode) {
      engine::GraphOptions options;
      options.mode = mode;
      options.guard = guard;
      return compiler_.RunOnGraph(unit_.pgir, *store_, &db_, nullptr,
                                  options);
    };
    return {
        {"datalog/1t", [datalog] { return datalog(1); }},
        {"datalog/4t", [datalog] { return datalog(4); }},
        {"sql-vectorized/1t",
         [sql] { return sql(engine::SqlMode::kVectorized, 1); }},
        {"sql-vectorized/4t",
         [sql] { return sql(engine::SqlMode::kVectorized, 4); }},
        {"sql-tuple/1t",
         [sql] { return sql(engine::SqlMode::kTuplePipeline, 1); }},
        {"graph/batch",
         [graph] { return graph(engine::GraphMode::kColumnBatch); }},
        {"graph/rows",
         [graph] { return graph(engine::GraphMode::kRowBinding); }},
    };
  }

  Compiler compiler_;
  Database db_;
  CompiledQuery unit_;
  std::optional<engine::GraphStore> store_;
};

TEST_F(FailpointTest, CompiledOutSitesAreInert) {
  if (runtime::FailpointsCompiledIn()) {
    GTEST_SKIP() << "sites compiled in; covered by the sweep";
  }
  // Arming is a harmless registry write when the macros are compiled out:
  // no site fires, no hit is counted, results are untouched.
  for (const std::string& site : runtime::FailpointStatusSites()) {
    runtime::ArmFailpoint(site, Status::Internal("injected: " + site));
  }
  for (auto& [name, run] : Configs()) {
    auto result = run();
    EXPECT_TRUE(result.ok()) << name << ": " << result.status().ToString();
  }
  for (const std::string& site : runtime::FailpointStatusSites()) {
    EXPECT_EQ(runtime::FailpointHits(site), 0) << site;
  }
}

TEST_F(FailpointTest, KillPointSweep) {
  if (!runtime::FailpointsCompiledIn()) {
    GTEST_SKIP() << "configure with -DRAQLET_FAILPOINTS=ON";
  }
  // Unfaulted reference rows per configuration.
  std::vector<engine::ResultTable> refs;
  auto configs = Configs();
  for (auto& [name, run] : configs) {
    auto ref = run();
    ASSERT_TRUE(ref.ok()) << name << ": " << ref.status().ToString();
    refs.push_back(std::move(*ref));
  }

  std::map<std::string, int> fired_in_configs;
  for (const std::string& site : runtime::FailpointStatusSites()) {
    for (size_t c = 0; c < configs.size(); ++c) {
      const std::string& name = configs[c].first;
      SCOPED_TRACE(site + " x " + name);

      runtime::ArmFailpoint(site, Status::Internal("injected: " + site));
      auto faulted = configs[c].second();
      int hits = runtime::FailpointHits(site);
      if (hits > 0) {
        // The site is on this configuration's path: the injected Status —
        // code and message — must surface, not a mangled or swallowed one.
        ++fired_in_configs[site];
        ASSERT_FALSE(faulted.ok());
        EXPECT_EQ(faulted.status().code(), StatusCode::kInternal);
        EXPECT_NE(faulted.status().message().find("injected: " + site),
                  std::string::npos)
            << faulted.status().ToString();
      } else {
        // Not on this path (e.g. sql.cte_merge under the graph engine):
        // the run must be entirely unaffected.
        ASSERT_TRUE(faulted.ok()) << faulted.status().ToString();
        EXPECT_EQ(faulted->rows, refs[c].rows);
      }
      runtime::DisarmFailpoint(site);

      // The kill-point contract: whatever state the injected failure
      // interrupted, a plain re-run is bit-identical to the reference.
      auto rerun = configs[c].second();
      ASSERT_TRUE(rerun.ok()) << rerun.status().ToString();
      EXPECT_EQ(rerun->columns, refs[c].columns);
      EXPECT_EQ(rerun->rows, refs[c].rows)
          << "re-run after injected failure diverged";
    }
  }

  // The sweep must not be vacuous: every status site fires under at
  // least one configuration.
  for (const std::string& site : runtime::FailpointStatusSites()) {
    EXPECT_GT(fired_in_configs[site], 0)
        << site << " never fired in any engine configuration";
  }
}

TEST_F(FailpointTest, NthHitArmingFiresExactlyAtN) {
  if (!runtime::FailpointsCompiledIn()) {
    GTEST_SKIP() << "configure with -DRAQLET_FAILPOINTS=ON";
  }
  const std::string site = "datalog.apply_staged";
  auto run = [this] {
    return compiler_.RunOnDatalog(unit_.dlir, &db_);
  };
  auto ref = run();
  ASSERT_TRUE(ref.ok()) << ref.status().ToString();

  // Count the site's hits across one clean run by arming far past them.
  runtime::ArmFailpoint(site, Status::Internal("unreachable"), 1 << 30);
  ASSERT_TRUE(run().ok());
  int total = runtime::FailpointHits(site);
  runtime::DisarmFailpoint(site);
  ASSERT_GT(total, 1) << "query too small to test Nth-hit arming";

  // Arm at the final hit: the first (total - 1) pass untouched.
  runtime::ArmFailpoint(site, Status::Internal("injected: " + site), total);
  auto faulted = run();
  ASSERT_FALSE(faulted.ok());
  EXPECT_EQ(runtime::FailpointHits(site), total);
  runtime::DisarmFailpoint(site);

  auto rerun = run();
  ASSERT_TRUE(rerun.ok()) << rerun.status().ToString();
  EXPECT_EQ(rerun->rows, ref->rows);
}

TEST_F(FailpointTest, DelaySitesDoNotPerturbResults) {
  if (!runtime::FailpointsCompiledIn()) {
    GTEST_SKIP() << "configure with -DRAQLET_FAILPOINTS=ON";
  }
  auto configs = Configs();
  std::vector<engine::ResultTable> refs;
  for (auto& [name, run] : configs) {
    auto ref = run();
    ASSERT_TRUE(ref.ok()) << name;
    refs.push_back(std::move(*ref));
  }
  for (const std::string& site : runtime::FailpointDelaySites()) {
    runtime::ArmFailpointDelay(site, 1);
  }
  for (size_t c = 0; c < configs.size(); ++c) {
    auto slow = configs[c].second();
    ASSERT_TRUE(slow.ok()) << configs[c].first;
    EXPECT_EQ(slow->rows, refs[c].rows) << configs[c].first;
  }
}

TEST_F(FailpointTest, DelayedPoolDrainsUnderShortDeadline) {
  if (!runtime::FailpointsCompiledIn()) {
    GTEST_SKIP() << "configure with -DRAQLET_FAILPOINTS=ON";
  }
  // Widen the dispatch race window, then run with an already-expired
  // deadline: the parallel engines must report kDeadlineExceeded (never
  // hang, never crash) and drain their pools for the next run.
  for (const std::string& site : runtime::FailpointDelaySites()) {
    runtime::ArmFailpointDelay(site, 2);
  }
  runtime::QueryGuard guard;
  guard.set_timeout_ms(1);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));

  engine::EvalOptions options;
  options.num_threads = 4;
  options.guard = &guard;
  EXPECT_EQ(compiler_.RunOnDatalog(unit_.dlir, &db_, nullptr, options)
                .status()
                .code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_EQ(compiler_
                .RunOnSql(unit_.dlir, &db_, engine::SqlMode::kVectorized,
                          nullptr, 4, nullptr, &guard)
                .status()
                .code(),
            StatusCode::kDeadlineExceeded);

  runtime::DisarmAllFailpoints();
  auto rerun = compiler_.RunOnDatalog(unit_.dlir, &db_, nullptr, options);
  EXPECT_EQ(rerun.status().code(), StatusCode::kDeadlineExceeded)
      << "tripped guard stays tripped until Reset";
  guard.Reset();
  auto clean = compiler_.RunOnDatalog(unit_.dlir, &db_, nullptr, options);
  EXPECT_TRUE(clean.ok()) << clean.status().ToString();
}

}  // namespace
}  // namespace raqlet
