// Unit tests for the parallel evaluation runtime: the thread pool's two
// primitives and the SCC/stratum scheduler (dependency ordering, error
// propagation, serial fallback).

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <set>
#include <vector>

#include "dlir/parser.h"
#include "runtime/execution_context.h"
#include "runtime/scc_scheduler.h"
#include "runtime/thread_pool.h"

namespace raqlet::runtime {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::mutex mutex;
  std::condition_variable cv;
  constexpr int kTasks = 100;
  for (int i = 0; i < kTasks; ++i) {
    pool.Submit([&] {
      if (counter.fetch_add(1) + 1 == kTasks) {
        std::lock_guard<std::mutex> lock(mutex);
        cv.notify_all();
      }
    });
  }
  std::unique_lock<std::mutex> lock(mutex);
  cv.wait(lock, [&] { return counter.load() == kTasks; });
  EXPECT_EQ(counter.load(), kTasks);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr size_t kCount = 10000;
  std::vector<std::atomic<int>> hits(kCount);
  pool.ParallelFor(kCount, [&](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < kCount; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ParallelForHandlesEdgeCounts) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  pool.ParallelFor(0, [&](size_t) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 0);
  pool.ParallelFor(1, [&](size_t) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 1);
}

// A worker that itself calls ParallelFor must not deadlock: the caller
// participates in its own loop instead of blocking on a free worker.
TEST(ThreadPoolTest, NestedParallelForDoesNotDeadlock) {
  ThreadPool pool(2);
  std::atomic<int> inner_runs{0};
  pool.ParallelFor(8, [&](size_t) {
    pool.ParallelFor(8, [&](size_t) { inner_runs.fetch_add(1); });
  });
  EXPECT_EQ(inner_runs.load(), 64);
}

TEST(ExecutionContextTest, SerialContextHasNoPool) {
  ExecutionContext serial(1);
  EXPECT_EQ(serial.num_threads(), 1);
  EXPECT_EQ(serial.pool(), nullptr);
  ExecutionContext clamped(0);
  EXPECT_EQ(clamped.num_threads(), 1);
  EXPECT_EQ(clamped.pool(), nullptr);
}

TEST(ExecutionContextTest, ParallelContextOwnsPool) {
  ExecutionContext ctx(3);
  EXPECT_EQ(ctx.num_threads(), 3);
  ASSERT_NE(ctx.pool(), nullptr);
  EXPECT_EQ(ctx.pool()->num_threads(), 3);
}

// Two independent chains hanging off a shared base:
//   base -> left1 -> left2,  base -> right1,  isolated
constexpr char kDiamondProgram[] = R"(
.decl base(x: number)
.input base
.decl left1(x: number)
.decl left2(x: number)
.decl right1(x: number)
.decl isolated(x: number)
.input isolated
.output left2
left1(x) :- base(x).
left2(x) :- left1(x).
right1(x) :- base(x).
)";

TEST(SccSchedulerTest, BuildSccDagReflectsPredicateDependencies) {
  auto program = dlir::ParseProgram(kDiamondProgram);
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  analysis::DependencyGraph graph = analysis::DependencyGraph::Build(*program);
  SccDag dag = BuildSccDag(graph);
  ASSERT_EQ(dag.size(), graph.SccsInTopologicalOrder().size());

  int base = graph.SccOf("base");
  int left1 = graph.SccOf("left1");
  int left2 = graph.SccOf("left2");
  int right1 = graph.SccOf("right1");
  int isolated = graph.SccOf("isolated");

  auto successors_of = [&](int node) {
    const auto& s = dag.successors[static_cast<size_t>(node)];
    return std::set<int>(s.begin(), s.end());
  };
  EXPECT_EQ(successors_of(base), (std::set<int>{left1, right1}));
  EXPECT_EQ(successors_of(left1), (std::set<int>{left2}));
  EXPECT_TRUE(successors_of(left2).empty());
  EXPECT_TRUE(successors_of(right1).empty());
  EXPECT_TRUE(successors_of(isolated).empty());
  // Condensation edges always point forward in topological order.
  for (size_t i = 0; i < dag.size(); ++i) {
    for (int succ : dag.successors[i]) {
      EXPECT_GT(succ, static_cast<int>(i));
    }
  }
}

// Random-ish layered DAG: node i depends on some earlier nodes. The body
// asserts all dependencies finished before it starts.
TEST(SccSchedulerTest, RunSccDagRespectsDependencies) {
  constexpr int kNodes = 40;
  SccDag dag;
  dag.successors.resize(kNodes);
  for (int i = 0; i < kNodes; ++i) {
    for (int j = i + 1; j < kNodes; ++j) {
      if ((i * 31 + j * 17) % 5 == 0) dag.successors[i].push_back(j);
    }
  }
  ThreadPool pool(4);
  std::vector<std::atomic<bool>> finished(kNodes);
  std::atomic<int> runs{0};
  std::atomic<int> violations{0};
  Status status = RunSccDag(dag, &pool, [&](int node) {
    for (int i = 0; i < node; ++i) {
      bool depends = false;
      for (int succ : dag.successors[i]) depends |= succ == node;
      if (depends && !finished[i].load()) violations.fetch_add(1);
    }
    finished[node].store(true);
    runs.fetch_add(1);
    return Status::OK();
  });
  EXPECT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(runs.load(), kNodes);
  EXPECT_EQ(violations.load(), 0);
}

TEST(SccSchedulerTest, RunSccDagRunsEveryNodeOnce) {
  SccDag dag;
  dag.successors.resize(16);  // no edges: fully independent
  ThreadPool pool(4);
  std::vector<std::atomic<int>> runs(16);
  Status status = RunSccDag(dag, &pool, [&](int node) {
    runs[static_cast<size_t>(node)].fetch_add(1);
    return Status::OK();
  });
  EXPECT_TRUE(status.ok());
  for (const auto& r : runs) EXPECT_EQ(r.load(), 1);
}

TEST(SccSchedulerTest, PropagatesLowestIndexError) {
  SccDag dag;
  dag.successors.resize(8);  // independent, nodes 3 and 6 fail
  ThreadPool pool(4);
  Status status = RunSccDag(dag, &pool, [&](int node) {
    if (node == 3 || node == 6) {
      return Status::Internal("node " + std::to_string(node) + " failed");
    }
    return Status::OK();
  });
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.ToString().find("node 3 failed"), std::string::npos)
      << status.ToString();
}

TEST(SccSchedulerTest, FailureSkipsDependents) {
  SccDag dag;
  dag.successors.resize(3);
  dag.successors[0] = {1};
  dag.successors[1] = {2};
  ThreadPool pool(2);
  std::atomic<int> runs{0};
  Status status = RunSccDag(dag, &pool, [&](int node) {
    runs.fetch_add(1);
    if (node == 0) return Status::Internal("root failed");
    return Status::OK();
  });
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(runs.load(), 1);  // 1 and 2 never start
}

TEST(SccSchedulerTest, SerialFallbackWithoutPool) {
  SccDag dag;
  dag.successors.resize(5);
  dag.successors[0] = {4};
  std::vector<int> order;
  Status status = RunSccDag(dag, nullptr, [&](int node) {
    order.push_back(node);
    return Status::OK();
  });
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

}  // namespace
}  // namespace raqlet::runtime
