// Unit tests for common/: Status, Result, Value, SymbolTable, str_util,
// and the shared lexer.

#include <gtest/gtest.h>

#include "common/lexer.h"
#include "common/status.h"
#include "common/str_util.h"
#include "common/value.h"

namespace raqlet {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::ParseError("bad token");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kParseError);
  EXPECT_EQ(s.message(), "bad token");
  EXPECT_EQ(s.ToString(), "ParseError: bad token");
}

TEST(StatusTest, CopyPreservesError) {
  Status s = Status::NotFound("x");
  Status t = s;
  EXPECT_EQ(t.code(), StatusCode::kNotFound);
  EXPECT_EQ(t.message(), "x");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::Internal("boom");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
}

Result<int> Double(Result<int> in) {
  RAQLET_ASSIGN_OR_RETURN(int v, std::move(in));
  return v * 2;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(*Double(21), 42);
  EXPECT_FALSE(Double(Status::NotFound("nope")).ok());
  EXPECT_EQ(Double(Status::NotFound("nope")).status().code(),
            StatusCode::kNotFound);
}

TEST(ValueTest, KindsAndAccessors) {
  EXPECT_EQ(Value::Number(7).AsNumber(), 7);
  EXPECT_DOUBLE_EQ(Value::Float(2.5).AsFloat(), 2.5);
  EXPECT_EQ(Value::Symbol(3).AsSymbol(), 3u);
  EXPECT_TRUE(Value::Bool(true).AsBool());
  EXPECT_TRUE(Value::Null().is_null());
}

TEST(ValueTest, EqualityIsKindAware) {
  EXPECT_EQ(Value::Number(1), Value::Number(1));
  EXPECT_NE(Value::Number(1), Value::Float(1.0));
  EXPECT_NE(Value::Number(1), Value::Symbol(1));
  EXPECT_EQ(Value::Null(), Value::Null());
}

TEST(ValueTest, OrderingWithinKind) {
  EXPECT_LT(Value::Number(1), Value::Number(2));
  EXPECT_LT(Value::Float(1.5), Value::Float(2.5));
}

TEST(ValueTest, HashDistinguishesKinds) {
  EXPECT_NE(Value::Number(1).Hash(), Value::Symbol(1).Hash());
}

TEST(SymbolTableTest, InternIsIdempotent) {
  SymbolTable t;
  uint32_t a = t.Intern("hello");
  uint32_t b = t.Intern("world");
  EXPECT_NE(a, b);
  EXPECT_EQ(t.Intern("hello"), a);
  EXPECT_EQ(t.Resolve(a), "hello");
  EXPECT_EQ(t.Lookup("world"), b);
  EXPECT_EQ(t.Lookup("missing"), SymbolTable::kNotFound);
  EXPECT_EQ(t.size(), 2u);
}

TEST(TupleTest, HashAndToString) {
  SymbolTable t;
  Tuple a = {Value::Number(1), Value::Symbol(t.Intern("x"))};
  Tuple b = {Value::Number(1), Value::Symbol(t.Intern("x"))};
  EXPECT_EQ(TupleHash()(a), TupleHash()(b));
  EXPECT_EQ(TupleToString(a, &t), "(1, \"x\")");
}

TEST(StrUtilTest, JoinSplit) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  std::vector<std::string> parts = Split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[2], "");
}

TEST(StrUtilTest, CaseAndTrim) {
  EXPECT_EQ(ToLower("MiXeD"), "mixed");
  EXPECT_EQ(ToUpper("MiXeD"), "MIXED");
  EXPECT_EQ(Trim("  x \n"), "x");
  EXPECT_TRUE(StartsWith("foobar", "foo"));
  EXPECT_TRUE(EndsWith("foobar", "bar"));
  EXPECT_FALSE(StartsWith("fo", "foo"));
}

TEST(LexerTest, TokenizesIdentifiersNumbersStrings) {
  LexerConfig config;
  config.multi_char_puncts = {"->", "<="};
  config.single_puncts = "(),<-";
  auto tokens = Tokenize("foo 12 3.5 \"hi\" -> <= (", config);
  ASSERT_TRUE(tokens.ok());
  ASSERT_EQ(tokens->size(), 8u);  // 7 tokens + EOF
  EXPECT_EQ((*tokens)[0].kind, Token::kIdent);
  EXPECT_EQ((*tokens)[1].kind, Token::kNumber);
  EXPECT_EQ((*tokens)[2].kind, Token::kFloat);
  EXPECT_EQ((*tokens)[3].kind, Token::kString);
  EXPECT_EQ((*tokens)[4].text, "->");
  EXPECT_EQ((*tokens)[5].text, "<=");
  EXPECT_EQ((*tokens)[6].text, "(");
}

TEST(LexerTest, TracksLineNumbers) {
  LexerConfig config;
  config.single_puncts = "()";
  auto tokens = Tokenize("a\nb", config);
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].line, 1);
  EXPECT_EQ((*tokens)[1].line, 2);
}

TEST(LexerTest, CommentsSkipped) {
  LexerConfig config;
  config.single_puncts = "()";
  config.dash_comments = true;
  auto tokens = Tokenize("a // c1\nb /* c2 */ c -- c3\nd", config);
  ASSERT_TRUE(tokens.ok());
  ASSERT_EQ(tokens->size(), 5u);
  EXPECT_EQ((*tokens)[3].text, "d");
}

TEST(LexerTest, RejectsUnknownCharacter) {
  LexerConfig config;
  config.single_puncts = "()";
  auto tokens = Tokenize("a ?", config);
  EXPECT_FALSE(tokens.ok());
  EXPECT_EQ(tokens.status().code(), StatusCode::kParseError);
}

TEST(LexerTest, UnterminatedStringFails) {
  LexerConfig config;
  auto tokens = Tokenize("\"abc", config);
  EXPECT_FALSE(tokens.ok());
}

}  // namespace
}  // namespace raqlet
