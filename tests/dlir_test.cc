// Unit tests for dlir/: AST helpers, parser, validation, printers.

#include <gtest/gtest.h>

#include "dlir/parser.h"
#include "dlir/program.h"
#include "dlir/souffle_printer.h"

namespace raqlet::dlir {
namespace {

constexpr char kTcProgram[] = R"(
.decl edge(x: number, y: number)
.input edge
.decl tc(x: number, y: number)
.output tc

tc(x, y) :- edge(x, y).
tc(x, y) :- tc(x, z), edge(z, y).
)";

TEST(DlirParserTest, ParsesTransitiveClosure) {
  auto program = ParseProgram(kTcProgram);
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  EXPECT_EQ(program->decls.size(), 2u);
  EXPECT_EQ(program->rules.size(), 2u);
  EXPECT_TRUE(program->FindDecl("edge")->is_input);
  EXPECT_TRUE(program->FindDecl("tc")->is_output);
  EXPECT_EQ(program->rules[1].body.size(), 2u);
  EXPECT_TRUE(program->Validate().ok());
}

TEST(DlirParserTest, ParsesConstraintsAndArithmetic) {
  auto program = ParseProgram(R"(
.decl a(x: number)
.input a
.decl b(x: number, y: number)
b(x, y) :- a(x), y = x * 2 + 1, x != 3, x <= 10.
)");
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  const Rule& rule = program->rules[0];
  EXPECT_EQ(rule.constraints.size(), 3u);
  EXPECT_EQ(rule.constraints[0].op, CmpOp::kEq);
  EXPECT_EQ(rule.constraints[0].rhs.kind, TermKind::kBinary);
  EXPECT_TRUE(program->Validate().ok());
}

TEST(DlirParserTest, ParsesNegationAndWildcards) {
  auto program = ParseProgram(R"(
.decl a(x: number, y: symbol)
.input a
.decl b(x: number)
.input b
.decl c(x: number)
c(x) :- a(x, _), !b(x).
)");
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  const Rule& rule = program->rules[0];
  ASSERT_EQ(rule.body.size(), 2u);
  EXPECT_FALSE(rule.body[0].negated);
  EXPECT_TRUE(rule.body[1].negated);
  EXPECT_TRUE(rule.body[0].args[1].is_wildcard());
}

TEST(DlirParserTest, ParsesAggregatesInHead) {
  auto program = ParseProgram(R"(
.decl sale(region: symbol, amount: number)
.input sale
.decl total(region: symbol, t: number)
total(region, sum(amount)) :- sale(region, amount).
)");
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  const Rule& rule = program->rules[0];
  ASSERT_TRUE(rule.agg.has_value());
  EXPECT_EQ(rule.agg->func, AggFunc::kSum);
  EXPECT_EQ(rule.agg_result_pos, 1);
  EXPECT_TRUE(program->Validate().ok());
}

TEST(DlirParserTest, ParsesLatticeAnnotation) {
  auto program = ParseProgram(R"(
.decl dist(x: number, y: number, d: number) @min
)");
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  EXPECT_EQ(program->decls[0].lattice, LatticeKind::kMin);
}

TEST(DlirParserTest, ParsesFactsAndStrings) {
  auto program = ParseProgram(R"(
.decl person(id: number, name: symbol)
person(1, "ada").
person(2, "bob the \"builder\"").
)");
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  EXPECT_EQ(program->rules.size(), 2u);
  EXPECT_TRUE(program->rules[0].body.empty());
  EXPECT_EQ(program->rules[1].head.args[1].constant.str,
            "bob the \"builder\"");
}

TEST(DlirParserTest, ReportsErrorPosition) {
  auto program = ParseProgram(".decl r(x: numbr)");
  ASSERT_FALSE(program.ok());
  EXPECT_NE(program.status().message().find("line 1"), std::string::npos);
}

TEST(DlirParserTest, RejectsUnknownDirective) {
  EXPECT_FALSE(ParseProgram(".frobnicate r").ok());
}

TEST(DlirParserTest, RejectsIoOnUndeclaredRelation) {
  EXPECT_FALSE(ParseProgram(".output ghost").ok());
}

TEST(DlirValidateTest, RejectsArityMismatch) {
  auto program = ParseProgram(R"(
.decl a(x: number)
.decl b(x: number)
b(x) :- a(x, x).
)");
  ASSERT_TRUE(program.ok());
  Status st = program->Validate();
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
}

TEST(DlirValidateTest, RejectsUndeclaredPredicate) {
  auto program = ParseProgram(R"(
.decl b(x: number)
b(x) :- ghost(x).
)");
  ASSERT_TRUE(program.ok());
  EXPECT_EQ(program->Validate().code(), StatusCode::kNotFound);
}

TEST(DlirValidateTest, RejectsUnsafeRule) {
  auto program = ParseProgram(R"(
.decl a(x: number)
.decl b(x: number, y: number)
b(x, y) :- a(x).
)");
  ASSERT_TRUE(program.ok());
  Status st = program->Validate();
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(st.message().find("unsafe"), std::string::npos);
}

TEST(DlirValidateTest, AcceptsBindingConstraintChains) {
  // y is bound through a chain of equalities rooted at a positive atom.
  auto program = ParseProgram(R"(
.decl a(x: number)
.decl b(x: number, y: number)
b(x, y) :- a(x), z = x + 1, y = z * 2.
)");
  ASSERT_TRUE(program.ok());
  EXPECT_TRUE(program->Validate().ok()) << program->Validate().ToString();
}

TEST(DlirValidateTest, RejectsVarOnlyBoundByNegation) {
  auto program = ParseProgram(R"(
.decl a(x: number)
.decl n(x: number, y: number)
.decl b(x: number)
b(x) :- a(x), !n(x, y).
)");
  ASSERT_TRUE(program.ok());
  EXPECT_FALSE(program->Validate().ok());
}

TEST(DlirPrintTest, RuleRoundTripsThroughParser) {
  auto program = ParseProgram(kTcProgram);
  ASSERT_TRUE(program.ok());
  std::string text = program->ToString();
  auto reparsed = ParseProgram(text);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString() << "\n" << text;
  EXPECT_EQ(reparsed->rules.size(), program->rules.size());
  EXPECT_EQ(reparsed->ToString(), text);
}

TEST(DlirPrintTest, AggregateRuleRendersFunction) {
  auto program = ParseProgram(R"(
.decl sale(region: symbol, amount: number)
.decl total(region: symbol, t: number)
total(region, sum(amount)) :- sale(region, amount).
)");
  ASSERT_TRUE(program.ok());
  std::string text = program->rules[0].ToString();
  EXPECT_NE(text.find("sum(amount)"), std::string::npos);
}

TEST(SouffleTest, EmitsDeclsAndIo) {
  auto program = ParseProgram(kTcProgram);
  ASSERT_TRUE(program.ok());
  std::string text = ToSouffle(*program);
  EXPECT_NE(text.find(".decl edge(x: number, y: number)"), std::string::npos);
  EXPECT_NE(text.find(".input edge"), std::string::npos);
  EXPECT_NE(text.find(".output tc"), std::string::npos);
  EXPECT_NE(text.find("tc(x, y) :- tc(x, z), edge(z, y)."), std::string::npos);
}

TEST(SouffleTest, EmitsSubsumptionForLattice) {
  auto program = ParseProgram(R"(
.decl dist(x: number, d: number) @min
)");
  ASSERT_TRUE(program.ok());
  std::string text = ToSouffle(*program);
  EXPECT_NE(text.find("<="), std::string::npos);  // subsumptive clause
}

TEST(SouffleTest, EmitsAggregateContextSyntax) {
  auto program = ParseProgram(R"(
.decl sale(region: symbol, amount: number)
.decl total(region: symbol, t: number)
total(region, sum(amount)) :- sale(region, amount).
)");
  ASSERT_TRUE(program.ok());
  std::string text = ToSouffle(*program);
  EXPECT_NE(text.find("sum amount : {"), std::string::npos);
}

TEST(VarGenTest, AvoidsReservedNames) {
  VarGen gen({"x", "x_1"});
  EXPECT_EQ(gen.Fresh("x"), "x_2");
  EXPECT_EQ(gen.Fresh("y"), "y_3");  // counter is global, names stay unique
}

TEST(TermTest, CollectVarsRecurses) {
  Term t = Term::Binary(ArithOp::kAdd, Term::Var("a"),
                        Term::Binary(ArithOp::kMul, Term::Var("b"),
                                     Term::Num(2)));
  std::set<std::string> vars;
  t.CollectVars(&vars);
  EXPECT_EQ(vars, (std::set<std::string>{"a", "b"}));
}

TEST(TermTest, EqualityIsStructural) {
  Term a = Term::Binary(ArithOp::kAdd, Term::Var("x"), Term::Num(1));
  Term b = Term::Binary(ArithOp::kAdd, Term::Var("x"), Term::Num(1));
  Term c = Term::Binary(ArithOp::kAdd, Term::Var("x"), Term::Num(2));
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

}  // namespace
}  // namespace raqlet::dlir
