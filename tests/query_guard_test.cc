// Execution guardrails (docs/robustness.md): a runtime::QueryGuard handed
// to any of the three engines must (a) surface exactly one deterministic
// terminal Status — kCancelled / kDeadlineExceeded / kResourceExhausted —
// when it trips, (b) trip row budgets at the same deterministic checkpoint
// regardless of thread count or executor mode, and (c) leave the database,
// the cached engines and the Compiler fully reusable: a re-run after a
// trip is bit-identical to a run that was never guarded.

#include <gtest/gtest.h>

#include <chrono>
#include <optional>
#include <random>
#include <thread>

#include "raqlet/compiler.h"
#include "runtime/query_guard.h"

namespace raqlet {
namespace {

constexpr char kSchema[] = R"(
CREATE GRAPH {
  (personType: Person {id INT, firstName STRING, age INT}),
  (:personType)-[knowsType: knows {id INT}]->(:personType)
}
)";

// The recursive closure shape: every engine derives a few hundred tuples,
// so small budgets trip mid-evaluation rather than at the end.
constexpr char kClosureQuery[] =
    "MATCH (a:Person)-[:KNOWS*]->(b:Person) "
    "RETURN DISTINCT a.id AS src, b.id AS dst";

void FillDb(Database* db, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> person(1, 30);
  std::uniform_int_distribution<int> age(18, 80);
  Relation* person_rel = *db->GetRelation("Person");
  for (int i = 1; i <= 30; ++i) {
    person_rel->Insert({Value::Number(i),
                        db->Str("p" + std::to_string(i % 7)),
                        Value::Number(age(rng))});
  }
  Relation* knows = *db->GetRelation("Person_KNOWS_Person");
  int edge_id = 0;
  for (int i = 0; i < 60; ++i) {
    int a = person(rng);
    int b = person(rng);
    if (a == b) continue;
    knows->Insert({Value::Number(a), Value::Number(b),
                   Value::Number(++edge_id)});
  }
}

class QueryGuardEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(compiler_.LoadPgSchema(kSchema).ok());
    ASSERT_TRUE(compiler_.CreateEdbs(&db_).ok());
    FillDb(&db_, 1234);
    auto unit = compiler_.CompileCypher(kClosureQuery);
    ASSERT_TRUE(unit.ok()) << unit.status().ToString();
    unit_ = std::move(*unit);
  }

  Result<engine::ResultTable> RunDatalog(const runtime::QueryGuard* guard,
                                         int threads = 1,
                                         obs::QueryMetrics* metrics = nullptr) {
    engine::EvalOptions options;
    options.num_threads = threads;
    options.guard = guard;
    return compiler_.RunOnDatalog(unit_.dlir, &db_, nullptr, options, metrics);
  }

  Result<engine::ResultTable> RunSql(const runtime::QueryGuard* guard,
                                     engine::SqlMode mode,
                                     int threads = 1) {
    return compiler_.RunOnSql(unit_.dlir, &db_, mode, nullptr, threads,
                              nullptr, guard);
  }

  Result<engine::ResultTable> RunGraph(const runtime::QueryGuard* guard,
                                       engine::GraphMode mode) {
    if (!store_.has_value()) {
      auto store = compiler_.BuildGraphStore(db_);
      if (!store.ok()) return store.status();
      store_ = std::move(*store);
    }
    engine::GraphOptions options;
    options.mode = mode;
    options.guard = guard;
    return compiler_.RunOnGraph(unit_.pgir, *store_, &db_, nullptr, options);
  }

  Compiler compiler_;
  Database db_;
  CompiledQuery unit_;
  std::optional<engine::GraphStore> store_;
};

// ---- unit semantics --------------------------------------------------

TEST(QueryGuardUnit, UnarmedChecksAreOk) {
  runtime::QueryGuard guard;
  EXPECT_TRUE(guard.Check().ok());
  EXPECT_TRUE(guard.AddRows(1000000).ok());
  EXPECT_TRUE(guard.AddBytes(1000000).ok());
  EXPECT_FALSE(guard.tripped());
  // Unarmed guards do not even account.
  EXPECT_EQ(guard.rows(), 0u);
}

TEST(QueryGuardUnit, RowBudgetAllowsExactlyBudgetRows) {
  runtime::QueryGuard guard;
  guard.set_max_rows(10);
  EXPECT_TRUE(guard.AddRows(10).ok());  // exactly the budget: fine
  EXPECT_FALSE(guard.tripped());
  Status s = guard.AddRows(1);  // one past: trips
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(guard.tripped());
  EXPECT_EQ(guard.TripStatus().code(), StatusCode::kResourceExhausted);
}

TEST(QueryGuardUnit, FirstCauseSticks) {
  runtime::QueryGuard guard;
  guard.set_max_rows(1);
  EXPECT_EQ(guard.AddRows(5).code(), StatusCode::kResourceExhausted);
  guard.Cancel();  // loses the CAS: the original cause is sticky
  EXPECT_EQ(guard.TripStatus().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(guard.Check().code(), StatusCode::kResourceExhausted);
}

TEST(QueryGuardUnit, CancelTripsFromAnotherThread) {
  runtime::QueryGuard guard;
  std::thread canceller([&guard] { guard.Cancel(); });
  canceller.join();
  EXPECT_EQ(guard.Check().code(), StatusCode::kCancelled);
  EXPECT_EQ(guard.TripStatus().code(), StatusCode::kCancelled);
}

TEST(QueryGuardUnit, DeadlineTrips) {
  runtime::QueryGuard guard;
  guard.set_timeout_ms(1);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_EQ(guard.Check().code(), StatusCode::kDeadlineExceeded);
}

TEST(QueryGuardUnit, ResetReArms) {
  runtime::QueryGuard guard;
  guard.set_max_rows(5);
  EXPECT_EQ(guard.AddRows(6).code(), StatusCode::kResourceExhausted);
  guard.Reset();
  EXPECT_FALSE(guard.tripped());
  EXPECT_EQ(guard.rows(), 0u);
  EXPECT_TRUE(guard.AddRows(5).ok());  // the kept limit applies afresh
  EXPECT_EQ(guard.AddRows(1).code(), StatusCode::kResourceExhausted);
}

// ---- terminal codes per engine ---------------------------------------

TEST_F(QueryGuardEngineTest, DatalogTerminalCodes) {
  runtime::QueryGuard cancelled;
  std::thread canceller([&cancelled] { cancelled.Cancel(); });
  canceller.join();
  EXPECT_EQ(RunDatalog(&cancelled).status().code(), StatusCode::kCancelled);

  runtime::QueryGuard deadline;
  deadline.set_timeout_ms(1);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_EQ(RunDatalog(&deadline).status().code(),
            StatusCode::kDeadlineExceeded);

  runtime::QueryGuard rows;
  rows.set_max_rows(10);
  EXPECT_EQ(RunDatalog(&rows).status().code(),
            StatusCode::kResourceExhausted);

  runtime::QueryGuard bytes;
  bytes.set_max_bytes(64);
  EXPECT_EQ(RunDatalog(&bytes).status().code(),
            StatusCode::kResourceExhausted);
}

TEST_F(QueryGuardEngineTest, SqlTerminalCodes) {
  for (engine::SqlMode mode :
       {engine::SqlMode::kVectorized, engine::SqlMode::kTuplePipeline}) {
    runtime::QueryGuard cancelled;
    cancelled.Cancel();
    EXPECT_EQ(RunSql(&cancelled, mode).status().code(),
              StatusCode::kCancelled);

    runtime::QueryGuard deadline;
    deadline.set_timeout_ms(1);
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    EXPECT_EQ(RunSql(&deadline, mode).status().code(),
              StatusCode::kDeadlineExceeded);

    runtime::QueryGuard rows;
    rows.set_max_rows(10);
    EXPECT_EQ(RunSql(&rows, mode).status().code(),
              StatusCode::kResourceExhausted);

    runtime::QueryGuard bytes;
    bytes.set_max_bytes(64);
    EXPECT_EQ(RunSql(&bytes, mode).status().code(),
              StatusCode::kResourceExhausted);
  }
}

TEST_F(QueryGuardEngineTest, GraphTerminalCodes) {
  for (engine::GraphMode mode :
       {engine::GraphMode::kColumnBatch, engine::GraphMode::kRowBinding}) {
    runtime::QueryGuard cancelled;
    cancelled.Cancel();
    EXPECT_EQ(RunGraph(&cancelled, mode).status().code(),
              StatusCode::kCancelled);

    runtime::QueryGuard deadline;
    deadline.set_timeout_ms(1);
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    EXPECT_EQ(RunGraph(&deadline, mode).status().code(),
              StatusCode::kDeadlineExceeded);

    runtime::QueryGuard rows;
    rows.set_max_rows(10);
    EXPECT_EQ(RunGraph(&rows, mode).status().code(),
              StatusCode::kResourceExhausted);
  }
}

// ---- deterministic trips ---------------------------------------------

TEST_F(QueryGuardEngineTest, DatalogRowTripIsThreadCountInvariant) {
  // Row budgets are charged from the engine's deterministic per-round
  // tuple counters, so the same budget must trip at the same checkpoint —
  // with the same accounted total — at any thread count.
  runtime::QueryGuard serial;
  serial.set_max_rows(50);
  EXPECT_EQ(RunDatalog(&serial, 1).status().code(),
            StatusCode::kResourceExhausted);

  runtime::QueryGuard parallel;
  parallel.set_max_rows(50);
  EXPECT_EQ(RunDatalog(&parallel, 4).status().code(),
            StatusCode::kResourceExhausted);

  EXPECT_EQ(serial.rows(), parallel.rows())
      << "row accounting diverged between 1 and 4 threads";
}

TEST_F(QueryGuardEngineTest, SqlRowTripIsThreadCountInvariant) {
  runtime::QueryGuard serial;
  serial.set_max_rows(50);
  EXPECT_EQ(RunSql(&serial, engine::SqlMode::kVectorized, 1).status().code(),
            StatusCode::kResourceExhausted);

  runtime::QueryGuard parallel;
  parallel.set_max_rows(50);
  EXPECT_EQ(RunSql(&parallel, engine::SqlMode::kVectorized, 4).status().code(),
            StatusCode::kResourceExhausted);

  EXPECT_EQ(serial.rows(), parallel.rows())
      << "row accounting diverged between 1 and 4 threads";
}

TEST_F(QueryGuardEngineTest, GraphRowTripIsModeInvariant) {
  // Both binding-table representations count identical per-clause deltas.
  runtime::QueryGuard batch;
  batch.set_max_rows(50);
  EXPECT_EQ(RunGraph(&batch, engine::GraphMode::kColumnBatch).status().code(),
            StatusCode::kResourceExhausted);

  runtime::QueryGuard row;
  row.set_max_rows(50);
  EXPECT_EQ(RunGraph(&row, engine::GraphMode::kRowBinding).status().code(),
            StatusCode::kResourceExhausted);

  EXPECT_EQ(batch.rows(), row.rows())
      << "row accounting diverged between column-batch and row-binding";
}

// ---- post-trip reuse --------------------------------------------------

TEST_F(QueryGuardEngineTest, ReRunAfterTripIsBitIdentical) {
  // Reference rows from a never-guarded run of each engine.
  auto ref_dl = RunDatalog(nullptr);
  ASSERT_TRUE(ref_dl.ok()) << ref_dl.status().ToString();
  auto ref_sql = RunSql(nullptr, engine::SqlMode::kVectorized);
  ASSERT_TRUE(ref_sql.ok()) << ref_sql.status().ToString();
  auto ref_graph = RunGraph(nullptr, engine::GraphMode::kColumnBatch);
  ASSERT_TRUE(ref_graph.ok()) << ref_graph.status().ToString();

  // Trip every engine (row budget, then deadline), then re-run unguarded
  // on the same database through the same cached engines: exact rows,
  // exact order.
  runtime::QueryGuard guard;
  guard.set_max_rows(10);
  EXPECT_EQ(RunDatalog(&guard).status().code(),
            StatusCode::kResourceExhausted);
  size_t first_trip_rows = guard.rows();
  EXPECT_EQ(RunSql(&guard, engine::SqlMode::kVectorized).status().code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(RunGraph(&guard, engine::GraphMode::kColumnBatch).status().code(),
            StatusCode::kResourceExhausted);

  auto dl = RunDatalog(nullptr);
  ASSERT_TRUE(dl.ok()) << dl.status().ToString();
  EXPECT_EQ(dl->rows, ref_dl->rows) << "datalog re-run after trip diverged";

  auto sql = RunSql(nullptr, engine::SqlMode::kVectorized);
  ASSERT_TRUE(sql.ok()) << sql.status().ToString();
  EXPECT_EQ(sql->rows, ref_sql->rows) << "sql re-run after trip diverged";

  auto graph = RunGraph(nullptr, engine::GraphMode::kColumnBatch);
  ASSERT_TRUE(graph.ok()) << graph.status().ToString();
  EXPECT_EQ(graph->rows, ref_graph->rows)
      << "graph re-run after trip diverged";

  // Reset() keeps the limits: the re-armed guard must trip again, at the
  // exact same deterministic checkpoint as the first run.
  guard.Reset();
  EXPECT_EQ(RunDatalog(&guard).status().code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(guard.rows(), first_trip_rows);
  // Lifting the budget makes the same guard good for a full run.
  guard.Reset();
  guard.set_max_rows(0);
  auto again = RunDatalog(&guard);
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_EQ(again->rows, ref_dl->rows);
}

TEST_F(QueryGuardEngineTest, TripIsRecordedInMetrics) {
  obs::QueryMetrics metrics;
  runtime::QueryGuard guard;
  guard.set_max_rows(10);
  EXPECT_EQ(RunDatalog(&guard, 1, &metrics).status().code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(metrics.guard.resource_exhausted, 1u);
  EXPECT_GT(metrics.guard.rows, 10u);
  EXPECT_NE(metrics.ToString().find("guard trips:"), std::string::npos);
}

}  // namespace
}  // namespace raqlet
