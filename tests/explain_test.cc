// Tests for the procedural lowering / EXPLAIN facility (§5 code
// generation).

#include <gtest/gtest.h>

#include "dlir/explain.h"
#include "dlir/parser.h"

namespace raqlet::dlir {
namespace {

Program Parse(const std::string& text) {
  auto program = ParseProgram(text);
  EXPECT_TRUE(program.ok()) << program.status().ToString();
  return std::move(program).value();
}

constexpr char kTc[] = R"(
.decl edge(x: number, y: number)
.input edge
.decl tc(x: number, y: number)
.output tc
tc(x, y) :- edge(x, y).
tc(x, y) :- tc(x, z), edge(z, y).
)";

TEST(ExplainTest, TcShowsSemiNaiveLoop) {
  auto text = ExplainProgram(Parse(kTc));
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  EXPECT_NE(text->find("STRATUM 0 (recursive: tc)"), std::string::npos);
  EXPECT_NE(text->find("INIT"), std::string::npos);
  EXPECT_NE(text->find("LOOP UNTIL FIXPOINT"), std::string::npos);
  EXPECT_NE(text->find("FOR (x, z) IN DELTA tc"), std::string::npos);
  // The inner edge probe uses the index on the join column.
  EXPECT_NE(text->find("IN edge INDEX ON (col0 = z)"), std::string::npos);
  EXPECT_NE(text->find("INSERT (x, y) INTO tc"), std::string::npos);
}

TEST(ExplainTest, NaiveModeOmitsDelta) {
  ExplainOptions options;
  options.seminaive = false;
  auto text = ExplainProgram(Parse(kTc), options);
  ASSERT_TRUE(text.ok());
  EXPECT_EQ(text->find("DELTA"), std::string::npos);
}

TEST(ExplainTest, ConstantsBecomeIndexProbes) {
  auto text = ExplainProgram(Parse(R"(
.decl person(id: number, name: symbol)
.input person
.decl out(name: symbol)
.output out
out(n) :- person(42, n).
)"));
  ASSERT_TRUE(text.ok());
  EXPECT_NE(text->find("INDEX ON (col0 = 42)"), std::string::npos);
}

TEST(ExplainTest, ConstraintsRenderAsIfAndLet) {
  auto text = ExplainProgram(Parse(R"(
.decl edge(x: number, y: number)
.input edge
.decl out(x: number, s: number)
.output out
out(x, s) :- edge(x, y), x < y, s = x + y.
)"));
  ASSERT_TRUE(text.ok());
  EXPECT_NE(text->find("IF x < y"), std::string::npos);
  EXPECT_NE(text->find("LET s = (x + y)"), std::string::npos);
}

TEST(ExplainTest, NegationRendersAsNotExists) {
  auto text = ExplainProgram(Parse(R"(
.decl a(x: number)
.input a
.decl b(x: number)
.input b
.decl out(x: number)
.output out
out(x) :- a(x), !b(x).
)"));
  ASSERT_TRUE(text.ok());
  EXPECT_NE(text->find("IF NOT EXISTS b(x)"), std::string::npos);
}

TEST(ExplainTest, AggregationRendersGroupBy) {
  auto text = ExplainProgram(Parse(R"(
.decl edge(x: number, y: number)
.input edge
.decl deg(x: number, d: number)
.output deg
deg(x, count(y)) :- edge(x, y).
)"));
  ASSERT_TRUE(text.ok());
  EXPECT_NE(text->find("AGGREGATE count()"), std::string::npos);
  EXPECT_NE(text->find("GROUP BY (x)"), std::string::npos);
}

TEST(ExplainTest, StrataAreOrdered) {
  auto text = ExplainProgram(Parse(R"(
.decl edge(x: number, y: number)
.input edge
.decl node(x: number)
.input node
.decl reach(x: number)
.decl unreach(x: number)
.output unreach
reach(1).
reach(y) :- reach(x), edge(x, y).
unreach(x) :- node(x), !reach(x).
)"));
  ASSERT_TRUE(text.ok());
  size_t reach_pos = text->find("recursive: reach");
  size_t unreach_pos = text->find("non-recursive: unreach");
  ASSERT_NE(reach_pos, std::string::npos);
  ASSERT_NE(unreach_pos, std::string::npos);
  EXPECT_LT(reach_pos, unreach_pos);
}

TEST(ExplainTest, RejectsUnstratifiablePrograms) {
  auto text = ExplainProgram(Parse(R"(
.decl a(x: number)
.input a
.decl p(x: number)
p(x) :- a(x), !p(x).
)"));
  ASSERT_FALSE(text.ok());
  EXPECT_EQ(text.status().code(), StatusCode::kUnsupported);
}

TEST(ExplainTest, ExplainAnalyzeAnnotatesStrata) {
  Program program = Parse(kTc);
  // One metrics slot per SCC in topological order: edge (EDB, no rules)
  // first, then the recursive tc SCC — exactly what DatalogEngine records
  // for the 1->2->3->4 chain.
  obs::QueryMetrics metrics;
  metrics.datalog.sccs.resize(2);
  obs::SccMetrics& tc = metrics.datalog.sccs[1];
  tc.preds = {"tc"};
  tc.recursive = true;
  tc.rounds = 3;
  tc.rule_evaluations = 4;
  tc.tuples_considered = 12;
  tc.tuples_inserted = 6;
  tc.round_delta_sizes = {3, 2, 1, 0};

  auto text = ExplainAnalyzeProgram(program, metrics);
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  EXPECT_NE(text->find("STRATUM 0 (recursive: tc)  "
                       "[actual rounds=3 rule_evals=4 considered=12 "
                       "inserted=6]"),
            std::string::npos);
  EXPECT_NE(text->find("ACTUAL DELTAS init=3 r1=2 r2=1 r3=0"),
            std::string::npos);
  // The plain loop nest is still there, and the metrics report follows.
  EXPECT_NE(text->find("LOOP UNTIL FIXPOINT"), std::string::npos);
  EXPECT_NE(text->find("datalog"), std::string::npos);
}

TEST(ExplainTest, ExplainAnalyzeToleratesMissingSlots) {
  // Metrics from another engine (no datalog slots): the plan renders
  // unannotated instead of failing.
  obs::QueryMetrics metrics;
  auto text = ExplainAnalyzeProgram(Parse(kTc), metrics);
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  EXPECT_EQ(text->find("[actual"), std::string::npos);
  EXPECT_NE(text->find("STRATUM 0 (recursive: tc)"), std::string::npos);
}

TEST(ExplainTest, MutualRecursionVariantsPerPredicate) {
  auto text = ExplainProgram(Parse(R"(
.decl s(x: number, y: number)
.input s
.decl even(x: number)
.decl odd(x: number)
.output even
even(0).
odd(y) :- even(x), s(x, y).
even(y) :- odd(x), s(x, y).
)"));
  ASSERT_TRUE(text.ok());
  EXPECT_NE(text->find("DELTA even"), std::string::npos);
  EXPECT_NE(text->find("DELTA odd"), std::string::npos);
}

}  // namespace
}  // namespace raqlet::dlir
