// Tests for the §4 static analyses and backend support checks.

#include <gtest/gtest.h>

#include "analysis/analyses.h"
#include "dlir/parser.h"

namespace raqlet::analysis {
namespace {

dlir::Program Parse(const std::string& text) {
  auto program = dlir::ParseProgram(text);
  EXPECT_TRUE(program.ok()) << program.status().ToString();
  return std::move(program).value();
}

constexpr char kLinearTc[] = R"(
.decl edge(x: number, y: number)
.input edge
.decl tc(x: number, y: number)
.output tc
tc(x, y) :- edge(x, y).
tc(x, y) :- tc(x, z), edge(z, y).
)";

constexpr char kNonLinearTc[] = R"(
.decl edge(x: number, y: number)
.input edge
.decl tc(x: number, y: number)
.output tc
tc(x, y) :- edge(x, y).
tc(x, y) :- tc(x, z), tc(z, y).
)";

constexpr char kMutual[] = R"(
.decl s(x: number, y: number)
.input s
.decl even(x: number)
.decl odd(x: number)
.output even
even(0).
odd(y) :- even(x), s(x, y).
even(y) :- odd(x), s(x, y).
)";

TEST(LinearityTest, LinearTcIsLinear) {
  AnalysisReport report = Analyze(Parse(kLinearTc));
  EXPECT_TRUE(report.linearity.all_linear);
  EXPECT_TRUE(report.linearity.nonlinear_rules.empty());
}

TEST(LinearityTest, NonLinearTcIsFlagged) {
  AnalysisReport report = Analyze(Parse(kNonLinearTc));
  EXPECT_FALSE(report.linearity.all_linear);
  ASSERT_EQ(report.linearity.nonlinear_rules.size(), 1u);
  EXPECT_NE(report.linearity.nonlinear_rules[0].find("tc(x, z)"),
            std::string::npos);
}

TEST(LinearityTest, NonRecursiveRulesAreNotFlagged) {
  AnalysisReport report = Analyze(Parse(R"(
.decl a(x: number)
.input a
.decl b(x: number)
b(x) :- a(x), a(x).
)"));
  EXPECT_TRUE(report.linearity.all_linear);
}

TEST(MutualRecursionTest, EvenOddDetected) {
  AnalysisReport report = Analyze(Parse(kMutual));
  ASSERT_TRUE(report.mutual.has_mutual_recursion);
  ASSERT_EQ(report.mutual.mutual_groups.size(), 1u);
  EXPECT_EQ(report.mutual.mutual_groups[0],
            (std::vector<std::string>{"even", "odd"}));
}

TEST(MutualRecursionTest, SelfRecursionIsNotMutual) {
  AnalysisReport report = Analyze(Parse(kLinearTc));
  EXPECT_FALSE(report.mutual.has_mutual_recursion);
}

TEST(StratificationTest, NegationOutsideRecursionIsStratified) {
  AnalysisReport report = Analyze(Parse(R"(
.decl edge(x: number, y: number)
.input edge
.decl node(x: number)
.input node
.decl reach(x: number)
.decl unreach(x: number)
.output unreach
reach(1).
reach(y) :- reach(x), edge(x, y).
unreach(x) :- node(x), !reach(x).
)"));
  EXPECT_TRUE(report.stratification.stratified);
  // reach computes in stratum 0; unreach sits above the negation boundary.
  EXPECT_EQ(report.stratification.strata.at("reach"), 0);
  EXPECT_EQ(report.stratification.strata.at("unreach"), 1);
}

TEST(StratificationTest, NegationInRecursionRejected) {
  AnalysisReport report = Analyze(Parse(R"(
.decl a(x: number)
.input a
.decl p(x: number)
p(x) :- a(x), !p(x).
)"));
  EXPECT_FALSE(report.stratification.stratified);
  EXPECT_NE(report.stratification.violation.find("negation"),
            std::string::npos);
}

TEST(StratificationTest, AggregationInRecursionRejected) {
  AnalysisReport report = Analyze(Parse(R"(
.decl edge(x: number, y: number)
.input edge
.decl p(x: number, c: number)
p(x, count(y)) :- p(y, _), edge(x, y).
)"));
  EXPECT_FALSE(report.stratification.stratified);
}

TEST(StratificationTest, AggregationBoundaryRaisesStratum) {
  AnalysisReport report = Analyze(Parse(R"(
.decl edge(x: number, y: number)
.input edge
.decl deg(x: number, d: number)
.decl busy(x: number)
.output busy
deg(x, count(y)) :- edge(x, y).
busy(x) :- deg(x, d), d > 3.
)"));
  ASSERT_TRUE(report.stratification.stratified);
  EXPECT_EQ(report.stratification.strata.at("deg"), 1);
  EXPECT_EQ(report.stratification.strata.at("busy"), 1);
}

TEST(MonotonicityTest, PositiveProgramIsMonotone) {
  AnalysisReport report = Analyze(Parse(kLinearTc));
  EXPECT_TRUE(report.monotonicity.monotone);
  EXPECT_FALSE(report.monotonicity.uses_lattice);
}

TEST(MonotonicityTest, NegationBreaksMonotonicity) {
  AnalysisReport report = Analyze(Parse(R"(
.decl a(x: number)
.input a
.decl b(x: number)
.input b
.decl c(x: number)
c(x) :- a(x), !b(x).
)"));
  EXPECT_FALSE(report.monotonicity.monotone);
  ASSERT_EQ(report.monotonicity.reasons.size(), 1u);
}

TEST(MonotonicityTest, LatticeReported) {
  AnalysisReport report = Analyze(Parse(R"(
.decl edge(x: number, y: number)
.input edge
.decl dist(x: number, y: number, d: number) @min
dist(x, y, 1) :- edge(x, y).
dist(x, y, d + 1) :- dist(x, z, d), edge(z, y).
)"));
  EXPECT_TRUE(report.monotonicity.monotone);  // no negation/agg rules
  EXPECT_TRUE(report.monotonicity.uses_lattice);
}

TEST(TerminationTest, ValueInventionWithoutBoundWarns) {
  AnalysisReport report = Analyze(Parse(R"(
.decl seed(x: number)
.input seed
.decl counter(x: number)
counter(x) :- seed(x).
counter(x + 1) :- counter(x).
)"));
  EXPECT_TRUE(report.termination.may_diverge);
  ASSERT_EQ(report.termination.warnings.size(), 1u);
}

TEST(TerminationTest, LatticeSuppressesWarning) {
  AnalysisReport report = Analyze(Parse(R"(
.decl edge(x: number, y: number)
.input edge
.decl dist(x: number, y: number, d: number) @min
dist(x, y, 1) :- edge(x, y).
dist(x, y, d + 1) :- dist(x, z, d), edge(z, y).
)"));
  EXPECT_FALSE(report.termination.may_diverge);
}

TEST(TerminationTest, BoundConstraintSuppressesWarning) {
  AnalysisReport report = Analyze(Parse(R"(
.decl seed(x: number)
.input seed
.decl counter(x: number)
counter(x) :- seed(x).
counter(y) :- counter(x), y = x + 1, y < 100.
)"));
  EXPECT_FALSE(report.termination.may_diverge);
}

TEST(TerminationTest, PlainTcDoesNotWarn) {
  AnalysisReport report = Analyze(Parse(kLinearTc));
  EXPECT_FALSE(report.termination.may_diverge);
}

TEST(BackendSupportTest, DatalogAcceptsEverythingStratified) {
  auto program = Parse(kNonLinearTc);
  AnalysisReport report = Analyze(program);
  EXPECT_TRUE(CheckBackendSupport(program, report, Backend::kDatalog).ok());
}

TEST(BackendSupportTest, SqlRejectsMutualRecursion) {
  auto program = Parse(kMutual);
  AnalysisReport report = Analyze(program);
  Status st = CheckBackendSupport(program, report, Backend::kSql);
  EXPECT_EQ(st.code(), StatusCode::kUnsupported);
  EXPECT_NE(st.message().find("mutual"), std::string::npos);
}

TEST(BackendSupportTest, SqlRejectsNonLinearRecursion) {
  auto program = Parse(kNonLinearTc);
  AnalysisReport report = Analyze(program);
  Status st = CheckBackendSupport(program, report, Backend::kSql);
  EXPECT_EQ(st.code(), StatusCode::kUnsupported);
  EXPECT_NE(st.message().find("linear"), std::string::npos);
}

TEST(BackendSupportTest, SqlRejectsLattice) {
  auto program = Parse(R"(
.decl edge(x: number, y: number)
.input edge
.decl dist(x: number, y: number, d: number) @min
.output dist
dist(x, y, 1) :- edge(x, y).
dist(x, y, d + 1) :- dist(x, z, d), edge(z, y).
)");
  AnalysisReport report = Analyze(program);
  EXPECT_EQ(CheckBackendSupport(program, report, Backend::kSql).code(),
            StatusCode::kUnsupported);
}

TEST(BackendSupportTest, SqlAcceptsLinearTc) {
  auto program = Parse(kLinearTc);
  AnalysisReport report = Analyze(program);
  EXPECT_TRUE(CheckBackendSupport(program, report, Backend::kSql).ok());
}

TEST(AnalysisReportTest, ToStringMentionsEveryAnalysis) {
  AnalysisReport report = Analyze(Parse(kNonLinearTc));
  std::string text = report.ToString();
  EXPECT_NE(text.find("linearity"), std::string::npos);
  EXPECT_NE(text.find("mutual recursion"), std::string::npos);
  EXPECT_NE(text.find("stratified"), std::string::npos);
  EXPECT_NE(text.find("monotone"), std::string::npos);
  EXPECT_NE(text.find("termination"), std::string::npos);
}

}  // namespace
}  // namespace raqlet::analysis
