// Tests for the property-graph store and the PGIR traversal engine.

#include <gtest/gtest.h>

#include "cypher/parser.h"
#include "engine/graph/executor.h"
#include "engine/graph/graph_store.h"
#include "pgir/pgir.h"
#include "schema/dl_schema.h"
#include "schema/pg_schema.h"

namespace raqlet::engine {
namespace {

constexpr char kSchema[] = R"(
CREATE GRAPH {
  (personType: Person {id INT, firstName STRING}),
  (cityType: City {id INT, name STRING}),
  (:personType)-[locationType: isLocatedIn {id INT}]->(:cityType),
  (:personType)-[knowsType: knows {id INT, since INT}]->(:personType)
}
)";

struct Fixture {
  schema::DlSchema dl;
  Database db;

  Fixture() {
    auto pg = schema::ParsePgSchema(kSchema);
    EXPECT_TRUE(pg.ok());
    dl = schema::TranslateSchema(*pg);
    EXPECT_TRUE(schema::CreateEdbRelations(dl, &db).ok());
    Relation* person = *db.GetRelation("Person");
    person->Insert({Value::Number(1), db.Str("Ada")});
    person->Insert({Value::Number(2), db.Str("Bob")});
    person->Insert({Value::Number(3), db.Str("Cyd")});
    person->Insert({Value::Number(4), db.Str("Dan")});
    Relation* city = *db.GetRelation("City");
    city->Insert({Value::Number(100), db.Str("Edinburgh")});
    Relation* located = *db.GetRelation("Person_IS_LOCATED_IN_City");
    located->Insert({Value::Number(1), Value::Number(100), Value::Number(50)});
    Relation* knows = *db.GetRelation("Person_KNOWS_Person");
    // Chain 1 -> 2 -> 3 -> 4 plus shortcut 1 -> 3.
    knows->Insert({Value::Number(1), Value::Number(2), Value::Number(60),
                   Value::Number(2010)});
    knows->Insert({Value::Number(2), Value::Number(3), Value::Number(61),
                   Value::Number(2012)});
    knows->Insert({Value::Number(3), Value::Number(4), Value::Number(62),
                   Value::Number(2014)});
    knows->Insert({Value::Number(1), Value::Number(3), Value::Number(63),
                   Value::Number(2016)});
  }
};

pgir::PgirQuery Lower(const std::string& text) {
  auto ast = cypher::ParseQuery(text);
  EXPECT_TRUE(ast.ok()) << ast.status().ToString();
  auto pgir = pgir::LowerCypher(*ast);
  EXPECT_TRUE(pgir.ok()) << pgir.status().ToString();
  return std::move(pgir).value();
}

TEST(GraphStoreTest, BuildsAdjacency) {
  Fixture f;
  auto store = GraphStore::Build(f.dl, f.db);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  EXPECT_EQ(store->NodeCount(), 5u);  // 4 persons + 1 city
  EXPECT_EQ(store->EdgeCount(), 5u);
  EXPECT_EQ(store->OutNeighbors("KNOWS", 1).size(), 2u);
  EXPECT_EQ(store->InNeighbors("KNOWS", 3).size(), 2u);
  EXPECT_TRUE(store->OutNeighbors("KNOWS", 4).empty());
  EXPECT_TRUE(store->HasLabel("Person", 2));
  EXPECT_FALSE(store->HasLabel("City", 2));
}

TEST(GraphStoreTest, PropertyLookup) {
  Fixture f;
  auto store = GraphStore::Build(f.dl, f.db);
  ASSERT_TRUE(store.ok());
  auto name = store->NodeProperty("Person", 1, "firstName");
  ASSERT_TRUE(name.ok());
  EXPECT_EQ(*name, f.db.Str("Ada"));
  EXPECT_FALSE(store->NodeProperty("Person", 99, "firstName").ok());
  EXPECT_FALSE(store->NodeProperty("Person", 1, "ghost").ok());
  auto since = store->EdgeProperty("KNOWS", 0, "since");
  ASSERT_TRUE(since.ok());
  EXPECT_EQ(since->AsNumber(), 2010);
}

class GraphEngineTest : public ::testing::Test {
 protected:
  GraphEngineTest() : store_(*GraphStore::Build(f_.dl, f_.db)) {}

  std::set<std::string> Run(const std::string& cypher) {
    GraphEngine eng(&store_, &f_.dl, &f_.db);
    auto result = eng.Run(Lower(cypher));
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    if (!result.ok()) return {};
    return result->ToStringSet(f_.db.symbols());
  }

  Fixture f_;
  GraphStore store_;
};

TEST_F(GraphEngineTest, PaperSq1) {
  EXPECT_EQ(Run("MATCH (n:Person {id: 1})-[:IS_LOCATED_IN]->(p:City) "
                "RETURN DISTINCT n.firstName AS firstName, p.id AS cityId"),
            (std::set<std::string>{"(\"Ada\", 100)"}));
}

TEST_F(GraphEngineTest, ExpandOutgoing) {
  EXPECT_EQ(Run("MATCH (a:Person {id: 1})-[:KNOWS]->(b:Person) "
                "RETURN DISTINCT b.id AS id"),
            (std::set<std::string>{"(2)", "(3)"}));
}

TEST_F(GraphEngineTest, ExpandIncoming) {
  EXPECT_EQ(Run("MATCH (a:Person)<-[:KNOWS]-(b:Person) WHERE a.id = 3 "
                "RETURN DISTINCT b.id AS id"),
            (std::set<std::string>{"(1)", "(2)"}));
}

TEST_F(GraphEngineTest, ExpandUndirected) {
  EXPECT_EQ(Run("MATCH (a:Person {id: 3})-[:KNOWS]-(b:Person) "
                "RETURN DISTINCT b.id AS id"),
            (std::set<std::string>{"(1)", "(2)", "(4)"}));
}

TEST_F(GraphEngineTest, EdgePropertyAccess) {
  EXPECT_EQ(Run("MATCH (a:Person)-[k:KNOWS]->(b:Person) WHERE k.since > 2011 "
                "RETURN DISTINCT b.id AS id"),
            (std::set<std::string>{"(3)", "(4)"}));
}

TEST_F(GraphEngineTest, VariableLengthBounded) {
  EXPECT_EQ(Run("MATCH (a:Person {id: 1})-[:KNOWS*2..3]->(b:Person) "
                "RETURN DISTINCT b.id AS id"),
            (std::set<std::string>{"(3)", "(4)"}));
}

TEST_F(GraphEngineTest, VariableLengthUnbounded) {
  EXPECT_EQ(Run("MATCH (a:Person {id: 2})-[:KNOWS*]->(b:Person) "
                "RETURN DISTINCT b.id AS id"),
            (std::set<std::string>{"(3)", "(4)"}));
}

TEST_F(GraphEngineTest, ShortestPathLength) {
  EXPECT_EQ(Run("MATCH p = shortestPath((a:Person {id: 1})-[:KNOWS*]->("
                "b:Person {id: 4})) RETURN DISTINCT length(p) AS len"),
            (std::set<std::string>{"(2)"}));  // 1 -> 3 -> 4
}

TEST_F(GraphEngineTest, WhereWithBooleans) {
  EXPECT_EQ(Run("MATCH (a:Person) WHERE a.id > 1 AND NOT a.firstName = "
                "\"Cyd\" RETURN DISTINCT a.id AS id"),
            (std::set<std::string>{"(2)", "(4)"}));
}

TEST_F(GraphEngineTest, WithAggregation) {
  EXPECT_EQ(Run("MATCH (a:Person)-[:KNOWS]->(b:Person) "
                "WITH a, count(b) AS friends "
                "RETURN DISTINCT a.id AS id, friends"),
            (std::set<std::string>{"(1, 2)", "(2, 1)", "(3, 1)"}));
}

TEST_F(GraphEngineTest, MultiClauseChain) {
  EXPECT_EQ(Run("MATCH (a:Person {id: 1})-[:KNOWS]->(b:Person) "
                "MATCH (b)-[:KNOWS]->(c:Person) "
                "RETURN DISTINCT c.id AS id"),
            (std::set<std::string>{"(3)", "(4)"}));
}

TEST_F(GraphEngineTest, LoneNodeScan) {
  EXPECT_EQ(Run("MATCH (a:Person) RETURN DISTINCT a.id AS id"),
            (std::set<std::string>{"(1)", "(2)", "(3)", "(4)"}));
}

TEST_F(GraphEngineTest, UnknownEdgeTypeFails) {
  GraphEngine eng(&store_, &f_.dl, &f_.db);
  auto result = eng.Run(Lower("MATCH (a:Person)-[:GHOST]->(b:Person) "
                              "RETURN DISTINCT a.id AS id"));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace raqlet::engine
