// Tests for the semi-naive Datalog engine: recursion (linear, non-linear,
// mutual), negation, aggregation, constraints, lattice relations, and
// failure modes. Includes a naive-vs-seminaive differential property test.

#include <gtest/gtest.h>

#include <random>

#include "dlir/parser.h"
#include "engine/datalog/engine.h"
#include "storage/database.h"

namespace raqlet {
namespace {

using engine::DatalogEngine;
using engine::EvalOptions;
using engine::EvalStats;

Database MakeGraphDb(const std::vector<std::pair<int, int>>& edges) {
  Database db;
  RelationSchema s;
  s.name = "edge";
  s.columns = {{"x", ValueType::kNumber}, {"y", ValueType::kNumber}};
  Relation* rel = *db.CreateRelation(s);
  for (auto [x, y] : edges) {
    rel->Insert({Value::Number(x), Value::Number(y)});
  }
  return db;
}

dlir::Program Parse(const std::string& text) {
  auto program = dlir::ParseProgram(text);
  EXPECT_TRUE(program.ok()) << program.status().ToString();
  return std::move(program).value();
}

std::set<std::vector<int64_t>> NumericRows(const Relation& rel) {
  std::set<std::vector<int64_t>> out;
  for (const Tuple& row : rel.rows()) {
    std::vector<int64_t> ints;
    for (const Value& v : row) ints.push_back(v.AsNumber());
    out.insert(std::move(ints));
  }
  return out;
}

constexpr char kTc[] = R"(
.decl edge(x: number, y: number)
.input edge
.decl tc(x: number, y: number)
.output tc
tc(x, y) :- edge(x, y).
tc(x, y) :- tc(x, z), edge(z, y).
)";

TEST(DatalogEngineTest, TransitiveClosureOnChain) {
  Database db = MakeGraphDb({{1, 2}, {2, 3}, {3, 4}});
  DatalogEngine eng;
  EvalStats stats;
  ASSERT_TRUE(eng.Run(Parse(kTc), &db, &stats).ok());
  const Relation* tc = *db.GetRelation("tc");
  EXPECT_EQ(tc->size(), 6u);  // all i<j pairs
  EXPECT_TRUE(tc->Contains({Value::Number(1), Value::Number(4)}));
  EXPECT_GE(stats.fixpoint_rounds, 3u);
}

TEST(DatalogEngineTest, TransitiveClosureOnCycleTerminates) {
  Database db = MakeGraphDb({{1, 2}, {2, 3}, {3, 1}});
  DatalogEngine eng;
  ASSERT_TRUE(eng.Run(Parse(kTc), &db).ok());
  EXPECT_EQ((*db.GetRelation("tc"))->size(), 9u);  // complete on the cycle
}

TEST(DatalogEngineTest, NonLinearTcMatchesLinear) {
  constexpr char kNonLinear[] = R"(
.decl edge(x: number, y: number)
.input edge
.decl tc(x: number, y: number)
.output tc
tc(x, y) :- edge(x, y).
tc(x, y) :- tc(x, z), tc(z, y).
)";
  Database db1 = MakeGraphDb({{1, 2}, {2, 3}, {3, 4}, {4, 2}});
  Database db2 = MakeGraphDb({{1, 2}, {2, 3}, {3, 4}, {4, 2}});
  DatalogEngine eng;
  ASSERT_TRUE(eng.Run(Parse(kTc), &db1).ok());
  ASSERT_TRUE(eng.Run(Parse(kNonLinear), &db2).ok());
  EXPECT_EQ(NumericRows(**db1.GetRelation("tc")),
            NumericRows(**db2.GetRelation("tc")));
}

TEST(DatalogEngineTest, MutualRecursionEvenOdd) {
  constexpr char kEvenOdd[] = R"(
.decl succ(x: number, y: number)
.input succ
.decl even(x: number)
.decl odd(x: number)
.output even
.output odd
even(0).
odd(y) :- even(x), succ(x, y).
even(y) :- odd(x), succ(x, y).
)";
  Database db;
  RelationSchema s;
  s.name = "succ";
  s.columns = {{"x", ValueType::kNumber}, {"y", ValueType::kNumber}};
  Relation* succ = *db.CreateRelation(s);
  for (int i = 0; i < 10; ++i) {
    succ->Insert({Value::Number(i), Value::Number(i + 1)});
  }
  DatalogEngine eng;
  ASSERT_TRUE(eng.Run(Parse(kEvenOdd), &db).ok());
  auto evens = NumericRows(**db.GetRelation("even"));
  auto odds = NumericRows(**db.GetRelation("odd"));
  EXPECT_EQ(evens.size(), 6u);  // 0,2,4,6,8,10
  EXPECT_EQ(odds.size(), 5u);   // 1,3,5,7,9
  EXPECT_TRUE(evens.count({10}));
  EXPECT_TRUE(odds.count({9}));
}

TEST(DatalogEngineTest, StratifiedNegation) {
  constexpr char kUnreachable[] = R"(
.decl edge(x: number, y: number)
.input edge
.decl node(x: number)
.input node
.decl reach(x: number)
.decl unreach(x: number)
.output unreach
reach(1).
reach(y) :- reach(x), edge(x, y).
unreach(x) :- node(x), !reach(x).
)";
  Database db = MakeGraphDb({{1, 2}, {2, 3}, {4, 5}});
  RelationSchema s;
  s.name = "node";
  s.columns = {{"x", ValueType::kNumber}};
  Relation* node = *db.CreateRelation(s);
  for (int i = 1; i <= 5; ++i) node->Insert({Value::Number(i)});
  DatalogEngine eng;
  ASSERT_TRUE(eng.Run(Parse(kUnreachable), &db).ok());
  EXPECT_EQ(NumericRows(**db.GetRelation("unreach")),
            (std::set<std::vector<int64_t>>{{4}, {5}}));
}

TEST(DatalogEngineTest, RejectsUnstratifiableNegation) {
  constexpr char kParadox[] = R"(
.decl a(x: number)
.input a
.decl p(x: number)
p(x) :- a(x), !p(x).
)";
  Database db;
  RelationSchema s;
  s.name = "a";
  s.columns = {{"x", ValueType::kNumber}};
  (void)*db.CreateRelation(s);
  DatalogEngine eng;
  Status st = eng.Run(Parse(kParadox), &db);
  EXPECT_EQ(st.code(), StatusCode::kUnsupported);
  EXPECT_NE(st.message().find("stratifiable"), std::string::npos);
}

TEST(DatalogEngineTest, CountAggregate) {
  constexpr char kDegree[] = R"(
.decl edge(x: number, y: number)
.input edge
.decl outdeg(x: number, d: number)
.output outdeg
outdeg(x, count(y)) :- edge(x, y).
)";
  Database db = MakeGraphDb({{1, 2}, {1, 3}, {1, 3}, {2, 3}});
  DatalogEngine eng;
  ASSERT_TRUE(eng.Run(Parse(kDegree), &db).ok());
  EXPECT_EQ(NumericRows(**db.GetRelation("outdeg")),
            (std::set<std::vector<int64_t>>{{1, 2}, {2, 1}}));
}

TEST(DatalogEngineTest, SumMinMaxAggregates) {
  constexpr char kAggs[] = R"(
.decl sale(region: number, amount: number)
.input sale
.decl total(region: number, t: number)
.decl lo(region: number, m: number)
.decl hi(region: number, m: number)
.output total
.output lo
.output hi
total(r, sum(a)) :- sale(r, a).
lo(r, min(a)) :- sale(r, a).
hi(r, max(a)) :- sale(r, a).
)";
  Database db;
  RelationSchema s;
  s.name = "sale";
  s.columns = {{"region", ValueType::kNumber}, {"amount", ValueType::kNumber}};
  Relation* sale = *db.CreateRelation(s);
  sale->Insert({Value::Number(1), Value::Number(10)});
  sale->Insert({Value::Number(1), Value::Number(30)});
  sale->Insert({Value::Number(2), Value::Number(5)});
  DatalogEngine eng;
  ASSERT_TRUE(eng.Run(Parse(kAggs), &db).ok());
  EXPECT_EQ(NumericRows(**db.GetRelation("total")),
            (std::set<std::vector<int64_t>>{{1, 40}, {2, 5}}));
  EXPECT_EQ(NumericRows(**db.GetRelation("lo")),
            (std::set<std::vector<int64_t>>{{1, 10}, {2, 5}}));
  EXPECT_EQ(NumericRows(**db.GetRelation("hi")),
            (std::set<std::vector<int64_t>>{{1, 30}, {2, 5}}));
}

TEST(DatalogEngineTest, RejectsAggregateInRecursion) {
  constexpr char kBad[] = R"(
.decl edge(x: number, y: number)
.input edge
.decl p(x: number, c: number)
p(x, count(y)) :- p(y, _), edge(x, y).
)";
  Database db = MakeGraphDb({{1, 2}});
  DatalogEngine eng;
  EXPECT_EQ(eng.Run(Parse(kBad), &db).code(), StatusCode::kUnsupported);
}

TEST(DatalogEngineTest, LatticeShortestPathOnCyclicGraph) {
  // Plain Datalog distance recursion would diverge on the cycle; the @min
  // lattice keeps only the best distance per (x, y) and terminates.
  constexpr char kSp[] = R"(
.decl edge(x: number, y: number)
.input edge
.decl dist(x: number, y: number, d: number) @min
.output dist
dist(x, y, 1) :- edge(x, y).
dist(x, y, d + 1) :- dist(x, z, d), edge(z, y).
)";
  Database db = MakeGraphDb({{1, 2}, {2, 3}, {3, 1}, {1, 3}});
  DatalogEngine eng;
  Status st = eng.Run(Parse(kSp), &db);
  ASSERT_TRUE(st.ok()) << st.ToString();
  auto rows = NumericRows(**db.GetRelation("dist"));
  EXPECT_TRUE(rows.count({1, 3, 1}));  // direct edge beats 1->2->3
  EXPECT_TRUE(rows.count({1, 1, 2}));  // 1->3->1 beats 1->2->3->1
  EXPECT_TRUE(rows.count({3, 2, 2}));  // 3->1->2
  // Exactly one distance per reachable pair.
  std::set<std::pair<int64_t, int64_t>> pairs;
  for (const auto& row : rows) pairs.emplace(row[0], row[1]);
  EXPECT_EQ(pairs.size(), rows.size());
}

TEST(DatalogEngineTest, ConstraintsFilterAndBind) {
  constexpr char kFilter[] = R"(
.decl edge(x: number, y: number)
.input edge
.decl out(x: number, y: number, s: number)
.output out
out(x, y, s) :- edge(x, y), x < y, s = x + y, s >= 5.
)";
  Database db = MakeGraphDb({{1, 2}, {2, 5}, {5, 2}, {4, 4}});
  DatalogEngine eng;
  ASSERT_TRUE(eng.Run(Parse(kFilter), &db).ok());
  EXPECT_EQ(NumericRows(**db.GetRelation("out")),
            (std::set<std::vector<int64_t>>{{2, 5, 7}}));
}

TEST(DatalogEngineTest, FactsAndStringConstants) {
  constexpr char kFacts[] = R"(
.decl color(name: symbol, code: number)
.output color
color("red", 1).
color("green", 2).
)";
  Database db;
  DatalogEngine eng;
  ASSERT_TRUE(eng.Run(Parse(kFacts), &db).ok());
  const Relation* color = *db.GetRelation("color");
  EXPECT_EQ(color->size(), 2u);
  EXPECT_TRUE(color->Contains({db.Str("red"), Value::Number(1)}));
}

TEST(DatalogEngineTest, SameGeneration) {
  constexpr char kSg[] = R"(
.decl parent(x: number, y: number)
.input parent
.decl sg(x: number, y: number)
.output sg
sg(x, x) :- parent(x, _).
sg(x, x) :- parent(_, x).
sg(x, y) :- parent(xp, x), sg(xp, yp), parent(yp, y).
)";
  // Two families: 1->{2,3}, 2->{4}, 3->{5}. 4 and 5 are same generation.
  Database db;
  RelationSchema s;
  s.name = "parent";
  s.columns = {{"x", ValueType::kNumber}, {"y", ValueType::kNumber}};
  Relation* parent = *db.CreateRelation(s);
  for (auto [a, b] :
       std::vector<std::pair<int, int>>{{1, 2}, {1, 3}, {2, 4}, {3, 5}}) {
    parent->Insert({Value::Number(a), Value::Number(b)});
  }
  DatalogEngine eng;
  ASSERT_TRUE(eng.Run(Parse(kSg), &db).ok());
  auto rows = NumericRows(**db.GetRelation("sg"));
  EXPECT_TRUE(rows.count({4, 5}));
  EXPECT_TRUE(rows.count({2, 3}));
  EXPECT_FALSE(rows.count({2, 4}));
}

TEST(DatalogEngineTest, MissingInputRelationFails) {
  Database db;
  DatalogEngine eng;
  EXPECT_EQ(eng.Run(Parse(kTc), &db).code(), StatusCode::kNotFound);
}

TEST(DatalogEngineTest, MaxIterationsGuard) {
  // Unbounded value invention: counter(x+1) :- counter(x). Never converges;
  // the guard must stop it.
  constexpr char kDiverge[] = R"(
.decl seed(x: number)
.input seed
.decl counter(x: number)
.output counter
counter(x) :- seed(x).
counter(x + 1) :- counter(x).
)";
  Database db;
  RelationSchema s;
  s.name = "seed";
  s.columns = {{"x", ValueType::kNumber}};
  Relation* seed = *db.CreateRelation(s);
  seed->Insert({Value::Number(0)});
  EvalOptions options;
  options.max_iterations = 50;
  DatalogEngine eng(options);
  Status st = eng.Run(Parse(kDiverge), &db);
  EXPECT_EQ(st.code(), StatusCode::kUnsupported);
}

TEST(DatalogEngineTest, OverwriteIdbOnRerun) {
  Database db = MakeGraphDb({{1, 2}});
  DatalogEngine eng;
  ASSERT_TRUE(eng.Run(Parse(kTc), &db).ok());
  EXPECT_EQ((*db.GetRelation("tc"))->size(), 1u);
  // Add an edge and re-run; stale results must be cleared.
  (*db.GetRelation("edge"))->Insert({Value::Number(2), Value::Number(3)});
  ASSERT_TRUE(eng.Run(Parse(kTc), &db).ok());
  EXPECT_EQ((*db.GetRelation("tc"))->size(), 3u);
}

// Reusing an IDB name across programs with a *different arity* (the
// Cypher lowering does this: every query names its frontier relations
// Match1, Match2, ... on the shared database) must adopt the new
// program's declaration. A bare Clear() would keep the old schema, and
// the column-borrowing join path — which trusts arity() — would read
// past the borrowed views.
TEST(DatalogEngineTest, OverwriteIdbAdoptsNewArity) {
  Database db = MakeGraphDb({{1, 2}, {2, 3}});
  DatalogEngine eng;
  // First program: "mid" is 2-ary.
  ASSERT_TRUE(eng.Run(Parse(R"(
.decl edge(x: number, y: number)
.input edge
.decl mid(x: number, y: number)
.output mid
mid(x, y) :- edge(x, y).
)"),
                      &db)
                  .ok());
  EXPECT_EQ((*db.GetRelation("mid"))->arity(), 2u);
  // Second program: same name, now 3-ary, and joined by another rule so
  // the engine borrows all three columns.
  ASSERT_TRUE(eng.Run(Parse(R"(
.decl edge(x: number, y: number)
.input edge
.decl mid(x: number, y: number, tag: number)
.decl hop(x: number, z: number)
.output hop
mid(x, y, 7) :- edge(x, y).
hop(x, z) :- mid(x, y, 7), edge(y, z).
)"),
                      &db)
                  .ok());
  EXPECT_EQ((*db.GetRelation("mid"))->arity(), 3u);
  EXPECT_EQ(NumericRows(**db.GetRelation("hop")),
            (std::set<std::vector<int64_t>>{{1, 3}}));
  // And back down: 3-ary -> 2-ary reuse must shed the extra column.
  ASSERT_TRUE(eng.Run(Parse(R"(
.decl edge(x: number, y: number)
.input edge
.decl mid(x: number, y: number)
.decl hop2(x: number, z: number)
.output hop2
mid(x, y) :- edge(x, y).
hop2(x, z) :- mid(x, y), edge(y, z).
)"),
                      &db)
                  .ok());
  EXPECT_EQ((*db.GetRelation("mid"))->arity(), 2u);
  EXPECT_EQ(NumericRows(**db.GetRelation("hop2")),
            (std::set<std::vector<int64_t>>{{1, 3}}));
}

// Property test: naive and semi-naive evaluation agree on random graphs.
class NaiveVsSeminaiveTest : public ::testing::TestWithParam<int> {};

TEST_P(NaiveVsSeminaiveTest, AgreeOnRandomGraphs) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()));
  std::uniform_int_distribution<int> node(1, 12);
  std::vector<std::pair<int, int>> edges;
  for (int i = 0; i < 25; ++i) edges.emplace_back(node(rng), node(rng));

  Database db1 = MakeGraphDb(edges);
  Database db2 = MakeGraphDb(edges);
  EvalOptions naive;
  naive.seminaive = false;
  DatalogEngine eng_naive(naive);
  DatalogEngine eng_semi;
  ASSERT_TRUE(eng_naive.Run(Parse(kTc), &db1).ok());
  ASSERT_TRUE(eng_semi.Run(Parse(kTc), &db2).ok());
  EXPECT_EQ(NumericRows(**db1.GetRelation("tc")),
            NumericRows(**db2.GetRelation("tc")));
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, NaiveVsSeminaiveTest,
                         ::testing::Range(0, 10));

// Property test: join order must not affect results.
class JoinOrderTest : public ::testing::TestWithParam<int> {};

TEST_P(JoinOrderTest, ReorderingPreservesResults) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()) + 100);
  std::uniform_int_distribution<int> node(1, 10);
  std::vector<std::pair<int, int>> edges;
  for (int i = 0; i < 20; ++i) edges.emplace_back(node(rng), node(rng));

  constexpr char kTriangles[] = R"(
.decl edge(x: number, y: number)
.input edge
.decl tri(x: number, y: number, z: number)
.output tri
tri(x, y, z) :- edge(x, y), edge(y, z), edge(z, x).
)";
  Database db1 = MakeGraphDb(edges);
  Database db2 = MakeGraphDb(edges);
  EvalOptions ordered;
  ordered.reorder_atoms = false;
  DatalogEngine eng1(ordered);
  DatalogEngine eng2;
  ASSERT_TRUE(eng1.Run(Parse(kTriangles), &db1).ok());
  ASSERT_TRUE(eng2.Run(Parse(kTriangles), &db2).ok());
  EXPECT_EQ(NumericRows(**db1.GetRelation("tri")),
            NumericRows(**db2.GetRelation("tri")));
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, JoinOrderTest, ::testing::Range(0, 8));

}  // namespace
}  // namespace raqlet
