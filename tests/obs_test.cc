// Tests for the observability layer (src/obs): trace sessions and spans
// (Chrome trace-event export, concurrent emission, determinism
// neutrality) and the unified QueryMetrics populated by all three
// engines — exact counter values on known transitive-closure inputs.

#include <gtest/gtest.h>

#include <sstream>
#include <thread>
#include <vector>

#include "dlir/parser.h"
#include "engine/datalog/engine.h"
#include "engine/sql/executor.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "raqlet/compiler.h"
#include "sqir/dlir_to_sqir.h"
#include "storage/database.h"

namespace raqlet {
namespace {

using engine::DatalogEngine;
using engine::SqlEngine;

constexpr char kTc[] = R"(
.decl edge(x: number, y: number)
.input edge
.decl tc(x: number, y: number)
.output tc
tc(x, y) :- edge(x, y).
tc(x, y) :- tc(x, z), edge(z, y).
)";

Database MakeGraphDb(const std::vector<std::pair<int, int>>& edges) {
  Database db;
  RelationSchema s;
  s.name = "edge";
  s.columns = {{"x", ValueType::kNumber}, {"y", ValueType::kNumber}};
  Relation* rel = *db.CreateRelation(s);
  for (auto [x, y] : edges) {
    rel->Insert({Value::Number(x), Value::Number(y)});
  }
  return db;
}

dlir::Program Parse(const std::string& text) {
  auto program = dlir::ParseProgram(text);
  EXPECT_TRUE(program.ok()) << program.status().ToString();
  return std::move(program).value();
}

// ---------------------------------------------------------------------------
// Trace sessions and spans.

TEST(ObsTraceTest, ScopesRecordCompleteEvents) {
  obs::TraceSession session;
  {
    obs::TraceScope outer("outer");
    obs::TraceScope inner("inner");
  }
  { obs::TraceScope indexed("round", 7); }

  std::vector<obs::TraceEvent> events = session.Events();
  ASSERT_EQ(events.size(), 3u);
  ASSERT_EQ(session.event_count(), 3u);
  for (const obs::TraceEvent& e : events) {
    EXPECT_GE(e.ts_us, 0);
    EXPECT_GE(e.dur_us, 0);
  }
  // Events() sorts by start time.
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_LE(events[i - 1].ts_us, events[i].ts_us);
  }
  // Indexed scopes format "label index"; plain scopes keep the label.
  bool saw_outer = false, saw_inner = false, saw_round = false;
  for (const obs::TraceEvent& e : events) {
    saw_outer |= e.name == "outer";
    saw_inner |= e.name == "inner";
    saw_round |= e.name == "round 7";
  }
  EXPECT_TRUE(saw_outer);
  EXPECT_TRUE(saw_inner);
  EXPECT_TRUE(saw_round);
}

TEST(ObsTraceTest, NoSessionMeansNoRecordingAndNoCrash) {
  ASSERT_EQ(obs::TraceSession::Current(), nullptr);
  EXPECT_FALSE(obs::TraceScope::Enabled());
  { obs::TraceScope span("orphan"); }  // must be a no-op
  obs::TraceSession session;
  EXPECT_TRUE(obs::TraceScope::Enabled());
  { obs::TraceScope span("recorded"); }
  EXPECT_EQ(session.event_count(), 1u);
}

TEST(ObsTraceTest, ChromeTraceJsonShape) {
  obs::TraceSession session;
  Database db = MakeGraphDb({{1, 2}, {2, 3}, {3, 4}});
  DatalogEngine eng;
  ASSERT_TRUE(eng.Run(Parse(kTc), &db).ok());

  std::ostringstream os;
  session.WriteChromeTrace(os);
  const std::string json = os.str();

  // Envelope plus the required keys of a complete ("X") event.
  EXPECT_NE(json.find("{\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"raqlet\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":"), std::string::npos);
  EXPECT_NE(json.find("\"pid\":1"), std::string::npos);
  EXPECT_NE(json.find("\"tid\":"), std::string::npos);
  // Engine spans made it in: the run, each SCC, and fixpoint rounds.
  EXPECT_NE(json.find("\"name\":\"datalog.run\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"datalog.scc 1\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"datalog.round 1\""), std::string::npos);
}

TEST(ObsTraceTest, ConcurrentEmissionCountsEverySpan) {
  constexpr int kThreads = 8;
  constexpr int kSpansPerThread = 500;
  obs::TraceSession session;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([t]() {
      for (int i = 0; i < kSpansPerThread; ++i) {
        obs::TraceScope span("worker", t * kSpansPerThread + i);
      }
    });
  }
  for (std::thread& w : workers) w.join();

  EXPECT_EQ(session.event_count(),
            static_cast<size_t>(kThreads) * kSpansPerThread);
  // Thread ids are dense registration indexes; all events are complete.
  for (const obs::TraceEvent& e : session.Events()) {
    EXPECT_LT(e.tid, static_cast<uint32_t>(kThreads) + 1);
    EXPECT_GE(e.dur_us, 0);
  }
}

TEST(ObsTraceTest, TracingIsResultNeutral) {
  Database traced_db = MakeGraphDb({{1, 2}, {2, 3}, {3, 4}, {4, 2}});
  Database plain_db = MakeGraphDb({{1, 2}, {2, 3}, {3, 4}, {4, 2}});
  DatalogEngine eng;
  {
    obs::TraceSession session;
    ASSERT_TRUE(eng.Run(Parse(kTc), &traced_db).ok());
    EXPECT_GT(session.event_count(), 0u);
  }
  ASSERT_TRUE(eng.Run(Parse(kTc), &plain_db).ok());
  const Relation* traced = *traced_db.GetRelation("tc");
  const Relation* plain = *plain_db.GetRelation("tc");
  EXPECT_EQ(traced->MaterializeRows(), plain->MaterializeRows());
}

// ---------------------------------------------------------------------------
// Datalog engine metrics: exact fixpoint counters on a known chain.

TEST(ObsMetricsTest, DatalogTcChainExactCounters) {
  // Chain 1->2->3->4: tc = all 6 i<j pairs, semi-naive deltas 3,2,1,0.
  Database db = MakeGraphDb({{1, 2}, {2, 3}, {3, 4}});
  DatalogEngine eng;
  obs::DatalogMetrics metrics;
  ASSERT_TRUE(eng.Run(Parse(kTc), &db, nullptr, &metrics).ok());

  // One slot per SCC in topological order: edge (EDB), then tc.
  ASSERT_EQ(metrics.sccs.size(), 2u);
  const obs::SccMetrics& edge = metrics.sccs[0];
  EXPECT_EQ(edge.preds, std::vector<std::string>{"edge"});
  EXPECT_FALSE(edge.recursive);
  EXPECT_EQ(edge.tuples_inserted, 0u);

  const obs::SccMetrics& tc = metrics.sccs[1];
  EXPECT_EQ(tc.preds, std::vector<std::string>{"tc"});
  EXPECT_TRUE(tc.recursive);
  EXPECT_EQ(tc.rounds, 3u);
  EXPECT_EQ(tc.rule_evaluations, 4u);  // 1 exit + 1 delta variant x 3 rounds
  // Rows visited across all join levels: 3 (exit scan) + 5 + 3 + 1
  // (per-round delta scans plus their edge-probe matches).
  EXPECT_EQ(tc.tuples_considered, 12u);
  EXPECT_EQ(tc.tuples_inserted, 6u);
  EXPECT_EQ(tc.round_delta_sizes, (std::vector<size_t>{3, 2, 1, 0}));
  EXPECT_EQ(metrics.TotalInserted(), 6u);
}

TEST(ObsMetricsTest, DatalogCountersMatchAcrossThreadCounts) {
  auto run = [](int threads) {
    Database db = MakeGraphDb({{1, 2}, {2, 3}, {3, 4}, {4, 2}, {2, 5}});
    engine::EvalOptions options;
    options.num_threads = threads;
    DatalogEngine eng(options);
    obs::DatalogMetrics metrics;
    EXPECT_TRUE(eng.Run(Parse(kTc), &db, nullptr, &metrics).ok());
    return metrics;
  };
  obs::DatalogMetrics serial = run(1);
  obs::DatalogMetrics parallel = run(4);
  ASSERT_EQ(serial.sccs.size(), parallel.sccs.size());
  for (size_t i = 0; i < serial.sccs.size(); ++i) {
    EXPECT_EQ(serial.sccs[i].rounds, parallel.sccs[i].rounds);
    EXPECT_EQ(serial.sccs[i].rule_evaluations,
              parallel.sccs[i].rule_evaluations);
    EXPECT_EQ(serial.sccs[i].tuples_considered,
              parallel.sccs[i].tuples_considered);
    EXPECT_EQ(serial.sccs[i].tuples_inserted,
              parallel.sccs[i].tuples_inserted);
    EXPECT_EQ(serial.sccs[i].round_delta_sizes,
              parallel.sccs[i].round_delta_sizes);
  }
}

// ---------------------------------------------------------------------------
// SQL engine metrics: per-CTE dedup and operator counters.

TEST(ObsMetricsTest, SqlTcCycleDedupCounters) {
  // Cycle 1->2->3->1: tc is the complete 3x3 relation; the last fixpoint
  // round re-derives 3 known pairs, so dedup sees 12 offers, 9 admits.
  Database db = MakeGraphDb({{1, 2}, {2, 3}, {3, 1}});
  auto sqir = sqir::TranslateToSqir(Parse(kTc));
  ASSERT_TRUE(sqir.ok()) << sqir.status().ToString();

  SqlEngine eng;
  obs::SqlMetrics metrics;
  auto result = eng.Run(*sqir, &db, nullptr, &metrics);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->rows.size(), 9u);

  ASSERT_EQ(metrics.ctes.size(), 2u);
  const obs::SqlCteMetrics& tc = metrics.ctes[0];
  EXPECT_EQ(tc.name, "V1");  // SQIR's generated name for the tc CTE
  EXPECT_TRUE(tc.recursive);
  EXPECT_EQ(tc.rows, 9u);
  EXPECT_EQ(tc.iterations, 3u);
  EXPECT_EQ(tc.dedup_attempts, 12u);
  EXPECT_EQ(tc.dedup_inserted, 9u);
  EXPECT_DOUBLE_EQ(tc.DedupHitRate(), 0.25);

  // Operator counters keyed by scanned/probed relation.
  ASSERT_FALSE(tc.steps.empty());
  bool saw_edge = false;
  for (const obs::SqlStepMetrics& step : tc.steps) {
    if (step.relation == "edge") {
      saw_edge = true;
      EXPECT_GT(step.rows_in, 0u);
      EXPECT_GT(step.rows_out, 0u);
      // TC has no filters, so every join match survives.
      EXPECT_DOUBLE_EQ(step.Selectivity(), 1.0);
    }
  }
  EXPECT_TRUE(saw_edge);

  // The top-level select is the identity here; its entry still reports
  // the result cardinality.
  const obs::SqlCteMetrics& final_cm = metrics.ctes[1];
  EXPECT_EQ(final_cm.name, "__result__");
  EXPECT_EQ(final_cm.rows, 9u);
}

TEST(ObsMetricsTest, SqlCountersAgreeAcrossModesAndThreads) {
  auto run = [](engine::SqlMode mode, int threads) {
    Database db = MakeGraphDb({{1, 2}, {2, 3}, {3, 4}, {4, 2}, {2, 5}});
    auto sqir = sqir::TranslateToSqir(Parse(kTc));
    EXPECT_TRUE(sqir.ok());
    engine::SqlOptions options;
    options.mode = mode;
    options.num_threads = threads;
    SqlEngine eng(options);
    obs::SqlMetrics metrics;
    auto result = eng.Run(*sqir, &db, nullptr, &metrics);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return metrics;
  };
  obs::SqlMetrics serial = run(engine::SqlMode::kVectorized, 1);
  obs::SqlMetrics parallel = run(engine::SqlMode::kVectorized, 4);
  obs::SqlMetrics tuple = run(engine::SqlMode::kTuplePipeline, 1);

  ASSERT_EQ(serial.ctes.size(), parallel.ctes.size());
  ASSERT_EQ(serial.ctes.size(), tuple.ctes.size());
  for (size_t i = 0; i < serial.ctes.size(); ++i) {
    for (const obs::SqlCteMetrics* other :
         {&parallel.ctes[i], &tuple.ctes[i]}) {
      EXPECT_EQ(serial.ctes[i].name, other->name);
      EXPECT_EQ(serial.ctes[i].iterations, other->iterations);
      EXPECT_EQ(serial.ctes[i].rows, other->rows);
      EXPECT_EQ(serial.ctes[i].dedup_attempts, other->dedup_attempts);
      EXPECT_EQ(serial.ctes[i].dedup_inserted, other->dedup_inserted);
    }
    // Per-step row counters match too; `batches` is chunking-dependent
    // and excluded from the contract.
    ASSERT_EQ(serial.ctes[i].steps.size(), parallel.ctes[i].steps.size());
    for (size_t s = 0; s < serial.ctes[i].steps.size(); ++s) {
      EXPECT_EQ(serial.ctes[i].steps[s].relation,
                parallel.ctes[i].steps[s].relation);
      EXPECT_EQ(serial.ctes[i].steps[s].rows_in,
                parallel.ctes[i].steps[s].rows_in);
      EXPECT_EQ(serial.ctes[i].steps[s].probes,
                parallel.ctes[i].steps[s].probes);
      EXPECT_EQ(serial.ctes[i].steps[s].rows_matched,
                parallel.ctes[i].steps[s].rows_matched);
      EXPECT_EQ(serial.ctes[i].steps[s].rows_out,
                parallel.ctes[i].steps[s].rows_out);
    }
  }
}

// ---------------------------------------------------------------------------
// Graph engine metrics: closure cache and per-clause binding sizes.

constexpr char kGraphSchema[] = R"(
CREATE GRAPH {
  (personType: Person {id INT}),
  (:personType)-[knowsType: knows {id INT}]->(:personType)
}
)";

TEST(ObsMetricsTest, GraphClosureCacheAndClauseCounters) {
  Compiler compiler;
  ASSERT_TRUE(compiler.LoadPgSchema(kGraphSchema).ok());
  Database db;
  ASSERT_TRUE(compiler.CreateEdbs(&db).ok());
  Relation* person = *db.GetRelation("Person");
  for (int i = 1; i <= 3; ++i) person->Insert({Value::Number(i)});
  Relation* knows = *db.GetRelation("Person_KNOWS_Person");
  knows->Insert({Value::Number(1), Value::Number(2), Value::Number(1)});
  knows->Insert({Value::Number(2), Value::Number(3), Value::Number(2)});
  knows->Insert({Value::Number(3), Value::Number(1), Value::Number(3)});

  auto unit = compiler.CompileCypher(
      "MATCH (a:Person)-[:KNOWS*]->(b:Person) "
      "RETURN DISTINCT a.id AS src, b.id AS dst",
      {});
  ASSERT_TRUE(unit.ok()) << unit.status().ToString();
  auto store = compiler.BuildGraphStore(db);
  ASSERT_TRUE(store.ok());

  engine::GraphEngine eng(&*store, &compiler.dl_schema(), &db, {});
  engine::GraphStats stats;
  obs::GraphMetrics metrics;
  auto result = eng.Run(unit->pgir, &stats, &metrics);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->rows.size(), 9u);  // 3-cycle: all pairs reachable

  // One closure expansion per distinct start node; the always-on stats
  // mirror the metrics counters exactly.
  EXPECT_EQ(metrics.closure_cache_misses, 3u);
  EXPECT_EQ(stats.closure_cache_misses, metrics.closure_cache_misses);
  EXPECT_EQ(stats.closure_cache_hits, metrics.closure_cache_hits);
  EXPECT_GE(metrics.frontier_peak, 1u);

  // Clause trail: the MATCH materializes 9 bindings, RETURN keeps them.
  ASSERT_EQ(metrics.clauses.size(), 2u);
  EXPECT_EQ(metrics.clauses[0].kind, "match");
  EXPECT_EQ(metrics.clauses[0].rows_after, 9u);
  EXPECT_EQ(metrics.clauses[1].kind, "return");
  EXPECT_EQ(metrics.clauses[1].rows_after, 9u);
}

// ---------------------------------------------------------------------------
// Memory breakdown, report rendering, phase timers.

TEST(ObsMetricsTest, MemoryBreakdownAndReport) {
  Database db = MakeGraphDb({{1, 2}, {2, 3}});
  DatalogEngine eng;
  obs::QueryMetrics metrics;
  ASSERT_TRUE(eng.Run(Parse(kTc), &db, nullptr, &metrics.datalog).ok());
  obs::CollectMemoryBreakdown(db, &metrics);

  ASSERT_EQ(metrics.memory.size(), 2u);  // edge + tc, creation order
  EXPECT_EQ(metrics.memory[0].name, "edge");
  EXPECT_EQ(metrics.memory[0].rows, 2u);
  EXPECT_EQ(metrics.memory[1].name, "tc");
  EXPECT_EQ(metrics.memory[1].rows, 3u);
  EXPECT_GT(metrics.TotalMemoryBytes(), 0u);

  metrics.AddPhase("execute-datalog", 123);
  std::string report = metrics.ToString();
  EXPECT_NE(report.find("edge"), std::string::npos);
  EXPECT_NE(report.find("tc"), std::string::npos);
  EXPECT_NE(report.find("execute-datalog"), std::string::npos);
}

TEST(ObsMetricsTest, PhaseTimerIsNullSafe) {
  { obs::PhaseTimer timer(nullptr, "noop"); }  // must not crash
  obs::QueryMetrics metrics;
  { obs::PhaseTimer timer(&metrics, "timed"); }
  ASSERT_EQ(metrics.phases.size(), 1u);
  EXPECT_EQ(metrics.phases[0].name, "timed");
  EXPECT_GE(metrics.phases[0].micros, 0);
}

}  // namespace
}  // namespace raqlet
