// Tests for the LDBC SNB-like substrate: deterministic generation, and
// Table-1 queries agreeing across all engines and optimization levels.

#include <gtest/gtest.h>

#include "ldbc/ldbc.h"
#include "raqlet/compiler.h"

namespace raqlet::ldbc {
namespace {

struct Workload {
  Compiler compiler;
  Database db;
  GeneratorOptions options;

  explicit Workload(double sf = 0.1, unsigned seed = 42) {
    options.scale_factor = sf;
    options.seed = seed;
    EXPECT_TRUE(compiler.LoadPgSchema(SnbSchema()).ok());
    EXPECT_TRUE(compiler.CreateEdbs(&db).ok());
    Status st = GenerateSnbData(compiler.dl_schema(), &db, options);
    EXPECT_TRUE(st.ok()) << st.ToString();
  }

  CompileOptions Params() const {
    CompileOptions opts;
    opts.parameters["personId"] =
        dlir::Constant::Number(SamplePersonId(options));
    opts.parameters["maxDate"] = dlir::Constant::Number(MidCreationDate());
    return opts;
  }
};

TEST(LdbcSchemaTest, ParsesAndTranslates) {
  Compiler compiler;
  ASSERT_TRUE(compiler.LoadPgSchema(SnbSchema()).ok());
  const schema::DlSchema& dl = compiler.dl_schema();
  EXPECT_NE(dl.FindNode("Person"), nullptr);
  EXPECT_NE(dl.FindNode("Message"), nullptr);
  EXPECT_NE(dl.FindEdge("KNOWS"), nullptr);
  EXPECT_NE(dl.FindEdge("HAS_CREATOR"), nullptr);
  // Person EDB has the 10 columns the paper's Fig. 3c wildcards imply.
  const schema::NodeRelationInfo* person = dl.FindNode("Person");
  EXPECT_EQ(person->arity(), 10u);
}

TEST(LdbcGeneratorTest, IsDeterministic) {
  Workload a(0.05, 7);
  Workload b(0.05, 7);
  for (const std::string& rel : a.db.RelationNames()) {
    const Relation* ra = *a.db.GetRelation(rel);
    const Relation* rb = *b.db.GetRelation(rel);
    EXPECT_EQ(ra->size(), rb->size()) << rel;
  }
  EXPECT_EQ(a.db.TotalTuples(), b.db.TotalTuples());
}

TEST(LdbcGeneratorTest, ScalesWithScaleFactor) {
  Workload small(0.05);
  Workload large(0.2);
  EXPECT_GT(large.db.TotalTuples(), 2 * small.db.TotalTuples());
  const Relation* persons_small = *small.db.GetRelation("Person");
  const Relation* persons_large = *large.db.GetRelation("Person");
  EXPECT_EQ(persons_small->size(), 50u);
  EXPECT_EQ(persons_large->size(), 200u);
}

TEST(LdbcGeneratorTest, EveryMessageHasOneCreator) {
  Workload w(0.05);
  const Relation* messages = *w.db.GetRelation("Message");
  const Relation* creator = *w.db.GetRelation("Message_HAS_CREATOR_Person");
  EXPECT_EQ(creator->size(), messages->size());
}

TEST(LdbcGeneratorTest, KnowsDegreesAreHeavyTailed) {
  Workload w(0.5);
  const Relation* knows = *w.db.GetRelation("Person_KNOWS_Person");
  std::map<int64_t, int> degree;
  for (const Tuple& row : knows->rows()) ++degree[row[0].AsNumber()];
  int max_degree = 0;
  double total = 0;
  for (const auto& [p, d] : degree) {
    max_degree = std::max(max_degree, d);
    total += d;
  }
  double mean = total / static_cast<double>(degree.size());
  EXPECT_GT(max_degree, 3 * mean);  // hubs exist
}

// Table 1 queries agree across every engine and optimization level.
class LdbcQueryAgreementTest
    : public ::testing::TestWithParam<const char*> {};

TEST_P(LdbcQueryAgreementTest, AllEnginesAgree) {
  Workload w(0.1);
  auto unit = w.compiler.CompileCypher(GetParam(), w.Params());
  ASSERT_TRUE(unit.ok()) << unit.status().ToString();

  auto store = w.compiler.BuildGraphStore(w.db);
  ASSERT_TRUE(store.ok());
  auto graph = w.compiler.RunOnGraph(unit->pgir, *store, &w.db);
  ASSERT_TRUE(graph.ok()) << graph.status().ToString();

  auto datalog_unopt = w.compiler.RunOnDatalog(unit->dlir, &w.db);
  ASSERT_TRUE(datalog_unopt.ok()) << datalog_unopt.status().ToString();
  auto datalog_opt = w.compiler.RunOnDatalog(unit->optimized, &w.db);
  ASSERT_TRUE(datalog_opt.ok()) << datalog_opt.status().ToString();

  auto g = graph->ToStringSet(w.db.symbols());
  auto d0 = datalog_unopt->ToStringSet(w.db.symbols());
  auto d1 = datalog_opt->ToStringSet(w.db.symbols());
  EXPECT_EQ(g, d0);
  EXPECT_EQ(d0, d1);
  EXPECT_FALSE(d0.empty());  // the sampled person has results

  if (w.compiler.ToSqir(unit->optimized).ok()) {
    auto sql = w.compiler.RunOnSql(unit->optimized, &w.db);
    ASSERT_TRUE(sql.ok()) << sql.status().ToString();
    EXPECT_EQ(d0, sql->ToStringSet(w.db.symbols()));
  }
}

INSTANTIATE_TEST_SUITE_P(Queries, LdbcQueryAgreementTest,
                         ::testing::Values(ShortQuery1(), ComplexQuery2(),
                                           ReachabilityQuery(),
                                           FriendsWithinThreeHops(),
                                           ShortestPathQuery(),
                                           FriendMessageCounts()),
                         [](const auto& info) {
                           switch (info.index) {
                             case 0:
                               return "ShortQuery1";
                             case 1:
                               return "ComplexQuery2";
                             case 2:
                               return "Reachability";
                             case 3:
                               return "ThreeHops";
                             case 4:
                               return "ShortestPath";
                             default:
                               return "FriendMessageCounts";
                           }
                         });

TEST(LdbcEmissionTest, Sq1EmitsSqlAndSouffle) {
  Workload w(0.05);
  auto unit = w.compiler.CompileCypher(ShortQuery1(), w.Params());
  ASSERT_TRUE(unit.ok()) << unit.status().ToString();
  std::string souffle = w.compiler.EmitSouffle(unit->optimized);
  EXPECT_NE(souffle.find(".output Return"), std::string::npos);
  auto sql = w.compiler.EmitSql(unit->optimized);
  ASSERT_TRUE(sql.ok()) << sql.status().ToString();
  EXPECT_NE(sql->find("SELECT DISTINCT"), std::string::npos);
}

TEST(LdbcEmissionTest, ShortestPathSqlRejected) {
  Workload w(0.05);
  auto unit = w.compiler.CompileCypher(ShortestPathQuery(), w.Params());
  ASSERT_TRUE(unit.ok()) << unit.status().ToString();
  auto sql = w.compiler.EmitSql(unit->optimized);
  ASSERT_FALSE(sql.ok());
  EXPECT_EQ(sql.status().code(), StatusCode::kUnsupported);
}

}  // namespace
}  // namespace raqlet::ldbc
