// Round-trip tests for the Cypher/GQL unparsers (Fig. 1's right-hand
// column): unparsed text must re-parse and lower to an equivalent DLIR
// program, and re-executing it must give identical results.

#include <gtest/gtest.h>

#include "cypher/parser.h"
#include "gql/parser.h"
#include "pgir/cypher_printer.h"
#include "pgir/pgir_to_dlir.h"
#include "raqlet/compiler.h"

namespace raqlet::pgir {
namespace {

constexpr char kSchema[] = R"(
CREATE GRAPH {
  (personType: Person {id INT, firstName STRING, age INT}),
  (cityType: City {id INT, name STRING}),
  (:personType)-[locationType: isLocatedIn {id INT}]->(:cityType),
  (:personType)-[knowsType: knows {id INT}]->(:personType)
}
)";

class RoundTripTest : public ::testing::TestWithParam<const char*> {
 protected:
  RoundTripTest() {
    EXPECT_TRUE(compiler_.LoadPgSchema(kSchema).ok());
    EXPECT_TRUE(compiler_.CreateEdbs(&db_).ok());
    Relation* person = *db_.GetRelation("Person");
    for (int i = 1; i <= 8; ++i) {
      person->Insert({Value::Number(i), db_.Str("p" + std::to_string(i % 3)),
                      Value::Number(20 + i * 3)});
    }
    Relation* city = *db_.GetRelation("City");
    city->Insert({Value::Number(100), db_.Str("Edinburgh")});
    Relation* located = *db_.GetRelation("Person_IS_LOCATED_IN_City");
    located->Insert({Value::Number(1), Value::Number(100), Value::Number(1)});
    Relation* knows = *db_.GetRelation("Person_KNOWS_Person");
    int eid = 1;
    for (auto [a, b] : std::vector<std::pair<int, int>>{
             {1, 2}, {2, 3}, {3, 4}, {4, 5}, {1, 5}, {5, 6}}) {
      knows->Insert(
          {Value::Number(a), Value::Number(b), Value::Number(++eid)});
    }
  }

  Compiler compiler_;
  Database db_;
};

TEST_P(RoundTripTest, CypherRoundTripPreservesResults) {
  auto original = compiler_.CompileCypher(GetParam());
  ASSERT_TRUE(original.ok()) << original.status().ToString();

  std::string emitted = ToCypher(original->pgir);
  auto reparsed = compiler_.CompileCypher(emitted);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString() << "\n"
                             << emitted;

  auto r1 = compiler_.RunOnDatalog(original->dlir, &db_);
  ASSERT_TRUE(r1.ok()) << r1.status().ToString();
  auto r2 = compiler_.RunOnDatalog(reparsed->dlir, &db_);
  ASSERT_TRUE(r2.ok()) << r2.status().ToString() << "\n" << emitted;
  EXPECT_EQ(r1->ToStringSet(db_.symbols()), r2->ToStringSet(db_.symbols()))
      << emitted;
}

TEST_P(RoundTripTest, GqlRoundTripPreservesResults) {
  auto original = compiler_.CompileCypher(GetParam());
  ASSERT_TRUE(original.ok());

  std::string emitted = ToGql(original->pgir);
  auto reparsed = compiler_.CompileGql(emitted);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString() << "\n"
                             << emitted;

  auto r1 = compiler_.RunOnDatalog(original->dlir, &db_);
  auto r2 = compiler_.RunOnDatalog(reparsed->dlir, &db_);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok()) << r2.status().ToString() << "\n" << emitted;
  EXPECT_EQ(r1->ToStringSet(db_.symbols()), r2->ToStringSet(db_.symbols()))
      << emitted;
}

INSTANTIATE_TEST_SUITE_P(
    Queries, RoundTripTest,
    ::testing::Values(
        "MATCH (n:Person {id: 1})-[:IS_LOCATED_IN]->(c:City) "
        "RETURN DISTINCT n.firstName AS name, c.id AS cityId",
        "MATCH (a:Person)-[:KNOWS]->(b:Person) WHERE a.age > 25 "
        "RETURN DISTINCT b.id AS id",
        "MATCH (a:Person {id: 1})-[:KNOWS*1..3]->(b:Person) "
        "RETURN DISTINCT b.id AS id",
        "MATCH (a:Person {id: 1})-[:KNOWS*]->(b:Person) "
        "RETURN DISTINCT b.id AS id",
        "MATCH p = shortestPath((a:Person {id: 1})-[:KNOWS*]->(b:Person)) "
        "RETURN DISTINCT b.id AS id, length(p) AS len",
        "MATCH (a:Person)-[:KNOWS]-(b:Person) "
        "WITH a, count(b) AS friends "
        "RETURN DISTINCT a.id AS id, friends"));

TEST(UnparserTest, GqlDialectUsesFilter) {
  Compiler compiler;
  ASSERT_TRUE(compiler.LoadPgSchema(kSchema).ok());
  auto unit = compiler.CompileCypher(
      "MATCH (n:Person {id: 1}) RETURN DISTINCT n.firstName AS name");
  ASSERT_TRUE(unit.ok());
  std::string gql = ToGql(unit->pgir);
  EXPECT_NE(gql.find("FILTER"), std::string::npos);
  EXPECT_EQ(gql.find("WHERE"), std::string::npos);
  std::string cypher = ToCypher(unit->pgir);
  EXPECT_NE(cypher.find("WHERE"), std::string::npos);
}

}  // namespace
}  // namespace raqlet::pgir
